//! Workspace integration tests: full kernels executed on the simulated
//! array and platform through the `Session` runtime, checked against the
//! golden DSP models across crate boundaries.

use vwr2a::core::Vwr2a;
use vwr2a::dsp::complex::Complex;
use vwr2a::dsp::fft::fft;
use vwr2a::dsp::fir::{design_lowpass, fir_q15};
use vwr2a::dsp::fixed::{from_q16, to_q16, Q15};
use vwr2a::energy::fft_accel_energy;
use vwr2a::fftaccel::FftAccelerator;
use vwr2a::kernels::fft::{FftKernel, RealFftKernel};
use vwr2a::kernels::fir::FirKernel;
use vwr2a::kernels::Spectrum;
use vwr2a::runtime::{Kernel, Session};

#[test]
fn vwr2a_fft_matches_the_golden_model_end_to_end() {
    let n = 512;
    let signal: Vec<Complex> = (0..n)
        .map(|i| Complex::new(0.3 * (i as f64 * 0.11).sin(), 0.2 * (i as f64 * 0.07).cos()))
        .collect();
    let input = Spectrum::new(
        signal.iter().map(|c| to_q16(c.re)).collect(),
        signal.iter().map(|c| to_q16(c.im)).collect(),
    );

    let kernel = FftKernel::new(n).expect("512-point complex FFT supported");
    let mut session = Session::new();
    let (spectrum, _) = session.run(&kernel, &input).expect("kernel runs");
    let reference = fft(&signal).expect("reference FFT");
    for (k, r) in reference.iter().enumerate() {
        assert!(
            (from_q16(spectrum.re[k]) - r.re).abs() < 0.25,
            "bin {k} real part"
        );
        assert!(
            (from_q16(spectrum.im[k]) - r.im).abs() < 0.25,
            "bin {k} imaginary part"
        );
    }
}

#[test]
fn vwr2a_and_fft_accelerator_have_comparable_cycles_but_different_energy() {
    // The central comparison of the paper for isolated kernels (Table 2,
    // Fig. 2): similar performance, several-times-higher energy for the
    // programmable core.
    let n = 512;
    let signal: Vec<f64> = (0..n)
        .map(|i| 0.4 * (std::f64::consts::TAU * 9.0 * i as f64 / n as f64).sin())
        .collect();

    let engine = FftAccelerator::new();
    let (_, accel_stats) = engine.run_real(&signal).expect("accelerator runs");

    let kernel = RealFftKernel::new(n).expect("supported");
    let mut session = Session::new();
    let q16: Vec<i32> = signal.iter().map(|&v| to_q16(v)).collect();
    let (_, report) = session.run(&kernel, q16.as_slice()).expect("kernel runs");

    let cycle_ratio = report.cycles as f64 / accel_stats.cycles as f64;
    assert!(
        cycle_ratio > 0.5 && cycle_ratio < 6.0,
        "cycle ratio {cycle_ratio} out of the expected band"
    );
    let energy_ratio = report.energy().total_uj() / fft_accel_energy(&accel_stats).total_uj();
    assert!(
        energy_ratio > 2.0 && energy_ratio < 20.0,
        "energy ratio {energy_ratio} out of the expected band"
    );
}

#[test]
fn fir_kernel_output_is_bit_close_to_the_cmsis_style_reference() {
    let n = 300; // deliberately not a multiple of the block size
    let taps_f = design_lowpass(11, 0.15).unwrap();
    let taps: Vec<i32> = taps_f.iter().map(|&v| Q15::from_f64(v).0 as i32).collect();
    let input: Vec<i32> = (0..n)
        .map(|i| (6000.0 * (i as f64 * 0.21).sin() + 2000.0 * (i as f64 * 0.017).cos()) as i32)
        .collect();

    let kernel = FirKernel::new(&taps, n).unwrap();
    let mut session = Session::new();
    let (output, _) = session.run(&kernel, input.as_slice()).unwrap();

    let taps_q: Vec<Q15> = taps.iter().map(|&t| Q15(t as i16)).collect();
    let input_q: Vec<Q15> = input.iter().map(|&v| Q15(v as i16)).collect();
    let reference = fir_q15(&taps_q, &input_q).unwrap();
    for (i, (o, r)) in output.iter().zip(reference.iter()).enumerate() {
        assert!((o - r.0 as i32).abs() <= 4, "sample {i}: {o} vs {}", r.0);
    }
}

#[test]
fn warm_reruns_cost_fewer_cycles_than_cold_firsts_across_kernels() {
    // The acceptance property of the Session runtime, demonstrated on two
    // very different kernels sharing one session.
    let mut session = Session::new();

    let taps: Vec<i32> = design_lowpass(11, 0.1)
        .unwrap()
        .iter()
        .map(|&v| Q15::from_f64(v).0 as i32)
        .collect();
    let fir = FirKernel::new(&taps, 256).unwrap();
    let input: Vec<i32> = (0..256).map(|i| (i % 90) * 11 - 500).collect();
    let (out_cold, fir_cold) = session.run(&fir, input.as_slice()).unwrap();
    let (out_warm, fir_warm) = session.run(&fir, input.as_slice()).unwrap();
    assert_eq!(out_cold, out_warm);
    assert!(
        fir_warm.cycles < fir_cold.cycles,
        "FIR warm {} must beat cold {}",
        fir_warm.cycles,
        fir_cold.cycles
    );
    assert_eq!(fir_cold.cold_launches, 1);
    assert_eq!(fir_warm.cold_launches, 0);

    let fft = FftKernel::new(256).unwrap();
    let signal = Spectrum::new(
        (0..256)
            .map(|i| to_q16(((i % 32) as f64 - 16.0) / 20.0))
            .collect(),
        vec![0i32; 256],
    );
    let (_, fft_cold) = session.run(&fft, &signal).unwrap();
    let (_, fft_warm) = session.run(&fft, &signal).unwrap();
    assert!(
        fft_warm.cycles < fft_cold.cycles,
        "FFT warm {} must beat cold {}",
        fft_warm.cycles,
        fft_cold.cycles
    );
    assert_eq!(fft_warm.counters.config_words_loaded, 0);
}

#[test]
fn batched_windows_are_bit_identical_to_independent_cold_runs() {
    let taps: Vec<i32> = design_lowpass(11, 0.12)
        .unwrap()
        .iter()
        .map(|&v| Q15::from_f64(v).0 as i32)
        .collect();
    let kernel = FirKernel::new(&taps, 256).unwrap();
    let windows: Vec<Vec<i32>> = (0..6)
        .map(|w| {
            (0..256)
                .map(|i| (5000.0 * ((i + 31 * w) as f64 * 0.13).sin()) as i32)
                .collect()
        })
        .collect();

    let mut session = Session::new();
    let (batched, report) = session
        .run_batch(&kernel, windows.iter().map(Vec::as_slice))
        .unwrap();
    assert_eq!(report.invocations, 6);
    assert_eq!(report.cold_launches, 1, "only the first window loads");

    for (window, batch_out) in windows.iter().zip(&batched) {
        let (cold_out, _) = Session::new().run(&kernel, window.as_slice()).unwrap();
        assert_eq!(&cold_out, batch_out, "batch output must match a cold run");
    }
}

#[test]
fn constrained_config_memory_serves_a_mixed_workload_bit_identically() {
    // Residency acceptance scenario: four FIR kernels with different
    // baked-in taps (four distinct configuration-memory programs), but a
    // configuration memory sized to hold only two of them.  A
    // 100-invocation mixed workload must complete with outputs
    // bit-identical to an unconstrained session — the session evicts cold
    // programs (visible in `RunReport::evictions`) instead of ever failing
    // with `ConfigMemoryFull`, and pays cold reloads only after evictions.
    let n = 128;
    let tap_sets: Vec<Vec<i32>> = [0.08, 0.12, 0.2, 0.3]
        .iter()
        .map(|&fc| {
            design_lowpass(11, fc)
                .unwrap()
                .iter()
                .map(|&v| Q15::from_f64(v).0 as i32)
                .collect()
        })
        .collect();
    let kernels: Vec<FirKernel> = tap_sets
        .iter()
        .map(|taps| FirKernel::new(taps, n).unwrap())
        .collect();
    let program_words = 2 * kernels[0]
        .program(&vwr2a::core::Geometry::paper())
        .unwrap()
        .config_words();

    let mut geometry = vwr2a::core::Geometry::paper();
    geometry.config_words = program_words; // two of the four programs fit
    let mut constrained = Session::with_accelerator(Vwr2a::with_geometry(geometry).unwrap());
    let mut unconstrained = Session::new();

    let mut cold_total = 0;
    let mut evictions_total = 0;
    for i in 0..100 {
        let kernel = &kernels[i % kernels.len()];
        let input: Vec<i32> = (0..n)
            .map(|s| (4000.0 * ((s + 13 * i) as f64 * 0.17).sin()) as i32)
            .collect();
        let (out_c, report) = constrained
            .run(kernel, input.as_slice())
            .expect("capacity pressure must never fail the run");
        let (out_u, _) = unconstrained.run(kernel, input.as_slice()).unwrap();
        assert_eq!(out_c, out_u, "invocation {i} diverged under pressure");
        if i >= kernels.len() {
            assert!(
                report.cold_launches == 0 || evictions_total > 0,
                "invocation {i} went cold without a preceding eviction"
            );
        }
        cold_total += report.cold_launches;
        evictions_total += report.evictions;
    }
    assert!(evictions_total > 0, "4 programs in 2 slots must evict");
    assert!(
        cold_total <= kernels.len() as u64 + evictions_total,
        "every extra cold launch must be paid for by an eviction"
    );
    assert_eq!(constrained.evictions(), evictions_total);
    assert_eq!(unconstrained.evictions(), 0, "roomy memory never evicts");
}

#[test]
fn pipelined_stream_overlaps_phases_with_bit_identical_outputs() {
    // The pipelined-execution acceptance scenario: for a ≥4-window
    // `run_stream`, the overlapped wall clock is strictly below the sum of
    // per-window DMA-in + compute + DMA-out cycles, while the outputs stay
    // bit-identical to `run_batch` and to isolated synchronous runs.
    let taps: Vec<i32> = design_lowpass(11, 0.1)
        .unwrap()
        .iter()
        .map(|&v| Q15::from_f64(v).0 as i32)
        .collect();
    let kernel = FirKernel::new(&taps, 256).unwrap();
    let windows: Vec<Vec<i32>> = (0..5)
        .map(|w| {
            (0..256)
                .map(|i| (7000.0 * ((i + 41 * w) as f64 * 0.093).sin()) as i32)
                .collect()
        })
        .collect();

    let mut session = Session::new();
    let mut streamed: Vec<Vec<i32>> = Vec::new();
    let report = session
        .run_stream(&kernel, windows.iter().map(Vec::as_slice), |out| {
            streamed.push(out);
            Ok(())
        })
        .unwrap();

    // `cycles` is exactly the pre-pipelining synchronous model: the sum of
    // each window's staging, configuration, compute and drain cycles.
    assert!(
        report.wall_cycles < report.cycles,
        "pipelined wall clock {} must beat the serial phase sum {}",
        report.wall_cycles,
        report.cycles
    );
    assert!(report.overlap_ratio() > 0.0);
    // The completion interrupts are modelled on top of the serial sum.
    assert!(report.serial_cycles() > report.cycles);
    // No work disappears into the overlap: per-engine busy cycles add up
    // to the serial model.
    assert_eq!(
        report.busy.dma + report.busy.compute + report.busy.config_load,
        report.cycles
    );

    // Bit-identical to run_batch through a fresh session...
    let (batched, batch_report) = Session::new()
        .run_batch(&kernel, windows.iter().map(Vec::as_slice))
        .unwrap();
    assert_eq!(streamed, batched);
    // The batch path is the same pipelined engine: identical schedule.
    assert_eq!(batch_report.wall_cycles, report.wall_cycles);
    // ...and to isolated synchronous runs.
    for (window, out) in windows.iter().zip(&streamed) {
        let (isolated, single) = Session::new().run(&kernel, window.as_slice()).unwrap();
        assert_eq!(&isolated, out);
        // A single invocation cannot overlap: its wall clock equals its
        // serial schedule.
        assert_eq!(single.wall_cycles, single.serial_cycles());
        assert_eq!(single.overlap_ratio(), 0.0);
    }
}

#[test]
fn runtime_reexports_cover_tuning_without_a_core_dependency() {
    // DmaConfig and the timeline types are reachable through
    // `vwr2a::runtime` alone, so session users can tune DMA timing and
    // inspect schedules without depending on vwr2a-core directly.
    use vwr2a::runtime::{DmaConfig, Engine, Occupancy, StreamSchedule, Timeline, WindowPhases};

    let dma = DmaConfig {
        setup_cycles: 8,
        cycles_per_word: 2,
    };
    let accel =
        vwr2a::core::Vwr2a::with_geometry_and_dma(vwr2a::core::Geometry::paper(), dma).unwrap();
    let mut session = Session::with_accelerator(accel);
    let taps: Vec<i32> = design_lowpass(5, 0.2)
        .unwrap()
        .iter()
        .map(|&v| Q15::from_f64(v).0 as i32)
        .collect();
    let kernel = FirKernel::new(&taps, 128).unwrap();
    let input = vec![500i32; 128];
    let (_, report) = session.run(&kernel, input.as_slice()).unwrap();
    assert!(report.busy.dma > 0);

    // The schedule machinery itself is usable stand-alone.
    let mut schedule = StreamSchedule::new();
    for _ in 0..4 {
        schedule.push(WindowPhases {
            stage: 100,
            config: 0,
            compute: 400,
            drain: 100,
        });
    }
    let timeline: Timeline = schedule.finish();
    assert!(timeline.wall_cycles() < timeline.serial_cycles());
    let occupancy: Occupancy = timeline.occupancy();
    assert_eq!(occupancy.of(Engine::Compute), 1600);
}

#[test]
fn fleet_pool_serves_a_mixed_fir_workload_bit_identically_and_warmer() {
    // The fleet acceptance scenario: four FIR programs over a two-array
    // pool with two-program configuration memories.  Every placement
    // strategy must produce outputs bit-identical to serial single-session
    // execution, and the residency-aware scheduler must pay strictly fewer
    // cold reloads than round-robin on the same job list.
    use vwr2a::runtime::pool::{CostAware, LeastLoaded, Pool, ResidencyAware, RoundRobin};

    let n = 256;
    let kernels: Vec<FirKernel> = [0.06, 0.12, 0.2, 0.3]
        .iter()
        .map(|&fc| {
            let taps: Vec<i32> = design_lowpass(11, fc)
                .unwrap()
                .iter()
                .map(|&v| Q15::from_f64(v).0 as i32)
                .collect();
            FirKernel::new(&taps, n).unwrap()
        })
        .collect();
    let picks = [0usize, 1, 2, 3, 2, 0, 1, 3, 0, 2, 3, 1];
    let jobs: Vec<(usize, Vec<Vec<i32>>)> = picks
        .iter()
        .enumerate()
        .map(|(j, &pick)| {
            let windows = (0..3)
                .map(|w| {
                    (0..n)
                        .map(|i| (4800.0 * ((i + 19 * (j + w)) as f64 * 0.151).sin()) as i32)
                        .collect()
                })
                .collect();
            (pick, windows)
        })
        .collect();

    let (serial, _) = Pool::run_serial_reference(
        jobs.iter()
            .map(|(pick, ws)| (&kernels[*pick], ws.iter().map(Vec::as_slice))),
    )
    .unwrap();

    let program_words = kernels[0]
        .program(&vwr2a::core::Geometry::paper())
        .unwrap()
        .config_words();
    let make_pool = || {
        Pool::with_sessions(vwr2a::runtime::testing::constrained_sessions(
            2,
            2 * program_words,
        ))
        .expect("constrained sessions share one geometry")
    };
    let check = |mut pool: Pool| {
        let name = pool.placement_name();
        let (outputs, fleet) = pool
            .run_batch(
                jobs.iter()
                    .map(|(pick, ws)| (&kernels[*pick], ws.iter().map(Vec::as_slice))),
            )
            .unwrap();
        assert_eq!(outputs, serial, "{name} diverged from serial execution");
        fleet
    };
    let cost_aware = check(make_pool().with_placement(CostAware::default()));
    let residency_aware = check(make_pool().with_placement(ResidencyAware));
    let round_robin = check(make_pool().with_placement(RoundRobin));
    check(make_pool().with_placement(LeastLoaded));

    assert!(
        residency_aware.cold_reloads() < round_robin.cold_reloads(),
        "residency-aware {} cold reloads must beat round-robin {}",
        residency_aware.cold_reloads(),
        round_robin.cold_reloads()
    );
    assert_eq!(residency_aware.evictions(), 0, "the fleet holds the set");
    assert!(round_robin.evictions() > 0, "4 programs thrash 2 slots");
    assert!(residency_aware.wall_cycles() <= round_robin.wall_cycles());
    // The fleet wall clock is the slowest array, and the fan-out beats
    // running the same jobs serially on one array lane.
    for array in &residency_aware.arrays {
        assert!(array.report.wall_cycles <= residency_aware.wall_cycles());
    }
    assert!(residency_aware.wall_cycles() < residency_aware.serial_cycles());

    // The PR-5 acceptance on the same workload: cost-aware placement with
    // speculative prefetch pays no cold reloads at all (every reload was
    // staged off the critical path) and finishes the fleet strictly
    // earlier than the prefetch-less residency-aware scheduler.
    assert_eq!(cost_aware.cold_reloads(), 0, "all reloads prefetched");
    assert!(cost_aware.prefetched() >= 4, "one stage per program placed");
    assert!(
        cost_aware.cold_reloads() < residency_aware.cold_reloads(),
        "prefetch must beat residency-aware cold reloads"
    );
    assert!(
        cost_aware.wall_cycles() < residency_aware.wall_cycles(),
        "cost-aware wall {} must beat residency-aware {}",
        cost_aware.wall_cycles(),
        residency_aware.wall_cycles()
    );
}

#[test]
fn online_server_meets_deadlines_with_bit_identical_outputs() {
    // The serving acceptance scenario: a multi-tenant arrival stream over
    // the constrained two-array fleet.  Whatever the admission queue and
    // the stealing pass decide, the outputs must equal serial execution,
    // the latency ledger must decompose consistently, and the per-tenant
    // totals must add up to the stream.
    use vwr2a::runtime::pool::Pool;
    use vwr2a::runtime::{ServeJob, Server, WeightedFair};

    let n = 256;
    let kernels: Vec<FirKernel> = [0.06, 0.12, 0.2, 0.3]
        .iter()
        .map(|&fc| {
            let taps: Vec<i32> = design_lowpass(11, fc)
                .unwrap()
                .iter()
                .map(|&v| Q15::from_f64(v).0 as i32)
                .collect();
            FirKernel::new(&taps, n).unwrap()
        })
        .collect();
    let jobs: Vec<(usize, u32, u64, Vec<Vec<i32>>)> = (0..10)
        .map(|j| {
            let windows = (0..1 + j % 3)
                .map(|w| {
                    (0..n)
                        .map(|i| (5200.0 * ((i + 23 * (j + w)) as f64 * 0.131).sin()) as i32)
                        .collect()
                })
                .collect();
            (j % kernels.len(), (j % 3) as u32, 400 * j as u64, windows)
        })
        .collect();

    let (serial, _) = Pool::run_serial_reference(
        jobs.iter()
            .map(|(pick, _, _, ws)| (&kernels[*pick], ws.iter().map(Vec::as_slice))),
    )
    .unwrap();

    let program_words = kernels[0]
        .program(&vwr2a::core::Geometry::paper())
        .unwrap()
        .config_words();
    let pool = Pool::with_sessions(vwr2a::runtime::testing::constrained_sessions(
        2,
        2 * program_words,
    ))
    .expect("constrained sessions share one geometry");
    let mut server = Server::new(pool).with_policy(WeightedFair::new());
    let (outputs, report) = server
        .run_batch(jobs.iter().map(|(pick, tenant, arrival, ws)| {
            ServeJob::new(
                &kernels[*pick],
                ws.iter().map(Vec::as_slice),
                *tenant,
                *arrival,
            )
            .with_deadline(arrival + 1_000_000)
        }))
        .unwrap();
    assert_eq!(outputs, serial, "serving diverged from serial execution");

    assert_eq!(report.latencies.len(), jobs.len());
    for latency in &report.latencies {
        assert_eq!(
            latency.queue_cycles + latency.service_cycles,
            latency.total,
            "job {} latency must decompose exactly",
            latency.job
        );
        assert!(latency.deadline_met, "the slack is far beyond the makespan");
    }
    assert_eq!(report.deadline_misses(), 0);
    assert!(report.p50() <= report.p95() && report.p95() <= report.p99());
    let tenants = report.tenants();
    assert_eq!(tenants.iter().map(|t| t.jobs).sum::<u64>(), 10);
    assert_eq!(
        report.fleet.invocations(),
        jobs.iter()
            .map(|(_, _, _, ws)| ws.len() as u64)
            .sum::<u64>()
    );
    // The report narrates itself (percentiles, misses, steals).
    assert!(format!("{report}").contains("p99"));
}

#[test]
fn facade_root_reexports_the_fleet_api() {
    // Applications can reach the whole scheduling surface from `vwr2a`
    // alone: session, kernel trait, pool, strategies, plans and reports.
    use vwr2a::{CostAware, Placement, PlacementPlan, Pool, ResidencyAware, Session};

    let mut session: Session = Session::new();
    let taps: Vec<i32> = design_lowpass(5, 0.2)
        .unwrap()
        .iter()
        .map(|&v| Q15::from_f64(v).0 as i32)
        .collect();
    let kernel = FirKernel::new(&taps, 128).unwrap();
    let window = vec![250i32; 128];
    let (serial, run_report): (Vec<i32>, vwr2a::RunReport) =
        session.run(&kernel, window.as_slice()).unwrap();
    assert!(run_report.cycles > 0);

    let mut pool: Pool = Pool::new(2);
    assert_eq!(pool.placement_name(), CostAware::default().name());
    let windows = [window.clone(), window.clone()];
    let (outputs, fleet): (_, vwr2a::FleetReport) = pool
        .run_batch([(&kernel, windows.iter().map(Vec::as_slice))])
        .unwrap();
    assert_eq!(outputs[0][0], serial);
    assert_eq!(fleet.cold_reloads(), 0, "the default strategy prefetches");
    assert_eq!(fleet.prefetched(), 1);

    // The plan vocabulary itself is part of the facade.
    let plan: PlacementPlan = PlacementPlan::with_prefetch(0);
    assert_eq!(plan.prefetch, Some(vwr2a::PrefetchDirective { backend: 0 }));
    assert_eq!(ResidencyAware.name(), "residency-aware");

    // So is the heterogeneous backend vocabulary: kinds, capability
    // masks, per-job routes and the backend implementations themselves.
    use vwr2a::{Backend, BackendKind, CpuBackend, FftBackend};
    assert_eq!(BackendKind::Array.label(), "array");
    assert_eq!(FftBackend::new().kind(), BackendKind::FftAccel);
    assert_eq!(CpuBackend::new().capabilities(), vwr2a::runtime::CAP_CPU);
    let hetero: Pool = Pool::new(1).with_backend(FftBackend::new());
    assert_eq!(hetero.arrays(), 2, "the fleet counts every backend");

    // The serving layer is reachable from the facade root too: server,
    // job, policies and the latency report vocabulary.
    use vwr2a::{
        EarliestDeadlineFirst, Fifo, SchedPolicy, ServeJob, ServeReport, Server, TenantId,
        WeightedFair,
    };
    let tenant: TenantId = 1;
    let mut server: Server = Server::new(Pool::new(2)).with_policy(WeightedFair::new());
    let (served, serve_report): (_, ServeReport) = server
        .run_batch([
            ServeJob::new(&kernel, windows.iter().map(Vec::as_slice), tenant, 0),
            ServeJob::new(&kernel, windows.iter().map(Vec::as_slice), 2, 50)
                .with_priority(1)
                .with_deadline(2_000_000),
        ])
        .unwrap();
    assert_eq!(served[0][0], serial);
    assert_eq!(serve_report.latencies.len(), 2);
    assert_eq!(serve_report.deadline_misses(), 0);
    assert_eq!(Fifo.name(), "fifo");
    assert_eq!(EarliestDeadlineFirst.name(), "edf");
    assert_eq!(server.policy_name(), "weighted-fair");
}

#[test]
fn fft_adapts_to_a_one_column_geometry() {
    // The stage flow declares a one-column minimum and adapts to whatever
    // the geometry offers; a 512-point transform (two blocks per stage)
    // must still be bit-exact when the blocks run sequentially on one
    // column.
    let mut geometry = vwr2a::core::geometry::Geometry::paper();
    geometry.columns = 1;
    let accel = Vwr2a::with_geometry(geometry).unwrap();
    let mut session = Session::with_accelerator(accel);

    let n = 512;
    let input = Spectrum::new(
        (0..n)
            .map(|i| to_q16(((i % 40) as f64 - 20.0) / 25.0))
            .collect(),
        vec![0i32; n],
    );
    let kernel = FftKernel::new(n).unwrap();
    let (narrow, _) = session.run(&kernel, &input).unwrap();

    let (wide, _) = Session::new().run(&kernel, &input).unwrap();
    assert_eq!(narrow, wide, "one-column result must match two-column");
}

#[test]
fn sessions_accept_custom_accelerators() {
    // The ablation path: a session around a custom-geometry accelerator.
    let accel = Vwr2a::new();
    let mut session = Session::with_accelerator(accel);
    let taps: Vec<i32> = design_lowpass(5, 0.2)
        .unwrap()
        .iter()
        .map(|&v| Q15::from_f64(v).0 as i32)
        .collect();
    let kernel = FirKernel::new(&taps, 128).unwrap();
    let input = vec![1000i32; 128];
    let (output, report) = session.run(&kernel, input.as_slice()).unwrap();
    assert_eq!(output.len(), 128);
    assert!(report.cycles > 0);
    assert_eq!(session.loaded_programs(), 1);
}

#[test]
fn assembled_programs_run_on_the_simulator() {
    // Cross-crate check: text assembly -> column program -> execution on a
    // session's accelerator.
    let program = vwr2a::asm::assemble_column(
        "
            lsu load.vwr a, 0
        ---
            mxcu setidx 3
        ---
            rc0 mov vwr.b, vwr.a
        ---
            lsu store.vwr b, 1
        ---
            lcu exit
        ",
    )
    .expect("assembles");
    let kernel = vwr2a::core::program::KernelProgram::new("copy-word", vec![program]).unwrap();
    let mut session = Session::new();
    let accel = session.accelerator_mut();
    accel
        .spm_mut()
        .write_line(0, &(100..228).collect::<Vec<i32>>())
        .unwrap();
    accel.run_program(&kernel).unwrap();
    // RC0's slice starts at word 0; index 3 selects word 3.
    assert_eq!(accel.spm().read_line(1).unwrap()[3], 103);
}
