//! Workspace integration tests: full kernels executed on the simulated
//! array and platform, checked against the golden DSP models across crate
//! boundaries.

use vwr2a::core::Vwr2a;
use vwr2a::dsp::complex::Complex;
use vwr2a::dsp::fft::fft;
use vwr2a::dsp::fir::{design_lowpass, fir_q15};
use vwr2a::dsp::fixed::{from_q16, to_q16, Q15};
use vwr2a::energy::{fft_accel_energy, vwr2a_energy};
use vwr2a::fftaccel::FftAccelerator;
use vwr2a::kernels::fft::FftKernel;
use vwr2a::kernels::fir::FirKernel;

#[test]
fn vwr2a_fft_matches_the_golden_model_end_to_end() {
    let n = 512;
    let signal: Vec<Complex> = (0..n)
        .map(|i| Complex::new(0.3 * (i as f64 * 0.11).sin(), 0.2 * (i as f64 * 0.07).cos()))
        .collect();
    let re: Vec<i32> = signal.iter().map(|c| to_q16(c.re)).collect();
    let im: Vec<i32> = signal.iter().map(|c| to_q16(c.im)).collect();

    let kernel = FftKernel::new(n).expect("512-point complex FFT supported");
    let mut accel = Vwr2a::new();
    let run = kernel.run_complex(&mut accel, &re, &im).expect("kernel runs");
    let reference = fft(&signal).expect("reference FFT");
    for k in 0..n {
        assert!(
            (from_q16(run.re[k]) - reference[k].re).abs() < 0.25,
            "bin {k} real part"
        );
        assert!(
            (from_q16(run.im[k]) - reference[k].im).abs() < 0.25,
            "bin {k} imaginary part"
        );
    }
}

#[test]
fn vwr2a_and_fft_accelerator_have_comparable_cycles_but_different_energy() {
    // The central comparison of the paper for isolated kernels (Table 2,
    // Fig. 2): similar performance, several-times-higher energy for the
    // programmable core.
    let n = 512;
    let signal: Vec<f64> = (0..n)
        .map(|i| 0.4 * (std::f64::consts::TAU * 9.0 * i as f64 / n as f64).sin())
        .collect();

    let engine = FftAccelerator::new();
    let (_, accel_stats) = engine.run_real(&signal).expect("accelerator runs");

    let kernel = FftKernel::new(n / 2).expect("supported");
    let mut accel = Vwr2a::new();
    let q16: Vec<i32> = signal.iter().map(|&v| to_q16(v)).collect();
    let run = kernel.run_real(&mut accel, &q16).expect("kernel runs");

    let cycle_ratio = run.cycles as f64 / accel_stats.cycles as f64;
    assert!(
        cycle_ratio > 0.5 && cycle_ratio < 6.0,
        "cycle ratio {cycle_ratio} out of the expected band"
    );
    let energy_ratio =
        vwr2a_energy(&run.counters).total_uj() / fft_accel_energy(&accel_stats).total_uj();
    assert!(
        energy_ratio > 2.0 && energy_ratio < 20.0,
        "energy ratio {energy_ratio} out of the expected band"
    );
}

#[test]
fn fir_kernel_output_is_bit_close_to_the_cmsis_style_reference() {
    let n = 300; // deliberately not a multiple of the block size
    let taps_f = design_lowpass(11, 0.15).unwrap();
    let taps: Vec<i32> = taps_f.iter().map(|&v| Q15::from_f64(v).0 as i32).collect();
    let input: Vec<i32> = (0..n)
        .map(|i| (6000.0 * (i as f64 * 0.21).sin() + 2000.0 * (i as f64 * 0.017).cos()) as i32)
        .collect();

    let kernel = FirKernel::new(&taps, n).unwrap();
    let mut accel = Vwr2a::new();
    let run = kernel.run(&mut accel, &input).unwrap();

    let taps_q: Vec<Q15> = taps.iter().map(|&t| Q15(t as i16)).collect();
    let input_q: Vec<Q15> = input.iter().map(|&v| Q15(v as i16)).collect();
    let reference = fir_q15(&taps_q, &input_q).unwrap();
    for (i, (o, r)) in run.output.iter().zip(reference.iter()).enumerate() {
        assert!((o - r.0 as i32).abs() <= 4, "sample {i}: {o} vs {}", r.0);
    }
}

#[test]
fn assembled_programs_run_on_the_simulator() {
    // Cross-crate check: text assembly -> column program -> execution.
    let program = vwr2a::asm::assemble_column(
        "
            lsu load.vwr a, 0
        ---
            mxcu setidx 3
        ---
            rc0 mov vwr.b, vwr.a
        ---
            lsu store.vwr b, 1
        ---
            lcu exit
        ",
    )
    .expect("assembles");
    let kernel = vwr2a::core::program::KernelProgram::new("copy-word", vec![program]).unwrap();
    let mut accel = Vwr2a::new();
    accel
        .spm_mut()
        .write_line(0, &(100..228).collect::<Vec<i32>>())
        .unwrap();
    accel.run_program(&kernel).unwrap();
    // RC0's slice starts at word 0; index 3 selects word 3.
    assert_eq!(accel.spm().read_line(1).unwrap()[3], 103);
}
