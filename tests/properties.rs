//! Workspace-level property-based tests on the core invariants.

use proptest::prelude::*;
use vwr2a::core::geometry::Geometry;
use vwr2a::core::geometry::VwrId;
use vwr2a::core::isa::encode::{
    decode_lcu, decode_lsu, decode_mxcu, decode_rc, encode_lcu, encode_lsu, encode_mxcu, encode_rc,
};
use vwr2a::core::isa::{
    LcuCond, LcuInstr, LcuSrc, LsuAddr, LsuInstr, MxcuInstr, RcDst, RcInstr, RcOpcode, RcSrc,
    ShuffleOp,
};
use vwr2a::core::shuffle::apply;
use vwr2a::dsp::complex::Complex;
use vwr2a::dsp::fft::{fft, ifft};
use vwr2a::dsp::fir::fir_f64;
use vwr2a::dsp::fixed::{from_q16, mul_fxp, to_q16};
use vwr2a::runtime::pool::{CostAware, LeastLoaded, Placement, Pool, ResidencyAware, RoundRobin};
use vwr2a::runtime::testing::{constrained_sessions, BakedScaleKernel};
use vwr2a::runtime::{
    EarliestDeadlineFirst, Fifo, FleetReport, Kernel, SchedPolicy, ServeJob, WeightedFair,
};

/// The kernel palette of the pool properties: four distinct
/// configuration-memory programs.
fn pool_kernels() -> Vec<BakedScaleKernel> {
    [2i16, 3, 5, 7]
        .iter()
        .map(|&f| BakedScaleKernel::new(f))
        .collect()
}

/// Builds a `(kernel pick, windows)` job list from a random mix.
fn pool_jobs(mix: &[(usize, usize, i32)]) -> Vec<(usize, Vec<Vec<i32>>)> {
    mix.iter()
        .map(|&(pick, windows, seed)| {
            (
                pick,
                (0..windows)
                    .map(|w| (0..64).map(|i| i + seed + 13 * w as i32).collect())
                    .collect(),
            )
        })
        .collect()
}

/// Fans the job list across a two-array pool whose configuration memories
/// hold two programs each (the four-program palette does not fit one
/// array), returning the outputs grouped by job and the fleet report.
fn run_pool(
    jobs: &[(usize, Vec<Vec<i32>>)],
    placement: impl Placement + 'static,
) -> (Vec<Vec<Vec<i32>>>, FleetReport) {
    let kernels = pool_kernels();
    let program_words = kernels[0]
        .program(&Geometry::paper())
        .unwrap()
        .config_words();
    let mut pool = Pool::with_sessions(constrained_sessions(2, 2 * program_words))
        .expect("constrained sessions share one geometry")
        .with_placement(placement);
    pool.run_batch(
        jobs.iter()
            .map(|(pick, ws)| (&kernels[*pick], ws.iter().map(Vec::as_slice))),
    )
    .expect("pool fan-out must absorb capacity pressure")
}

/// One random serve job: `(pick, windows, seed, arrival, tenant,
/// priority, deadline slack)` — slack 0 encodes "no deadline" (the
/// vendored proptest has no `Option` strategy).
type ServeMix = (usize, usize, i32, u64, u32, u8, u64);

/// Serves the random mix through a two-array `Server` under the given
/// policy, returning the outputs grouped by submission order.
fn run_server(
    mix: &[ServeMix],
    policy: impl SchedPolicy + 'static,
    stealing: bool,
) -> Vec<Vec<Vec<i32>>> {
    let kernels = pool_kernels();
    let job_list = pool_jobs(
        &mix.iter()
            .map(|&(pick, windows, seed, ..)| (pick, windows, seed))
            .collect::<Vec<_>>(),
    );
    let program_words = kernels[0]
        .program(&Geometry::paper())
        .unwrap()
        .config_words();
    let pool = Pool::with_sessions(constrained_sessions(2, 2 * program_words))
        .expect("constrained sessions share one geometry");
    let mut server = vwr2a::runtime::Server::new(pool)
        .with_policy(policy)
        .with_stealing(stealing);
    let (outputs, report) = server
        .run_batch(job_list.iter().zip(mix).map(
            |((pick, ws), &(_, _, _, arrival, tenant, priority, slack))| ServeJob {
                kernel: &kernels[*pick],
                windows: ws.iter().map(Vec::as_slice),
                tenant,
                arrival_cycle: arrival,
                priority,
                deadline_cycle: (slack > 0).then(|| arrival + slack),
            },
        ))
        .expect("serving must absorb capacity pressure");
    assert_eq!(report.latencies.len(), job_list.len());
    outputs
}

fn arb_rc_src() -> impl Strategy<Value = RcSrc> {
    prop_oneof![
        Just(RcSrc::Zero),
        any::<i16>().prop_map(RcSrc::Imm),
        (0u8..2).prop_map(RcSrc::Reg),
        (0usize..3).prop_map(|i| RcSrc::Vwr(VwrId::from_index(i))),
        (0u8..8).prop_map(RcSrc::Srf),
        Just(RcSrc::RcAbove),
        Just(RcSrc::RcBelow),
        Just(RcSrc::SelfPrev),
    ]
}

fn arb_rc_instr() -> impl Strategy<Value = RcInstr> {
    let op = prop_oneof![
        Just(RcOpcode::Nop),
        Just(RcOpcode::Mov),
        Just(RcOpcode::Add),
        Just(RcOpcode::Sub),
        Just(RcOpcode::Mul),
        Just(RcOpcode::MulFxp),
        Just(RcOpcode::And),
        Just(RcOpcode::Or),
        Just(RcOpcode::Xor),
        Just(RcOpcode::Sll),
        Just(RcOpcode::Sra),
        Just(RcOpcode::Min),
        Just(RcOpcode::Max),
        Just(RcOpcode::Sgt),
    ];
    let dst = prop_oneof![
        Just(RcDst::None),
        (0u8..2).prop_map(RcDst::Reg),
        (0usize..3).prop_map(|i| RcDst::Vwr(VwrId::from_index(i))),
        (0u8..8).prop_map(RcDst::Srf),
    ];
    (op, dst, arb_rc_src(), arb_rc_src()).prop_map(|(op, dst, a, b)| RcInstr::new(op, dst, a, b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rc_instruction_encoding_round_trips(instr in arb_rc_instr()) {
        let word = encode_rc(&instr).unwrap();
        prop_assert_eq!(decode_rc(word).unwrap(), instr);
    }

    #[test]
    fn lsu_lcu_mxcu_encoding_round_trips(
        vwr in 0usize..3,
        line in 0u16..64,
        srf in 0u8..8,
        imm in any::<i16>(),
        target in 0u16..64,
        value in any::<i32>(),
        shuffle in 0usize..8,
    ) {
        let lsu = [
            LsuInstr::LoadVwr { vwr: VwrId::from_index(vwr), line: LsuAddr::Imm(line) },
            LsuInstr::StoreVwr { vwr: VwrId::from_index(vwr), line: LsuAddr::Srf(srf) },
            LsuInstr::AddSrf { srf, imm },
            LsuInstr::Shuffle(ShuffleOp::ALL[shuffle]),
        ];
        for instr in lsu {
            prop_assert_eq!(decode_lsu(encode_lsu(&instr).unwrap()).unwrap(), instr);
        }
        let lcu = [
            LcuInstr::Li { r: srf % 4, value },
            LcuInstr::Branch { cond: LcuCond::Lt, a: srf % 4, b: LcuSrc::Imm(value), target },
            LcuInstr::Jump(target),
        ];
        for instr in lcu {
            prop_assert_eq!(decode_lcu(encode_lcu(&instr).unwrap()).unwrap(), instr);
        }
        let mxcu = [MxcuInstr::SetIdx(line), MxcuInstr::AddIdx(imm), MxcuInstr::LoadIdxSrf(srf)];
        for instr in mxcu {
            prop_assert_eq!(decode_mxcu(encode_mxcu(&instr).unwrap()).unwrap(), instr);
        }
    }

    #[test]
    fn shuffle_interleave_and_prune_are_inverses(
        a in prop::collection::vec(any::<i32>(), 128),
        b in prop::collection::vec(any::<i32>(), 128),
    ) {
        let lower = apply(ShuffleOp::InterleaveLower, &a, &b, 32);
        let upper = apply(ShuffleOp::InterleaveUpper, &a, &b, 32);
        prop_assert_eq!(apply(ShuffleOp::EvenPrune, &lower, &upper, 32), a);
        prop_assert_eq!(apply(ShuffleOp::OddPrune, &lower, &upper, 32), b);
    }

    #[test]
    fn fft_round_trip_preserves_the_signal(
        values in prop::collection::vec(-1.0f64..1.0, 64),
    ) {
        let signal: Vec<Complex> = values.iter().map(|&v| Complex::new(v, -v * 0.5)).collect();
        let back = ifft(&fft(&signal).unwrap()).unwrap();
        for (a, b) in signal.iter().zip(back.iter()) {
            prop_assert!((a.re - b.re).abs() < 1e-9);
            prop_assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn fir_is_linear(
        x in prop::collection::vec(-0.5f64..0.5, 64),
        y in prop::collection::vec(-0.5f64..0.5, 64),
    ) {
        let taps = [0.2, 0.3, 0.2, 0.1];
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let fx = fir_f64(&taps, &x).unwrap();
        let fy = fir_f64(&taps, &y).unwrap();
        let fsum = fir_f64(&taps, &sum).unwrap();
        for i in 0..x.len() {
            prop_assert!((fsum[i] - (fx[i] + fy[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn fixed_point_multiply_is_bounded_and_sign_correct(
        a in -1000.0f64..1000.0,
        b in -1.0f64..1.0,
    ) {
        let product = from_q16(mul_fxp(to_q16(a), to_q16(b)));
        prop_assert!((product - a * b).abs() < 0.05 + (a * b).abs() * 1e-3);
    }

    #[test]
    fn pipelined_schedules_never_lose_or_invent_work(
        phase_list in prop::collection::vec(
            (0u64..2_000, 0u64..500, 1u64..5_000, 0u64..2_000),
            8,
        ),
    ) {
        use vwr2a::runtime::{StreamSchedule, WindowPhases};

        let mut schedule = StreamSchedule::new();
        let mut serial_phase_sum = 0u64;
        for &(stage, config, compute, drain) in &phase_list {
            let phases = WindowPhases { stage, config, compute, drain };
            serial_phase_sum += phases.total();
            schedule.push(phases);
        }
        let timeline = schedule.finish();
        // Work is conserved: every scheduled phase cycle appears exactly
        // once in the per-engine occupancy...
        let occupancy = timeline.occupancy();
        prop_assert_eq!(
            occupancy.config_load + occupancy.dma + occupancy.compute,
            serial_phase_sum
        );
        // ...the overlapped wall clock never beats the longest engine nor
        // exceeds the fully serial schedule...
        let busiest = [occupancy.config_load, occupancy.dma, occupancy.compute,
                       occupancy.interrupt].into_iter().max().unwrap();
        prop_assert!(timeline.wall_cycles() >= busiest);
        prop_assert!(timeline.wall_cycles() <= timeline.serial_cycles());
        // ...and the overlap ratio stays a valid fraction.
        prop_assert!((0.0..=1.0).contains(&timeline.overlap_ratio()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pool_outputs_are_bit_identical_to_serial_execution(
        mix in prop::collection::vec((0usize..4, 1usize..4, -500i32..500), 8),
        jobs in 1usize..9,
    ) {
        // Random job mixes under genuine capacity pressure (4 programs,
        // 2-slot memories): for every placement strategy — including the
        // prefetching cost-aware default, whose speculative reloads must
        // stay invisible to the data path — the pool's outputs must equal
        // running every job serially, in submission order, on one fresh
        // session.  Placement, pipelining and prefetch must never change a
        // single bit.
        let kernels = pool_kernels();
        let job_list = pool_jobs(&mix[..jobs]);
        let (serial, _) = Pool::run_serial_reference(
            job_list
                .iter()
                .map(|(pick, ws)| (&kernels[*pick], ws.iter().map(Vec::as_slice))),
        )
        .expect("serial reference runs");

        let (cost_aware, cost_fleet) = run_pool(&job_list, CostAware);
        prop_assert_eq!(&cost_aware, &serial);
        // The prefetching strategy never pays a cold reload: every reload
        // was staged ahead of its launch.
        prop_assert_eq!(cost_fleet.cold_reloads(), 0);
        prop_assert_eq!(
            cost_fleet.warm_launches(),
            cost_fleet.invocations(),
            "every launch must find its program staged"
        );
        let (residency, _) = run_pool(&job_list, ResidencyAware);
        prop_assert_eq!(&residency, &serial);
        let (round_robin, _) = run_pool(&job_list, RoundRobin);
        prop_assert_eq!(&round_robin, &serial);
        let (least_loaded, _) = run_pool(&job_list, LeastLoaded);
        prop_assert_eq!(&least_loaded, &serial);
    }

    #[test]
    fn served_outputs_are_bit_identical_to_serial_execution(
        mix in prop::collection::vec(
            (0usize..4, 1usize..4, -500i32..500, 0u64..5_000, 0u32..3, 0u8..4, 0u64..3_000),
            8,
        ),
        jobs in 1usize..9,
    ) {
        // The serving layer's core honesty property: however the admission
        // queue reorders dispatches (FIFO, deadline-driven, deficit
        // round-robin), whatever priorities, arrival stamps and deadlines
        // the tenants attach, and whether or not the stealing pass
        // re-routes queued jobs between the arrays, the outputs must be
        // bit-identical to running every job serially in submission order
        // on one fresh session.  Scheduling moves when and where the work
        // runs — never what it computes.
        let mix = &mix[..jobs];
        let kernels = pool_kernels();
        let job_list = pool_jobs(
            &mix.iter()
                .map(|&(pick, windows, seed, ..)| (pick, windows, seed))
                .collect::<Vec<_>>(),
        );
        let (serial, _) = Pool::run_serial_reference(
            job_list
                .iter()
                .map(|(pick, ws)| (&kernels[*pick], ws.iter().map(Vec::as_slice))),
        )
        .expect("serial reference runs");

        for stealing in [false, true] {
            prop_assert_eq!(&run_server(mix, Fifo, stealing), &serial);
            prop_assert_eq!(&run_server(mix, EarliestDeadlineFirst, stealing), &serial);
            prop_assert_eq!(&run_server(mix, WeightedFair::new(), stealing), &serial);
        }
    }

    #[test]
    fn fleet_reports_conserve_work_and_bound_the_wall_clock(
        mix in prop::collection::vec((0usize..4, 1usize..4, -500i32..500), 8),
        jobs in 1usize..9,
    ) {
        // The fleet-level mirror of the schedule-conservation proptest:
        // arrays run concurrently, so the fleet wall clock is the maximum
        // per-array wall clock (never below any array, never below the
        // busiest engine), while the fleet busy cycles are the *sum* of
        // the per-array spans — no work may be lost or invented by the
        // merge, for any placement strategy.  With prefetch (the
        // cost-aware default) the speculative configuration streaming must
        // appear in both the ConfigLoad occupancy and the serial phase
        // sum, or the identity breaks.
        let job_list = pool_jobs(&mix[..jobs]);
        for fleet in [
            run_pool(&job_list, CostAware).1,
            run_pool(&job_list, ResidencyAware).1,
            run_pool(&job_list, RoundRobin).1,
            run_pool(&job_list, LeastLoaded).1,
        ] {
            let max_wall = fleet
                .arrays
                .iter()
                .map(|a| a.report.wall_cycles)
                .max()
                .unwrap_or(0);
            prop_assert_eq!(fleet.wall_cycles(), max_wall);
            let mut busy_sum = 0u64;
            for array in &fleet.arrays {
                prop_assert!(fleet.wall_cycles() >= array.report.wall_cycles);
                // Per-array work conservation: every phase cycle the
                // session accounted appears exactly once in the array's
                // engine occupancy (interrupt servicing rides on top).
                prop_assert_eq!(
                    array.report.busy.config_load
                        + array.report.busy.dma
                        + array.report.busy.compute,
                    array.report.cycles
                );
                prop_assert!(array.report.wall_cycles <= array.report.busy.total());
                busy_sum += array.report.busy.total();
            }
            prop_assert_eq!(fleet.busy().total(), busy_sum);
            prop_assert_eq!(fleet.serial_cycles(), busy_sum);
            prop_assert!((0.0..=1.0).contains(&fleet.occupancy()));
            prop_assert_eq!(
                fleet.invocations(),
                job_list.iter().map(|(_, ws)| ws.len() as u64).sum::<u64>()
            );
        }
    }
}
