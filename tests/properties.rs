//! Workspace-level property-based tests on the core invariants.

use proptest::prelude::*;
use vwr2a::core::geometry::Geometry;
use vwr2a::core::geometry::VwrId;
use vwr2a::core::isa::encode::{
    decode_lcu, decode_lsu, decode_mxcu, decode_rc, encode_lcu, encode_lsu, encode_mxcu, encode_rc,
};
use vwr2a::core::isa::{
    LcuCond, LcuInstr, LcuSrc, LsuAddr, LsuInstr, MxcuInstr, RcDst, RcInstr, RcOpcode, RcSrc,
    ShuffleOp,
};
use vwr2a::core::shuffle::apply;
use vwr2a::dsp::complex::Complex;
use vwr2a::dsp::fft::{fft, ifft};
use vwr2a::dsp::fir::fir_f64;
use vwr2a::dsp::fixed::{from_q16, mul_fxp, to_q16};
use vwr2a::fftaccel::FftAccelerator;
use vwr2a::kernels::fft::FftKernel;
use vwr2a::kernels::Spectrum;
use vwr2a::runtime::pool::{
    CostAware, LeastLoaded, Objective, Placement, Pool, ResidencyAware, RoundRobin,
};
use vwr2a::runtime::testing::{constrained_sessions, BakedScaleKernel};
use vwr2a::runtime::{
    ArcPolicy, EarliestDeadlineFirst, Fifo, FleetReport, Kernel, SchedPolicy, ServeJob,
    WeightedFair,
};
use vwr2a::soc::cpu::Cpu;
use vwr2a::soc::sram::Sram;
use vwr2a::{BackendKind, CpuBackend, FftBackend};

/// The kernel palette of the pool properties: four distinct
/// configuration-memory programs.
fn pool_kernels() -> Vec<BakedScaleKernel> {
    [2i16, 3, 5, 7]
        .iter()
        .map(|&f| BakedScaleKernel::new(f))
        .collect()
}

/// Builds a `(kernel pick, windows)` job list from a random mix.
fn pool_jobs(mix: &[(usize, usize, i32)]) -> Vec<(usize, Vec<Vec<i32>>)> {
    mix.iter()
        .map(|&(pick, windows, seed)| {
            (
                pick,
                (0..windows)
                    .map(|w| (0..64).map(|i| i + seed + 13 * w as i32).collect())
                    .collect(),
            )
        })
        .collect()
}

/// Fans the job list across a two-array pool whose configuration memories
/// hold two programs each (the four-program palette does not fit one
/// array), returning the outputs grouped by job and the fleet report.
fn run_pool(
    jobs: &[(usize, Vec<Vec<i32>>)],
    placement: impl Placement + 'static,
) -> (Vec<Vec<Vec<i32>>>, FleetReport) {
    let kernels = pool_kernels();
    let program_words = kernels[0]
        .program(&Geometry::paper())
        .unwrap()
        .config_words();
    let mut pool = Pool::with_sessions(constrained_sessions(2, 2 * program_words))
        .expect("constrained sessions share one geometry")
        .with_placement(placement);
    pool.run_batch(
        jobs.iter()
            .map(|(pick, ws)| (&kernels[*pick], ws.iter().map(Vec::as_slice))),
    )
    .expect("pool fan-out must absorb capacity pressure")
}

/// One random serve job: `(pick, windows, seed, arrival, tenant,
/// priority, deadline slack)` — slack 0 encodes "no deadline" (the
/// vendored proptest has no `Option` strategy).
type ServeMix = (usize, usize, i32, u64, u32, u8, u64);

/// Serves the random mix through a two-array `Server` under the given
/// policy, returning the outputs grouped by submission order.
fn run_server(
    mix: &[ServeMix],
    policy: impl SchedPolicy + 'static,
    stealing: bool,
) -> Vec<Vec<Vec<i32>>> {
    let kernels = pool_kernels();
    let job_list = pool_jobs(
        &mix.iter()
            .map(|&(pick, windows, seed, ..)| (pick, windows, seed))
            .collect::<Vec<_>>(),
    );
    let program_words = kernels[0]
        .program(&Geometry::paper())
        .unwrap()
        .config_words();
    let pool = Pool::with_sessions(constrained_sessions(2, 2 * program_words))
        .expect("constrained sessions share one geometry");
    let mut server = vwr2a::runtime::Server::new(pool)
        .with_policy(policy)
        .with_stealing(stealing);
    let (outputs, report) = server
        .run_batch(job_list.iter().zip(mix).map(
            |((pick, ws), &(_, _, _, arrival, tenant, priority, slack))| ServeJob {
                kernel: &kernels[*pick],
                windows: ws.iter().map(Vec::as_slice),
                tenant,
                arrival_cycle: arrival,
                priority,
                deadline_cycle: (slack > 0).then(|| arrival + slack),
            },
        ))
        .expect("serving must absorb capacity pressure");
    assert_eq!(report.latencies.len(), job_list.len());
    outputs
}

/// As [`run_server`], but with the whole-queue lookahead planner enabled
/// (affinity batching, pipelined prefetch, needed-soon eviction shielding)
/// over ARC adaptive eviction, placed by the given cost objective.
fn run_planned_server(
    mix: &[ServeMix],
    policy: impl SchedPolicy + 'static,
    stealing: bool,
    objective: Objective,
) -> Vec<Vec<Vec<i32>>> {
    let kernels = pool_kernels();
    let job_list = pool_jobs(
        &mix.iter()
            .map(|&(pick, windows, seed, ..)| (pick, windows, seed))
            .collect::<Vec<_>>(),
    );
    let program_words = kernels[0]
        .program(&Geometry::paper())
        .unwrap()
        .config_words();
    let mut sessions = constrained_sessions(2, 2 * program_words);
    for session in &mut sessions {
        session.set_eviction_policy(ArcPolicy::new());
    }
    let pool = Pool::with_sessions(sessions)
        .expect("constrained sessions share one geometry")
        .with_placement(CostAware::with_objective(objective));
    let mut server = vwr2a::runtime::Server::new(pool)
        .with_policy(policy)
        .with_stealing(stealing)
        .with_lookahead(true);
    let (outputs, report) = server
        .run_batch(job_list.iter().zip(mix).map(
            |((pick, ws), &(_, _, _, arrival, tenant, priority, slack))| ServeJob {
                kernel: &kernels[*pick],
                windows: ws.iter().map(Vec::as_slice),
                tenant,
                arrival_cycle: arrival,
                priority,
                deadline_cycle: (slack > 0).then(|| arrival + slack),
            },
        ))
        .expect("planned serving must absorb capacity pressure");
    assert_eq!(report.latencies.len(), job_list.len());
    outputs
}

/// A heterogeneous fleet: two full arrays, the FFT engine and the host CPU.
fn hetero_pool(placement: impl Placement + 'static) -> Pool {
    Pool::new(2)
        .with_backend(FftBackend::new())
        .with_backend(CpuBackend::new())
        .with_placement(placement)
}

/// The scale-kernel palette with an advertised host-CPU fallback, so the
/// placement strategies may legally route any job to the CPU backend.
fn hetero_kernels() -> Vec<BakedScaleKernel> {
    [2i16, 3, 5, 7]
        .iter()
        .map(|&f| BakedScaleKernel::new(f).with_cpu_offload(600))
        .collect()
}

/// Checks a heterogeneous wave of scale jobs against each landed backend's
/// own serial model: array-landed jobs must equal the single-session serial
/// reference, CPU-landed jobs must equal a fresh-ISS run of every window,
/// and the FFT engine must never see a job whose kernel has no FFT shape.
fn check_hetero_scale_outputs(
    tag: &str,
    outputs: &[Vec<Vec<i32>>],
    fleet: &FleetReport,
    job_list: &[(usize, Vec<Vec<i32>>)],
    kernels: &[BakedScaleKernel],
    serial: &[Vec<Vec<i32>>],
) {
    assert_eq!(
        fleet.routes.len(),
        job_list.len(),
        "{tag}: every job is routed exactly once"
    );
    for route in &fleet.routes {
        let (pick, windows) = &job_list[route.job];
        match route.kind {
            BackendKind::FftAccel => {
                panic!("{tag}: scale job {} landed on the FFT engine", route.job)
            }
            BackendKind::Array => assert_eq!(
                outputs[route.job], serial[route.job],
                "{tag}: array-landed job {} diverged from the serial reference",
                route.job
            ),
            BackendKind::Cpu => {
                let expected: Vec<Vec<i32>> = windows
                    .iter()
                    .map(|w| {
                        kernels[*pick]
                            .execute_cpu(&mut Cpu::new(), &mut Sram::paper(), w)
                            .expect("the CPU model accepts every window it was routed")
                            .0
                    })
                    .collect();
                assert_eq!(
                    outputs[route.job], expected,
                    "{tag}: CPU-landed job {} diverged from a fresh ISS run",
                    route.job
                );
            }
        }
    }
}

/// Checks the energy attribution invariant on one wave: each job's routed
/// joules sum *exactly* (integer nanojoules, no float drift) to its landed
/// kind's execution total, and the kinds plus non-job-attributed prefetch
/// staging sum to the fleet total.
fn check_energy_attribution(tag: &str, fleet: &FleetReport) {
    let kinds = fleet.per_kind();
    for stats in &kinds {
        let routed: u64 = fleet
            .routes
            .iter()
            .filter(|r| r.kind == stats.kind)
            .map(|r| r.energy_nj)
            .sum();
        assert_eq!(
            routed,
            stats.energy_nj - stats.prefetch_energy_nj,
            "{tag}: {} job joules must sum to the kind's execution total",
            stats.kind.label()
        );
    }
    assert_eq!(
        kinds.iter().map(|k| k.energy_nj).sum::<u64>(),
        fleet.energy_nj(),
        "{tag}: kind totals must sum to the fleet total"
    );
    let routed: u64 = fleet.routes.iter().map(|r| r.energy_nj).sum();
    let prefetch: u64 = kinds.iter().map(|k| k.prefetch_energy_nj).sum();
    assert_eq!(
        routed + prefetch,
        fleet.energy_nj(),
        "{tag}: job joules plus prefetch staging must sum to the fleet total"
    );
    assert!(fleet.energy_nj() > 0, "{tag}: real work costs real joules");
}

/// Deterministic q15.16 spectra for the FFT routing property.
fn fft_windows(windows: usize, seed: i32) -> Vec<Spectrum> {
    (0..windows)
        .map(|w| {
            let re = (0..256)
                .map(|i: i32| (i * 37 + seed * 11 + w as i32 * 13) % 20_000)
                .collect();
            let im = (0..256)
                .map(|i: i32| (i * 53 + seed * 7 - w as i32 * 29) % 20_000)
                .collect();
            Spectrum::new(re, im)
        })
        .collect()
}

/// Fans the scale-job list across the heterogeneous fleet.
fn run_hetero_pool(
    job_list: &[(usize, Vec<Vec<i32>>)],
    kernels: &[BakedScaleKernel],
    placement: impl Placement + 'static,
) -> (Vec<Vec<Vec<i32>>>, FleetReport) {
    let mut pool = hetero_pool(placement);
    pool.run_batch(
        job_list
            .iter()
            .map(|(pick, ws)| (&kernels[*pick], ws.iter().map(Vec::as_slice))),
    )
    .expect("heterogeneous pool fan-out runs")
}

/// Serves the random mix through the heterogeneous fleet under the given
/// policy, returning outputs grouped by submission order plus the report.
fn run_hetero_server(
    mix: &[ServeMix],
    kernels: &[BakedScaleKernel],
    job_list: &[(usize, Vec<Vec<i32>>)],
    policy: impl SchedPolicy + 'static,
    stealing: bool,
) -> (Vec<Vec<Vec<i32>>>, vwr2a::ServeReport) {
    let mut server = vwr2a::runtime::Server::new(hetero_pool(CostAware::default()))
        .with_policy(policy)
        .with_stealing(stealing);
    server
        .run_batch(job_list.iter().zip(mix).map(
            |((pick, ws), &(_, _, _, arrival, tenant, priority, slack))| ServeJob {
                kernel: &kernels[*pick],
                windows: ws.iter().map(Vec::as_slice),
                tenant,
                arrival_cycle: arrival,
                priority,
                deadline_cycle: (slack > 0).then(|| arrival + slack),
            },
        ))
        .expect("heterogeneous serving runs")
}

/// Caps a random RC instruction at one SRF access (the SRF is
/// single-ported, so a row with more is a static structural hazard):
/// surplus SRF operands become the zero source, keeping the row legal
/// while preserving the instruction's shape otherwise.
fn cap_srf_accesses(mut instr: RcInstr) -> RcInstr {
    let mut used = matches!(instr.dst, RcDst::Srf(_));
    if matches!(instr.src_a, RcSrc::Srf(_)) {
        if used {
            instr.src_a = RcSrc::Zero;
        } else {
            used = true;
        }
    }
    if matches!(instr.src_b, RcSrc::Srf(_)) && used {
        instr.src_b = RcSrc::Zero;
    }
    instr
}

/// Builds a single-column kernel around a random RC body: the VWR loads
/// and the final store take their line addresses from `SRF[6]`/`SRF[7]`
/// (addressing parameters the replay cache must guard), while the body's
/// own SRF reads and writes land anywhere — including on those pointers,
/// which exercises the recorder's write-then-consume poisoning.
fn replay_kernel(name: &str, body: &[RcInstr]) -> vwr2a::core::KernelProgram {
    use vwr2a::core::builder::ColumnProgramBuilder;
    let mut b = ColumnProgramBuilder::new(4);
    b.push(b.row().lsu(LsuInstr::LoadVwr {
        vwr: VwrId::A,
        line: LsuAddr::Srf(6),
    }));
    b.push(b.row().lsu(LsuInstr::LoadVwr {
        vwr: VwrId::B,
        line: LsuAddr::Imm(0),
    }));
    for (i, instr) in body.iter().enumerate() {
        b.push(b.row().rc(i % 4, cap_srf_accesses(*instr)));
    }
    b.push(b.row().lsu(LsuInstr::StoreVwr {
        vwr: VwrId::C,
        line: LsuAddr::Srf(7),
    }));
    b.push_exit();
    vwr2a::core::KernelProgram::new(name.to_string(), vec![b.build().unwrap()]).unwrap()
}

fn arb_rc_src() -> impl Strategy<Value = RcSrc> {
    prop_oneof![
        Just(RcSrc::Zero),
        any::<i16>().prop_map(RcSrc::Imm),
        (0u8..2).prop_map(RcSrc::Reg),
        (0usize..3).prop_map(|i| RcSrc::Vwr(VwrId::from_index(i))),
        (0u8..8).prop_map(RcSrc::Srf),
        Just(RcSrc::RcAbove),
        Just(RcSrc::RcBelow),
        Just(RcSrc::SelfPrev),
    ]
}

fn arb_rc_instr() -> impl Strategy<Value = RcInstr> {
    let op = prop_oneof![
        Just(RcOpcode::Nop),
        Just(RcOpcode::Mov),
        Just(RcOpcode::Add),
        Just(RcOpcode::Sub),
        Just(RcOpcode::Mul),
        Just(RcOpcode::MulFxp),
        Just(RcOpcode::And),
        Just(RcOpcode::Or),
        Just(RcOpcode::Xor),
        Just(RcOpcode::Sll),
        Just(RcOpcode::Sra),
        Just(RcOpcode::Min),
        Just(RcOpcode::Max),
        Just(RcOpcode::Sgt),
    ];
    let dst = prop_oneof![
        Just(RcDst::None),
        (0u8..2).prop_map(RcDst::Reg),
        (0usize..3).prop_map(|i| RcDst::Vwr(VwrId::from_index(i))),
        (0u8..8).prop_map(RcDst::Srf),
    ];
    (op, dst, arb_rc_src(), arb_rc_src()).prop_map(|(op, dst, a, b)| RcInstr::new(op, dst, a, b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rc_instruction_encoding_round_trips(instr in arb_rc_instr()) {
        let word = encode_rc(&instr).unwrap();
        prop_assert_eq!(decode_rc(word).unwrap(), instr);
    }

    #[test]
    fn lsu_lcu_mxcu_encoding_round_trips(
        vwr in 0usize..3,
        line in 0u16..64,
        srf in 0u8..8,
        imm in any::<i16>(),
        target in 0u16..64,
        value in any::<i32>(),
        shuffle in 0usize..8,
    ) {
        let lsu = [
            LsuInstr::LoadVwr { vwr: VwrId::from_index(vwr), line: LsuAddr::Imm(line) },
            LsuInstr::StoreVwr { vwr: VwrId::from_index(vwr), line: LsuAddr::Srf(srf) },
            LsuInstr::AddSrf { srf, imm },
            LsuInstr::Shuffle(ShuffleOp::ALL[shuffle]),
        ];
        for instr in lsu {
            prop_assert_eq!(decode_lsu(encode_lsu(&instr).unwrap()).unwrap(), instr);
        }
        let lcu = [
            LcuInstr::Li { r: srf % 4, value },
            LcuInstr::Branch { cond: LcuCond::Lt, a: srf % 4, b: LcuSrc::Imm(value), target },
            LcuInstr::Jump(target),
        ];
        for instr in lcu {
            prop_assert_eq!(decode_lcu(encode_lcu(&instr).unwrap()).unwrap(), instr);
        }
        let mxcu = [MxcuInstr::SetIdx(line), MxcuInstr::AddIdx(imm), MxcuInstr::LoadIdxSrf(srf)];
        for instr in mxcu {
            prop_assert_eq!(decode_mxcu(encode_mxcu(&instr).unwrap()).unwrap(), instr);
        }
    }

    #[test]
    fn shuffle_interleave_and_prune_are_inverses(
        a in prop::collection::vec(any::<i32>(), 128),
        b in prop::collection::vec(any::<i32>(), 128),
    ) {
        let lower = apply(ShuffleOp::InterleaveLower, &a, &b, 32);
        let upper = apply(ShuffleOp::InterleaveUpper, &a, &b, 32);
        prop_assert_eq!(apply(ShuffleOp::EvenPrune, &lower, &upper, 32), a);
        prop_assert_eq!(apply(ShuffleOp::OddPrune, &lower, &upper, 32), b);
    }

    #[test]
    fn fft_round_trip_preserves_the_signal(
        values in prop::collection::vec(-1.0f64..1.0, 64),
    ) {
        let signal: Vec<Complex> = values.iter().map(|&v| Complex::new(v, -v * 0.5)).collect();
        let back = ifft(&fft(&signal).unwrap()).unwrap();
        for (a, b) in signal.iter().zip(back.iter()) {
            prop_assert!((a.re - b.re).abs() < 1e-9);
            prop_assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn fir_is_linear(
        x in prop::collection::vec(-0.5f64..0.5, 64),
        y in prop::collection::vec(-0.5f64..0.5, 64),
    ) {
        let taps = [0.2, 0.3, 0.2, 0.1];
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let fx = fir_f64(&taps, &x).unwrap();
        let fy = fir_f64(&taps, &y).unwrap();
        let fsum = fir_f64(&taps, &sum).unwrap();
        for i in 0..x.len() {
            prop_assert!((fsum[i] - (fx[i] + fy[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn fixed_point_multiply_is_bounded_and_sign_correct(
        a in -1000.0f64..1000.0,
        b in -1.0f64..1.0,
    ) {
        let product = from_q16(mul_fxp(to_q16(a), to_q16(b)));
        prop_assert!((product - a * b).abs() < 0.05 + (a * b).abs() * 1e-3);
    }

    #[test]
    fn pipelined_schedules_never_lose_or_invent_work(
        phase_list in prop::collection::vec(
            (0u64..2_000, 0u64..500, 1u64..5_000, 0u64..2_000),
            8,
        ),
    ) {
        use vwr2a::runtime::{StreamSchedule, WindowPhases};

        let mut schedule = StreamSchedule::new();
        let mut serial_phase_sum = 0u64;
        for &(stage, config, compute, drain) in &phase_list {
            let phases = WindowPhases { stage, config, compute, drain };
            serial_phase_sum += phases.total();
            schedule.push(phases);
        }
        let timeline = schedule.finish();
        // Work is conserved: every scheduled phase cycle appears exactly
        // once in the per-engine occupancy...
        let occupancy = timeline.occupancy();
        prop_assert_eq!(
            occupancy.config_load + occupancy.dma + occupancy.compute,
            serial_phase_sum
        );
        // ...the overlapped wall clock never beats the longest engine nor
        // exceeds the fully serial schedule...
        let busiest = [occupancy.config_load, occupancy.dma, occupancy.compute,
                       occupancy.interrupt].into_iter().max().unwrap();
        prop_assert!(timeline.wall_cycles() >= busiest);
        prop_assert!(timeline.wall_cycles() <= timeline.serial_cycles());
        // ...and the overlap ratio stays a valid fraction.
        prop_assert!((0.0..=1.0).contains(&timeline.overlap_ratio()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn replay_cache_is_invisible_under_random_kernels_params_and_evictions(
        bodies in prop::collection::vec(prop::collection::vec(arb_rc_instr(), 4), 3),
        body_lens in prop::collection::vec(1usize..5, 3),
        script in prop::collection::vec(
            (0usize..4, 0usize..8, -2_000i32..2_000, any::<bool>()),
            12,
        ),
        steps in 1usize..13,
    ) {
        // The replay tentpole's honesty property: drive two accelerators —
        // replay cache on (the default) and forced interpretation — through
        // an identical random history of kernel loads, SRF parameter
        // writes (including writes to the guarded line pointers, which must
        // invalidate any trace recorded under the old value), launches and
        // slot evictions.  After every step the two machines must agree on
        // everything observable: the launch result, the lifetime activity
        // counters, the whole SPM and the whole column state.  The cache
        // may only ever change host wall-clock, never a modelled bit.
        use vwr2a::core::config_mem::KernelId;
        use vwr2a::core::Vwr2a;

        let mut on = Vwr2a::new();
        let mut off = Vwr2a::new();
        off.set_replay_enabled(false);
        let seed: Vec<i32> = (0..256).map(|i| (i * 31 - 300) % 997).collect();
        on.dma_to_spm(&seed, 0).unwrap();
        off.dma_to_spm(&seed, 0).unwrap();

        let kernels: Vec<_> = bodies
            .iter()
            .zip(&body_lens)
            .enumerate()
            .map(|(i, (body, &len))| replay_kernel(&format!("rand-{i}"), &body[..len]))
            .collect();
        let mut ids: Vec<Option<(KernelId, KernelId)>> = vec![None; kernels.len()];
        let lines = on.spm().lines();

        for &(pick, srf, value, evict) in &script[..steps] {
            let pick = pick % kernels.len();
            if evict {
                if let Some((a, b)) = ids[pick].take() {
                    on.unload_kernel(a).unwrap();
                    off.unload_kernel(b).unwrap();
                }
            }
            // SRF 6/7 are the kernels' line pointers: keep those in range
            // so the launches make progress; the rest is free-form data.
            let value = if srf >= 6 {
                (value.unsigned_abs() as usize % lines) as i32
            } else {
                value
            };
            on.write_srf(0, srf, value).unwrap();
            off.write_srf(0, srf, value).unwrap();
            if ids[pick].is_none() {
                ids[pick] = Some((
                    on.load_kernel(&kernels[pick]).unwrap(),
                    off.load_kernel(&kernels[pick]).unwrap(),
                ));
            }
            let (id_on, id_off) = ids[pick].unwrap();
            match (on.run_kernel(id_on), off.run_kernel(id_off)) {
                (Ok(sa), Ok(sb)) => prop_assert_eq!(sa, sb),
                // A random body may compute an out-of-range line pointer;
                // then both machines must fail identically.
                (Err(ea), Err(eb)) => {
                    prop_assert_eq!(format!("{ea:?}"), format!("{eb:?}"))
                }
                (ra, rb) => prop_assert!(
                    false,
                    "replay on/off diverged: {:?} vs {:?}",
                    ra,
                    rb
                ),
            }
            prop_assert_eq!(on.counters(), off.counters());
            prop_assert_eq!(on.spm(), off.spm());
            prop_assert_eq!(on.column(0).unwrap(), off.column(0).unwrap());
        }
    }

    #[test]
    fn pool_outputs_are_bit_identical_to_serial_execution(
        mix in prop::collection::vec((0usize..4, 1usize..4, -500i32..500), 8),
        jobs in 1usize..9,
    ) {
        // Random job mixes under genuine capacity pressure (4 programs,
        // 2-slot memories): for every placement strategy — including the
        // prefetching cost-aware default, whose speculative reloads must
        // stay invisible to the data path — the pool's outputs must equal
        // running every job serially, in submission order, on one fresh
        // session.  Placement, pipelining and prefetch must never change a
        // single bit.
        let kernels = pool_kernels();
        let job_list = pool_jobs(&mix[..jobs]);
        let (serial, _) = Pool::run_serial_reference(
            job_list
                .iter()
                .map(|(pick, ws)| (&kernels[*pick], ws.iter().map(Vec::as_slice))),
        )
        .expect("serial reference runs");

        let (cost_aware, cost_fleet) = run_pool(&job_list, CostAware::default());
        prop_assert_eq!(&cost_aware, &serial);
        // The prefetching strategy never pays a cold reload: every reload
        // was staged ahead of its launch.
        prop_assert_eq!(cost_fleet.cold_reloads(), 0);
        prop_assert_eq!(
            cost_fleet.warm_launches(),
            cost_fleet.invocations(),
            "every launch must find its program staged"
        );
        let (residency, _) = run_pool(&job_list, ResidencyAware);
        prop_assert_eq!(&residency, &serial);
        let (round_robin, _) = run_pool(&job_list, RoundRobin);
        prop_assert_eq!(&round_robin, &serial);
        let (least_loaded, _) = run_pool(&job_list, LeastLoaded);
        prop_assert_eq!(&least_loaded, &serial);
    }

    #[test]
    fn served_outputs_are_bit_identical_to_serial_execution(
        mix in prop::collection::vec(
            (0usize..4, 1usize..4, -500i32..500, 0u64..5_000, 0u32..3, 0u8..4, 0u64..3_000),
            8,
        ),
        jobs in 1usize..9,
    ) {
        // The serving layer's core honesty property: however the admission
        // queue reorders dispatches (FIFO, deadline-driven, deficit
        // round-robin), whatever priorities, arrival stamps and deadlines
        // the tenants attach, and whether or not the stealing pass
        // re-routes queued jobs between the arrays, the outputs must be
        // bit-identical to running every job serially in submission order
        // on one fresh session.  Scheduling moves when and where the work
        // runs — never what it computes.
        let mix = &mix[..jobs];
        let kernels = pool_kernels();
        let job_list = pool_jobs(
            &mix.iter()
                .map(|&(pick, windows, seed, ..)| (pick, windows, seed))
                .collect::<Vec<_>>(),
        );
        let (serial, _) = Pool::run_serial_reference(
            job_list
                .iter()
                .map(|(pick, ws)| (&kernels[*pick], ws.iter().map(Vec::as_slice))),
        )
        .expect("serial reference runs");

        for stealing in [false, true] {
            prop_assert_eq!(&run_server(mix, Fifo, stealing), &serial);
            prop_assert_eq!(&run_server(mix, EarliestDeadlineFirst, stealing), &serial);
            prop_assert_eq!(&run_server(mix, WeightedFair::new(), stealing), &serial);
        }
    }

    #[test]
    fn fleet_reports_conserve_work_and_bound_the_wall_clock(
        mix in prop::collection::vec((0usize..4, 1usize..4, -500i32..500), 8),
        jobs in 1usize..9,
    ) {
        // The fleet-level mirror of the schedule-conservation proptest:
        // arrays run concurrently, so the fleet wall clock is the maximum
        // per-array wall clock (never below any array, never below the
        // busiest engine), while the fleet busy cycles are the *sum* of
        // the per-array spans — no work may be lost or invented by the
        // merge, for any placement strategy.  With prefetch (the
        // cost-aware default) the speculative configuration streaming must
        // appear in both the ConfigLoad occupancy and the serial phase
        // sum, or the identity breaks.
        let job_list = pool_jobs(&mix[..jobs]);
        for fleet in [
            run_pool(&job_list, CostAware::default()).1,
            run_pool(&job_list, ResidencyAware).1,
            run_pool(&job_list, RoundRobin).1,
            run_pool(&job_list, LeastLoaded).1,
        ] {
            let max_wall = fleet
                .arrays
                .iter()
                .map(|a| a.report.wall_cycles)
                .max()
                .unwrap_or(0);
            prop_assert_eq!(fleet.wall_cycles(), max_wall);
            let mut busy_sum = 0u64;
            for array in &fleet.arrays {
                prop_assert!(fleet.wall_cycles() >= array.report.wall_cycles);
                // Per-array work conservation: every phase cycle the
                // session accounted appears exactly once in the array's
                // engine occupancy (interrupt servicing rides on top).
                prop_assert_eq!(
                    array.report.busy.config_load
                        + array.report.busy.dma
                        + array.report.busy.compute,
                    array.report.cycles
                );
                prop_assert!(array.report.wall_cycles <= array.report.busy.total());
                busy_sum += array.report.busy.total();
            }
            prop_assert_eq!(fleet.busy().total(), busy_sum);
            prop_assert_eq!(fleet.serial_cycles(), busy_sum);
            prop_assert!((0.0..=1.0).contains(&fleet.occupancy()));
            prop_assert_eq!(
                fleet.invocations(),
                job_list.iter().map(|(_, ws)| ws.len() as u64).sum::<u64>()
            );
        }
    }

    #[test]
    fn hetero_outputs_are_bit_identical_per_landed_backend(
        mix in prop::collection::vec(
            (0usize..4, 1usize..4, -500i32..500, 0u64..5_000, 0u32..3, 0u8..4, 0u64..3_000),
            6,
        ),
        jobs in 1usize..7,
    ) {
        // The heterogeneous honesty property: on a fleet of two arrays, the
        // FFT engine and the host CPU, every placement strategy and every
        // serving policy (with and without stealing) may route a job
        // anywhere its capability classes allow — but the output of each
        // job must be bit-identical to the landed backend's own serial
        // model, and a backend must never receive a job it cannot serve.
        let mix = &mix[..jobs];
        let kernels = hetero_kernels();
        let job_list = pool_jobs(
            &mix.iter()
                .map(|&(pick, windows, seed, ..)| (pick, windows, seed))
                .collect::<Vec<_>>(),
        );
        let (serial, _) = Pool::run_serial_reference(
            job_list
                .iter()
                .map(|(pick, ws)| (&kernels[*pick], ws.iter().map(Vec::as_slice))),
        )
        .expect("serial reference runs");

        for (tag, fleet_run) in [
            ("pool/cost-aware", run_hetero_pool(&job_list, &kernels, CostAware::default())),
            ("pool/residency", run_hetero_pool(&job_list, &kernels, ResidencyAware)),
            ("pool/round-robin", run_hetero_pool(&job_list, &kernels, RoundRobin)),
            ("pool/least-loaded", run_hetero_pool(&job_list, &kernels, LeastLoaded)),
        ] {
            let (outputs, fleet) = fleet_run;
            check_hetero_scale_outputs(tag, &outputs, &fleet, &job_list, &kernels, &serial);
        }
        for stealing in [false, true] {
            for (tag, served) in [
                ("serve/fifo", run_hetero_server(mix, &kernels, &job_list, Fifo, stealing)),
                (
                    "serve/edf",
                    run_hetero_server(mix, &kernels, &job_list, EarliestDeadlineFirst, stealing),
                ),
                (
                    "serve/wfq",
                    run_hetero_server(mix, &kernels, &job_list, WeightedFair::new(), stealing),
                ),
            ] {
                let (outputs, report) = served;
                check_hetero_scale_outputs(tag, &outputs, &report.fleet, &job_list, &kernels, &serial);
            }
        }
    }

    #[test]
    fn job_energy_sums_exactly_to_kind_and_fleet_totals(
        mix in prop::collection::vec(
            (0usize..4, 1usize..4, -500i32..500, 0u64..5_000, 0u32..3, 0u8..4, 0u64..3_000),
            6,
        ),
        jobs in 1usize..7,
    ) {
        // The energy ledger balances for every placement strategy (all
        // four CostAware objectives included), every serving policy, and
        // stealing on or off: per-job routed joules sum bit-exactly to
        // per-kind execution totals, and kinds (plus prefetch staging)
        // to the fleet total.  Integer nanojoule accounting is what makes
        // the equalities exact rather than within-epsilon.
        let mix = &mix[..jobs];
        let kernels = hetero_kernels();
        let job_list = pool_jobs(
            &mix.iter()
                .map(|&(pick, windows, seed, ..)| (pick, windows, seed))
                .collect::<Vec<_>>(),
        );
        for (tag, run) in [
            ("pool/cycles", run_hetero_pool(&job_list, &kernels, CostAware::default())),
            (
                "pool/energy",
                run_hetero_pool(&job_list, &kernels, CostAware::with_objective(Objective::Energy)),
            ),
            (
                "pool/edp",
                run_hetero_pool(
                    &job_list,
                    &kernels,
                    CostAware::with_objective(Objective::EnergyDelayProduct),
                ),
            ),
            (
                "pool/energy-deadline",
                run_hetero_pool(
                    &job_list,
                    &kernels,
                    CostAware::with_objective(Objective::EnergyUnderDeadline),
                ),
            ),
            ("pool/residency", run_hetero_pool(&job_list, &kernels, ResidencyAware)),
            ("pool/round-robin", run_hetero_pool(&job_list, &kernels, RoundRobin)),
            ("pool/least-loaded", run_hetero_pool(&job_list, &kernels, LeastLoaded)),
        ] {
            let (_, fleet) = run;
            check_energy_attribution(tag, &fleet);
        }
        for stealing in [false, true] {
            for (tag, served) in [
                ("serve/fifo", run_hetero_server(mix, &kernels, &job_list, Fifo, stealing)),
                (
                    "serve/edf",
                    run_hetero_server(mix, &kernels, &job_list, EarliestDeadlineFirst, stealing),
                ),
                (
                    "serve/wfq",
                    run_hetero_server(mix, &kernels, &job_list, WeightedFair::new(), stealing),
                ),
            ] {
                let (_, report) = served;
                check_energy_attribution(&format!("{tag}/steal:{stealing}"), &report.fleet);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn lookahead_planned_outputs_are_bit_identical_to_serial_execution(
        mix in prop::collection::vec(
            (0usize..4, 1usize..4, -500i32..500, 0u64..5_000, 0u32..3, 0u8..4, 0u64..3_000),
            8,
        ),
        jobs in 1usize..9,
    ) {
        // The lookahead planner's honesty property: affinity batching
        // reorders dispatches, pipelined prefetch stages configuration
        // words early, and the needed-soon shield redirects evictions —
        // yet under every scheduling policy, with and without stealing,
        // and under every placement objective, the served outputs must be
        // bit-identical to running every job serially in submission order
        // on one fresh session.  Planning moves when and where the work
        // runs — never what it computes.
        let mix = &mix[..jobs];
        let kernels = pool_kernels();
        let job_list = pool_jobs(
            &mix.iter()
                .map(|&(pick, windows, seed, ..)| (pick, windows, seed))
                .collect::<Vec<_>>(),
        );
        let (serial, _) = Pool::run_serial_reference(
            job_list
                .iter()
                .map(|(pick, ws)| (&kernels[*pick], ws.iter().map(Vec::as_slice))),
        )
        .expect("serial reference runs");

        for objective in [
            Objective::Cycles,
            Objective::Energy,
            Objective::EnergyDelayProduct,
            Objective::EnergyUnderDeadline,
        ] {
            for stealing in [false, true] {
                prop_assert_eq!(
                    &run_planned_server(mix, Fifo, stealing, objective),
                    &serial
                );
                prop_assert_eq!(
                    &run_planned_server(mix, EarliestDeadlineFirst, stealing, objective),
                    &serial
                );
                prop_assert_eq!(
                    &run_planned_server(mix, WeightedFair::new(), stealing, objective),
                    &serial
                );
            }
        }
    }

    #[test]
    fn fft_jobs_route_across_the_fleet_bit_identically(
        mix in prop::collection::vec((1usize..3, -120i32..120), 3),
        jobs in 1usize..4,
    ) {
        // FFT-shaped jobs may land on a CGRA array (bit-identical to the
        // serial single-session reference) or on the fixed-function engine
        // (bit-identical to the kernel's own accelerator model on fresh
        // hardware) — and nowhere else.  The two backends disagree
        // numerically (18-bit engine datapath vs q15.16 stage flow), which
        // is exactly why the comparison must follow the recorded routes.
        let kernel = FftKernel::new(256).unwrap();
        let job_list: Vec<Vec<Spectrum>> = mix[..jobs]
            .iter()
            .map(|&(windows, seed)| fft_windows(windows, seed))
            .collect();
        let (serial, _) =
            Pool::run_serial_reference(job_list.iter().map(|ws| (&kernel, ws.iter())))
                .expect("serial reference runs");

        let check = |tag: &str, outputs: &[Vec<Spectrum>], fleet: &FleetReport| {
            assert_eq!(fleet.routes.len(), job_list.len(), "{tag}: one route per job");
            for route in &fleet.routes {
                match route.kind {
                    BackendKind::Cpu => {
                        panic!("{tag}: FFT job {} landed on the CPU", route.job)
                    }
                    BackendKind::Array => assert_eq!(
                        outputs[route.job], serial[route.job],
                        "{tag}: array-landed job {} diverged",
                        route.job
                    ),
                    BackendKind::FftAccel => {
                        let expected: Vec<Spectrum> = job_list[route.job]
                            .iter()
                            .map(|w| {
                                kernel
                                    .execute_fft(&FftAccelerator::new(), w)
                                    .expect("the engine accepts every routed window")
                                    .0
                            })
                            .collect();
                        assert_eq!(
                            outputs[route.job], expected,
                            "{tag}: engine-landed job {} diverged",
                            route.job
                        );
                    }
                }
            }
        };

        for placement in ["cost-aware", "round-robin"] {
            let mut pool = match placement {
                "cost-aware" => hetero_pool(CostAware::default()),
                _ => hetero_pool(RoundRobin),
            };
            let (outputs, fleet) = pool
                .run_batch(job_list.iter().map(|ws| (&kernel, ws.iter())))
                .expect("heterogeneous pool absorbs the FFT wave");
            check(&format!("pool/{placement}"), &outputs, &fleet);
        }
        for stealing in [false, true] {
            let mut server = vwr2a::runtime::Server::new(hetero_pool(CostAware::default()))
                .with_policy(Fifo)
                .with_stealing(stealing);
            let (outputs, report) = server
                .run_batch(job_list.iter().enumerate().map(|(j, ws)| ServeJob {
                    kernel: &kernel,
                    windows: ws.iter(),
                    tenant: 0,
                    arrival_cycle: j as u64 * 1_000,
                    priority: 0,
                    deadline_cycle: None,
                }))
                .expect("heterogeneous serving absorbs the FFT wave");
            check(&format!("serve/steal:{stealing}"), &outputs, &report.fleet);
        }
    }
}
