//! Workspace-level property-based tests on the core invariants.

use proptest::prelude::*;
use vwr2a::core::geometry::VwrId;
use vwr2a::core::isa::encode::{
    decode_lcu, decode_lsu, decode_mxcu, decode_rc, encode_lcu, encode_lsu, encode_mxcu, encode_rc,
};
use vwr2a::core::isa::{
    LcuCond, LcuInstr, LcuSrc, LsuAddr, LsuInstr, MxcuInstr, RcDst, RcInstr, RcOpcode, RcSrc,
    ShuffleOp,
};
use vwr2a::core::shuffle::apply;
use vwr2a::dsp::complex::Complex;
use vwr2a::dsp::fft::{fft, ifft};
use vwr2a::dsp::fir::fir_f64;
use vwr2a::dsp::fixed::{from_q16, mul_fxp, to_q16};

fn arb_rc_src() -> impl Strategy<Value = RcSrc> {
    prop_oneof![
        Just(RcSrc::Zero),
        any::<i16>().prop_map(RcSrc::Imm),
        (0u8..2).prop_map(RcSrc::Reg),
        (0usize..3).prop_map(|i| RcSrc::Vwr(VwrId::from_index(i))),
        (0u8..8).prop_map(RcSrc::Srf),
        Just(RcSrc::RcAbove),
        Just(RcSrc::RcBelow),
        Just(RcSrc::SelfPrev),
    ]
}

fn arb_rc_instr() -> impl Strategy<Value = RcInstr> {
    let op = prop_oneof![
        Just(RcOpcode::Nop),
        Just(RcOpcode::Mov),
        Just(RcOpcode::Add),
        Just(RcOpcode::Sub),
        Just(RcOpcode::Mul),
        Just(RcOpcode::MulFxp),
        Just(RcOpcode::And),
        Just(RcOpcode::Or),
        Just(RcOpcode::Xor),
        Just(RcOpcode::Sll),
        Just(RcOpcode::Sra),
        Just(RcOpcode::Min),
        Just(RcOpcode::Max),
        Just(RcOpcode::Sgt),
    ];
    let dst = prop_oneof![
        Just(RcDst::None),
        (0u8..2).prop_map(RcDst::Reg),
        (0usize..3).prop_map(|i| RcDst::Vwr(VwrId::from_index(i))),
        (0u8..8).prop_map(RcDst::Srf),
    ];
    (op, dst, arb_rc_src(), arb_rc_src()).prop_map(|(op, dst, a, b)| RcInstr::new(op, dst, a, b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rc_instruction_encoding_round_trips(instr in arb_rc_instr()) {
        let word = encode_rc(&instr).unwrap();
        prop_assert_eq!(decode_rc(word).unwrap(), instr);
    }

    #[test]
    fn lsu_lcu_mxcu_encoding_round_trips(
        vwr in 0usize..3,
        line in 0u16..64,
        srf in 0u8..8,
        imm in any::<i16>(),
        target in 0u16..64,
        value in any::<i32>(),
        shuffle in 0usize..8,
    ) {
        let lsu = [
            LsuInstr::LoadVwr { vwr: VwrId::from_index(vwr), line: LsuAddr::Imm(line) },
            LsuInstr::StoreVwr { vwr: VwrId::from_index(vwr), line: LsuAddr::Srf(srf) },
            LsuInstr::AddSrf { srf, imm },
            LsuInstr::Shuffle(ShuffleOp::ALL[shuffle]),
        ];
        for instr in lsu {
            prop_assert_eq!(decode_lsu(encode_lsu(&instr).unwrap()).unwrap(), instr);
        }
        let lcu = [
            LcuInstr::Li { r: srf % 4, value },
            LcuInstr::Branch { cond: LcuCond::Lt, a: srf % 4, b: LcuSrc::Imm(value), target },
            LcuInstr::Jump(target),
        ];
        for instr in lcu {
            prop_assert_eq!(decode_lcu(encode_lcu(&instr).unwrap()).unwrap(), instr);
        }
        let mxcu = [MxcuInstr::SetIdx(line), MxcuInstr::AddIdx(imm), MxcuInstr::LoadIdxSrf(srf)];
        for instr in mxcu {
            prop_assert_eq!(decode_mxcu(encode_mxcu(&instr).unwrap()).unwrap(), instr);
        }
    }

    #[test]
    fn shuffle_interleave_and_prune_are_inverses(
        a in prop::collection::vec(any::<i32>(), 128),
        b in prop::collection::vec(any::<i32>(), 128),
    ) {
        let lower = apply(ShuffleOp::InterleaveLower, &a, &b, 32);
        let upper = apply(ShuffleOp::InterleaveUpper, &a, &b, 32);
        prop_assert_eq!(apply(ShuffleOp::EvenPrune, &lower, &upper, 32), a);
        prop_assert_eq!(apply(ShuffleOp::OddPrune, &lower, &upper, 32), b);
    }

    #[test]
    fn fft_round_trip_preserves_the_signal(
        values in prop::collection::vec(-1.0f64..1.0, 64),
    ) {
        let signal: Vec<Complex> = values.iter().map(|&v| Complex::new(v, -v * 0.5)).collect();
        let back = ifft(&fft(&signal).unwrap()).unwrap();
        for (a, b) in signal.iter().zip(back.iter()) {
            prop_assert!((a.re - b.re).abs() < 1e-9);
            prop_assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn fir_is_linear(
        x in prop::collection::vec(-0.5f64..0.5, 64),
        y in prop::collection::vec(-0.5f64..0.5, 64),
    ) {
        let taps = [0.2, 0.3, 0.2, 0.1];
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let fx = fir_f64(&taps, &x).unwrap();
        let fy = fir_f64(&taps, &y).unwrap();
        let fsum = fir_f64(&taps, &sum).unwrap();
        for i in 0..x.len() {
            prop_assert!((fsum[i] - (fx[i] + fy[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn fixed_point_multiply_is_bounded_and_sign_correct(
        a in -1000.0f64..1000.0,
        b in -1.0f64..1.0,
    ) {
        let product = from_q16(mul_fxp(to_q16(a), to_q16(b)));
        prop_assert!((product - a * b).abs() < 0.05 + (a * b).abs() * 1e-3);
    }

    #[test]
    fn pipelined_schedules_never_lose_or_invent_work(
        phase_list in prop::collection::vec(
            (0u64..2_000, 0u64..500, 1u64..5_000, 0u64..2_000),
            8,
        ),
    ) {
        use vwr2a::runtime::{StreamSchedule, WindowPhases};

        let mut schedule = StreamSchedule::new();
        let mut serial_phase_sum = 0u64;
        for &(stage, config, compute, drain) in &phase_list {
            let phases = WindowPhases { stage, config, compute, drain };
            serial_phase_sum += phases.total();
            schedule.push(phases);
        }
        let timeline = schedule.finish();
        // Work is conserved: every scheduled phase cycle appears exactly
        // once in the per-engine occupancy...
        let occupancy = timeline.occupancy();
        prop_assert_eq!(
            occupancy.config_load + occupancy.dma + occupancy.compute,
            serial_phase_sum
        );
        // ...the overlapped wall clock never beats the longest engine nor
        // exceeds the fully serial schedule...
        let busiest = [occupancy.config_load, occupancy.dma, occupancy.compute,
                       occupancy.interrupt].into_iter().max().unwrap();
        prop_assert!(timeline.wall_cycles() >= busiest);
        prop_assert!(timeline.wall_cycles() <= timeline.serial_cycles());
        // ...and the overlap ratio stays a valid fraction.
        prop_assert!((0.0..=1.0).contains(&timeline.overlap_ratio()));
    }
}
