//! # VWR2A — a very-wide-register reconfigurable-array architecture
//!
//! This crate is the facade of a full reproduction of the DAC 2022 paper
//! *“VWR2A: A Very-Wide-Register Reconfigurable-Array Architecture for
//! Low-Power Embedded Devices”* (Denkinger et al.).  It re-exports the
//! individual workspace crates under stable module names:
//!
//! * [`core`] — the cycle-accurate VWR2A accelerator simulator (the paper's
//!   contribution): reconfigurable cells, very-wide registers, scratchpad
//!   memory, shuffle unit, specialised slots and the execution engine.
//! * [`asm`] — a textual assembler for the per-slot instruction streams.
//! * [`dsp`] — golden reference DSP kernels (FFT, FIR, statistics, SVM) and
//!   fixed-point arithmetic helpers.
//! * [`soc`] — the biosignal SoC substrate: Cortex-M4-like CPU ISS, AHB-like
//!   bus, SRAM banks, DMA, interrupts and power domains.
//! * [`fftaccel`] — the fixed-function FFT accelerator used as the paper's
//!   comparator.
//! * [`energy`] — the activity-based energy model and component breakdowns.
//! * [`kernels`] — VWR2A kernel mappings (FFT, FIR, delineation, feature
//!   extraction, SVM) as program generators.
//! * [`bioapp`] — the MBioTracker biosignal application pipeline.
//!
//! ## Quick start
//!
//! ```
//! use vwr2a::core::Vwr2a;
//! use vwr2a::kernels::fir::FirKernel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build the accelerator with the paper's default geometry.
//! let mut accel = Vwr2a::new();
//!
//! // Map an 11-tap FIR over 256 samples onto one column.
//! let taps = [2048i32; 11];
//! let input: Vec<i32> = (0..256).map(|i| (i % 32) - 16).collect();
//! let kernel = FirKernel::new(&taps, input.len())?;
//! let run = kernel.run(&mut accel, &input)?;
//! assert_eq!(run.output.len(), input.len());
//! println!("FIR on VWR2A took {} cycles", run.cycles);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/vwr2a-bench` for the
//! binaries that regenerate every table and figure of the paper.

pub use vwr2a_asm as asm;
pub use vwr2a_bioapp as bioapp;
pub use vwr2a_core as core;
pub use vwr2a_dsp as dsp;
pub use vwr2a_energy as energy;
pub use vwr2a_fftaccel as fftaccel;
pub use vwr2a_kernels as kernels;
pub use vwr2a_soc as soc;
