//! # VWR2A — a very-wide-register reconfigurable-array architecture
//!
//! This crate is the facade of a full reproduction of the DAC 2022 paper
//! *“VWR2A: A Very-Wide-Register Reconfigurable-Array Architecture for
//! Low-Power Embedded Devices”* (Denkinger et al.).  It re-exports the
//! individual workspace crates under stable module names:
//!
//! * [`core`] — the cycle-accurate VWR2A accelerator simulator (the paper's
//!   contribution): reconfigurable cells, very-wide registers, scratchpad
//!   memory, shuffle unit, specialised slots and the execution engine.
//! * [`runtime`] — the execution runtime: the [`runtime::Kernel`] trait and
//!   the [`runtime::Session`] that owns the accelerator, keeps kernel
//!   programs resident in the configuration memory, and makes warm
//!   relaunches (the paper's load-once/run-many model) the default — with
//!   batched and streamed execution and a unified [`runtime::RunReport`].
//! * [`asm`] — a textual assembler for the per-slot instruction streams.
//! * [`dsp`] — golden reference DSP kernels (FFT, FIR, statistics, SVM) and
//!   fixed-point arithmetic helpers.
//! * [`soc`] — the biosignal SoC substrate: Cortex-M4-like CPU ISS, AHB-like
//!   bus, SRAM banks, DMA, interrupts and power domains.
//! * [`fftaccel`] — the fixed-function FFT accelerator used as the paper's
//!   comparator.
//! * [`energy`] — the activity-based energy model and component breakdowns.
//! * [`kernels`] — VWR2A kernel mappings (FFT, FIR, feature extraction,
//!   SVM decision) implementing [`runtime::Kernel`].
//! * [`bioapp`] — the MBioTracker biosignal application pipeline.
//!
//! ## Quick start
//!
//! Kernels run through a [`runtime::Session`]: the first invocation loads
//! the kernel's program into the per-column configuration memory (a *cold*
//! launch), every repeat relaunches it *warm* — only execution cycles, no
//! configuration streaming — exactly like the real hardware re-invokes a
//! resident kernel.
//!
//! ```
//! use vwr2a::kernels::fir::FirKernel;
//! use vwr2a::runtime::Session;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // One session owns the accelerator and the loaded-kernel registry.
//! let mut session = Session::new();
//!
//! // Map an 11-tap FIR over 256 samples onto the array's two columns.
//! let taps = [2048i32; 11];
//! let input: Vec<i32> = (0..256).map(|i| (i % 32) - 16).collect();
//! let kernel = FirKernel::new(&taps, input.len())?;
//!
//! // Cold first run: configuration load + execution.
//! let (output, cold) = session.run(&kernel, input.as_slice())?;
//! assert_eq!(output.len(), input.len());
//!
//! // Warm repeat: the resident program skips the configuration load.
//! let (_, warm) = session.run(&kernel, input.as_slice())?;
//! assert!(warm.cycles < cold.cycles);
//!
//! // Whole window streams amortise the load across N invocations.
//! let windows = vec![input.clone(), input.clone(), input.clone()];
//! let (outputs, report) = session.run_batch(&kernel, windows.iter().map(Vec::as_slice))?;
//! assert_eq!(outputs.len(), 3);
//! assert_eq!(report.cold_launches, 0); // already resident
//! println!("3 windows in {} cycles ({} warm launches)", report.cycles, report.warm_launches);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/vwr2a-bench` for the
//! binaries that regenerate every table and figure of the paper.

pub use vwr2a_asm as asm;
pub use vwr2a_bioapp as bioapp;
pub use vwr2a_core as core;
pub use vwr2a_dsp as dsp;
pub use vwr2a_energy as energy;
pub use vwr2a_fftaccel as fftaccel;
pub use vwr2a_kernels as kernels;
pub use vwr2a_runtime as runtime;
pub use vwr2a_soc as soc;

// The runtime workhorses, re-exported at the facade root so applications
// can depend on `vwr2a` alone: the single-array session and kernel trait,
// the heterogeneous pool (CGRA arrays, the FFT engine and the host CPU
// behind one `Backend` abstraction) with its placement strategies, the
// online serving layer with its scheduling policies, and the unified
// reports with per-backend attribution.
pub use vwr2a_runtime::{
    ArcPolicy, ArrayBackend, Backend, BackendKind, BackendKindStats, BackendView, CostAware,
    CpuBackend, EarliestDeadlineFirst, FftBackend, FftShape, Fifo, FleetReport, JobLatency,
    JobRoute, Kernel, LeastLoaded, Objective, Offload, Placement, PlacementPlan, PlannerStats,
    Pool, PrefetchDirective, ResidencyAware, RoundRobin, RunReport, SchedPolicy, ServeJob,
    ServeReport, Server, Session, TenantId, TenantStats, WeightedFair,
};
