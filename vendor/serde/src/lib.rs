//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names (trait and derive-macro
//! namespaces) so `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile without the real crate.  The
//! derives expand to nothing — see `vendor/serde_derive`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name; never implemented or
/// required by this workspace.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name; never implemented or
/// required by this workspace.
pub trait Deserialize<'de> {}
