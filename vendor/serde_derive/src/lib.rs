//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no registry access, so this proc-macro crate
//! provides `#[derive(Serialize)]` / `#[derive(Deserialize)]` that expand to
//! nothing.  Nothing in the workspace actually serialises data (there is no
//! `serde_json`/`bincode` consumer); the derives only document intent, so
//! empty expansions keep every type compiling unchanged.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and generates no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and generates no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
