//! Offline stand-in for `proptest`, covering the API surface this workspace
//! uses: the `proptest!` macro, `Strategy` with `prop_map`, `Just`,
//! `any::<T>()`, integer/float range strategies, tuple strategies,
//! `prop_oneof!`, `prop::collection::vec`, `ProptestConfig` and the
//! `prop_assert*` macros.
//!
//! Semantics: each property runs `ProptestConfig::cases` times with inputs
//! drawn from a deterministic SplitMix64 stream (seeded from the property
//! name and case index), so failures are reproducible.  There is no
//! shrinking — a failing case panics with the case number.

use std::ops::Range;

/// Deterministic random source driving input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one test case of one property.
    pub fn deterministic(case: u64, property: &str) -> Self {
        // FNV-1a over the property name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in property.bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Error carried out of a failing property body by the `prop_assert*`
/// macros.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies can share a
    /// container (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe view of [`Strategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Strategy yielding a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over at least one alternative.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

/// Types with a canonical full-range strategy (mirrors `Arbitrary`).
pub trait Arbitrary {
    /// Draws a value from the type's full range.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        })*
    };
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Full-range strategy for `T` (mirrors `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy_int {
    ($($ty:ty),*) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span.max(1)) as $ty
            }
        })*
    };
}
range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($ty:ty),*) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span.max(1)) as i64) as $ty
            }
        })*
    };
}
range_strategy_signed!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        })+
    };
}
tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G)
);

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for fixed-length vectors.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generates `Vec`s of exactly `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-block configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Declares property tests; see the crate docs for supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::deterministic(case as u64, stringify!($name));
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    /// Alias so `prop::collection::vec` resolves as in real proptest.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(v in 3u16..9, f in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&v));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn map_and_oneof_compose(
            x in prop_oneof![Just(1i32), (10i32..20).prop_map(|v| v * 2)],
            xs in prop::collection::vec(any::<i16>(), 7),
        ) {
            prop_assert!(x == 1 || (20..40).contains(&x));
            prop_assert_eq!(xs.len(), 7);
        }
    }

    #[test]
    fn deterministic_streams() {
        let a: Vec<u64> = {
            let mut r = crate::TestRng::deterministic(3, "p");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::TestRng::deterministic(3, "p");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
