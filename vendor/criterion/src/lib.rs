//! Offline stand-in for `criterion`, covering the API surface this
//! workspace uses: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Each benchmark runs its closure `sample_size` times and reports the mean
//! and minimum wall-clock time.  There is no statistical analysis, warm-up
//! phase or HTML report — just enough to keep `cargo bench` meaningful
//! without registry access.

use std::time::Instant;

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group: {}", name.into());
        BenchmarkGroup {
            _criterion: self,
            samples: 10,
        }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), 10, f);
    }
}

/// A named group of benchmarks (mirrors `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark in the group collects.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.samples, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        total_ns: 0,
        min_ns: u128::MAX,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("  {id}: no iterations recorded");
        return;
    }
    let mean_ns = bencher.total_ns / bencher.iters as u128;
    println!(
        "  {id}: mean {:.3} ms, min {:.3} ms over {} iterations",
        mean_ns as f64 / 1e6,
        bencher.min_ns as f64 / 1e6,
        bencher.iters
    );
}

/// Per-benchmark timing handle (mirrors `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total_ns: u128,
    min_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            let elapsed = start.elapsed().as_nanos();
            drop(out);
            self.total_ns += elapsed;
            self.min_ns = self.min_ns.min(elapsed);
            self.iters += 1;
        }
    }
}

/// Re-export point kept so `use criterion::black_box` works if needed.
pub use std::hint::black_box;

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 4);
    }
}
