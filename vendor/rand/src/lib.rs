//! Offline stand-in for `rand`, covering the API surface this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64` and
//! `Rng::gen_range(Range<f64>)`.
//!
//! The generator is SplitMix64 — deterministic per seed, statistically fine
//! for the synthetic-signal use here, and dependency-free.

use std::ops::Range;

/// Sources of randomness: a 64-bit output per step.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of the next output word.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<i32> for Range<i32> {
    fn sample(self, rng: &mut dyn RngCore) -> i32 {
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span.max(1)) as i32
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample(self, rng: &mut dyn RngCore) -> usize {
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span.max(1)) as usize
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&v));
        }
    }
}
