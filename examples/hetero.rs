//! Heterogeneous fleet: route jobs across CGRA arrays, the fixed-function
//! FFT engine and the Cortex-M4 host under one cost-aware scheduler.
//!
//! Two waves run on one fleet of 2 arrays + engine + CPU.  The FFT wave's
//! jobs carry an `FftShape` capability, so the scheduler may send them to
//! the engine (zero configuration streaming, ~3 k cycles at 256 points)
//! instead of an array; the FIR wave's tiny windows carry a CPU cycle
//! estimate, so reload-dominated crumbs may land on the host.  Every job
//! stays bit-identical to the backend it landed on: arrays match the
//! serial single-session reference, the engine and the CPU match the
//! kernel's own backend model.
//!
//! Run with `cargo run --release --example hetero`.

use vwr2a::dsp::fir::design_lowpass;
use vwr2a::dsp::fixed::{to_q16, Q15};
use vwr2a::kernels::fft::FftKernel;
use vwr2a::kernels::fir::FirKernel;
use vwr2a::kernels::Spectrum;
use vwr2a::{CostAware, CpuBackend, FftBackend, FleetReport, Pool};

fn spectrum(freq: f64) -> Spectrum {
    let n = 256;
    let re = (0..n)
        .map(|i| to_q16(0.4 * (std::f64::consts::TAU * freq * i as f64 / n as f64).cos()))
        .collect();
    let im = vec![0i32; n];
    Spectrum::new(re, im)
}

fn crumb(seed: usize) -> Vec<i32> {
    (0..CRUMB_SAMPLES)
        .map(|s| (5000.0 * ((s + 31 * seed) as f64 * 0.113).sin()) as i32)
        .collect()
}

/// Small enough that an array's cold reload (~380 config words) plus a
/// window launch costs more than the whole filter on the ISS.
const CRUMB_SAMPLES: usize = 12;

fn print_routes(label: &str, fleet: &FleetReport) {
    println!("{label}:");
    for route in &fleet.routes {
        println!(
            "  job {} -> backend {} ({}), {:.3} uJ",
            route.job,
            route.backend,
            route.kind.label(),
            route.energy_uj()
        );
    }
    for row in fleet.per_kind() {
        println!(
            "  {:>5}: {} backend(s), {} job(s), {} invocation(s), wall {} cycles, {:.3} uJ",
            row.kind.label(),
            row.backends,
            row.jobs,
            row.invocations,
            row.wall_cycles,
            row.energy_uj()
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 2 CGRA arrays, the FFT engine and the host CPU behind one scheduler.
    let mut pool = Pool::new(2)
        .with_backend(FftBackend::new())
        .with_backend(CpuBackend::new())
        .with_placement(CostAware::default());

    // Wave 1: four 256-point FFT jobs.  The engine needs no configuration
    // streaming, so the cost model routes most of the wave there while
    // the arrays absorb the rest in parallel.
    let fft = FftKernel::new(256)?;
    let fft_windows: Vec<Vec<Spectrum>> = (0..4)
        .map(|j| vec![spectrum(4.0 + j as f64), spectrum(9.0 + j as f64)])
        .collect();
    let (_, fft_fleet) = pool.run_batch(fft_windows.iter().map(|ws| (&fft, ws.iter())))?;
    print_routes("FFT wave (2 windows per job)", &fft_fleet);

    // Wave 2: six tiny one-window FIR crumbs with distinct taps.  Each
    // tap set is its own program, so an array pays a fresh configuration
    // reload per crumb; the scheduler balances those reloads against the
    // host CPU, which runs the filter from plain SRAM with no reload and
    // whose wrapping MAC/shift arithmetic matches the RC datapath bit
    // for bit.
    let taps: Vec<Vec<i32>> = (0..6)
        .map(|k| {
            design_lowpass(11, 0.06 + 0.05 * k as f64)
                .expect("valid filter design")
                .iter()
                .map(|&v| Q15::from_f64(v).0 as i32)
                .collect()
        })
        .collect();
    let crumbs: Vec<(FirKernel, Vec<i32>)> = taps
        .iter()
        .enumerate()
        .map(|(j, t)| Ok((FirKernel::new(t, CRUMB_SAMPLES)?, crumb(j))))
        .collect::<Result<_, vwr2a::kernels::KernelError>>()?;
    let (_, fir_fleet) = pool.run_batch(
        crumbs
            .iter()
            .map(|(k, w)| (k, std::iter::once(w.as_slice()))),
    )?;
    print_routes("FIR crumb wave (1 window per job)", &fir_fleet);

    Ok(())
}
