//! Compare the 11-tap FIR filter on the Cortex-M4-like CPU baseline and on
//! VWR2A (the Table 4 experiment for one input size), checking both against
//! the golden `vwr2a-dsp` model.
//!
//! Run with `cargo run --example fir_filter`.

use vwr2a::dsp::fir::{design_lowpass, fir_q15};
use vwr2a::dsp::fixed::Q15;
use vwr2a::energy::cpu_energy;
use vwr2a::kernels::fir::FirKernel;
use vwr2a::runtime::Session;
use vwr2a::soc::cpu::kernels::fir_q15_program;
use vwr2a::soc::BiosignalSoc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 512;
    let taps_f = design_lowpass(11, 0.1)?;
    let taps: Vec<i32> = taps_f.iter().map(|&t| Q15::from_f64(t).0 as i32).collect();
    let input: Vec<i32> = (0..n)
        .map(|i| (10_000.0 * (std::f64::consts::TAU * i as f64 / 80.0).sin()) as i32)
        .collect();

    // Golden model.
    let taps_q: Vec<Q15> = taps.iter().map(|&t| Q15(t as i16)).collect();
    let input_q: Vec<Q15> = input.iter().map(|&v| Q15(v as i16)).collect();
    let golden = fir_q15(&taps_q, &input_q)?;

    // CPU baseline.
    let mut soc = BiosignalSoc::new();
    soc.sram_mut().load(0, &input)?;
    soc.sram_mut().load(n, &taps)?;
    let program = fir_q15_program(n, taps.len(), 0, n, n + 16)?;
    let cpu_stats = soc.run_cpu_program(&program)?;
    let cpu_out = soc.sram().dump(n + 16, n)?;
    assert_eq!(
        cpu_out[100], golden[100].0 as i32,
        "CPU output must match the golden model"
    );

    // VWR2A through a Session.
    let kernel = FirKernel::new(&taps, n)?;
    let mut session = Session::new();
    let (output, report) = session.run(&kernel, input.as_slice())?;
    let max_err = output
        .iter()
        .zip(golden.iter())
        .map(|(o, g)| (o - g.0 as i32).abs())
        .max()
        .unwrap_or(0);

    println!("11-tap FIR over {n} samples");
    println!(
        "  CPU   : {:>8} cycles, {:.3} µJ",
        cpu_stats.cycles,
        cpu_energy(&cpu_stats).total_uj()
    );
    println!(
        "  VWR2A : {:>8} cycles, {:.3} µJ  (speed-up {:.1}x, max |error| vs golden = {max_err} LSB)",
        report.cycles,
        report.energy().total_uj(),
        cpu_stats.cycles as f64 / report.cycles as f64
    );
    Ok(())
}
