//! Fleet scheduling: fan concurrent `(kernel, windows)` jobs across a
//! pool of VWR2A arrays and compare placement strategies.
//!
//! Four distinct FIR programs (different baked-in taps) serve twelve jobs
//! on a two-array fleet whose configuration memories hold only two
//! programs each.  The cost-aware scheduler (the default) prefetches each
//! program's reload off the launch's critical path and never goes cold;
//! residency-aware placement spreads the programs across the fleet once
//! but reloads in line; the residency-blind baselines keep re-streaming
//! configuration words.
//!
//! Run with `cargo run --release --example fleet`.

use vwr2a::core::Geometry;
use vwr2a::dsp::fir::design_lowpass;
use vwr2a::dsp::fixed::Q15;
use vwr2a::kernels::fir::FirKernel;
use vwr2a::runtime::pool::{CostAware, LeastLoaded, Placement, Pool, ResidencyAware, RoundRobin};
use vwr2a::runtime::testing::constrained_sessions;
use vwr2a::runtime::{FleetReport, Kernel};

const N: usize = 256;
const JOBS: usize = 12;
const WINDOWS_PER_JOB: usize = 3;

fn fir(cutoff: f64) -> FirKernel {
    let taps: Vec<i32> = design_lowpass(11, cutoff)
        .expect("valid filter design")
        .iter()
        .map(|&v| Q15::from_f64(v).0 as i32)
        .collect();
    FirKernel::new(&taps, N).expect("valid kernel")
}

fn window(seed: usize) -> Vec<i32> {
    (0..N)
        .map(|s| (6000.0 * ((s + 43 * seed) as f64 * 0.107).sin()) as i32)
        .collect()
}

fn fleet(placement: impl Placement + 'static, kernels: &[FirKernel]) -> FleetReport {
    // Two arrays whose configuration memories hold two FIR programs each:
    // the four-program working set fits the fleet, not a single array.
    let program_words = kernels[0]
        .program(&Geometry::paper())
        .expect("program builds")
        .config_words();
    let mut pool = Pool::with_sessions(constrained_sessions(2, 2 * program_words))
        .expect("constrained sessions share one geometry")
        .with_placement(placement);

    // An irregular kernel order, as concurrent streams would produce.
    let picks = [0usize, 1, 2, 3, 2, 0, 1, 3, 0, 2, 3, 1];
    let jobs: Vec<(usize, Vec<Vec<i32>>)> = (0..JOBS)
        .map(|j| {
            (
                picks[j],
                (0..WINDOWS_PER_JOB).map(|w| window(j + 5 * w)).collect(),
            )
        })
        .collect();
    let (outputs, report) = pool
        .run_batch(
            jobs.iter()
                .map(|(pick, ws)| (&kernels[*pick], ws.iter().map(Vec::as_slice))),
        )
        .expect("fan-out runs");
    assert_eq!(outputs.len(), JOBS);
    report
}

fn main() {
    let kernels: Vec<FirKernel> = [0.06, 0.12, 0.2, 0.3].iter().map(|&fc| fir(fc)).collect();

    println!(
        "Fleet of 2 VWR2A arrays, {JOBS} jobs x {WINDOWS_PER_JOB} windows over {} distinct FIR programs",
        kernels.len()
    );
    println!("(2-program configuration memory per array)\n");

    for (name, report) in [
        (
            "cost-aware + prefetch",
            fleet(CostAware::default(), &kernels),
        ),
        ("residency-aware", fleet(ResidencyAware, &kernels)),
        ("least-loaded", fleet(LeastLoaded, &kernels)),
        ("round-robin", fleet(RoundRobin, &kernels)),
    ] {
        println!("{name}:");
        println!("  {report}");
        for array in &report.arrays {
            println!(
                "    array {}: {} job(s), {} wall cycles, {} cold / {} warm, \
                 {} prefetched ({} hidden), {} evictions",
                array.array,
                array.jobs,
                array.report.wall_cycles,
                array.report.cold_launches,
                array.report.warm_launches,
                array.report.prefetched,
                array.report.hidden_reloads,
                array.report.evictions,
            );
        }
    }

    println!();
    println!("Same jobs, same outputs — placement decides which array's configuration");
    println!("memory already holds the program, and prefetch decides whether anyone");
    println!("ever waits for the reload.");
}
