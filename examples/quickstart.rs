//! Quick start: build the accelerator, run a tiny hand-written kernel and a
//! full FIR mapping, and print the cycle/energy accounting.
//!
//! Run with `cargo run --example quickstart`.

use vwr2a::core::builder::ColumnProgramBuilder;
use vwr2a::core::geometry::VwrId;
use vwr2a::core::isa::{LcuCond, LcuInstr, LcuSrc, LsuAddr, LsuInstr, MxcuInstr, RcDst, RcInstr, RcOpcode, RcSrc};
use vwr2a::core::program::KernelProgram;
use vwr2a::core::Vwr2a;
use vwr2a::energy::vwr2a_energy;
use vwr2a::kernels::fir::FirKernel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A hand-written kernel: element-wise add of two SPM lines.
    let mut b = ColumnProgramBuilder::new(4);
    b.push(b.row().lsu(LsuInstr::LoadVwr { vwr: VwrId::A, line: LsuAddr::Imm(0) }));
    b.push(
        b.row()
            .lsu(LsuInstr::LoadVwr { vwr: VwrId::B, line: LsuAddr::Imm(1) })
            .mxcu(MxcuInstr::SetIdx(0))
            .lcu(LcuInstr::Li { r: 0, value: 0 }),
    );
    let top = b.new_label();
    b.bind_label(top);
    b.push(
        b.row()
            .rc_all(RcInstr::new(RcOpcode::Add, RcDst::Vwr(VwrId::C), RcSrc::Vwr(VwrId::A), RcSrc::Vwr(VwrId::B)))
            .mxcu(MxcuInstr::AddIdx(1))
            .lcu(LcuInstr::Add { r: 0, src: LcuSrc::Imm(1) }),
    );
    b.push_branch(b.row(), LcuCond::Lt, 0, LcuSrc::Imm(32), top);
    b.push(b.row().lsu(LsuInstr::StoreVwr { vwr: VwrId::C, line: LsuAddr::Imm(2) }));
    b.push_exit();
    let vadd = KernelProgram::new("vadd", vec![b.build()?])?;

    let mut accel = Vwr2a::new();
    accel.dma_to_spm(&(0..128).collect::<Vec<i32>>(), 0)?;
    accel.dma_to_spm(&vec![1000; 128], 128)?;
    let stats = accel.run_program(&vadd)?;
    let (sum, _) = accel.dma_from_spm(256, 128)?;
    println!("vadd: {} cycles, word 42 = {}", stats.cycles, sum[42]);

    // 2. A full kernel mapping: the paper's 11-tap FIR over 256 samples.
    let taps: Vec<i32> = vwr2a::dsp::fir::design_lowpass(11, 0.1)?
        .iter()
        .map(|&t| vwr2a::dsp::fixed::Q15::from_f64(t).0 as i32)
        .collect();
    let input: Vec<i32> = (0..256)
        .map(|i| (8000.0 * (std::f64::consts::TAU * i as f64 / 64.0).sin()) as i32)
        .collect();
    let fir = FirKernel::new(&taps, input.len())?;
    let mut accel = Vwr2a::new();
    let run = fir.run(&mut accel, &input)?;
    let energy = vwr2a_energy(&run.counters);
    println!(
        "fir-11tap over 256 samples: {} cycles ({:.1} µs at 80 MHz), {:.3} µJ",
        run.cycles,
        run.time_us(80.0e6),
        energy.total_uj()
    );
    Ok(())
}
