//! Quick start: build a `Session`, run a full FIR kernel mapping cold and
//! warm, batch a window stream through it, and drop down to a hand-written
//! kernel program on the raw accelerator.
//!
//! Run with `cargo run --example quickstart`.

use vwr2a::core::builder::ColumnProgramBuilder;
use vwr2a::core::geometry::VwrId;
use vwr2a::core::isa::{
    LcuCond, LcuInstr, LcuSrc, LsuAddr, LsuInstr, MxcuInstr, RcDst, RcInstr, RcOpcode, RcSrc,
};
use vwr2a::core::program::KernelProgram;
use vwr2a::kernels::fir::FirKernel;
use vwr2a::runtime::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The high-level flow: a Session owns the accelerator and keeps
    //    every kernel program resident in the configuration memory.
    let mut session = Session::new();

    let taps: Vec<i32> = vwr2a::dsp::fir::design_lowpass(11, 0.1)?
        .iter()
        .map(|&t| vwr2a::dsp::fixed::Q15::from_f64(t).0 as i32)
        .collect();
    let input: Vec<i32> = (0..256)
        .map(|i| (8000.0 * (std::f64::consts::TAU * i as f64 / 64.0).sin()) as i32)
        .collect();
    let fir = FirKernel::new(&taps, input.len())?;

    // First run: cold — the configuration words stream into the array.
    let (output, cold) = session.run(&fir, input.as_slice())?;
    println!(
        "fir-11tap cold : {} cycles ({:.1} µs at 80 MHz), {:.3} µJ, output[100] = {}",
        cold.cycles,
        cold.time_us(80.0e6),
        cold.energy().total_uj(),
        output[100]
    );

    // Second run: warm — the program is resident, only execution is paid.
    let (_, warm) = session.run(&fir, input.as_slice())?;
    println!(
        "fir-11tap warm : {} cycles (saved {} configuration cycles)",
        warm.cycles,
        cold.cycles - warm.cycles
    );

    // A whole stream of windows through the loaded kernel: one cold launch
    // total, everything else warm — and pipelined, so window i+1's DMA
    // staging hides behind window i's array compute.
    let windows: Vec<Vec<i32>> = (0..8)
        .map(|w| {
            (0..256)
                .map(|i| (6000.0 * ((i + 13 * w) as f64 * 0.11).sin()) as i32)
                .collect()
        })
        .collect();
    let (outputs, stream) = session.run_batch(&fir, windows.iter().map(Vec::as_slice))?;
    println!(
        "fir-11tap x{}  : {} wall cycles ({} serialised, {:.0} % hidden by overlap), \
         {} cold / {} warm launches, {} outputs",
        stream.invocations,
        stream.wall_cycles,
        stream.serial_cycles(),
        100.0 * stream.overlap_ratio(),
        stream.cold_launches,
        stream.warm_launches,
        outputs.len()
    );
    println!(
        "                 engine busy: dma {}, array {}, config {}, irq {}",
        stream.busy.dma, stream.busy.compute, stream.busy.config_load, stream.busy.interrupt
    );

    // 2. Dropping below the runtime: hand-written kernels still run on the
    //    raw accelerator (element-wise add of two SPM lines).
    let mut b = ColumnProgramBuilder::new(4);
    b.push(b.row().lsu(LsuInstr::LoadVwr {
        vwr: VwrId::A,
        line: LsuAddr::Imm(0),
    }));
    b.push(
        b.row()
            .lsu(LsuInstr::LoadVwr {
                vwr: VwrId::B,
                line: LsuAddr::Imm(1),
            })
            .mxcu(MxcuInstr::SetIdx(0))
            .lcu(LcuInstr::Li { r: 0, value: 0 }),
    );
    let top = b.new_label();
    b.bind_label(top);
    b.push(
        b.row()
            .rc_all(RcInstr::new(
                RcOpcode::Add,
                RcDst::Vwr(VwrId::C),
                RcSrc::Vwr(VwrId::A),
                RcSrc::Vwr(VwrId::B),
            ))
            .mxcu(MxcuInstr::AddIdx(1))
            .lcu(LcuInstr::Add {
                r: 0,
                src: LcuSrc::Imm(1),
            }),
    );
    b.push_branch(b.row(), LcuCond::Lt, 0, LcuSrc::Imm(32), top);
    b.push(b.row().lsu(LsuInstr::StoreVwr {
        vwr: VwrId::C,
        line: LsuAddr::Imm(2),
    }));
    b.push_exit();
    let vadd = KernelProgram::new("vadd", vec![b.build()?])?;

    let accel = session.accelerator_mut();
    accel.dma_to_spm(&(0..128).collect::<Vec<i32>>(), 0)?;
    accel.dma_to_spm(&vec![1000; 128], 128)?;
    let stats = accel.run_program(&vadd)?;
    let (sum, _) = accel.dma_from_spm(256, 128)?;
    println!("vadd: {} cycles, word 42 = {}", stats.cycles, sum[42]);
    Ok(())
}
