//! Run the MBioTracker application end-to-end in the paper's three platform
//! configurations, print a Table 5-style summary, then stream several
//! windows through one VWR2A pipeline to show the warm steady state.
//!
//! Run with `cargo run --example biosignal_app`.

use vwr2a::bioapp::pipeline::{run_cpu_only, run_cpu_with_fft_accel, run_cpu_with_vwr2a, WINDOW};
use vwr2a::bioapp::signal::RespirationGenerator;
use vwr2a::bioapp::Vwr2aPipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let window = RespirationGenerator::new(99).with_rate(7.0).window(WINDOW);
    let cpu = run_cpu_only(&window)?;
    let fft = run_cpu_with_fft_accel(&window)?;
    let vwr2a = run_cpu_with_vwr2a(&window)?;

    println!("MBioTracker cognitive-workload pipeline ({WINDOW}-sample window)");
    for report in [&cpu, &fft, &vwr2a] {
        println!();
        println!("{}:", report.platform);
        for step in &report.steps {
            println!(
                "  {:<20} {:>9} cycles  {:>8.2} µJ",
                step.name,
                step.cycles,
                step.energy.total_uj()
            );
        }
        println!(
            "  {:<20} {:>9} cycles  {:>8.2} µJ  (prediction {})",
            "total",
            report.total_cycles(),
            report.total_energy_uj(),
            report.prediction
        );
    }
    println!();
    println!(
        "Application-level savings with VWR2A: {:.1} % of cycles, {:.1} % of energy",
        (1.0 - vwr2a.total_cycles() as f64 / cpu.total_cycles() as f64) * 100.0,
        (1.0 - vwr2a.total_energy_uj() / cpu.total_energy_uj()) * 100.0
    );

    // Streaming: one pipeline, many windows — kernel programs load once.
    println!();
    println!("VWR2A window stream (one Session, programs resident):");
    let mut pipeline = Vwr2aPipeline::new()?;
    let mut generator = RespirationGenerator::new(7).with_rate(6.0);
    for w in 0..4 {
        let report = pipeline.run_window(&generator.window(WINDOW))?;
        println!(
            "  window {w}: {:>8} cycles  (preprocessing {:>6}, feature extraction {:>7})",
            report.total_cycles(),
            report.step_cycles("preprocessing"),
            report.step_cycles("feature extraction")
        );
    }
    println!("  (window 0 pays every configuration load; later windows run warm)");

    // Pipelined preprocessing: the FIR stages window i+1 over the DMA
    // while the array filters window i, so the stream's wall clock beats
    // the serial DMA + compute + DMA sum.
    let windows: Vec<Vec<i32>> = (0..8).map(|_| generator.window(WINDOW)).collect();
    let mut pipeline = Vwr2aPipeline::new()?;
    let (filtered, report) = pipeline.preprocess_stream(windows.iter().map(Vec::as_slice))?;
    println!();
    println!(
        "Pipelined FIR preprocessing of {} windows: {} wall cycles vs {} serialised \
         ({:.0} % hidden; {} filtered windows)",
        report.invocations,
        report.wall_cycles,
        report.serial_cycles(),
        100.0 * report.overlap_ratio(),
        filtered.len()
    );
    Ok(())
}
