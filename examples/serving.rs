//! Online serving: a multi-tenant arrival stream dispatched through the
//! admission queue with deadline-aware scheduling and work stealing.
//!
//! Three tenants share a two-array fleet: a *batch* tenant floods the
//! queue with long deadline-free jobs at cycle 0 while two *interactive*
//! tenants trickle in short jobs that must finish within a fixed slack.
//! The same stream is served under FIFO and under weighted fair queueing
//! to show what the policy changes — and what it never changes: the
//! outputs, which stay bit-identical to serial execution either way.
//!
//! Run with `cargo run --release --example serving`.

use vwr2a::core::Geometry;
use vwr2a::dsp::fir::design_lowpass;
use vwr2a::dsp::fixed::Q15;
use vwr2a::kernels::fir::FirKernel;
use vwr2a::runtime::pool::Pool;
use vwr2a::runtime::testing::constrained_sessions;
use vwr2a::runtime::{Fifo, Kernel, SchedPolicy, ServeJob, ServeReport, Server, WeightedFair};

const N: usize = 256;
const SLACK: u64 = 16_000;

fn fir(cutoff: f64) -> FirKernel {
    let taps: Vec<i32> = design_lowpass(11, cutoff)
        .expect("valid filter design")
        .iter()
        .map(|&v| Q15::from_f64(v).0 as i32)
        .collect();
    FirKernel::new(&taps, N).expect("valid kernel")
}

fn window(seed: usize) -> Vec<i32> {
    (0..N)
        .map(|s| (5800.0 * ((s + 37 * seed) as f64 * 0.113).sin()) as i32)
        .collect()
}

/// `(kernel pick, tenant, arrival, windows, deadline)` — the batch tenant
/// (0) dumps eight 4-window jobs at cycle 0; the interactive tenants (1
/// and 2) submit 1-window jobs every ~1.2k cycles with `arrival + SLACK`
/// deadlines.
fn stream() -> Vec<(usize, u32, u64, usize, Option<u64>)> {
    let mut jobs: Vec<(usize, u32, u64, usize, Option<u64>)> =
        (0..8).map(|j| (j % 4, 0, 0, 4, None)).collect();
    for j in 0..6 {
        let arrival = 1_000 + 1_200 * j as u64;
        jobs.push((j % 4, 1 + (j % 2) as u32, arrival, 1, Some(arrival + SLACK)));
    }
    jobs
}

fn serve(policy: impl SchedPolicy + 'static, kernels: &[FirKernel]) -> ServeReport {
    let program_words = kernels[0]
        .program(&Geometry::paper())
        .expect("program builds")
        .config_words();
    let pool = Pool::with_sessions(constrained_sessions(2, 2 * program_words))
        .expect("constrained sessions share one geometry");
    let mut server = Server::new(pool).with_policy(policy);
    let jobs = stream();
    let (outputs, report) = server
        .run_batch(
            jobs.iter()
                .map(|&(pick, tenant, arrival, count, deadline)| {
                    let mut job = ServeJob {
                        kernel: &kernels[pick],
                        windows: (0..count).map(window).collect::<Vec<_>>(),
                        tenant,
                        arrival_cycle: arrival,
                        priority: u8::from(tenant != 0),
                        deadline_cycle: None,
                    };
                    job.deadline_cycle = deadline;
                    job
                }),
        )
        .expect("serving runs");

    // Scheduling never changes the data: outputs match serial execution.
    let (serial, _) = Pool::run_serial_reference(jobs.iter().map(|&(pick, _, _, count, _)| {
        (&kernels[pick], (0..count).map(window).collect::<Vec<_>>())
    }))
    .expect("serial reference runs");
    assert_eq!(
        outputs, serial,
        "served outputs must match serial execution"
    );
    report
}

fn main() {
    let kernels: Vec<FirKernel> = [0.06, 0.12, 0.2, 0.3].iter().map(|&fc| fir(fc)).collect();
    let jobs = stream();
    let interactive = jobs.iter().filter(|j| j.1 != 0).count();

    println!(
        "Two-array fleet, {} jobs: 8 batch jobs (tenant 0, 4 windows, no deadline) flood cycle 0,",
        jobs.len()
    );
    println!("{interactive} interactive jobs (tenants 1-2, 1 window) arrive every ~1.2k cycles with {SLACK}-cycle deadlines\n");

    for (name, report) in [
        ("fifo", serve(Fifo, &kernels)),
        ("weighted-fair", serve(WeightedFair::new(), &kernels)),
    ] {
        println!("{name}:");
        println!("  {report}");
        println!("  tenant  jobs  avg-latency  misses");
        for t in report.tenants() {
            println!(
                "  {:>6}  {:>4}  {:>11}  {:>6}",
                t.tenant,
                t.jobs,
                t.total_cycles / t.jobs.max(1),
                t.deadline_misses,
            );
        }
        println!();
    }

    println!("FIFO drains the batch flood first, so the interactive deadlines pay for");
    println!("tenant 0's backlog; weighted fair queueing caps every tenant at its fair");
    println!("share of dispatches and the interactive jobs keep their slack — same");
    println!("arrays, same outputs, different order.");
}
