//! Run the paper's headline kernel — a 512-point real-valued FFT — on the
//! CPU baseline, the fixed-function accelerator and VWR2A, and print the
//! Table 2 / Fig. 2-style comparison for that one size.
//!
//! Run with `cargo run --example fft_kernel`.

use vwr2a::dsp::fixed::{from_q16, to_q16};
use vwr2a::fftaccel::FftAccelerator;
use vwr2a::kernels::fft::RealFftKernel;
use vwr2a::runtime::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 512;
    let signal: Vec<f64> = (0..n)
        .map(|i| 0.4 * (std::f64::consts::TAU * 12.0 * i as f64 / n as f64).sin())
        .collect();

    // Fixed-function accelerator.
    let engine = FftAccelerator::new();
    let (spectrum_accel, accel_stats) = engine.run_real(&signal)?;

    // VWR2A through a Session.
    let kernel = RealFftKernel::new(n)?;
    let mut session = Session::new();
    let q16: Vec<i32> = signal.iter().map(|&v| to_q16(v)).collect();
    let (spectrum, report) = session.run(&kernel, q16.as_slice())?;

    // Both must find the 12-cycles-per-window tone in bin 12.
    let peak_accel = (1..n / 2)
        .max_by(|&a, &b| spectrum_accel[a].abs().total_cmp(&spectrum_accel[b].abs()))
        .unwrap();
    let peak_vwr2a = (1..n / 2)
        .max_by_key(|&k| (spectrum.re[k] as i64).pow(2) + (spectrum.im[k] as i64).pow(2))
        .unwrap();
    println!("512-point real-valued FFT of a 12-cycle tone");
    println!(
        "  FFT accelerator : peak bin {peak_accel}, {} cycles",
        accel_stats.cycles
    );
    println!(
        "  VWR2A           : peak bin {peak_vwr2a}, {} cycles, {:.3} µJ ({} cold / {} warm launches)",
        report.cycles,
        report.energy().total_uj(),
        report.cold_launches,
        report.warm_launches
    );
    println!(
        "  VWR2A bin {} value = {:.2} (unnormalised DFT)",
        peak_vwr2a,
        from_q16(spectrum.re[peak_vwr2a])
    );
    Ok(())
}
