//! Textual assembler for VWR2A column programs.
//!
//! The paper's kernels are mapped by hand; this crate provides a small
//! human-writable assembly syntax for doing the same thing in text form,
//! which is convenient for experiments and for documenting kernels (Table 1
//! of the paper is essentially this format).  One *row* (a wide instruction
//! issued in one cycle) is a group of `slot instruction` lines terminated by
//! a blank line or `---`; labels are written as `label:` on their own line
//! and referenced by branches.
//!
//! ```text
//! ; element-wise add of VWR A and VWR B into VWR C
//!     lsu  load.vwr a, 0
//! ---
//!     lsu  load.vwr b, 1
//!     mxcu setidx 0
//!     lcu  li r0, 0
//! ---
//! loop:
//!     rc*  add vwr.c, vwr.a, vwr.b
//!     mxcu addidx 1
//!     lcu  add r0, 1
//! ---
//!     lcu  blt r0, 32, loop
//! ---
//!     lsu  store.vwr c, 2
//! ---
//!     lcu  exit
//! ```
//!
//! # Example
//!
//! ```
//! use vwr2a_asm::assemble_column;
//!
//! let program = assemble_column("
//!     lcu li r0, 3
//! ---
//!     lcu exit
//! ").unwrap();
//! assert_eq!(program.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use vwr2a_core::geometry::VwrId;
use vwr2a_core::isa::{
    LcuCond, LcuInstr, LcuSrc, LsuAddr, LsuInstr, MxcuInstr, RcDst, RcInstr, RcOpcode, RcSrc,
    ShuffleOp,
};
use vwr2a_core::program::{ColumnProgram, Row};

/// Errors produced while assembling a textual program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line of the problem.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_int(tok: &str, line: usize) -> Result<i64, AsmError> {
    let tok = tok.trim().trim_end_matches(',');
    let parsed = if let Some(hex) = tok.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        tok.parse()
    };
    parsed.map_err(|_| err(line, format!("expected a number, got `{tok}`")))
}

fn parse_vwr(tok: &str, line: usize) -> Result<VwrId, AsmError> {
    match tok.trim().trim_end_matches(',').trim_start_matches("vwr.") {
        "a" | "A" => Ok(VwrId::A),
        "b" | "B" => Ok(VwrId::B),
        "c" | "C" => Ok(VwrId::C),
        "d" | "D" => Ok(VwrId::D),
        other => Err(err(line, format!("unknown VWR `{other}`"))),
    }
}

fn parse_rc_src(tok: &str, line: usize) -> Result<RcSrc, AsmError> {
    let t = tok.trim().trim_end_matches(',');
    Ok(match t {
        "zero" => RcSrc::Zero,
        "above" => RcSrc::RcAbove,
        "below" => RcSrc::RcBelow,
        "self" => RcSrc::SelfPrev,
        _ if t.starts_with("vwr.") => RcSrc::Vwr(parse_vwr(t, line)?),
        _ if t.starts_with("srf") => RcSrc::Srf(parse_int(&t[3..], line)? as u8),
        _ if t.starts_with('r') && t[1..].chars().all(|c| c.is_ascii_digit()) => {
            RcSrc::Reg(parse_int(&t[1..], line)? as u8)
        }
        _ => RcSrc::Imm(parse_int(t, line)? as i16),
    })
}

fn parse_rc_dst(tok: &str, line: usize) -> Result<RcDst, AsmError> {
    let t = tok.trim().trim_end_matches(',');
    Ok(match t {
        "none" => RcDst::None,
        _ if t.starts_with("vwr.") => RcDst::Vwr(parse_vwr(t, line)?),
        _ if t.starts_with("srf") => RcDst::Srf(parse_int(&t[3..], line)? as u8),
        _ if t.starts_with('r') => RcDst::Reg(parse_int(&t[1..], line)? as u8),
        _ => return Err(err(line, format!("unknown RC destination `{t}`"))),
    })
}

fn parse_rc_op(tok: &str, line: usize) -> Result<RcOpcode, AsmError> {
    Ok(match tok {
        "nop" => RcOpcode::Nop,
        "mov" => RcOpcode::Mov,
        "add" => RcOpcode::Add,
        "sub" => RcOpcode::Sub,
        "mul" => RcOpcode::Mul,
        "mul.fxp" => RcOpcode::MulFxp,
        "and" => RcOpcode::And,
        "or" => RcOpcode::Or,
        "xor" => RcOpcode::Xor,
        "sll" => RcOpcode::Sll,
        "srl" => RcOpcode::Srl,
        "sra" => RcOpcode::Sra,
        "min" => RcOpcode::Min,
        "max" => RcOpcode::Max,
        "abs" => RcOpcode::Abs,
        "sgt" => RcOpcode::Sgt,
        "slt" => RcOpcode::Slt,
        "seq" => RcOpcode::Seq,
        other => return Err(err(line, format!("unknown RC opcode `{other}`"))),
    })
}

fn parse_lsu_addr(tok: &str, line: usize) -> Result<LsuAddr, AsmError> {
    let t = tok.trim().trim_end_matches(',');
    if let Some(s) = t.strip_prefix("srf") {
        Ok(LsuAddr::Srf(parse_int(s, line)? as u8))
    } else {
        Ok(LsuAddr::Imm(parse_int(t, line)? as u16))
    }
}

fn parse_shuffle(tok: &str, line: usize) -> Result<ShuffleOp, AsmError> {
    Ok(match tok {
        "interleave.lower" => ShuffleOp::InterleaveLower,
        "interleave.upper" => ShuffleOp::InterleaveUpper,
        "even" => ShuffleOp::EvenPrune,
        "odd" => ShuffleOp::OddPrune,
        "bitrev.lower" => ShuffleOp::BitRevLower,
        "bitrev.upper" => ShuffleOp::BitRevUpper,
        "circshift.lower" => ShuffleOp::CircShiftLower,
        "circshift.upper" => ShuffleOp::CircShiftUpper,
        other => return Err(err(line, format!("unknown shuffle operation `{other}`"))),
    })
}

#[derive(Debug, Clone)]
enum PendingLcu {
    Ready(LcuInstr),
    Branch {
        cond: LcuCond,
        a: u8,
        b: LcuSrc,
        label: String,
    },
    Jump(String),
}

/// Assembles one column program (4 RC slots) from its textual form.
///
/// # Errors
///
/// Returns an [`AsmError`] describing the first syntax problem, undefined
/// label, or structural issue (e.g. an empty program).
pub fn assemble_column(source: &str) -> Result<ColumnProgram, AsmError> {
    let mut rows: Vec<(Row, Vec<(usize, PendingLcu)>)> = Vec::new();
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut current = Row::new(4);
    let mut current_pending: Vec<(usize, PendingLcu)> = Vec::new();
    let mut row_open = false;

    let finish_row = |rows: &mut Vec<(Row, Vec<(usize, PendingLcu)>)>,
                      current: &mut Row,
                      pending: &mut Vec<(usize, PendingLcu)>,
                      open: &mut bool| {
        if *open {
            rows.push((
                std::mem::replace(current, Row::new(4)),
                std::mem::take(pending),
            ));
            *open = false;
        }
    };

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with("---") {
            finish_row(&mut rows, &mut current, &mut current_pending, &mut row_open);
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            finish_row(&mut rows, &mut current, &mut current_pending, &mut row_open);
            labels.insert(label.trim().to_string(), rows.len());
            continue;
        }
        let mut parts = line.split_whitespace();
        let slot = parts.next().unwrap_or_default().to_lowercase();
        let rest: Vec<&str> = parts.collect();
        row_open = true;
        match slot.as_str() {
            "lcu" => {
                let op = rest.first().copied().unwrap_or_default();
                let pending = match op {
                    "nop" => PendingLcu::Ready(LcuInstr::Nop),
                    "exit" => PendingLcu::Ready(LcuInstr::Exit),
                    "li" => {
                        let r = parse_int(
                            rest.get(1)
                                .copied()
                                .unwrap_or_default()
                                .trim_start_matches('r'),
                            line_no,
                        )? as u8;
                        let v =
                            parse_int(rest.get(2).copied().unwrap_or_default(), line_no)? as i32;
                        PendingLcu::Ready(LcuInstr::Li { r, value: v })
                    }
                    "add" => {
                        let r = parse_int(
                            rest.get(1)
                                .copied()
                                .unwrap_or_default()
                                .trim_start_matches('r'),
                            line_no,
                        )? as u8;
                        let v =
                            parse_int(rest.get(2).copied().unwrap_or_default(), line_no)? as i32;
                        PendingLcu::Ready(LcuInstr::Add {
                            r,
                            src: LcuSrc::Imm(v),
                        })
                    }
                    "jump" => {
                        PendingLcu::Jump(rest.get(1).copied().unwrap_or_default().to_string())
                    }
                    "blt" | "bge" | "beq" | "bne" => {
                        let cond = match op {
                            "blt" => LcuCond::Lt,
                            "bge" => LcuCond::Ge,
                            "beq" => LcuCond::Eq,
                            _ => LcuCond::Ne,
                        };
                        let a = parse_int(
                            rest.get(1)
                                .copied()
                                .unwrap_or_default()
                                .trim_start_matches('r'),
                            line_no,
                        )? as u8;
                        let b = LcuSrc::Imm(parse_int(
                            rest.get(2).copied().unwrap_or_default(),
                            line_no,
                        )? as i32);
                        let label = rest.get(3).copied().unwrap_or_default().to_string();
                        PendingLcu::Branch { cond, a, b, label }
                    }
                    other => {
                        return Err(err(line_no, format!("unknown LCU instruction `{other}`")))
                    }
                };
                current_pending.push((line_no, pending));
            }
            "lsu" => {
                let op = rest.first().copied().unwrap_or_default();
                current.lsu = match op {
                    "nop" => LsuInstr::Nop,
                    "load.vwr" => LsuInstr::LoadVwr {
                        vwr: parse_vwr(rest.get(1).copied().unwrap_or_default(), line_no)?,
                        line: parse_lsu_addr(rest.get(2).copied().unwrap_or_default(), line_no)?,
                    },
                    "store.vwr" => LsuInstr::StoreVwr {
                        vwr: parse_vwr(rest.get(1).copied().unwrap_or_default(), line_no)?,
                        line: parse_lsu_addr(rest.get(2).copied().unwrap_or_default(), line_no)?,
                    },
                    "shuffle" => LsuInstr::Shuffle(parse_shuffle(
                        rest.get(1).copied().unwrap_or_default(),
                        line_no,
                    )?),
                    "addsrf" => LsuInstr::AddSrf {
                        srf: parse_int(
                            rest.get(1)
                                .copied()
                                .unwrap_or_default()
                                .trim_start_matches("srf"),
                            line_no,
                        )? as u8,
                        imm: parse_int(rest.get(2).copied().unwrap_or_default(), line_no)? as i16,
                    },
                    other => {
                        return Err(err(line_no, format!("unknown LSU instruction `{other}`")))
                    }
                };
            }
            "mxcu" => {
                let op = rest.first().copied().unwrap_or_default();
                current.mxcu = match op {
                    "nop" => MxcuInstr::Nop,
                    "setidx" => MxcuInstr::SetIdx(parse_int(
                        rest.get(1).copied().unwrap_or_default(),
                        line_no,
                    )? as u16),
                    "addidx" => MxcuInstr::AddIdx(parse_int(
                        rest.get(1).copied().unwrap_or_default(),
                        line_no,
                    )? as i16),
                    other => {
                        return Err(err(line_no, format!("unknown MXCU instruction `{other}`")))
                    }
                };
            }
            s if s.starts_with("rc") => {
                let op = parse_rc_op(rest.first().copied().unwrap_or_default(), line_no)?;
                let instr = if op == RcOpcode::Nop {
                    RcInstr::NOP
                } else {
                    let dst = parse_rc_dst(rest.get(1).copied().unwrap_or_default(), line_no)?;
                    let a = parse_rc_src(rest.get(2).copied().unwrap_or_default(), line_no)?;
                    let b = rest
                        .get(3)
                        .map(|t| parse_rc_src(t, line_no))
                        .transpose()?
                        .unwrap_or(RcSrc::Zero);
                    RcInstr::new(op, dst, a, b)
                };
                if s == "rc*" {
                    for rc in &mut current.rcs {
                        *rc = instr;
                    }
                } else {
                    let idx = parse_int(&s[2..], line_no)? as usize;
                    if idx >= current.rcs.len() {
                        return Err(err(line_no, format!("RC index {idx} out of range")));
                    }
                    current.rcs[idx] = instr;
                }
            }
            other => return Err(err(line_no, format!("unknown slot `{other}`"))),
        }
    }
    finish_row(&mut rows, &mut current, &mut current_pending, &mut row_open);

    if rows.is_empty() {
        return Err(err(0, "program has no rows"));
    }
    // Resolve labels.
    let mut final_rows = Vec::with_capacity(rows.len());
    for (row_idx, (mut row, pendings)) in rows.into_iter().enumerate() {
        for (line_no, pending) in pendings {
            row.lcu = match pending {
                PendingLcu::Ready(i) => i,
                PendingLcu::Jump(label) => {
                    let target = *labels
                        .get(&label)
                        .ok_or_else(|| err(line_no, format!("undefined label `{label}`")))?;
                    LcuInstr::Jump(target as u16)
                }
                PendingLcu::Branch { cond, a, b, label } => {
                    let target = *labels
                        .get(&label)
                        .ok_or_else(|| err(line_no, format!("undefined label `{label}`")))?;
                    LcuInstr::Branch {
                        cond,
                        a,
                        b,
                        target: target as u16,
                    }
                }
            };
        }
        let _ = row_idx;
        final_rows.push(row);
    }
    ColumnProgram::new(final_rows).map_err(|e| err(0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vwr2a_core::program::KernelProgram;
    use vwr2a_core::Vwr2a;

    const VADD: &str = "
    ; vector add kernel
        lsu  load.vwr a, 0
    ---
        lsu  load.vwr b, 1
        mxcu setidx 0
        lcu  li r0, 0
    ---
    loop:
        rc*  add vwr.c, vwr.a, vwr.b
        mxcu addidx 1
        lcu  add r0, 1
    ---
        lcu  blt r0, 32, loop
    ---
        lsu  store.vwr c, 2
    ---
        lcu  exit
    ";

    #[test]
    fn assembles_and_runs_a_vector_add() {
        let program = assemble_column(VADD).unwrap();
        assert_eq!(program.len(), 6);
        let kernel = KernelProgram::new("vadd-asm", vec![program]).unwrap();
        let mut accel = Vwr2a::new();
        accel
            .spm_mut()
            .write_line(0, &(0..128).collect::<Vec<i32>>())
            .unwrap();
        accel.spm_mut().write_line(1, &vec![100; 128]).unwrap();
        accel.run_program(&kernel).unwrap();
        let out = accel.spm().read_line(2).unwrap();
        assert_eq!(out[5], 105);
        assert_eq!(out[127], 227);
    }

    #[test]
    fn reports_unknown_tokens_with_line_numbers() {
        let e = assemble_column("  lcu frobnicate\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("frobnicate"));
        let e = assemble_column("  rc0 add vwr.z, vwr.a, vwr.b\n").unwrap_err();
        assert!(e.message.contains("unknown VWR"));
        assert!(assemble_column("").is_err());
    }

    #[test]
    fn undefined_label_is_reported() {
        let e = assemble_column("  lcu jump nowhere\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn shuffle_and_srf_addressing_parse() {
        let src = "
            lsu load.vwr a, srf3
        ---
            lsu shuffle interleave.lower
        ---
            lsu addsrf srf3, 1
        ---
            lcu exit
        ";
        let p = assemble_column(src).unwrap();
        assert_eq!(p.len(), 4);
    }
}
