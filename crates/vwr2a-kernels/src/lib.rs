//! VWR2A kernel mappings.
//!
//! The paper maps its kernels onto VWR2A by hand (Sec. 2: "We have currently
//! mapped the code manually on VWR2A").  This crate plays that role for the
//! reproduction: it generates per-slot instruction streams for the simulated
//! array and orchestrates the host-side staging (DMA transfers, SRF
//! parameters, kernel launches) exactly the way the platform firmware would.
//! All cycle counts reported by the kernels include that orchestration: DMA
//! transfers, SRF writes, configuration loading on the first launch and the
//! array execution itself.
//!
//! * [`ops`] — element-wise pass emitters, the building blocks of every
//!   mapping (load two VWRs, sweep the MXCU index, apply one RC operation,
//!   store the result; plus shuffle-unit and reduction passes).
//! * [`fir`] — the 11-tap FIR filter of Table 4.
//! * [`fft`] — radix-2 FFT (complex and real-valued) using the
//!   constant-geometry formulation whose inter-stage reordering is exactly
//!   the shuffle unit's word interleaving (Sec. 3.4).
//! * [`features`] — the data-parallel parts of MBioTracker's feature
//!   extraction (band energies, sums and sums of squares) plus the linear
//!   SVM decision.
//!
//! Every kernel is validated against the `vwr2a-dsp` golden models in its
//! module tests and in the workspace integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod features;
pub mod fft;
pub mod fir;
pub mod ops;

pub use error::{KernelError, Result};
use vwr2a_core::ActivityCounters;

/// Result of one kernel invocation: its numerical output plus the cycle and
/// activity accounting used by the energy model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelRun {
    /// Kernel output words (interpretation is kernel-specific).
    pub output: Vec<i32>,
    /// Total cycles including DMA staging, SRF parameter writes,
    /// configuration loading and array execution.
    pub cycles: u64,
    /// Activity accumulated on the array (and its DMA) during the run.
    pub counters: ActivityCounters,
}

impl KernelRun {
    /// Execution time in microseconds at the given clock frequency.
    pub fn time_us(&self, frequency_hz: f64) -> f64 {
        self.cycles as f64 / frequency_hz * 1e6
    }
}

pub(crate) fn subtract_counters(a: ActivityCounters, b: ActivityCounters) -> ActivityCounters {
    ActivityCounters {
        cycles: a.cycles - b.cycles,
        rc_alu_ops: a.rc_alu_ops - b.rc_alu_ops,
        rc_multiplies: a.rc_multiplies - b.rc_multiplies,
        rc_reg_reads: a.rc_reg_reads - b.rc_reg_reads,
        rc_reg_writes: a.rc_reg_writes - b.rc_reg_writes,
        vwr_word_reads: a.vwr_word_reads - b.vwr_word_reads,
        vwr_word_writes: a.vwr_word_writes - b.vwr_word_writes,
        vwr_line_transfers: a.vwr_line_transfers - b.vwr_line_transfers,
        spm_line_reads: a.spm_line_reads - b.spm_line_reads,
        spm_line_writes: a.spm_line_writes - b.spm_line_writes,
        spm_word_reads: a.spm_word_reads - b.spm_word_reads,
        spm_word_writes: a.spm_word_writes - b.spm_word_writes,
        srf_reads: a.srf_reads - b.srf_reads,
        srf_writes: a.srf_writes - b.srf_writes,
        shuffle_ops: a.shuffle_ops - b.shuffle_ops,
        instr_issues: a.instr_issues - b.instr_issues,
        nop_issues: a.nop_issues - b.nop_issues,
        lcu_branches: a.lcu_branches - b.lcu_branches,
        dma_words: a.dma_words - b.dma_words,
        dma_transfers: a.dma_transfers - b.dma_transfers,
        config_words_loaded: a.config_words_loaded - b.config_words_loaded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_run_time_conversion() {
        let run = KernelRun {
            output: vec![],
            cycles: 8000,
            counters: ActivityCounters::default(),
        };
        assert!((run.time_us(80.0e6) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn counter_subtraction_is_field_wise() {
        let mut a = ActivityCounters::default();
        a.cycles = 10;
        a.rc_alu_ops = 7;
        let mut b = ActivityCounters::default();
        b.cycles = 4;
        b.rc_alu_ops = 2;
        let d = subtract_counters(a, b);
        assert_eq!(d.cycles, 6);
        assert_eq!(d.rc_alu_ops, 5);
    }
}
