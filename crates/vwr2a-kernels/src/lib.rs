//! VWR2A kernel mappings.
//!
//! The paper maps its kernels onto VWR2A by hand (Sec. 2: "We have currently
//! mapped the code manually on VWR2A").  This crate plays that role for the
//! reproduction: every kernel implements [`vwr2a_runtime::Kernel`],
//! generating per-slot instruction streams for the simulated array and
//! driving the host-side staging (DMA transfers, SRF parameters, launches)
//! through a [`vwr2a_runtime::Session`] — which keeps each program resident
//! in the configuration memory, so only a kernel's first launch in a
//! session pays the configuration load and every repeat runs warm.
//!
//! * [`ops`] — element-wise pass emitters, the building blocks of every
//!   mapping (load two VWRs, sweep the MXCU index, apply one RC operation,
//!   store the result; plus shuffle-unit and reduction passes).
//! * [`fir`] — the 11-tap FIR filter of Table 4.
//! * [`fft`] — radix-2 FFT kernels ([`fft::FftKernel`] complex,
//!   [`fft::RealFftKernel`] real-valued) using the constant-geometry
//!   formulation whose inter-stage reordering is exactly the shuffle unit's
//!   word interleaving (Sec. 3.4).
//! * [`features`] — the data-parallel parts of MBioTracker's feature
//!   extraction as kernels: [`features::BandEnergies`],
//!   [`features::SumAndSquares`] and [`features::DotProduct`] (the linear
//!   SVM decision).
//!
//! Cycle and activity accounting arrives uniformly as
//! [`vwr2a_runtime::RunReport`] from the session; numerical outputs are the
//! kernels' associated `Output` types (e.g. [`Spectrum`] for the FFTs).
//! Every kernel is validated against the `vwr2a-dsp` golden models in its
//! module tests and in the workspace integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod features;
pub mod fft;
pub mod fir;
pub mod ops;

pub use error::{KernelError, Result};

/// A complex signal or spectrum as separate real/imaginary word arrays —
/// the input and output type of the FFT kernels and the input of
/// [`features::BandEnergies`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Spectrum {
    /// Real parts (natural bin order for spectra).
    pub re: Vec<i32>,
    /// Imaginary parts (natural bin order for spectra).
    pub im: Vec<i32>,
}

impl Spectrum {
    /// Bundles separate real/imaginary arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays differ in length.
    pub fn new(re: Vec<i32>, im: Vec<i32>) -> Self {
        assert_eq!(re.len(), im.len(), "re/im lengths must match");
        Self { re, im }
    }

    /// Number of complex points.
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// `true` if there are no points.
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectrum_bundles_matching_arrays() {
        let s = Spectrum::new(vec![1, 2], vec![3, 4]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(Spectrum::default().is_empty());
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn spectrum_rejects_mismatched_arrays() {
        let _ = Spectrum::new(vec![1], vec![1, 2]);
    }
}
