//! Element-wise pass emitters: the building blocks of the kernel mappings.
//!
//! Every data-parallel kernel on VWR2A decomposes into *passes* over one
//! VWR-line (128 words): load one or two operand lines into VWR A/B, sweep
//! the MXCU index over the 32 words of each RC slice while the four RCs
//! apply the same ALU operation, and store VWR C (or the modified VWR A)
//! back to the SPM.  The functions here append such passes to a
//! [`ColumnProgramBuilder`]; the FFT, FIR and feature kernels compose them
//! into complete column programs.
//!
//! Operand lines can be given as immediates (fixed scratch locations) or as
//! SRF entries (per-launch parameters written by the host), mirroring how
//! the paper uses the SRF for "addresses for the SPM" (Sec. 3.2).

use vwr2a_core::builder::ColumnProgramBuilder;
use vwr2a_core::geometry::VwrId;
use vwr2a_core::isa::{
    LcuCond, LcuInstr, LcuSrc, LsuAddr, LsuInstr, MxcuInstr, RcDst, RcInstr, RcOpcode, RcSrc,
    ShuffleOp,
};

/// Number of words each RC sweeps in one pass (its slice of a VWR).
pub const SLICE_WORDS: i32 = 32;

/// Where a pass finds an SPM line address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineRef {
    /// Fixed line number, baked into the program as an immediate.
    Imm(u16),
    /// Line number read from a scalar-register-file entry at run time.
    Srf(u8),
}

impl LineRef {
    fn to_addr(self) -> LsuAddr {
        match self {
            LineRef::Imm(v) => LsuAddr::Imm(v),
            LineRef::Srf(s) => LsuAddr::Srf(s),
        }
    }
}

fn load(vwr: VwrId, line: LineRef) -> LsuInstr {
    LsuInstr::LoadVwr {
        vwr,
        line: line.to_addr(),
    }
}

fn store(vwr: VwrId, line: LineRef) -> LsuInstr {
    LsuInstr::StoreVwr {
        vwr,
        line: line.to_addr(),
    }
}

/// Emits the shared "sweep the slice" loop around `body_rows`.
///
/// The loop uses LCU register 0 as its counter and costs two cycles per
/// element plus one extra cycle per additional body row.
fn emit_sweep(b: &mut ColumnProgramBuilder, body: &[vwr2a_core::Row]) {
    let top = b.new_label();
    b.bind_label(top);
    let last = body.len() - 1;
    for (i, row) in body.iter().cloned().enumerate() {
        if i == last {
            b.push(row.mxcu(MxcuInstr::AddIdx(1)).lcu(LcuInstr::Add {
                r: 0,
                src: LcuSrc::Imm(1),
            }));
        } else {
            b.push(row);
        }
    }
    b.push_branch(b.row(), LcuCond::Lt, 0, LcuSrc::Imm(SLICE_WORDS), top);
}

/// Loads VWR A and VWR B and applies `op` element-wise into VWR C, storing
/// the result line.
///
/// Cost: ~`3 + 2·32 + 1` cycles; 5 program rows.
pub fn emit_ew_pass(
    b: &mut ColumnProgramBuilder,
    op: RcOpcode,
    a_line: LineRef,
    b_line: LineRef,
    out_line: LineRef,
) {
    b.push(b.row().lsu(load(VwrId::A, a_line)));
    b.push(
        b.row()
            .lsu(load(VwrId::B, b_line))
            .mxcu(MxcuInstr::SetIdx(0))
            .lcu(LcuInstr::Li { r: 0, value: 0 }),
    );
    let body = vec![b.row().rc_all(RcInstr::new(
        op,
        RcDst::Vwr(VwrId::C),
        RcSrc::Vwr(VwrId::A),
        RcSrc::Vwr(VwrId::B),
    ))];
    emit_sweep(b, &body);
    b.push(b.row().lsu(store(VwrId::C, out_line)));
}

/// Applies `op` element-wise between the line already resident in VWR A and
/// a freshly loaded VWR B, storing VWR C (used when a previous pass left its
/// result in A).
pub fn emit_ew_pass_reuse_a(
    b: &mut ColumnProgramBuilder,
    op: RcOpcode,
    b_line: LineRef,
    out_line: LineRef,
) {
    b.push(
        b.row()
            .lsu(load(VwrId::B, b_line))
            .mxcu(MxcuInstr::SetIdx(0))
            .lcu(LcuInstr::Li { r: 0, value: 0 }),
    );
    let body = vec![b.row().rc_all(RcInstr::new(
        op,
        RcDst::Vwr(VwrId::C),
        RcSrc::Vwr(VwrId::A),
        RcSrc::Vwr(VwrId::B),
    ))];
    emit_sweep(b, &body);
    b.push(b.row().lsu(store(VwrId::C, out_line)));
}

/// Radix-2 butterfly pass: loads A and B, writes `A[k]+B[k]` to VWR C
/// (stored to `sum_out`) and replaces VWR A with `A[k]-B[k]`, which stays
/// resident for the following twiddle-multiply passes.
pub fn emit_butterfly_pass(
    b: &mut ColumnProgramBuilder,
    a_line: LineRef,
    b_line: LineRef,
    sum_out: LineRef,
) {
    b.push(b.row().lsu(load(VwrId::A, a_line)));
    b.push(
        b.row()
            .lsu(load(VwrId::B, b_line))
            .mxcu(MxcuInstr::SetIdx(0))
            .lcu(LcuInstr::Li { r: 0, value: 0 }),
    );
    let body = vec![
        b.row().rc_all(RcInstr::new(
            RcOpcode::Add,
            RcDst::Vwr(VwrId::C),
            RcSrc::Vwr(VwrId::A),
            RcSrc::Vwr(VwrId::B),
        )),
        b.row().rc_all(RcInstr::new(
            RcOpcode::Sub,
            RcDst::Vwr(VwrId::A),
            RcSrc::Vwr(VwrId::A),
            RcSrc::Vwr(VwrId::B),
        )),
    ];
    emit_sweep(b, &body);
    b.push(b.row().lsu(store(VwrId::C, sum_out)));
}

/// Interleave pass: loads two lines, runs the shuffle unit's word
/// interleaving and stores both halves.  `out_lo` must be an SRF reference
/// when `bump_out` is true, in which case the same SRF entry is incremented
/// between the two stores so the upper half lands on the following line.
pub fn emit_interleave_pass(
    b: &mut ColumnProgramBuilder,
    a_line: LineRef,
    b_line: LineRef,
    out_lo: LineRef,
    out_hi: Option<LineRef>,
) {
    b.push(b.row().lsu(load(VwrId::A, a_line)));
    b.push(b.row().lsu(load(VwrId::B, b_line)));
    b.push(b.row().lsu(LsuInstr::Shuffle(ShuffleOp::InterleaveLower)));
    b.push(b.row().lsu(store(VwrId::C, out_lo)));
    b.push(b.row().lsu(LsuInstr::Shuffle(ShuffleOp::InterleaveUpper)));
    match (out_hi, out_lo) {
        (Some(hi), _) => {
            b.push(b.row().lsu(store(VwrId::C, hi)));
        }
        (None, LineRef::Srf(s)) => {
            b.push(b.row().lsu(LsuInstr::AddSrf { srf: s, imm: 1 }));
            b.push(b.row().lsu(store(VwrId::C, LineRef::Srf(s))));
        }
        (None, LineRef::Imm(v)) => {
            b.push(b.row().lsu(store(VwrId::C, LineRef::Imm(v + 1))));
        }
    }
}

/// Reduction pass: sums the 128 words of a line into a single scalar.
///
/// Each RC accumulates its slice into its local register 0, the partial sums
/// are combined through the neighbour network, and RC0 writes the total to
/// the given SRF entry, from where the LSU stores it to an SPM word.
pub fn emit_reduce_sum_pass(
    b: &mut ColumnProgramBuilder,
    in_line: LineRef,
    out_srf: u8,
    out_word: Option<u16>,
) {
    b.push(b.row().lsu(load(VwrId::A, in_line)));
    b.push(
        b.row()
            .mxcu(MxcuInstr::SetIdx(0))
            .lcu(LcuInstr::Li { r: 0, value: 0 })
            .rc_all(RcInstr::mov(RcDst::Reg(0), RcSrc::Zero)),
    );
    let body = vec![b.row().rc_all(RcInstr::new(
        RcOpcode::Add,
        RcDst::Reg(0),
        RcSrc::Reg(0),
        RcSrc::Vwr(VwrId::A),
    ))];
    emit_sweep(b, &body);
    // Fold the per-RC partial sums into RC0 over the neighbour network:
    // expose them as previous-cycle results, pair-sum in RC0 and RC2, relay
    // RC2's pair through RC1, and finally add it in RC0 while writing the
    // total to the SRF.
    b.push(b.row().rc_all(RcInstr::mov(RcDst::None, RcSrc::Reg(0))));
    b.push(
        b.row()
            .rc(
                0,
                RcInstr::new(RcOpcode::Add, RcDst::None, RcSrc::SelfPrev, RcSrc::RcBelow),
            )
            .rc(
                2,
                RcInstr::new(RcOpcode::Add, RcDst::None, RcSrc::SelfPrev, RcSrc::RcBelow),
            ),
    );
    b.push(b.row().rc(1, RcInstr::mov(RcDst::None, RcSrc::RcBelow)));
    b.push(b.row().rc(
        0,
        RcInstr::new(
            RcOpcode::Add,
            RcDst::Srf(out_srf),
            RcSrc::SelfPrev,
            RcSrc::RcBelow,
        ),
    ));
    if let Some(word) = out_word {
        b.push(b.row().lsu(LsuInstr::StoreSrf {
            srf: out_srf,
            word: LsuAddr::Imm(word),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vwr2a_core::program::KernelProgram;
    use vwr2a_core::Vwr2a;

    fn run_single_column(
        build: impl FnOnce(&mut ColumnProgramBuilder),
        seed_lines: &[(usize, Vec<i32>)],
    ) -> (Vwr2a, u64) {
        let mut b = ColumnProgramBuilder::new(4);
        build(&mut b);
        b.push_exit();
        let program = KernelProgram::new("test-pass", vec![b.build().unwrap()]).unwrap();
        let mut accel = Vwr2a::new();
        for (line, data) in seed_lines {
            accel.spm_mut().write_line(*line, data).unwrap();
        }
        let stats = accel.run_program(&program).unwrap();
        (accel, stats.cycles)
    }

    #[test]
    fn ew_add_pass_adds_two_lines() {
        let a: Vec<i32> = (0..128).collect();
        let b: Vec<i32> = (0..128).map(|i| 1000 * i).collect();
        let (accel, cycles) = run_single_column(
            |bld| {
                emit_ew_pass(
                    bld,
                    RcOpcode::Add,
                    LineRef::Imm(0),
                    LineRef::Imm(1),
                    LineRef::Imm(2),
                )
            },
            &[(0, a.clone()), (1, b.clone())],
        );
        let out = accel.spm().read_line(2).unwrap();
        for i in 0..128 {
            assert_eq!(out[i], a[i] + b[i]);
        }
        assert!(cycles < 120, "pass took {cycles} cycles");
    }

    #[test]
    fn butterfly_pass_produces_sum_and_diff() {
        let a: Vec<i32> = (0..128).map(|i| 10 * i).collect();
        let b: Vec<i32> = (0..128).map(|i| i + 1).collect();
        let (accel, _) = run_single_column(
            |bld| {
                emit_butterfly_pass(bld, LineRef::Imm(0), LineRef::Imm(1), LineRef::Imm(2));
                // Store the diff (left in VWR A) to line 3 for inspection.
                bld.push(bld.row().lsu(LsuInstr::StoreVwr {
                    vwr: VwrId::A,
                    line: LsuAddr::Imm(3),
                }));
            },
            &[(0, a.clone()), (1, b.clone())],
        );
        let sum = accel.spm().read_line(2).unwrap();
        let diff = accel.spm().read_line(3).unwrap();
        for i in 0..128 {
            assert_eq!(sum[i], a[i] + b[i]);
            assert_eq!(diff[i], a[i] - b[i]);
        }
    }

    #[test]
    fn interleave_pass_matches_shuffle_semantics() {
        let a: Vec<i32> = (0..128).collect();
        let b: Vec<i32> = (128..256).collect();
        let (accel, cycles) = run_single_column(
            |bld| {
                emit_interleave_pass(
                    bld,
                    LineRef::Imm(0),
                    LineRef::Imm(1),
                    LineRef::Imm(4),
                    Some(LineRef::Imm(5)),
                )
            },
            &[(0, a), (1, b)],
        );
        let lo = accel.spm().read_line(4).unwrap();
        let hi = accel.spm().read_line(5).unwrap();
        assert_eq!(lo[0], 0);
        assert_eq!(lo[1], 128);
        assert_eq!(lo[2], 1);
        assert_eq!(hi[0], 64);
        assert_eq!(hi[1], 192);
        assert!(cycles < 120, "interleave took {cycles} cycles");
    }

    #[test]
    fn ew_pass_with_srf_line_references() {
        let a: Vec<i32> = (0..128).map(|i| i * 2).collect();
        let b: Vec<i32> = (0..128).map(|_| 5).collect();
        let mut bld = ColumnProgramBuilder::new(4);
        emit_ew_pass(
            &mut bld,
            RcOpcode::Sub,
            LineRef::Srf(0),
            LineRef::Srf(1),
            LineRef::Srf(2),
        );
        bld.push_exit();
        let program = KernelProgram::new("srf-pass", vec![bld.build().unwrap()]).unwrap();
        let mut accel = Vwr2a::new();
        accel.spm_mut().write_line(7, &a).unwrap();
        accel.spm_mut().write_line(9, &b).unwrap();
        accel.write_srf(0, 0, 7).unwrap();
        accel.write_srf(0, 1, 9).unwrap();
        accel.write_srf(0, 2, 11).unwrap();
        accel.run_program(&program).unwrap();
        let out = accel.spm().read_line(11).unwrap();
        for i in 0..128 {
            assert_eq!(out[i], a[i] - 5);
        }
    }
}
