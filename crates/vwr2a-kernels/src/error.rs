//! Error type of the kernel mappings.

use std::error::Error;
use std::fmt;
use vwr2a_core::CoreError;
use vwr2a_dsp::DspError;

/// Errors raised while building or running VWR2A kernel mappings.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum KernelError {
    /// The underlying array simulator reported an error.
    Core(CoreError),
    /// A reference-model error (invalid sizes, etc.).
    Dsp(DspError),
    /// The requested problem size is not supported by this mapping.
    UnsupportedSize {
        /// Human-readable description of the constraint.
        what: String,
    },
    /// A parameter is outside the supported range.
    InvalidParameter {
        /// Human-readable description.
        what: String,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Core(e) => write!(f, "array error: {e}"),
            KernelError::Dsp(e) => write!(f, "reference model error: {e}"),
            KernelError::UnsupportedSize { what } => write!(f, "unsupported size: {what}"),
            KernelError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for KernelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KernelError::Core(e) => Some(e),
            KernelError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for KernelError {
    fn from(e: CoreError) -> Self {
        KernelError::Core(e)
    }
}

impl From<DspError> for KernelError {
    fn from(e: DspError) -> Self {
        KernelError::Dsp(e)
    }
}

impl From<KernelError> for vwr2a_runtime::RuntimeError {
    fn from(e: KernelError) -> Self {
        match e {
            KernelError::Core(c) => vwr2a_runtime::RuntimeError::Core(c),
            other => vwr2a_runtime::RuntimeError::InvalidInput {
                what: other.to_string(),
            },
        }
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, KernelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: KernelError = CoreError::UnknownKernel {
            slot: 1,
            generation: 0,
        }
        .into();
        assert!(e.to_string().contains("array error"));
        let e: KernelError = DspError::EmptyInput.into();
        assert!(e.to_string().contains("reference model"));
        assert!(KernelError::UnsupportedSize { what: "n".into() }
            .source()
            .is_none());
    }
}
