//! VWR2A mapping of the 11-tap FIR filter (Table 4, and the preprocessing
//! step of MBioTracker).
//!
//! Mapping summary (Sec. 4.4.1 of the paper: "our mapping uses two columns
//! of the reconfigurable array that work on different slices of the input
//! array"):
//!
//! * The host stages the input with a **10-sample overlap per RC slice**:
//!   each 32-word slice of a VWR line holds 10 halo samples followed by 22
//!   payload samples, so every RC computes 22 outputs without ever needing
//!   data from a neighbouring slice ("careful data placement", Sec. 3.3.2).
//! * The filter taps are baked into the program as immediates (they are
//!   kernel constants, exactly like the paper's manually mapped kernels).
//! * Each output sample is an 11-step multiply-accumulate in the RC local
//!   registers (standard multiply mode, 32-bit accumulator, final `>> 15`
//!   like `arm_fir_q15`); the MXCU index walks down the taps and back.
//! * Both columns run the same program on different input blocks; the block
//!   loop is driven by the host, which rewrites the two SRF line pointers
//!   and relaunches the kernel.  Under a [`Session`] only the very first
//!   launch of the session is cold — every later block, and every later
//!   window of a batch, reuses the resident configuration.

use crate::error::{KernelError, Result};
use vwr2a_core::builder::ColumnProgramBuilder;
use vwr2a_core::geometry::{Geometry, VwrId};
use vwr2a_core::isa::{
    LcuCond, LcuInstr, LcuSrc, LsuAddr, LsuInstr, MxcuInstr, RcDst, RcInstr, RcOpcode, RcSrc,
};
use vwr2a_core::program::KernelProgram;
use vwr2a_runtime::{Kernel, LaunchCtx, Offload, Resources, RuntimeError, Session};
use vwr2a_soc::cpu::{Cpu, CpuInstr};
use vwr2a_soc::sram::Sram;

/// Payload samples produced per RC slice and per block pass.
const PAYLOAD_PER_SLICE: usize = 32 - 10;
/// Input line used by column `c` (SRF-addressed, but these are the SPM
/// locations the host stages into).
const IN_LINE: [u16; 2] = [0, 1];
/// Output line used by column `c`.
const OUT_LINE: [u16; 2] = [2, 3];

/// The 11-tap FIR kernel mapping.
///
/// # Example
///
/// ```
/// use vwr2a_kernels::fir::FirKernel;
/// use vwr2a_runtime::Session;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let taps = [1024i32; 11]; // a crude averaging filter in q15
/// let kernel = FirKernel::new(&taps, 256)?;
/// let input: Vec<i32> = (0..256).map(|i| ((i % 64) as i32 - 32) * 256).collect();
/// let mut session = Session::new();
/// let (output, report) = session.run(&kernel, &input)?;
/// assert_eq!(output.len(), 256);
/// assert!(report.cycles > 0);
/// // Re-running the same kernel is warm: no configuration reload.
/// let (_, warm) = session.run(&kernel, &input)?;
/// assert!(warm.cycles < report.cycles);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FirKernel {
    taps: Vec<i32>,
    n: usize,
    program: KernelProgram,
}

impl FirKernel {
    /// Builds the kernel for the given `q15` taps and input length.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidParameter`] if there are no taps, more
    /// than 11 taps (the slice overlap is sized for the paper's filter), a
    /// tap that does not fit the 16-bit immediate field, or a zero-length
    /// input.
    pub fn new(taps: &[i32], n: usize) -> Result<Self> {
        if taps.is_empty() || taps.len() > 11 {
            return Err(KernelError::InvalidParameter {
                what: format!("tap count must be 1..=11, got {}", taps.len()),
            });
        }
        if n == 0 {
            return Err(KernelError::InvalidParameter {
                what: "input length must be non-zero".into(),
            });
        }
        if let Some(bad) = taps
            .iter()
            .find(|t| **t > i16::MAX as i32 || **t < i16::MIN as i32)
        {
            return Err(KernelError::InvalidParameter {
                what: format!("tap {bad} does not fit the q15 immediate field"),
            });
        }
        let program = Self::build_program(taps)?;
        Ok(Self {
            taps: taps.to_vec(),
            n,
            program,
        })
    }

    /// The filter taps.
    pub fn taps(&self) -> &[i32] {
        &self.taps
    }

    /// The configured input length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the configured input length is zero (never true for a
    /// constructed kernel).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Outputs produced by one block launch (both columns).
    fn outputs_per_block() -> usize {
        2 * 4 * PAYLOAD_PER_SLICE
    }

    fn build_column_program(taps: &[i32]) -> Result<vwr2a_core::ColumnProgram> {
        let mut b = ColumnProgramBuilder::new(4);
        // Load the overlapped input line; line address in SRF[0].
        b.push(b.row().lsu(LsuInstr::LoadVwr {
            vwr: VwrId::A,
            line: LsuAddr::Srf(0),
        }));
        // w = 10 (first payload word of every slice).
        b.push(
            b.row()
                .mxcu(MxcuInstr::SetIdx(10))
                .lcu(LcuInstr::Li { r: 0, value: 10 }),
        );
        let outer = b.new_label();
        b.bind_label(outer);
        // Tap 0: start the accumulator, then walk the index down the taps.
        b.push(
            b.row()
                .rc_all(RcInstr::new(
                    RcOpcode::Mul,
                    RcDst::Reg(0),
                    RcSrc::Vwr(VwrId::A),
                    RcSrc::Imm(taps[0] as i16),
                ))
                .mxcu(MxcuInstr::AddIdx(-1)),
        );
        for (k, &tap) in taps.iter().enumerate().skip(1) {
            let last = k == taps.len() - 1;
            // Multiply at index w - k, stepping the index except on the last
            // tap, where it jumps back up to w.
            let step = if last {
                MxcuInstr::AddIdx((k) as i16)
            } else {
                MxcuInstr::AddIdx(-1)
            };
            b.push(
                b.row()
                    .rc_all(RcInstr::new(
                        RcOpcode::Mul,
                        RcDst::Reg(1),
                        RcSrc::Vwr(VwrId::A),
                        RcSrc::Imm(tap as i16),
                    ))
                    .mxcu(step),
            );
            b.push(b.row().rc_all(RcInstr::new(
                RcOpcode::Add,
                RcDst::Reg(0),
                RcSrc::Reg(0),
                RcSrc::Reg(1),
            )));
        }
        // y[w] = acc >> 15 (back to q15 scale, matching arm_fir_q15), then
        // advance w.
        b.push(
            b.row()
                .rc_all(RcInstr::new(
                    RcOpcode::Sra,
                    RcDst::Vwr(VwrId::C),
                    RcSrc::Reg(0),
                    RcSrc::Imm(15),
                ))
                .mxcu(MxcuInstr::AddIdx(1))
                .lcu(LcuInstr::Add {
                    r: 0,
                    src: LcuSrc::Imm(1),
                }),
        );
        b.push_branch(b.row(), LcuCond::Lt, 0, LcuSrc::Imm(32), outer);
        // Store the output line; line address in SRF[1].
        b.push(b.row().lsu(LsuInstr::StoreVwr {
            vwr: VwrId::C,
            line: LsuAddr::Srf(1),
        }));
        b.push_exit();
        Ok(b.build()?)
    }

    fn build_program(taps: &[i32]) -> Result<KernelProgram> {
        let col = Self::build_column_program(taps)?;
        Ok(KernelProgram::new("fir-11tap", vec![col.clone(), col])?)
    }

    /// Builds the overlapped input line for one column of one block.
    ///
    /// `base` is the index of the first payload sample of the column's first
    /// slice.
    fn stage_line(input: &[i32], base: i64) -> Vec<i32> {
        let mut line = vec![0i32; 128];
        for slice in 0..4usize {
            let payload_start = base + (slice * PAYLOAD_PER_SLICE) as i64;
            for w in 0..32usize {
                // Word w of the slice corresponds to sample payload_start + (w - 10).
                let idx = payload_start + w as i64 - 10;
                if idx >= 0 && (idx as usize) < input.len() {
                    line[slice * 32 + w] = input[idx as usize];
                }
            }
        }
        line
    }

    /// Emits the Cortex-M4 mirror of the column program: one `Lw`/`Li`/
    /// `Mla` triple per tap walking the same zero-padded window, the same
    /// final arithmetic `>> 15`, and a store per output sample.
    ///
    /// The SRAM image the program expects is `taps.len() - 1` zero words,
    /// the `n` input samples, then the `n`-word output region; all
    /// arithmetic is wrapping 32-bit in tap order, so the outputs are
    /// bit-identical to the array's reconfigurable-cell datapath.
    fn cpu_program(&self) -> Vec<CpuInstr> {
        let k = self.taps.len();
        let pad = (k - 1) as i32;
        let out_base = pad + self.n as i32;
        let mut prog = vec![
            CpuInstr::Li { rd: 1, imm: 0 },
            CpuInstr::Li {
                rd: 2,
                imm: self.n as i32,
            },
        ];
        let loop_top = prog.len();
        for (tap_idx, &tap) in self.taps.iter().enumerate() {
            // x[i - k] lives at word `i + (pad - k)` of the padded image.
            prog.push(CpuInstr::Lw {
                rd: 4,
                rs1: 1,
                offset: pad - tap_idx as i32,
            });
            prog.push(CpuInstr::Li { rd: 5, imm: tap });
            prog.push(if tap_idx == 0 {
                CpuInstr::Mul {
                    rd: 3,
                    rs1: 4,
                    rs2: 5,
                }
            } else {
                CpuInstr::Mla {
                    rd: 3,
                    rs1: 4,
                    rs2: 5,
                }
            });
        }
        prog.push(CpuInstr::Sra {
            rd: 3,
            rs1: 3,
            shamt: 15,
        });
        prog.push(CpuInstr::Sw {
            rs2: 3,
            rs1: 1,
            offset: out_base,
        });
        prog.push(CpuInstr::Addi {
            rd: 1,
            rs1: 1,
            imm: 1,
        });
        prog.push(CpuInstr::Blt {
            rs1: 1,
            rs2: 2,
            target: loop_top,
        });
        prog.push(CpuInstr::Halt);
        prog
    }

    /// Convenience wrapper: runs the filter in a throwaway [`Session`].
    ///
    /// Repeated-invocation workloads should hold their own session so the
    /// configuration load is paid once; this exists for one-shot callers
    /// and tests.
    ///
    /// # Errors
    ///
    /// As [`Session::run`].
    pub fn run_once(&self, input: &[i32]) -> vwr2a_runtime::Result<Vec<i32>> {
        Session::new().run(self, input).map(|(out, _)| out)
    }
}

impl Kernel for FirKernel {
    type Input = [i32];
    type Output = Vec<i32>;

    fn name(&self) -> &str {
        "fir-11tap"
    }

    fn cache_key(&self) -> String {
        // The taps are baked into the program as immediates, so program
        // identity is exactly tap identity (the input length only affects
        // host-side staging).
        format!("fir:{:?}", self.taps)
    }

    fn resources(&self) -> Resources {
        Resources {
            columns: 2,
            spm_lines: 4,
            srf_slots: 2,
        }
    }

    fn program(&self, _geometry: &Geometry) -> vwr2a_runtime::Result<KernelProgram> {
        Ok(self.program.clone())
    }

    fn execute(&self, ctx: &mut LaunchCtx<'_>, input: &[i32]) -> vwr2a_runtime::Result<Vec<i32>> {
        if input.len() != self.n {
            return Err(KernelError::InvalidParameter {
                what: format!("expected {} samples, got {}", self.n, input.len()),
            }
            .into());
        }
        let mut output = vec![0i32; self.n];
        let per_block = Self::outputs_per_block();
        let blocks = self.n.div_ceil(per_block);
        for blk in 0..blocks {
            let block_base = (blk * per_block) as i64;
            for (col, (&in_line, &out_line)) in IN_LINE.iter().zip(&OUT_LINE).enumerate() {
                let base = block_base + (col * 4 * PAYLOAD_PER_SLICE) as i64;
                let line = Self::stage_line(input, base);
                ctx.dma_in(&line, in_line as usize * 128)?;
                ctx.write_param(col, 0, in_line as i32)?;
                ctx.write_param(col, 1, out_line as i32)?;
            }
            ctx.launch()?;
            for (col, &out_line) in OUT_LINE.iter().enumerate() {
                let line = ctx.dma_out(out_line as usize * 128, 128)?;
                let base = block_base + (col * 4 * PAYLOAD_PER_SLICE) as i64;
                for slice in 0..4usize {
                    for p in 0..PAYLOAD_PER_SLICE {
                        let out_idx = base + (slice * PAYLOAD_PER_SLICE + p) as i64;
                        if out_idx >= 0 && (out_idx as usize) < self.n {
                            output[out_idx as usize] = line[slice * 32 + 10 + p];
                        }
                    }
                }
            }
        }
        Ok(output)
    }

    fn offload(&self) -> Offload {
        // Per output: one load/immediate/MAC triple per tap plus the
        // shift/store/bump/branch epilogue.  A placement-grade estimate —
        // execution charges the ISS's actual cycle count.
        let per_output = 4 * self.taps.len() as u64 + 8;
        Offload {
            fft: None,
            cpu_cycles: Some(self.n as u64 * per_output + 8),
        }
    }

    fn execute_cpu(
        &self,
        cpu: &mut Cpu,
        sram: &mut Sram,
        input: &[i32],
    ) -> vwr2a_runtime::Result<(Vec<i32>, vwr2a_soc::cpu::CpuRunStats)> {
        if input.len() != self.n {
            return Err(KernelError::InvalidParameter {
                what: format!("expected {} samples, got {}", self.n, input.len()),
            }
            .into());
        }
        let as_runtime_err = |e: vwr2a_soc::SocError| RuntimeError::invalid_input(e.to_string());
        // The host SRAM persists across jobs, so (re)stage the whole image:
        // the zero halo the negative-index taps read, then the samples.
        let pad = self.taps.len() - 1;
        if pad > 0 {
            sram.load(0, &vec![0i32; pad]).map_err(as_runtime_err)?;
        }
        sram.load(pad, input).map_err(as_runtime_err)?;
        let stats = cpu.run(&self.cpu_program(), sram).map_err(as_runtime_err)?;
        let output = sram.dump(pad + self.n, self.n).map_err(as_runtime_err)?;
        Ok((output, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vwr2a_dsp::fir::{design_lowpass, fir_q15, PAPER_FIR_TAPS};
    use vwr2a_dsp::fixed::Q15;

    fn paper_taps() -> Vec<i32> {
        design_lowpass(PAPER_FIR_TAPS, 0.12)
            .unwrap()
            .iter()
            .map(|&v| Q15::from_f64(v).0 as i32)
            .collect()
    }

    #[test]
    fn matches_q15_reference_within_rounding() {
        let taps = paper_taps();
        let n = 256;
        let input_f: Vec<f64> = (0..n).map(|i| 0.6 * (i as f64 * 0.09).sin()).collect();
        let input: Vec<i32> = input_f.iter().map(|&v| Q15::from_f64(v).0 as i32).collect();
        let kernel = FirKernel::new(&taps, n).unwrap();
        let output = kernel.run_once(&input).unwrap();

        let taps_q: Vec<Q15> = taps.iter().map(|&t| Q15(t as i16)).collect();
        let input_q: Vec<Q15> = input.iter().map(|&v| Q15(v as i16)).collect();
        let reference = fir_q15(&taps_q, &input_q).unwrap();
        for (i, (o, r)) in output.iter().zip(reference.iter()).enumerate() {
            assert!(
                (o - r.0 as i32).abs() <= 4,
                "sample {i}: vwr2a {o} vs reference {}",
                r.0
            );
        }
    }

    #[test]
    fn cycle_count_is_in_the_papers_range_for_256_points() {
        // Table 4 reports 1849 cycles for 256 points; the mapping should be
        // within a factor ~1.6 of that.
        let kernel = FirKernel::new(&paper_taps(), 256).unwrap();
        let input: Vec<i32> = (0..256).map(|i| ((i * 37) % 8192) - 4096).collect();
        let mut session = Session::new();
        let (_, report) = session.run(&kernel, &input).unwrap();
        assert!(
            report.cycles > 1000 && report.cycles < 3200,
            "cycles {}",
            report.cycles
        );
    }

    #[test]
    fn cycles_scale_roughly_linearly_with_input_size() {
        let taps = paper_taps();
        let cycles = |n: usize| {
            let kernel = FirKernel::new(&taps, n).unwrap();
            let input: Vec<i32> = (0..n).map(|i| (i as i32 % 100) - 50).collect();
            let mut session = Session::new();
            session.run(&kernel, &input).unwrap().1.cycles as f64
        };
        let r = cycles(1024) / cycles(512);
        assert!(r > 1.7 && r < 2.3, "scaling ratio {r}");
    }

    #[test]
    fn warm_window_skips_the_configuration_load() {
        let kernel = FirKernel::new(&paper_taps(), 256).unwrap();
        let input: Vec<i32> = (0..256).map(|i| (i % 64) * 100 - 3200).collect();
        let mut session = Session::new();
        let (out_cold, cold) = session.run(&kernel, &input).unwrap();
        let (out_warm, warm) = session.run(&kernel, &input).unwrap();
        assert_eq!(out_cold, out_warm, "warm rerun must be bit-identical");
        assert_eq!(cold.cold_launches, 1);
        assert_eq!(warm.cold_launches, 0);
        assert!(warm.warm_launches >= 1);
        assert_eq!(
            cold.cycles - warm.cycles,
            cold.counters.config_words_loaded,
            "the warm saving is exactly the configuration streaming"
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(FirKernel::new(&[], 128).is_err());
        assert!(FirKernel::new(&[1; 12], 128).is_err());
        assert!(FirKernel::new(&[40_000], 128).is_err());
        assert!(FirKernel::new(&[1], 0).is_err());
        let k = FirKernel::new(&[1, 2, 3], 64).unwrap();
        assert!(k.run_once(&[0; 32]).is_err());
        assert_eq!(k.taps(), &[1, 2, 3]);
        assert_eq!(k.len(), 64);
        assert!(!k.is_empty());
    }

    #[test]
    fn cpu_offload_matches_the_array_bit_exactly() {
        // Both datapaths compute (sum taps[k] * x[i-k]) >> 15 with wrapping
        // 32-bit arithmetic in tap order, so the ISS mirror must agree on
        // every word, including the zero-padded left edge.
        let taps = paper_taps();
        let kernel = FirKernel::new(&taps, 96).unwrap();
        let input: Vec<i32> = (0..96).map(|i| (i * 2731) % 65536 - 32768).collect();
        let array_out = kernel.run_once(&input).unwrap();
        let mut cpu = Cpu::new();
        let mut sram = Sram::paper();
        let (cpu_out, stats) = kernel.execute_cpu(&mut cpu, &mut sram, &input).unwrap();
        assert_eq!(cpu_out, array_out);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn cpu_offload_is_independent_of_prior_sram_contents() {
        // The hook contract: every word the program reads is reloaded, so
        // a dirty SRAM from an earlier job cannot leak into the output.
        let kernel = FirKernel::new(&[4096, -8192, 16384], 40).unwrap();
        let input: Vec<i32> = (0..40).map(|i| (i - 20) * 999).collect();
        let mut cpu = Cpu::new();
        let mut sram = Sram::paper();
        let (fresh, _) = kernel.execute_cpu(&mut cpu, &mut sram, &input).unwrap();
        let poison: Vec<i32> = (0..128).map(|i| i32::MIN + i).collect();
        sram.load(0, &poison).unwrap();
        let (dirty, _) = kernel.execute_cpu(&mut cpu, &mut sram, &input).unwrap();
        assert_eq!(dirty, fresh);
    }

    #[test]
    fn offload_declares_a_cpu_estimate_and_no_fft_shape() {
        let kernel = FirKernel::new(&paper_taps(), 64).unwrap();
        let offload = kernel.offload();
        assert!(offload.fft.is_none());
        let estimate = offload.cpu_cycles.expect("FIR advertises a CPU fallback");
        assert!(estimate > 64, "estimate scales with the sample count");
    }
}
