//! VWR2A mappings of the data-parallel feature-extraction pieces.
//!
//! MBioTracker's feature-extraction step reduces the filtered signal and its
//! spectrum to a small feature vector (Sec. 4.4.2).  The reductions map onto
//! the array as element-wise passes followed by the cross-RC reduction of
//! [`crate::ops::emit_reduce_sum_pass`]:
//!
//! * [`BandEnergies`] — per-band spectral energy `Σ (re² + im²)` used for
//!   the frequency features,
//! * [`SumAndSquares`] — the Σx and Σx² reductions behind the mean and RMS
//!   time features,
//! * [`DotProduct`] — the linear-SVM decision value.
//!
//! All three share one *map-reduce* column program per ALU operation, with
//! the operand and scratch SPM lines passed through the SRF.  Because the
//! line addresses are launch parameters rather than immediates, one
//! resident program serves every block of every input — so inside a
//! [`vwr2a_runtime::Session`] only the first block of the first invocation
//! is a cold launch, and kernels that share an operation (e.g.
//! [`DotProduct`] and the Σx² half of [`SumAndSquares`], both standard
//! multiplies) warm each other up.

use crate::error::KernelError;
use crate::ops::{emit_ew_pass, emit_reduce_sum_pass, LineRef};
use crate::Spectrum;
use vwr2a_core::builder::ColumnProgramBuilder;
use vwr2a_core::geometry::Geometry;
use vwr2a_core::isa::RcOpcode;
use vwr2a_core::program::KernelProgram;
use vwr2a_runtime::{Kernel, LaunchCtx, Resources, Result, RuntimeError};

/// Words per SPM line.
const LINE: usize = 128;
/// SRF entry holding the first-operand line address.
const SRF_A: usize = 0;
/// SRF entry holding the second-operand line address.
const SRF_B: usize = 1;
/// SRF entry holding the scratch (map output) line address.
const SRF_OUT: usize = 2;
/// SRF entry the reduction writes the scalar result to.
const SRF_RESULT: usize = 7;

fn pad_to_lines(data: &[i32]) -> Vec<i32> {
    let mut v = data.to_vec();
    let rem = v.len() % LINE;
    if rem != 0 {
        v.resize(v.len() + (LINE - rem), 0);
    }
    v
}

fn map_reduce_key(op: RcOpcode) -> String {
    format!("map-reduce:{op:?}")
}

/// Builds the shared single-column "map `op` over two SRF-addressed lines,
/// then reduce to a scalar in `SRF[7]`" program.
fn map_reduce_program(op: RcOpcode) -> Result<KernelProgram> {
    let mut bld = ColumnProgramBuilder::new(4);
    emit_ew_pass(
        &mut bld,
        op,
        LineRef::Srf(SRF_A as u8),
        LineRef::Srf(SRF_B as u8),
        LineRef::Srf(SRF_OUT as u8),
    );
    emit_reduce_sum_pass(
        &mut bld,
        LineRef::Srf(SRF_OUT as u8),
        SRF_RESULT as u8,
        None,
    );
    bld.push_exit();
    let col = bld.build().map_err(KernelError::from)?;
    Ok(KernelProgram::new("map-reduce", vec![col]).map_err(KernelError::from)?)
}

/// The resource envelope of the map-reduce kernels: one column, at least
/// three SPM lines (one block of each operand plus scratch) and the four
/// SRF entries above.  The real footprint scales with the input length, so
/// [`map_reduce`] re-validates it per invocation before any staging.
fn map_reduce_resources() -> Resources {
    Resources {
        columns: 1,
        spm_lines: 3,
        srf_slots: 8,
    }
}

/// Runs the map-reduce program over `a` and `b`, one 128-word block at a
/// time, returning the per-block partial sums.  The program for `op` is
/// loaded at most once per session and relaunched warm.
fn map_reduce(ctx: &mut LaunchCtx<'_>, op: RcOpcode, a: &[i32], b: &[i32]) -> Result<Vec<i64>> {
    if a.len() != b.len() {
        return Err(RuntimeError::invalid_input(format!(
            "operand lengths differ: {} vs {}",
            a.len(),
            b.len()
        )));
    }
    if a.is_empty() {
        return Err(RuntimeError::invalid_input("operands must be non-empty"));
    }
    let a = pad_to_lines(a);
    let b = pad_to_lines(b);
    let lines = a.len() / LINE;
    // The staging footprint scales with the input (both operands plus one
    // scratch line); check it against the geometry *before* any DMA so an
    // oversized input fails cleanly instead of mid-stage.
    let lines_needed = 2 * lines + 1;
    let spm_lines = ctx.geometry().spm_lines();
    if lines_needed > spm_lines {
        return Err(RuntimeError::invalid_input(format!(
            "map-reduce over {} words needs {lines_needed} SPM lines, array has {spm_lines}",
            a.len()
        )));
    }
    ctx.dma_in(&a, 0)?;
    ctx.dma_in(&b, lines * LINE)?;
    let key = map_reduce_key(op);
    let mut partials = Vec::with_capacity(lines);
    for blk in 0..lines {
        ctx.write_param(0, SRF_A, blk as i32)?;
        ctx.write_param(0, SRF_B, (lines + blk) as i32)?;
        ctx.write_param(0, SRF_OUT, (2 * lines) as i32)?;
        ctx.launch_aux(&key, || map_reduce_program(op))?;
        partials.push(ctx.read_param(0, SRF_RESULT)? as i64);
    }
    Ok(partials)
}

fn saturate(v: i64) -> i32 {
    v.clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

/// Per-band spectral energies of a spectrum held as separate `re`/`im`
/// arrays (`Q15.16` or `q15` — the scale only affects the units of the
/// result), computed as `Σ mul_fxp(re,re) + mul_fxp(im,im)` over
/// equal-width bands.
///
/// # Example
///
/// ```
/// use vwr2a_kernels::features::BandEnergies;
/// use vwr2a_kernels::Spectrum;
/// use vwr2a_runtime::Session;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Energy only in the first half of the bins.
/// let spectrum = Spectrum::new(
///     (0..256).map(|i| if i < 128 { 1 << 16 } else { 0 }).collect(),
///     vec![0i32; 256],
/// );
/// let kernel = BandEnergies::new(2)?;
/// let (bands, _report) = Session::new().run(&kernel, &spectrum)?;
/// assert!(bands[0] > 0 && bands[1] == 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BandEnergies {
    bands: usize,
}

impl BandEnergies {
    /// Creates the kernel for `bands` equal-width bands.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidParameter`] for zero bands.
    pub fn new(bands: usize) -> crate::Result<Self> {
        if bands == 0 {
            return Err(KernelError::InvalidParameter {
                what: "band count must be non-zero".into(),
            });
        }
        Ok(Self { bands })
    }

    /// The configured number of bands.
    pub fn bands(&self) -> usize {
        self.bands
    }
}

impl Kernel for BandEnergies {
    type Input = Spectrum;
    type Output = Vec<i32>;

    fn name(&self) -> &str {
        "band-energies"
    }

    fn cache_key(&self) -> String {
        map_reduce_key(RcOpcode::MulFxp)
    }

    fn resources(&self) -> Resources {
        map_reduce_resources()
    }

    fn program(&self, _geometry: &Geometry) -> Result<KernelProgram> {
        map_reduce_program(RcOpcode::MulFxp)
    }

    fn execute(&self, ctx: &mut LaunchCtx<'_>, input: &Spectrum) -> Result<Vec<i32>> {
        if input.re.len() != input.im.len() {
            return Err(RuntimeError::invalid_input(format!(
                "spectrum re/im lengths differ: {} vs {}",
                input.re.len(),
                input.im.len()
            )));
        }
        let re_sq = map_reduce(ctx, RcOpcode::MulFxp, &input.re, &input.re)?;
        let im_sq = map_reduce(ctx, RcOpcode::MulFxp, &input.im, &input.im)?;
        // Combine per-line partial energies into bands on the host (a
        // handful of scalar additions, part of the high-level control the
        // CPU keeps).
        let lines = re_sq.len();
        let per_band = lines.div_ceil(self.bands);
        let mut out = vec![0i64; self.bands];
        for (line, (r, i)) in re_sq.iter().zip(im_sq.iter()).enumerate() {
            out[(line / per_band).min(self.bands - 1)] += r + i;
        }
        Ok(out.into_iter().map(saturate).collect())
    }
}

/// The Σx and Σx² pair produced by [`SumAndSquares`], both saturated to
/// `i32` — the inputs to the mean and RMS time features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SumStats {
    /// Σx.
    pub sum: i32,
    /// Σx².
    pub sum_of_squares: i32,
}

/// Σx and Σx² of an integer array in one kernel invocation.
#[derive(Debug, Clone, Default)]
pub struct SumAndSquares;

impl SumAndSquares {
    /// Creates the kernel.
    pub fn new() -> Self {
        Self
    }
}

impl Kernel for SumAndSquares {
    type Input = [i32];
    type Output = SumStats;

    fn name(&self) -> &str {
        "sum-and-squares"
    }

    fn cache_key(&self) -> String {
        map_reduce_key(RcOpcode::Add)
    }

    fn resources(&self) -> Resources {
        map_reduce_resources()
    }

    fn program(&self, _geometry: &Geometry) -> Result<KernelProgram> {
        map_reduce_program(RcOpcode::Add)
    }

    fn execute(&self, ctx: &mut LaunchCtx<'_>, input: &[i32]) -> Result<SumStats> {
        let zeros = vec![0i32; input.len()];
        let sums = map_reduce(ctx, RcOpcode::Add, input, &zeros)?;
        let squares = map_reduce(ctx, RcOpcode::Mul, input, input)?;
        Ok(SumStats {
            sum: saturate(sums.iter().sum()),
            sum_of_squares: saturate(squares.iter().sum()),
        })
    }
}

/// Dot product `Σ aᵢ·wᵢ` against a fixed weight vector (standard 32-bit
/// multiply) — the linear-SVM decision kernel.  The weights are staged per
/// invocation; the program is weight-independent, so every [`DotProduct`]
/// (and the Σx² pass of [`SumAndSquares`]) shares one resident program.
#[derive(Debug, Clone)]
pub struct DotProduct {
    weights: Vec<i32>,
}

impl DotProduct {
    /// Creates the kernel for the given weight vector.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidParameter`] for an empty weight vector.
    pub fn new(weights: Vec<i32>) -> crate::Result<Self> {
        if weights.is_empty() {
            return Err(KernelError::InvalidParameter {
                what: "weight vector must be non-empty".into(),
            });
        }
        Ok(Self { weights })
    }

    /// The weight vector.
    pub fn weights(&self) -> &[i32] {
        &self.weights
    }
}

impl Kernel for DotProduct {
    type Input = [i32];
    type Output = i32;

    fn name(&self) -> &str {
        "dot-product"
    }

    fn cache_key(&self) -> String {
        map_reduce_key(RcOpcode::Mul)
    }

    fn resources(&self) -> Resources {
        map_reduce_resources()
    }

    fn program(&self, _geometry: &Geometry) -> Result<KernelProgram> {
        map_reduce_program(RcOpcode::Mul)
    }

    fn execute(&self, ctx: &mut LaunchCtx<'_>, input: &[i32]) -> Result<i32> {
        if input.len() != self.weights.len() {
            return Err(RuntimeError::invalid_input(format!(
                "feature vector has {} entries, weights {}",
                input.len(),
                self.weights.len()
            )));
        }
        let partials = map_reduce(ctx, RcOpcode::Mul, input, &self.weights)?;
        Ok(saturate(partials.iter().sum()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vwr2a_runtime::Session;

    #[test]
    fn sum_and_squares_match_host_arithmetic() {
        let data: Vec<i32> = (0..300).map(|i| (i % 50) - 25).collect();
        let mut session = Session::new();
        let (stats, report) = session.run(&SumAndSquares::new(), &data).unwrap();
        let sum: i64 = data.iter().map(|&v| v as i64).sum();
        let sumsq: i64 = data.iter().map(|&v| (v as i64) * (v as i64)).sum();
        assert_eq!(stats.sum as i64, sum);
        assert_eq!(stats.sum_of_squares as i64, sumsq);
        assert!(report.cycles > 0);
    }

    #[test]
    fn dot_product_matches_host_arithmetic() {
        let a: Vec<i32> = (0..200).map(|i| i - 100).collect();
        let b: Vec<i32> = (0..200).map(|i| 3 * i % 17 - 8).collect();
        let kernel = DotProduct::new(b.clone()).unwrap();
        let mut session = Session::new();
        let (dot, _) = session.run(&kernel, &a).unwrap();
        let expected: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
        assert_eq!(dot as i64, expected);
    }

    #[test]
    fn band_energies_split_the_spectrum() {
        // Energy only in the first quarter of the bins.
        let n = 256;
        let spectrum = Spectrum::new(
            (0..n).map(|i| if i < 64 { 1 << 16 } else { 0 }).collect(),
            vec![0i32; n],
        );
        let kernel = BandEnergies::new(2).unwrap();
        let mut session = Session::new();
        let (bands, _) = session.run(&kernel, &spectrum).unwrap();
        assert_eq!(bands.len(), 2);
        assert!(bands[0] > 0);
        assert_eq!(bands[1], 0);
        assert_eq!(kernel.bands(), 2);
    }

    #[test]
    fn one_resident_program_per_operation() {
        // 256 q15 values -> 2 lines per operand -> 2 blocks per pass, all
        // through one resident program per ALU op.
        let data: Vec<i32> = (0..256).map(|i| (i % 40) - 20).collect();
        let mut session = Session::new();
        let (_, first) = session.run(&SumAndSquares::new(), &data).unwrap();
        // Two ops (Add, Mul), each loaded once then warm across blocks.
        assert_eq!(first.cold_launches, 2);
        assert!(first.warm_launches >= 2);

        // The dot product reuses the already-resident Mul program.
        let weights = vec![1i32; 256];
        let (_, second) = session
            .run(&DotProduct::new(weights).unwrap(), &data)
            .unwrap();
        assert_eq!(second.cold_launches, 0);
        assert!(second.warm_launches >= 1);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut session = Session::new();
        let dot = DotProduct::new(vec![1, 2]).unwrap();
        assert!(session.run(&dot, &[1i32][..]).is_err());
        assert!(DotProduct::new(vec![]).is_err());
        assert!(BandEnergies::new(0).is_err());
        assert_eq!(dot.weights(), &[1, 2]);
        let empty = Spectrum::default();
        let bands = BandEnergies::new(2).unwrap();
        assert!(session.run(&bands, &empty).is_err());
        // Public fields allow bypassing Spectrum::new's length assert; the
        // kernel must still reject the mismatch instead of truncating.
        let lopsided = Spectrum {
            re: vec![1; 256],
            im: vec![1; 128],
        };
        assert!(session.run(&bands, &lopsided).is_err());
    }

    #[test]
    fn oversized_inputs_fail_before_staging_on_small_geometries() {
        use vwr2a_core::geometry::Geometry;
        use vwr2a_core::Vwr2a;

        // Four SPM lines: registration passes (the declared one-block
        // minimum fits), but a two-block input needs five lines and must be
        // rejected per-invocation, before any DMA happens.
        let mut geometry = Geometry::paper();
        geometry.spm_bytes = 4 * 512;
        let accel = Vwr2a::with_geometry(geometry).unwrap();
        let mut session = vwr2a_runtime::Session::with_accelerator(accel);
        let data = vec![1i32; 256];
        let err = session.run(&SumAndSquares::new(), &data).unwrap_err();
        assert!(
            matches!(err, RuntimeError::InvalidInput { .. }),
            "expected a clean input rejection, got {err:?}"
        );
        assert_eq!(
            session.accelerator().counters().dma_words,
            0,
            "nothing may be staged before the footprint check"
        );
    }
}
