//! VWR2A mappings of the data-parallel feature-extraction pieces.
//!
//! MBioTracker's feature-extraction step reduces the filtered signal and its
//! spectrum to a small feature vector (Sec. 4.4.2).  The reductions map onto
//! the array as element-wise passes followed by the cross-RC reduction of
//! [`crate::ops::emit_reduce_sum_pass`]:
//!
//! * [`band_energies`] — per-band spectral energy `Σ (re² + im²)` used for
//!   the frequency features,
//! * [`sum_and_sum_of_squares`] — the Σx and Σx² reductions behind the mean
//!   and RMS time features,
//! * [`dot_product`] — the linear-SVM decision value.

use crate::error::{KernelError, Result};
use crate::ops::{emit_ew_pass, emit_reduce_sum_pass, LineRef};
use crate::{subtract_counters, KernelRun};
use vwr2a_core::builder::ColumnProgramBuilder;
use vwr2a_core::isa::RcOpcode;
use vwr2a_core::program::KernelProgram;
use vwr2a_core::Vwr2a;

/// Words per SPM line.
const LINE: usize = 128;

fn pad_to_lines(data: &[i32]) -> Vec<i32> {
    let mut v = data.to_vec();
    let rem = v.len() % LINE;
    if rem != 0 {
        v.resize(v.len() + (LINE - rem), 0);
    }
    v
}

/// Runs a "map one line with `op` against a second line, then reduce to a
/// scalar" program over `a` and `b`, returning the per-line partial sums.
fn map_reduce(
    accel: &mut Vwr2a,
    op: RcOpcode,
    a: &[i32],
    b: &[i32],
    cycles: &mut u64,
) -> Result<Vec<i64>> {
    if a.len() != b.len() {
        return Err(KernelError::InvalidParameter {
            what: format!("operand lengths differ: {} vs {}", a.len(), b.len()),
        });
    }
    if a.is_empty() {
        return Err(KernelError::InvalidParameter {
            what: "operands must be non-empty".into(),
        });
    }
    let a = pad_to_lines(a);
    let b = pad_to_lines(b);
    let lines = a.len() / LINE;
    *cycles += accel.dma_to_spm(&a, 0)?;
    *cycles += accel.dma_to_spm(&b, lines * LINE)?;
    let mut partials = Vec::with_capacity(lines);
    for blk in 0..lines {
        let mut bld = ColumnProgramBuilder::new(4);
        emit_ew_pass(
            &mut bld,
            op,
            LineRef::Imm(blk as u16),
            LineRef::Imm((lines + blk) as u16),
            LineRef::Imm((2 * lines) as u16),
        );
        emit_reduce_sum_pass(&mut bld, LineRef::Imm((2 * lines) as u16), 7, None);
        bld.push_exit();
        let program = KernelProgram::new("map-reduce", vec![bld.build()?])?;
        let stats = accel.run_program(&program)?;
        *cycles += stats.cycles;
        partials.push(accel.read_srf(0, 7)? as i64);
    }
    Ok(partials)
}

/// Per-band spectral energies of an interleaved-free spectrum (separate
/// `re` / `im` arrays, `Q15.16` or `q15` — the scale only affects the units
/// of the result).
///
/// Returns one energy per band, computed as `Σ mul_fxp(re,re) +
/// mul_fxp(im,im)` over equal-width bands.
///
/// # Errors
///
/// Returns [`KernelError::InvalidParameter`] for empty inputs, mismatched
/// lengths or zero bands.
pub fn band_energies(
    accel: &mut Vwr2a,
    re: &[i32],
    im: &[i32],
    bands: usize,
) -> Result<KernelRun> {
    if bands == 0 {
        return Err(KernelError::InvalidParameter {
            what: "band count must be non-zero".into(),
        });
    }
    let before = accel.counters();
    let mut cycles = 0;
    let re_sq = map_reduce(accel, RcOpcode::MulFxp, re, re, &mut cycles)?;
    let im_sq = map_reduce(accel, RcOpcode::MulFxp, im, im, &mut cycles)?;
    // Combine per-line partial energies into bands on the host (a handful of
    // scalar additions, part of the high-level control the CPU keeps).
    let lines = re_sq.len();
    let per_band = lines.div_ceil(bands);
    let mut out = vec![0i64; bands];
    for (line, (r, i)) in re_sq.iter().zip(im_sq.iter()).enumerate() {
        out[(line / per_band).min(bands - 1)] += r + i;
    }
    let after = accel.counters();
    Ok(KernelRun {
        output: out.iter().map(|&v| v.clamp(i32::MIN as i64, i32::MAX as i64) as i32).collect(),
        cycles,
        counters: subtract_counters(after, before),
    })
}

/// Σx and Σx² of an integer array (the inputs to the mean and RMS time
/// features).  The output vector is `[sum, sum_of_squares]`, both saturated
/// to `i32`.
///
/// # Errors
///
/// Returns [`KernelError::InvalidParameter`] for an empty input.
pub fn sum_and_sum_of_squares(accel: &mut Vwr2a, data: &[i32]) -> Result<KernelRun> {
    let before = accel.counters();
    let mut cycles = 0;
    let zeros = vec![0i32; data.len()];
    let sums = map_reduce(accel, RcOpcode::Add, data, &zeros, &mut cycles)?;
    let squares = map_reduce(accel, RcOpcode::Mul, data, data, &mut cycles)?;
    let after = accel.counters();
    let total: i64 = sums.iter().sum();
    let total_sq: i64 = squares.iter().sum();
    Ok(KernelRun {
        output: vec![
            total.clamp(i32::MIN as i64, i32::MAX as i64) as i32,
            total_sq.clamp(i32::MIN as i64, i32::MAX as i64) as i32,
        ],
        cycles,
        counters: subtract_counters(after, before),
    })
}

/// Dot product `Σ aᵢ·bᵢ` (standard 32-bit multiply), the linear-SVM decision
/// kernel.  The output vector is `[dot]`.
///
/// # Errors
///
/// Returns [`KernelError::InvalidParameter`] for empty or mismatched inputs.
pub fn dot_product(accel: &mut Vwr2a, a: &[i32], b: &[i32]) -> Result<KernelRun> {
    let before = accel.counters();
    let mut cycles = 0;
    let partials = map_reduce(accel, RcOpcode::Mul, a, b, &mut cycles)?;
    let after = accel.counters();
    let total: i64 = partials.iter().sum();
    Ok(KernelRun {
        output: vec![total.clamp(i32::MIN as i64, i32::MAX as i64) as i32],
        cycles,
        counters: subtract_counters(after, before),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_squares_match_host_arithmetic() {
        let data: Vec<i32> = (0..300).map(|i| (i % 50) - 25).collect();
        let mut accel = Vwr2a::new();
        let run = sum_and_sum_of_squares(&mut accel, &data).unwrap();
        let sum: i64 = data.iter().map(|&v| v as i64).sum();
        let sumsq: i64 = data.iter().map(|&v| (v as i64) * (v as i64)).sum();
        assert_eq!(run.output[0] as i64, sum);
        assert_eq!(run.output[1] as i64, sumsq);
        assert!(run.cycles > 0);
    }

    #[test]
    fn dot_product_matches_host_arithmetic() {
        let a: Vec<i32> = (0..200).map(|i| i - 100).collect();
        let b: Vec<i32> = (0..200).map(|i| 3 * i % 17 - 8).collect();
        let mut accel = Vwr2a::new();
        let run = dot_product(&mut accel, &a, &b).unwrap();
        let expected: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
        assert_eq!(run.output[0] as i64, expected);
    }

    #[test]
    fn band_energies_split_the_spectrum() {
        // Energy only in the first quarter of the bins.
        let n = 256;
        let re: Vec<i32> = (0..n).map(|i| if i < 64 { 1 << 16 } else { 0 }).collect();
        let im = vec![0i32; n];
        let mut accel = Vwr2a::new();
        let run = band_energies(&mut accel, &re, &im, 2).unwrap();
        assert_eq!(run.output.len(), 2);
        assert!(run.output[0] > 0);
        assert_eq!(run.output[1], 0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut accel = Vwr2a::new();
        assert!(dot_product(&mut accel, &[1, 2], &[1]).is_err());
        assert!(dot_product(&mut accel, &[], &[]).is_err());
        assert!(band_energies(&mut accel, &[1], &[1], 0).is_err());
    }
}
