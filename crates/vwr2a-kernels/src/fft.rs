//! VWR2A mapping of the radix-2 FFT (complex and real-valued).
//!
//! The mapping follows Sec. 3.4 of the paper.  The complex transform uses
//! the **constant-geometry** (Pease) formulation of the radix-2 DIF FFT: at
//! every stage, butterfly `i` combines elements `i` and `i + N/2`, producing
//! a sum and a twiddled difference that are written to positions `2i` and
//! `2i + 1` of the next stage's array — exactly the "words interleaving"
//! operation of the shuffle unit.  All stages therefore run the *same*
//! column program; only the SRF-held SPM line pointers change between
//! launches, so within a [`vwr2a_runtime::Session`] every launch after the
//! session's first is warm — across stages, blocks *and* repeated
//! transforms.  The kernel output appears in bit-reversed order and is
//! reordered during the DMA read-back.
//!
//! Data layout: separate real and imaginary arrays of `Q15.16` words,
//! double-buffered in the SPM (ping/pong), with six scratch lines per
//! column and a per-stage twiddle region that the host DMAs in before each
//! stage (the 32 KiB SPM cannot hold the data, the ping-pong buffer and all
//! stage tables at once; EXPERIMENTS.md discusses the cycle cost of this
//! choice).
//!
//! The real-valued transform ([`RealFftKernel`]) packs even samples into
//! the real array and odd samples into the imaginary array, runs the
//! `N/2`-point complex flow, and finishes with an element-wise
//! recombination (split) whose two pass programs are cached session-wide
//! like any other kernel program.

use crate::error::{KernelError, Result};
use crate::ops::{
    emit_butterfly_pass, emit_ew_pass, emit_ew_pass_reuse_a, emit_interleave_pass, LineRef,
};
use crate::Spectrum;
use vwr2a_core::builder::ColumnProgramBuilder;
use vwr2a_core::geometry::Geometry;
use vwr2a_core::isa::RcOpcode;
use vwr2a_core::program::{ColumnProgram, KernelProgram};
use vwr2a_dsp::complex::Complex;
use vwr2a_dsp::fft::bit_reverse;
use vwr2a_dsp::fixed::{from_q16, mul_fxp, to_q16};
use vwr2a_fftaccel::{FftAccelStats, FftAccelerator};
use vwr2a_runtime::{FftShape, Kernel, LaunchCtx, Offload, Resources};

/// Words per SPM line / VWR.
const LINE: usize = 128;

/// Per-stage twiddle factors of the constant-geometry radix-2 DIF FFT in
/// `Q15.16`: butterfly `i` of stage `s` uses `W_N^{(i >> s) << s}`.
pub fn stage_twiddles_q16(n: usize, stage: u32) -> (Vec<i32>, Vec<i32>) {
    let mut re = Vec::with_capacity(n / 2);
    let mut im = Vec::with_capacity(n / 2);
    for i in 0..n / 2 {
        let k = (i >> stage) << stage;
        let theta = -std::f64::consts::TAU * k as f64 / n as f64;
        re.push(to_q16(theta.cos()));
        im.push(to_q16(theta.sin()));
    }
    (re, im)
}

/// Host-side mirror of the kernel's arithmetic: the constant-geometry FFT on
/// `Q15.16` words with the exact operation ordering of the column program.
///
/// Returns the spectrum in **natural** bin order.  Used to validate the
/// simulated kernel bit-exactly and as the reference in the property tests.
pub fn constant_geometry_reference(re: &[i32], im: &[i32]) -> (Vec<i32>, Vec<i32>) {
    let n = re.len();
    assert!(
        n.is_power_of_two() && n >= 2,
        "length must be a power of two"
    );
    assert_eq!(re.len(), im.len());
    let mut xr = re.to_vec();
    let mut xi = im.to_vec();
    let stages = n.trailing_zeros();
    for s in 0..stages {
        let (twr, twi) = stage_twiddles_q16(n, s);
        let mut yr = vec![0i32; n];
        let mut yi = vec![0i32; n];
        for i in 0..n / 2 {
            let (ar, ai) = (xr[i], xi[i]);
            let (br, bi) = (xr[i + n / 2], xi[i + n / 2]);
            let sum_r = ar.wrapping_add(br);
            let sum_i = ai.wrapping_add(bi);
            let diff_r = ar.wrapping_sub(br);
            let diff_i = ai.wrapping_sub(bi);
            let t1_r = mul_fxp(diff_r, twr[i]).wrapping_sub(mul_fxp(diff_i, twi[i]));
            let t1_i = mul_fxp(diff_r, twi[i]).wrapping_add(mul_fxp(diff_i, twr[i]));
            yr[2 * i] = sum_r;
            yi[2 * i] = sum_i;
            yr[2 * i + 1] = t1_r;
            yi[2 * i + 1] = t1_i;
        }
        xr = yr;
        xi = yi;
    }
    // The constant-geometry flow leaves the spectrum in bit-reversed order.
    let bits = stages;
    let mut out_r = vec![0i32; n];
    let mut out_i = vec![0i32; n];
    for (m, (&r, &i)) in xr.iter().zip(xi.iter()).enumerate() {
        let k = bit_reverse(m, bits);
        out_r[k] = r;
        out_i[k] = i;
    }
    (out_r, out_i)
}

/// SPM line layout of the complex FFT kernel.
#[derive(Debug, Clone, Copy)]
struct Layout {
    lh: usize,
    ping_re: usize,
    ping_im: usize,
    pong_re: usize,
    pong_im: usize,
    scratch: [usize; 2],
    tw_re: usize,
    tw_im: usize,
}

impl Layout {
    fn lines_needed(n: usize) -> usize {
        let l = n / LINE;
        let lh = (n / 2) / LINE;
        4 * l + 12 + 2 * lh
    }

    fn new(n: usize, spm_lines: usize) -> Result<Self> {
        let l = n / LINE;
        let lh = (n / 2) / LINE;
        let layout = Self {
            lh,
            ping_re: 0,
            ping_im: l,
            pong_re: 2 * l,
            pong_im: 3 * l,
            scratch: [4 * l, 4 * l + 6],
            tw_re: 4 * l + 12,
            tw_im: 4 * l + 12 + lh,
        };
        if layout.tw_im + lh > spm_lines {
            return Err(KernelError::UnsupportedSize {
                what: format!(
                    "a {n}-point complex FFT needs {} SPM lines, only {spm_lines} available \
                     (the paper's 32 KiB SPM); use the real-valued flow or stream the data",
                    layout.tw_im + lh
                ),
            });
        }
        Ok(layout)
    }
}

fn validate_complex_size(n: usize) -> Result<()> {
    if !n.is_power_of_two() || !(256..=1024).contains(&n) {
        return Err(KernelError::UnsupportedSize {
            what: format!("complex FFT size must be a power of two in 256..=1024, got {n}"),
        });
    }
    Ok(())
}

fn stage_column_program(scratch_base: usize) -> Result<ColumnProgram> {
    let sb = scratch_base as u16;
    let sum_re = LineRef::Imm(sb);
    let sum_im = LineRef::Imm(sb + 1);
    let ta = LineRef::Imm(sb + 2);
    let tb = LineRef::Imm(sb + 3);
    let tc = LineRef::Imm(sb + 4);
    let td = LineRef::Imm(sb + 5);
    let mut b = ColumnProgramBuilder::new(4);
    // Real butterfly: sum -> scratch, diff stays in VWR A.
    emit_butterfly_pass(&mut b, LineRef::Srf(0), LineRef::Srf(1), sum_re);
    emit_ew_pass_reuse_a(&mut b, RcOpcode::MulFxp, LineRef::Srf(4), ta); // diff_re * w_re
    emit_ew_pass_reuse_a(&mut b, RcOpcode::MulFxp, LineRef::Srf(5), tb); // diff_re * w_im
                                                                         // Imaginary butterfly.
    emit_butterfly_pass(&mut b, LineRef::Srf(2), LineRef::Srf(3), sum_im);
    emit_ew_pass_reuse_a(&mut b, RcOpcode::MulFxp, LineRef::Srf(5), tc); // diff_im * w_im
    emit_ew_pass_reuse_a(&mut b, RcOpcode::MulFxp, LineRef::Srf(4), td); // diff_im * w_re
                                                                         // t1 = diff * w (complex).
    emit_ew_pass(&mut b, RcOpcode::Sub, ta, tc, ta); // t1_re
    emit_ew_pass(&mut b, RcOpcode::Add, tb, td, tb); // t1_im
                                                     // Interleave sum/t1 into the next stage's layout.
    emit_interleave_pass(&mut b, sum_re, ta, LineRef::Srf(6), None);
    emit_interleave_pass(&mut b, sum_im, tb, LineRef::Srf(7), None);
    b.push_exit();
    Ok(b.build()?)
}

fn stage_kernel(layout: &Layout, columns: usize) -> Result<KernelProgram> {
    let mut cols = Vec::with_capacity(columns);
    for c in 0..columns {
        cols.push(stage_column_program(layout.scratch[c])?);
    }
    Ok(KernelProgram::new("fft-stage", cols)?)
}

/// Builds the shared stage program for an `n`-point transform under the
/// given geometry (used by both FFT kernels' [`Kernel::program`]).
fn stage_program_for(n: usize, geometry: &Geometry) -> vwr2a_runtime::Result<KernelProgram> {
    let layout = Layout::new(n, geometry.spm_lines())?;
    let blocks = (n / 2) / LINE;
    let columns = blocks.min(geometry.columns).max(1);
    Ok(stage_kernel(&layout, columns)?)
}

fn stage_resources(n: usize) -> Resources {
    Resources {
        // The flow adapts to however many columns the geometry offers
        // (`stage_program_for`), so one column is the true minimum.
        columns: 1,
        spm_lines: Layout::lines_needed(n),
        srf_slots: 8,
    }
}

/// All per-stage twiddle tables of an `n`-point transform, precomputed once
/// per kernel instance (the tables depend only on `n`, so warm streaming
/// workloads must not pay the host trig per window).
fn all_stage_twiddles(n: usize) -> Vec<(Vec<i32>, Vec<i32>)> {
    (0..n.trailing_zeros())
        .map(|s| stage_twiddles_q16(n, s))
        .collect()
}

/// Runs the forward complex constant-geometry flow on staged `Q15.16`
/// arrays, returning the spectrum in natural bin order.  Shared by
/// [`FftKernel`] and [`RealFftKernel`]; every stage launch goes through the
/// context's primary program.
fn complex_flow(
    n: usize,
    twiddles: &[(Vec<i32>, Vec<i32>)],
    ctx: &mut LaunchCtx<'_>,
    re: &[i32],
    im: &[i32],
) -> vwr2a_runtime::Result<(Vec<i32>, Vec<i32>)> {
    let layout = Layout::new(n, ctx.geometry().spm_lines())?;
    ctx.dma_in(re, layout.ping_re * LINE)?;
    ctx.dma_in(im, layout.ping_im * LINE)?;

    let blocks = (n / 2) / LINE;
    let columns = blocks.min(ctx.geometry().columns).max(1);

    let stages = n.trailing_zeros();
    let (mut in_re, mut in_im) = (layout.ping_re, layout.ping_im);
    let (mut out_re, mut out_im) = (layout.pong_re, layout.pong_im);
    for s in 0..stages {
        let (twr, twi) = &twiddles[s as usize];
        ctx.dma_in(twr, layout.tw_re * LINE)?;
        ctx.dma_in(twi, layout.tw_im * LINE)?;
        let mut blk = 0usize;
        while blk < blocks {
            let active = columns.min(blocks - blk);
            for c in 0..active {
                let bb = blk + c;
                let params = [
                    (in_re + bb) as i32,
                    (in_re + bb + layout.lh) as i32,
                    (in_im + bb) as i32,
                    (in_im + bb + layout.lh) as i32,
                    (layout.tw_re + bb) as i32,
                    (layout.tw_im + bb) as i32,
                    (out_re + 2 * bb) as i32,
                    (out_im + 2 * bb) as i32,
                ];
                for (idx, value) in params.iter().enumerate() {
                    ctx.write_param(c, idx, *value)?;
                }
            }
            ctx.launch()?;
            blk += active;
        }
        std::mem::swap(&mut in_re, &mut out_re);
        std::mem::swap(&mut in_im, &mut out_im);
    }

    // Read back (the result now lives in the "in" buffers) and undo the
    // bit-reversed ordering during the copy out.
    let raw_re = ctx.dma_out(in_re * LINE, n)?;
    let raw_im = ctx.dma_out(in_im * LINE, n)?;
    let bits = stages;
    let mut nat_re = vec![0i32; n];
    let mut nat_im = vec![0i32; n];
    for m in 0..n {
        let k = bit_reverse(m, bits);
        nat_re[k] = raw_re[m];
        nat_im[k] = raw_im[m];
    }
    Ok((nat_re, nat_im))
}

/// The complex FFT kernel mapping.
///
/// # Example
///
/// ```
/// use vwr2a_kernels::fft::FftKernel;
/// use vwr2a_kernels::Spectrum;
/// use vwr2a_runtime::Session;
/// use vwr2a_dsp::fixed::to_q16;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let n = 256;
/// let kernel = FftKernel::new(n)?;
/// let signal = Spectrum::new(
///     (0..n).map(|i| to_q16((std::f64::consts::TAU * 8.0 * i as f64 / n as f64).cos() * 0.5)).collect(),
///     vec![0i32; n],
/// );
/// let mut session = Session::new();
/// let (spectrum, _report) = session.run(&kernel, &signal)?;
/// // Bin 8 dominates the magnitude spectrum.
/// let peak = (1..n / 2).max_by_key(|&k| {
///     (spectrum.re[k] as i64).pow(2) + (spectrum.im[k] as i64).pow(2)
/// }).unwrap();
/// assert_eq!(peak, 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FftKernel {
    n: usize,
    twiddles: Vec<(Vec<i32>, Vec<i32>)>,
}

impl FftKernel {
    /// Creates a complex FFT kernel for `n` points, precomputing its
    /// per-stage twiddle tables.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnsupportedSize`] if `n` is not a power of two
    /// in `256..=1024` (the sizes whose working set fits the 32 KiB SPM with
    /// this mapping).
    pub fn new(n: usize) -> Result<Self> {
        validate_complex_size(n)?;
        Ok(Self {
            n,
            twiddles: all_stage_twiddles(n),
        })
    }

    /// The transform length in complex points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the transform length is zero (never the case).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

impl Kernel for FftKernel {
    type Input = Spectrum;
    type Output = Spectrum;

    fn name(&self) -> &str {
        "fft-complex"
    }

    fn cache_key(&self) -> String {
        // The stage program depends only on the transform length (via the
        // SPM layout), so complex and real kernels of matching length share
        // one resident program.
        format!("fft-stage:{}", self.n)
    }

    fn resources(&self) -> Resources {
        stage_resources(self.n)
    }

    fn program(&self, geometry: &Geometry) -> vwr2a_runtime::Result<KernelProgram> {
        stage_program_for(self.n, geometry)
    }

    fn execute(
        &self,
        ctx: &mut LaunchCtx<'_>,
        input: &Spectrum,
    ) -> vwr2a_runtime::Result<Spectrum> {
        let n = self.n;
        if input.re.len() != n || input.im.len() != n {
            return Err(KernelError::InvalidParameter {
                what: format!(
                    "expected {n} samples, got {}/{}",
                    input.re.len(),
                    input.im.len()
                ),
            }
            .into());
        }
        let (re, im) = complex_flow(n, &self.twiddles, ctx, &input.re, &input.im)?;
        Ok(Spectrum::new(re, im))
    }

    fn offload(&self) -> Offload {
        Offload {
            fft: Some(FftShape {
                points: self.n,
                real: false,
            }),
            cpu_cycles: None,
        }
    }

    fn execute_fft(
        &self,
        accel: &FftAccelerator,
        input: &Spectrum,
    ) -> vwr2a_runtime::Result<(Spectrum, FftAccelStats)> {
        let n = self.n;
        if input.re.len() != n || input.im.len() != n {
            return Err(KernelError::InvalidParameter {
                what: format!(
                    "expected {n} samples, got {}/{}",
                    input.re.len(),
                    input.im.len()
                ),
            }
            .into());
        }
        let packed: Vec<Complex> = input
            .re
            .iter()
            .zip(&input.im)
            .map(|(&re, &im)| Complex::new(from_q16(re), from_q16(im)))
            .collect();
        let (bins, stats) = accel
            .run_complex(&packed)
            .map_err(|e| vwr2a_runtime::RuntimeError::invalid_input(e.to_string()))?;
        // The engine renormalises to `X[k]/N`; undo that so magnitudes sit
        // on the same unnormalised-DFT scale as the array's stage flow.
        let scale = n as f64;
        let re = bins.iter().map(|c| to_q16(c.re * scale)).collect();
        let im = bins.iter().map(|c| to_q16(c.im * scale)).collect();
        Ok((Spectrum::new(re, im), stats))
    }
}

/// The real-valued FFT kernel of Sec. 3.4: even/odd packing, an `n/2`-point
/// complex transform and an element-wise recombination executed with the
/// same pass machinery.
///
/// The output has `n/2 + 1` spectrum bins (DC through Nyquist) in natural
/// order.
#[derive(Debug, Clone)]
pub struct RealFftKernel {
    /// Complex length of the packed transform (`n_real / 2`).
    half: usize,
    twiddles: Vec<(Vec<i32>, Vec<i32>)>,
    split_cos: Vec<i32>,
    split_sin: Vec<i32>,
}

impl RealFftKernel {
    /// Creates a real-valued FFT kernel for `n_real` samples, precomputing
    /// its stage and recombination twiddle tables.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnsupportedSize`] if `n_real / 2` is not a
    /// power of two in `256..=1024` (i.e. `n_real` outside `512..=2048`).
    pub fn new(n_real: usize) -> Result<Self> {
        if !n_real.is_multiple_of(2) {
            return Err(KernelError::UnsupportedSize {
                what: format!("real FFT length must be even, got {n_real}"),
            });
        }
        validate_complex_size(n_real / 2)?;
        let half = n_real / 2;
        let mut split_cos = Vec::with_capacity(half);
        let mut split_sin = Vec::with_capacity(half);
        for k in 0..half {
            let theta = -std::f64::consts::TAU * k as f64 / n_real as f64;
            split_cos.push(to_q16(theta.cos()));
            split_sin.push(to_q16(theta.sin()));
        }
        Ok(Self {
            half,
            twiddles: all_stage_twiddles(half),
            split_cos,
            split_sin,
        })
    }

    /// The transform length in real samples.
    pub fn len(&self) -> usize {
        2 * self.half
    }

    /// `true` if the transform length is zero (never the case).
    pub fn is_empty(&self) -> bool {
        self.half == 0
    }

    /// Number of output bins (DC through Nyquist).
    pub fn output_bins(&self) -> usize {
        self.half + 1
    }
}

/// SPM layout of the recombination (split) step: it works one 128-bin block
/// at a time through a fixed 14-line window (six staged operand lines, two
/// output lines and six scratch lines), so any size that survived the
/// complex flow also fits here.
mod split_layout {
    pub const ZF_RE: usize = 0;
    pub const ZF_IM: usize = 1;
    pub const ZR_RE: usize = 2;
    pub const ZR_IM: usize = 3;
    pub const COS: usize = 4;
    pub const SIN: usize = 5;
    pub const OUT_RE: usize = 6;
    pub const OUT_IM: usize = 7;
    pub const SCRATCH: usize = 8;
}

fn split_re_program() -> vwr2a_runtime::Result<KernelProgram> {
    use split_layout::*;
    let li = |base: usize| LineRef::Imm(base as u16);
    let s0 = li(SCRATCH);
    let s1 = li(SCRATCH + 1);
    let s2 = li(SCRATCH + 2);
    let s3 = li(SCRATCH + 3);
    let t0 = li(SCRATCH + 4);
    let t1 = li(SCRATCH + 5);
    let mut b = ColumnProgramBuilder::new(4);
    // 2·er, 2·ei, 2·or, 2·oi
    emit_ew_pass(&mut b, RcOpcode::Add, li(ZF_RE), li(ZR_RE), s0);
    emit_ew_pass(&mut b, RcOpcode::Sub, li(ZF_IM), li(ZR_IM), s1);
    emit_ew_pass(&mut b, RcOpcode::Add, li(ZF_IM), li(ZR_IM), s2);
    emit_ew_pass(&mut b, RcOpcode::Sub, li(ZR_RE), li(ZF_RE), s3);
    // 2·(c·or − s·oi) and out_re = (2·er + that) >> 1
    emit_ew_pass(&mut b, RcOpcode::MulFxp, s2, li(COS), t0);
    emit_ew_pass(&mut b, RcOpcode::MulFxp, s3, li(SIN), t1);
    emit_ew_pass(&mut b, RcOpcode::Sub, t0, t1, t0);
    emit_ew_pass(&mut b, RcOpcode::Add, s0, t0, t0);
    b.push_exit();
    Ok(KernelProgram::new(
        "rfft-split-re",
        vec![b.build().map_err(KernelError::from)?],
    )?)
}

fn split_im_program() -> vwr2a_runtime::Result<KernelProgram> {
    use split_layout::*;
    let li = |base: usize| LineRef::Imm(base as u16);
    let s1 = li(SCRATCH + 1);
    let s2 = li(SCRATCH + 2);
    let s3 = li(SCRATCH + 3);
    let t0 = li(SCRATCH + 4);
    let t1 = li(SCRATCH + 5);
    let mut b = ColumnProgramBuilder::new(4);
    // out_im = (2·ei + 2·(c·oi + s·or)) >> 1 — first the products.
    emit_ew_pass(&mut b, RcOpcode::MulFxp, s3, li(COS), t1);
    emit_ew_pass(&mut b, RcOpcode::MulFxp, s2, li(SIN), s2);
    emit_ew_pass(&mut b, RcOpcode::Add, t1, s2, t1);
    emit_ew_pass(&mut b, RcOpcode::Add, s1, t1, t1);
    // Halve both results and store them to the output regions.
    emit_ew_imm_shift(&mut b, t0, li(OUT_RE));
    emit_ew_imm_shift(&mut b, t1, li(OUT_IM));
    b.push_exit();
    Ok(KernelProgram::new(
        "rfft-split-im",
        vec![b.build().map_err(KernelError::from)?],
    )?)
}

impl Kernel for RealFftKernel {
    type Input = [i32];
    type Output = Spectrum;

    fn name(&self) -> &str {
        "fft-real"
    }

    fn cache_key(&self) -> String {
        // Same primary program as the complex kernel of the packed length.
        format!("fft-stage:{}", self.half)
    }

    fn resources(&self) -> Resources {
        stage_resources(self.half)
    }

    fn program(&self, geometry: &Geometry) -> vwr2a_runtime::Result<KernelProgram> {
        stage_program_for(self.half, geometry)
    }

    fn execute(&self, ctx: &mut LaunchCtx<'_>, input: &[i32]) -> vwr2a_runtime::Result<Spectrum> {
        let n = self.half; // complex length of the packed transform
        let n_real = 2 * n;
        if input.len() != n_real {
            return Err(KernelError::InvalidParameter {
                what: format!("expected {n_real} real samples, got {}", input.len()),
            }
            .into());
        }
        // Pack: even samples -> real array, odd samples -> imaginary array.
        let even: Vec<i32> = input.iter().step_by(2).copied().collect();
        let odd: Vec<i32> = input.iter().skip(1).step_by(2).copied().collect();
        let (z_re, z_im) = complex_flow(n, &self.twiddles, ctx, &even, &odd)?;

        // Stage the forward and index-reversed spectra plus the
        // precomputed split twiddles, then recombine element-wise on the
        // array.
        let zr_re: Vec<i32> = (0..n).map(|k| z_re[(n - k) % n]).collect();
        let zr_im: Vec<i32> = (0..n).map(|k| z_im[(n - k) % n]).collect();
        let (cos_t, sin_t) = (&self.split_cos, &self.split_sin);
        let lh = n / LINE;
        let mut out_re: Vec<i32> = Vec::with_capacity(n + 1);
        let mut out_im: Vec<i32> = Vec::with_capacity(n + 1);

        use split_layout::{COS, OUT_IM, OUT_RE, SIN, ZF_IM, ZF_RE, ZR_IM, ZR_RE};
        for blk in 0..lh {
            let slice = blk * LINE..(blk + 1) * LINE;
            ctx.dma_in(&z_re[slice.clone()], ZF_RE * LINE)?;
            ctx.dma_in(&z_im[slice.clone()], ZF_IM * LINE)?;
            ctx.dma_in(&zr_re[slice.clone()], ZR_RE * LINE)?;
            ctx.dma_in(&zr_im[slice.clone()], ZR_IM * LINE)?;
            ctx.dma_in(&cos_t[slice.clone()], COS * LINE)?;
            ctx.dma_in(&sin_t[slice], SIN * LINE)?;
            ctx.launch_aux("rfft-split-re", split_re_program)?;
            ctx.launch_aux("rfft-split-im", split_im_program)?;
            let block_re = ctx.dma_out(OUT_RE * LINE, LINE)?;
            let block_im = ctx.dma_out(OUT_IM * LINE, LINE)?;
            out_re.extend(block_re);
            out_im.extend(block_im);
        }
        // Nyquist bin: X[n] = Re(Z[0]) − Im(Z[0]).
        out_re.push(z_re[0].wrapping_sub(z_im[0]));
        out_im.push(0);
        Ok(Spectrum::new(out_re, out_im))
    }

    fn offload(&self) -> Offload {
        Offload {
            fft: Some(FftShape {
                points: 2 * self.half,
                real: true,
            }),
            cpu_cycles: None,
        }
    }

    fn execute_fft(
        &self,
        accel: &FftAccelerator,
        input: &[i32],
    ) -> vwr2a_runtime::Result<(Spectrum, FftAccelStats)> {
        let n_real = 2 * self.half;
        if input.len() != n_real {
            return Err(KernelError::InvalidParameter {
                what: format!("expected {n_real} real samples, got {}", input.len()),
            }
            .into());
        }
        let samples: Vec<f64> = input.iter().map(|&v| from_q16(v)).collect();
        let (bins, stats) = accel
            .run_real(&samples)
            .map_err(|e| vwr2a_runtime::RuntimeError::invalid_input(e.to_string()))?;
        // The engine's split flow lands on `X[k]/N`; restore the
        // unnormalised scale the array recombination produces.
        let scale = n_real as f64;
        let re = bins.iter().map(|c| to_q16(c.re * scale)).collect();
        let im = bins.iter().map(|c| to_q16(c.im * scale)).collect();
        Ok((Spectrum::new(re, im), stats))
    }
}

/// Emits a pass that arithmetic-shifts a line right by one and stores it to
/// `out` (the final ÷2 of the real-FFT recombination).
fn emit_ew_imm_shift(b: &mut ColumnProgramBuilder, a_line: LineRef, out_line: LineRef) {
    use vwr2a_core::geometry::VwrId;
    use vwr2a_core::isa::{
        LcuCond, LcuInstr, LcuSrc, LsuAddr, LsuInstr, MxcuInstr, RcDst, RcInstr, RcSrc,
    };
    let addr = |l: LineRef| match l {
        LineRef::Imm(v) => LsuAddr::Imm(v),
        LineRef::Srf(s) => LsuAddr::Srf(s),
    };
    b.push(b.row().lsu(LsuInstr::LoadVwr {
        vwr: VwrId::A,
        line: addr(a_line),
    }));
    b.push(
        b.row()
            .mxcu(MxcuInstr::SetIdx(0))
            .lcu(LcuInstr::Li { r: 0, value: 0 }),
    );
    let top = b.new_label();
    b.bind_label(top);
    b.push(
        b.row()
            .rc_all(RcInstr::new(
                RcOpcode::Sra,
                RcDst::Vwr(VwrId::C),
                RcSrc::Vwr(VwrId::A),
                RcSrc::Imm(1),
            ))
            .mxcu(MxcuInstr::AddIdx(1))
            .lcu(LcuInstr::Add {
                r: 0,
                src: LcuSrc::Imm(1),
            }),
    );
    b.push_branch(b.row(), LcuCond::Lt, 0, LcuSrc::Imm(32), top);
    b.push(b.row().lsu(LsuInstr::StoreVwr {
        vwr: VwrId::C,
        line: addr(out_line),
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use vwr2a_dsp::complex::Complex;
    use vwr2a_dsp::fft::{fft, rfft};
    use vwr2a_dsp::fixed::from_q16;
    use vwr2a_runtime::Session;

    fn q16_signal(n: usize, freq: f64) -> (Vec<i32>, Vec<i32>, Vec<Complex>) {
        let float: Vec<Complex> = (0..n)
            .map(|i| {
                Complex::new(
                    0.45 * (std::f64::consts::TAU * freq * i as f64 / n as f64).cos(),
                    0.30 * (std::f64::consts::TAU * freq * i as f64 / n as f64).sin(),
                )
            })
            .collect();
        let re = float.iter().map(|c| to_q16(c.re)).collect();
        let im = float.iter().map(|c| to_q16(c.im)).collect();
        (re, im, float)
    }

    #[test]
    fn constant_geometry_reference_matches_float_fft() {
        let n = 256;
        let (re, im, float) = q16_signal(n, 9.0);
        let (out_re, out_im) = constant_geometry_reference(&re, &im);
        let reference = fft(&float).unwrap();
        for k in 0..n {
            let got_re = from_q16(out_re[k]);
            let got_im = from_q16(out_im[k]);
            assert!(
                (got_re - reference[k].re).abs() < 0.08 && (got_im - reference[k].im).abs() < 0.08,
                "bin {k}: ({got_re}, {got_im}) vs ({}, {})",
                reference[k].re,
                reference[k].im
            );
        }
    }

    #[test]
    fn kernel_matches_host_reference_bit_exactly() {
        let n = 256;
        let (re, im, _) = q16_signal(n, 5.0);
        let (ref_re, ref_im) = constant_geometry_reference(&re, &im);
        let kernel = FftKernel::new(n).unwrap();
        let mut session = Session::new();
        let (spectrum, report) = session.run(&kernel, &Spectrum::new(re, im)).unwrap();
        assert_eq!(spectrum.re, ref_re);
        assert_eq!(spectrum.im, ref_im);
        assert!(report.cycles > 1000);
        assert!(
            report.counters.shuffle_ops > 0,
            "the shuffle unit must be used"
        );
        // All stages share one program: exactly one cold launch.
        assert_eq!(report.cold_launches, 1);
        assert!(report.warm_launches > 0, "stage relaunches must be warm");
    }

    #[test]
    fn five_hundred_twelve_point_complex_fft_runs_and_is_correct() {
        let n = 512;
        let (re, im, float) = q16_signal(n, 20.0);
        let kernel = FftKernel::new(n).unwrap();
        let mut session = Session::new();
        let (spectrum, report) = session.run(&kernel, &Spectrum::new(re, im)).unwrap();
        let reference = fft(&float).unwrap();
        for (k, r) in reference.iter().enumerate() {
            assert!((from_q16(spectrum.re[k]) - r.re).abs() < 0.2, "bin {k}");
        }
        // Table 2 reports 7125 cycles; the mapping should be within ~2x.
        assert!(
            report.cycles > 4_000 && report.cycles < 16_000,
            "cycles {}",
            report.cycles
        );
    }

    #[test]
    fn real_fft_matches_float_reference() {
        let n_real = 512;
        let signal_f: Vec<f64> = (0..n_real)
            .map(|i| 0.4 * (std::f64::consts::TAU * 12.0 * i as f64 / n_real as f64).sin())
            .collect();
        let signal_q: Vec<i32> = signal_f.iter().map(|&v| to_q16(v)).collect();
        let kernel = RealFftKernel::new(n_real).unwrap();
        let mut session = Session::new();
        let (spectrum, _) = session.run(&kernel, &signal_q).unwrap();
        let reference = rfft(&signal_f).unwrap();
        assert_eq!(spectrum.len(), n_real / 2 + 1);
        assert_eq!(spectrum.len(), kernel.output_bins());
        for (k, r) in reference.iter().enumerate().take(n_real / 2) {
            assert!(
                (from_q16(spectrum.re[k]) - r.re).abs() < 0.3
                    && (from_q16(spectrum.im[k]) - r.im).abs() < 0.3,
                "bin {k}: ({}, {}) vs ({}, {})",
                from_q16(spectrum.re[k]),
                from_q16(spectrum.im[k]),
                r.re,
                r.im
            );
        }
    }

    #[test]
    fn real_and_complex_kernels_share_the_stage_program() {
        let real = RealFftKernel::new(512).unwrap();
        let complex = FftKernel::new(256).unwrap();
        assert_eq!(real.cache_key(), complex.cache_key());

        let mut session = Session::new();
        let signal: Vec<i32> = (0..512)
            .map(|i| to_q16(((i % 50) as f64 - 25.0) / 50.0))
            .collect();
        session.run(&real, &signal).unwrap();
        // The complex kernel now finds its stage program warm.
        assert!(session.is_warm(&complex));
        let (re, im, _) = q16_signal(256, 5.0);
        let (_, report) = session.run(&complex, &Spectrum::new(re, im)).unwrap();
        assert_eq!(report.cold_launches, 0);
    }

    #[test]
    fn unsupported_sizes_are_rejected() {
        assert!(FftKernel::new(100).is_err());
        assert!(FftKernel::new(128).is_err());
        assert!(FftKernel::new(2048).is_err());
        assert!(RealFftKernel::new(511).is_err());
        assert!(RealFftKernel::new(256).is_err());
        assert!(RealFftKernel::new(4096).is_err());
        let k = FftKernel::new(256).unwrap();
        assert_eq!(k.len(), 256);
        assert!(!k.is_empty());
        let mut session = Session::new();
        let too_short = Spectrum::new(vec![0; 16], vec![0; 16]);
        assert!(session.run(&k, &too_short).is_err());
        let r = RealFftKernel::new(512).unwrap();
        assert_eq!(r.len(), 512);
        assert!(!r.is_empty());
        assert!(session.run(&r, &[0i32; 100][..]).is_err());
    }

    #[test]
    fn accel_offload_tracks_the_golden_transform_and_is_bit_stable() {
        let n = 256;
        let (re, im, float) = q16_signal(n, 9.0);
        let kernel = FftKernel::new(n).unwrap();
        let shape = kernel.offload().fft.expect("complex FFT offloads");
        assert_eq!((shape.points, shape.real), (n, false));
        let accel = FftAccelerator::new();
        let input = Spectrum::new(re, im);
        let (spectrum, stats) = kernel.execute_fft(&accel, &input).unwrap();
        assert_eq!(spectrum.len(), n);
        assert_eq!(stats.cycles, accel.projected_cycles(n, false).unwrap());
        // The engine's 18-bit block-scaled datapath quantises, but the peak
        // bins must land where the golden model puts them.
        let reference = fft(&float).unwrap();
        for (k, golden) in reference.iter().enumerate() {
            assert!(
                (from_q16(spectrum.re[k]) - golden.re).abs() < 1.5,
                "bin {k}"
            );
        }
        // Same window on a fresh engine: bit-identical, as the scheduler's
        // replay guarantee requires.
        let (again, _) = kernel.execute_fft(&FftAccelerator::new(), &input).unwrap();
        assert_eq!(again.re, spectrum.re);
        assert_eq!(again.im, spectrum.im);
        // Length mismatches are rejected before touching the engine.
        let short = Spectrum::new(vec![0; 16], vec![0; 16]);
        assert!(kernel.execute_fft(&accel, &short).is_err());
    }

    #[test]
    fn real_accel_offload_produces_the_packed_spectrum_bins() {
        let n_real = 512;
        let (samples, _, _) = q16_signal(n_real, 20.0);
        let kernel = RealFftKernel::new(n_real).unwrap();
        let shape = kernel.offload().fft.expect("real FFT offloads");
        assert_eq!((shape.points, shape.real), (n_real, true));
        let accel = FftAccelerator::new();
        let (spectrum, stats) = kernel.execute_fft(&accel, &samples[..]).unwrap();
        assert_eq!(spectrum.len(), n_real / 2 + 1);
        assert_eq!(stats.cycles, accel.projected_cycles(n_real, true).unwrap());
        let float: Vec<f64> = samples.iter().map(|&v| from_q16(v)).collect();
        let reference = rfft(&float).unwrap();
        for (k, r) in reference.iter().enumerate() {
            assert!(
                (from_q16(spectrum.re[k]) - r.re).abs() < 2.0
                    && (from_q16(spectrum.im[k]) - r.im).abs() < 2.0,
                "bin {k}"
            );
        }
        assert!(kernel.execute_fft(&accel, &samples[..100]).is_err());
    }
}
