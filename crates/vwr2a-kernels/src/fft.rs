//! VWR2A mapping of the radix-2 FFT (complex and real-valued).
//!
//! The mapping follows Sec. 3.4 of the paper.  The complex transform uses
//! the **constant-geometry** (Pease) formulation of the radix-2 DIF FFT: at
//! every stage, butterfly `i` combines elements `i` and `i + N/2`, producing
//! a sum and a twiddled difference that are written to positions `2i` and
//! `2i + 1` of the next stage's array — exactly the "words interleaving"
//! operation of the shuffle unit.  All stages therefore run the *same*
//! column program; only the SRF-held SPM line pointers change between
//! launches, so after the first (cold) launch every stage is a warm
//! relaunch.  The kernel output appears in bit-reversed order and is
//! reordered during the DMA read-back.
//!
//! Data layout: separate real and imaginary arrays of `Q15.16` words,
//! double-buffered in the SPM (ping/pong), with six scratch lines per
//! column and a per-stage twiddle region that the host DMAs in before each
//! stage (the 32 KiB SPM cannot hold the data, the ping-pong buffer and all
//! stage tables at once; EXPERIMENTS.md discusses the cycle cost of this
//! choice).
//!
//! The real-valued transform packs even samples into the real array and odd
//! samples into the imaginary array, runs the `N/2`-point complex kernel,
//! and finishes with an element-wise recombination (split) executed with the
//! same pass machinery.

use crate::error::{KernelError, Result};
use crate::ops::{
    emit_butterfly_pass, emit_ew_pass, emit_ew_pass_reuse_a, emit_interleave_pass, LineRef,
};
use crate::subtract_counters;
use vwr2a_core::builder::ColumnProgramBuilder;
use vwr2a_core::config_mem::KernelId;
use vwr2a_core::isa::RcOpcode;
use vwr2a_core::program::{ColumnProgram, KernelProgram};
use vwr2a_core::Vwr2a;
use vwr2a_dsp::fft::bit_reverse;
use vwr2a_dsp::fixed::{mul_fxp, to_q16};

/// Words per SPM line / VWR.
const LINE: usize = 128;
/// Estimated cycles for one host SRF write over the slave port.
const SRF_WRITE_CYCLES: u64 = 2;

/// Result of an FFT kernel run: real and imaginary spectra in `Q15.16`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FftRun {
    /// Real parts of the spectrum (natural bin order).
    pub re: Vec<i32>,
    /// Imaginary parts of the spectrum (natural bin order).
    pub im: Vec<i32>,
    /// Total cycles including DMA, SRF writes, configuration and execution.
    pub cycles: u64,
    /// Array activity during the run.
    pub counters: vwr2a_core::ActivityCounters,
}

impl FftRun {
    /// Execution time in microseconds at the given clock frequency.
    pub fn time_us(&self, frequency_hz: f64) -> f64 {
        self.cycles as f64 / frequency_hz * 1e6
    }
}

/// Per-stage twiddle factors of the constant-geometry radix-2 DIF FFT in
/// `Q15.16`: butterfly `i` of stage `s` uses `W_N^{(i >> s) << s}`.
pub fn stage_twiddles_q16(n: usize, stage: u32) -> (Vec<i32>, Vec<i32>) {
    let mut re = Vec::with_capacity(n / 2);
    let mut im = Vec::with_capacity(n / 2);
    for i in 0..n / 2 {
        let k = (i >> stage) << stage;
        let theta = -std::f64::consts::TAU * k as f64 / n as f64;
        re.push(to_q16(theta.cos()));
        im.push(to_q16(theta.sin()));
    }
    (re, im)
}

/// Host-side mirror of the kernel's arithmetic: the constant-geometry FFT on
/// `Q15.16` words with the exact operation ordering of the column program.
///
/// Returns the spectrum in **natural** bin order.  Used to validate the
/// simulated kernel bit-exactly and as the reference in the property tests.
pub fn constant_geometry_reference(re: &[i32], im: &[i32]) -> (Vec<i32>, Vec<i32>) {
    let n = re.len();
    assert!(n.is_power_of_two() && n >= 2, "length must be a power of two");
    assert_eq!(re.len(), im.len());
    let mut xr = re.to_vec();
    let mut xi = im.to_vec();
    let stages = n.trailing_zeros();
    for s in 0..stages {
        let (twr, twi) = stage_twiddles_q16(n, s);
        let mut yr = vec![0i32; n];
        let mut yi = vec![0i32; n];
        for i in 0..n / 2 {
            let (ar, ai) = (xr[i], xi[i]);
            let (br, bi) = (xr[i + n / 2], xi[i + n / 2]);
            let sum_r = ar.wrapping_add(br);
            let sum_i = ai.wrapping_add(bi);
            let diff_r = ar.wrapping_sub(br);
            let diff_i = ai.wrapping_sub(bi);
            let t1_r = mul_fxp(diff_r, twr[i]).wrapping_sub(mul_fxp(diff_i, twi[i]));
            let t1_i = mul_fxp(diff_r, twi[i]).wrapping_add(mul_fxp(diff_i, twr[i]));
            yr[2 * i] = sum_r;
            yi[2 * i] = sum_i;
            yr[2 * i + 1] = t1_r;
            yi[2 * i + 1] = t1_i;
        }
        xr = yr;
        xi = yi;
    }
    // The constant-geometry flow leaves the spectrum in bit-reversed order.
    let bits = stages;
    let mut out_r = vec![0i32; n];
    let mut out_i = vec![0i32; n];
    for (m, (&r, &i)) in xr.iter().zip(xi.iter()).enumerate() {
        let k = bit_reverse(m, bits);
        out_r[k] = r;
        out_i[k] = i;
    }
    (out_r, out_i)
}

/// SPM line layout of the complex FFT kernel.
#[derive(Debug, Clone, Copy)]
struct Layout {
    lh: usize,
    ping_re: usize,
    ping_im: usize,
    pong_re: usize,
    pong_im: usize,
    scratch: [usize; 2],
    tw_re: usize,
    tw_im: usize,
}

impl Layout {
    fn new(n: usize, spm_lines: usize) -> Result<Self> {
        let l = n / LINE;
        let lh = (n / 2) / LINE;
        let layout = Self {
            lh,
            ping_re: 0,
            ping_im: l,
            pong_re: 2 * l,
            pong_im: 3 * l,
            scratch: [4 * l, 4 * l + 6],
            tw_re: 4 * l + 12,
            tw_im: 4 * l + 12 + lh,
        };
        if layout.tw_im + lh > spm_lines {
            return Err(KernelError::UnsupportedSize {
                what: format!(
                    "a {n}-point complex FFT needs {} SPM lines, only {spm_lines} available \
                     (the paper's 32 KiB SPM); use the real-valued flow or stream the data",
                    layout.tw_im + lh
                ),
            });
        }
        Ok(layout)
    }
}

/// The FFT kernel mapping.
///
/// # Example
///
/// ```
/// use vwr2a_core::Vwr2a;
/// use vwr2a_kernels::fft::FftKernel;
/// use vwr2a_dsp::fixed::to_q16;
///
/// # fn main() -> Result<(), vwr2a_kernels::KernelError> {
/// let n = 256;
/// let kernel = FftKernel::new(n)?;
/// let re: Vec<i32> = (0..n).map(|i| to_q16((std::f64::consts::TAU * 8.0 * i as f64 / n as f64).cos() * 0.5)).collect();
/// let im = vec![0i32; n];
/// let mut accel = Vwr2a::new();
/// let run = kernel.run_complex(&mut accel, &re, &im)?;
/// // Bin 8 dominates the magnitude spectrum.
/// let peak = (1..n / 2).max_by_key(|&k| {
///     (run.re[k] as i64).pow(2) + (run.im[k] as i64).pow(2)
/// }).unwrap();
/// assert_eq!(peak, 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FftKernel {
    n: usize,
}

impl FftKernel {
    /// Creates a complex FFT kernel for `n` points.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnsupportedSize`] if `n` is not a power of two
    /// in `256..=1024` (the sizes whose working set fits the 32 KiB SPM with
    /// this mapping).
    pub fn new(n: usize) -> Result<Self> {
        if !n.is_power_of_two() || n < 256 || n > 1024 {
            return Err(KernelError::UnsupportedSize {
                what: format!("complex FFT size must be a power of two in 256..=1024, got {n}"),
            });
        }
        Ok(Self { n })
    }

    /// The transform length in complex points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the transform length is zero (never the case).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn stage_column_program(scratch_base: usize) -> Result<ColumnProgram> {
        let sb = scratch_base as u16;
        let sum_re = LineRef::Imm(sb);
        let sum_im = LineRef::Imm(sb + 1);
        let ta = LineRef::Imm(sb + 2);
        let tb = LineRef::Imm(sb + 3);
        let tc = LineRef::Imm(sb + 4);
        let td = LineRef::Imm(sb + 5);
        let mut b = ColumnProgramBuilder::new(4);
        // Real butterfly: sum -> scratch, diff stays in VWR A.
        emit_butterfly_pass(&mut b, LineRef::Srf(0), LineRef::Srf(1), sum_re);
        emit_ew_pass_reuse_a(&mut b, RcOpcode::MulFxp, LineRef::Srf(4), ta); // diff_re * w_re
        emit_ew_pass_reuse_a(&mut b, RcOpcode::MulFxp, LineRef::Srf(5), tb); // diff_re * w_im
        // Imaginary butterfly.
        emit_butterfly_pass(&mut b, LineRef::Srf(2), LineRef::Srf(3), sum_im);
        emit_ew_pass_reuse_a(&mut b, RcOpcode::MulFxp, LineRef::Srf(5), tc); // diff_im * w_im
        emit_ew_pass_reuse_a(&mut b, RcOpcode::MulFxp, LineRef::Srf(4), td); // diff_im * w_re
        // t1 = diff * w (complex).
        emit_ew_pass(&mut b, RcOpcode::Sub, ta, tc, ta); // t1_re
        emit_ew_pass(&mut b, RcOpcode::Add, tb, td, tb); // t1_im
        // Interleave sum/t1 into the next stage's layout.
        emit_interleave_pass(&mut b, sum_re, ta, LineRef::Srf(6), None);
        emit_interleave_pass(&mut b, sum_im, tb, LineRef::Srf(7), None);
        b.push_exit();
        Ok(b.build()?)
    }

    fn stage_kernel(layout: &Layout, columns: usize) -> Result<KernelProgram> {
        let mut cols = Vec::with_capacity(columns);
        for c in 0..columns {
            cols.push(Self::stage_column_program(layout.scratch[c])?);
        }
        Ok(KernelProgram::new("fft-stage", cols)?)
    }

    /// Runs the forward complex FFT on `Q15.16` inputs, returning the
    /// spectrum in natural bin order (unnormalised, like the mathematical
    /// DFT).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidParameter`] if the input lengths do not
    /// match the configured size, or any simulator error.
    pub fn run_complex(&self, accel: &mut Vwr2a, re: &[i32], im: &[i32]) -> Result<FftRun> {
        let n = self.n;
        if re.len() != n || im.len() != n {
            return Err(KernelError::InvalidParameter {
                what: format!("expected {n} samples, got {}/{}", re.len(), im.len()),
            });
        }
        let layout = Layout::new(n, accel.geometry().spm_lines())?;
        let before = accel.counters();
        let mut cycles = 0u64;

        cycles += accel.dma_to_spm(re, layout.ping_re * LINE)?;
        cycles += accel.dma_to_spm(im, layout.ping_im * LINE)?;

        let blocks = (n / 2) / LINE;
        let columns = blocks.min(2);
        let kernel = Self::stage_kernel(&layout, columns)?;
        let id: KernelId = accel.load_kernel(&kernel)?;
        let mut cold = true;

        let stages = n.trailing_zeros();
        let (mut in_re, mut in_im) = (layout.ping_re, layout.ping_im);
        let (mut out_re, mut out_im) = (layout.pong_re, layout.pong_im);
        for s in 0..stages {
            let (twr, twi) = stage_twiddles_q16(n, s);
            cycles += accel.dma_to_spm(&twr, layout.tw_re * LINE)?;
            cycles += accel.dma_to_spm(&twi, layout.tw_im * LINE)?;
            let mut blk = 0usize;
            while blk < blocks {
                let active = columns.min(blocks - blk);
                for c in 0..active {
                    let bb = blk + c;
                    let params = [
                        (in_re + bb) as i32,
                        (in_re + bb + layout.lh) as i32,
                        (in_im + bb) as i32,
                        (in_im + bb + layout.lh) as i32,
                        (layout.tw_re + bb) as i32,
                        (layout.tw_im + bb) as i32,
                        (out_re + 2 * bb) as i32,
                        (out_im + 2 * bb) as i32,
                    ];
                    for (idx, value) in params.iter().enumerate() {
                        accel.write_srf(c, idx, *value)?;
                        cycles += SRF_WRITE_CYCLES;
                    }
                }
                let stats = if cold {
                    cold = false;
                    accel.run_kernel(id)?
                } else {
                    accel.run_kernel_warm(id)?
                };
                cycles += stats.cycles;
                blk += active;
            }
            std::mem::swap(&mut in_re, &mut out_re);
            std::mem::swap(&mut in_im, &mut out_im);
        }

        // Read back (the result now lives in the "in" buffers) and undo the
        // bit-reversed ordering during the copy out.
        let (raw_re, c1) = accel.dma_from_spm(in_re * LINE, n)?;
        let (raw_im, c2) = accel.dma_from_spm(in_im * LINE, n)?;
        cycles += c1 + c2;
        let bits = stages;
        let mut nat_re = vec![0i32; n];
        let mut nat_im = vec![0i32; n];
        for m in 0..n {
            let k = bit_reverse(m, bits);
            nat_re[k] = raw_re[m];
            nat_im[k] = raw_im[m];
        }
        let after = accel.counters();
        Ok(FftRun {
            re: nat_re,
            im: nat_im,
            cycles,
            counters: subtract_counters(after, before),
        })
    }

    /// Runs the optimised real-valued flow of Sec. 3.4 on `n_real = 2·n`
    /// `Q15.16` samples: even/odd packing, an `n`-point complex FFT and an
    /// element-wise recombination executed with the same pass machinery.
    ///
    /// Returns `n + 1` spectrum bins (DC through Nyquist) in natural order.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidParameter`] if `input.len() != 2 * n`,
    /// or any simulator error.
    pub fn run_real(&self, accel: &mut Vwr2a, input: &[i32]) -> Result<FftRun> {
        let n = self.n; // complex length of the packed transform
        let n_real = 2 * n;
        if input.len() != n_real {
            return Err(KernelError::InvalidParameter {
                what: format!("expected {n_real} real samples, got {}", input.len()),
            });
        }
        // Pack: even samples -> real array, odd samples -> imaginary array.
        let even: Vec<i32> = input.iter().step_by(2).copied().collect();
        let odd: Vec<i32> = input.iter().skip(1).step_by(2).copied().collect();
        let z = self.run_complex(accel, &even, &odd)?;
        let mut cycles = z.cycles;
        let before = accel.counters();

        // Stage the forward and index-reversed spectra plus the split
        // twiddles, then recombine element-wise on the array.
        let zr_re: Vec<i32> = (0..n).map(|k| z.re[(n - k) % n]).collect();
        let zr_im: Vec<i32> = (0..n).map(|k| z.im[(n - k) % n]).collect();
        let mut cos_t = Vec::with_capacity(n);
        let mut sin_t = Vec::with_capacity(n);
        for k in 0..n {
            let theta = -std::f64::consts::TAU * k as f64 / n_real as f64;
            cos_t.push(to_q16(theta.cos()));
            sin_t.push(to_q16(theta.sin()));
        }
        let lh = n / LINE;
        // The split works one 128-bin block at a time through a fixed
        // 14-line SPM window (six staged operand lines, two output lines and
        // six scratch lines), so any size that survived the complex kernel
        // also fits here.
        let zf_re_l = 0usize;
        let zf_im_l = 1usize;
        let zr_re_l = 2usize;
        let zr_im_l = 3usize;
        let cos_l = 4usize;
        let sin_l = 5usize;
        let out_re_l = 6usize;
        let out_im_l = 7usize;
        let scratch = 8usize;
        let mut out_re: Vec<i32> = Vec::with_capacity(n + 1);
        let mut out_im: Vec<i32> = Vec::with_capacity(n + 1);

        for blk in 0..lh {
            let slice = blk * LINE..(blk + 1) * LINE;
            cycles += accel.dma_to_spm(&z.re[slice.clone()], zf_re_l * LINE)?;
            cycles += accel.dma_to_spm(&z.im[slice.clone()], zf_im_l * LINE)?;
            cycles += accel.dma_to_spm(&zr_re[slice.clone()], zr_re_l * LINE)?;
            cycles += accel.dma_to_spm(&zr_im[slice.clone()], zr_im_l * LINE)?;
            cycles += accel.dma_to_spm(&cos_t[slice.clone()], cos_l * LINE)?;
            cycles += accel.dma_to_spm(&sin_t[slice], sin_l * LINE)?;
            let li = |base: usize| LineRef::Imm(base as u16);
            let s0 = LineRef::Imm(scratch as u16);
            let s1 = LineRef::Imm(scratch as u16 + 1);
            let s2 = LineRef::Imm(scratch as u16 + 2);
            let s3 = LineRef::Imm(scratch as u16 + 3);
            let t0 = LineRef::Imm(scratch as u16 + 4);
            let t1 = LineRef::Imm(scratch as u16 + 5);
            let mut b = ColumnProgramBuilder::new(4);
            // 2·er, 2·ei, 2·or, 2·oi
            emit_ew_pass(&mut b, RcOpcode::Add, li(zf_re_l), li(zr_re_l), s0);
            emit_ew_pass(&mut b, RcOpcode::Sub, li(zf_im_l), li(zr_im_l), s1);
            emit_ew_pass(&mut b, RcOpcode::Add, li(zf_im_l), li(zr_im_l), s2);
            emit_ew_pass(&mut b, RcOpcode::Sub, li(zr_re_l), li(zf_re_l), s3);
            // 2·(c·or − s·oi) and out_re = (2·er + that) >> 1
            emit_ew_pass(&mut b, RcOpcode::MulFxp, s2, li(cos_l), t0);
            emit_ew_pass(&mut b, RcOpcode::MulFxp, s3, li(sin_l), t1);
            emit_ew_pass(&mut b, RcOpcode::Sub, t0, t1, t0);
            emit_ew_pass(&mut b, RcOpcode::Add, s0, t0, t0);
            b.push_exit();
            let p1 = KernelProgram::new("rfft-split-re", vec![b.build()?])?;
            cycles += accel.run_program(&p1)?.cycles;

            let mut b = ColumnProgramBuilder::new(4);
            // out_im = (2·ei + 2·(c·oi + s·or)) >> 1 — first the products.
            emit_ew_pass(&mut b, RcOpcode::MulFxp, s3, li(cos_l), t1);
            emit_ew_pass(&mut b, RcOpcode::MulFxp, s2, li(sin_l), s2);
            emit_ew_pass(&mut b, RcOpcode::Add, t1, s2, t1);
            emit_ew_pass(&mut b, RcOpcode::Add, s1, t1, t1);
            // Halve both results and store them to the output regions.
            emit_ew_imm_shift(&mut b, t0, li(out_re_l));
            emit_ew_imm_shift(&mut b, t1, li(out_im_l));
            b.push_exit();
            let p2 = KernelProgram::new("rfft-split-im", vec![b.build()?])?;
            cycles += accel.run_program(&p2)?.cycles;

            let (block_re, c1) = accel.dma_from_spm(out_re_l * LINE, LINE)?;
            let (block_im, c2) = accel.dma_from_spm(out_im_l * LINE, LINE)?;
            cycles += c1 + c2;
            out_re.extend(block_re);
            out_im.extend(block_im);
        }
        // Nyquist bin: X[n] = Re(Z[0]) − Im(Z[0]).
        out_re.push(z.re[0].wrapping_sub(z.im[0]));
        out_im.push(0);
        let after = accel.counters();
        let mut counters = subtract_counters(after, before);
        counters += z.counters;
        Ok(FftRun {
            re: out_re,
            im: out_im,
            cycles,
            counters,
        })
    }
}

/// Emits a pass that arithmetic-shifts a line right by one and stores it to
/// `out` (the final ÷2 of the real-FFT recombination).
fn emit_ew_imm_shift(b: &mut ColumnProgramBuilder, a_line: LineRef, out_line: LineRef) {
    use vwr2a_core::geometry::VwrId;
    use vwr2a_core::isa::{LcuCond, LcuInstr, LcuSrc, LsuAddr, LsuInstr, MxcuInstr, RcDst, RcInstr, RcSrc};
    let addr = |l: LineRef| match l {
        LineRef::Imm(v) => LsuAddr::Imm(v),
        LineRef::Srf(s) => LsuAddr::Srf(s),
    };
    b.push(b.row().lsu(LsuInstr::LoadVwr {
        vwr: VwrId::A,
        line: addr(a_line),
    }));
    b.push(
        b.row()
            .mxcu(MxcuInstr::SetIdx(0))
            .lcu(LcuInstr::Li { r: 0, value: 0 }),
    );
    let top = b.new_label();
    b.bind_label(top);
    b.push(
        b.row()
            .rc_all(RcInstr::new(
                RcOpcode::Sra,
                RcDst::Vwr(VwrId::C),
                RcSrc::Vwr(VwrId::A),
                RcSrc::Imm(1),
            ))
            .mxcu(MxcuInstr::AddIdx(1))
            .lcu(LcuInstr::Add {
                r: 0,
                src: LcuSrc::Imm(1),
            }),
    );
    b.push_branch(b.row(), LcuCond::Lt, 0, LcuSrc::Imm(32), top);
    b.push(b.row().lsu(LsuInstr::StoreVwr {
        vwr: VwrId::C,
        line: addr(out_line),
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use vwr2a_dsp::complex::Complex;
    use vwr2a_dsp::fft::{fft, rfft};
    use vwr2a_dsp::fixed::from_q16;

    fn q16_signal(n: usize, freq: f64) -> (Vec<i32>, Vec<i32>, Vec<Complex>) {
        let float: Vec<Complex> = (0..n)
            .map(|i| {
                Complex::new(
                    0.45 * (std::f64::consts::TAU * freq * i as f64 / n as f64).cos(),
                    0.30 * (std::f64::consts::TAU * freq * i as f64 / n as f64).sin(),
                )
            })
            .collect();
        let re = float.iter().map(|c| to_q16(c.re)).collect();
        let im = float.iter().map(|c| to_q16(c.im)).collect();
        (re, im, float)
    }

    #[test]
    fn constant_geometry_reference_matches_float_fft() {
        let n = 256;
        let (re, im, float) = q16_signal(n, 9.0);
        let (out_re, out_im) = constant_geometry_reference(&re, &im);
        let reference = fft(&float).unwrap();
        for k in 0..n {
            let got_re = from_q16(out_re[k]);
            let got_im = from_q16(out_im[k]);
            assert!(
                (got_re - reference[k].re).abs() < 0.08 && (got_im - reference[k].im).abs() < 0.08,
                "bin {k}: ({got_re}, {got_im}) vs ({}, {})",
                reference[k].re,
                reference[k].im
            );
        }
    }

    #[test]
    fn kernel_matches_host_reference_bit_exactly() {
        let n = 256;
        let (re, im, _) = q16_signal(n, 5.0);
        let (ref_re, ref_im) = constant_geometry_reference(&re, &im);
        let kernel = FftKernel::new(n).unwrap();
        let mut accel = Vwr2a::new();
        let run = kernel.run_complex(&mut accel, &re, &im).unwrap();
        assert_eq!(run.re, ref_re);
        assert_eq!(run.im, ref_im);
        assert!(run.cycles > 1000);
        assert!(run.counters.shuffle_ops > 0, "the shuffle unit must be used");
    }

    #[test]
    fn five_hundred_twelve_point_complex_fft_runs_and_is_correct() {
        let n = 512;
        let (re, im, float) = q16_signal(n, 20.0);
        let kernel = FftKernel::new(n).unwrap();
        let mut accel = Vwr2a::new();
        let run = kernel.run_complex(&mut accel, &re, &im).unwrap();
        let reference = fft(&float).unwrap();
        for k in 0..n {
            assert!(
                (from_q16(run.re[k]) - reference[k].re).abs() < 0.2,
                "bin {k}"
            );
        }
        // Table 2 reports 7125 cycles; the mapping should be within ~2x.
        assert!(
            run.cycles > 4_000 && run.cycles < 16_000,
            "cycles {}",
            run.cycles
        );
    }

    #[test]
    fn real_fft_matches_float_reference() {
        let n_real = 512;
        let signal_f: Vec<f64> = (0..n_real)
            .map(|i| 0.4 * (std::f64::consts::TAU * 12.0 * i as f64 / n_real as f64).sin())
            .collect();
        let signal_q: Vec<i32> = signal_f.iter().map(|&v| to_q16(v)).collect();
        let kernel = FftKernel::new(n_real / 2).unwrap();
        let mut accel = Vwr2a::new();
        let run = kernel.run_real(&mut accel, &signal_q).unwrap();
        let reference = rfft(&signal_f).unwrap();
        assert_eq!(run.re.len(), n_real / 2 + 1);
        for k in 0..n_real / 2 {
            assert!(
                (from_q16(run.re[k]) - reference[k].re).abs() < 0.3
                    && (from_q16(run.im[k]) - reference[k].im).abs() < 0.3,
                "bin {k}: ({}, {}) vs ({}, {})",
                from_q16(run.re[k]),
                from_q16(run.im[k]),
                reference[k].re,
                reference[k].im
            );
        }
    }

    #[test]
    fn unsupported_sizes_are_rejected() {
        assert!(FftKernel::new(100).is_err());
        assert!(FftKernel::new(128).is_err());
        assert!(FftKernel::new(2048).is_err());
        let k = FftKernel::new(256).unwrap();
        assert_eq!(k.len(), 256);
        assert!(!k.is_empty());
        let mut accel = Vwr2a::new();
        assert!(k.run_complex(&mut accel, &[0; 16], &[0; 16]).is_err());
        assert!(k.run_real(&mut accel, &[0; 100]).is_err());
    }
}
