//! Per-backend energy pricing facade for schedulers.
//!
//! The crate's free functions ([`crate::vwr2a_energy`],
//! [`crate::fft_accel_energy`], [`crate::cpu_energy`]) price a *finished*
//! run from its activity trail.  A scheduler needs two more things:
//!
//! * the same pricing expressed in **integer nanojoules**, so per-job
//!   energies sum exactly to per-backend and fleet totals (floating-point
//!   µJ sums drift; u64 nJ sums do not), and
//! * **estimates** for work that has not run yet — a per-window energy
//!   figure per backend kind, derived from the paper's Table 3 average
//!   power at the calibration frequency, so a placement strategy can
//!   weigh joules next to cycles before committing a job.
//!
//! [`EnergyModel`] bundles both over the calibrated coefficient sets.  The
//! estimates are deliberately simple — nominal pJ/cycle rates — because a
//! placement decision only needs relative ordering between backends; the
//! executed window is always re-priced from its actual counters.

use crate::breakdown::EnergyBreakdown;
use crate::coefficients::Vwr2aCoefficients;
use crate::{cpu_energy, fft_accel_energy, vwr2a_energy_with, PAPER_FREQUENCY_HZ};
use vwr2a_core::ActivityCounters;
use vwr2a_fftaccel::FftAccelStats;
use vwr2a_soc::cpu::CpuRunStats;

/// Table 3 average VWR2A power on the 512-point real FFT (mW).
const ARRAY_MW: f64 = 5.41;
/// Table 3 average fixed-function FFT engine power (mW).
const FFT_MW: f64 = 0.983;
/// Average Cortex-M4 power implied by the Tables 4/5 µJ columns (mW).
const CPU_MW: f64 = 1.2;

/// Converts a µJ breakdown total to integer nanojoules (round to nearest).
fn uj_to_nj(uj: f64) -> u64 {
    (uj * 1e3).round() as u64
}

/// Nominal per-cycle energy (nJ/cycle) of a substrate averaging `mw`
/// milliwatts at the calibration clock.
fn nj_per_cycle(mw: f64) -> f64 {
    // mW / Hz = mJ/cycle; × 1e6 = nJ/cycle.
    mw / PAPER_FREQUENCY_HZ * 1e6
}

/// Energy pricing for every backend kind of the heterogeneous fleet, in
/// integer nanojoules.
///
/// *Measured* pricing (`price_*`) converts an executed run's activity
/// trail through the calibrated coefficient sets; *estimates*
/// (`*_window_nj`, [`EnergyModel::array_reload_nj`]) project the energy of
/// work that has not run yet from cycle counts alone.  Both are what the
/// runtime's placement layer threads through `BackendView` and
/// `JobRoute`.
#[derive(Debug, Clone)]
pub struct EnergyModel {
    vwr2a: Vwr2aCoefficients,
}

impl EnergyModel {
    /// The model over the paper-calibrated coefficient sets.
    pub fn calibrated() -> Self {
        Self {
            vwr2a: Vwr2aCoefficients::calibrated(),
        }
    }

    /// Prices a CGRA array's measured activity delta, in nJ.
    pub fn price_array(&self, counters: &ActivityCounters) -> u64 {
        uj_to_nj(vwr2a_energy_with(counters, &self.vwr2a).total_uj())
    }

    /// Prices a fixed-function FFT engine run from its statistics, in nJ.
    pub fn price_fft(&self, stats: &FftAccelStats) -> u64 {
        uj_to_nj(fft_accel_energy(stats).total_uj())
    }

    /// Prices a Cortex-M4 run from its ISS statistics, in nJ.
    pub fn price_cpu(&self, stats: &CpuRunStats) -> u64 {
        uj_to_nj(cpu_energy(stats).total_uj())
    }

    /// Estimated energy of `cycles` compute cycles on a CGRA array, in nJ
    /// (Table 3 average power, ≈ 67.6 pJ/cycle).
    pub fn array_window_nj(&self, cycles: u64) -> u64 {
        (cycles as f64 * nj_per_cycle(ARRAY_MW)).round() as u64
    }

    /// Estimated energy of `cycles` cycles on the fixed-function FFT
    /// engine, in nJ (Table 3 average power, ≈ 12.3 pJ/cycle).
    pub fn fft_window_nj(&self, cycles: u64) -> u64 {
        (cycles as f64 * nj_per_cycle(FFT_MW)).round() as u64
    }

    /// Estimated energy of `cycles` ISS cycles on the Cortex-M4 host, in
    /// nJ (≈ 15 pJ/cycle).
    pub fn cpu_window_nj(&self, cycles: u64) -> u64 {
        (cycles as f64 * nj_per_cycle(CPU_MW)).round() as u64
    }

    /// Estimated energy of streaming a `config_words`-word configuration
    /// reload into an array, in nJ — priced through the coefficients
    /// exactly as the measured reload will be (one word per cycle, the
    /// config-word switching cost plus leakage).
    pub fn array_reload_nj(&self, config_words: u64) -> u64 {
        let counters = ActivityCounters {
            cycles: config_words,
            config_words_loaded: config_words,
            ..ActivityCounters::default()
        };
        self.price_array(&counters)
    }

    /// The full µJ breakdown behind [`EnergyModel::price_array`] (reports,
    /// not scheduling).
    pub fn array_breakdown(&self, counters: &ActivityCounters) -> EnergyBreakdown {
        vwr2a_energy_with(counters, &self.vwr2a)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_pricing_matches_the_free_functions() {
        let model = EnergyModel::calibrated();
        let counters = ActivityCounters {
            cycles: 5000,
            rc_alu_ops: 20_000,
            vwr_word_reads: 40_000,
            ..ActivityCounters::default()
        };
        let uj = crate::vwr2a_energy(&counters).total_uj();
        assert_eq!(model.price_array(&counters), uj_to_nj(uj));
        let stats = FftAccelStats {
            cycles: 3523,
            butterflies: 2048,
            memory_accesses: 16384,
            twiddle_reads: 2048,
            io_words: 1281,
            scaling_events: 3,
        };
        assert_eq!(
            model.price_fft(&stats),
            uj_to_nj(fft_accel_energy(&stats).total_uj())
        );
    }

    #[test]
    fn estimates_rank_backends_like_table3() {
        // Same cycle count: the engine is the cheapest substrate, the
        // array the most power-hungry — the ordering the paper's Table 3
        // reports and the placement objective relies on.
        let model = EnergyModel::calibrated();
        let cycles = 3500;
        let array = model.array_window_nj(cycles);
        let fft = model.fft_window_nj(cycles);
        let cpu = model.cpu_window_nj(cycles);
        assert!(fft < cpu, "fft {fft} vs cpu {cpu}");
        assert!(cpu < array, "cpu {cpu} vs array {array}");
        // ~67.6 pJ/cycle x 3500 cycles ≈ 237 nJ.
        assert!((200..280).contains(&array), "array {array} nJ");
    }

    #[test]
    fn reload_estimate_is_linear_in_words() {
        let model = EnergyModel::calibrated();
        let one = model.array_reload_nj(100);
        let two = model.array_reload_nj(200);
        assert!(one > 0);
        assert!(two >= 2 * one - 1 && two <= 2 * one + 1);
    }
}
