//! Calibrated per-event energy coefficients.
//!
//! All values are in picojoules per event (or per cycle for leakage terms)
//! at the paper's operating point: TSMC 40 nm LP, 80 MHz, post-synthesis.
//! They were calibrated once against the paper's own numbers:
//!
//! * the VWR2A and FFT-accelerator columns of **Table 3** (power breakdown
//!   while executing a 512-point real-valued FFT: 5.41 mW and 0.983 mW with
//!   the Memories/Datapath/Control/DMA split reported there),
//! * the **Table 4** CPU and VWR2A energies for the FIR kernel, which pin
//!   the CPU core + SRAM energy per instruction (≈ 1.2 mW average CPU
//!   power) and cross-check the VWR2A figure,
//! * the absolute magnitudes are consistent with published 40 nm SRAM and
//!   ALU energy surveys (tens of femtojoules per bit for wide SRAM
//!   accesses, a few picojoules per 32-bit ALU operation).
//!
//! Calibration is a one-time fit; the same constants are used for every
//! experiment so relative results are genuine model outputs.

use serde::{Deserialize, Serialize};

/// Per-event energies of the VWR2A array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vwr2aCoefficients {
    /// One 32-bit word read or written on a VWR through the mux network.
    pub vwr_word_pj: f64,
    /// One whole-line (4096-bit) VWR fill or drain.
    pub vwr_line_pj: f64,
    /// One wide (4096-bit) SPM line access.
    pub spm_line_pj: f64,
    /// One narrow (32-bit) SPM word access.
    pub spm_word_pj: f64,
    /// Memories leakage per active cycle (SPM + VWR latch arrays).
    pub memories_leakage_pj: f64,
    /// One RC ALU operation (operand isolation keeps idle ALUs quiet).
    pub rc_op_pj: f64,
    /// Extra energy of a multiplication on top of `rc_op_pj`.
    pub rc_multiply_extra_pj: f64,
    /// One RC local-register access.
    pub rc_reg_pj: f64,
    /// One SRF access.
    pub srf_pj: f64,
    /// One shuffle-unit operation (256-word permutation).
    pub shuffle_pj: f64,
    /// Datapath leakage per active cycle.
    pub datapath_leakage_pj: f64,
    /// One non-NOP instruction issue (program-memory read + control
    /// signals).
    pub instr_issue_pj: f64,
    /// One NOP issue.
    pub nop_issue_pj: f64,
    /// One taken branch or jump in the LCU.
    pub branch_pj: f64,
    /// One configuration word streamed at kernel load.
    pub config_word_pj: f64,
    /// Control leakage per active cycle.
    pub control_leakage_pj: f64,
    /// One 32-bit word moved by the VWR2A DMA over the system bus.
    pub dma_word_pj: f64,
    /// One DMA descriptor setup.
    pub dma_setup_pj: f64,
    /// DMA / bus-interface leakage per active cycle.
    pub dma_leakage_pj: f64,
}

impl Vwr2aCoefficients {
    /// The calibrated coefficient set (see the module documentation).
    pub fn calibrated() -> Self {
        Self {
            vwr_word_pj: 2.6,
            vwr_line_pj: 40.0,
            spm_line_pj: 230.0,
            spm_word_pj: 8.0,
            memories_leakage_pj: 3.0,
            rc_op_pj: 3.4,
            rc_multiply_extra_pj: 2.8,
            rc_reg_pj: 0.4,
            srf_pj: 1.2,
            shuffle_pj: 60.0,
            datapath_leakage_pj: 2.0,
            instr_issue_pj: 0.28,
            nop_issue_pj: 0.04,
            branch_pj: 0.4,
            config_word_pj: 1.5,
            control_leakage_pj: 0.15,
            dma_word_pj: 6.5,
            dma_setup_pj: 40.0,
            dma_leakage_pj: 0.55,
        }
    }
}

impl Default for Vwr2aCoefficients {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Per-event energies of the fixed-function FFT accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FftAccelCoefficients {
    /// One 18-bit data-memory access.
    pub memory_access_pj: f64,
    /// One twiddle-ROM read.
    pub twiddle_rom_pj: f64,
    /// Memories leakage per active cycle (17 KiB of dual-port memory).
    pub memories_leakage_pj: f64,
    /// One radix-2-equivalent butterfly on the 18-bit datapath.
    pub butterfly_pj: f64,
    /// One block-scaling pass.
    pub scaling_pj: f64,
    /// Datapath leakage per active cycle.
    pub datapath_leakage_pj: f64,
    /// Control / sequencing energy per cycle.
    pub control_pj_per_cycle: f64,
    /// One word moved over the system-bus interface.
    pub io_word_pj: f64,
    /// Bus-interface leakage per active cycle.
    pub dma_leakage_pj: f64,
}

impl FftAccelCoefficients {
    /// The calibrated coefficient set (see the module documentation).
    pub fn calibrated() -> Self {
        Self {
            memory_access_pj: 1.55,
            twiddle_rom_pj: 0.8,
            memories_leakage_pj: 1.1,
            butterfly_pj: 4.6,
            scaling_pj: 50.0,
            datapath_leakage_pj: 0.5,
            control_pj_per_cycle: 0.75,
            io_word_pj: 0.35,
            dma_leakage_pj: 0.06,
        }
    }
}

impl Default for FftAccelCoefficients {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Per-event energies of the Cortex-M4-class CPU (core plus its share of the
/// SRAM and bus).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuCoefficients {
    /// Fetch + decode energy per retired instruction.
    pub fetch_decode_pj: f64,
    /// One ALU operation.
    pub alu_pj: f64,
    /// One multiply / multiply-accumulate / divide.
    pub mul_pj: f64,
    /// One taken branch (pipeline refill).
    pub branch_pj: f64,
    /// One SRAM word access (load or store, including the bus).
    pub sram_access_pj: f64,
    /// SRAM + bus leakage per cycle.
    pub sram_leakage_pj: f64,
    /// Core leakage and clock-tree energy per cycle.
    pub core_leakage_pj: f64,
}

impl CpuCoefficients {
    /// The calibrated coefficient set (see the module documentation).
    pub fn calibrated() -> Self {
        Self {
            fetch_decode_pj: 7.5,
            alu_pj: 3.0,
            mul_pj: 4.5,
            branch_pj: 6.0,
            sram_access_pj: 11.0,
            sram_leakage_pj: 2.2,
            core_leakage_pj: 2.8,
        }
    }
}

impl Default for CpuCoefficients {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_sets_are_positive_and_defaults() {
        let v = Vwr2aCoefficients::calibrated();
        assert!(v.vwr_word_pj > 0.0 && v.spm_line_pj > v.spm_word_pj);
        assert_eq!(v, Vwr2aCoefficients::default());
        let f = FftAccelCoefficients::calibrated();
        assert!(f.butterfly_pj > 0.0);
        assert_eq!(f, FftAccelCoefficients::default());
        let c = CpuCoefficients::calibrated();
        assert!(c.sram_access_pj > c.alu_pj);
        assert_eq!(c, CpuCoefficients::default());
    }

    #[test]
    fn wide_spm_access_cheaper_per_word_than_narrow() {
        let v = Vwr2aCoefficients::calibrated();
        // The whole point of the VWR/SPM organisation: a 128-word line access
        // costs far less per word than 128 narrow accesses.
        assert!(v.spm_line_pj / 128.0 < v.spm_word_pj);
    }
}
