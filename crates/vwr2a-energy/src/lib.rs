//! Activity-based energy model for the VWR2A reproduction.
//!
//! The paper estimates power by feeding post-synthesis switching activity
//! (TSMC 40 nm LP, 80 MHz) into Synopsys PrimePower.  Without the netlist
//! and the power tool, this crate substitutes an architectural model: every
//! simulated component reports *activity events* (the
//! [`vwr2a_core::ActivityCounters`] of the array, the
//! [`vwr2a_fftaccel::FftAccelStats`] of the fixed-function engine and the
//! [`vwr2a_soc::cpu::CpuRunStats`] of the processor), and this crate
//! multiplies them by per-event energy coefficients plus per-cycle leakage.
//!
//! The coefficients in [`coefficients`] are **calibrated once** against the
//! numbers the paper itself reports — the Table 3 power breakdown for the
//! 512-point real-valued FFT, and the µJ columns of Tables 4 and 5 — and
//! then used unchanged for every experiment.  Absolute joules therefore
//! match the paper by construction for the calibration point; what the
//! model genuinely predicts is how energy *scales* with kernel, size and
//! platform configuration, which is what EXPERIMENTS.md compares.
//!
//! # Example
//!
//! ```
//! use vwr2a_core::ActivityCounters;
//! use vwr2a_energy::vwr2a_energy;
//!
//! let mut counters = ActivityCounters::default();
//! counters.cycles = 10_000;
//! counters.rc_alu_ops = 30_000;
//! counters.vwr_word_reads = 60_000;
//! let breakdown = vwr2a_energy(&counters);
//! assert!(breakdown.total_uj() > 0.0);
//! assert!(breakdown.memories_uj > breakdown.control_uj);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breakdown;
pub mod coefficients;
pub mod model;

pub use breakdown::EnergyBreakdown;
use coefficients::{CpuCoefficients, FftAccelCoefficients, Vwr2aCoefficients};
pub use model::EnergyModel;
use vwr2a_core::ActivityCounters;
use vwr2a_fftaccel::FftAccelStats;
use vwr2a_soc::cpu::CpuRunStats;

/// The platform clock frequency the calibration assumes (80 MHz).
pub const PAPER_FREQUENCY_HZ: f64 = 80.0e6;

/// Energy breakdown of a VWR2A kernel run from its activity counters.
pub fn vwr2a_energy(counters: &ActivityCounters) -> EnergyBreakdown {
    vwr2a_energy_with(counters, &Vwr2aCoefficients::calibrated())
}

/// Energy breakdown of a VWR2A run with explicit coefficients (used by the
/// ablation experiments).
pub fn vwr2a_energy_with(counters: &ActivityCounters, c: &Vwr2aCoefficients) -> EnergyBreakdown {
    let pj_to_uj = 1e-6;
    let memories = (counters.vwr_word_reads + counters.vwr_word_writes) as f64 * c.vwr_word_pj
        + counters.vwr_line_transfers as f64 * c.vwr_line_pj
        + (counters.spm_line_reads + counters.spm_line_writes) as f64 * c.spm_line_pj
        + (counters.spm_word_reads + counters.spm_word_writes) as f64 * c.spm_word_pj
        + counters.cycles as f64 * c.memories_leakage_pj;
    let datapath = counters.rc_alu_ops as f64 * c.rc_op_pj
        + counters.rc_multiplies as f64 * c.rc_multiply_extra_pj
        + (counters.rc_reg_reads + counters.rc_reg_writes) as f64 * c.rc_reg_pj
        + (counters.srf_reads + counters.srf_writes) as f64 * c.srf_pj
        + counters.shuffle_ops as f64 * c.shuffle_pj
        + counters.cycles as f64 * c.datapath_leakage_pj;
    let control = counters.instr_issues as f64 * c.instr_issue_pj
        + counters.nop_issues as f64 * c.nop_issue_pj
        + counters.lcu_branches as f64 * c.branch_pj
        + counters.config_words_loaded as f64 * c.config_word_pj
        + counters.cycles as f64 * c.control_leakage_pj;
    let dma = counters.dma_words as f64 * c.dma_word_pj
        + counters.dma_transfers as f64 * c.dma_setup_pj
        + counters.cycles as f64 * c.dma_leakage_pj;
    EnergyBreakdown {
        dma_uj: dma * pj_to_uj,
        memories_uj: memories * pj_to_uj,
        control_uj: control * pj_to_uj,
        datapath_uj: datapath * pj_to_uj,
    }
}

/// Energy breakdown of a fixed-function FFT accelerator run.
pub fn fft_accel_energy(stats: &FftAccelStats) -> EnergyBreakdown {
    let c = FftAccelCoefficients::calibrated();
    let pj_to_uj = 1e-6;
    let memories = stats.memory_accesses as f64 * c.memory_access_pj
        + stats.twiddle_reads as f64 * c.twiddle_rom_pj
        + stats.cycles as f64 * c.memories_leakage_pj;
    let datapath = stats.butterflies as f64 * c.butterfly_pj
        + stats.scaling_events as f64 * c.scaling_pj
        + stats.cycles as f64 * c.datapath_leakage_pj;
    let control = stats.cycles as f64 * c.control_pj_per_cycle;
    let dma = stats.io_words as f64 * c.io_word_pj + stats.cycles as f64 * c.dma_leakage_pj;
    EnergyBreakdown {
        dma_uj: dma * pj_to_uj,
        memories_uj: memories * pj_to_uj,
        control_uj: control * pj_to_uj,
        datapath_uj: datapath * pj_to_uj,
    }
}

/// Energy breakdown of a CPU program run (core plus its SRAM traffic).
pub fn cpu_energy(stats: &CpuRunStats) -> EnergyBreakdown {
    let c = CpuCoefficients::calibrated();
    let pj_to_uj = 1e-6;
    let memories = (stats.loads + stats.stores) as f64 * c.sram_access_pj
        + stats.cycles as f64 * c.sram_leakage_pj;
    let datapath = stats.alu_ops as f64 * c.alu_pj
        + stats.mul_ops as f64 * c.mul_pj
        + stats.cycles as f64 * c.core_leakage_pj;
    let control =
        stats.instructions as f64 * c.fetch_decode_pj + stats.taken_branches as f64 * c.branch_pj;
    EnergyBreakdown {
        dma_uj: 0.0,
        memories_uj: memories * pj_to_uj,
        control_uj: control * pj_to_uj,
        datapath_uj: datapath * pj_to_uj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fft_like_vwr2a_counters(cycles: u64) -> ActivityCounters {
        // Roughly the per-cycle activity mix of the VWR2A FFT kernel:
        // four RCs busy, two VWR reads and one write each, an SPM line
        // access every ~35 cycles, modest control.
        ActivityCounters {
            cycles,
            rc_alu_ops: 4 * cycles,
            rc_multiplies: cycles,
            vwr_word_reads: 8 * cycles,
            vwr_word_writes: 4 * cycles,
            spm_line_reads: cycles / 40,
            spm_line_writes: cycles / 60,
            vwr_line_transfers: cycles / 20,
            instr_issues: 6 * cycles,
            nop_issues: cycles,
            dma_words: cycles / 8,
            dma_transfers: 2,
            ..ActivityCounters::default()
        }
    }

    #[test]
    fn vwr2a_breakdown_matches_table3_shape() {
        // Table 3: Memories 64 %, Datapath 32 %, Control 2 %, DMA 2 %,
        // total ≈ 5.4 mW at 80 MHz.
        let counters = fft_like_vwr2a_counters(3700);
        let b = vwr2a_energy(&counters);
        let shares = b.shares();
        assert!((shares.memories - 0.64).abs() < 0.12, "memories {shares:?}");
        assert!((shares.datapath - 0.32).abs() < 0.12, "datapath {shares:?}");
        assert!(shares.control < 0.08, "control {shares:?}");
        assert!(shares.dma < 0.08, "dma {shares:?}");
        let power = b.power_mw(counters.cycles, PAPER_FREQUENCY_HZ);
        assert!(power > 3.0 && power < 8.0, "power {power} mW");
    }

    #[test]
    fn fft_accel_breakdown_matches_table3_shape() {
        // Table 3: Memories 68 %, Datapath 25 %, Control 6 %, DMA 1 %,
        // total ≈ 0.98 mW.
        let stats = FftAccelStats {
            cycles: 3523,
            butterflies: 256 * 8,
            memory_accesses: 256 * 8 * 8,
            twiddle_reads: 256 * 8,
            io_words: 512 * 2 + 257,
            scaling_events: 3,
        };
        let b = fft_accel_energy(&stats);
        let shares = b.shares();
        assert!((shares.memories - 0.68).abs() < 0.12, "memories {shares:?}");
        assert!((shares.datapath - 0.25).abs() < 0.12, "datapath {shares:?}");
        assert!(shares.control < 0.12);
        assert!(shares.dma < 0.06);
        let power = b.power_mw(stats.cycles, PAPER_FREQUENCY_HZ);
        assert!(power > 0.5 && power < 2.0, "power {power} mW");
    }

    #[test]
    fn cpu_power_is_about_one_milliwatt_class() {
        // Tables 4/5 imply ≈ 1.2 mW average CPU power at 80 MHz.
        let stats = CpuRunStats {
            cycles: 100_000,
            instructions: 62_000,
            alu_ops: 40_000,
            mul_ops: 8_000,
            loads: 10_000,
            stores: 4_000,
            branches: 9_000,
            taken_branches: 7_000,
        };
        let b = cpu_energy(&stats);
        let power = b.power_mw(stats.cycles, PAPER_FREQUENCY_HZ);
        assert!(power > 0.7 && power < 2.0, "power {power} mW");
    }

    #[test]
    fn vwr2a_to_accel_energy_ratio_is_a_few_times() {
        // Fig. 2 / Table 3: the accelerator is ~5x more energy-efficient on
        // the isolated FFT kernel at similar cycle counts.
        let v = vwr2a_energy(&fft_like_vwr2a_counters(3700));
        let a = fft_accel_energy(&FftAccelStats {
            cycles: 3523,
            butterflies: 2048,
            memory_accesses: 16384,
            twiddle_reads: 2048,
            io_words: 1281,
            scaling_events: 3,
        });
        let ratio = v.total_uj() / a.total_uj();
        assert!(ratio > 3.0 && ratio < 8.0, "ratio {ratio}");
    }

    #[test]
    fn energy_scales_linearly_with_activity() {
        let half = vwr2a_energy(&fft_like_vwr2a_counters(2000));
        let full = vwr2a_energy(&fft_like_vwr2a_counters(4000));
        let ratio = full.total_uj() / half.total_uj();
        assert!((ratio - 2.0).abs() < 0.05);
    }
}
