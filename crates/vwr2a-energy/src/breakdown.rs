//! Per-component energy breakdown (the categories of Table 3).

use serde::{Deserialize, Serialize};

/// Energy split into the four component categories the paper reports:
/// DMA, Memories, Control and Datapath.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// DMA / bus-interface energy in microjoules.
    pub dma_uj: f64,
    /// Memory energy (SPM, VWRs, data memories) in microjoules.
    pub memories_uj: f64,
    /// Control energy (instruction issue, sequencing, configuration) in
    /// microjoules.
    pub control_uj: f64,
    /// Datapath energy (ALUs, multipliers, register files) in microjoules.
    pub datapath_uj: f64,
}

/// Relative shares of each category (they sum to 1 for a non-zero total).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyShares {
    /// DMA share.
    pub dma: f64,
    /// Memories share.
    pub memories: f64,
    /// Control share.
    pub control: f64,
    /// Datapath share.
    pub datapath: f64,
}

impl EnergyBreakdown {
    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.dma_uj + self.memories_uj + self.control_uj + self.datapath_uj
    }

    /// Average power in milliwatts over `cycles` at `frequency_hz`.
    ///
    /// ```
    /// use vwr2a_energy::EnergyBreakdown;
    /// let b = EnergyBreakdown { dma_uj: 0.0, memories_uj: 0.5, control_uj: 0.0, datapath_uj: 0.5 };
    /// // 1 µJ over 1 ms is 1 mW.
    /// assert!((b.power_mw(80_000, 80.0e6) - 1.0).abs() < 1e-9);
    /// ```
    pub fn power_mw(&self, cycles: u64, frequency_hz: f64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        let seconds = cycles as f64 / frequency_hz;
        self.total_uj() * 1e-6 / seconds * 1e3
    }

    /// The relative share of each category.
    pub fn shares(&self) -> EnergyShares {
        let total = self.total_uj();
        if total <= 0.0 {
            return EnergyShares::default();
        }
        EnergyShares {
            dma: self.dma_uj / total,
            memories: self.memories_uj / total,
            control: self.control_uj / total,
            datapath: self.datapath_uj / total,
        }
    }

    /// Component-wise sum of two breakdowns (e.g. accumulating application
    /// steps for Table 5).
    pub fn combined(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            dma_uj: self.dma_uj + other.dma_uj,
            memories_uj: self.memories_uj + other.memories_uj,
            control_uj: self.control_uj + other.control_uj,
            datapath_uj: self.datapath_uj + other.datapath_uj,
        }
    }
}

impl std::fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} µJ (dma {:.3}, memories {:.3}, control {:.3}, datapath {:.3})",
            self.total_uj(),
            self.dma_uj,
            self.memories_uj,
            self.control_uj,
            self.datapath_uj
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_shares_and_combination() {
        let b = EnergyBreakdown {
            dma_uj: 1.0,
            memories_uj: 2.0,
            control_uj: 3.0,
            datapath_uj: 4.0,
        };
        assert!((b.total_uj() - 10.0).abs() < 1e-12);
        let s = b.shares();
        assert!((s.dma - 0.1).abs() < 1e-12);
        assert!((s.datapath - 0.4).abs() < 1e-12);
        let c = b.combined(&b);
        assert!((c.total_uj() - 20.0).abs() < 1e-12);
        assert!(!b.to_string().is_empty());
    }

    #[test]
    fn zero_energy_edge_cases() {
        let z = EnergyBreakdown::default();
        assert_eq!(z.total_uj(), 0.0);
        assert_eq!(z.shares(), EnergyShares::default());
        assert_eq!(z.power_mw(0, 80e6), 0.0);
        assert_eq!(z.power_mw(100, 80e6), 0.0);
    }
}
