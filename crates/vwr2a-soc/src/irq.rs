//! Interrupt controller.
//!
//! VWR2A informs the processor when a kernel execution or a DMA transfer is
//! finished through an interrupt line (Sec. 4.2), exactly like the other
//! accelerators of the platform.  The model is a small latch-and-mask
//! controller: peripherals raise lines, the CPU enables/acknowledges them.

use crate::error::{Result, SocError};
use serde::{Deserialize, Serialize};

/// Interrupt-path latencies of the simulated platform, in CPU cycles.
///
/// These model the cost of a *completion interrupt*: the cycles between a
/// peripheral raising its line and the host actually reacting to the
/// completion (e.g. programming the next DMA descriptor).  The values
/// follow the Cortex-M4 the platform emulates: 12 cycles of exception
/// entry (stacking + vector fetch) and 10 cycles of exception return.
/// Runtimes that model asynchronous completion — VWR2A's kernel-done and
/// DMA-done interrupts in particular — charge
/// [`COMPLETION_IRQ_CYCLES`](latency::COMPLETION_IRQ_CYCLES) per serviced
/// interrupt instead of pretending the accelerator returns synchronously.
pub mod latency {
    /// Exception-entry latency (register stacking and vector fetch) of the
    /// Cortex-M4-class host CPU.
    pub const IRQ_ENTRY_CYCLES: u64 = 12;
    /// Exception-return latency (unstacking) of the host CPU.
    pub const IRQ_EXIT_CYCLES: u64 = 10;
    /// End-to-end cost of servicing one completion interrupt: entry, a
    /// minimal acknowledge-and-dispatch handler, and return.
    pub const COMPLETION_IRQ_CYCLES: u64 = IRQ_ENTRY_CYCLES + IRQ_EXIT_CYCLES;
}

/// Well-known interrupt line assignments of the simulated platform.
pub mod lines {
    /// Raised when a VWR2A kernel finishes.
    pub const VWR2A_KERNEL_DONE: usize = 0;
    /// Raised when a VWR2A DMA transfer finishes.
    pub const VWR2A_DMA_DONE: usize = 1;
    /// Raised when the fixed-function FFT accelerator finishes.
    pub const FFT_ACCEL_DONE: usize = 2;
    /// Raised when the system DMA finishes.
    pub const SYSTEM_DMA_DONE: usize = 3;
    /// Raised by the analog front-end when a new sample window is ready.
    pub const AFE_WINDOW_READY: usize = 4;
}

/// A simple latch-and-mask interrupt controller.
///
/// # Example
///
/// ```
/// use vwr2a_soc::irq::{InterruptController, lines};
///
/// # fn main() -> Result<(), vwr2a_soc::error::SocError> {
/// let mut irq = InterruptController::new(8);
/// irq.enable(lines::VWR2A_KERNEL_DONE, true)?;
/// irq.raise(lines::VWR2A_KERNEL_DONE)?;
/// assert!(irq.pending(lines::VWR2A_KERNEL_DONE)?);
/// assert_eq!(irq.next_pending(), Some(lines::VWR2A_KERNEL_DONE));
/// irq.acknowledge(lines::VWR2A_KERNEL_DONE)?;
/// assert_eq!(irq.next_pending(), None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterruptController {
    pending: Vec<bool>,
    enabled: Vec<bool>,
    raised_total: u64,
}

impl InterruptController {
    /// Creates a controller with `lines` interrupt lines, all disabled.
    pub fn new(lines: usize) -> Self {
        Self {
            pending: vec![false; lines],
            enabled: vec![false; lines],
            raised_total: 0,
        }
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        self.pending.len()
    }

    fn check(&self, line: usize) -> Result<()> {
        if line < self.pending.len() {
            Ok(())
        } else {
            Err(SocError::InvalidIrqLine {
                line,
                lines: self.pending.len(),
            })
        }
    }

    /// Enables or masks a line.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidIrqLine`] for an out-of-range line.
    pub fn enable(&mut self, line: usize, enabled: bool) -> Result<()> {
        self.check(line)?;
        self.enabled[line] = enabled;
        Ok(())
    }

    /// Latches a pending interrupt (peripheral side).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidIrqLine`] for an out-of-range line.
    pub fn raise(&mut self, line: usize) -> Result<()> {
        self.check(line)?;
        self.pending[line] = true;
        self.raised_total += 1;
        Ok(())
    }

    /// Whether a line is pending (regardless of masking).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidIrqLine`] for an out-of-range line.
    pub fn pending(&self, line: usize) -> Result<bool> {
        self.check(line)?;
        Ok(self.pending[line])
    }

    /// Clears a pending line (CPU side).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidIrqLine`] for an out-of-range line.
    pub fn acknowledge(&mut self, line: usize) -> Result<()> {
        self.check(line)?;
        self.pending[line] = false;
        Ok(())
    }

    /// The lowest-numbered line that is both pending and enabled.
    pub fn next_pending(&self) -> Option<usize> {
        self.pending
            .iter()
            .zip(&self.enabled)
            .position(|(&p, &e)| p && e)
    }

    /// Total interrupts raised since construction.
    pub fn raised_total(&self) -> u64 {
        self.raised_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_interrupts_do_not_fire() {
        let mut irq = InterruptController::new(4);
        irq.raise(2).unwrap();
        assert!(irq.pending(2).unwrap());
        assert_eq!(irq.next_pending(), None, "line 2 is masked");
        irq.enable(2, true).unwrap();
        assert_eq!(irq.next_pending(), Some(2));
    }

    #[test]
    fn priority_is_lowest_line_first() {
        let mut irq = InterruptController::new(4);
        for l in 0..4 {
            irq.enable(l, true).unwrap();
        }
        irq.raise(3).unwrap();
        irq.raise(1).unwrap();
        assert_eq!(irq.next_pending(), Some(1));
        irq.acknowledge(1).unwrap();
        assert_eq!(irq.next_pending(), Some(3));
        assert_eq!(irq.raised_total(), 2);
    }

    #[test]
    fn out_of_range_lines_rejected() {
        let mut irq = InterruptController::new(2);
        assert!(irq.raise(2).is_err());
        assert!(irq.enable(9, true).is_err());
        assert!(irq.pending(5).is_err());
        assert!(irq.acknowledge(2).is_err());
        assert_eq!(irq.lines(), 2);
    }
}
