//! AMBA-AHB-like system bus model.
//!
//! The SoC elements (processor, memories, accelerators) are connected
//! through an AHB interconnect (Sec. 4.1).  For the experiments only two
//! properties of the bus matter: the latency each beat adds to a transfer
//! and how much traffic each master generates (the energy model charges per
//! beat).  The model therefore tracks per-master beat counts and exposes a
//! simple cycles-per-transfer calculation with configurable wait states and
//! burst behaviour.

use serde::{Deserialize, Serialize};

/// Bus masters that can own a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BusMaster {
    /// The Cortex-M4-like processor.
    Cpu,
    /// The system DMA controller.
    SystemDma,
    /// The VWR2A master port (its private DMA).
    Vwr2aDma,
    /// The fixed-function FFT accelerator.
    FftAccel,
}

impl BusMaster {
    /// All masters, in arbitration priority order (highest first).
    pub const ALL: [BusMaster; 4] = [
        BusMaster::SystemDma,
        BusMaster::Vwr2aDma,
        BusMaster::FftAccel,
        BusMaster::Cpu,
    ];
}

/// Timing parameters of the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Extra cycles added to the first beat of every transfer (address
    /// phase + slave wait states).
    pub setup_cycles: u64,
    /// Cycles per single (non-burst) data beat.
    pub cycles_per_beat: u64,
    /// Maximum burst length; beats within a burst after the first cost one
    /// cycle each.
    pub max_burst: usize,
}

impl Default for BusConfig {
    fn default() -> Self {
        Self {
            setup_cycles: 1,
            cycles_per_beat: 1,
            max_burst: 16,
        }
    }
}

/// Per-master traffic statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BusTraffic {
    /// Data beats transferred.
    pub beats: u64,
    /// Transactions (bursts or singles) issued.
    pub transactions: u64,
}

/// The system bus.
///
/// # Example
///
/// ```
/// use vwr2a_soc::bus::{Bus, BusConfig, BusMaster};
///
/// let mut bus = Bus::new(BusConfig::default());
/// // A 64-word CPU copy costs setup + burst beats.
/// let cycles = bus.transfer(BusMaster::Cpu, 64);
/// assert!(cycles >= 64);
/// assert_eq!(bus.traffic(BusMaster::Cpu).beats, 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bus {
    config: BusConfig,
    traffic: [BusTraffic; BusMaster::ALL.len()],
}

impl Bus {
    /// Creates a bus with the given timing configuration.
    pub fn new(config: BusConfig) -> Self {
        Self {
            config,
            traffic: [BusTraffic::default(); BusMaster::ALL.len()],
        }
    }

    /// The timing configuration.
    pub fn config(&self) -> BusConfig {
        self.config
    }

    fn master_index(master: BusMaster) -> usize {
        BusMaster::ALL
            .iter()
            .position(|&m| m == master)
            .expect("master is listed")
    }

    /// Records a transfer of `words` 32-bit beats by `master` and returns
    /// the cycles it occupies the bus.
    ///
    /// Transfers longer than the maximum burst are split into several
    /// bursts, each paying the setup cost again.
    pub fn transfer(&mut self, master: BusMaster, words: usize) -> u64 {
        if words == 0 {
            return 0;
        }
        let t = &mut self.traffic[Self::master_index(master)];
        t.beats += words as u64;
        let bursts = words.div_ceil(self.config.max_burst);
        t.transactions += bursts as u64;
        bursts as u64 * self.config.setup_cycles + words as u64 * self.config.cycles_per_beat
    }

    /// Traffic generated so far by one master.
    pub fn traffic(&self, master: BusMaster) -> BusTraffic {
        self.traffic[Self::master_index(master)]
    }

    /// Total beats across all masters.
    pub fn total_beats(&self) -> u64 {
        self.traffic.iter().map(|t| t.beats).sum()
    }

    /// Clears the traffic statistics.
    pub fn reset_traffic(&mut self) {
        self.traffic = [BusTraffic::default(); BusMaster::ALL.len()];
    }
}

impl Default for Bus {
    fn default() -> Self {
        Self::new(BusConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cycles_scale_with_words_and_bursts() {
        let mut bus = Bus::new(BusConfig {
            setup_cycles: 2,
            cycles_per_beat: 1,
            max_burst: 8,
        });
        assert_eq!(bus.transfer(BusMaster::Cpu, 0), 0);
        assert_eq!(bus.transfer(BusMaster::Cpu, 8), 2 + 8);
        assert_eq!(bus.transfer(BusMaster::Cpu, 16), 2 * 2 + 16);
        assert_eq!(bus.transfer(BusMaster::Cpu, 17), 3 * 2 + 17);
    }

    #[test]
    fn traffic_is_tracked_per_master() {
        let mut bus = Bus::default();
        bus.transfer(BusMaster::Cpu, 10);
        bus.transfer(BusMaster::Vwr2aDma, 100);
        bus.transfer(BusMaster::Vwr2aDma, 28);
        assert_eq!(bus.traffic(BusMaster::Cpu).beats, 10);
        assert_eq!(bus.traffic(BusMaster::Vwr2aDma).beats, 128);
        assert_eq!(bus.traffic(BusMaster::SystemDma).beats, 0);
        assert_eq!(bus.total_beats(), 138);
        bus.reset_traffic();
        assert_eq!(bus.total_beats(), 0);
    }

    #[test]
    fn all_masters_are_distinct() {
        for (i, a) in BusMaster::ALL.iter().enumerate() {
            for b in &BusMaster::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
