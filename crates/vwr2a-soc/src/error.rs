//! Error type of the SoC substrate.

use std::error::Error;
use std::fmt;

/// Errors raised by the SoC simulator (bus, SRAM, CPU, DMA, power domains).
///
/// # Example
///
/// ```
/// use vwr2a_soc::error::SocError;
///
/// let e = SocError::AddressOutOfRange { addr: 0x4000_0000, capacity: 196_608 };
/// assert!(e.to_string().contains("out of range"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SocError {
    /// A memory access fell outside the addressed component.
    AddressOutOfRange {
        /// Byte or word address that was requested.
        addr: usize,
        /// Capacity of the component in the same unit.
        capacity: usize,
    },
    /// An access touched an SRAM bank that is currently power gated.
    BankPowerGated {
        /// The gated bank index.
        bank: usize,
    },
    /// A CPU register index outside the register file.
    InvalidRegister {
        /// The offending register number.
        reg: usize,
    },
    /// A branch or jump target outside the program.
    InvalidBranchTarget {
        /// The requested target.
        target: usize,
        /// Program length.
        len: usize,
    },
    /// The CPU executed more cycles than the configured limit.
    CycleLimitExceeded {
        /// The limit that was exceeded.
        limit: u64,
    },
    /// The program finished without executing `Halt`.
    MissingHalt,
    /// A DMA transfer is malformed.
    InvalidDmaTransfer {
        /// Human-readable description.
        detail: String,
    },
    /// An unknown power domain was referenced.
    UnknownPowerDomain {
        /// The requested domain name.
        name: String,
    },
    /// An interrupt line outside the controller's range.
    InvalidIrqLine {
        /// The requested line.
        line: usize,
        /// Number of lines available.
        lines: usize,
    },
    /// A parameter is outside its supported range.
    InvalidParameter {
        /// Human-readable description.
        what: String,
    },
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::AddressOutOfRange { addr, capacity } => {
                write!(f, "address {addr:#x} out of range (capacity {capacity:#x})")
            }
            SocError::BankPowerGated { bank } => {
                write!(f, "access to power-gated sram bank {bank}")
            }
            SocError::InvalidRegister { reg } => write!(f, "invalid cpu register r{reg}"),
            SocError::InvalidBranchTarget { target, len } => {
                write!(f, "branch target {target} outside program of length {len}")
            }
            SocError::CycleLimitExceeded { limit } => {
                write!(f, "cpu program did not halt within {limit} cycles")
            }
            SocError::MissingHalt => write!(f, "cpu program ran past its last instruction"),
            SocError::InvalidDmaTransfer { detail } => {
                write!(f, "invalid dma transfer: {detail}")
            }
            SocError::UnknownPowerDomain { name } => write!(f, "unknown power domain {name}"),
            SocError::InvalidIrqLine { line, lines } => {
                write!(f, "interrupt line {line} out of range ({lines} lines)")
            }
            SocError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for SocError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SocError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(SocError::BankPowerGated { bank: 3 }
            .to_string()
            .contains('3'));
        assert!(
            SocError::MissingHalt.to_string().contains("halt")
                || SocError::MissingHalt.to_string().contains("ran past")
        );
        assert!(SocError::InvalidIrqLine { line: 9, lines: 8 }
            .to_string()
            .contains('9'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<SocError>();
    }
}
