//! Label-aware assembler for CPU programs.
//!
//! The baseline kernels in [`super::kernels`] are hand-written assembly; the
//! assembler provides forward/backward labels so loop structures read
//! naturally and branch targets are resolved once at build time.

use super::CpuInstr;
use crate::error::{Result, SocError};

/// A position in the program that can be branched to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuLabel(usize);

/// Condition used by [`CpuAsm::branch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less than (signed).
    Lt,
    /// Branch if greater than or equal (signed).
    Ge,
}

/// Assembler accumulating instructions and resolving labels.
///
/// # Example
///
/// ```
/// use vwr2a_soc::cpu::asm::{CpuAsm, BranchCond};
/// use vwr2a_soc::cpu::{Cpu, CpuInstr};
/// use vwr2a_soc::sram::Sram;
///
/// # fn main() -> Result<(), vwr2a_soc::error::SocError> {
/// // Compute 10! iteratively.
/// let mut a = CpuAsm::new();
/// a.push(CpuInstr::Li { rd: 1, imm: 1 });  // acc
/// a.push(CpuInstr::Li { rd: 2, imm: 1 });  // i
/// a.push(CpuInstr::Li { rd: 3, imm: 11 }); // bound
/// let top = a.new_label();
/// a.bind(top);
/// a.push(CpuInstr::Mul { rd: 1, rs1: 1, rs2: 2 });
/// a.push(CpuInstr::Addi { rd: 2, rs1: 2, imm: 1 });
/// a.branch(BranchCond::Lt, 2, 3, top);
/// a.push(CpuInstr::Halt);
/// let program = a.build()?;
///
/// let mut cpu = Cpu::new();
/// let mut sram = Sram::paper();
/// cpu.run(&program, &mut sram)?;
/// assert_eq!(cpu.reg(1)?, 3_628_800);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CpuAsm {
    instrs: Vec<CpuInstr>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, CpuLabel)>,
}

impl CpuAsm {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Creates an unbound label.
    pub fn new_label(&mut self) -> CpuLabel {
        self.labels.push(None);
        CpuLabel(self.labels.len() - 1)
    }

    /// Binds a label to the next instruction to be pushed.
    pub fn bind(&mut self, label: CpuLabel) {
        self.labels[label.0] = Some(self.instrs.len());
    }

    /// Appends an instruction, returning its index.
    pub fn push(&mut self, instr: CpuInstr) -> usize {
        self.instrs.push(instr);
        self.instrs.len() - 1
    }

    /// Appends a conditional branch to `label`.
    pub fn branch(&mut self, cond: BranchCond, rs1: u8, rs2: u8, label: CpuLabel) -> usize {
        let instr = match cond {
            BranchCond::Eq => CpuInstr::Beq {
                rs1,
                rs2,
                target: 0,
            },
            BranchCond::Ne => CpuInstr::Bne {
                rs1,
                rs2,
                target: 0,
            },
            BranchCond::Lt => CpuInstr::Blt {
                rs1,
                rs2,
                target: 0,
            },
            BranchCond::Ge => CpuInstr::Bge {
                rs1,
                rs2,
                target: 0,
            },
        };
        let idx = self.push(instr);
        self.fixups.push((idx, label));
        idx
    }

    /// Appends an unconditional jump to `label`.
    pub fn jump(&mut self, label: CpuLabel) -> usize {
        let idx = self.push(CpuInstr::Jump { target: 0 });
        self.fixups.push((idx, label));
        idx
    }

    /// Resolves labels and returns the program.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidBranchTarget`] if a label is unbound or
    /// bound past the end of the program.
    pub fn build(mut self) -> Result<Vec<CpuInstr>> {
        for (idx, label) in &self.fixups {
            let target = self.labels[label.0].ok_or(SocError::InvalidBranchTarget {
                target: usize::MAX,
                len: self.instrs.len(),
            })?;
            if target >= self.instrs.len() {
                return Err(SocError::InvalidBranchTarget {
                    target,
                    len: self.instrs.len(),
                });
            }
            match &mut self.instrs[*idx] {
                CpuInstr::Beq { target: t, .. }
                | CpuInstr::Bne { target: t, .. }
                | CpuInstr::Blt { target: t, .. }
                | CpuInstr::Bge { target: t, .. }
                | CpuInstr::Jump { target: t } => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        Ok(self.instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;
    use crate::sram::Sram;

    #[test]
    fn forward_and_backward_labels() {
        let mut a = CpuAsm::new();
        let skip = a.new_label();
        a.push(CpuInstr::Li { rd: 1, imm: 1 });
        a.jump(skip);
        a.push(CpuInstr::Li { rd: 1, imm: 99 }); // skipped
        a.bind(skip);
        a.push(CpuInstr::Halt);
        let program = a.build().unwrap();
        let mut cpu = Cpu::new();
        let mut sram = Sram::new(1, 1024);
        cpu.run(&program, &mut sram).unwrap();
        assert_eq!(cpu.reg(1).unwrap(), 1);
    }

    #[test]
    fn unbound_label_is_error() {
        let mut a = CpuAsm::new();
        let l = a.new_label();
        a.jump(l);
        a.push(CpuInstr::Halt);
        assert!(a.build().is_err());
    }

    #[test]
    fn label_past_end_is_error() {
        let mut a = CpuAsm::new();
        let l = a.new_label();
        a.jump(l);
        a.bind(l);
        assert!(a.build().is_err());
    }

    #[test]
    fn len_and_empty() {
        let mut a = CpuAsm::new();
        assert!(a.is_empty());
        a.push(CpuInstr::Halt);
        assert_eq!(a.len(), 1);
    }
}
