//! Cortex-M4-like scalar CPU instruction-set simulator.
//!
//! The paper's CPU baseline is the platform's ARM Cortex-M4F running
//! CMSIS-DSP kernels on 16-bit `q15` data (Sec. 4.1, 5.1).  We do not have
//! the core RTL, so the substitute is a small in-order scalar ISS with a
//! RISC-like instruction set and an M4-style cycle model: single-cycle ALU
//! and multiply-accumulate, pipelined loads/stores, and a pipeline-refill
//! penalty on taken branches.  The baseline kernels of the paper (FIR, FFT,
//! delineation, feature extraction, SVM) are written against this ISA in
//! [`kernels`]; their outputs are validated against the `vwr2a-dsp` golden
//! models and their cycle counts provide the CPU columns of Tables 2, 4
//! and 5.
//!
//! The register file has 32 entries — more than the M4's 13 general
//! registers — because register pressure, not count, is what the cycle model
//! needs to approximate and the extra registers keep the hand-written
//! kernels readable.

pub mod asm;
pub mod kernels;

use crate::error::{Result, SocError};
use crate::sram::Sram;
use serde::{Deserialize, Serialize};

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 32;

/// One CPU instruction.
///
/// Memory operands are 32-bit **word** addresses into the SoC SRAM
/// (`address = reg[rs1] + offset`); `q15` samples occupy one word each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CpuInstr {
    /// `rd = imm`
    Li {
        /// Destination register.
        rd: u8,
        /// Immediate value.
        imm: i32,
    },
    /// `rd = rs`
    Mv {
        /// Destination register.
        rd: u8,
        /// Source register.
        rs: u8,
    },
    /// `rd = rs1 + rs2` (wrapping)
    Add {
        /// Destination register.
        rd: u8,
        /// First operand.
        rs1: u8,
        /// Second operand.
        rs2: u8,
    },
    /// `rd = rs1 + imm` (wrapping)
    Addi {
        /// Destination register.
        rd: u8,
        /// First operand.
        rs1: u8,
        /// Immediate.
        imm: i32,
    },
    /// `rd = rs1 - rs2` (wrapping)
    Sub {
        /// Destination register.
        rd: u8,
        /// First operand.
        rs1: u8,
        /// Second operand.
        rs2: u8,
    },
    /// `rd = rs1 * rs2` (low 32 bits)
    Mul {
        /// Destination register.
        rd: u8,
        /// First operand.
        rs1: u8,
        /// Second operand.
        rs2: u8,
    },
    /// `rd = rd + rs1 * rs2` (multiply-accumulate, single cycle on the M4)
    Mla {
        /// Destination and accumulator register.
        rd: u8,
        /// First operand.
        rs1: u8,
        /// Second operand.
        rs2: u8,
    },
    /// `rd = rs1 / rs2` (signed, truncating; result 0 when `rs2 == 0`,
    /// matching the M4's `SDIV` with the divide-by-zero trap disabled)
    Div {
        /// Destination register.
        rd: u8,
        /// Dividend.
        rs1: u8,
        /// Divisor.
        rs2: u8,
    },
    /// `rd = rs1 & rs2`
    And {
        /// Destination register.
        rd: u8,
        /// First operand.
        rs1: u8,
        /// Second operand.
        rs2: u8,
    },
    /// `rd = rs1 | rs2`
    Or {
        /// Destination register.
        rd: u8,
        /// First operand.
        rs1: u8,
        /// Second operand.
        rs2: u8,
    },
    /// `rd = rs1 ^ rs2`
    Xor {
        /// Destination register.
        rd: u8,
        /// First operand.
        rs1: u8,
        /// Second operand.
        rs2: u8,
    },
    /// `rd = rs1 << shamt` (logical)
    Sll {
        /// Destination register.
        rd: u8,
        /// Operand.
        rs1: u8,
        /// Shift amount (0–31).
        shamt: u8,
    },
    /// `rd = rs1 >> shamt` (logical)
    Srl {
        /// Destination register.
        rd: u8,
        /// Operand.
        rs1: u8,
        /// Shift amount (0–31).
        shamt: u8,
    },
    /// `rd = rs1 >> shamt` (arithmetic)
    Sra {
        /// Destination register.
        rd: u8,
        /// Operand.
        rs1: u8,
        /// Shift amount (0–31).
        shamt: u8,
    },
    /// `rd = (rs1 < rs2) ? 1 : 0` (signed)
    Slt {
        /// Destination register.
        rd: u8,
        /// First operand.
        rs1: u8,
        /// Second operand.
        rs2: u8,
    },
    /// Signed saturation of `rs` to `bits` bits (like ARM `SSAT`).
    Ssat {
        /// Destination register.
        rd: u8,
        /// Source register.
        rs: u8,
        /// Saturation width in bits (1–32).
        bits: u8,
    },
    /// `rd = sram[reg[rs1] + offset]`
    Lw {
        /// Destination register.
        rd: u8,
        /// Base address register.
        rs1: u8,
        /// Word offset.
        offset: i32,
    },
    /// `sram[reg[rs1] + offset] = reg[rs2]`
    Sw {
        /// Value register.
        rs2: u8,
        /// Base address register.
        rs1: u8,
        /// Word offset.
        offset: i32,
    },
    /// Branch to `target` if `rs1 == rs2`.
    Beq {
        /// First operand.
        rs1: u8,
        /// Second operand.
        rs2: u8,
        /// Target instruction index.
        target: usize,
    },
    /// Branch to `target` if `rs1 != rs2`.
    Bne {
        /// First operand.
        rs1: u8,
        /// Second operand.
        rs2: u8,
        /// Target instruction index.
        target: usize,
    },
    /// Branch to `target` if `rs1 < rs2` (signed).
    Blt {
        /// First operand.
        rs1: u8,
        /// Second operand.
        rs2: u8,
        /// Target instruction index.
        target: usize,
    },
    /// Branch to `target` if `rs1 >= rs2` (signed).
    Bge {
        /// First operand.
        rs1: u8,
        /// Second operand.
        rs2: u8,
        /// Target instruction index.
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Stop execution.
    Halt,
}

/// Cycle-cost parameters of the CPU model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Cycles for ALU, move and compare instructions.
    pub alu_cycles: u64,
    /// Cycles for multiply and multiply-accumulate.
    pub mul_cycles: u64,
    /// Cycles for a signed division (the M4's `SDIV` takes 2–12 cycles).
    pub div_cycles: u64,
    /// Cycles for a load or store (pipelined back-to-back accesses on the
    /// M4 effectively cost 1–2 cycles each).
    pub mem_cycles: u64,
    /// Cycles for a non-taken branch.
    pub branch_cycles: u64,
    /// Cycles for a taken branch or jump (pipeline refill).
    pub taken_branch_cycles: u64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self {
            alu_cycles: 1,
            mul_cycles: 1,
            div_cycles: 7,
            mem_cycles: 2,
            branch_cycles: 1,
            taken_branch_cycles: 3,
        }
    }
}

/// Execution statistics of one CPU program run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CpuRunStats {
    /// Total cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// ALU operations (including moves and compares).
    pub alu_ops: u64,
    /// Multiplications / multiply-accumulates.
    pub mul_ops: u64,
    /// Word loads.
    pub loads: u64,
    /// Word stores.
    pub stores: u64,
    /// Branch instructions executed.
    pub branches: u64,
    /// Branches that were taken.
    pub taken_branches: u64,
}

/// The CPU instruction-set simulator.
///
/// # Example
///
/// ```
/// use vwr2a_soc::cpu::{Cpu, CpuInstr};
/// use vwr2a_soc::sram::Sram;
///
/// # fn main() -> Result<(), vwr2a_soc::error::SocError> {
/// let mut cpu = Cpu::new();
/// let mut sram = Sram::paper();
/// // sram[10] = 2 + 40
/// let program = vec![
///     CpuInstr::Li { rd: 1, imm: 2 },
///     CpuInstr::Addi { rd: 1, rs1: 1, imm: 40 },
///     CpuInstr::Li { rd: 2, imm: 10 },
///     CpuInstr::Sw { rs2: 1, rs1: 2, offset: 0 },
///     CpuInstr::Halt,
/// ];
/// let stats = cpu.run(&program, &mut sram)?;
/// assert_eq!(sram.dump(10, 1)?[0], 42);
/// assert!(stats.cycles >= 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cpu {
    regs: [i32; NUM_REGS],
    config: CpuConfig,
    cycle_limit: u64,
}

impl Cpu {
    /// Creates a CPU with the default (M4-like) cycle model.
    pub fn new() -> Self {
        Self::with_config(CpuConfig::default())
    }

    /// Creates a CPU with a custom cycle model.
    pub fn with_config(config: CpuConfig) -> Self {
        Self {
            regs: [0; NUM_REGS],
            config,
            cycle_limit: 500_000_000,
        }
    }

    /// The cycle-cost configuration.
    pub fn config(&self) -> CpuConfig {
        self.config
    }

    /// Sets the cycle budget after which [`SocError::CycleLimitExceeded`] is
    /// reported.
    pub fn set_cycle_limit(&mut self, limit: u64) {
        self.cycle_limit = limit;
    }

    /// Reads a register (test/debug access).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidRegister`] for an out-of-range index.
    pub fn reg(&self, index: usize) -> Result<i32> {
        self.regs
            .get(index)
            .copied()
            .ok_or(SocError::InvalidRegister { reg: index })
    }

    /// Writes a register (used to pass arguments to a program).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidRegister`] for an out-of-range index.
    pub fn set_reg(&mut self, index: usize, value: i32) -> Result<()> {
        match self.regs.get_mut(index) {
            Some(r) => {
                *r = value;
                Ok(())
            }
            None => Err(SocError::InvalidRegister { reg: index }),
        }
    }

    fn r(&self, idx: u8) -> Result<i32> {
        self.reg(idx as usize)
    }

    fn w(&mut self, idx: u8, value: i32) -> Result<()> {
        self.set_reg(idx as usize, value)
    }

    /// Runs a program to completion (`Halt`), starting at instruction 0 with
    /// the current register contents.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::MissingHalt`] if execution runs past the last
    /// instruction, [`SocError::InvalidBranchTarget`] for a bad target,
    /// [`SocError::CycleLimitExceeded`] if the cycle budget is exhausted, or
    /// memory errors from the SRAM.
    pub fn run(&mut self, program: &[CpuInstr], sram: &mut Sram) -> Result<CpuRunStats> {
        let mut stats = CpuRunStats::default();
        let mut pc = 0usize;
        let cfg = self.config;
        loop {
            let instr = *program.get(pc).ok_or(SocError::MissingHalt)?;
            stats.instructions += 1;
            let mut next_pc = pc + 1;
            match instr {
                CpuInstr::Li { rd, imm } => {
                    self.w(rd, imm)?;
                    stats.alu_ops += 1;
                    stats.cycles += cfg.alu_cycles;
                }
                CpuInstr::Mv { rd, rs } => {
                    let v = self.r(rs)?;
                    self.w(rd, v)?;
                    stats.alu_ops += 1;
                    stats.cycles += cfg.alu_cycles;
                }
                CpuInstr::Add { rd, rs1, rs2 } => {
                    let v = self.r(rs1)?.wrapping_add(self.r(rs2)?);
                    self.w(rd, v)?;
                    stats.alu_ops += 1;
                    stats.cycles += cfg.alu_cycles;
                }
                CpuInstr::Addi { rd, rs1, imm } => {
                    let v = self.r(rs1)?.wrapping_add(imm);
                    self.w(rd, v)?;
                    stats.alu_ops += 1;
                    stats.cycles += cfg.alu_cycles;
                }
                CpuInstr::Sub { rd, rs1, rs2 } => {
                    let v = self.r(rs1)?.wrapping_sub(self.r(rs2)?);
                    self.w(rd, v)?;
                    stats.alu_ops += 1;
                    stats.cycles += cfg.alu_cycles;
                }
                CpuInstr::Mul { rd, rs1, rs2 } => {
                    let v = self.r(rs1)?.wrapping_mul(self.r(rs2)?);
                    self.w(rd, v)?;
                    stats.mul_ops += 1;
                    stats.cycles += cfg.mul_cycles;
                }
                CpuInstr::Mla { rd, rs1, rs2 } => {
                    let v = self
                        .r(rd)?
                        .wrapping_add(self.r(rs1)?.wrapping_mul(self.r(rs2)?));
                    self.w(rd, v)?;
                    stats.mul_ops += 1;
                    stats.cycles += cfg.mul_cycles;
                }
                CpuInstr::Div { rd, rs1, rs2 } => {
                    let b = self.r(rs2)?;
                    let v = if b == 0 {
                        0
                    } else {
                        self.r(rs1)?.wrapping_div(b)
                    };
                    self.w(rd, v)?;
                    stats.mul_ops += 1;
                    stats.cycles += cfg.div_cycles;
                }
                CpuInstr::And { rd, rs1, rs2 } => {
                    let v = self.r(rs1)? & self.r(rs2)?;
                    self.w(rd, v)?;
                    stats.alu_ops += 1;
                    stats.cycles += cfg.alu_cycles;
                }
                CpuInstr::Or { rd, rs1, rs2 } => {
                    let v = self.r(rs1)? | self.r(rs2)?;
                    self.w(rd, v)?;
                    stats.alu_ops += 1;
                    stats.cycles += cfg.alu_cycles;
                }
                CpuInstr::Xor { rd, rs1, rs2 } => {
                    let v = self.r(rs1)? ^ self.r(rs2)?;
                    self.w(rd, v)?;
                    stats.alu_ops += 1;
                    stats.cycles += cfg.alu_cycles;
                }
                CpuInstr::Sll { rd, rs1, shamt } => {
                    let v = ((self.r(rs1)? as u32) << (shamt & 31)) as i32;
                    self.w(rd, v)?;
                    stats.alu_ops += 1;
                    stats.cycles += cfg.alu_cycles;
                }
                CpuInstr::Srl { rd, rs1, shamt } => {
                    let v = ((self.r(rs1)? as u32) >> (shamt & 31)) as i32;
                    self.w(rd, v)?;
                    stats.alu_ops += 1;
                    stats.cycles += cfg.alu_cycles;
                }
                CpuInstr::Sra { rd, rs1, shamt } => {
                    let v = self.r(rs1)? >> (shamt & 31);
                    self.w(rd, v)?;
                    stats.alu_ops += 1;
                    stats.cycles += cfg.alu_cycles;
                }
                CpuInstr::Slt { rd, rs1, rs2 } => {
                    let v = i32::from(self.r(rs1)? < self.r(rs2)?);
                    self.w(rd, v)?;
                    stats.alu_ops += 1;
                    stats.cycles += cfg.alu_cycles;
                }
                CpuInstr::Ssat { rd, rs, bits } => {
                    let bits = bits.clamp(1, 32) as u32;
                    let max = if bits == 32 {
                        i32::MAX as i64
                    } else {
                        (1i64 << (bits - 1)) - 1
                    };
                    let min = if bits == 32 {
                        i32::MIN as i64
                    } else {
                        -(1i64 << (bits - 1))
                    };
                    let v = (self.r(rs)? as i64).clamp(min, max) as i32;
                    self.w(rd, v)?;
                    stats.alu_ops += 1;
                    stats.cycles += cfg.alu_cycles;
                }
                CpuInstr::Lw { rd, rs1, offset } => {
                    let addr = self.r(rs1)?.wrapping_add(offset);
                    if addr < 0 {
                        return Err(SocError::AddressOutOfRange {
                            addr: addr as usize,
                            capacity: sram.words(),
                        });
                    }
                    let v = sram.read_word(addr as usize)?;
                    self.w(rd, v)?;
                    stats.loads += 1;
                    stats.cycles += cfg.mem_cycles;
                }
                CpuInstr::Sw { rs2, rs1, offset } => {
                    let addr = self.r(rs1)?.wrapping_add(offset);
                    if addr < 0 {
                        return Err(SocError::AddressOutOfRange {
                            addr: addr as usize,
                            capacity: sram.words(),
                        });
                    }
                    sram.write_word(addr as usize, self.r(rs2)?)?;
                    stats.stores += 1;
                    stats.cycles += cfg.mem_cycles;
                }
                CpuInstr::Beq { rs1, rs2, target }
                | CpuInstr::Bne { rs1, rs2, target }
                | CpuInstr::Blt { rs1, rs2, target }
                | CpuInstr::Bge { rs1, rs2, target } => {
                    let a = self.r(rs1)?;
                    let b = self.r(rs2)?;
                    let taken = match instr {
                        CpuInstr::Beq { .. } => a == b,
                        CpuInstr::Bne { .. } => a != b,
                        CpuInstr::Blt { .. } => a < b,
                        _ => a >= b,
                    };
                    stats.branches += 1;
                    if taken {
                        if target >= program.len() {
                            return Err(SocError::InvalidBranchTarget {
                                target,
                                len: program.len(),
                            });
                        }
                        stats.taken_branches += 1;
                        stats.cycles += cfg.taken_branch_cycles;
                        next_pc = target;
                    } else {
                        stats.cycles += cfg.branch_cycles;
                    }
                }
                CpuInstr::Jump { target } => {
                    if target >= program.len() {
                        return Err(SocError::InvalidBranchTarget {
                            target,
                            len: program.len(),
                        });
                    }
                    stats.branches += 1;
                    stats.taken_branches += 1;
                    stats.cycles += cfg.taken_branch_cycles;
                    next_pc = target;
                }
                CpuInstr::Halt => {
                    stats.cycles += cfg.alu_cycles;
                    return Ok(stats);
                }
            }
            if stats.cycles > self.cycle_limit {
                return Err(SocError::CycleLimitExceeded {
                    limit: self.cycle_limit,
                });
            }
            pc = next_pc;
        }
    }
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_program(program: &[CpuInstr]) -> (Cpu, Sram, CpuRunStats) {
        let mut cpu = Cpu::new();
        let mut sram = Sram::new(1, 64 * 1024);
        let stats = cpu.run(program, &mut sram).unwrap();
        (cpu, sram, stats)
    }

    #[test]
    fn arithmetic_and_logic() {
        let program = vec![
            CpuInstr::Li { rd: 1, imm: 6 },
            CpuInstr::Li { rd: 2, imm: 7 },
            CpuInstr::Mul {
                rd: 3,
                rs1: 1,
                rs2: 2,
            },
            CpuInstr::Mla {
                rd: 3,
                rs1: 1,
                rs2: 2,
            },
            CpuInstr::Sub {
                rd: 4,
                rs1: 3,
                rs2: 1,
            },
            CpuInstr::And {
                rd: 5,
                rs1: 3,
                rs2: 2,
            },
            CpuInstr::Or {
                rd: 6,
                rs1: 5,
                rs2: 1,
            },
            CpuInstr::Xor {
                rd: 7,
                rs1: 6,
                rs2: 6,
            },
            CpuInstr::Sll {
                rd: 8,
                rs1: 2,
                shamt: 4,
            },
            CpuInstr::Sra {
                rd: 9,
                rs1: 8,
                shamt: 2,
            },
            CpuInstr::Slt {
                rd: 10,
                rs1: 1,
                rs2: 2,
            },
            CpuInstr::Ssat {
                rd: 11,
                rs: 8,
                bits: 6,
            },
            CpuInstr::Halt,
        ];
        let (cpu, _, stats) = run_program(&program);
        assert_eq!(cpu.reg(3).unwrap(), 84);
        assert_eq!(cpu.reg(4).unwrap(), 78);
        assert_eq!(cpu.reg(5).unwrap(), 84 & 7);
        assert_eq!(cpu.reg(7).unwrap(), 0);
        assert_eq!(cpu.reg(8).unwrap(), 112);
        assert_eq!(cpu.reg(9).unwrap(), 28);
        assert_eq!(cpu.reg(10).unwrap(), 1);
        assert_eq!(cpu.reg(11).unwrap(), 31, "saturated to 6-bit max");
        assert_eq!(stats.mul_ops, 2);
        assert_eq!(stats.instructions, 13);
    }

    #[test]
    fn loads_stores_and_loop() {
        // Sum sram[0..10] into r3.
        let program = vec![
            CpuInstr::Li { rd: 1, imm: 0 },  // i
            CpuInstr::Li { rd: 2, imm: 10 }, // n
            CpuInstr::Li { rd: 3, imm: 0 },  // acc
            // loop:
            CpuInstr::Lw {
                rd: 4,
                rs1: 1,
                offset: 0,
            },
            CpuInstr::Add {
                rd: 3,
                rs1: 3,
                rs2: 4,
            },
            CpuInstr::Addi {
                rd: 1,
                rs1: 1,
                imm: 1,
            },
            CpuInstr::Blt {
                rs1: 1,
                rs2: 2,
                target: 3,
            },
            CpuInstr::Halt,
        ];
        let mut cpu = Cpu::new();
        let mut sram = Sram::new(1, 4096);
        sram.load(0, &(1..=10).collect::<Vec<i32>>()).unwrap();
        let stats = cpu.run(&program, &mut sram).unwrap();
        assert_eq!(cpu.reg(3).unwrap(), 55);
        assert_eq!(stats.loads, 10);
        assert_eq!(stats.taken_branches, 9);
        assert_eq!(stats.branches, 10);
    }

    #[test]
    fn cycle_model_weights_memory_and_branches() {
        let cfg = CpuConfig::default();
        let program = vec![
            CpuInstr::Li { rd: 1, imm: 5 },
            CpuInstr::Sw {
                rs2: 1,
                rs1: 0,
                offset: 0,
            },
            CpuInstr::Lw {
                rd: 2,
                rs1: 0,
                offset: 0,
            },
            CpuInstr::Jump { target: 4 },
            CpuInstr::Halt,
        ];
        let (_, _, stats) = run_program(&program);
        assert_eq!(
            stats.cycles,
            cfg.alu_cycles + 2 * cfg.mem_cycles + cfg.taken_branch_cycles + cfg.alu_cycles
        );
    }

    #[test]
    fn missing_halt_and_bad_targets_are_errors() {
        let mut cpu = Cpu::new();
        let mut sram = Sram::new(1, 1024);
        assert!(matches!(
            cpu.run(&[CpuInstr::Li { rd: 1, imm: 0 }], &mut sram),
            Err(SocError::MissingHalt)
        ));
        assert!(matches!(
            cpu.run(&[CpuInstr::Jump { target: 9 }], &mut sram),
            Err(SocError::InvalidBranchTarget { .. })
        ));
    }

    #[test]
    fn cycle_limit_detects_infinite_loops() {
        let mut cpu = Cpu::new();
        cpu.set_cycle_limit(1000);
        let mut sram = Sram::new(1, 1024);
        let program = vec![CpuInstr::Jump { target: 0 }, CpuInstr::Halt];
        assert!(matches!(
            cpu.run(&program, &mut sram),
            Err(SocError::CycleLimitExceeded { .. })
        ));
    }

    #[test]
    fn invalid_register_rejected() {
        let mut cpu = Cpu::new();
        assert!(cpu.set_reg(40, 1).is_err());
        assert!(cpu.reg(99).is_err());
    }

    #[test]
    fn negative_address_rejected() {
        let mut cpu = Cpu::new();
        let mut sram = Sram::new(1, 1024);
        let program = vec![
            CpuInstr::Lw {
                rd: 1,
                rs1: 0,
                offset: -5,
            },
            CpuInstr::Halt,
        ];
        assert!(cpu.run(&program, &mut sram).is_err());
    }
}
