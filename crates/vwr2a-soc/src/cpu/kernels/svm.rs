//! CPU baseline: linear SVM inference.
//!
//! The final step of MBioTracker estimates the cognitive workload with an
//! SVM over the extracted features (Sec. 4.4.2).  On the embedded platform
//! only inference runs: a dot product of the feature vector with the trained
//! weights, a bias and a sign.

use crate::cpu::asm::{BranchCond, CpuAsm};
use crate::cpu::CpuInstr;
use crate::error::Result;

/// Builds the linear-SVM inference program.
///
/// Memory layout (word addresses):
/// * `features_addr..features_addr+n` — feature vector,
/// * `weights_addr..weights_addr+n` — weights (same fixed-point scale as the
///   features; the decision only depends on the sign so the scale cancels),
/// * `out_addr` — decision value (`Σ wᵢ·xᵢ + bias`),
/// * `out_addr + 1` — class label (`1` or `-1`).
///
/// # Errors
///
/// Returns an assembler error only on an internal generator bug.
///
/// # Example
///
/// ```
/// use vwr2a_soc::cpu::kernels::svm_program;
/// assert!(!svm_program(10, 0, 0, 16, 32).unwrap().is_empty());
/// ```
pub fn svm_program(
    n: usize,
    bias: i32,
    features_addr: usize,
    weights_addr: usize,
    out_addr: usize,
) -> Result<Vec<CpuInstr>> {
    const ZERO: u8 = 0;
    const FEAT: u8 = 1;
    const W: u8 = 2;
    const N: u8 = 3;
    const I: u8 = 4;
    const ACC: u8 = 5;
    const T0: u8 = 6;
    const T1: u8 = 7;
    const T2: u8 = 8;
    const OUT: u8 = 9;
    const LABEL: u8 = 10;

    let mut a = CpuAsm::new();
    a.push(CpuInstr::Li { rd: ZERO, imm: 0 });
    a.push(CpuInstr::Li {
        rd: FEAT,
        imm: features_addr as i32,
    });
    a.push(CpuInstr::Li {
        rd: W,
        imm: weights_addr as i32,
    });
    a.push(CpuInstr::Li {
        rd: N,
        imm: n as i32,
    });
    a.push(CpuInstr::Li {
        rd: OUT,
        imm: out_addr as i32,
    });
    a.push(CpuInstr::Li { rd: I, imm: 0 });
    a.push(CpuInstr::Li { rd: ACC, imm: bias });
    let loop_top = a.new_label();
    a.bind(loop_top);
    a.push(CpuInstr::Add {
        rd: T0,
        rs1: FEAT,
        rs2: I,
    });
    a.push(CpuInstr::Lw {
        rd: T1,
        rs1: T0,
        offset: 0,
    });
    a.push(CpuInstr::Add {
        rd: T0,
        rs1: W,
        rs2: I,
    });
    a.push(CpuInstr::Lw {
        rd: T2,
        rs1: T0,
        offset: 0,
    });
    a.push(CpuInstr::Mla {
        rd: ACC,
        rs1: T1,
        rs2: T2,
    });
    a.push(CpuInstr::Addi {
        rd: I,
        rs1: I,
        imm: 1,
    });
    a.branch(BranchCond::Lt, I, N, loop_top);
    // label = acc >= 0 ? 1 : -1
    a.push(CpuInstr::Li { rd: LABEL, imm: 1 });
    let positive = a.new_label();
    a.branch(BranchCond::Ge, ACC, ZERO, positive);
    a.push(CpuInstr::Li { rd: LABEL, imm: -1 });
    a.bind(positive);
    a.push(CpuInstr::Sw {
        rs2: ACC,
        rs1: OUT,
        offset: 0,
    });
    a.push(CpuInstr::Sw {
        rs2: LABEL,
        rs1: OUT,
        offset: 1,
    });
    a.push(CpuInstr::Halt);
    a.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;
    use crate::sram::Sram;

    fn classify(features: &[i32], weights: &[i32], bias: i32) -> (i32, i32) {
        let n = features.len();
        let program = svm_program(n, bias, 0, 64, 128).unwrap();
        let mut cpu = Cpu::new();
        let mut sram = Sram::paper();
        sram.load(0, features).unwrap();
        sram.load(64, weights).unwrap();
        cpu.run(&program, &mut sram).unwrap();
        let out = sram.dump(128, 2).unwrap();
        (out[0], out[1])
    }

    #[test]
    fn decision_and_label_match_dot_product() {
        let features = vec![10, -20, 30];
        let weights = vec![3, 2, 1];
        let bias = -5;
        let (decision, label) = classify(&features, &weights, bias);
        assert_eq!(decision, 10 * 3 - 20 * 2 + 30 - 5);
        assert_eq!(label, 1);

        let (decision, label) = classify(&[1, 1, 1], &[-10, 0, 0], 2);
        assert_eq!(decision, -8);
        assert_eq!(label, -1);
    }

    #[test]
    fn zero_decision_is_positive_class() {
        let (decision, label) = classify(&[5], &[0], 0);
        assert_eq!(decision, 0);
        assert_eq!(label, 1);
    }
}
