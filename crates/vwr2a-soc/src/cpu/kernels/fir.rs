//! CPU baseline: direct-form FIR filter on `q15` samples.
//!
//! Matches `vwr2a_dsp::fir::fir_q15`: a 32-bit accumulator over the taps,
//! shifted right by 15 and saturated to 16 bits per output sample, with zero
//! initial state.

use crate::cpu::asm::{BranchCond, CpuAsm};
use crate::cpu::CpuInstr;
use crate::error::Result;

/// Builds the FIR program.
///
/// Memory layout (all word addresses, one `q15` value per word):
/// * `input_addr..input_addr+n` — input samples,
/// * `taps_addr..taps_addr+taps` — filter coefficients,
/// * `output_addr..output_addr+n` — output samples (written).
///
/// # Errors
///
/// Returns an assembler error only if the generated program is internally
/// inconsistent, which would be a bug in this generator.
///
/// # Example
///
/// ```
/// use vwr2a_soc::cpu::kernels::fir_q15_program;
/// let program = fir_q15_program(256, 11, 0, 256, 512).unwrap();
/// assert!(!program.is_empty());
/// ```
pub fn fir_q15_program(
    n: usize,
    taps: usize,
    input_addr: usize,
    taps_addr: usize,
    output_addr: usize,
) -> Result<Vec<CpuInstr>> {
    // Register allocation.
    const ZERO: u8 = 0;
    const IN: u8 = 1;
    const OUT: u8 = 2;
    const TAPS: u8 = 3;
    const N: u8 = 4;
    const NTAPS: u8 = 5;
    const I: u8 = 6;
    const ACC: u8 = 7;
    const K: u8 = 8;
    const KMAX: u8 = 9;
    const T0: u8 = 10;
    const T1: u8 = 11;
    const T2: u8 = 12;
    const T3: u8 = 13;

    let mut a = CpuAsm::new();
    a.push(CpuInstr::Li { rd: ZERO, imm: 0 });
    a.push(CpuInstr::Li {
        rd: IN,
        imm: input_addr as i32,
    });
    a.push(CpuInstr::Li {
        rd: OUT,
        imm: output_addr as i32,
    });
    a.push(CpuInstr::Li {
        rd: TAPS,
        imm: taps_addr as i32,
    });
    a.push(CpuInstr::Li {
        rd: N,
        imm: n as i32,
    });
    a.push(CpuInstr::Li {
        rd: NTAPS,
        imm: taps as i32,
    });
    a.push(CpuInstr::Li { rd: I, imm: 0 });

    let outer = a.new_label();
    a.bind(outer);
    // acc = 0; kmax = min(taps, i + 1)
    a.push(CpuInstr::Li { rd: ACC, imm: 0 });
    a.push(CpuInstr::Addi {
        rd: KMAX,
        rs1: I,
        imm: 1,
    });
    let kmax_ok = a.new_label();
    a.branch(BranchCond::Lt, KMAX, NTAPS, kmax_ok);
    a.push(CpuInstr::Mv {
        rd: KMAX,
        rs: NTAPS,
    });
    a.bind(kmax_ok);
    a.push(CpuInstr::Li { rd: K, imm: 0 });

    let inner = a.new_label();
    a.bind(inner);
    // x[i - k]
    a.push(CpuInstr::Sub {
        rd: T0,
        rs1: I,
        rs2: K,
    });
    a.push(CpuInstr::Add {
        rd: T0,
        rs1: T0,
        rs2: IN,
    });
    a.push(CpuInstr::Lw {
        rd: T1,
        rs1: T0,
        offset: 0,
    });
    // h[k]
    a.push(CpuInstr::Add {
        rd: T2,
        rs1: TAPS,
        rs2: K,
    });
    a.push(CpuInstr::Lw {
        rd: T3,
        rs1: T2,
        offset: 0,
    });
    // acc += h[k] * x[i-k]
    a.push(CpuInstr::Mla {
        rd: ACC,
        rs1: T1,
        rs2: T3,
    });
    a.push(CpuInstr::Addi {
        rd: K,
        rs1: K,
        imm: 1,
    });
    a.branch(BranchCond::Lt, K, KMAX, inner);

    // y[i] = ssat(acc >> 15, 16)
    a.push(CpuInstr::Sra {
        rd: T0,
        rs1: ACC,
        shamt: 15,
    });
    a.push(CpuInstr::Ssat {
        rd: T0,
        rs: T0,
        bits: 16,
    });
    a.push(CpuInstr::Add {
        rd: T1,
        rs1: OUT,
        rs2: I,
    });
    a.push(CpuInstr::Sw {
        rs2: T0,
        rs1: T1,
        offset: 0,
    });
    a.push(CpuInstr::Addi {
        rd: I,
        rs1: I,
        imm: 1,
    });
    a.branch(BranchCond::Lt, I, N, outer);
    a.push(CpuInstr::Halt);
    a.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;
    use crate::sram::Sram;
    use vwr2a_dsp::fir::{design_lowpass, fir_q15, PAPER_FIR_TAPS};
    use vwr2a_dsp::fixed::Q15;

    fn run_fir(n: usize) -> (Vec<i32>, Vec<Q15>) {
        let taps_f = design_lowpass(PAPER_FIR_TAPS, 0.1).unwrap();
        let taps_q: Vec<Q15> = taps_f.iter().map(|&v| Q15::from_f64(v)).collect();
        let input_f: Vec<f64> = (0..n).map(|i| 0.5 * (i as f64 * 0.07).sin()).collect();
        let input_q: Vec<Q15> = input_f.iter().map(|&v| Q15::from_f64(v)).collect();

        let input_addr = 0usize;
        let taps_addr = n;
        let output_addr = n + PAPER_FIR_TAPS;
        let program =
            fir_q15_program(n, PAPER_FIR_TAPS, input_addr, taps_addr, output_addr).unwrap();

        let mut cpu = Cpu::new();
        let mut sram = Sram::paper();
        sram.load(
            input_addr,
            &input_q.iter().map(|q| q.0 as i32).collect::<Vec<_>>(),
        )
        .unwrap();
        sram.load(
            taps_addr,
            &taps_q.iter().map(|q| q.0 as i32).collect::<Vec<_>>(),
        )
        .unwrap();
        cpu.run(&program, &mut sram).unwrap();
        let out = sram.dump(output_addr, n).unwrap();
        let expected = fir_q15(&taps_q, &input_q).unwrap();
        (out, expected)
    }

    #[test]
    fn matches_reference_bit_exactly() {
        let (out, expected) = run_fir(128);
        for (o, e) in out.iter().zip(expected.iter()) {
            assert_eq!(*o, e.0 as i32);
        }
    }

    #[test]
    fn cycle_count_scales_linearly_with_input_size() {
        let cycles = |n: usize| {
            let taps_q = [Q15::from_f64(0.05); PAPER_FIR_TAPS];
            let program = fir_q15_program(n, PAPER_FIR_TAPS, 0, n, n + 16).unwrap();
            let mut cpu = Cpu::new();
            let mut sram = Sram::paper();
            sram.load(n, &taps_q.iter().map(|q| q.0 as i32).collect::<Vec<_>>())
                .unwrap();
            cpu.run(&program, &mut sram).unwrap().cycles
        };
        let c256 = cycles(256);
        let c512 = cycles(512);
        let c1024 = cycles(1024);
        let r1 = c512 as f64 / c256 as f64;
        let r2 = c1024 as f64 / c512 as f64;
        assert!((r1 - 2.0).abs() < 0.1, "512/256 ratio {r1}");
        assert!((r2 - 2.0).abs() < 0.1, "1024/512 ratio {r2}");
        // Roughly the paper's order of magnitude (Table 4 reports ~24.7k
        // cycles for 256 points with 11 taps).
        assert!(c256 > 10_000 && c256 < 80_000, "c256 = {c256}");
    }
}
