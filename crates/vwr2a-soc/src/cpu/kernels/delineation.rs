//! CPU baseline: delineation of a filtered respiration signal.
//!
//! The delineation step of MBioTracker detects the maximums and minimums of
//! the filtered signal to extract inspiration and expiration times
//! (Sec. 4.4.2).  It is the paper's example of control-intensive code
//! (Sec. 5.2.2): a linear scan full of data-dependent branches, which is
//! exactly how this program is written.
//!
//! The detection policy matches `vwr2a_dsp::stats::delineate_alternating`:
//! extrema strictly alternate max/min and a new extremum is accepted only
//! when it differs from the previous one by at least the prominence
//! threshold.

use crate::cpu::asm::{BranchCond, CpuAsm};
use crate::cpu::CpuInstr;
use crate::error::Result;

/// Builds the delineation program.
///
/// Memory layout (word addresses):
/// * `signal_addr..signal_addr+n` — filtered samples (any integer scale),
/// * `out_addr..` — detected extrema as `(index, value, is_max)` triplets,
/// * `count_addr` — number of extrema found (one word, written at the end).
///
/// # Errors
///
/// Returns an assembler error only on an internal generator bug.
///
/// # Example
///
/// ```
/// use vwr2a_soc::cpu::kernels::delineation_program;
/// let program = delineation_program(512, 1000, 0, 600, 599).unwrap();
/// assert!(program.len() > 30);
/// ```
pub fn delineation_program(
    n: usize,
    min_prominence: i32,
    signal_addr: usize,
    out_addr: usize,
    count_addr: usize,
) -> Result<Vec<CpuInstr>> {
    const ZERO: u8 = 0;
    const SIG: u8 = 1;
    const OUT: u8 = 2;
    const N1: u8 = 3; // n - 1
    const I: u8 = 4;
    const COUNT: u8 = 5;
    const PROM: u8 = 6;
    const PREV: u8 = 7;
    const CUR: u8 = 8;
    const NEXT: u8 = 9;
    const ISMAX: u8 = 10;
    const ISMIN: u8 = 11;
    const LASTV: u8 = 12;
    const LASTK: u8 = 13;
    const T0: u8 = 14;
    const T1: u8 = 15;
    const PTR: u8 = 16;

    let mut a = CpuAsm::new();
    a.push(CpuInstr::Li { rd: ZERO, imm: 0 });
    a.push(CpuInstr::Li {
        rd: SIG,
        imm: signal_addr as i32,
    });
    a.push(CpuInstr::Li {
        rd: OUT,
        imm: out_addr as i32,
    });
    a.push(CpuInstr::Li {
        rd: N1,
        imm: n as i32 - 1,
    });
    a.push(CpuInstr::Li { rd: I, imm: 1 });
    a.push(CpuInstr::Li { rd: COUNT, imm: 0 });
    a.push(CpuInstr::Li {
        rd: PROM,
        imm: min_prominence,
    });
    a.push(CpuInstr::Li { rd: LASTV, imm: 0 });
    a.push(CpuInstr::Li { rd: LASTK, imm: -1 });

    let loop_top = a.new_label();
    let continue_label = a.new_label();
    let store = a.new_label();
    let first_check = a.new_label();

    a.bind(loop_top);
    // Load the prev/cur/next window.
    a.push(CpuInstr::Add {
        rd: PTR,
        rs1: SIG,
        rs2: I,
    });
    a.push(CpuInstr::Lw {
        rd: PREV,
        rs1: PTR,
        offset: -1,
    });
    a.push(CpuInstr::Lw {
        rd: CUR,
        rs1: PTR,
        offset: 0,
    });
    a.push(CpuInstr::Lw {
        rd: NEXT,
        rs1: PTR,
        offset: 1,
    });
    // is_max = (cur >= prev) && (cur > next): with t0 = cur<prev and
    // t1 = next<cur, that is exactly t0 < t1.
    a.push(CpuInstr::Slt {
        rd: T0,
        rs1: CUR,
        rs2: PREV,
    });
    a.push(CpuInstr::Slt {
        rd: T1,
        rs1: NEXT,
        rs2: CUR,
    });
    a.push(CpuInstr::Slt {
        rd: ISMAX,
        rs1: T0,
        rs2: T1,
    });
    // is_min = (cur <= prev) && (cur < next).
    a.push(CpuInstr::Slt {
        rd: T0,
        rs1: PREV,
        rs2: CUR,
    });
    a.push(CpuInstr::Slt {
        rd: T1,
        rs1: CUR,
        rs2: NEXT,
    });
    a.push(CpuInstr::Slt {
        rd: ISMIN,
        rs1: T0,
        rs2: T1,
    });
    // Not an extremum: next sample.
    a.push(CpuInstr::Or {
        rd: T0,
        rs1: ISMAX,
        rs2: ISMIN,
    });
    a.branch(BranchCond::Eq, T0, ZERO, continue_label);
    // First extremum has its own acceptance rule.
    a.branch(BranchCond::Eq, COUNT, ZERO, first_check);
    // Alternation: skip a candidate of the same kind as the last one.
    a.branch(BranchCond::Eq, LASTK, ISMAX, continue_label);
    // Prominence: |cur - last| >= prom.
    a.push(CpuInstr::Sub {
        rd: T0,
        rs1: CUR,
        rs2: LASTV,
    });
    a.push(CpuInstr::Sub {
        rd: T1,
        rs1: LASTV,
        rs2: CUR,
    });
    let absd_done = a.new_label();
    a.branch(BranchCond::Ge, T0, T1, absd_done);
    a.push(CpuInstr::Mv { rd: T0, rs: T1 });
    a.bind(absd_done);
    a.branch(BranchCond::Ge, T0, PROM, store);
    a.jump(continue_label);
    // First extremum: |cur| >= prom.
    a.bind(first_check);
    a.push(CpuInstr::Mv { rd: T0, rs: CUR });
    a.push(CpuInstr::Sub {
        rd: T1,
        rs1: ZERO,
        rs2: CUR,
    });
    let abs_done = a.new_label();
    a.branch(BranchCond::Ge, T0, T1, abs_done);
    a.push(CpuInstr::Mv { rd: T0, rs: T1 });
    a.bind(abs_done);
    a.branch(BranchCond::Ge, T0, PROM, store);
    a.jump(continue_label);
    // Store the (index, value, is_max) triplet.
    a.bind(store);
    a.push(CpuInstr::Sll {
        rd: T1,
        rs1: COUNT,
        shamt: 1,
    });
    a.push(CpuInstr::Add {
        rd: T1,
        rs1: T1,
        rs2: COUNT,
    });
    a.push(CpuInstr::Add {
        rd: T1,
        rs1: T1,
        rs2: OUT,
    });
    a.push(CpuInstr::Sw {
        rs2: I,
        rs1: T1,
        offset: 0,
    });
    a.push(CpuInstr::Sw {
        rs2: CUR,
        rs1: T1,
        offset: 1,
    });
    a.push(CpuInstr::Sw {
        rs2: ISMAX,
        rs1: T1,
        offset: 2,
    });
    a.push(CpuInstr::Addi {
        rd: COUNT,
        rs1: COUNT,
        imm: 1,
    });
    a.push(CpuInstr::Mv { rd: LASTV, rs: CUR });
    a.push(CpuInstr::Mv {
        rd: LASTK,
        rs: ISMAX,
    });
    // Loop bookkeeping.
    a.bind(continue_label);
    a.push(CpuInstr::Addi {
        rd: I,
        rs1: I,
        imm: 1,
    });
    a.branch(BranchCond::Lt, I, N1, loop_top);
    a.push(CpuInstr::Li {
        rd: T0,
        imm: count_addr as i32,
    });
    a.push(CpuInstr::Sw {
        rs2: COUNT,
        rs1: T0,
        offset: 0,
    });
    a.push(CpuInstr::Halt);
    a.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;
    use crate::sram::Sram;
    use vwr2a_dsp::stats::delineate_alternating;

    #[test]
    fn matches_reference_on_a_respiration_like_signal() {
        let n = 600;
        // Respiration-like signal: slow sine with a small ripple, scaled to
        // integers as the fixed-point pipeline would produce.
        let signal_f: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                (std::f64::consts::TAU * t / 150.0).sin()
                    + 0.05 * (std::f64::consts::TAU * t / 13.0).sin()
            })
            .collect();
        let signal_i: Vec<i32> = signal_f.iter().map(|&v| (v * 32768.0) as i32).collect();
        let prominence = 16_384; // 0.5 in the same scale

        let reference = delineate_alternating(&signal_i, prominence);

        let signal_addr = 0usize;
        let out_addr = n;
        let count_addr = n + 3 * 64;
        let program =
            delineation_program(n, prominence, signal_addr, out_addr, count_addr).unwrap();
        let mut cpu = Cpu::new();
        let mut sram = Sram::paper();
        sram.load(signal_addr, &signal_i).unwrap();
        let stats = cpu.run(&program, &mut sram).unwrap();

        let count = sram.dump(count_addr, 1).unwrap()[0] as usize;
        assert_eq!(count, reference.len(), "extrema count");
        assert!(count >= 6, "a 4-period signal should have several extrema");
        let triplets = sram.dump(out_addr, 3 * count).unwrap();
        for (e, r) in triplets.chunks(3).zip(reference.iter()) {
            assert_eq!(e[0] as usize, r.index);
            assert_eq!(e[1], r.value);
            assert_eq!(e[2] != 0, r.is_max);
        }
        // Control-intensive: far more branches than multiplies.
        assert!(stats.branches > stats.mul_ops * 10);
    }

    #[test]
    fn flat_signal_has_no_extrema() {
        let n = 100;
        let program = delineation_program(n, 10, 0, 200, 400).unwrap();
        let mut cpu = Cpu::new();
        let mut sram = Sram::paper();
        sram.load(0, &vec![5i32; n]).unwrap();
        cpu.run(&program, &mut sram).unwrap();
        assert_eq!(sram.dump(400, 1).unwrap()[0], 0);
    }
}
