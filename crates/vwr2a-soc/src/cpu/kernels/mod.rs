//! CPU baseline kernel programs.
//!
//! These are the "CPU" columns of the paper's tables: the same biosignal
//! kernels that run on VWR2A, hand-written against the scalar ISS of
//! [`crate::cpu`] on `q15` data, the way the paper's baseline uses
//! CMSIS-DSP on the Cortex-M4.  Every generator returns a plain instruction
//! vector; data layouts (word addresses in SRAM) are documented per
//! function, and each kernel is validated against the `vwr2a-dsp` golden
//! model in its module tests.
//!
//! Register convention: `r0` is initialised to zero by every program and
//! never written afterwards.

pub mod delineation;
pub mod features;
pub mod fft;
pub mod fir;
pub mod svm;

pub use delineation::delineation_program;
pub use features::{band_energy_program, isqrt_program, stats_program};
pub use fft::{cfft_q15_program, rfft_q15_program};
pub use fir::fir_q15_program;
pub use svm::svm_program;
