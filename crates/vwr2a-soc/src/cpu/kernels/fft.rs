//! CPU baseline: in-place radix-2 `q15` FFT (complex and real-valued).
//!
//! Matches `vwr2a_dsp::fft_q15`: per-stage 1/2 scaling (so an `N`-point
//! transform is scaled by `1/N`), 16-bit saturation of the twiddle products,
//! and the pack/split trick for real-valued inputs (Sec. 3.4 of the paper).
//! Data is stored interleaved — `data[2k]` is the real part and `data[2k+1]`
//! the imaginary part of sample `k` — with one `q15` value per 32-bit word.
//!
//! The twiddle tables play the role of the CMSIS constant tables; the
//! [`cfft_twiddles_q15`] / [`rfft_split_twiddles_q15`] helpers generate the
//! words the host loads into SRAM before starting the kernel.

use crate::cpu::asm::{BranchCond, CpuAsm};
use crate::cpu::CpuInstr;
use crate::error::{Result, SocError};

// Register allocation shared by the generators in this module.
const ZERO: u8 = 0;
const DATA: u8 = 1;
const TW: u8 = 2;
const N: u8 = 3;
const I: u8 = 4;
const J: u8 = 5;
const BIT: u8 = 6;
const HALF: u8 = 7;
const STEP: u8 = 8;
const LEN: u8 = 9;
const BI: u8 = 10;
const BJ: u8 = 11;
const TWI: u8 = 12;
const P1: u8 = 13;
const P2: u8 = 14;
const PW: u8 = 15;
const ARE: u8 = 16;
const AIM: u8 = 17;
const BRE: u8 = 18;
const BIM: u8 = 19;
const WRE: u8 = 20;
const WIM: u8 = 21;
const VR: u8 = 22;
const VI: u8 = 23;
const T0: u8 = 24;
const T1: u8 = 25;
const T2: u8 = 26;
const T3: u8 = 27;

fn check_power_of_two(n: usize) -> Result<()> {
    if n < 4 || !n.is_power_of_two() {
        return Err(SocError::InvalidParameter {
            what: format!("fft length must be a power of two of at least 4, got {n}"),
        });
    }
    Ok(())
}

/// `q15` twiddle table for an `n`-point forward complex FFT, interleaved
/// (`[re0, im0, re1, im1, …]`, `n` words total).
///
/// # Panics
///
/// Panics if `n` is not a power of two (host-side table generation).
pub fn cfft_twiddles_q15(n: usize) -> Vec<i32> {
    assert!(
        n.is_power_of_two(),
        "twiddle table length must be a power of two"
    );
    let tw = vwr2a_dsp::fft_q15::twiddle_table(n).expect("validated power of two");
    tw.iter()
        .flat_map(|c| [c.re.0 as i32, c.im.0 as i32])
        .collect()
}

/// `q15` split twiddles `e^{-2πik/n}` for `k = 0..=n/2`, interleaved
/// (`n + 2` words), used by the real-FFT recombination step.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn rfft_split_twiddles_q15(n: usize) -> Vec<i32> {
    assert!(
        n.is_power_of_two(),
        "twiddle table length must be a power of two"
    );
    (0..=n / 2)
        .flat_map(|k| {
            let theta = -std::f64::consts::TAU * k as f64 / n as f64;
            [
                vwr2a_dsp::fixed::Q15::from_f64(theta.cos()).0 as i32,
                vwr2a_dsp::fixed::Q15::from_f64(theta.sin()).0 as i32,
            ]
        })
        .collect()
}

/// Emits the bit-reversal permutation of `n` interleaved complex samples at
/// the address held in `DATA`.
fn emit_bit_reversal(a: &mut CpuAsm, n: usize) {
    a.push(CpuInstr::Li { rd: J, imm: 0 });
    a.push(CpuInstr::Li { rd: I, imm: 1 });
    let i_loop = a.new_label();
    a.bind(i_loop);
    a.push(CpuInstr::Li {
        rd: BIT,
        imm: (n >> 1) as i32,
    });
    let while_top = a.new_label();
    let while_end = a.new_label();
    a.bind(while_top);
    a.push(CpuInstr::And {
        rd: T0,
        rs1: J,
        rs2: BIT,
    });
    a.branch(BranchCond::Eq, T0, ZERO, while_end);
    a.push(CpuInstr::Xor {
        rd: J,
        rs1: J,
        rs2: BIT,
    });
    a.push(CpuInstr::Srl {
        rd: BIT,
        rs1: BIT,
        shamt: 1,
    });
    a.jump(while_top);
    a.bind(while_end);
    a.push(CpuInstr::Xor {
        rd: J,
        rs1: J,
        rs2: BIT,
    });
    // Swap complex elements i and j when i < j.
    let no_swap = a.new_label();
    a.branch(BranchCond::Ge, I, J, no_swap);
    a.push(CpuInstr::Sll {
        rd: T0,
        rs1: I,
        shamt: 1,
    });
    a.push(CpuInstr::Add {
        rd: T0,
        rs1: T0,
        rs2: DATA,
    });
    a.push(CpuInstr::Sll {
        rd: T1,
        rs1: J,
        shamt: 1,
    });
    a.push(CpuInstr::Add {
        rd: T1,
        rs1: T1,
        rs2: DATA,
    });
    a.push(CpuInstr::Lw {
        rd: T2,
        rs1: T0,
        offset: 0,
    });
    a.push(CpuInstr::Lw {
        rd: T3,
        rs1: T1,
        offset: 0,
    });
    a.push(CpuInstr::Sw {
        rs2: T2,
        rs1: T1,
        offset: 0,
    });
    a.push(CpuInstr::Sw {
        rs2: T3,
        rs1: T0,
        offset: 0,
    });
    a.push(CpuInstr::Lw {
        rd: T2,
        rs1: T0,
        offset: 1,
    });
    a.push(CpuInstr::Lw {
        rd: T3,
        rs1: T1,
        offset: 1,
    });
    a.push(CpuInstr::Sw {
        rs2: T2,
        rs1: T1,
        offset: 1,
    });
    a.push(CpuInstr::Sw {
        rs2: T3,
        rs1: T0,
        offset: 1,
    });
    a.bind(no_swap);
    a.push(CpuInstr::Addi {
        rd: I,
        rs1: I,
        imm: 1,
    });
    a.branch(BranchCond::Lt, I, N, i_loop);
}

/// Emits the radix-2 stage loops (assumes `DATA`, `TW` and `N` are loaded).
fn emit_stages(a: &mut CpuAsm, n: usize) {
    a.push(CpuInstr::Li { rd: HALF, imm: 1 });
    a.push(CpuInstr::Li {
        rd: STEP,
        imm: (n >> 1) as i32,
    });
    let stage_loop = a.new_label();
    a.bind(stage_loop);
    a.push(CpuInstr::Sll {
        rd: LEN,
        rs1: HALF,
        shamt: 1,
    });
    a.push(CpuInstr::Li { rd: BI, imm: 0 });
    let outer_loop = a.new_label();
    a.bind(outer_loop);
    a.push(CpuInstr::Li { rd: BJ, imm: 0 });
    a.push(CpuInstr::Li { rd: TWI, imm: 0 });
    let inner_loop = a.new_label();
    a.bind(inner_loop);
    // Addresses of the two butterfly operands and the twiddle.
    a.push(CpuInstr::Add {
        rd: T0,
        rs1: BI,
        rs2: BJ,
    });
    a.push(CpuInstr::Sll {
        rd: P1,
        rs1: T0,
        shamt: 1,
    });
    a.push(CpuInstr::Add {
        rd: P1,
        rs1: P1,
        rs2: DATA,
    });
    a.push(CpuInstr::Add {
        rd: T0,
        rs1: T0,
        rs2: HALF,
    });
    a.push(CpuInstr::Sll {
        rd: P2,
        rs1: T0,
        shamt: 1,
    });
    a.push(CpuInstr::Add {
        rd: P2,
        rs1: P2,
        rs2: DATA,
    });
    a.push(CpuInstr::Sll {
        rd: PW,
        rs1: TWI,
        shamt: 1,
    });
    a.push(CpuInstr::Add {
        rd: PW,
        rs1: PW,
        rs2: TW,
    });
    // Load operands.
    a.push(CpuInstr::Lw {
        rd: ARE,
        rs1: P1,
        offset: 0,
    });
    a.push(CpuInstr::Lw {
        rd: AIM,
        rs1: P1,
        offset: 1,
    });
    a.push(CpuInstr::Lw {
        rd: BRE,
        rs1: P2,
        offset: 0,
    });
    a.push(CpuInstr::Lw {
        rd: BIM,
        rs1: P2,
        offset: 1,
    });
    a.push(CpuInstr::Lw {
        rd: WRE,
        rs1: PW,
        offset: 0,
    });
    a.push(CpuInstr::Lw {
        rd: WIM,
        rs1: PW,
        offset: 1,
    });
    // vr = ssat((b_re*w_re - b_im*w_im) >> 15, 16)
    a.push(CpuInstr::Mul {
        rd: VR,
        rs1: BRE,
        rs2: WRE,
    });
    a.push(CpuInstr::Mul {
        rd: T0,
        rs1: BIM,
        rs2: WIM,
    });
    a.push(CpuInstr::Sub {
        rd: VR,
        rs1: VR,
        rs2: T0,
    });
    a.push(CpuInstr::Sra {
        rd: VR,
        rs1: VR,
        shamt: 15,
    });
    a.push(CpuInstr::Ssat {
        rd: VR,
        rs: VR,
        bits: 16,
    });
    // vi = ssat((b_re*w_im + b_im*w_re) >> 15, 16)
    a.push(CpuInstr::Mul {
        rd: VI,
        rs1: BRE,
        rs2: WIM,
    });
    a.push(CpuInstr::Mla {
        rd: VI,
        rs1: BIM,
        rs2: WRE,
    });
    a.push(CpuInstr::Sra {
        rd: VI,
        rs1: VI,
        shamt: 15,
    });
    a.push(CpuInstr::Ssat {
        rd: VI,
        rs: VI,
        bits: 16,
    });
    // Butterflies with 1/2 scaling.
    a.push(CpuInstr::Add {
        rd: T0,
        rs1: ARE,
        rs2: VR,
    });
    a.push(CpuInstr::Sra {
        rd: T0,
        rs1: T0,
        shamt: 1,
    });
    a.push(CpuInstr::Sw {
        rs2: T0,
        rs1: P1,
        offset: 0,
    });
    a.push(CpuInstr::Add {
        rd: T0,
        rs1: AIM,
        rs2: VI,
    });
    a.push(CpuInstr::Sra {
        rd: T0,
        rs1: T0,
        shamt: 1,
    });
    a.push(CpuInstr::Sw {
        rs2: T0,
        rs1: P1,
        offset: 1,
    });
    a.push(CpuInstr::Sub {
        rd: T0,
        rs1: ARE,
        rs2: VR,
    });
    a.push(CpuInstr::Sra {
        rd: T0,
        rs1: T0,
        shamt: 1,
    });
    a.push(CpuInstr::Sw {
        rs2: T0,
        rs1: P2,
        offset: 0,
    });
    a.push(CpuInstr::Sub {
        rd: T0,
        rs1: AIM,
        rs2: VI,
    });
    a.push(CpuInstr::Sra {
        rd: T0,
        rs1: T0,
        shamt: 1,
    });
    a.push(CpuInstr::Sw {
        rs2: T0,
        rs1: P2,
        offset: 1,
    });
    // Loop bookkeeping.
    a.push(CpuInstr::Add {
        rd: TWI,
        rs1: TWI,
        rs2: STEP,
    });
    a.push(CpuInstr::Addi {
        rd: BJ,
        rs1: BJ,
        imm: 1,
    });
    a.branch(BranchCond::Lt, BJ, HALF, inner_loop);
    a.push(CpuInstr::Add {
        rd: BI,
        rs1: BI,
        rs2: LEN,
    });
    a.branch(BranchCond::Lt, BI, N, outer_loop);
    a.push(CpuInstr::Sll {
        rd: HALF,
        rs1: HALF,
        shamt: 1,
    });
    a.push(CpuInstr::Srl {
        rd: STEP,
        rs1: STEP,
        shamt: 1,
    });
    a.branch(BranchCond::Lt, HALF, N, stage_loop);
}

/// Builds the in-place `n`-point complex `q15` FFT program.
///
/// Memory layout (word addresses):
/// * `data_addr..data_addr+2n` — interleaved complex samples (in/out),
/// * `tw_addr..tw_addr+n` — twiddles from [`cfft_twiddles_q15`].
///
/// # Errors
///
/// Returns [`SocError::InvalidParameter`] if `n` is not a power of two of at
/// least 4.
///
/// # Example
///
/// ```
/// use vwr2a_soc::cpu::kernels::cfft_q15_program;
/// let program = cfft_q15_program(64, 0, 128).unwrap();
/// assert!(program.len() > 50);
/// ```
pub fn cfft_q15_program(n: usize, data_addr: usize, tw_addr: usize) -> Result<Vec<CpuInstr>> {
    check_power_of_two(n)?;
    let mut a = CpuAsm::new();
    a.push(CpuInstr::Li { rd: ZERO, imm: 0 });
    a.push(CpuInstr::Li {
        rd: DATA,
        imm: data_addr as i32,
    });
    a.push(CpuInstr::Li {
        rd: TW,
        imm: tw_addr as i32,
    });
    a.push(CpuInstr::Li {
        rd: N,
        imm: n as i32,
    });
    emit_bit_reversal(&mut a, n);
    emit_stages(&mut a, n);
    a.push(CpuInstr::Halt);
    a.build()
}

/// Builds the `n`-point real-valued `q15` FFT program (pack, `n/2`-point
/// complex FFT, split), producing `n/2 + 1` interleaved output bins.
///
/// Memory layout (word addresses):
/// * `data_addr..data_addr+n` — real input samples, reinterpreted in place
///   as `n/2` interleaved complex values (the packing step is free),
/// * `tw_addr..tw_addr+n/2` — twiddles from `cfft_twiddles_q15(n/2)`,
/// * `split_tw_addr..split_tw_addr+n+2` — twiddles from
///   [`rfft_split_twiddles_q15`]`(n)`,
/// * `out_addr..out_addr+n+2` — interleaved output spectrum (written).
///
/// # Errors
///
/// Returns [`SocError::InvalidParameter`] if `n` is not a power of two of at
/// least 8.
pub fn rfft_q15_program(
    n: usize,
    data_addr: usize,
    tw_addr: usize,
    split_tw_addr: usize,
    out_addr: usize,
) -> Result<Vec<CpuInstr>> {
    check_power_of_two(n)?;
    if n < 8 {
        return Err(SocError::InvalidParameter {
            what: format!("real fft length must be at least 8, got {n}"),
        });
    }
    let half = n / 2;
    let mut a = CpuAsm::new();
    a.push(CpuInstr::Li { rd: ZERO, imm: 0 });
    a.push(CpuInstr::Li {
        rd: DATA,
        imm: data_addr as i32,
    });
    a.push(CpuInstr::Li {
        rd: TW,
        imm: tw_addr as i32,
    });
    a.push(CpuInstr::Li {
        rd: N,
        imm: half as i32,
    });
    emit_bit_reversal(&mut a, half);
    emit_stages(&mut a, half);

    // Split step: reuse the register file for new roles.
    // r1 = DATA (packed spectrum), r2 = split twiddles, r3 = half, r26 = out.
    const OUT: u8 = T2;
    const K: u8 = I;
    const ZK: u8 = BI;
    const ZNK: u8 = BJ;
    a.push(CpuInstr::Li {
        rd: TW,
        imm: split_tw_addr as i32,
    });
    a.push(CpuInstr::Li {
        rd: OUT,
        imm: out_addr as i32,
    });
    a.push(CpuInstr::Li { rd: K, imm: 0 });
    let k_loop = a.new_label();
    a.bind(k_loop);
    // zk index: k, or 0 when k == half.
    a.push(CpuInstr::Mv { rd: ZK, rs: K });
    let zk_ok = a.new_label();
    a.branch(BranchCond::Lt, K, N, zk_ok);
    a.push(CpuInstr::Li { rd: ZK, imm: 0 });
    a.bind(zk_ok);
    // znk index: half - k, or 0 when k == 0.
    a.push(CpuInstr::Sub {
        rd: ZNK,
        rs1: N,
        rs2: K,
    });
    let znk_ok = a.new_label();
    a.branch(BranchCond::Ne, K, ZERO, znk_ok);
    a.push(CpuInstr::Li { rd: ZNK, imm: 0 });
    a.bind(znk_ok);
    // Load z[k] and z[half-k].
    a.push(CpuInstr::Sll {
        rd: P1,
        rs1: ZK,
        shamt: 1,
    });
    a.push(CpuInstr::Add {
        rd: P1,
        rs1: P1,
        rs2: DATA,
    });
    a.push(CpuInstr::Sll {
        rd: P2,
        rs1: ZNK,
        shamt: 1,
    });
    a.push(CpuInstr::Add {
        rd: P2,
        rs1: P2,
        rs2: DATA,
    });
    a.push(CpuInstr::Lw {
        rd: ARE,
        rs1: P1,
        offset: 0,
    }); // zkr
    a.push(CpuInstr::Lw {
        rd: AIM,
        rs1: P1,
        offset: 1,
    }); // zki
    a.push(CpuInstr::Lw {
        rd: BRE,
        rs1: P2,
        offset: 0,
    }); // znkr
    a.push(CpuInstr::Lw {
        rd: BIM,
        rs1: P2,
        offset: 1,
    }); // znki
        // er = (zkr + znkr) >> 1 ; ei = (zki - znki) >> 1
        // or = (zki + znki) >> 1 ; oi = (znkr - zkr) >> 1
    a.push(CpuInstr::Add {
        rd: VR,
        rs1: ARE,
        rs2: BRE,
    });
    a.push(CpuInstr::Sra {
        rd: VR,
        rs1: VR,
        shamt: 1,
    }); // er
    a.push(CpuInstr::Sub {
        rd: VI,
        rs1: AIM,
        rs2: BIM,
    });
    a.push(CpuInstr::Sra {
        rd: VI,
        rs1: VI,
        shamt: 1,
    }); // ei
    a.push(CpuInstr::Add {
        rd: T0,
        rs1: AIM,
        rs2: BIM,
    });
    a.push(CpuInstr::Sra {
        rd: T0,
        rs1: T0,
        shamt: 1,
    }); // or
    a.push(CpuInstr::Sub {
        rd: T1,
        rs1: BRE,
        rs2: ARE,
    });
    a.push(CpuInstr::Sra {
        rd: T1,
        rs1: T1,
        shamt: 1,
    }); // oi
        // Twiddle c, s.
    a.push(CpuInstr::Sll {
        rd: PW,
        rs1: K,
        shamt: 1,
    });
    a.push(CpuInstr::Add {
        rd: PW,
        rs1: PW,
        rs2: TW,
    });
    a.push(CpuInstr::Lw {
        rd: WRE,
        rs1: PW,
        offset: 0,
    });
    a.push(CpuInstr::Lw {
        rd: WIM,
        rs1: PW,
        offset: 1,
    });
    // re = (er + (c*or - s*oi) >> 15) >> 1
    a.push(CpuInstr::Mul {
        rd: T3,
        rs1: WRE,
        rs2: T0,
    });
    a.push(CpuInstr::Mul {
        rd: LEN,
        rs1: WIM,
        rs2: T1,
    });
    a.push(CpuInstr::Sub {
        rd: T3,
        rs1: T3,
        rs2: LEN,
    });
    a.push(CpuInstr::Sra {
        rd: T3,
        rs1: T3,
        shamt: 15,
    });
    a.push(CpuInstr::Add {
        rd: T3,
        rs1: VR,
        rs2: T3,
    });
    a.push(CpuInstr::Sra {
        rd: T3,
        rs1: T3,
        shamt: 1,
    });
    a.push(CpuInstr::Ssat {
        rd: T3,
        rs: T3,
        bits: 16,
    });
    // im = (ei + (c*oi + s*or) >> 15) >> 1
    a.push(CpuInstr::Mul {
        rd: HALF,
        rs1: WRE,
        rs2: T1,
    });
    a.push(CpuInstr::Mla {
        rd: HALF,
        rs1: WIM,
        rs2: T0,
    });
    a.push(CpuInstr::Sra {
        rd: HALF,
        rs1: HALF,
        shamt: 15,
    });
    a.push(CpuInstr::Add {
        rd: HALF,
        rs1: VI,
        rs2: HALF,
    });
    a.push(CpuInstr::Sra {
        rd: HALF,
        rs1: HALF,
        shamt: 1,
    });
    a.push(CpuInstr::Ssat {
        rd: HALF,
        rs: HALF,
        bits: 16,
    });
    // Store out[2k], out[2k+1].
    a.push(CpuInstr::Sll {
        rd: STEP,
        rs1: K,
        shamt: 1,
    });
    a.push(CpuInstr::Add {
        rd: STEP,
        rs1: STEP,
        rs2: OUT,
    });
    a.push(CpuInstr::Sw {
        rs2: T3,
        rs1: STEP,
        offset: 0,
    });
    a.push(CpuInstr::Sw {
        rs2: HALF,
        rs1: STEP,
        offset: 1,
    });
    // k += 1; loop while k <= half.
    a.push(CpuInstr::Addi {
        rd: K,
        rs1: K,
        imm: 1,
    });
    a.push(CpuInstr::Addi {
        rd: T0,
        rs1: N,
        imm: 1,
    });
    a.branch(BranchCond::Lt, K, T0, k_loop);
    a.push(CpuInstr::Halt);
    a.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;
    use crate::sram::Sram;
    use vwr2a_dsp::fft_q15::{cfft_q15, rfft_q15, ComplexQ15};
    use vwr2a_dsp::fixed::Q15;

    fn run_cfft(n: usize, signal: &[f64]) -> (Vec<i32>, Vec<ComplexQ15>, u64) {
        let mut reference: Vec<ComplexQ15> = signal
            .iter()
            .map(|&v| ComplexQ15::from_f64(v, 0.0))
            .collect();
        let data: Vec<i32> = reference
            .iter()
            .flat_map(|c| [c.re.0 as i32, c.im.0 as i32])
            .collect();
        cfft_q15(&mut reference).unwrap();

        let data_addr = 0usize;
        let tw_addr = 2 * n;
        let program = cfft_q15_program(n, data_addr, tw_addr).unwrap();
        let mut cpu = Cpu::new();
        let mut sram = Sram::paper();
        sram.load(data_addr, &data).unwrap();
        sram.load(tw_addr, &cfft_twiddles_q15(n)).unwrap();
        let stats = cpu.run(&program, &mut sram).unwrap();
        (
            sram.dump(data_addr, 2 * n).unwrap(),
            reference,
            stats.cycles,
        )
    }

    #[test]
    fn cfft_matches_reference_model() {
        let n = 64;
        let signal: Vec<f64> = (0..n).map(|i| 0.4 * (i as f64 * 0.3).sin()).collect();
        let (out, reference, _) = run_cfft(n, &signal);
        for (k, r) in reference.iter().enumerate() {
            let re = out[2 * k];
            let im = out[2 * k + 1];
            assert!(
                (re - r.re.0 as i32).abs() <= 1 && (im - r.im.0 as i32).abs() <= 1,
                "bin {k}: cpu ({re},{im}) vs reference ({},{})",
                r.re.0,
                r.im.0
            );
        }
    }

    #[test]
    fn cfft_cycles_scale_as_n_log_n() {
        let signal: Vec<f64> = (0..256).map(|i| 0.3 * (i as f64 * 0.11).cos()).collect();
        let (_, _, c256) = run_cfft(256, &signal);
        let signal: Vec<f64> = (0..512).map(|i| 0.3 * (i as f64 * 0.11).cos()).collect();
        let (_, _, c512) = run_cfft(512, &signal);
        // N log N: doubling N slightly more than doubles the work.
        let ratio = c512 as f64 / c256 as f64;
        assert!(ratio > 2.0 && ratio < 2.5, "ratio {ratio}");
    }

    #[test]
    fn rfft_matches_reference_model() {
        let n = 128;
        let signal: Vec<f64> = (0..n)
            .map(|i| 0.35 * (std::f64::consts::TAU * 6.0 * i as f64 / n as f64).cos())
            .collect();
        let input_q: Vec<Q15> = signal.iter().map(|&v| Q15::from_f64(v)).collect();
        let reference = rfft_q15(&input_q).unwrap();

        let data_addr = 0usize;
        let tw_addr = n;
        let split_addr = tw_addr + n / 2;
        let out_addr = split_addr + n + 2;
        let program = rfft_q15_program(n, data_addr, tw_addr, split_addr, out_addr).unwrap();
        let mut cpu = Cpu::new();
        let mut sram = Sram::paper();
        sram.load(
            data_addr,
            &input_q.iter().map(|q| q.0 as i32).collect::<Vec<_>>(),
        )
        .unwrap();
        sram.load(tw_addr, &cfft_twiddles_q15(n / 2)).unwrap();
        sram.load(split_addr, &rfft_split_twiddles_q15(n)).unwrap();
        cpu.run(&program, &mut sram).unwrap();
        let out = sram.dump(out_addr, n + 2).unwrap();

        // The reference does its split step in floating point, so allow a
        // few LSB of difference; the dominant bin must match exactly.
        for (k, r) in reference.iter().enumerate() {
            let re = out[2 * k];
            let im = out[2 * k + 1];
            assert!(
                (re - r.re.0 as i32).abs() <= 3 && (im - r.im.0 as i32).abs() <= 3,
                "bin {k}: cpu ({re},{im}) vs reference ({},{})",
                r.re.0,
                r.im.0
            );
        }
        let peak = (0..=n / 2)
            .max_by_key(|&k| {
                let re = out[2 * k] as i64;
                let im = out[2 * k + 1] as i64;
                re * re + im * im
            })
            .unwrap();
        assert_eq!(peak, 6);
    }

    #[test]
    fn invalid_lengths_rejected() {
        assert!(cfft_q15_program(3, 0, 0).is_err());
        assert!(cfft_q15_program(48, 0, 0).is_err());
        assert!(rfft_q15_program(4, 0, 0, 0, 0).is_err());
    }
}
