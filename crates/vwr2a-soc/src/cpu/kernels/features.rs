//! CPU baseline: statistical and spectral feature extraction.
//!
//! MBioTracker's feature-extraction step computes time features (mean,
//! median and RMS of the inspiration/expiration intervals) and frequency
//! features from the FFT of the filtered signal (Sec. 4.4.2).  The programs
//! here implement those pieces on the scalar ISS: [`stats_program`] produces
//! mean/median/RMS of an integer array whose length is only known at run
//! time, [`band_energy_program`] reduces an interleaved spectrum to per-band
//! energies, and [`isqrt_program`] exposes the integer square root used by
//! the RMS computation for standalone testing.

use crate::cpu::asm::{BranchCond, CpuAsm};
use crate::cpu::CpuInstr;
use crate::error::Result;

const ZERO: u8 = 0;

/// Emits a bit-by-bit integer square root of register `value_reg` into
/// `result_reg` (clobbers `t0..t2`).
fn emit_isqrt(a: &mut CpuAsm, value_reg: u8, result_reg: u8, t0: u8, t1: u8) {
    // res = 0; bit = 1 << 30;
    a.push(CpuInstr::Li {
        rd: result_reg,
        imm: 0,
    });
    a.push(CpuInstr::Li {
        rd: t0,
        imm: 1 << 30,
    });
    // while bit > value: bit >>= 2
    let shrink = a.new_label();
    let shrink_done = a.new_label();
    a.bind(shrink);
    a.branch(BranchCond::Ge, value_reg, t0, shrink_done);
    a.push(CpuInstr::Srl {
        rd: t0,
        rs1: t0,
        shamt: 2,
    });
    a.branch(BranchCond::Ne, t0, ZERO, shrink);
    a.bind(shrink_done);
    // while bit != 0
    let loop_top = a.new_label();
    let loop_end = a.new_label();
    let else_branch = a.new_label();
    let after = a.new_label();
    a.bind(loop_top);
    a.branch(BranchCond::Eq, t0, ZERO, loop_end);
    // if value >= res + bit { value -= res + bit; res = (res >> 1) + bit }
    a.push(CpuInstr::Add {
        rd: t1,
        rs1: result_reg,
        rs2: t0,
    });
    a.branch(BranchCond::Lt, value_reg, t1, else_branch);
    a.push(CpuInstr::Sub {
        rd: value_reg,
        rs1: value_reg,
        rs2: t1,
    });
    a.push(CpuInstr::Srl {
        rd: result_reg,
        rs1: result_reg,
        shamt: 1,
    });
    a.push(CpuInstr::Add {
        rd: result_reg,
        rs1: result_reg,
        rs2: t0,
    });
    a.jump(after);
    a.bind(else_branch);
    a.push(CpuInstr::Srl {
        rd: result_reg,
        rs1: result_reg,
        shamt: 1,
    });
    a.bind(after);
    a.push(CpuInstr::Srl {
        rd: t0,
        rs1: t0,
        shamt: 2,
    });
    a.jump(loop_top);
    a.bind(loop_end);
}

/// Standalone integer square root: reads one word at `value_addr`, writes
/// `floor(sqrt(value))` to `out_addr`.
///
/// # Errors
///
/// Returns an assembler error only on an internal generator bug.
///
/// # Example
///
/// ```
/// use vwr2a_soc::cpu::kernels::isqrt_program;
/// assert!(!isqrt_program(0, 1).unwrap().is_empty());
/// ```
pub fn isqrt_program(value_addr: usize, out_addr: usize) -> Result<Vec<CpuInstr>> {
    let mut a = CpuAsm::new();
    a.push(CpuInstr::Li { rd: ZERO, imm: 0 });
    a.push(CpuInstr::Li {
        rd: 1,
        imm: value_addr as i32,
    });
    a.push(CpuInstr::Lw {
        rd: 2,
        rs1: 1,
        offset: 0,
    });
    emit_isqrt(&mut a, 2, 3, 4, 5);
    a.push(CpuInstr::Li {
        rd: 1,
        imm: out_addr as i32,
    });
    a.push(CpuInstr::Sw {
        rs2: 3,
        rs1: 1,
        offset: 0,
    });
    a.push(CpuInstr::Halt);
    a.build()
}

/// Mean / median / RMS of an integer array whose length is stored in memory.
///
/// Memory layout (word addresses):
/// * `data_addr..` — input values (`*count_addr` of them),
/// * `count_addr` — element count (read at run time; a zero count writes
///   three zeros),
/// * `scratch_addr..` — scratch area at least as large as the input (used
///   by the insertion sort for the median),
/// * `out_addr..out_addr+3` — `[mean, median, rms]` (written).
///
/// # Errors
///
/// Returns an assembler error only on an internal generator bug.
pub fn stats_program(
    data_addr: usize,
    count_addr: usize,
    scratch_addr: usize,
    out_addr: usize,
) -> Result<Vec<CpuInstr>> {
    const DATA: u8 = 1;
    const COUNT: u8 = 2;
    const SCRATCH: u8 = 3;
    const OUT: u8 = 4;
    const I: u8 = 5;
    const J: u8 = 6;
    const SUM: u8 = 7;
    const SUMSQ: u8 = 8;
    const V: u8 = 9;
    const T0: u8 = 10;
    const T1: u8 = 11;
    const T2: u8 = 12;
    const MEAN: u8 = 13;
    const MEDIAN: u8 = 14;
    const RMS: u8 = 15;

    let mut a = CpuAsm::new();
    a.push(CpuInstr::Li { rd: ZERO, imm: 0 });
    a.push(CpuInstr::Li {
        rd: DATA,
        imm: data_addr as i32,
    });
    a.push(CpuInstr::Li {
        rd: SCRATCH,
        imm: scratch_addr as i32,
    });
    a.push(CpuInstr::Li {
        rd: OUT,
        imm: out_addr as i32,
    });
    a.push(CpuInstr::Li {
        rd: T0,
        imm: count_addr as i32,
    });
    a.push(CpuInstr::Lw {
        rd: COUNT,
        rs1: T0,
        offset: 0,
    });

    // Zero-length input: write three zeros and halt.
    let non_empty = a.new_label();
    a.branch(BranchCond::Ne, COUNT, ZERO, non_empty);
    a.push(CpuInstr::Sw {
        rs2: ZERO,
        rs1: OUT,
        offset: 0,
    });
    a.push(CpuInstr::Sw {
        rs2: ZERO,
        rs1: OUT,
        offset: 1,
    });
    a.push(CpuInstr::Sw {
        rs2: ZERO,
        rs1: OUT,
        offset: 2,
    });
    a.push(CpuInstr::Halt);
    a.bind(non_empty);

    // Pass 1: sum, sum of squares, and copy into the scratch buffer.
    a.push(CpuInstr::Li { rd: SUM, imm: 0 });
    a.push(CpuInstr::Li { rd: SUMSQ, imm: 0 });
    a.push(CpuInstr::Li { rd: I, imm: 0 });
    let pass1 = a.new_label();
    a.bind(pass1);
    a.push(CpuInstr::Add {
        rd: T0,
        rs1: DATA,
        rs2: I,
    });
    a.push(CpuInstr::Lw {
        rd: V,
        rs1: T0,
        offset: 0,
    });
    a.push(CpuInstr::Add {
        rd: SUM,
        rs1: SUM,
        rs2: V,
    });
    a.push(CpuInstr::Mla {
        rd: SUMSQ,
        rs1: V,
        rs2: V,
    });
    a.push(CpuInstr::Add {
        rd: T0,
        rs1: SCRATCH,
        rs2: I,
    });
    a.push(CpuInstr::Sw {
        rs2: V,
        rs1: T0,
        offset: 0,
    });
    a.push(CpuInstr::Addi {
        rd: I,
        rs1: I,
        imm: 1,
    });
    a.branch(BranchCond::Lt, I, COUNT, pass1);

    // mean = sum / count ; mean-square = sumsq / count ; rms = isqrt(...)
    a.push(CpuInstr::Div {
        rd: MEAN,
        rs1: SUM,
        rs2: COUNT,
    });
    a.push(CpuInstr::Div {
        rd: T2,
        rs1: SUMSQ,
        rs2: COUNT,
    });
    emit_isqrt(&mut a, T2, RMS, T0, T1);

    // Insertion sort of the scratch copy.
    a.push(CpuInstr::Li { rd: I, imm: 1 });
    let sort_outer = a.new_label();
    let sort_done = a.new_label();
    a.branch(BranchCond::Ge, I, COUNT, sort_done);
    a.bind(sort_outer);
    a.push(CpuInstr::Add {
        rd: T0,
        rs1: SCRATCH,
        rs2: I,
    });
    a.push(CpuInstr::Lw {
        rd: V,
        rs1: T0,
        offset: 0,
    });
    a.push(CpuInstr::Mv { rd: J, rs: I });
    let shift_loop = a.new_label();
    let shift_done = a.new_label();
    a.bind(shift_loop);
    a.branch(BranchCond::Eq, J, ZERO, shift_done);
    a.push(CpuInstr::Add {
        rd: T0,
        rs1: SCRATCH,
        rs2: J,
    });
    a.push(CpuInstr::Lw {
        rd: T1,
        rs1: T0,
        offset: -1,
    });
    a.branch(BranchCond::Ge, V, T1, shift_done);
    a.push(CpuInstr::Sw {
        rs2: T1,
        rs1: T0,
        offset: 0,
    });
    a.push(CpuInstr::Addi {
        rd: J,
        rs1: J,
        imm: -1,
    });
    a.jump(shift_loop);
    a.bind(shift_done);
    a.push(CpuInstr::Add {
        rd: T0,
        rs1: SCRATCH,
        rs2: J,
    });
    a.push(CpuInstr::Sw {
        rs2: V,
        rs1: T0,
        offset: 0,
    });
    a.push(CpuInstr::Addi {
        rd: I,
        rs1: I,
        imm: 1,
    });
    a.branch(BranchCond::Lt, I, COUNT, sort_outer);
    a.bind(sort_done);

    // median = sorted[count/2] for odd counts, average of the two middle
    // elements for even counts.
    a.push(CpuInstr::Srl {
        rd: T0,
        rs1: COUNT,
        shamt: 1,
    });
    a.push(CpuInstr::Add {
        rd: T1,
        rs1: SCRATCH,
        rs2: T0,
    });
    a.push(CpuInstr::Lw {
        rd: MEDIAN,
        rs1: T1,
        offset: 0,
    });
    // Even count: median = (sorted[mid-1] + sorted[mid]) / 2.
    a.push(CpuInstr::Sll {
        rd: T2,
        rs1: T0,
        shamt: 1,
    });
    let odd = a.new_label();
    a.branch(BranchCond::Ne, T2, COUNT, odd);
    a.push(CpuInstr::Lw {
        rd: T2,
        rs1: T1,
        offset: -1,
    });
    a.push(CpuInstr::Add {
        rd: MEDIAN,
        rs1: MEDIAN,
        rs2: T2,
    });
    a.push(CpuInstr::Sra {
        rd: MEDIAN,
        rs1: MEDIAN,
        shamt: 1,
    });
    a.bind(odd);

    a.push(CpuInstr::Sw {
        rs2: MEAN,
        rs1: OUT,
        offset: 0,
    });
    a.push(CpuInstr::Sw {
        rs2: MEDIAN,
        rs1: OUT,
        offset: 1,
    });
    a.push(CpuInstr::Sw {
        rs2: RMS,
        rs1: OUT,
        offset: 2,
    });
    a.push(CpuInstr::Halt);
    a.build()
}

/// Per-band spectral energy of an interleaved spectrum.
///
/// Memory layout (word addresses):
/// * `spec_addr..spec_addr+2*bins` — interleaved `q15` spectrum bins,
/// * `out_addr..out_addr+bands` — per-band energies
///   `Σ (re² + im²) >> 15` over equal-width bands (written).
///
/// # Errors
///
/// Returns an assembler error only on an internal generator bug.
pub fn band_energy_program(
    bins: usize,
    bands: usize,
    spec_addr: usize,
    out_addr: usize,
) -> Result<Vec<CpuInstr>> {
    const SPEC: u8 = 1;
    const OUT: u8 = 2;
    const BAND: u8 = 3;
    const I: u8 = 4;
    const END: u8 = 5;
    const ACC: u8 = 6;
    const RE: u8 = 7;
    const IM: u8 = 8;
    const T0: u8 = 9;
    const T1: u8 = 10;
    const NBANDS: u8 = 11;
    const PERBAND: u8 = 12;

    let per_band = (bins / bands).max(1);
    let mut a = CpuAsm::new();
    a.push(CpuInstr::Li { rd: ZERO, imm: 0 });
    a.push(CpuInstr::Li {
        rd: SPEC,
        imm: spec_addr as i32,
    });
    a.push(CpuInstr::Li {
        rd: OUT,
        imm: out_addr as i32,
    });
    a.push(CpuInstr::Li {
        rd: NBANDS,
        imm: bands as i32,
    });
    a.push(CpuInstr::Li {
        rd: PERBAND,
        imm: per_band as i32,
    });
    a.push(CpuInstr::Li { rd: BAND, imm: 0 });
    a.push(CpuInstr::Li { rd: I, imm: 0 });
    let band_loop = a.new_label();
    a.bind(band_loop);
    a.push(CpuInstr::Li { rd: ACC, imm: 0 });
    a.push(CpuInstr::Add {
        rd: END,
        rs1: I,
        rs2: PERBAND,
    });
    let bin_loop = a.new_label();
    a.bind(bin_loop);
    a.push(CpuInstr::Sll {
        rd: T0,
        rs1: I,
        shamt: 1,
    });
    a.push(CpuInstr::Add {
        rd: T0,
        rs1: T0,
        rs2: SPEC,
    });
    a.push(CpuInstr::Lw {
        rd: RE,
        rs1: T0,
        offset: 0,
    });
    a.push(CpuInstr::Lw {
        rd: IM,
        rs1: T0,
        offset: 1,
    });
    a.push(CpuInstr::Mul {
        rd: T1,
        rs1: RE,
        rs2: RE,
    });
    a.push(CpuInstr::Mla {
        rd: T1,
        rs1: IM,
        rs2: IM,
    });
    a.push(CpuInstr::Sra {
        rd: T1,
        rs1: T1,
        shamt: 15,
    });
    a.push(CpuInstr::Add {
        rd: ACC,
        rs1: ACC,
        rs2: T1,
    });
    a.push(CpuInstr::Addi {
        rd: I,
        rs1: I,
        imm: 1,
    });
    a.branch(BranchCond::Lt, I, END, bin_loop);
    a.push(CpuInstr::Add {
        rd: T0,
        rs1: OUT,
        rs2: BAND,
    });
    a.push(CpuInstr::Sw {
        rs2: ACC,
        rs1: T0,
        offset: 0,
    });
    a.push(CpuInstr::Addi {
        rd: BAND,
        rs1: BAND,
        imm: 1,
    });
    a.branch(BranchCond::Lt, BAND, NBANDS, band_loop);
    a.push(CpuInstr::Halt);
    a.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;
    use crate::sram::Sram;

    fn run(program: &[CpuInstr], seed: &[(usize, Vec<i32>)]) -> Sram {
        let mut cpu = Cpu::new();
        let mut sram = Sram::paper();
        for (addr, data) in seed {
            sram.load(*addr, data).unwrap();
        }
        cpu.run(program, &mut sram).unwrap();
        sram
    }

    #[test]
    fn isqrt_is_exact_floor() {
        for v in [
            0i32,
            1,
            2,
            3,
            4,
            15,
            16,
            17,
            99,
            100,
            1_000_000,
            2_000_000_000,
        ] {
            let program = isqrt_program(0, 1).unwrap();
            let sram = run(&program, &[(0, vec![v])]);
            let expected = (v as f64).sqrt().floor() as i32;
            assert_eq!(sram.dump(1, 1).unwrap()[0], expected, "isqrt({v})");
        }
    }

    #[test]
    fn stats_match_reference() {
        let data = vec![40i32, 10, 30, 20, 50, 60, 25];
        let n = data.len();
        let program = stats_program(0, 100, 200, 300).unwrap();
        let sram = run(&program, &[(0, data.clone()), (100, vec![n as i32])]);
        let out = sram.dump(300, 3).unwrap();
        let mean = data.iter().sum::<i32>() / n as i32;
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let median = sorted[n / 2];
        let meansq = data.iter().map(|&v| v as i64 * v as i64).sum::<i64>() / n as i64;
        let rms = (meansq as f64).sqrt().floor() as i32;
        assert_eq!(out[0], mean);
        assert_eq!(out[1], median);
        assert_eq!(out[2], rms);
    }

    #[test]
    fn stats_even_count_and_empty() {
        let data = vec![4i32, 1, 3, 2];
        let program = stats_program(0, 100, 200, 300).unwrap();
        let sram = run(&program, &[(0, data), (100, vec![4])]);
        assert_eq!(sram.dump(300, 3).unwrap()[1], 2, "interpolated median");

        let program = stats_program(0, 100, 200, 300).unwrap();
        let sram = run(&program, &[(100, vec![0])]);
        assert_eq!(sram.dump(300, 3).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn band_energies_sum_squares() {
        // 8 bins, 2 bands; only bin 1 (band 0) and bin 6 (band 1) are non-zero.
        let mut spec = vec![0i32; 16];
        spec[2] = 1000;
        spec[3] = 2000;
        spec[12] = -3000;
        let program = band_energy_program(8, 2, 0, 50).unwrap();
        let sram = run(&program, &[(0, spec)]);
        let out = sram.dump(50, 2).unwrap();
        assert_eq!(out[0], (1000 * 1000 + 2000 * 2000) >> 15);
        assert_eq!(out[1], (3000 * 3000) >> 15);
    }
}
