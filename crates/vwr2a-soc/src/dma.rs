//! System DMA controller.
//!
//! The platform's DMA moves data between SRAM regions and memory-mapped
//! peripherals while the CPU sleeps or computes (Sec. 4.1).  For the
//! experiments it is used by the host firmware to stage kernel inputs and
//! collect results; cycle costs are descriptor programming plus per-word bus
//! beats, and its traffic is charged to the `SystemDma` bus master.

use crate::bus::{Bus, BusMaster};
use crate::error::{Result, SocError};
use crate::sram::Sram;
use serde::{Deserialize, Serialize};

/// Timing parameters of the system DMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemDmaConfig {
    /// Cycles for the CPU to program one transfer descriptor.
    pub setup_cycles: u64,
}

impl Default for SystemDmaConfig {
    fn default() -> Self {
        Self { setup_cycles: 16 }
    }
}

/// The system DMA controller.
///
/// # Example
///
/// ```
/// use vwr2a_soc::dma::SystemDma;
/// use vwr2a_soc::bus::Bus;
/// use vwr2a_soc::sram::Sram;
///
/// # fn main() -> Result<(), vwr2a_soc::error::SocError> {
/// let dma = SystemDma::default();
/// let mut sram = Sram::paper();
/// let mut bus = Bus::default();
/// sram.load(0, &[1, 2, 3, 4])?;
/// let cycles = dma.copy_within_sram(&mut sram, &mut bus, 0, 100, 4)?;
/// assert_eq!(sram.dump(100, 4)?, vec![1, 2, 3, 4]);
/// assert!(cycles > 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SystemDma {
    config: SystemDmaConfig,
}

impl SystemDma {
    /// Creates a DMA with the given configuration.
    pub fn new(config: SystemDmaConfig) -> Self {
        Self { config }
    }

    /// Copies `len` words from `src_addr` to `dst_addr` within the SRAM,
    /// returning the cycles consumed (descriptor setup + read and write
    /// beats over the bus).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidDmaTransfer`] for a zero-length transfer or
    /// SRAM address errors.
    pub fn copy_within_sram(
        &self,
        sram: &mut Sram,
        bus: &mut Bus,
        src_addr: usize,
        dst_addr: usize,
        len: usize,
    ) -> Result<u64> {
        if len == 0 {
            return Err(SocError::InvalidDmaTransfer {
                detail: "transfer length is zero".into(),
            });
        }
        let mut cycles = self.config.setup_cycles;
        for i in 0..len {
            let v = sram.read_word(src_addr + i)?;
            sram.write_word(dst_addr + i, v)?;
        }
        cycles += bus.transfer(BusMaster::SystemDma, 2 * len);
        Ok(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_moves_data_and_charges_bus() {
        let dma = SystemDma::new(SystemDmaConfig { setup_cycles: 5 });
        let mut sram = Sram::paper();
        let mut bus = Bus::default();
        sram.load(10, &(0..32).collect::<Vec<i32>>()).unwrap();
        let cycles = dma
            .copy_within_sram(&mut sram, &mut bus, 10, 500, 32)
            .unwrap();
        assert_eq!(sram.dump(500, 32).unwrap(), (0..32).collect::<Vec<i32>>());
        assert!(cycles >= 5 + 64);
        assert_eq!(bus.traffic(BusMaster::SystemDma).beats, 64);
    }

    #[test]
    fn zero_length_rejected() {
        let dma = SystemDma::default();
        let mut sram = Sram::paper();
        let mut bus = Bus::default();
        assert!(dma.copy_within_sram(&mut sram, &mut bus, 0, 0, 0).is_err());
    }
}
