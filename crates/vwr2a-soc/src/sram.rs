//! On-chip SRAM: 192 KiB in six individually power-gateable banks.
//!
//! The platform of Sec. 4.1 has 192 KiB of SRAM divided into six banks that
//! can be individually power gated to save leakage.  The model stores the
//! data, enforces the gating (reads/writes to a gated bank are errors, and
//! gating a bank loses its contents), and counts accesses and gated/active
//! cycles for the energy model.

use crate::error::{Result, SocError};
use serde::{Deserialize, Serialize};

/// The banked SRAM.
///
/// # Example
///
/// ```
/// use vwr2a_soc::sram::Sram;
///
/// # fn main() -> Result<(), vwr2a_soc::error::SocError> {
/// let mut sram = Sram::paper();           // 6 banks × 32 KiB
/// sram.write_word(0, 123)?;
/// assert_eq!(sram.read_word(0)?, 123);
/// assert_eq!(sram.banks(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sram {
    words: Vec<i32>,
    bank_words: usize,
    gated: Vec<bool>,
    reads: u64,
    writes: u64,
}

impl Sram {
    /// Creates an SRAM with `banks` banks of `bank_bytes` bytes each.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or `bank_bytes` is not a multiple of 4.
    pub fn new(banks: usize, bank_bytes: usize) -> Self {
        assert!(banks > 0, "sram needs at least one bank");
        assert!(
            bank_bytes.is_multiple_of(4),
            "bank size must be whole words"
        );
        let bank_words = bank_bytes / 4;
        Self {
            words: vec![0; banks * bank_words],
            bank_words,
            gated: vec![false; banks],
            reads: 0,
            writes: 0,
        }
    }

    /// The paper's configuration: six banks of 32 KiB (192 KiB total).
    pub fn paper() -> Self {
        Self::new(6, 32 * 1024)
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.gated.len()
    }

    /// Capacity in 32-bit words.
    pub fn words(&self) -> usize {
        self.words.len()
    }

    /// Words per bank.
    pub fn bank_words(&self) -> usize {
        self.bank_words
    }

    /// Which bank a word address belongs to.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::AddressOutOfRange`] if the address is outside the
    /// memory.
    pub fn bank_of(&self, word_addr: usize) -> Result<usize> {
        if word_addr >= self.words.len() {
            return Err(SocError::AddressOutOfRange {
                addr: word_addr,
                capacity: self.words.len(),
            });
        }
        Ok(word_addr / self.bank_words)
    }

    /// `true` if a bank is currently power gated.
    pub fn is_gated(&self, bank: usize) -> bool {
        self.gated.get(bank).copied().unwrap_or(false)
    }

    /// Gates or ungates a bank.  Gating a bank clears its contents (the
    /// retention-less power gating used for maximum leakage savings).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::AddressOutOfRange`] for an invalid bank index.
    pub fn set_gated(&mut self, bank: usize, gated: bool) -> Result<()> {
        if bank >= self.gated.len() {
            return Err(SocError::AddressOutOfRange {
                addr: bank,
                capacity: self.gated.len(),
            });
        }
        if gated && !self.gated[bank] {
            let start = bank * self.bank_words;
            self.words[start..start + self.bank_words].fill(0);
        }
        self.gated[bank] = gated;
        Ok(())
    }

    /// Number of banks currently powered on.
    pub fn active_banks(&self) -> usize {
        self.gated.iter().filter(|&&g| !g).count()
    }

    /// Reads one word.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::AddressOutOfRange`] or [`SocError::BankPowerGated`].
    pub fn read_word(&mut self, word_addr: usize) -> Result<i32> {
        let bank = self.bank_of(word_addr)?;
        if self.gated[bank] {
            return Err(SocError::BankPowerGated { bank });
        }
        self.reads += 1;
        Ok(self.words[word_addr])
    }

    /// Writes one word.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::AddressOutOfRange`] or [`SocError::BankPowerGated`].
    pub fn write_word(&mut self, word_addr: usize, value: i32) -> Result<()> {
        let bank = self.bank_of(word_addr)?;
        if self.gated[bank] {
            return Err(SocError::BankPowerGated { bank });
        }
        self.writes += 1;
        self.words[word_addr] = value;
        Ok(())
    }

    /// Bulk host-side write without access accounting (test/seed helper).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::AddressOutOfRange`] if the slice does not fit.
    pub fn load(&mut self, word_addr: usize, data: &[i32]) -> Result<()> {
        let end = word_addr
            .checked_add(data.len())
            .filter(|&e| e <= self.words.len())
            .ok_or(SocError::AddressOutOfRange {
                addr: word_addr + data.len(),
                capacity: self.words.len(),
            })?;
        self.words[word_addr..end].copy_from_slice(data);
        Ok(())
    }

    /// Bulk host-side read without access accounting.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::AddressOutOfRange`] if the range does not fit.
    pub fn dump(&self, word_addr: usize, len: usize) -> Result<Vec<i32>> {
        let end = word_addr
            .checked_add(len)
            .filter(|&e| e <= self.words.len())
            .ok_or(SocError::AddressOutOfRange {
                addr: word_addr + len,
                capacity: self.words.len(),
            })?;
        Ok(self.words[word_addr..end].to_vec())
    }

    /// Counted word reads so far.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Counted word writes so far.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Resets the access counters.
    pub fn reset_counters(&mut self) {
        self.reads = 0;
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration() {
        let sram = Sram::paper();
        assert_eq!(sram.banks(), 6);
        assert_eq!(sram.words(), 6 * 32 * 1024 / 4);
        assert_eq!(sram.bank_words(), 8192);
        assert_eq!(sram.active_banks(), 6);
    }

    #[test]
    fn read_write_and_counters() {
        let mut sram = Sram::new(2, 1024);
        sram.write_word(10, -3).unwrap();
        assert_eq!(sram.read_word(10).unwrap(), -3);
        assert_eq!(sram.read_count(), 1);
        assert_eq!(sram.write_count(), 1);
        sram.reset_counters();
        assert_eq!(sram.read_count(), 0);
    }

    #[test]
    fn gated_banks_reject_access_and_lose_data() {
        let mut sram = Sram::new(2, 1024);
        sram.write_word(300, 77).unwrap(); // word 300 is in bank 1 (256 words per bank)
        assert_eq!(sram.bank_of(300).unwrap(), 1);
        sram.set_gated(1, true).unwrap();
        assert!(matches!(
            sram.read_word(300),
            Err(SocError::BankPowerGated { bank: 1 })
        ));
        assert!(sram.write_word(300, 1).is_err());
        assert_eq!(sram.active_banks(), 1);
        sram.set_gated(1, false).unwrap();
        assert_eq!(sram.read_word(300).unwrap(), 0, "contents lost while gated");
    }

    #[test]
    fn out_of_range_rejected() {
        let mut sram = Sram::new(1, 1024);
        assert!(sram.read_word(256).is_err());
        assert!(sram.write_word(1000, 0).is_err());
        assert!(sram.set_gated(5, true).is_err());
        assert!(sram.load(200, &[0; 100]).is_err());
        assert!(sram.dump(0, 1000).is_err());
    }

    #[test]
    fn bulk_load_dump_round_trip() {
        let mut sram = Sram::new(1, 4096);
        let data: Vec<i32> = (0..512).map(|i| i * 2 - 512).collect();
        sram.load(100, &data).unwrap();
        assert_eq!(sram.dump(100, 512).unwrap(), data);
        assert_eq!(sram.read_count(), 0, "host access is not counted");
    }
}
