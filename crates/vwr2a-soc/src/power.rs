//! Power domains.
//!
//! The SoC has multiple power domains that can be turned on and off during
//! execution (Sec. 4.1); the accelerators — including VWR2A — share one
//! domain and are power gated whenever they are idle, which is why the FFT
//! accelerator contributes no energy to application steps it cannot
//! accelerate (Sec. 5.2.1).  The model tracks, per domain, how many cycles
//! were spent powered on versus gated; the energy model charges leakage only
//! for powered-on cycles.

use crate::error::{Result, SocError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// State of one power domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DomainState {
    /// Whether the domain is currently powered.
    pub powered: bool,
    /// Cycles accumulated while powered.
    pub on_cycles: u64,
    /// Cycles accumulated while gated.
    pub off_cycles: u64,
}

/// A set of named power domains.
///
/// # Example
///
/// ```
/// use vwr2a_soc::power::PowerDomains;
///
/// # fn main() -> Result<(), vwr2a_soc::error::SocError> {
/// let mut domains = PowerDomains::paper();
/// domains.set_powered("accelerators", true)?;
/// domains.advance(100);
/// assert_eq!(domains.state("accelerators")?.on_cycles, 100);
/// assert_eq!(domains.state("cpu")?.on_cycles, 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowerDomains {
    domains: BTreeMap<String, DomainState>,
}

impl PowerDomains {
    /// Creates an empty set of domains.
    pub fn new() -> Self {
        Self {
            domains: BTreeMap::new(),
        }
    }

    /// The paper's platform: an always-on CPU/memory domain, one domain for
    /// the fixed-function accelerators plus VWR2A, and the analog front-end.
    pub fn paper() -> Self {
        let mut p = Self::new();
        p.add_domain("cpu", true);
        p.add_domain("sram", true);
        p.add_domain("accelerators", false);
        p.add_domain("afe", false);
        p
    }

    /// Adds (or resets) a domain with an initial power state.
    pub fn add_domain(&mut self, name: &str, powered: bool) {
        self.domains.insert(
            name.to_string(),
            DomainState {
                powered,
                on_cycles: 0,
                off_cycles: 0,
            },
        );
    }

    /// Names of all domains.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.domains.keys().map(String::as_str)
    }

    /// The state of a domain.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::UnknownPowerDomain`] for an unknown name.
    pub fn state(&self, name: &str) -> Result<DomainState> {
        self.domains
            .get(name)
            .copied()
            .ok_or_else(|| SocError::UnknownPowerDomain {
                name: name.to_string(),
            })
    }

    /// Powers a domain on or off.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::UnknownPowerDomain`] for an unknown name.
    pub fn set_powered(&mut self, name: &str, powered: bool) -> Result<()> {
        let d = self
            .domains
            .get_mut(name)
            .ok_or_else(|| SocError::UnknownPowerDomain {
                name: name.to_string(),
            })?;
        d.powered = powered;
        Ok(())
    }

    /// Advances time by `cycles`, crediting each domain's on/off counter
    /// according to its current state.
    pub fn advance(&mut self, cycles: u64) {
        for d in self.domains.values_mut() {
            if d.powered {
                d.on_cycles += cycles;
            } else {
                d.off_cycles += cycles;
            }
        }
    }

    /// Runs `cycles` with a domain temporarily powered on, restoring its
    /// previous state afterwards (the "wake the accelerator domain, run a
    /// kernel, gate it again" pattern of the platform firmware).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::UnknownPowerDomain`] for an unknown name.
    pub fn advance_with(&mut self, name: &str, cycles: u64) -> Result<()> {
        let was = self.state(name)?.powered;
        self.set_powered(name, true)?;
        self.advance(cycles);
        self.set_powered(name, was)
    }

    /// Resets all counters (keeps power states).
    pub fn reset_counters(&mut self) {
        for d in self.domains.values_mut() {
            d.on_cycles = 0;
            d.off_cycles = 0;
        }
    }
}

impl Default for PowerDomains {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_domains_exist() {
        let p = PowerDomains::paper();
        for name in ["cpu", "sram", "accelerators", "afe"] {
            assert!(p.state(name).is_ok(), "{name} missing");
        }
        assert!(p.state("cpu").unwrap().powered);
        assert!(!p.state("accelerators").unwrap().powered);
        assert_eq!(p.names().count(), 4);
    }

    #[test]
    fn advance_credits_the_right_counter() {
        let mut p = PowerDomains::paper();
        p.advance(50);
        assert_eq!(p.state("cpu").unwrap().on_cycles, 50);
        assert_eq!(p.state("accelerators").unwrap().off_cycles, 50);
        p.set_powered("accelerators", true).unwrap();
        p.advance(10);
        assert_eq!(p.state("accelerators").unwrap().on_cycles, 10);
    }

    #[test]
    fn advance_with_restores_previous_state() {
        let mut p = PowerDomains::paper();
        p.advance_with("accelerators", 200).unwrap();
        let s = p.state("accelerators").unwrap();
        assert_eq!(s.on_cycles, 200);
        assert!(!s.powered, "domain is gated again after the kernel");
    }

    #[test]
    fn unknown_domain_is_an_error() {
        let mut p = PowerDomains::paper();
        assert!(p.state("gpu").is_err());
        assert!(p.set_powered("gpu", true).is_err());
        assert!(p.advance_with("npu", 1).is_err());
    }

    #[test]
    fn reset_counters_keeps_states() {
        let mut p = PowerDomains::paper();
        p.advance(100);
        p.reset_counters();
        assert_eq!(p.state("cpu").unwrap().on_cycles, 0);
        assert!(p.state("cpu").unwrap().powered);
    }
}
