//! Biosignal SoC substrate for the VWR2A reproduction.
//!
//! The VWR2A paper evaluates the accelerator inside an ultra-low-power SoC
//! for biomedical signal acquisition (Sec. 4.1): an ARM Cortex-M4F, 192 KiB
//! of banked SRAM, an AMBA-AHB interconnect, a DMA, fixed-function
//! accelerators and multiple power domains.  This crate provides that
//! platform as a set of composable models:
//!
//! * [`cpu`] — a Cortex-M4-like scalar instruction-set simulator plus the
//!   hand-written baseline kernel programs (FIR, FFT, delineation, feature
//!   extraction, SVM) used for the CPU columns of the paper's tables;
//! * [`sram`] — 192 KiB of SRAM in six power-gateable banks;
//! * [`bus`] — an AHB-like bus model with per-master traffic accounting;
//! * [`dma`] — the system DMA controller;
//! * [`irq`] — the interrupt controller through which accelerators signal
//!   completion;
//! * [`power`] — the power domains and their on/off cycle bookkeeping;
//! * [`soc`] — [`soc::BiosignalSoc`], the assembled platform.
//!
//! The fixed-function FFT accelerator and VWR2A itself live in the
//! `vwr2a-fftaccel` and `vwr2a-core` crates; the `vwr2a-bioapp` crate wires
//! everything together for the application-level experiments.
//!
//! # Example
//!
//! ```
//! use vwr2a_soc::soc::BiosignalSoc;
//! use vwr2a_soc::cpu::kernels::fir_q15_program;
//!
//! # fn main() -> Result<(), vwr2a_soc::error::SocError> {
//! let mut soc = BiosignalSoc::new();
//! // Stage a tiny signal and an averaging filter, then run the CPU kernel.
//! soc.sram_mut().load(0, &[100, 200, 300, 400])?;
//! soc.sram_mut().load(4, &[16384, 16384])?; // two 0.5 taps in q15
//! let program = fir_q15_program(4, 2, 0, 4, 8)?;
//! let stats = soc.run_cpu_program(&program)?;
//! assert!(stats.cycles > 0);
//! assert_eq!(soc.sram().dump(8, 4)?, vec![50, 150, 250, 350]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod cpu;
pub mod dma;
pub mod error;
pub mod irq;
pub mod power;
pub mod soc;
pub mod sram;

pub use error::SocError;
pub use soc::BiosignalSoc;
