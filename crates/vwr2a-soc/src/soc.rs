//! The biosignal-processing SoC.
//!
//! [`BiosignalSoc`] assembles the substrate of Sec. 4.1: the Cortex-M4-like
//! CPU, the 192 KiB banked SRAM, the AHB-like bus, the system DMA, the
//! interrupt controller and the power domains.  Accelerators (the
//! fixed-function FFT engine and VWR2A) live in their own crates and attach
//! to this structure through the bus-master accounting and the
//! `accelerators` power domain; the `vwr2a-bioapp` crate drives the whole
//! platform for the application-level experiments.

use crate::bus::{Bus, BusMaster};
use crate::cpu::{Cpu, CpuInstr, CpuRunStats};
use crate::dma::SystemDma;
use crate::error::Result;
use crate::irq::InterruptController;
use crate::power::PowerDomains;
use crate::sram::Sram;

/// The assembled SoC platform.
///
/// # Example
///
/// ```
/// use vwr2a_soc::soc::BiosignalSoc;
/// use vwr2a_soc::cpu::CpuInstr;
///
/// # fn main() -> Result<(), vwr2a_soc::error::SocError> {
/// let mut soc = BiosignalSoc::new();
/// let program = vec![
///     CpuInstr::Li { rd: 1, imm: 7 },
///     CpuInstr::Sw { rs2: 1, rs1: 0, offset: 0 },
///     CpuInstr::Halt,
/// ];
/// let stats = soc.run_cpu_program(&program)?;
/// assert_eq!(soc.sram().dump(0, 1)?[0], 7);
/// assert!(stats.cycles > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BiosignalSoc {
    cpu: Cpu,
    sram: Sram,
    bus: Bus,
    dma: SystemDma,
    irq: InterruptController,
    power: PowerDomains,
    frequency_hz: f64,
}

impl BiosignalSoc {
    /// The platform clock frequency used in the paper (80 MHz).
    pub const PAPER_FREQUENCY_HZ: f64 = 80.0e6;

    /// Creates the platform with the paper's configuration.
    pub fn new() -> Self {
        Self {
            cpu: Cpu::new(),
            sram: Sram::paper(),
            bus: Bus::default(),
            dma: SystemDma::default(),
            irq: InterruptController::new(8),
            power: PowerDomains::paper(),
            frequency_hz: Self::PAPER_FREQUENCY_HZ,
        }
    }

    /// The CPU.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Mutable access to the CPU (setting argument registers).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// The SRAM.
    pub fn sram(&self) -> &Sram {
        &self.sram
    }

    /// Mutable access to the SRAM (seeding inputs, reading results).
    pub fn sram_mut(&mut self) -> &mut Sram {
        &mut self.sram
    }

    /// The system bus.
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Mutable access to the system bus (accelerator integration charges its
    /// traffic here).
    pub fn bus_mut(&mut self) -> &mut Bus {
        &mut self.bus
    }

    /// The interrupt controller.
    pub fn irq(&self) -> &InterruptController {
        &self.irq
    }

    /// Mutable access to the interrupt controller.
    pub fn irq_mut(&mut self) -> &mut InterruptController {
        &mut self.irq
    }

    /// The power domains.
    pub fn power(&self) -> &PowerDomains {
        &self.power
    }

    /// Mutable access to the power domains.
    pub fn power_mut(&mut self) -> &mut PowerDomains {
        &mut self.power
    }

    /// The platform clock frequency in hertz.
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    /// Runs a CPU program to completion, advancing the power domains and
    /// charging the CPU's memory traffic to the bus.
    ///
    /// # Errors
    ///
    /// Propagates CPU and SRAM errors.
    pub fn run_cpu_program(&mut self, program: &[CpuInstr]) -> Result<CpuRunStats> {
        let stats = self.cpu.run(program, &mut self.sram)?;
        self.bus
            .transfer(BusMaster::Cpu, (stats.loads + stats.stores) as usize);
        self.power.advance(stats.cycles);
        Ok(stats)
    }

    /// Copies data within the SRAM using the system DMA, advancing the power
    /// domains by the transfer duration.
    ///
    /// # Errors
    ///
    /// Propagates DMA and SRAM errors.
    pub fn dma_copy(&mut self, src_addr: usize, dst_addr: usize, len: usize) -> Result<u64> {
        let cycles =
            self.dma
                .copy_within_sram(&mut self.sram, &mut self.bus, src_addr, dst_addr, len)?;
        self.power.advance(cycles);
        Ok(cycles)
    }

    /// Converts a cycle count to microseconds at the platform frequency.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / self.frequency_hz * 1e6
    }
}

impl Default for BiosignalSoc {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::kernels::fir_q15_program;
    use vwr2a_dsp::fir::design_lowpass;
    use vwr2a_dsp::fixed::Q15;

    #[test]
    fn cpu_program_advances_power_and_bus() {
        let mut soc = BiosignalSoc::new();
        let program = vec![
            CpuInstr::Li { rd: 1, imm: 3 },
            CpuInstr::Sw {
                rs2: 1,
                rs1: 0,
                offset: 5,
            },
            CpuInstr::Lw {
                rd: 2,
                rs1: 0,
                offset: 5,
            },
            CpuInstr::Halt,
        ];
        let stats = soc.run_cpu_program(&program).unwrap();
        assert_eq!(stats.loads, 1);
        assert_eq!(stats.stores, 1);
        assert_eq!(soc.bus().traffic(BusMaster::Cpu).beats, 2);
        assert_eq!(soc.power().state("cpu").unwrap().on_cycles, stats.cycles);
        assert!(soc.cycles_to_us(80) > 0.99 && soc.cycles_to_us(80) < 1.01);
    }

    #[test]
    fn fir_kernel_runs_end_to_end_on_the_soc() {
        let mut soc = BiosignalSoc::new();
        let n = 64;
        let taps = design_lowpass(11, 0.1).unwrap();
        let taps_q: Vec<i32> = taps.iter().map(|&v| Q15::from_f64(v).0 as i32).collect();
        let input: Vec<i32> = (0..n).map(|i| ((i % 16) as i32 - 8) * 100).collect();
        soc.sram_mut().load(0, &input).unwrap();
        soc.sram_mut().load(n, &taps_q).unwrap();
        let program = fir_q15_program(n, 11, 0, n, n + 16).unwrap();
        let stats = soc.run_cpu_program(&program).unwrap();
        assert!(stats.cycles > 1000);
        let out = soc.sram().dump(n + 16, n).unwrap();
        assert!(out.iter().any(|&v| v != 0));
    }

    #[test]
    fn dma_copy_round_trip() {
        let mut soc = BiosignalSoc::new();
        soc.sram_mut().load(0, &[9, 8, 7]).unwrap();
        let cycles = soc.dma_copy(0, 1000, 3).unwrap();
        assert_eq!(soc.sram().dump(1000, 3).unwrap(), vec![9, 8, 7]);
        assert!(cycles > 3);
    }
}
