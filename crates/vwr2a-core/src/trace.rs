//! Activity counters used for the energy model.
//!
//! The paper estimates power from post-synthesis switching activity with
//! PrimePower.  Our substitute is architectural: every simulated component
//! increments an activity counter whenever it does work, and the
//! `vwr2a-energy` crate multiplies the counters by calibrated per-event
//! energies.  The counter categories mirror the breakdown of Table 3
//! (DMA / Memories / Control / Datapath).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Per-component activity counters accumulated over a kernel run.
///
/// # Example
///
/// ```
/// use vwr2a_core::trace::ActivityCounters;
///
/// let mut a = ActivityCounters::default();
/// a.rc_alu_ops = 10;
/// let mut b = ActivityCounters::default();
/// b.rc_alu_ops = 5;
/// assert_eq!((a + b).rc_alu_ops, 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ActivityCounters {
    /// Total cycles the array was active.
    pub cycles: u64,
    /// Non-NOP RC instructions issued (ALU activations).
    pub rc_alu_ops: u64,
    /// RC multiplications (subset of `rc_alu_ops`, charged extra energy).
    pub rc_multiplies: u64,
    /// RC local register file reads.
    pub rc_reg_reads: u64,
    /// RC local register file writes.
    pub rc_reg_writes: u64,
    /// Word reads from a VWR by the datapath.
    pub vwr_word_reads: u64,
    /// Word writes to a VWR by the datapath.
    pub vwr_word_writes: u64,
    /// Whole-line VWR fills/drains (SPM-side port activations).
    pub vwr_line_transfers: u64,
    /// SPM wide-line reads (accelerator side).
    pub spm_line_reads: u64,
    /// SPM wide-line writes (accelerator side).
    pub spm_line_writes: u64,
    /// SPM narrow word reads (scalar / system side).
    pub spm_word_reads: u64,
    /// SPM narrow word writes (scalar / system side).
    pub spm_word_writes: u64,
    /// SRF reads.
    pub srf_reads: u64,
    /// SRF writes.
    pub srf_writes: u64,
    /// Shuffle-unit activations.
    pub shuffle_ops: u64,
    /// Non-NOP instruction issues across all slots (control/sequencing
    /// activity: program memory reads, PC updates).
    pub instr_issues: u64,
    /// NOP issues (clock but no datapath activity; operand isolation keeps
    /// their dynamic cost near zero).
    pub nop_issues: u64,
    /// Taken LCU branches and jumps.
    pub lcu_branches: u64,
    /// Words moved by the VWR2A DMA between the SPM and system memory.
    pub dma_words: u64,
    /// DMA transfer setup events (descriptor programming).
    pub dma_transfers: u64,
    /// Configuration words loaded from the configuration memory into the
    /// per-slot program memories at kernel start.
    pub config_words_loaded: u64,
}

impl ActivityCounters {
    /// Creates a zeroed counter set (same as `Default::default()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total SPM accesses of any width.
    pub fn spm_accesses(&self) -> u64 {
        self.spm_line_reads + self.spm_line_writes + self.spm_word_reads + self.spm_word_writes
    }

    /// Total VWR accesses of any width.
    pub fn vwr_accesses(&self) -> u64 {
        self.vwr_word_reads + self.vwr_word_writes + self.vwr_line_transfers
    }
}

impl Add for ActivityCounters {
    type Output = ActivityCounters;
    fn add(mut self, rhs: ActivityCounters) -> ActivityCounters {
        self += rhs;
        self
    }
}

impl AddAssign for ActivityCounters {
    fn add_assign(&mut self, rhs: ActivityCounters) {
        self.cycles += rhs.cycles;
        self.rc_alu_ops += rhs.rc_alu_ops;
        self.rc_multiplies += rhs.rc_multiplies;
        self.rc_reg_reads += rhs.rc_reg_reads;
        self.rc_reg_writes += rhs.rc_reg_writes;
        self.vwr_word_reads += rhs.vwr_word_reads;
        self.vwr_word_writes += rhs.vwr_word_writes;
        self.vwr_line_transfers += rhs.vwr_line_transfers;
        self.spm_line_reads += rhs.spm_line_reads;
        self.spm_line_writes += rhs.spm_line_writes;
        self.spm_word_reads += rhs.spm_word_reads;
        self.spm_word_writes += rhs.spm_word_writes;
        self.srf_reads += rhs.srf_reads;
        self.srf_writes += rhs.srf_writes;
        self.shuffle_ops += rhs.shuffle_ops;
        self.instr_issues += rhs.instr_issues;
        self.nop_issues += rhs.nop_issues;
        self.lcu_branches += rhs.lcu_branches;
        self.dma_words += rhs.dma_words;
        self.dma_transfers += rhs.dma_transfers;
        self.config_words_loaded += rhs.config_words_loaded;
    }
}

impl Sub for ActivityCounters {
    type Output = ActivityCounters;
    fn sub(mut self, rhs: ActivityCounters) -> ActivityCounters {
        self -= rhs;
        self
    }
}

impl SubAssign for ActivityCounters {
    fn sub_assign(&mut self, rhs: ActivityCounters) {
        self.cycles -= rhs.cycles;
        self.rc_alu_ops -= rhs.rc_alu_ops;
        self.rc_multiplies -= rhs.rc_multiplies;
        self.rc_reg_reads -= rhs.rc_reg_reads;
        self.rc_reg_writes -= rhs.rc_reg_writes;
        self.vwr_word_reads -= rhs.vwr_word_reads;
        self.vwr_word_writes -= rhs.vwr_word_writes;
        self.vwr_line_transfers -= rhs.vwr_line_transfers;
        self.spm_line_reads -= rhs.spm_line_reads;
        self.spm_line_writes -= rhs.spm_line_writes;
        self.spm_word_reads -= rhs.spm_word_reads;
        self.spm_word_writes -= rhs.spm_word_writes;
        self.srf_reads -= rhs.srf_reads;
        self.srf_writes -= rhs.srf_writes;
        self.shuffle_ops -= rhs.shuffle_ops;
        self.instr_issues -= rhs.instr_issues;
        self.nop_issues -= rhs.nop_issues;
        self.lcu_branches -= rhs.lcu_branches;
        self.dma_words -= rhs.dma_words;
        self.dma_transfers -= rhs.dma_transfers;
        self.config_words_loaded -= rhs.config_words_loaded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_accumulates_every_field() {
        let mut a = ActivityCounters::new();
        a.cycles = 1;
        a.rc_alu_ops = 2;
        a.rc_multiplies = 3;
        a.vwr_word_reads = 4;
        a.spm_line_reads = 5;
        a.srf_reads = 6;
        a.dma_words = 7;
        a.config_words_loaded = 8;
        let b = a;
        let sum = a + b;
        assert_eq!(sum.cycles, 2);
        assert_eq!(sum.rc_alu_ops, 4);
        assert_eq!(sum.rc_multiplies, 6);
        assert_eq!(sum.vwr_word_reads, 8);
        assert_eq!(sum.spm_line_reads, 10);
        assert_eq!(sum.srf_reads, 12);
        assert_eq!(sum.dma_words, 14);
        assert_eq!(sum.config_words_loaded, 16);
    }

    #[test]
    fn subtraction_inverts_addition() {
        let mut a = ActivityCounters::new();
        a.cycles = 10;
        a.rc_alu_ops = 20;
        a.dma_words = 30;
        a.config_words_loaded = 40;
        let mut b = ActivityCounters::new();
        b.cycles = 3;
        b.rc_alu_ops = 4;
        b.dma_words = 5;
        b.config_words_loaded = 6;
        assert_eq!((a + b) - b, a);
        let d = a - b;
        assert_eq!(d.cycles, 7);
        assert_eq!(d.rc_alu_ops, 16);
        assert_eq!(d.dma_words, 25);
        assert_eq!(d.config_words_loaded, 34);
    }

    #[test]
    fn aggregate_helpers() {
        let mut a = ActivityCounters::new();
        a.spm_line_reads = 1;
        a.spm_line_writes = 2;
        a.spm_word_reads = 3;
        a.spm_word_writes = 4;
        a.vwr_word_reads = 5;
        a.vwr_word_writes = 6;
        a.vwr_line_transfers = 7;
        assert_eq!(a.spm_accesses(), 10);
        assert_eq!(a.vwr_accesses(), 18);
    }
}
