//! Shared scratchpad memory (SPM).
//!
//! VWR2A contains a 32 KiB SPM shared by both columns (Sec. 3.2).  It has a
//! double interface: on the system side it is accessed through the DMA with
//! the system-bus width (32-bit words); on the accelerator side it matches
//! the VWR width, so an entire 4096-bit line moves between the SPM and a VWR
//! in a single cycle.

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// The shared scratchpad memory.
///
/// # Example
///
/// ```
/// use vwr2a_core::spm::Spm;
///
/// # fn main() -> Result<(), vwr2a_core::error::CoreError> {
/// // Paper geometry: 8192 words organised as 64 lines of 128 words.
/// let mut spm = Spm::new(8192, 128);
/// spm.write_word(130, 7)?;
/// // Word 130 lives in line 1, offset 2.
/// assert_eq!(spm.read_line(1)?[2], 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Spm {
    words: Vec<i32>,
    line_words: usize,
}

impl Spm {
    /// Creates an SPM of `total_words` 32-bit words with `line_words` words
    /// per accelerator-side line.
    ///
    /// # Panics
    ///
    /// Panics if `line_words` is zero or does not divide `total_words`; the
    /// geometry validation in [`crate::geometry::Geometry::validate`]
    /// guarantees this for simulator-constructed instances.
    pub fn new(total_words: usize, line_words: usize) -> Self {
        assert!(line_words > 0, "line width must be non-zero");
        assert!(
            total_words.is_multiple_of(line_words),
            "spm size must be a whole number of lines"
        );
        Self {
            words: vec![0; total_words],
            line_words,
        }
    }

    /// Capacity in 32-bit words.
    pub fn words(&self) -> usize {
        self.words.len()
    }

    /// Words per accelerator-side line.
    pub fn line_words(&self) -> usize {
        self.line_words
    }

    /// Number of accelerator-side lines.
    pub fn lines(&self) -> usize {
        self.words.len() / self.line_words
    }

    /// Reads one word (system-side / scalar access).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SpmOutOfRange`] if `word_addr` is out of range.
    pub fn read_word(&self, word_addr: usize) -> Result<i32> {
        self.words
            .get(word_addr)
            .copied()
            .ok_or(CoreError::SpmOutOfRange {
                addr: word_addr,
                capacity: self.words.len(),
                unit: "word",
            })
    }

    /// Writes one word (system-side / scalar access).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SpmOutOfRange`] if `word_addr` is out of range.
    pub fn write_word(&mut self, word_addr: usize, value: i32) -> Result<()> {
        let capacity = self.words.len();
        match self.words.get_mut(word_addr) {
            Some(w) => {
                *w = value;
                Ok(())
            }
            None => Err(CoreError::SpmOutOfRange {
                addr: word_addr,
                capacity,
                unit: "word",
            }),
        }
    }

    /// Reads a full accelerator-side line.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SpmOutOfRange`] if `line_addr` is out of range.
    pub fn read_line(&self, line_addr: usize) -> Result<&[i32]> {
        if line_addr >= self.lines() {
            return Err(CoreError::SpmOutOfRange {
                addr: line_addr,
                capacity: self.lines(),
                unit: "line",
            });
        }
        let start = line_addr * self.line_words;
        Ok(&self.words[start..start + self.line_words])
    }

    /// Writes a full accelerator-side line.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SpmOutOfRange`] if `line_addr` is out of range or
    /// `line` is not exactly one line wide.
    pub fn write_line(&mut self, line_addr: usize, line: &[i32]) -> Result<()> {
        if line_addr >= self.lines() {
            return Err(CoreError::SpmOutOfRange {
                addr: line_addr,
                capacity: self.lines(),
                unit: "line",
            });
        }
        if line.len() != self.line_words {
            return Err(CoreError::SpmOutOfRange {
                addr: line.len(),
                capacity: self.line_words,
                unit: "word",
            });
        }
        let start = line_addr * self.line_words;
        self.words[start..start + self.line_words].copy_from_slice(line);
        Ok(())
    }

    /// Copies a word slice into the SPM starting at `word_addr`
    /// (host-convenience used to seed kernels and by the DMA model).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SpmOutOfRange`] if the transfer would run past
    /// the end of the memory.
    pub fn write_words(&mut self, word_addr: usize, data: &[i32]) -> Result<()> {
        let end = word_addr
            .checked_add(data.len())
            .filter(|&e| e <= self.words.len())
            .ok_or(CoreError::SpmOutOfRange {
                addr: word_addr + data.len(),
                capacity: self.words.len(),
                unit: "word",
            })?;
        self.words[word_addr..end].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` words starting at `word_addr` into a new vector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SpmOutOfRange`] if the range is out of bounds.
    pub fn read_words(&self, word_addr: usize, len: usize) -> Result<Vec<i32>> {
        let end = word_addr
            .checked_add(len)
            .filter(|&e| e <= self.words.len())
            .ok_or(CoreError::SpmOutOfRange {
                addr: word_addr + len,
                capacity: self.words.len(),
                unit: "word",
            })?;
        Ok(self.words[word_addr..end].to_vec())
    }

    /// Clears the whole memory to zero.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_and_line_views_are_consistent() {
        let mut spm = Spm::new(256, 64);
        assert_eq!(spm.lines(), 4);
        for i in 0..256 {
            spm.write_word(i, i as i32).unwrap();
        }
        let line2 = spm.read_line(2).unwrap();
        assert_eq!(line2[0], 128);
        assert_eq!(line2[63], 191);
    }

    #[test]
    fn line_write_round_trip() {
        let mut spm = Spm::new(256, 64);
        let line: Vec<i32> = (0..64).map(|i| -i).collect();
        spm.write_line(3, &line).unwrap();
        assert_eq!(spm.read_line(3).unwrap(), line.as_slice());
        assert_eq!(spm.read_word(3 * 64 + 5).unwrap(), -5);
    }

    #[test]
    fn out_of_range_accesses_rejected() {
        let mut spm = Spm::new(128, 64);
        assert!(spm.read_word(128).is_err());
        assert!(spm.write_word(usize::MAX, 0).is_err());
        assert!(spm.read_line(2).is_err());
        assert!(spm.write_line(0, &[0; 32]).is_err());
        assert!(spm.write_words(100, &[0; 64]).is_err());
        assert!(spm.read_words(64, 65).is_err());
    }

    #[test]
    fn bulk_word_copy() {
        let mut spm = Spm::new(128, 64);
        let data: Vec<i32> = (0..50).collect();
        spm.write_words(10, &data).unwrap();
        assert_eq!(spm.read_words(10, 50).unwrap(), data);
        spm.clear();
        assert_eq!(spm.read_word(10).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "whole number of lines")]
    fn construction_validates_line_divisibility() {
        let _ = Spm::new(100, 64);
    }
}
