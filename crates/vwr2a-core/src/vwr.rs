//! Very-wide registers (VWRs).
//!
//! A VWR is a single-ported 4096-bit register (128 × 32-bit words in the
//! paper's geometry) acting as a buffer between the SPM and the RCs
//! (Sec. 3.2).  On the SPM side it is filled or drained a whole line at a
//! time; on the datapath side each RC reads or writes one word of its
//! quarter-slice per cycle through the multiplexer network.

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// One very-wide register.
///
/// # Example
///
/// ```
/// use vwr2a_core::vwr::Vwr;
///
/// # fn main() -> Result<(), vwr2a_core::error::CoreError> {
/// let mut vwr = Vwr::new(128);
/// vwr.write_word(5, 42)?;
/// assert_eq!(vwr.read_word(5)?, 42);
/// assert_eq!(vwr.words().len(), 128);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vwr {
    words: Vec<i32>,
}

impl Vwr {
    /// Creates a VWR of `words` 32-bit words, initialised to zero.
    pub fn new(words: usize) -> Self {
        Self {
            words: vec![0; words],
        }
    }

    /// Number of 32-bit words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` if the register has zero words (never the case for a real
    /// geometry, but required for a well-behaved collection-like API).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads one word.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::VwrIndexOutOfRange`] if `index` is out of range.
    pub fn read_word(&self, index: usize) -> Result<i32> {
        self.words
            .get(index)
            .copied()
            .ok_or(CoreError::VwrIndexOutOfRange {
                index,
                capacity: self.words.len(),
            })
    }

    /// Writes one word.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::VwrIndexOutOfRange`] if `index` is out of range.
    pub fn write_word(&mut self, index: usize, value: i32) -> Result<()> {
        let capacity = self.words.len();
        match self.words.get_mut(index) {
            Some(w) => {
                *w = value;
                Ok(())
            }
            None => Err(CoreError::VwrIndexOutOfRange { index, capacity }),
        }
    }

    /// The full contents (one SPM line's worth of words).
    pub fn words(&self) -> &[i32] {
        &self.words
    }

    /// Overwrites the whole register from a line buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::VwrIndexOutOfRange`] if `line.len()` does not
    /// match the register width.
    pub fn load_line(&mut self, line: &[i32]) -> Result<()> {
        if line.len() != self.words.len() {
            return Err(CoreError::VwrIndexOutOfRange {
                index: line.len(),
                capacity: self.words.len(),
            });
        }
        self.words.copy_from_slice(line);
        Ok(())
    }

    /// Clears the register to zero.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut v = Vwr::new(8);
        for i in 0..8 {
            v.write_word(i, i as i32 * 10).unwrap();
        }
        for i in 0..8 {
            assert_eq!(v.read_word(i).unwrap(), i as i32 * 10);
        }
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut v = Vwr::new(4);
        assert!(matches!(
            v.read_word(4),
            Err(CoreError::VwrIndexOutOfRange {
                index: 4,
                capacity: 4
            })
        ));
        assert!(v.write_word(100, 1).is_err());
    }

    #[test]
    fn load_line_requires_exact_width() {
        let mut v = Vwr::new(4);
        assert!(v.load_line(&[1, 2, 3]).is_err());
        v.load_line(&[1, 2, 3, 4]).unwrap();
        assert_eq!(v.words(), &[1, 2, 3, 4]);
        v.clear();
        assert_eq!(v.words(), &[0, 0, 0, 0]);
    }

    #[test]
    fn is_empty_only_for_zero_width() {
        assert!(Vwr::new(0).is_empty());
        assert!(!Vwr::new(1).is_empty());
    }
}
