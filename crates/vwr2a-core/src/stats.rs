//! Run statistics returned by kernel executions.

use crate::trace::ActivityCounters;
use serde::{Deserialize, Serialize};

/// Converts a cycle count to microseconds at the given clock frequency.
///
/// The single definition behind every `time_us` helper in the workspace
/// ([`RunStats::time_us`], the runtime's `RunReport::time_us`, the bench
/// harness).  The paper's SoC runs at 80 MHz.
///
/// # Example
///
/// ```
/// assert!((vwr2a_core::stats::time_us(8_000, 80.0e6) - 100.0).abs() < 1e-9);
/// ```
pub fn time_us(cycles: u64, frequency_hz: f64) -> f64 {
    cycles as f64 / frequency_hz * 1e6
}

/// Statistics of one kernel run on the array.
///
/// # Example
///
/// ```
/// use vwr2a_core::stats::RunStats;
/// use vwr2a_core::trace::ActivityCounters;
///
/// let stats = RunStats {
///     kernel_name: "fir-11tap".into(),
///     cycles: 1849,
///     columns_used: 2,
///     counters: ActivityCounters::default(),
/// };
/// assert!(stats.to_string().contains("fir-11tap"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Name of the kernel that ran (shared with the program it came from —
    /// cloning per window is a reference-count bump, not a string copy).
    pub kernel_name: std::sync::Arc<str>,
    /// Total cycles from kernel launch (including configuration loading) to
    /// the last column's `EXIT`.
    pub cycles: u64,
    /// Number of columns the kernel used.
    pub columns_used: usize,
    /// Activity accumulated during this run only.
    pub counters: ActivityCounters,
}

impl RunStats {
    /// Execution time in microseconds at a given clock frequency.
    ///
    /// The paper's SoC runs at 80 MHz; `stats.time_us(80.0e6)` converts a
    /// cycle count to the same units used in Sec. 5.1.1.
    pub fn time_us(&self, frequency_hz: f64) -> f64 {
        time_us(self.cycles, frequency_hz)
    }
}

impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} cycles on {} column(s), {} RC ops, {} SPM line accesses",
            self.kernel_name,
            self.cycles,
            self.columns_used,
            self.counters.rc_alu_ops,
            self.counters.spm_line_reads + self.counters.spm_line_writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversion_at_80mhz() {
        let stats = RunStats {
            kernel_name: "k".into(),
            cycles: 8_000,
            columns_used: 1,
            counters: ActivityCounters::default(),
        };
        assert!((stats.time_us(80.0e6) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_nonempty_and_mentions_cycles() {
        let stats = RunStats {
            kernel_name: "fft".into(),
            cycles: 7125,
            columns_used: 2,
            counters: ActivityCounters::default(),
        };
        let s = stats.to_string();
        assert!(s.contains("7125"));
        assert!(s.contains("fft"));
    }
}
