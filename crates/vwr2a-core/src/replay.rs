//! Warm-window replay cache: record one interpreted execution, replay it
//! as a straight-line native pass.
//!
//! The paper's workloads are thousands of *identical* warm windows per
//! kernel: the program, the geometry and the control/addressing SRF
//! parameters do not change from window to window — only the data in the
//! SPM does.  Interpreting the same instruction schedule again and again
//! is therefore pure host overhead.  This module removes it:
//!
//! * The **first** execution of a stored kernel runs through the normal
//!   interpreter with a [`TraceRecorder`] attached.  The recorder captures
//!   the *resolved* per-cycle schedule — every ALU operation with its
//!   operand locations already multiplexed (VWR word indices folded with
//!   the MXCU index, SPM line/word addresses resolved), the final cycle
//!   count, the activity-counter delta and the end-of-run control state.
//! * Every **subsequent** warm window whose replay key still matches skips
//!   decode and control-flow interpretation entirely: the recorded
//!   schedule is replayed as a straight-line pass over the live SPM/VWR/
//!   SRF data path ([`ReplayOp`]), and the recorded cycles and counters
//!   are credited verbatim.
//!
//! # Correctness model
//!
//! A trace bakes in *control flow and addressing* but never *data*: ALU
//! results, SPM/VWR/SRF contents all flow through the live architectural
//! state at replay time, so replayed outputs are bit-identical to
//! interpretation even though every window carries different samples.
//! Baking the schedule is sound only if control flow and addressing are
//! reproducible.  Two mechanisms enforce that:
//!
//! * **SRF guards**: every SRF entry consumed for control or addressing
//!   (an LSU address, a loop bound, an MXCU index load) while still
//!   *pristine* — unwritten so far in the execution — becomes a guard
//!   `(column, index, value)`.  A trace replays only if every guard still
//!   matches the live SRF at launch; a host parameter write that changes a
//!   guarded entry simply misses the cache and re-records.  This is the
//!   SRF-write tracking that invalidates keys whose parameters changed.
//! * **Poisoning**: if control or addressing ever consumes an SRF entry
//!   the execution itself has already written (data-dependent control
//!   flow), the trace is poisoned and discarded — such launches always
//!   fall back to interpretation.
//!
//! Traces hang off the configuration-memory slot that owns the kernel
//! ([`crate::config_mem::ConfigMemory`]), so the generational store/
//! remove/clear invalidation the slot map already performs applies to
//! traces (and cached decoded programs) for free.
//!
//! The opt-out knob is [`crate::Vwr2a::set_replay_enabled`]; conformance
//! tests flip it to compare replayed and interpreted executions
//! bit-for-bit.

use crate::isa::lcu::LCU_REGISTERS;
use crate::isa::lsu::ShuffleOp;
use crate::isa::rc::RcOpcode;
use crate::trace::ActivityCounters;
use std::sync::Arc;

/// Maximum SRF entries a recorder can track per column (one bit each).
/// Geometries beyond this poison the trace instead of recording.
const MAX_TRACKED_SRF: usize = 64;

/// A resolved operand source of a replayed RC operation.  All multiplexing
/// (MXCU index, slice offsets, neighbour selection) happened at record
/// time; values are read from the live state at replay time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplaySrc {
    /// An immediate (or the hard-wired zero input).
    Const(i32),
    /// An RC-local register.
    Reg {
        /// RC index within the column.
        rc: usize,
        /// Register index within the RC.
        reg: usize,
    },
    /// A VWR word, index fully resolved.
    VwrWord {
        /// VWR index.
        vwr: usize,
        /// Word index within the VWR.
        word: usize,
    },
    /// An SRF entry (data read — not a guard).
    Srf(usize),
    /// The previous-cycle result latch of an RC (self or neighbour,
    /// already resolved to an absolute RC index).
    Prev(usize),
}

/// A resolved destination of a replayed RC operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayDst {
    /// Result discarded (only the previous-result latch updates).
    None,
    /// An RC-local register.
    Reg {
        /// RC index within the column.
        rc: usize,
        /// Register index within the RC.
        reg: usize,
    },
    /// A VWR word, index fully resolved.
    VwrWord {
        /// VWR index.
        vwr: usize,
        /// Word index within the VWR.
        word: usize,
    },
    /// An SRF entry.
    Srf(usize),
}

/// One resolved operation of a recorded schedule.  Addresses and indices
/// are baked; data flows through the live architectural state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayOp {
    /// An RC ALU operation with resolved operands.
    Rc {
        /// RC index within the column (for the previous-result latch).
        rc: usize,
        /// The ALU opcode.
        op: RcOpcode,
        /// Resolved first operand.
        a: ReplaySrc,
        /// Resolved second operand.
        b: ReplaySrc,
        /// Resolved destination.
        dst: ReplayDst,
    },
    /// LSU: fill a VWR from an SPM line (commits at segment end).
    LoadVwrLine {
        /// Destination VWR index.
        vwr: usize,
        /// Resolved SPM line address.
        line: usize,
    },
    /// LSU: store a VWR to an SPM line (immediate, mid-segment).
    StoreVwrLine {
        /// Source VWR index.
        vwr: usize,
        /// Resolved SPM line address.
        line: usize,
    },
    /// LSU: load an SPM word into an SRF entry (commits at segment end).
    LoadSrfWord {
        /// Destination SRF entry.
        srf: usize,
        /// Resolved SPM word address.
        word: usize,
    },
    /// LSU: store an SRF entry to an SPM word (immediate, mid-segment).
    StoreSrfWord {
        /// Source SRF entry.
        srf: usize,
        /// Resolved SPM word address.
        word: usize,
    },
    /// LSU: add an immediate to an SRF entry (commits at segment end).
    AddSrf {
        /// SRF entry.
        srf: usize,
        /// Immediate addend.
        imm: i32,
    },
    /// LSU: run the shuffle unit over VWRs A and B into C.
    Shuffle {
        /// The shuffle operation.
        op: ShuffleOp,
    },
    /// Write a constant into an SRF entry (a `StoreIdxSrf` whose index
    /// value was resolved at record time; commits at segment end).
    WriteSrfConst {
        /// Destination SRF entry.
        srf: usize,
        /// The resolved value.
        value: i32,
    },
}

/// One guard of a trace: the SRF entry `(column, index)` must still hold
/// `value` for the trace to replay (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrfGuard {
    /// Column owning the SRF.
    pub column: usize,
    /// SRF entry index.
    pub index: usize,
    /// Value observed (and baked into the schedule) at record time.
    pub value: i32,
}

/// One segment of a trace: `len` consecutive ops of [`ReplayTrace::ops`]
/// executed on `column` with the interpreter's two-phase cycle semantics
/// (reads see segment-start state, writes commit at segment end; SPM
/// accesses are immediate, as in [`crate::column::Column::step`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaySegment {
    /// Column the segment executes on.
    pub column: usize,
    /// Number of ops in the segment.
    pub len: usize,
}

/// End-of-run control state of one column, restored verbatim after a
/// replay so the architectural state matches interpretation exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnFinish {
    /// Final program counter (the row that executed `EXIT`).
    pub pc: usize,
    /// Final MXCU index.
    pub mxcu_idx: usize,
    /// Final LCU register file.
    pub lcu_regs: [i32; LCU_REGISTERS],
}

/// A recorded execution of one stored kernel under one SRF-parameter
/// snapshot: the resolved straight-line schedule plus everything needed to
/// credit the run without interpreting it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayTrace {
    /// Kernel name (for the replayed [`crate::stats::RunStats`]).
    pub name: Arc<str>,
    /// Columns the kernel uses.
    pub columns_used: usize,
    /// Execution cycles (excluding any configuration-word streaming).
    pub exec_cycles: u64,
    /// Activity-counter delta of the execution (excluding configuration
    /// streaming), credited verbatim on replay.
    pub counters: ActivityCounters,
    /// SRF guards that must hold for the trace to replay.
    pub guards: Vec<SrfGuard>,
    /// The per-(cycle, column) segments, in interpreter execution order.
    pub segments: Vec<ReplaySegment>,
    /// The flattened resolved ops, indexed by the segments.
    pub ops: Vec<ReplayOp>,
    /// Final control state per used column.
    pub finish: Vec<ColumnFinish>,
}

impl ReplayTrace {
    /// Approximate host-memory footprint indicator: the number of resolved
    /// ops in the schedule.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` for a trace with no ops (a kernel that only exits).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Records one interpreted execution into a [`ReplayTrace`].
///
/// The recorder is driven by the interpreter: the array begins a segment
/// per (cycle, column), the column pushes resolved ops and guard
/// observations as it executes, and the commit phase reports SRF writes so
/// later guard observations of the same entry poison the trace (see the
/// module docs).  [`TraceRecorder::finish`] yields the trace, or `None`
/// if the execution turned out to be non-replayable.
#[derive(Debug)]
pub struct TraceRecorder {
    poisoned: bool,
    guards: Vec<SrfGuard>,
    /// Per-column bitmask of SRF entries written so far by the execution.
    written: Vec<u64>,
    segments: Vec<ReplaySegment>,
    ops: Vec<ReplayOp>,
    /// Column of the currently open segment.
    cur_column: usize,
    /// Op index where the currently open segment began.
    seg_start: usize,
    /// `true` while a segment is open.
    seg_open: bool,
}

impl TraceRecorder {
    /// Creates a recorder for a kernel using `columns_used` columns.
    pub fn new(columns_used: usize) -> Self {
        Self {
            poisoned: false,
            guards: Vec::new(),
            written: vec![0; columns_used],
            segments: Vec::new(),
            ops: Vec::new(),
            cur_column: 0,
            seg_start: 0,
            seg_open: false,
        }
    }

    /// `true` once the execution proved non-replayable.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    fn close_segment(&mut self) {
        if self.seg_open && self.ops.len() > self.seg_start {
            self.segments.push(ReplaySegment {
                column: self.cur_column,
                len: self.ops.len() - self.seg_start,
            });
        }
        self.seg_open = false;
    }

    /// Opens the segment for one column-step (closing the previous one).
    /// Segments that record no ops are dropped — they have no
    /// architectural effect to replay.
    pub(crate) fn begin_segment(&mut self, column: usize) {
        self.close_segment();
        self.cur_column = column;
        self.seg_start = self.ops.len();
        self.seg_open = true;
    }

    /// Appends a resolved op to the open segment.
    pub(crate) fn push_op(&mut self, op: ReplayOp) {
        if !self.poisoned {
            self.ops.push(op);
        }
    }

    /// Observes an SRF entry consumed for control or addressing in the
    /// current column.  Pristine entries become guards; entries the
    /// execution already wrote poison the trace.
    pub(crate) fn guard_srf(&mut self, index: usize, value: i32) {
        if self.poisoned {
            return;
        }
        let column = self.cur_column;
        if index >= MAX_TRACKED_SRF || self.written[column] & (1u64 << index) != 0 {
            self.poisoned = true;
            return;
        }
        if !self
            .guards
            .iter()
            .any(|g| g.column == column && g.index == index)
        {
            self.guards.push(SrfGuard {
                column,
                index,
                value,
            });
        }
    }

    /// Reports the SRF entries the current column's commit phase wrote
    /// this cycle (kernel-side writes only — host parameter writes happen
    /// between executions and are covered by the guard check instead).
    pub(crate) fn note_srf_write(&mut self, index: usize) {
        if index >= MAX_TRACKED_SRF {
            self.poisoned = true;
            return;
        }
        self.written[self.cur_column] |= 1u64 << index;
    }

    /// Seals the recording into a trace, or `None` if it was poisoned.
    ///
    /// `exec_cycles` and `counters` are the execution-only cycle count and
    /// counter delta (configuration streaming excluded); `finish` is the
    /// end-of-run control state of each used column.
    pub fn finish(
        mut self,
        name: Arc<str>,
        exec_cycles: u64,
        counters: ActivityCounters,
        finish: Vec<ColumnFinish>,
    ) -> Option<ReplayTrace> {
        self.close_segment();
        if self.poisoned {
            return None;
        }
        let columns_used = self.written.len();
        Some(ReplayTrace {
            name,
            columns_used,
            exec_cycles,
            counters,
            guards: self.guards,
            segments: self.segments,
            ops: self.ops,
            finish,
        })
    }
}

/// Reusable scratch buffers of the replay executor: the pending write sets
/// of one segment's two-phase commit.  Owned by [`crate::Vwr2a`] so a warm
/// replayed window performs no per-window heap allocation.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReplayScratch {
    /// Pending RC register writes `(rc, reg, value)`.
    pub rc_reg: Vec<(usize, usize, i32)>,
    /// Pending VWR word writes `(vwr, word, value)`.
    pub vwr_word: Vec<(usize, usize, i32)>,
    /// Pending whole-VWR line write (at most one per segment: `LoadVwr`
    /// and `Shuffle` share the single LSU slot).
    pub line_target: Option<usize>,
    /// The pending line data for `line_target`.
    pub line_buf: Vec<i32>,
    /// Pending SRF writes `(index, value)`.
    pub srf: Vec<(usize, i32)>,
    /// Pending previous-result latch updates `(rc, value)`.
    pub prev: Vec<(usize, i32)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_of_written_entry_poisons() {
        let mut rec = TraceRecorder::new(1);
        rec.begin_segment(0);
        rec.guard_srf(2, 7);
        assert!(!rec.poisoned());
        rec.note_srf_write(3);
        rec.guard_srf(3, 9);
        assert!(rec.poisoned());
        assert!(rec
            .finish("k".into(), 1, ActivityCounters::new(), Vec::new())
            .is_none());
    }

    #[test]
    fn guards_deduplicate_per_column() {
        let mut rec = TraceRecorder::new(2);
        rec.begin_segment(0);
        rec.guard_srf(1, 5);
        rec.guard_srf(1, 5);
        rec.begin_segment(1);
        rec.guard_srf(1, 6);
        let trace = rec
            .finish("k".into(), 3, ActivityCounters::new(), Vec::new())
            .expect("not poisoned");
        assert_eq!(trace.guards.len(), 2);
        assert_eq!(trace.guards[0].column, 0);
        assert_eq!(trace.guards[1].column, 1);
        assert!(trace.is_empty());
    }

    #[test]
    fn empty_segments_are_dropped() {
        let mut rec = TraceRecorder::new(1);
        rec.begin_segment(0);
        rec.begin_segment(0);
        rec.push_op(ReplayOp::Shuffle {
            op: ShuffleOp::EvenPrune,
        });
        rec.begin_segment(0);
        let trace = rec
            .finish("k".into(), 3, ActivityCounters::new(), Vec::new())
            .expect("not poisoned");
        assert_eq!(trace.segments.len(), 1);
        assert_eq!(trace.segments[0].len, 1);
        assert_eq!(trace.len(), 1);
    }
}
