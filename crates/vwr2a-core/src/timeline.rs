//! The event timeline behind pipelined execution.
//!
//! The paper's end-to-end efficiency relies on the platform's engines
//! working *concurrently*: while the array executes window *i*, the DMA
//! already streams window *i+1* into the SPM and drains window *i−1* back
//! to system memory.  A purely additive cycle count ("DMA + compute +
//! DMA") therefore overstates wall-clock latency for any streamed
//! workload.
//!
//! This module models that concurrency explicitly.  Each [`Engine`] — the
//! configuration-word streamer, the DMA, the array itself and the
//! completion-interrupt path — advances its own *busy-until* cycle.  A
//! [`Timeline`] merges them: [`Timeline::schedule`] places an operation on
//! its engine no earlier than both the engine's previous work and an
//! explicit dependency (`not_before`), returning the resulting [`Span`].
//! The timeline's [`wall_cycles`](Timeline::wall_cycles) is the overlapped
//! end-to-end latency, its [`Occupancy`] the per-engine busy totals whose
//! sum is the cost of the same work executed strictly serially.
//!
//! [`crate::dma::Dma`] and the kernel-execution path of
//! [`crate::array::Vwr2a`] report their costs *through* a timeline (as
//! [`Span`]s) rather than as bare cycle counts, so any caller — the
//! session runtime's pipelined stream executor in particular — can compose
//! overlapped schedules without re-deriving engine timing.
//!
//! # Example
//!
//! ```
//! use vwr2a_core::timeline::{Engine, Timeline};
//!
//! let mut t = Timeline::new();
//! // Stage window 0, run it, and stage window 1 during the computation.
//! let stage0 = t.schedule(Engine::Dma, 0, 100);
//! let compute0 = t.schedule(Engine::Compute, stage0.end, 400);
//! let stage1 = t.schedule(Engine::Dma, 0, 100);
//! let compute1 = t.schedule(Engine::Compute, stage1.end, 400);
//! assert_eq!(compute1.start, compute0.end, "the array never idles");
//! assert_eq!(t.wall_cycles(), 900);
//! assert_eq!(t.serial_cycles(), 1_000);
//! assert!(t.overlap_ratio() > 0.0);
//! ```

use serde::{Deserialize, Serialize};

/// Fraction of a serial cost hidden by overlap: `(serial − wall) / serial`,
/// always in `[0.0, 1.0]`.  The single definition behind
/// [`Timeline::overlap_ratio`] and the runtime report's `overlap_ratio()`,
/// including every degenerate case: an empty stream (`serial == 0`) and a
/// wall clock at or above the serial cost (a single window, or a report
/// whose wall clock was folded from sequential waves) both yield `0.0` —
/// the saturating subtraction pins the numerator to `[0, serial]`, so the
/// ratio needs no further clamping — and a zero wall clock against
/// non-zero serial work caps at `1.0`.
pub fn overlap_ratio(serial_cycles: u64, wall_cycles: u64) -> f64 {
    if serial_cycles == 0 {
        return 0.0;
    }
    serial_cycles.saturating_sub(wall_cycles) as f64 / serial_cycles as f64
}

/// Fleet-level wall clock of independent per-array timelines: arrays run
/// concurrently, so the fleet is done when the *slowest* array is done.
/// `0` for an empty fleet.
pub fn fleet_wall_cycles<'a, I>(timelines: I) -> u64
where
    I: IntoIterator<Item = &'a Timeline>,
{
    timelines
        .into_iter()
        .map(Timeline::wall_cycles)
        .max()
        .unwrap_or(0)
}

/// Total per-engine busy cycles across independent per-array timelines:
/// the fleet does the sum of its arrays' work, however it was placed.
pub fn fleet_occupancy<'a, I>(timelines: I) -> Occupancy
where
    I: IntoIterator<Item = &'a Timeline>,
{
    timelines
        .into_iter()
        .map(Timeline::occupancy)
        .fold(Occupancy::default(), |acc, o| acc + o)
}

/// A platform engine that makes progress independently of the others.
///
/// The four engines correspond to the units that can genuinely work in the
/// same cycle on the modelled SoC: the configuration-memory streamer
/// filling the per-slot program memories, the DMA moving data between
/// system memory and the SPM, the reconfigurable array executing a kernel,
/// and the interrupt path informing the host of a completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Engine {
    /// Configuration words streaming from the configuration memory into the
    /// per-slot program memories (the cold part of a launch).
    ConfigLoad,
    /// The DMA engine between system memory and the SPM (staging inputs,
    /// draining outputs).
    Dma,
    /// The array columns executing a kernel, including the host's SRF
    /// slave-port accesses tied to a launch.
    Compute,
    /// Completion-interrupt delivery and the host's response to it.
    Interrupt,
}

impl Engine {
    /// All engines, in a fixed order.
    pub const ALL: [Engine; 4] = [
        Engine::ConfigLoad,
        Engine::Dma,
        Engine::Compute,
        Engine::Interrupt,
    ];

    fn index(self) -> usize {
        match self {
            Engine::ConfigLoad => 0,
            Engine::Dma => 1,
            Engine::Compute => 2,
            Engine::Interrupt => 3,
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Engine::ConfigLoad => "config-load",
            Engine::Dma => "dma",
            Engine::Compute => "compute",
            Engine::Interrupt => "interrupt",
        })
    }
}

/// A half-open busy interval `[start, end)` of one [`Engine`], in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// The engine the work occupied.
    pub engine: Engine,
    /// First busy cycle.
    pub start: u64,
    /// First cycle after the work retires.
    pub end: u64,
}

impl Span {
    /// Cycles the work occupied its engine.
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }

    /// `true` if the two spans occupy the *same* engine during at least one
    /// common cycle.  Spans on different engines never collide (they model
    /// genuinely concurrent units), and zero-length spans collide with
    /// nothing.
    ///
    /// [`Timeline::schedule`] can never produce two colliding spans —
    /// per-engine placement is monotonic — so this is a *verification*
    /// helper: schedules that mix speculative work (configuration
    /// prefetches) with pinned launch spans on the same engine assert their
    /// invariants with it.
    pub fn overlaps(&self, other: &Span) -> bool {
        self.engine == other.engine && self.start.max(other.start) < self.end.min(other.end)
    }
}

/// Per-engine busy-cycle totals of a [`Timeline`] (or of one invocation).
///
/// [`Occupancy::total`] is the cost of the same work executed strictly
/// serially — comparing it against [`Timeline::wall_cycles`] quantifies how
/// much latency the overlap hides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Occupancy {
    /// Busy cycles of [`Engine::ConfigLoad`].
    pub config_load: u64,
    /// Busy cycles of [`Engine::Dma`].
    pub dma: u64,
    /// Busy cycles of [`Engine::Compute`].
    pub compute: u64,
    /// Busy cycles of [`Engine::Interrupt`].
    pub interrupt: u64,
}

impl Occupancy {
    /// Sum of all engines' busy cycles: the serial (non-overlapped) cost.
    pub fn total(&self) -> u64 {
        self.config_load + self.dma + self.compute + self.interrupt
    }

    /// Busy cycles of one engine.
    pub fn of(&self, engine: Engine) -> u64 {
        match engine {
            Engine::ConfigLoad => self.config_load,
            Engine::Dma => self.dma,
            Engine::Compute => self.compute,
            Engine::Interrupt => self.interrupt,
        }
    }
}

impl std::ops::AddAssign for Occupancy {
    fn add_assign(&mut self, rhs: Self) {
        self.config_load += rhs.config_load;
        self.dma += rhs.dma;
        self.compute += rhs.compute;
        self.interrupt += rhs.interrupt;
    }
}

impl std::ops::Add for Occupancy {
    type Output = Occupancy;
    fn add(mut self, rhs: Self) -> Self {
        self += rhs;
        self
    }
}

/// The two spans of one kernel launch: the configuration-word streaming
/// (empty for a warm launch) and the array execution behind it.
///
/// Returned by the timeline-aware launch paths of [`crate::array::Vwr2a`]
/// ([`run_kernel_at`](crate::array::Vwr2a::run_kernel_at) and friends):
/// `compute` never starts before `config.end`, because a launch first
/// fills the per-slot program memories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchSpans {
    /// [`Engine::ConfigLoad`] span of the launch (zero-length when warm).
    pub config: Span,
    /// [`Engine::Compute`] span of the launch.
    pub compute: Span,
}

/// Merges the busy-until cycles of the platform engines into one overlapped
/// schedule.
///
/// The timeline is append-only and monotonic per engine: every
/// [`Timeline::schedule`] call places work at
/// `max(engine busy-until, not_before)`.  Dependencies between operations
/// on *different* engines are expressed by passing the upstream span's
/// `end` as `not_before`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Timeline {
    busy_until: [u64; 4],
    occupancy: Occupancy,
}

impl Timeline {
    /// An empty timeline: every engine free at cycle 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `duration` busy cycles on `engine`, starting no earlier
    /// than the engine's previous work and `not_before`.  Returns the
    /// placed [`Span`].  A zero-length duration yields an empty span at the
    /// resolved start cycle and leaves the engine's occupancy unchanged.
    pub fn schedule(&mut self, engine: Engine, not_before: u64, duration: u64) -> Span {
        let idx = engine.index();
        let start = self.busy_until[idx].max(not_before);
        let end = start + duration;
        self.busy_until[idx] = end;
        match engine {
            Engine::ConfigLoad => self.occupancy.config_load += duration,
            Engine::Dma => self.occupancy.dma += duration,
            Engine::Compute => self.occupancy.compute += duration,
            Engine::Interrupt => self.occupancy.interrupt += duration,
        }
        Span { engine, start, end }
    }

    /// First cycle at which `engine` has no scheduled work left.
    pub fn free_at(&self, engine: Engine) -> u64 {
        self.busy_until[engine.index()]
    }

    /// Per-engine busy totals.
    pub fn occupancy(&self) -> Occupancy {
        self.occupancy
    }

    /// Busy cycles of one engine.
    pub fn busy_cycles(&self, engine: Engine) -> u64 {
        self.occupancy.of(engine)
    }

    /// End-to-end latency of the overlapped schedule: the last cycle any
    /// engine is busy.
    pub fn wall_cycles(&self) -> u64 {
        self.busy_until.iter().copied().max().unwrap_or(0)
    }

    /// Cost of the same work executed strictly serially (sum of all
    /// engines' busy cycles).
    pub fn serial_cycles(&self) -> u64 {
        self.occupancy.total()
    }

    /// Fraction of the serial cost hidden by overlap:
    /// `(serial − wall) / serial`, or `0.0` for an empty timeline.
    ///
    /// `0.0` means fully serial (a single window cannot overlap with
    /// anything); an overlap ratio of `0.4` means the pipelined schedule
    /// finishes in 60 % of the serial cycles.
    pub fn overlap_ratio(&self) -> f64 {
        overlap_ratio(self.serial_cycles(), self.wall_cycles())
    }

    /// Clears all scheduled work, returning every engine to free-at-0.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_chain_has_zero_overlap() {
        let mut t = Timeline::new();
        let a = t.schedule(Engine::Dma, 0, 10);
        let b = t.schedule(Engine::ConfigLoad, a.end, 20);
        let c = t.schedule(Engine::Compute, b.end, 30);
        let d = t.schedule(Engine::Interrupt, c.end, 5);
        let e = t.schedule(Engine::Dma, d.end, 10);
        assert_eq!(e.end, 75);
        assert_eq!(t.wall_cycles(), 75);
        assert_eq!(t.serial_cycles(), 75);
        assert_eq!(t.overlap_ratio(), 0.0);
        assert_eq!(t.busy_cycles(Engine::Dma), 20);
        assert_eq!(t.occupancy().compute, 30);
    }

    #[test]
    fn independent_engines_overlap() {
        let mut t = Timeline::new();
        t.schedule(Engine::Compute, 0, 100);
        t.schedule(Engine::Dma, 0, 60);
        assert_eq!(t.wall_cycles(), 100);
        assert_eq!(t.serial_cycles(), 160);
        assert!((t.overlap_ratio() - 60.0 / 160.0).abs() < 1e-12);
    }

    #[test]
    fn engine_order_is_monotonic() {
        let mut t = Timeline::new();
        let a = t.schedule(Engine::Dma, 50, 10);
        // A later request with an earlier dependency still queues behind.
        let b = t.schedule(Engine::Dma, 0, 10);
        assert_eq!(a.start, 50);
        assert_eq!(b.start, a.end);
        assert_eq!(t.free_at(Engine::Dma), 70);
    }

    #[test]
    fn zero_duration_spans_are_empty_and_free() {
        let mut t = Timeline::new();
        let s = t.schedule(Engine::ConfigLoad, 7, 0);
        assert_eq!(s.duration(), 0);
        assert_eq!((s.start, s.end), (7, 7));
        assert_eq!(t.serial_cycles(), 0);
        // An empty timeline's wall clock never ran.
        assert_eq!(Timeline::new().wall_cycles(), 0);
        assert_eq!(Timeline::new().overlap_ratio(), 0.0);
    }

    #[test]
    fn span_overlap_requires_a_shared_engine_and_a_shared_cycle() {
        let span = |engine, start, end| Span { engine, start, end };
        let a = span(Engine::ConfigLoad, 10, 20);
        // Same engine, shared cycles: collision (in both orders).
        assert!(a.overlaps(&span(Engine::ConfigLoad, 15, 25)));
        assert!(span(Engine::ConfigLoad, 15, 25).overlaps(&a));
        assert!(a.overlaps(&span(Engine::ConfigLoad, 0, 11)));
        // Half-open intervals: touching end-to-start is not a collision.
        assert!(!a.overlaps(&span(Engine::ConfigLoad, 20, 30)));
        assert!(!a.overlaps(&span(Engine::ConfigLoad, 0, 10)));
        // Different engines run concurrently by construction.
        assert!(!a.overlaps(&span(Engine::Compute, 10, 20)));
        // Zero-length spans occupy no cycle.
        assert!(!a.overlaps(&span(Engine::ConfigLoad, 15, 15)));
    }

    #[test]
    fn monotonic_scheduling_never_collides_on_an_engine() {
        // The guarantee prefetch scheduling relies on: a speculative span
        // placed on ConfigLoad ahead of a launch can never be overlapped by
        // the launch's own (pinned) config span, because per-engine
        // placement is monotonic.
        let mut t = Timeline::new();
        let prefetch = t.schedule(Engine::ConfigLoad, 0, 120);
        let launch_config = t.schedule(Engine::ConfigLoad, 30, 80);
        assert!(!prefetch.overlaps(&launch_config));
        assert_eq!(launch_config.start, prefetch.end);
    }

    #[test]
    fn occupancy_accumulates_across_timelines() {
        let mut a = Timeline::new();
        a.schedule(Engine::Dma, 0, 10);
        let mut b = Timeline::new();
        b.schedule(Engine::Compute, 0, 20);
        let sum = a.occupancy() + b.occupancy();
        assert_eq!(sum.total(), 30);
        assert_eq!(sum.of(Engine::Dma), 10);
        assert_eq!(sum.of(Engine::Compute), 20);
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = Timeline::new();
        t.schedule(Engine::Compute, 0, 99);
        t.reset();
        assert_eq!(t.wall_cycles(), 0);
        assert_eq!(t.serial_cycles(), 0);
        assert_eq!(t, Timeline::new());
    }

    #[test]
    fn overlap_ratio_degenerate_cases_are_defined_and_bounded() {
        // Nothing ran: no overlap, not NaN.
        assert_eq!(overlap_ratio(0, 0), 0.0);
        assert_eq!(overlap_ratio(0, 50), 0.0);
        // Fully serial (single window): exactly zero.
        assert_eq!(overlap_ratio(100, 100), 0.0);
        // A wall clock beyond the serial cost (sequential waves folded into
        // one report) stays at zero: the saturating subtraction bounds the
        // numerator.
        assert_eq!(overlap_ratio(100, 250), 0.0);
        // A zero wall clock against real work caps at 1.0.
        assert_eq!(overlap_ratio(100, 0), 1.0);
        // The interior is the plain fraction.
        assert!((overlap_ratio(200, 150) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fleet_helpers_merge_independent_timelines() {
        let mut a = Timeline::new();
        a.schedule(Engine::Compute, 0, 300);
        a.schedule(Engine::Dma, 0, 100);
        let mut b = Timeline::new();
        b.schedule(Engine::Compute, 0, 500);
        let fleet = [a, b];
        // Concurrent arrays: the fleet finishes with the slowest one.
        assert_eq!(fleet_wall_cycles(&fleet), 500);
        assert_eq!(fleet_wall_cycles(std::iter::empty::<&Timeline>()), 0);
        // Work is conserved across the merge.
        let busy = fleet_occupancy(&fleet);
        assert_eq!(busy.compute, 800);
        assert_eq!(busy.dma, 100);
        assert_eq!(
            busy.total(),
            fleet.iter().map(Timeline::serial_cycles).sum::<u64>()
        );
    }

    #[test]
    fn engine_display_and_all() {
        assert_eq!(Engine::ALL.len(), 4);
        let names: Vec<String> = Engine::ALL.iter().map(|e| e.to_string()).collect();
        assert_eq!(names, ["config-load", "dma", "compute", "interrupt"]);
    }
}
