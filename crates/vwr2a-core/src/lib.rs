//! Cycle-accurate simulator of the **VWR2A** very-wide-register
//! reconfigurable-array accelerator (Denkinger et al., DAC 2022).
//!
//! VWR2A is a CGRA-style programmable accelerator organised as a 4×2 array
//! of reconfigurable cells grouped in two independent columns.  Its defining
//! features, all modelled here, are:
//!
//! * **Very-wide registers** ([`vwr::Vwr`], 3 × 4096 bit per column) backed
//!   by a wide **scratchpad memory** ([`spm::Spm`], 32 KiB) whose
//!   accelerator-side port matches the VWR width, so a whole register fills
//!   in one cycle.
//! * A hard-wired **shuffle unit** ([`shuffle`]) for data reordering
//!   (interleave, even/odd pruning, bit-reversal, circular shift).
//! * VLIW-style **specialised slots** per column — load-store unit,
//!   loop-control unit and multiplexer-control unit ([`isa`]) — sharing one
//!   program counter with the four RCs.
//! * A **DMA** ([`dma::Dma`]) between the SPM and system memory and a
//!   **configuration memory** ([`config_mem::ConfigMemory`]) holding encoded
//!   kernels.
//! * An **event timeline** ([`timeline`]) on which the DMA, the
//!   configuration streamer and the array report their costs as per-engine
//!   busy spans, so runtimes can schedule overlapped (pipelined) execution
//!   instead of adding bare cycle counts.
//!
//! The crate exposes a host-style API on [`Vwr2a`]: seed the SPM over the
//! DMA, write kernel parameters into the SRF, run a [`program::KernelProgram`]
//! and collect [`stats::RunStats`] with cycle counts and per-component
//! activity (consumed by the `vwr2a-energy` crate).
//!
//! # Example
//!
//! ```
//! use vwr2a_core::Vwr2a;
//! use vwr2a_core::builder::ColumnProgramBuilder;
//! use vwr2a_core::geometry::VwrId;
//! use vwr2a_core::isa::{LcuCond, LcuInstr, LcuSrc, LsuAddr, LsuInstr, MxcuInstr,
//!                       RcDst, RcInstr, RcOpcode, RcSrc};
//! use vwr2a_core::program::KernelProgram;
//!
//! # fn main() -> Result<(), vwr2a_core::error::CoreError> {
//! // Element-wise add of two 128-word vectors living in SPM lines 0 and 1.
//! let mut b = ColumnProgramBuilder::new(4);
//! b.push(b.row().lsu(LsuInstr::LoadVwr { vwr: VwrId::A, line: LsuAddr::Imm(0) }));
//! b.push(b.row().lsu(LsuInstr::LoadVwr { vwr: VwrId::B, line: LsuAddr::Imm(1) })
//!        .lcu(LcuInstr::Li { r: 0, value: 0 })
//!        .mxcu(MxcuInstr::SetIdx(0)));
//! let top = b.new_label();
//! b.bind_label(top);
//! b.push(b.row()
//!        .lcu(LcuInstr::Add { r: 0, src: LcuSrc::Imm(1) })
//!        .mxcu(MxcuInstr::AddIdx(1))
//!        .rc_all(RcInstr::new(RcOpcode::Add, RcDst::Vwr(VwrId::C),
//!                             RcSrc::Vwr(VwrId::A), RcSrc::Vwr(VwrId::B))));
//! b.push_branch(b.row(), LcuCond::Lt, 0, LcuSrc::Imm(32), top);
//! b.push(b.row().lsu(LsuInstr::StoreVwr { vwr: VwrId::C, line: LsuAddr::Imm(2) }));
//! b.push_exit();
//! let kernel = KernelProgram::new("vadd", vec![b.build()?])?;
//!
//! let mut accel = Vwr2a::new();
//! accel.dma_to_spm(&vec![1; 128], 0)?;
//! accel.dma_to_spm(&vec![41; 128], 128)?;
//! let stats = accel.run_program(&kernel)?;
//! let (sum, _) = accel.dma_from_spm(256, 128)?;
//! assert!(sum.iter().all(|&v| v == 42));
//! println!("vadd took {} cycles", stats.cycles);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alu;
pub mod array;
pub mod builder;
pub mod column;
pub mod config_mem;
pub mod dma;
pub mod error;
pub mod geometry;
pub mod isa;
pub mod program;
pub mod replay;
pub mod shuffle;
pub mod spm;
pub mod srf;
pub mod stats;
pub mod timeline;
pub mod trace;
pub mod vwr;

pub use array::Vwr2a;
pub use error::CoreError;
pub use geometry::{Geometry, VwrId};
pub use program::{ColumnProgram, KernelProgram, Row};
pub use stats::RunStats;
pub use timeline::{Engine, LaunchSpans, Occupancy, Span, Timeline};
pub use trace::ActivityCounters;
