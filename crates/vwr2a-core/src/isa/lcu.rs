//! Loop-control-unit (LCU) instructions.
//!
//! The LCU owns the column program counter: it generates branches and jumps,
//! executes loop bookkeeping with a small private register file, and notifies
//! the synchronizer when a kernel finishes (Sec. 3.3.3).  Giving the array
//! its own loop control is what lets VWR2A run whole applications, including
//! control-intensive code, without a host VLIW.

use serde::{Deserialize, Serialize};

/// Number of private LCU registers (loop counters / bounds).
pub const LCU_REGISTERS: usize = 4;

/// Branch condition codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LcuCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less than (signed).
    Lt,
    /// Branch if greater than or equal (signed).
    Ge,
}

impl LcuCond {
    /// Evaluates the condition on two signed values.
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            LcuCond::Eq => a == b,
            LcuCond::Ne => a != b,
            LcuCond::Lt => a < b,
            LcuCond::Ge => a >= b,
        }
    }
}

/// Second operand of an LCU arithmetic or branch instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LcuSrc {
    /// Immediate value.
    Imm(i32),
    /// Private LCU register.
    Reg(u8),
    /// Scalar-register-file entry (counts as an SRF access).
    Srf(u8),
}

/// One LCU instruction.
///
/// # Example
///
/// ```
/// use vwr2a_core::isa::lcu::{LcuInstr, LcuCond, LcuSrc};
///
/// // The "i=0 … i++ … BLT PC=5" loop skeleton of Table 1.
/// let init = LcuInstr::Li { r: 0, value: 0 };
/// let incr = LcuInstr::Add { r: 0, src: LcuSrc::Imm(1) };
/// let back = LcuInstr::Branch { cond: LcuCond::Lt, a: 0, b: LcuSrc::Imm(16), target: 5 };
/// assert!(!init.is_nop());
/// assert_eq!(back.srf_accesses(), 0);
/// assert!(incr.srf_accesses() == 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum LcuInstr {
    /// No operation (PC advances to the next row).
    #[default]
    Nop,
    /// Load an immediate into a private register.
    Li {
        /// Destination register.
        r: u8,
        /// Immediate value.
        value: i32,
    },
    /// Add a source operand to a private register.
    Add {
        /// Destination (and first-operand) register.
        r: u8,
        /// Second operand.
        src: LcuSrc,
    },
    /// Copy an SRF entry into a private register (e.g. a loop bound set up
    /// by the host).
    LoadSrf {
        /// Destination register.
        r: u8,
        /// Source SRF entry.
        srf: u8,
    },
    /// Conditional branch: if `cond(reg[a], b)` the next PC is `target`.
    Branch {
        /// Condition code.
        cond: LcuCond,
        /// First operand: private register index.
        a: u8,
        /// Second operand.
        b: LcuSrc,
        /// Branch target row.
        target: u16,
    },
    /// Unconditional jump to a row.
    Jump(u16),
    /// End of kernel: the column halts and notifies the synchronizer.
    Exit,
}

impl LcuInstr {
    /// `true` if this is a no-operation.
    pub fn is_nop(&self) -> bool {
        matches!(self, LcuInstr::Nop)
    }

    /// Number of SRF accesses this instruction performs.
    pub fn srf_accesses(&self) -> usize {
        match self {
            LcuInstr::Add { src, .. } | LcuInstr::Branch { b: src, .. } => {
                usize::from(matches!(src, LcuSrc::Srf(_)))
            }
            LcuInstr::LoadSrf { .. } => 1,
            _ => 0,
        }
    }

    /// `true` for instructions that may redirect the PC.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            LcuInstr::Branch { .. } | LcuInstr::Jump(_) | LcuInstr::Exit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condition_evaluation() {
        assert!(LcuCond::Eq.eval(3, 3));
        assert!(!LcuCond::Eq.eval(3, 4));
        assert!(LcuCond::Ne.eval(3, 4));
        assert!(LcuCond::Lt.eval(-1, 0));
        assert!(!LcuCond::Lt.eval(0, 0));
        assert!(LcuCond::Ge.eval(0, 0));
        assert!(LcuCond::Ge.eval(5, -5));
    }

    #[test]
    fn srf_access_counting() {
        assert_eq!(LcuInstr::Nop.srf_accesses(), 0);
        assert_eq!(LcuInstr::LoadSrf { r: 0, srf: 1 }.srf_accesses(), 1);
        assert_eq!(
            LcuInstr::Branch {
                cond: LcuCond::Lt,
                a: 0,
                b: LcuSrc::Srf(2),
                target: 0
            }
            .srf_accesses(),
            1
        );
        assert_eq!(
            LcuInstr::Add {
                r: 0,
                src: LcuSrc::Imm(1)
            }
            .srf_accesses(),
            0
        );
    }

    #[test]
    fn control_flow_classification() {
        assert!(LcuInstr::Exit.is_control_flow());
        assert!(LcuInstr::Jump(3).is_control_flow());
        assert!(!LcuInstr::Li { r: 0, value: 1 }.is_control_flow());
        assert!(LcuInstr::default().is_nop());
    }
}
