//! Reconfigurable-cell (RC) instructions.
//!
//! Each RC contains a two-entry register file and a 32-bit ALU supporting
//! signed addition, subtraction and multiplication (standard and fixed-point
//! modes), bitwise logic and shifts (Sec. 3.1).  Operands can come from the
//! VWRs, the SRF, the local register file, the previous-cycle results of
//! neighbouring RCs, or a small immediate.

use crate::geometry::VwrId;
use serde::{Deserialize, Serialize};

/// ALU operation of an RC instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RcOpcode {
    /// No operation (operand isolation keeps the ALU inputs stable).
    Nop,
    /// Pass operand A through unchanged.
    Mov,
    /// Signed 32-bit addition (wrapping).
    Add,
    /// Signed 32-bit subtraction (wrapping).
    Sub,
    /// Standard multiply: low 32 bits of the product.
    Mul,
    /// Fixed-point multiply: 64-bit product, lower 16 bits discarded
    /// (Sec. 3.1), keeping a `Q15.16` result for `Q15.16` inputs.
    MulFxp,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left by `B & 31`.
    Sll,
    /// Logical shift right by `B & 31`.
    Srl,
    /// Arithmetic shift right by `B & 31`.
    Sra,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Absolute value of operand A (operand B ignored).
    Abs,
    /// Set to 1 if `A > B` (signed), else 0.
    Sgt,
    /// Set to 1 if `A < B` (signed), else 0.
    Slt,
    /// Set to 1 if `A == B`, else 0.
    Seq,
}

impl RcOpcode {
    /// `true` for the multiply opcodes (used by the energy model, which
    /// charges multiplications separately from simple ALU operations).
    pub fn is_multiply(self) -> bool {
        matches!(self, RcOpcode::Mul | RcOpcode::MulFxp)
    }
}

/// Operand source of an RC instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RcSrc {
    /// Constant zero.
    Zero,
    /// Sign-extended 16-bit immediate.
    Imm(i16),
    /// Local register (0 or 1 in the paper's geometry).
    Reg(u8),
    /// The word of the given VWR at this RC's slice offset plus the MXCU
    /// index.
    Vwr(VwrId),
    /// Scalar-register-file entry (single-ported: at most one SRF access per
    /// column per cycle).
    Srf(u8),
    /// Previous-cycle result of the RC above (wrapping within the column).
    RcAbove,
    /// Previous-cycle result of the RC below (wrapping within the column).
    RcBelow,
    /// This RC's own previous-cycle result.
    SelfPrev,
}

/// Destination of an RC instruction result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RcDst {
    /// Discard the result (it is still latched as the previous-cycle output).
    None,
    /// Local register (0 or 1).
    Reg(u8),
    /// The word of the given VWR at this RC's slice offset plus the MXCU
    /// index.
    Vwr(VwrId),
    /// Scalar-register-file entry.
    Srf(u8),
}

/// One RC instruction: `dst = op(src_a, src_b)`.
///
/// # Example
///
/// ```
/// use vwr2a_core::isa::rc::{RcInstr, RcOpcode, RcSrc, RcDst};
/// use vwr2a_core::geometry::VwrId;
///
/// // VWR C word = VWR A word + VWR B word, as in Table 1 of the paper.
/// let add = RcInstr::new(
///     RcOpcode::Add,
///     RcDst::Vwr(VwrId::C),
///     RcSrc::Vwr(VwrId::A),
///     RcSrc::Vwr(VwrId::B),
/// );
/// assert!(!add.is_nop());
/// assert_eq!(RcInstr::NOP.op, RcOpcode::Nop);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RcInstr {
    /// ALU operation.
    pub op: RcOpcode,
    /// Where the result goes.
    pub dst: RcDst,
    /// First operand.
    pub src_a: RcSrc,
    /// Second operand.
    pub src_b: RcSrc,
}

impl RcInstr {
    /// The canonical no-operation instruction.
    pub const NOP: RcInstr = RcInstr {
        op: RcOpcode::Nop,
        dst: RcDst::None,
        src_a: RcSrc::Zero,
        src_b: RcSrc::Zero,
    };

    /// Creates an instruction from its fields.
    pub fn new(op: RcOpcode, dst: RcDst, src_a: RcSrc, src_b: RcSrc) -> Self {
        Self {
            op,
            dst,
            src_a,
            src_b,
        }
    }

    /// Unary convenience constructor (operand B is zero).
    pub fn unary(op: RcOpcode, dst: RcDst, src: RcSrc) -> Self {
        Self::new(op, dst, src, RcSrc::Zero)
    }

    /// Copies `src` to `dst` unchanged.
    pub fn mov(dst: RcDst, src: RcSrc) -> Self {
        Self::unary(RcOpcode::Mov, dst, src)
    }

    /// `true` if this is a no-operation.
    pub fn is_nop(&self) -> bool {
        self.op == RcOpcode::Nop
    }

    /// Returns the SRF registers this instruction accesses (reads and
    /// writes), used for single-port conflict checking.
    pub fn srf_accesses(&self) -> usize {
        let mut n = 0;
        if matches!(self.src_a, RcSrc::Srf(_)) {
            n += 1;
        }
        if matches!(self.src_b, RcSrc::Srf(_)) {
            n += 1;
        }
        if matches!(self.dst, RcDst::Srf(_)) {
            n += 1;
        }
        n
    }
}

impl Default for RcInstr {
    fn default() -> Self {
        Self::NOP
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_properties() {
        assert!(RcInstr::NOP.is_nop());
        assert_eq!(RcInstr::default(), RcInstr::NOP);
        assert_eq!(RcInstr::NOP.srf_accesses(), 0);
    }

    #[test]
    fn srf_access_counting() {
        let i = RcInstr::new(RcOpcode::Add, RcDst::Srf(0), RcSrc::Srf(1), RcSrc::Srf(2));
        assert_eq!(i.srf_accesses(), 3);
        let j = RcInstr::new(
            RcOpcode::Add,
            RcDst::Reg(0),
            RcSrc::Vwr(VwrId::A),
            RcSrc::Imm(4),
        );
        assert_eq!(j.srf_accesses(), 0);
    }

    #[test]
    fn multiply_classification() {
        assert!(RcOpcode::Mul.is_multiply());
        assert!(RcOpcode::MulFxp.is_multiply());
        assert!(!RcOpcode::Add.is_multiply());
        assert!(!RcOpcode::Nop.is_multiply());
    }

    #[test]
    fn constructors() {
        let m = RcInstr::mov(RcDst::Reg(1), RcSrc::Imm(7));
        assert_eq!(m.op, RcOpcode::Mov);
        assert_eq!(m.src_b, RcSrc::Zero);
        let u = RcInstr::unary(RcOpcode::Abs, RcDst::Reg(0), RcSrc::Reg(1));
        assert_eq!(u.op, RcOpcode::Abs);
    }
}
