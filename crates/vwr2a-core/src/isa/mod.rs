//! Instruction-set definitions for the VWR2A slots.
//!
//! A VWR2A column executes one instruction per slot per cycle under a shared
//! program counter (Sec. 3.1 / 3.3 of the paper): the four reconfigurable
//! cells ([`rc::RcInstr`]), the load-store unit ([`lsu::LsuInstr`]), the
//! loop-control unit ([`lcu::LcuInstr`]) and the multiplexer-control unit
//! ([`mxcu::MxcuInstr`]).  Together one "row" of instructions forms a wide
//! predecoded instruction word, just like a VLIW bundle.
//!
//! [`encode`] packs instructions into raw configuration words (the bits of
//! which "correspond directly to the control signals in the cell datapaths")
//! and back; the configuration memory stores kernels in that form.

pub mod encode;
pub mod lcu;
pub mod lsu;
pub mod mxcu;
pub mod rc;

pub use lcu::{LcuCond, LcuInstr, LcuSrc};
pub use lsu::{LsuAddr, LsuInstr, ShuffleOp};
pub use mxcu::MxcuInstr;
pub use rc::{RcDst, RcInstr, RcOpcode, RcSrc};

/// Identifies one of the instruction slots of a column.
///
/// Used in diagnostics (e.g. program-length validation) and by the activity
/// counters to attribute instruction issues per slot type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotKind {
    /// Loop-control unit.
    Lcu,
    /// Load-store unit.
    Lsu,
    /// Multiplexer-control unit.
    Mxcu,
    /// Reconfigurable cell `n` (0-based).
    Rc(usize),
}

impl std::fmt::Display for SlotKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlotKind::Lcu => write!(f, "LCU"),
            SlotKind::Lsu => write!(f, "LSU"),
            SlotKind::Mxcu => write!(f, "MXCU"),
            SlotKind::Rc(i) => write!(f, "RC{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_kind_display() {
        assert_eq!(SlotKind::Lcu.to_string(), "LCU");
        assert_eq!(SlotKind::Rc(3).to_string(), "RC3");
        assert_eq!(SlotKind::Mxcu.to_string(), "MXCU");
        assert_eq!(SlotKind::Lsu.to_string(), "LSU");
    }
}
