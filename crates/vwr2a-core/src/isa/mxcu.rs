//! Multiplexer-control-unit (MXCU) instructions.
//!
//! The MXCU drives the multiplexer network between the VWRs and the RCs
//! (Sec. 3.3.2): it maintains the word index `k` that every RC uses to
//! address its quarter-slice of the VWRs, both for reads and for write-back.
//! Masking values for index computation can come from the SRF.

use serde::{Deserialize, Serialize};

/// One MXCU instruction.
///
/// # Example
///
/// ```
/// use vwr2a_core::isa::mxcu::MxcuInstr;
///
/// // The "k=0 … k++" sequence of Table 1.
/// let reset = MxcuInstr::SetIdx(0);
/// let step = MxcuInstr::AddIdx(1);
/// assert!(!reset.is_nop());
/// assert_eq!(step.srf_accesses(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum MxcuInstr {
    /// No operation (the index keeps its value).
    #[default]
    Nop,
    /// Set the VWR word index to an immediate.
    SetIdx(u16),
    /// Add a signed immediate to the VWR word index (wrapping within the
    /// RC slice).
    AddIdx(i16),
    /// Load the VWR word index from an SRF entry (masked to the slice).
    LoadIdxSrf(u8),
    /// Bitwise-AND the VWR word index with an SRF entry (the "masking
    /// values for the VWRs index computation" of Sec. 3.2).
    AndIdxSrf(u8),
    /// Store the current index to an SRF entry (e.g. to communicate a
    /// data-dependent position to the LSU).
    StoreIdxSrf(u8),
}

impl MxcuInstr {
    /// `true` if this is a no-operation.
    pub fn is_nop(&self) -> bool {
        matches!(self, MxcuInstr::Nop)
    }

    /// Number of SRF accesses this instruction performs.
    pub fn srf_accesses(&self) -> usize {
        match self {
            MxcuInstr::LoadIdxSrf(_) | MxcuInstr::AndIdxSrf(_) | MxcuInstr::StoreIdxSrf(_) => 1,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_default() {
        assert!(MxcuInstr::default().is_nop());
        assert!(!MxcuInstr::SetIdx(3).is_nop());
    }

    #[test]
    fn srf_access_counting() {
        assert_eq!(MxcuInstr::Nop.srf_accesses(), 0);
        assert_eq!(MxcuInstr::SetIdx(0).srf_accesses(), 0);
        assert_eq!(MxcuInstr::AddIdx(-1).srf_accesses(), 0);
        assert_eq!(MxcuInstr::LoadIdxSrf(0).srf_accesses(), 1);
        assert_eq!(MxcuInstr::AndIdxSrf(7).srf_accesses(), 1);
        assert_eq!(MxcuInstr::StoreIdxSrf(2).srf_accesses(), 1);
    }
}
