//! Encoding of slot instructions into raw configuration words.
//!
//! The paper stresses that a CGRA reaches high computation density because
//! "the bits of the configuration words (i.e., instructions) correspond
//! directly to the control signals in the cell datapaths, without an actual
//! decoding process" (Sec. 3.1).  This module defines that bit-level
//! representation: each slot instruction packs into one 64-bit configuration
//! word, and the configuration memory stores kernels as sequences of such
//! words.  Encoding and decoding round-trip exactly, which the property
//! tests in this module and in the crate's proptest suite verify.

use crate::error::{CoreError, Result};
use crate::geometry::VwrId;
use crate::isa::lcu::{LcuCond, LcuInstr, LcuSrc};
use crate::isa::lsu::{LsuAddr, LsuInstr, ShuffleOp};
use crate::isa::mxcu::MxcuInstr;
use crate::isa::rc::{RcDst, RcInstr, RcOpcode, RcSrc};

/// A raw configuration word (one encoded slot instruction).
pub type ConfigWord = u64;

fn field(word: u64, lsb: u32, width: u32) -> u64 {
    (word >> lsb) & ((1u64 << width) - 1)
}

fn put(value: u64, lsb: u32, width: u32) -> Result<u64> {
    if value >= (1u64 << width) {
        return Err(CoreError::EncodingOverflow {
            field: "generic",
            value: value as i64,
        });
    }
    Ok(value << lsb)
}

// ---------------------------------------------------------------------------
// RC instructions
// ---------------------------------------------------------------------------

fn rc_opcode_code(op: RcOpcode) -> u64 {
    match op {
        RcOpcode::Nop => 0,
        RcOpcode::Mov => 1,
        RcOpcode::Add => 2,
        RcOpcode::Sub => 3,
        RcOpcode::Mul => 4,
        RcOpcode::MulFxp => 5,
        RcOpcode::And => 6,
        RcOpcode::Or => 7,
        RcOpcode::Xor => 8,
        RcOpcode::Sll => 9,
        RcOpcode::Srl => 10,
        RcOpcode::Sra => 11,
        RcOpcode::Min => 12,
        RcOpcode::Max => 13,
        RcOpcode::Abs => 14,
        RcOpcode::Sgt => 15,
        RcOpcode::Slt => 16,
        RcOpcode::Seq => 17,
    }
}

fn rc_opcode_from(code: u64) -> Option<RcOpcode> {
    Some(match code {
        0 => RcOpcode::Nop,
        1 => RcOpcode::Mov,
        2 => RcOpcode::Add,
        3 => RcOpcode::Sub,
        4 => RcOpcode::Mul,
        5 => RcOpcode::MulFxp,
        6 => RcOpcode::And,
        7 => RcOpcode::Or,
        8 => RcOpcode::Xor,
        9 => RcOpcode::Sll,
        10 => RcOpcode::Srl,
        11 => RcOpcode::Sra,
        12 => RcOpcode::Min,
        13 => RcOpcode::Max,
        14 => RcOpcode::Abs,
        15 => RcOpcode::Sgt,
        16 => RcOpcode::Slt,
        17 => RcOpcode::Seq,
        _ => return None,
    })
}

fn rc_src_fields(src: RcSrc) -> (u64, u64) {
    match src {
        RcSrc::Zero => (0, 0),
        RcSrc::Imm(v) => (1, v as u16 as u64),
        RcSrc::Reg(r) => (2, r as u64),
        RcSrc::Vwr(v) => (3, v.index() as u64),
        RcSrc::Srf(s) => (4, s as u64),
        RcSrc::RcAbove => (5, 0),
        RcSrc::RcBelow => (6, 0),
        RcSrc::SelfPrev => (7, 0),
    }
}

fn rc_src_from(kind: u64, payload: u64) -> Option<RcSrc> {
    Some(match kind {
        0 => RcSrc::Zero,
        1 => RcSrc::Imm(payload as u16 as i16),
        2 => RcSrc::Reg(payload as u8),
        3 => RcSrc::Vwr(VwrId::from_index((payload & 3) as usize)),
        4 => RcSrc::Srf(payload as u8),
        5 => RcSrc::RcAbove,
        6 => RcSrc::RcBelow,
        7 => RcSrc::SelfPrev,
        _ => return None,
    })
}

fn rc_dst_fields(dst: RcDst) -> (u64, u64) {
    match dst {
        RcDst::None => (0, 0),
        RcDst::Reg(r) => (1, r as u64),
        RcDst::Vwr(v) => (2, v.index() as u64),
        RcDst::Srf(s) => (3, s as u64),
    }
}

fn rc_dst_from(kind: u64, payload: u64) -> Option<RcDst> {
    Some(match kind {
        0 => RcDst::None,
        1 => RcDst::Reg(payload as u8),
        2 => RcDst::Vwr(VwrId::from_index((payload & 3) as usize)),
        3 => RcDst::Srf(payload as u8),
        _ => return None,
    })
}

/// Encodes an RC instruction into a configuration word.
///
/// # Errors
///
/// Returns [`CoreError::EncodingOverflow`] if a field does not fit (register
/// or SRF indices above 255).
pub fn encode_rc(instr: &RcInstr) -> Result<ConfigWord> {
    let (dk, dp) = rc_dst_fields(instr.dst);
    let (ak, ap) = rc_src_fields(instr.src_a);
    let (bk, bp) = rc_src_fields(instr.src_b);
    Ok(put(rc_opcode_code(instr.op), 0, 5)?
        | put(dk, 5, 2)?
        | put(dp, 7, 8)?
        | put(ak, 15, 3)?
        | put(ap, 18, 16)?
        | put(bk, 34, 3)?
        | put(bp, 37, 16)?)
}

/// Decodes an RC configuration word.
///
/// # Errors
///
/// Returns [`CoreError::DecodingError`] if the opcode or an operand kind is
/// invalid.
pub fn decode_rc(word: ConfigWord) -> Result<RcInstr> {
    let err = || CoreError::DecodingError { word, slot: "RC" };
    let op = rc_opcode_from(field(word, 0, 5)).ok_or_else(err)?;
    let dst = rc_dst_from(field(word, 5, 2), field(word, 7, 8)).ok_or_else(err)?;
    let src_a = rc_src_from(field(word, 15, 3), field(word, 18, 16)).ok_or_else(err)?;
    let src_b = rc_src_from(field(word, 34, 3), field(word, 37, 16)).ok_or_else(err)?;
    Ok(RcInstr::new(op, dst, src_a, src_b))
}

// ---------------------------------------------------------------------------
// LSU instructions
// ---------------------------------------------------------------------------

fn shuffle_code(op: ShuffleOp) -> u64 {
    ShuffleOp::ALL
        .iter()
        .position(|&o| o == op)
        .expect("listed") as u64
}

fn shuffle_from(code: u64) -> Option<ShuffleOp> {
    ShuffleOp::ALL.get(code as usize).copied()
}

fn lsu_addr_fields(addr: LsuAddr) -> (u64, u64) {
    match addr {
        LsuAddr::Imm(v) => (0, v as u64),
        LsuAddr::Srf(s) => (1, s as u64),
    }
}

fn lsu_addr_from(kind: u64, payload: u64) -> LsuAddr {
    if kind == 0 {
        LsuAddr::Imm(payload as u16)
    } else {
        LsuAddr::Srf(payload as u8)
    }
}

/// Encodes an LSU instruction into a configuration word.
///
/// # Errors
///
/// Returns [`CoreError::EncodingOverflow`] if a field does not fit.
pub fn encode_lsu(instr: &LsuInstr) -> Result<ConfigWord> {
    Ok(match *instr {
        LsuInstr::Nop => 0,
        LsuInstr::LoadVwr { vwr, line } => {
            let (k, p) = lsu_addr_fields(line);
            put(1, 0, 4)? | put(vwr.index() as u64, 4, 2)? | put(k, 6, 1)? | put(p, 7, 16)?
        }
        LsuInstr::StoreVwr { vwr, line } => {
            let (k, p) = lsu_addr_fields(line);
            put(2, 0, 4)? | put(vwr.index() as u64, 4, 2)? | put(k, 6, 1)? | put(p, 7, 16)?
        }
        LsuInstr::LoadSrf { srf, word } => {
            let (k, p) = lsu_addr_fields(word);
            put(3, 0, 4)? | put(srf as u64, 4, 4)? | put(k, 8, 1)? | put(p, 9, 16)?
        }
        LsuInstr::StoreSrf { srf, word } => {
            let (k, p) = lsu_addr_fields(word);
            put(4, 0, 4)? | put(srf as u64, 4, 4)? | put(k, 8, 1)? | put(p, 9, 16)?
        }
        LsuInstr::AddSrf { srf, imm } => {
            put(5, 0, 4)? | put(srf as u64, 4, 4)? | put(imm as u16 as u64, 8, 16)?
        }
        LsuInstr::Shuffle(op) => put(6, 0, 4)? | put(shuffle_code(op), 4, 3)?,
    })
}

/// Decodes an LSU configuration word.
///
/// # Errors
///
/// Returns [`CoreError::DecodingError`] for an invalid opcode or shuffle code.
pub fn decode_lsu(word: ConfigWord) -> Result<LsuInstr> {
    let err = || CoreError::DecodingError { word, slot: "LSU" };
    Ok(match field(word, 0, 4) {
        0 => LsuInstr::Nop,
        1 => LsuInstr::LoadVwr {
            vwr: VwrId::from_index(field(word, 4, 2) as usize & 3),
            line: lsu_addr_from(field(word, 6, 1), field(word, 7, 16)),
        },
        2 => LsuInstr::StoreVwr {
            vwr: VwrId::from_index(field(word, 4, 2) as usize & 3),
            line: lsu_addr_from(field(word, 6, 1), field(word, 7, 16)),
        },
        3 => LsuInstr::LoadSrf {
            srf: field(word, 4, 4) as u8,
            word: lsu_addr_from(field(word, 8, 1), field(word, 9, 16)),
        },
        4 => LsuInstr::StoreSrf {
            srf: field(word, 4, 4) as u8,
            word: lsu_addr_from(field(word, 8, 1), field(word, 9, 16)),
        },
        5 => LsuInstr::AddSrf {
            srf: field(word, 4, 4) as u8,
            imm: field(word, 8, 16) as u16 as i16,
        },
        6 => LsuInstr::Shuffle(shuffle_from(field(word, 4, 3)).ok_or_else(err)?),
        _ => return Err(err()),
    })
}

// ---------------------------------------------------------------------------
// MXCU instructions
// ---------------------------------------------------------------------------

/// Encodes an MXCU instruction into a configuration word.
///
/// # Errors
///
/// Returns [`CoreError::EncodingOverflow`] if a field does not fit.
pub fn encode_mxcu(instr: &MxcuInstr) -> Result<ConfigWord> {
    Ok(match *instr {
        MxcuInstr::Nop => 0,
        MxcuInstr::SetIdx(v) => put(1, 0, 4)? | put(v as u64, 4, 16)?,
        MxcuInstr::AddIdx(v) => put(2, 0, 4)? | put(v as u16 as u64, 4, 16)?,
        MxcuInstr::LoadIdxSrf(s) => put(3, 0, 4)? | put(s as u64, 4, 4)?,
        MxcuInstr::AndIdxSrf(s) => put(4, 0, 4)? | put(s as u64, 4, 4)?,
        MxcuInstr::StoreIdxSrf(s) => put(5, 0, 4)? | put(s as u64, 4, 4)?,
    })
}

/// Decodes an MXCU configuration word.
///
/// # Errors
///
/// Returns [`CoreError::DecodingError`] for an invalid opcode.
pub fn decode_mxcu(word: ConfigWord) -> Result<MxcuInstr> {
    Ok(match field(word, 0, 4) {
        0 => MxcuInstr::Nop,
        1 => MxcuInstr::SetIdx(field(word, 4, 16) as u16),
        2 => MxcuInstr::AddIdx(field(word, 4, 16) as u16 as i16),
        3 => MxcuInstr::LoadIdxSrf(field(word, 4, 4) as u8),
        4 => MxcuInstr::AndIdxSrf(field(word, 4, 4) as u8),
        5 => MxcuInstr::StoreIdxSrf(field(word, 4, 4) as u8),
        _ => return Err(CoreError::DecodingError { word, slot: "MXCU" }),
    })
}

// ---------------------------------------------------------------------------
// LCU instructions
// ---------------------------------------------------------------------------

fn lcu_cond_code(c: LcuCond) -> u64 {
    match c {
        LcuCond::Eq => 0,
        LcuCond::Ne => 1,
        LcuCond::Lt => 2,
        LcuCond::Ge => 3,
    }
}

fn lcu_cond_from(code: u64) -> LcuCond {
    match code & 3 {
        0 => LcuCond::Eq,
        1 => LcuCond::Ne,
        2 => LcuCond::Lt,
        _ => LcuCond::Ge,
    }
}

fn lcu_src_fields(src: LcuSrc) -> (u64, u64) {
    match src {
        LcuSrc::Imm(v) => (0, v as u32 as u64),
        LcuSrc::Reg(r) => (1, r as u64),
        LcuSrc::Srf(s) => (2, s as u64),
    }
}

fn lcu_src_from(kind: u64, payload: u64) -> Option<LcuSrc> {
    Some(match kind {
        0 => LcuSrc::Imm(payload as u32 as i32),
        1 => LcuSrc::Reg(payload as u8),
        2 => LcuSrc::Srf(payload as u8),
        _ => return None,
    })
}

/// Encodes an LCU instruction into a configuration word.
///
/// # Errors
///
/// Returns [`CoreError::EncodingOverflow`] if a field does not fit.
pub fn encode_lcu(instr: &LcuInstr) -> Result<ConfigWord> {
    Ok(match *instr {
        LcuInstr::Nop => 0,
        LcuInstr::Li { r, value } => {
            put(1, 0, 4)? | put(r as u64, 4, 2)? | put(value as u32 as u64, 6, 32)?
        }
        LcuInstr::Add { r, src } => {
            let (k, p) = lcu_src_fields(src);
            put(2, 0, 4)? | put(r as u64, 4, 2)? | put(k, 6, 2)? | put(p, 8, 32)?
        }
        LcuInstr::LoadSrf { r, srf } => {
            put(3, 0, 4)? | put(r as u64, 4, 2)? | put(srf as u64, 6, 4)?
        }
        LcuInstr::Branch { cond, a, b, target } => {
            let (k, p) = lcu_src_fields(b);
            put(4, 0, 4)?
                | put(a as u64, 4, 2)?
                | put(lcu_cond_code(cond), 6, 2)?
                | put(k, 8, 2)?
                | put(p, 10, 32)?
                | put(target as u64, 42, 10)?
        }
        LcuInstr::Jump(target) => put(5, 0, 4)? | put(target as u64, 4, 10)?,
        LcuInstr::Exit => put(6, 0, 4)?,
    })
}

/// Decodes an LCU configuration word.
///
/// # Errors
///
/// Returns [`CoreError::DecodingError`] for an invalid opcode or operand kind.
pub fn decode_lcu(word: ConfigWord) -> Result<LcuInstr> {
    let err = || CoreError::DecodingError { word, slot: "LCU" };
    Ok(match field(word, 0, 4) {
        0 => LcuInstr::Nop,
        1 => LcuInstr::Li {
            r: field(word, 4, 2) as u8,
            value: field(word, 6, 32) as u32 as i32,
        },
        2 => LcuInstr::Add {
            r: field(word, 4, 2) as u8,
            src: lcu_src_from(field(word, 6, 2), field(word, 8, 32)).ok_or_else(err)?,
        },
        3 => LcuInstr::LoadSrf {
            r: field(word, 4, 2) as u8,
            srf: field(word, 6, 4) as u8,
        },
        4 => LcuInstr::Branch {
            cond: lcu_cond_from(field(word, 6, 2)),
            a: field(word, 4, 2) as u8,
            b: lcu_src_from(field(word, 8, 2), field(word, 10, 32)).ok_or_else(err)?,
            target: field(word, 42, 10) as u16,
        },
        5 => LcuInstr::Jump(field(word, 4, 10) as u16),
        6 => LcuInstr::Exit,
        _ => return Err(err()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_round_trip_examples() {
        let cases = [
            RcInstr::NOP,
            RcInstr::new(
                RcOpcode::Add,
                RcDst::Vwr(VwrId::C),
                RcSrc::Vwr(VwrId::A),
                RcSrc::Vwr(VwrId::B),
            ),
            RcInstr::new(
                RcOpcode::MulFxp,
                RcDst::Reg(1),
                RcSrc::Srf(7),
                RcSrc::Imm(-42),
            ),
            RcInstr::new(
                RcOpcode::Sgt,
                RcDst::Srf(3),
                RcSrc::RcAbove,
                RcSrc::SelfPrev,
            ),
            RcInstr::new(RcOpcode::Sra, RcDst::Reg(0), RcSrc::RcBelow, RcSrc::Imm(15)),
        ];
        for instr in cases {
            let word = encode_rc(&instr).unwrap();
            assert_eq!(decode_rc(word).unwrap(), instr, "{instr:?}");
        }
    }

    #[test]
    fn lsu_round_trip_examples() {
        let cases = [
            LsuInstr::Nop,
            LsuInstr::LoadVwr {
                vwr: VwrId::A,
                line: LsuAddr::Imm(63),
            },
            LsuInstr::StoreVwr {
                vwr: VwrId::C,
                line: LsuAddr::Srf(5),
            },
            LsuInstr::LoadSrf {
                srf: 7,
                word: LsuAddr::Imm(8191),
            },
            LsuInstr::StoreSrf {
                srf: 0,
                word: LsuAddr::Srf(1),
            },
            LsuInstr::AddSrf { srf: 3, imm: -128 },
            LsuInstr::Shuffle(ShuffleOp::BitRevUpper),
        ];
        for instr in cases {
            let word = encode_lsu(&instr).unwrap();
            assert_eq!(decode_lsu(word).unwrap(), instr, "{instr:?}");
        }
    }

    #[test]
    fn mxcu_round_trip_examples() {
        let cases = [
            MxcuInstr::Nop,
            MxcuInstr::SetIdx(31),
            MxcuInstr::AddIdx(-1),
            MxcuInstr::LoadIdxSrf(6),
            MxcuInstr::AndIdxSrf(2),
            MxcuInstr::StoreIdxSrf(4),
        ];
        for instr in cases {
            let word = encode_mxcu(&instr).unwrap();
            assert_eq!(decode_mxcu(word).unwrap(), instr, "{instr:?}");
        }
    }

    #[test]
    fn lcu_round_trip_examples() {
        let cases = [
            LcuInstr::Nop,
            LcuInstr::Li {
                r: 2,
                value: -100_000,
            },
            LcuInstr::Add {
                r: 1,
                src: LcuSrc::Srf(3),
            },
            LcuInstr::LoadSrf { r: 3, srf: 7 },
            LcuInstr::Branch {
                cond: LcuCond::Lt,
                a: 0,
                b: LcuSrc::Imm(512),
                target: 37,
            },
            LcuInstr::Jump(63),
            LcuInstr::Exit,
        ];
        for instr in cases {
            let word = encode_lcu(&instr).unwrap();
            assert_eq!(decode_lcu(word).unwrap(), instr, "{instr:?}");
        }
    }

    #[test]
    fn invalid_words_are_rejected() {
        assert!(decode_rc(31).is_err()); // opcode 31 does not exist
        assert!(decode_lsu(15).is_err());
        assert!(decode_mxcu(15).is_err());
        assert!(decode_lcu(15).is_err());
    }

    #[test]
    fn nop_encodes_to_zero_everywhere() {
        assert_eq!(encode_rc(&RcInstr::NOP).unwrap(), 0);
        assert_eq!(encode_lsu(&LsuInstr::Nop).unwrap(), 0);
        assert_eq!(encode_mxcu(&MxcuInstr::Nop).unwrap(), 0);
        assert_eq!(encode_lcu(&LcuInstr::Nop).unwrap(), 0);
    }
}
