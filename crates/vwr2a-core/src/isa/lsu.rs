//! Load-store-unit (LSU) instructions and shuffle operations.
//!
//! The LSU moves data between the SPM and the VWRs or the SRF, and controls
//! the shuffle unit (Sec. 3.3.1).  A VWR-wide transfer moves an entire
//! 4096-bit line in a single cycle; scalar transfers move one 32-bit word.

use crate::geometry::VwrId;
use serde::{Deserialize, Serialize};

/// Where the LSU gets an SPM address from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LsuAddr {
    /// Immediate line/word address.
    Imm(u16),
    /// Address taken from a scalar-register-file entry (counts as an SRF
    /// access for port-conflict purposes).
    Srf(u8),
}

/// Hard-wired data-reordering operations of the shuffle unit (Sec. 3.3.1).
///
/// Every operation reads the concatenation of VWR A and VWR B (2·W words,
/// where W is the VWR word count) and writes W words into VWR C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShuffleOp {
    /// Interleave A and B words; keep the lower half of the 2·W-word result.
    InterleaveLower,
    /// Interleave A and B words; keep the upper half.
    InterleaveUpper,
    /// Keep the even-indexed elements of A then the even-indexed elements of B.
    EvenPrune,
    /// Keep the odd-indexed elements of A then the odd-indexed elements of B.
    OddPrune,
    /// Bit-reversal permutation of concat(A, B); keep the lower half.
    BitRevLower,
    /// Bit-reversal permutation of concat(A, B); keep the upper half.
    BitRevUpper,
    /// Circular up-shift of concat(A, B) by one RC slice (32 words in the
    /// paper's geometry); keep the lower half.
    CircShiftLower,
    /// Circular up-shift of concat(A, B) by one RC slice; keep the upper half.
    CircShiftUpper,
}

impl ShuffleOp {
    /// All shuffle operations (useful for exhaustive property tests).
    pub const ALL: [ShuffleOp; 8] = [
        ShuffleOp::InterleaveLower,
        ShuffleOp::InterleaveUpper,
        ShuffleOp::EvenPrune,
        ShuffleOp::OddPrune,
        ShuffleOp::BitRevLower,
        ShuffleOp::BitRevUpper,
        ShuffleOp::CircShiftLower,
        ShuffleOp::CircShiftUpper,
    ];
}

/// One LSU instruction.
///
/// # Example
///
/// ```
/// use vwr2a_core::isa::lsu::{LsuInstr, LsuAddr, ShuffleOp};
/// use vwr2a_core::geometry::VwrId;
///
/// // "LOAD A" from Table 1: fill VWR A from SPM line 0.
/// let load = LsuInstr::LoadVwr { vwr: VwrId::A, line: LsuAddr::Imm(0) };
/// assert!(!load.is_nop());
/// assert_eq!(load.srf_accesses(), 0);
///
/// // Interleave A and B into C between FFT stages.
/// let shuf = LsuInstr::Shuffle(ShuffleOp::InterleaveLower);
/// assert!(!shuf.is_nop());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum LsuInstr {
    /// No operation.
    #[default]
    Nop,
    /// Fill an entire VWR from an SPM line (single cycle, 4096 bits).
    LoadVwr {
        /// Destination VWR.
        vwr: VwrId,
        /// Source SPM line address.
        line: LsuAddr,
    },
    /// Write an entire VWR back to an SPM line.
    StoreVwr {
        /// Source VWR.
        vwr: VwrId,
        /// Destination SPM line address.
        line: LsuAddr,
    },
    /// Load one 32-bit word from the SPM into the SRF.
    LoadSrf {
        /// Destination SRF entry.
        srf: u8,
        /// Source SPM word address.
        word: LsuAddr,
    },
    /// Store one SRF entry to a 32-bit SPM word.
    StoreSrf {
        /// Source SRF entry.
        srf: u8,
        /// Destination SPM word address.
        word: LsuAddr,
    },
    /// Add an immediate to an SRF entry (pointer/loop-bound bookkeeping).
    AddSrf {
        /// SRF entry to update.
        srf: u8,
        /// Signed immediate added to it.
        imm: i16,
    },
    /// Trigger one shuffle-unit operation (VWR A, B → VWR C).
    Shuffle(ShuffleOp),
}

impl LsuInstr {
    /// `true` if this is a no-operation.
    pub fn is_nop(&self) -> bool {
        matches!(self, LsuInstr::Nop)
    }

    /// Number of SRF accesses this instruction performs (for single-port
    /// conflict checking).
    pub fn srf_accesses(&self) -> usize {
        match self {
            LsuInstr::Nop | LsuInstr::Shuffle(_) => 0,
            LsuInstr::LoadVwr { line, .. } | LsuInstr::StoreVwr { line, .. } => {
                usize::from(matches!(line, LsuAddr::Srf(_)))
            }
            LsuInstr::LoadSrf { word, .. } | LsuInstr::StoreSrf { word, .. } => {
                1 + usize::from(matches!(word, LsuAddr::Srf(_)))
            }
            LsuInstr::AddSrf { .. } => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_default() {
        assert!(LsuInstr::default().is_nop());
        assert_eq!(LsuInstr::Nop.srf_accesses(), 0);
    }

    #[test]
    fn srf_access_counting() {
        assert_eq!(
            LsuInstr::LoadVwr {
                vwr: VwrId::A,
                line: LsuAddr::Srf(3)
            }
            .srf_accesses(),
            1
        );
        assert_eq!(
            LsuInstr::LoadSrf {
                srf: 0,
                word: LsuAddr::Srf(1)
            }
            .srf_accesses(),
            2
        );
        assert_eq!(
            LsuInstr::StoreSrf {
                srf: 0,
                word: LsuAddr::Imm(5)
            }
            .srf_accesses(),
            1
        );
        assert_eq!(LsuInstr::AddSrf { srf: 2, imm: -1 }.srf_accesses(), 1);
        assert_eq!(LsuInstr::Shuffle(ShuffleOp::EvenPrune).srf_accesses(), 0);
    }

    #[test]
    fn all_shuffle_ops_distinct() {
        for (i, a) in ShuffleOp::ALL.iter().enumerate() {
            for b in &ShuffleOp::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
