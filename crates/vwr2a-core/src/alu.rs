//! The 32-bit RC ALU.
//!
//! Implements the operation set of Sec. 3.1: signed addition, subtraction
//! and multiplication, logical bitwise operations and logical/arithmetic
//! shifts, all single-cycle.  The multiplier has the two working modes
//! described in the paper: a standard mode keeping the lowest 32 bits and a
//! fixed-point mode discarding the lower 16 bits of the 64-bit product.

use crate::isa::rc::RcOpcode;

/// Executes one ALU operation on two signed 32-bit operands.
///
/// Addition, subtraction and the standard multiply wrap on overflow, like
/// the hardware datapath.  Shift amounts use the low five bits of operand
/// `b`.  The comparison opcodes (`Sgt`, `Slt`, `Seq`) produce `1` or `0`,
/// which kernels combine with `And`/`Or` masks for branch-free predication.
///
/// # Example
///
/// ```
/// use vwr2a_core::alu::execute;
/// use vwr2a_core::isa::rc::RcOpcode;
///
/// assert_eq!(execute(RcOpcode::Add, 3, 4), 7);
/// assert_eq!(execute(RcOpcode::MulFxp, 3 << 16, 1 << 15), 3 << 15);
/// assert_eq!(execute(RcOpcode::Sgt, 5, -5), 1);
/// ```
pub fn execute(op: RcOpcode, a: i32, b: i32) -> i32 {
    match op {
        RcOpcode::Nop => 0,
        RcOpcode::Mov => a,
        RcOpcode::Add => a.wrapping_add(b),
        RcOpcode::Sub => a.wrapping_sub(b),
        RcOpcode::Mul => a.wrapping_mul(b),
        RcOpcode::MulFxp => (((a as i64) * (b as i64)) >> 16) as i32,
        RcOpcode::And => a & b,
        RcOpcode::Or => a | b,
        RcOpcode::Xor => a ^ b,
        RcOpcode::Sll => ((a as u32) << (b as u32 & 31)) as i32,
        RcOpcode::Srl => ((a as u32) >> (b as u32 & 31)) as i32,
        RcOpcode::Sra => a >> (b as u32 & 31),
        RcOpcode::Min => a.min(b),
        RcOpcode::Max => a.max(b),
        RcOpcode::Abs => a.wrapping_abs(),
        RcOpcode::Sgt => i32::from(a > b),
        RcOpcode::Slt => i32::from(a < b),
        RcOpcode::Seq => i32::from(a == b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_wraps() {
        assert_eq!(execute(RcOpcode::Add, i32::MAX, 1), i32::MIN);
        assert_eq!(execute(RcOpcode::Sub, i32::MIN, 1), i32::MAX);
        assert_eq!(execute(RcOpcode::Mul, i32::MAX, 2), -2);
        assert_eq!(execute(RcOpcode::Abs, i32::MIN, 0), i32::MIN);
    }

    #[test]
    fn fixed_point_multiply_matches_paper_semantics() {
        // Q15.16 one times Q15.16 one is Q15.16 one.
        assert_eq!(execute(RcOpcode::MulFxp, 1 << 16, 1 << 16), 1 << 16);
        // Sign is preserved through the 64-bit product.
        assert_eq!(execute(RcOpcode::MulFxp, -(1 << 16), 1 << 16), -(1 << 16));
        assert_eq!(execute(RcOpcode::MulFxp, -(1 << 16), -(1 << 16)), 1 << 16);
        // 0.5 * 0.5 = 0.25.
        assert_eq!(execute(RcOpcode::MulFxp, 1 << 15, 1 << 15), 1 << 14);
    }

    #[test]
    fn logic_and_shifts() {
        assert_eq!(execute(RcOpcode::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(execute(RcOpcode::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(execute(RcOpcode::Xor, 0b1100, 0b1010), 0b0110);
        assert_eq!(execute(RcOpcode::Sll, 1, 31), i32::MIN);
        assert_eq!(execute(RcOpcode::Srl, -1, 28), 0xF);
        assert_eq!(execute(RcOpcode::Sra, -16, 2), -4);
        // Shift amounts are taken modulo 32.
        assert_eq!(execute(RcOpcode::Sll, 1, 32), 1);
    }

    #[test]
    fn comparisons_and_minmax() {
        assert_eq!(execute(RcOpcode::Min, -3, 7), -3);
        assert_eq!(execute(RcOpcode::Max, -3, 7), 7);
        assert_eq!(execute(RcOpcode::Sgt, 1, 1), 0);
        assert_eq!(execute(RcOpcode::Slt, -2, -1), 1);
        assert_eq!(execute(RcOpcode::Seq, 9, 9), 1);
        assert_eq!(execute(RcOpcode::Seq, 9, 8), 0);
    }

    #[test]
    fn mov_and_nop() {
        assert_eq!(execute(RcOpcode::Mov, 42, 99), 42);
        assert_eq!(execute(RcOpcode::Nop, 42, 99), 0);
    }
}
