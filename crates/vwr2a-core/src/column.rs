//! One VWR2A column and its cycle-accurate execution.
//!
//! A column bundles four RCs, the LSU, LCU and MXCU slots, three VWRs, the
//! SRF and the shuffle unit, all synchronised by a shared program counter
//! (Sec. 3.1).  [`Column::step`] executes one cycle with two-phase
//! semantics: every unit reads architectural state as of the start of the
//! cycle and all writes commit together at the end, so neighbouring-RC
//! operands see previous-cycle results and a VWR filled by the LSU becomes
//! visible to the RCs in the following cycle.

use crate::alu;
use crate::error::{CoreError, Result};
use crate::geometry::{Geometry, VwrId};
use crate::isa::lcu::{LcuInstr, LcuSrc, LCU_REGISTERS};
use crate::isa::lsu::{LsuAddr, LsuInstr};
use crate::isa::mxcu::MxcuInstr;
use crate::isa::rc::{RcDst, RcSrc};
use crate::program::ColumnProgram;
use crate::replay::ReplayScratch;
use crate::replay::{ColumnFinish, ReplayDst, ReplayOp, ReplaySrc, TraceRecorder};
use crate::shuffle;
use crate::spm::Spm;
use crate::srf::Srf;
use crate::trace::ActivityCounters;
use crate::vwr::Vwr;
use serde::{Deserialize, Serialize};

/// Resolves an RC operand source into its replay form: all multiplexing
/// (slice offset, MXCU index, neighbour selection) is folded in so the
/// replayed op only performs the data read.
fn replay_src(src: RcSrc, i: usize, slice_words: usize, k: usize, num_rcs: usize) -> ReplaySrc {
    match src {
        RcSrc::Zero => ReplaySrc::Const(0),
        RcSrc::Imm(v) => ReplaySrc::Const(v as i32),
        RcSrc::Reg(r) => ReplaySrc::Reg {
            rc: i,
            reg: r as usize,
        },
        RcSrc::Vwr(v) => ReplaySrc::VwrWord {
            vwr: v.index(),
            word: i * slice_words + k,
        },
        RcSrc::Srf(s) => ReplaySrc::Srf(s as usize),
        RcSrc::RcAbove => ReplaySrc::Prev((i + num_rcs - 1) % num_rcs),
        RcSrc::RcBelow => ReplaySrc::Prev((i + 1) % num_rcs),
        RcSrc::SelfPrev => ReplaySrc::Prev(i),
    }
}

/// Architectural state of one reconfigurable cell.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RcState {
    /// Local register file (two 32-bit entries in the paper's geometry).
    pub regs: Vec<i32>,
    /// Result latched at the end of the previous cycle (visible to
    /// neighbouring RCs and to this RC through [`RcSrc::SelfPrev`]).
    pub prev_result: i32,
}

impl RcState {
    fn new(registers: usize) -> Self {
        Self {
            regs: vec![0; registers],
            prev_result: 0,
        }
    }
}

/// One column of the reconfigurable array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    geometry: Geometry,
    vwrs: Vec<Vwr>,
    srf: Srf,
    rcs: Vec<RcState>,
    lcu_regs: [i32; LCU_REGISTERS],
    mxcu_idx: usize,
    pc: usize,
    halted: bool,
}

impl Column {
    /// Creates a column for the given geometry with zeroed state.
    pub fn new(geometry: Geometry) -> Self {
        Self {
            geometry,
            vwrs: (0..geometry.num_vwrs)
                .map(|_| Vwr::new(geometry.vwr_words))
                .collect(),
            srf: Srf::new(geometry.srf_entries),
            rcs: (0..geometry.rcs_per_column)
                .map(|_| RcState::new(geometry.rc_registers))
                .collect(),
            lcu_regs: [0; LCU_REGISTERS],
            mxcu_idx: 0,
            pc: 0,
            halted: false,
        }
    }

    /// The column geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// A very-wide register.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not exist in this geometry.
    pub fn vwr(&self, id: VwrId) -> &Vwr {
        &self.vwrs[id.index()]
    }

    /// Mutable access to a very-wide register (host-side test/seed access).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not exist in this geometry.
    pub fn vwr_mut(&mut self, id: VwrId) -> &mut Vwr {
        &mut self.vwrs[id.index()]
    }

    /// The scalar register file.
    pub fn srf(&self) -> &Srf {
        &self.srf
    }

    /// Mutable access to the scalar register file (used by the host through
    /// the slave port to pass kernel parameters).
    pub fn srf_mut(&mut self) -> &mut Srf {
        &mut self.srf
    }

    /// The state of RC `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the column.
    pub fn rc(&self, index: usize) -> &RcState {
        &self.rcs[index]
    }

    /// Current program counter.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Current MXCU word index.
    pub fn mxcu_index(&self) -> usize {
        self.mxcu_idx
    }

    /// `true` once the LCU has executed `EXIT`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Resets the execution state (PC, halt flag, MXCU index, LCU and RC
    /// registers) while keeping VWR, SRF and SPM data intact — what happens
    /// when a new kernel is loaded.
    pub fn reset_execution(&mut self) {
        self.pc = 0;
        self.halted = false;
        self.mxcu_idx = 0;
        self.lcu_regs = [0; LCU_REGISTERS];
        for rc in &mut self.rcs {
            rc.regs.fill(0);
            rc.prev_result = 0;
        }
    }

    fn resolve_lsu_addr(
        &self,
        addr: LsuAddr,
        counters: &mut ActivityCounters,
        rec: Option<&mut TraceRecorder>,
    ) -> Result<usize> {
        match addr {
            LsuAddr::Imm(v) => Ok(v as usize),
            LsuAddr::Srf(s) => {
                counters.srf_reads += 1;
                let v = self.srf.read(s as usize)?;
                // The SRF value becomes an SPM address baked into the
                // replay schedule, so it must be guarded.
                if let Some(r) = rec {
                    r.guard_srf(s as usize, v);
                }
                if v < 0 {
                    return Err(CoreError::InvalidDmaTransfer {
                        detail: format!("negative SPM address {v} in SRF {s}"),
                    });
                }
                Ok(v as usize)
            }
        }
    }

    fn resolve_lcu_src(
        &self,
        src: LcuSrc,
        counters: &mut ActivityCounters,
        rec: Option<&mut TraceRecorder>,
    ) -> Result<i32> {
        Ok(match src {
            LcuSrc::Imm(v) => v,
            LcuSrc::Reg(r) => self.lcu_regs[r as usize % LCU_REGISTERS],
            LcuSrc::Srf(s) => {
                counters.srf_reads += 1;
                let v = self.srf.read(s as usize)?;
                // The SRF value feeds the LCU (loop bounds, branch
                // operands) and thus the baked control flow.
                if let Some(r) = rec {
                    r.guard_srf(s as usize, v);
                }
                v
            }
        })
    }

    /// Executes one cycle of `program`.
    ///
    /// Returns `Ok(true)` while the column keeps running and `Ok(false)`
    /// once it has halted (either before this call or by executing `EXIT`
    /// during it).
    ///
    /// # Errors
    ///
    /// Returns structural-hazard errors ([`CoreError::SrfPortConflict`],
    /// [`CoreError::WriteConflict`]), out-of-range accesses, or
    /// [`CoreError::BranchTargetOutOfRange`] if execution falls off the end
    /// of the program without an `EXIT`.
    pub fn step(
        &mut self,
        program: &ColumnProgram,
        spm: &mut Spm,
        counters: &mut ActivityCounters,
        cycle: u64,
    ) -> Result<bool> {
        self.step_traced(program, spm, counters, cycle, None)
    }

    /// [`Column::step`] with an optional [`TraceRecorder`] attached: the
    /// resolved ops and SRF guard observations of this cycle are appended
    /// to the recorder's current segment (the caller opens the segment).
    pub(crate) fn step_traced(
        &mut self,
        program: &ColumnProgram,
        spm: &mut Spm,
        counters: &mut ActivityCounters,
        cycle: u64,
        mut rec: Option<&mut TraceRecorder>,
    ) -> Result<bool> {
        if self.halted {
            return Ok(false);
        }
        let row = &program.rows()[self.pc];

        // Structural hazard: the SRF is single-ported.
        let srf_accesses = row.srf_accesses();
        if srf_accesses > 1 {
            return Err(CoreError::SrfPortConflict {
                cycle,
                accesses: srf_accesses,
            });
        }

        let active = row.active_slots();
        counters.instr_issues += active as u64;
        counters.nop_issues += (3 + self.rcs.len() - active) as u64;

        let slice_words = self.geometry.slice_words();
        let k = self.mxcu_idx;
        let num_rcs = self.rcs.len();
        let prev_results: Vec<i32> = self.rcs.iter().map(|r| r.prev_result).collect();

        // Pending write sets, committed at the end of the cycle.
        let mut rc_reg_writes: Vec<(usize, usize, i32)> = Vec::new();
        let mut vwr_word_writes: Vec<(usize, usize, i32)> = Vec::new();
        let mut vwr_line_writes: Vec<(usize, Vec<i32>)> = Vec::new();
        let mut srf_writes: Vec<(usize, i32)> = Vec::new();
        let mut new_results = prev_results.clone();
        let mut new_mxcu_idx = self.mxcu_idx;
        let mut new_lcu_regs = self.lcu_regs;
        let mut next_pc = self.pc + 1;
        let mut exited = false;

        // ------------------------------------------------------------------
        // Reconfigurable cells.
        // ------------------------------------------------------------------
        for (i, instr) in row.rcs.iter().enumerate() {
            if instr.is_nop() {
                continue;
            }
            let read_src = |src: RcSrc, counters: &mut ActivityCounters| -> Result<i32> {
                Ok(match src {
                    RcSrc::Zero => 0,
                    RcSrc::Imm(v) => v as i32,
                    RcSrc::Reg(r) => {
                        counters.rc_reg_reads += 1;
                        *self.rcs[i]
                            .regs
                            .get(r as usize)
                            .ok_or(CoreError::InvalidGeometry {
                                detail: format!("RC register {r} out of range"),
                            })?
                    }
                    RcSrc::Vwr(v) => {
                        counters.vwr_word_reads += 1;
                        let word = i * slice_words + k;
                        self.vwrs
                            .get(v.index())
                            .ok_or(CoreError::InvalidGeometry {
                                detail: format!("VWR {v:?} not present"),
                            })?
                            .read_word(word)?
                    }
                    RcSrc::Srf(s) => {
                        counters.srf_reads += 1;
                        self.srf.read(s as usize)?
                    }
                    RcSrc::RcAbove => prev_results[(i + num_rcs - 1) % num_rcs],
                    RcSrc::RcBelow => prev_results[(i + 1) % num_rcs],
                    RcSrc::SelfPrev => prev_results[i],
                })
            };
            let a = read_src(instr.src_a, counters)?;
            let b = read_src(instr.src_b, counters)?;
            let result = alu::execute(instr.op, a, b);
            counters.rc_alu_ops += 1;
            if instr.op.is_multiply() {
                counters.rc_multiplies += 1;
            }
            new_results[i] = result;
            let replay_dst = match instr.dst {
                RcDst::None => ReplayDst::None,
                RcDst::Reg(r) => {
                    counters.rc_reg_writes += 1;
                    rc_reg_writes.push((i, r as usize, result));
                    ReplayDst::Reg {
                        rc: i,
                        reg: r as usize,
                    }
                }
                RcDst::Vwr(v) => {
                    counters.vwr_word_writes += 1;
                    vwr_word_writes.push((v.index(), i * slice_words + k, result));
                    ReplayDst::VwrWord {
                        vwr: v.index(),
                        word: i * slice_words + k,
                    }
                }
                RcDst::Srf(s) => {
                    counters.srf_writes += 1;
                    srf_writes.push((s as usize, result));
                    ReplayDst::Srf(s as usize)
                }
            };
            if let Some(r) = rec.as_deref_mut() {
                r.push_op(ReplayOp::Rc {
                    rc: i,
                    op: instr.op,
                    a: replay_src(instr.src_a, i, slice_words, k, num_rcs),
                    b: replay_src(instr.src_b, i, slice_words, k, num_rcs),
                    dst: replay_dst,
                });
            }
        }

        // ------------------------------------------------------------------
        // Load-store unit (and shuffle unit).
        // ------------------------------------------------------------------
        match row.lsu {
            LsuInstr::Nop => {}
            LsuInstr::LoadVwr { vwr, line } => {
                let addr = self.resolve_lsu_addr(line, counters, rec.as_deref_mut())?;
                let data = spm.read_line(addr)?.to_vec();
                counters.spm_line_reads += 1;
                counters.vwr_line_transfers += 1;
                vwr_line_writes.push((vwr.index(), data));
                if let Some(r) = rec.as_deref_mut() {
                    r.push_op(ReplayOp::LoadVwrLine {
                        vwr: vwr.index(),
                        line: addr,
                    });
                }
            }
            LsuInstr::StoreVwr { vwr, line } => {
                let addr = self.resolve_lsu_addr(line, counters, rec.as_deref_mut())?;
                let data = self
                    .vwrs
                    .get(vwr.index())
                    .ok_or(CoreError::InvalidGeometry {
                        detail: format!("VWR {vwr:?} not present"),
                    })?
                    .words()
                    .to_vec();
                spm.write_line(addr, &data)?;
                counters.spm_line_writes += 1;
                counters.vwr_line_transfers += 1;
                if let Some(r) = rec.as_deref_mut() {
                    r.push_op(ReplayOp::StoreVwrLine {
                        vwr: vwr.index(),
                        line: addr,
                    });
                }
            }
            LsuInstr::LoadSrf { srf, word } => {
                let addr = self.resolve_lsu_addr(word, counters, rec.as_deref_mut())?;
                let value = spm.read_word(addr)?;
                counters.spm_word_reads += 1;
                counters.srf_writes += 1;
                srf_writes.push((srf as usize, value));
                if let Some(r) = rec.as_deref_mut() {
                    r.push_op(ReplayOp::LoadSrfWord {
                        srf: srf as usize,
                        word: addr,
                    });
                }
            }
            LsuInstr::StoreSrf { srf, word } => {
                let addr = self.resolve_lsu_addr(word, counters, rec.as_deref_mut())?;
                counters.srf_reads += 1;
                let value = self.srf.read(srf as usize)?;
                spm.write_word(addr, value)?;
                counters.spm_word_writes += 1;
                if let Some(r) = rec.as_deref_mut() {
                    r.push_op(ReplayOp::StoreSrfWord {
                        srf: srf as usize,
                        word: addr,
                    });
                }
            }
            LsuInstr::AddSrf { srf, imm } => {
                counters.srf_reads += 1;
                counters.srf_writes += 1;
                let value = self.srf.read(srf as usize)?.wrapping_add(imm as i32);
                srf_writes.push((srf as usize, value));
                if let Some(r) = rec.as_deref_mut() {
                    r.push_op(ReplayOp::AddSrf {
                        srf: srf as usize,
                        imm: imm as i32,
                    });
                }
            }
            LsuInstr::Shuffle(op) => {
                let a = self.vwrs[VwrId::A.index()].words();
                let b = self.vwrs[VwrId::B.index()].words();
                let out = shuffle::apply(op, a, b, slice_words);
                counters.shuffle_ops += 1;
                counters.vwr_line_transfers += 3;
                vwr_line_writes.push((VwrId::C.index(), out));
                if let Some(r) = rec.as_deref_mut() {
                    r.push_op(ReplayOp::Shuffle { op });
                }
            }
        }

        // ------------------------------------------------------------------
        // Multiplexer-control unit.
        // ------------------------------------------------------------------
        match row.mxcu {
            MxcuInstr::Nop => {}
            MxcuInstr::SetIdx(v) => new_mxcu_idx = v as usize % slice_words,
            MxcuInstr::AddIdx(d) => {
                new_mxcu_idx =
                    (self.mxcu_idx as i64 + d as i64).rem_euclid(slice_words as i64) as usize;
            }
            MxcuInstr::LoadIdxSrf(s) => {
                counters.srf_reads += 1;
                let v = self.srf.read(s as usize)?;
                // The SRF value becomes the MXCU index, i.e. baked VWR
                // word addressing.
                if let Some(r) = rec.as_deref_mut() {
                    r.guard_srf(s as usize, v);
                }
                new_mxcu_idx = (v as i64).rem_euclid(slice_words as i64) as usize;
            }
            MxcuInstr::AndIdxSrf(s) => {
                counters.srf_reads += 1;
                let v = self.srf.read(s as usize)?;
                if let Some(r) = rec.as_deref_mut() {
                    r.guard_srf(s as usize, v);
                }
                new_mxcu_idx = (self.mxcu_idx & v as usize) % slice_words;
            }
            MxcuInstr::StoreIdxSrf(s) => {
                counters.srf_writes += 1;
                srf_writes.push((s as usize, self.mxcu_idx as i32));
                // The index value is schedule-determined, so the write
                // replays as a constant store.
                if let Some(r) = rec.as_deref_mut() {
                    r.push_op(ReplayOp::WriteSrfConst {
                        srf: s as usize,
                        value: self.mxcu_idx as i32,
                    });
                }
            }
        }

        // ------------------------------------------------------------------
        // Loop-control unit.
        // ------------------------------------------------------------------
        match row.lcu {
            LcuInstr::Nop => {}
            LcuInstr::Li { r, value } => new_lcu_regs[r as usize % LCU_REGISTERS] = value,
            LcuInstr::Add { r, src } => {
                let v = self.resolve_lcu_src(src, counters, rec.as_deref_mut())?;
                let idx = r as usize % LCU_REGISTERS;
                new_lcu_regs[idx] = self.lcu_regs[idx].wrapping_add(v);
            }
            LcuInstr::LoadSrf { r, srf } => {
                counters.srf_reads += 1;
                let v = self.srf.read(srf as usize)?;
                if let Some(rr) = rec.as_deref_mut() {
                    rr.guard_srf(srf as usize, v);
                }
                new_lcu_regs[r as usize % LCU_REGISTERS] = v;
            }
            LcuInstr::Branch { cond, a, b, target } => {
                let av = self.lcu_regs[a as usize % LCU_REGISTERS];
                let bv = self.resolve_lcu_src(b, counters, rec.as_deref_mut())?;
                if cond.eval(av, bv) {
                    counters.lcu_branches += 1;
                    next_pc = target as usize;
                }
            }
            LcuInstr::Jump(target) => {
                counters.lcu_branches += 1;
                next_pc = target as usize;
            }
            LcuInstr::Exit => exited = true,
        }

        // ------------------------------------------------------------------
        // Commit phase.
        // ------------------------------------------------------------------
        // Write-conflict detection on whole-VWR targets.
        for (idx, (v, _)) in vwr_line_writes.iter().enumerate() {
            if vwr_line_writes[idx + 1..].iter().any(|(v2, _)| v2 == v) {
                return Err(CoreError::WriteConflict {
                    cycle,
                    resource: format!("VWR {} (two line writes)", VwrId::from_index(*v).index()),
                });
            }
            if vwr_word_writes.iter().any(|(v2, _, _)| v2 == v) {
                return Err(CoreError::WriteConflict {
                    cycle,
                    resource: format!(
                        "VWR {} (line write and word write in the same cycle)",
                        VwrId::from_index(*v).index()
                    ),
                });
            }
        }
        for (idx, (s, _)) in srf_writes.iter().enumerate() {
            if srf_writes[idx + 1..].iter().any(|(s2, _)| s2 == s) {
                return Err(CoreError::WriteConflict {
                    cycle,
                    resource: format!("SRF register {s}"),
                });
            }
        }

        for (rc, reg, value) in rc_reg_writes {
            *self.rcs[rc]
                .regs
                .get_mut(reg)
                .ok_or(CoreError::InvalidGeometry {
                    detail: format!("RC register {reg} out of range"),
                })? = value;
        }
        for (vwr, word, value) in vwr_word_writes {
            self.vwrs[vwr].write_word(word, value)?;
        }
        for (vwr, line) in vwr_line_writes {
            self.vwrs[vwr].load_line(&line)?;
        }
        for (srf, value) in srf_writes {
            self.srf.write(srf, value)?;
            // Mark the entry as execution-written: a later control or
            // addressing read of it would make the schedule data-dependent
            // and must poison the trace.
            if let Some(r) = rec.as_deref_mut() {
                r.note_srf_write(srf);
            }
        }
        for (rc, result) in self.rcs.iter_mut().zip(new_results) {
            rc.prev_result = result;
        }
        self.mxcu_idx = new_mxcu_idx;
        self.lcu_regs = new_lcu_regs;

        if exited {
            self.halted = true;
            return Ok(false);
        }
        if next_pc >= program.len() {
            return Err(CoreError::BranchTargetOutOfRange {
                target: next_pc,
                len: program.len(),
            });
        }
        self.pc = next_pc;
        Ok(true)
    }

    /// End-of-run control state for a [`ReplayTrace`] (captured right
    /// after a recorded execution halts).
    pub(crate) fn replay_finish(&self) -> ColumnFinish {
        ColumnFinish {
            pc: self.pc,
            mxcu_idx: self.mxcu_idx,
            lcu_regs: self.lcu_regs,
        }
    }

    /// Restores the recorded end-of-run control state after a replay and
    /// halts the column, so the architectural state matches an interpreted
    /// execution exactly.
    pub(crate) fn apply_replay_finish(&mut self, finish: &ColumnFinish) {
        self.pc = finish.pc;
        self.mxcu_idx = finish.mxcu_idx;
        self.lcu_regs = finish.lcu_regs;
        self.halted = true;
    }

    fn replay_read(&self, src: ReplaySrc) -> Result<i32> {
        Ok(match src {
            ReplaySrc::Const(v) => v,
            ReplaySrc::Reg { rc, reg } => self.rcs[rc].regs[reg],
            ReplaySrc::VwrWord { vwr, word } => self.vwrs[vwr].read_word(word)?,
            ReplaySrc::Srf(s) => self.srf.read(s)?,
            ReplaySrc::Prev(rc) => self.rcs[rc].prev_result,
        })
    }

    /// Replays one recorded segment with the interpreter's two-phase
    /// semantics: reads see segment-start state, writes commit at segment
    /// end in interpreter order, SPM accesses are immediate.  Counters are
    /// not touched — the trace credits the recorded delta verbatim.
    pub(crate) fn replay_segment(
        &mut self,
        ops: &[ReplayOp],
        spm: &mut Spm,
        scratch: &mut ReplayScratch,
    ) -> Result<()> {
        for op in ops {
            match *op {
                ReplayOp::Rc { rc, op, a, b, dst } => {
                    let av = self.replay_read(a)?;
                    let bv = self.replay_read(b)?;
                    let result = alu::execute(op, av, bv);
                    scratch.prev.push((rc, result));
                    match dst {
                        ReplayDst::None => {}
                        ReplayDst::Reg { rc, reg } => scratch.rc_reg.push((rc, reg, result)),
                        ReplayDst::VwrWord { vwr, word } => {
                            scratch.vwr_word.push((vwr, word, result))
                        }
                        ReplayDst::Srf(s) => scratch.srf.push((s, result)),
                    }
                }
                ReplayOp::LoadVwrLine { vwr, line } => {
                    scratch.line_buf.clear();
                    scratch.line_buf.extend_from_slice(spm.read_line(line)?);
                    scratch.line_target = Some(vwr);
                }
                ReplayOp::StoreVwrLine { vwr, line } => {
                    spm.write_line(line, self.vwrs[vwr].words())?;
                }
                ReplayOp::LoadSrfWord { srf, word } => {
                    scratch.srf.push((srf, spm.read_word(word)?));
                }
                ReplayOp::StoreSrfWord { srf, word } => {
                    spm.write_word(word, self.srf.read(srf)?)?;
                }
                ReplayOp::AddSrf { srf, imm } => {
                    scratch
                        .srf
                        .push((srf, self.srf.read(srf)?.wrapping_add(imm)));
                }
                ReplayOp::WriteSrfConst { srf, value } => {
                    scratch.srf.push((srf, value));
                }
                ReplayOp::Shuffle { op } => {
                    let out = shuffle::apply(
                        op,
                        self.vwrs[VwrId::A.index()].words(),
                        self.vwrs[VwrId::B.index()].words(),
                        self.geometry.slice_words(),
                    );
                    scratch.line_buf.clear();
                    scratch.line_buf.extend_from_slice(&out);
                    scratch.line_target = Some(VwrId::C.index());
                }
            }
        }
        // Commit in interpreter order: RC registers, VWR words, VWR lines,
        // SRF entries, previous-result latches.
        for &(rc, reg, value) in &scratch.rc_reg {
            self.rcs[rc].regs[reg] = value;
        }
        for &(vwr, word, value) in &scratch.vwr_word {
            self.vwrs[vwr].write_word(word, value)?;
        }
        if let Some(vwr) = scratch.line_target.take() {
            self.vwrs[vwr].load_line(&scratch.line_buf)?;
        }
        for &(srf, value) in &scratch.srf {
            self.srf.write(srf, value)?;
        }
        for &(rc, value) in &scratch.prev {
            self.rcs[rc].prev_result = value;
        }
        scratch.rc_reg.clear();
        scratch.vwr_word.clear();
        scratch.srf.clear();
        scratch.prev.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ColumnProgramBuilder;
    use crate::isa::lcu::LcuCond;
    use crate::isa::rc::{RcInstr, RcOpcode};
    use crate::program::Row;

    fn paper_column() -> (Column, Spm) {
        let g = Geometry::paper();
        (Column::new(g), Spm::new(g.spm_words(), g.vwr_words))
    }

    fn run(column: &mut Column, program: &ColumnProgram, spm: &mut Spm) -> (u64, ActivityCounters) {
        let mut counters = ActivityCounters::new();
        let mut cycles = 0u64;
        column.reset_execution();
        loop {
            cycles += 1;
            let running = column.step(program, spm, &mut counters, cycles).unwrap();
            if !running {
                break;
            }
            assert!(cycles < 100_000, "runaway program");
        }
        counters.cycles = cycles;
        (cycles, counters)
    }

    #[test]
    fn vector_add_over_one_vwr_load() {
        // Table-1-like kernel: load A and B from SPM, add them into C, store C.
        let g = Geometry::paper();
        let (mut col, mut spm) = paper_column();
        let a: Vec<i32> = (0..128).collect();
        let b: Vec<i32> = (0..128).map(|i| 1000 + i).collect();
        spm.write_line(0, &a).unwrap();
        spm.write_line(1, &b).unwrap();

        let mut bld = ColumnProgramBuilder::new(g.rcs_per_column);
        bld.push(bld.row().lsu(LsuInstr::LoadVwr {
            vwr: VwrId::A,
            line: LsuAddr::Imm(0),
        }));
        bld.push(bld.row().lsu(LsuInstr::LoadVwr {
            vwr: VwrId::B,
            line: LsuAddr::Imm(1),
        }));
        // Loop over the 32 words of each RC slice.
        bld.push(
            bld.row()
                .lcu(LcuInstr::Li { r: 0, value: 0 })
                .mxcu(MxcuInstr::SetIdx(0)),
        );
        let top = bld.new_label();
        bld.bind_label(top);
        bld.push(
            bld.row()
                .lcu(LcuInstr::Add {
                    r: 0,
                    src: LcuSrc::Imm(1),
                })
                .mxcu(MxcuInstr::AddIdx(1))
                .rc_all(RcInstr::new(
                    RcOpcode::Add,
                    RcDst::Vwr(VwrId::C),
                    RcSrc::Vwr(VwrId::A),
                    RcSrc::Vwr(VwrId::B),
                )),
        );
        bld.push_branch(bld.row(), LcuCond::Lt, 0, LcuSrc::Imm(32), top);
        bld.push(bld.row().lsu(LsuInstr::StoreVwr {
            vwr: VwrId::C,
            line: LsuAddr::Imm(2),
        }));
        bld.push_exit();
        let program = bld.build().unwrap();
        program.validate(&g).unwrap();

        let (cycles, counters) = run(&mut col, &program, &mut spm);
        let out = spm.read_line(2).unwrap();
        for i in 0..128 {
            assert_eq!(out[i], a[i] + b[i], "word {i}");
        }
        // 32 iterations * 4 RCs additions.
        assert_eq!(counters.rc_alu_ops, 128);
        assert_eq!(counters.spm_line_reads, 2);
        assert_eq!(counters.spm_line_writes, 1);
        assert!(cycles > 64 && cycles < 80, "cycles = {cycles}");
    }

    #[test]
    fn mxcu_index_takes_effect_next_cycle() {
        let g = Geometry::paper();
        let (mut col, mut spm) = paper_column();
        // VWR A word 0 of RC0 slice = 7, word 1 = 9.
        col.vwr_mut(VwrId::A).write_word(0, 7).unwrap();
        col.vwr_mut(VwrId::A).write_word(1, 9).unwrap();

        let mut bld = ColumnProgramBuilder::new(g.rcs_per_column);
        // Cycle 1: read A (k=0) into R0 and bump k.
        bld.push(
            bld.row()
                .mxcu(MxcuInstr::AddIdx(1))
                .rc(0, RcInstr::mov(RcDst::Reg(0), RcSrc::Vwr(VwrId::A))),
        );
        // Cycle 2: read A (k=1) into R1.
        bld.push(
            bld.row()
                .rc(0, RcInstr::mov(RcDst::Reg(1), RcSrc::Vwr(VwrId::A))),
        );
        bld.push_exit();
        let program = bld.build().unwrap();
        let _ = run(&mut col, &program, &mut spm);
        assert_eq!(
            col.rc(0).regs[0],
            7,
            "first read uses the pre-increment index"
        );
        assert_eq!(
            col.rc(0).regs[1],
            9,
            "second read sees the incremented index"
        );
    }

    #[test]
    fn neighbour_operands_are_previous_cycle_results() {
        let g = Geometry::paper();
        let (mut col, mut spm) = paper_column();
        let mut bld = ColumnProgramBuilder::new(g.rcs_per_column);
        // Cycle 1: RC0 computes 5; RC1 computes 10.
        bld.push(
            bld.row()
                .rc(0, RcInstr::mov(RcDst::None, RcSrc::Imm(5)))
                .rc(1, RcInstr::mov(RcDst::None, RcSrc::Imm(10))),
        );
        // Cycle 2: RC1 adds the previous result of the RC above it (RC0).
        bld.push(bld.row().rc(
            1,
            RcInstr::new(
                RcOpcode::Add,
                RcDst::Reg(0),
                RcSrc::RcAbove,
                RcSrc::SelfPrev,
            ),
        ));
        bld.push_exit();
        let program = bld.build().unwrap();
        let _ = run(&mut col, &program, &mut spm);
        assert_eq!(col.rc(1).regs[0], 15);
    }

    #[test]
    fn srf_port_conflict_is_detected() {
        let (mut col, mut spm) = paper_column();
        let rows = vec![
            Row::new(4)
                .rc(0, RcInstr::mov(RcDst::Reg(0), RcSrc::Srf(0)))
                .rc(1, RcInstr::mov(RcDst::Reg(0), RcSrc::Srf(1))),
            Row::new(4).lcu(LcuInstr::Exit),
        ];
        let program = ColumnProgram::new(rows).unwrap();
        let mut counters = ActivityCounters::new();
        col.reset_execution();
        let err = col.step(&program, &mut spm, &mut counters, 1).unwrap_err();
        assert!(matches!(
            err,
            CoreError::SrfPortConflict { accesses: 2, .. }
        ));
    }

    #[test]
    fn shuffle_and_rc_write_conflict_is_detected() {
        let g = Geometry::paper();
        let (mut col, mut spm) = paper_column();
        let rows = vec![
            Row::new(4)
                .lsu(LsuInstr::Shuffle(crate::isa::lsu::ShuffleOp::EvenPrune))
                .rc(0, RcInstr::mov(RcDst::Vwr(VwrId::C), RcSrc::Imm(1))),
            Row::new(4).lcu(LcuInstr::Exit),
        ];
        let program = ColumnProgram::new(rows).unwrap();
        let mut counters = ActivityCounters::new();
        col.reset_execution();
        let err = col.step(&program, &mut spm, &mut counters, 1).unwrap_err();
        assert!(matches!(err, CoreError::WriteConflict { .. }));
        let _ = g;
    }

    #[test]
    fn falling_off_the_end_is_an_error() {
        let (mut col, mut spm) = paper_column();
        let program = ColumnProgram::new(vec![Row::new(4)]).unwrap();
        let mut counters = ActivityCounters::new();
        col.reset_execution();
        let err = col.step(&program, &mut spm, &mut counters, 1).unwrap_err();
        assert!(matches!(err, CoreError::BranchTargetOutOfRange { .. }));
    }

    #[test]
    fn loaded_vwr_visible_next_cycle_not_same_cycle() {
        let g = Geometry::paper();
        let (mut col, mut spm) = paper_column();
        let line: Vec<i32> = (0..128).map(|i| i + 100).collect();
        spm.write_line(0, &line).unwrap();
        let mut bld = ColumnProgramBuilder::new(g.rcs_per_column);
        // Load A and read it in the same cycle: the read must see the old value (0).
        bld.push(
            bld.row()
                .lsu(LsuInstr::LoadVwr {
                    vwr: VwrId::A,
                    line: LsuAddr::Imm(0),
                })
                .rc(0, RcInstr::mov(RcDst::Reg(0), RcSrc::Vwr(VwrId::A))),
        );
        // Next cycle the new value is visible.
        bld.push(
            bld.row()
                .rc(0, RcInstr::mov(RcDst::Reg(1), RcSrc::Vwr(VwrId::A))),
        );
        bld.push_exit();
        let program = bld.build().unwrap();
        let _ = run(&mut col, &program, &mut spm);
        assert_eq!(col.rc(0).regs[0], 0);
        assert_eq!(col.rc(0).regs[1], 100);
    }

    #[test]
    fn exit_halts_and_further_steps_are_noops() {
        let (mut col, mut spm) = paper_column();
        let program = ColumnProgram::new(vec![Row::new(4).lcu(LcuInstr::Exit)]).unwrap();
        let mut counters = ActivityCounters::new();
        col.reset_execution();
        assert!(!col.step(&program, &mut spm, &mut counters, 1).unwrap());
        assert!(col.is_halted());
        assert!(!col.step(&program, &mut spm, &mut counters, 2).unwrap());
    }
}
