//! The VWR2A DMA engine.
//!
//! A DMA performs the data transfers between the SPM and the system memory
//! (Sec. 3.2): VWR2A's master port issues bus transactions word by word at
//! the system-bus width, while the LSU handles the wide SPM↔VWR side.  The
//! model charges a fixed descriptor-programming overhead per transfer plus a
//! per-word beat cost; both are visible in the returned cycle counts and in
//! the activity counters, which is how the DMA row of Table 3 is produced.

use crate::error::{CoreError, Result};
use crate::spm::Spm;
use crate::trace::ActivityCounters;
use serde::{Deserialize, Serialize};

/// Timing parameters of the DMA engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaConfig {
    /// Cycles to program one transfer descriptor (CPU writes over the slave
    /// port plus channel start).
    pub setup_cycles: u64,
    /// Bus beats per 32-bit word moved (AHB single beats; burst transfers
    /// can lower this).
    pub cycles_per_word: u64,
}

impl Default for DmaConfig {
    fn default() -> Self {
        // One descriptor write burst plus single-beat word transfers, the
        // conservative configuration used for the paper-shape experiments.
        Self {
            setup_cycles: 24,
            cycles_per_word: 1,
        }
    }
}

/// The DMA engine.
///
/// # Example
///
/// ```
/// use vwr2a_core::dma::{Dma, DmaConfig};
/// use vwr2a_core::spm::Spm;
/// use vwr2a_core::trace::ActivityCounters;
///
/// # fn main() -> Result<(), vwr2a_core::error::CoreError> {
/// let dma = Dma::new(DmaConfig::default());
/// let mut spm = Spm::new(8192, 128);
/// let mut counters = ActivityCounters::new();
/// let data: Vec<i32> = (0..256).collect();
/// let cycles = dma.copy_to_spm(&data, &mut spm, 0, &mut counters)?;
/// assert!(cycles > 256);
/// assert_eq!(spm.read_word(255)?, 255);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dma {
    config: DmaConfig,
}

impl Dma {
    /// Creates a DMA engine with the given timing configuration.
    pub fn new(config: DmaConfig) -> Self {
        Self { config }
    }

    /// The timing configuration.
    pub fn config(&self) -> DmaConfig {
        self.config
    }

    /// Copies `data` from system memory into the SPM starting at
    /// `spm_word_addr`, returning the cycles consumed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDmaTransfer`] for an empty transfer or
    /// [`CoreError::SpmOutOfRange`] if the destination range does not fit.
    pub fn copy_to_spm(
        &self,
        data: &[i32],
        spm: &mut Spm,
        spm_word_addr: usize,
        counters: &mut ActivityCounters,
    ) -> Result<u64> {
        if data.is_empty() {
            return Err(CoreError::InvalidDmaTransfer {
                detail: "transfer length is zero".into(),
            });
        }
        spm.write_words(spm_word_addr, data)?;
        counters.dma_transfers += 1;
        counters.dma_words += data.len() as u64;
        counters.spm_word_writes += data.len() as u64;
        Ok(self.config.setup_cycles + self.config.cycles_per_word * data.len() as u64)
    }

    /// Copies `len` words from the SPM starting at `spm_word_addr` back to
    /// system memory, returning the data and the cycles consumed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDmaTransfer`] for an empty transfer or
    /// [`CoreError::SpmOutOfRange`] if the source range does not fit.
    pub fn copy_from_spm(
        &self,
        spm: &Spm,
        spm_word_addr: usize,
        len: usize,
        counters: &mut ActivityCounters,
    ) -> Result<(Vec<i32>, u64)> {
        if len == 0 {
            return Err(CoreError::InvalidDmaTransfer {
                detail: "transfer length is zero".into(),
            });
        }
        let data = spm.read_words(spm_word_addr, len)?;
        counters.dma_transfers += 1;
        counters.dma_words += len as u64;
        counters.spm_word_reads += len as u64;
        Ok((
            data,
            self.config.setup_cycles + self.config.cycles_per_word * len as u64,
        ))
    }
}

impl Default for Dma {
    fn default() -> Self {
        Self::new(DmaConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_data_and_counts_activity() {
        let dma = Dma::default();
        let mut spm = Spm::new(1024, 128);
        let mut counters = ActivityCounters::new();
        let data: Vec<i32> = (0..128).map(|i| i * 3 - 64).collect();
        let c1 = dma
            .copy_to_spm(&data, &mut spm, 128, &mut counters)
            .unwrap();
        let (back, c2) = dma.copy_from_spm(&spm, 128, 128, &mut counters).unwrap();
        assert_eq!(back, data);
        assert_eq!(c1, c2);
        assert_eq!(counters.dma_transfers, 2);
        assert_eq!(counters.dma_words, 256);
        assert_eq!(counters.spm_word_writes, 128);
        assert_eq!(counters.spm_word_reads, 128);
    }

    #[test]
    fn cycle_cost_scales_with_length() {
        let dma = Dma::new(DmaConfig {
            setup_cycles: 10,
            cycles_per_word: 2,
        });
        let mut spm = Spm::new(1024, 128);
        let mut counters = ActivityCounters::new();
        let cycles = dma
            .copy_to_spm(&[0; 100], &mut spm, 0, &mut counters)
            .unwrap();
        assert_eq!(cycles, 10 + 200);
    }

    #[test]
    fn invalid_transfers_rejected() {
        let dma = Dma::default();
        let mut spm = Spm::new(256, 128);
        let mut counters = ActivityCounters::new();
        assert!(dma.copy_to_spm(&[], &mut spm, 0, &mut counters).is_err());
        assert!(dma
            .copy_to_spm(&[0; 300], &mut spm, 0, &mut counters)
            .is_err());
        assert!(dma.copy_from_spm(&spm, 0, 0, &mut counters).is_err());
        assert!(dma.copy_from_spm(&spm, 200, 100, &mut counters).is_err());
    }
}
