//! The VWR2A DMA engine.
//!
//! A DMA performs the data transfers between the SPM and the system memory
//! (Sec. 3.2): VWR2A's master port issues bus transactions word by word at
//! the system-bus width, while the LSU handles the wide SPM↔VWR side.  The
//! model charges a fixed descriptor-programming overhead per transfer plus a
//! per-word beat cost; both are visible in the returned cycle counts and in
//! the activity counters, which is how the DMA row of Table 3 is produced.

use crate::error::{CoreError, Result};
use crate::spm::Spm;
use crate::timeline::{Engine, Span, Timeline};
use crate::trace::ActivityCounters;
use serde::{Deserialize, Serialize};

/// Timing parameters of the DMA engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaConfig {
    /// Cycles to program one transfer descriptor (CPU writes over the slave
    /// port plus channel start).
    pub setup_cycles: u64,
    /// Bus beats per 32-bit word moved (AHB single beats; burst transfers
    /// can lower this).
    pub cycles_per_word: u64,
}

impl Default for DmaConfig {
    fn default() -> Self {
        // One descriptor write burst plus single-beat word transfers, the
        // conservative configuration used for the paper-shape experiments.
        Self {
            setup_cycles: 24,
            cycles_per_word: 1,
        }
    }
}

/// The DMA engine.
///
/// Transfers report their cost as a [`Span`] scheduled on a caller-supplied
/// [`Timeline`] (see [`crate::timeline`]): the transfer occupies
/// [`Engine::Dma`] no earlier than the engine's previous work and the
/// caller's `not_before` dependency.  Callers that only want the serial
/// duration pass a scratch timeline and read [`Span::duration`].
///
/// # Example
///
/// ```
/// use vwr2a_core::dma::{Dma, DmaConfig};
/// use vwr2a_core::spm::Spm;
/// use vwr2a_core::timeline::Timeline;
/// use vwr2a_core::trace::ActivityCounters;
///
/// # fn main() -> Result<(), vwr2a_core::error::CoreError> {
/// let dma = Dma::new(DmaConfig::default());
/// let mut spm = Spm::new(8192, 128);
/// let mut counters = ActivityCounters::new();
/// let mut timeline = Timeline::new();
/// let data: Vec<i32> = (0..256).collect();
/// let span = dma.copy_to_spm(&data, &mut spm, 0, &mut counters, &mut timeline, 0)?;
/// assert!(span.duration() > 256);
/// assert_eq!(spm.read_word(255)?, 255);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dma {
    config: DmaConfig,
}

impl Dma {
    /// Creates a DMA engine with the given timing configuration.
    pub fn new(config: DmaConfig) -> Self {
        Self { config }
    }

    /// The timing configuration.
    pub fn config(&self) -> DmaConfig {
        self.config
    }

    /// Cycles a transfer of `words` words occupies the DMA engine
    /// (descriptor programming plus per-word beats).
    pub fn transfer_cycles(&self, words: usize) -> u64 {
        self.config.setup_cycles + self.config.cycles_per_word * words as u64
    }

    /// Copies `data` from system memory into the SPM starting at
    /// `spm_word_addr`.  The transfer's cost is scheduled on `timeline`
    /// ([`Engine::Dma`], no earlier than `not_before`) and returned as a
    /// [`Span`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDmaTransfer`] for an empty transfer or
    /// [`CoreError::SpmOutOfRange`] if the destination range does not fit.
    pub fn copy_to_spm(
        &self,
        data: &[i32],
        spm: &mut Spm,
        spm_word_addr: usize,
        counters: &mut ActivityCounters,
        timeline: &mut Timeline,
        not_before: u64,
    ) -> Result<Span> {
        if data.is_empty() {
            return Err(CoreError::InvalidDmaTransfer {
                detail: "transfer length is zero".into(),
            });
        }
        spm.write_words(spm_word_addr, data)?;
        counters.dma_transfers += 1;
        counters.dma_words += data.len() as u64;
        counters.spm_word_writes += data.len() as u64;
        Ok(timeline.schedule(Engine::Dma, not_before, self.transfer_cycles(data.len())))
    }

    /// Copies `len` words from the SPM starting at `spm_word_addr` back to
    /// system memory, returning the data and the transfer's [`Span`] as
    /// scheduled on `timeline`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDmaTransfer`] for an empty transfer or
    /// [`CoreError::SpmOutOfRange`] if the source range does not fit.
    pub fn copy_from_spm(
        &self,
        spm: &Spm,
        spm_word_addr: usize,
        len: usize,
        counters: &mut ActivityCounters,
        timeline: &mut Timeline,
        not_before: u64,
    ) -> Result<(Vec<i32>, Span)> {
        if len == 0 {
            return Err(CoreError::InvalidDmaTransfer {
                detail: "transfer length is zero".into(),
            });
        }
        let data = spm.read_words(spm_word_addr, len)?;
        counters.dma_transfers += 1;
        counters.dma_words += len as u64;
        counters.spm_word_reads += len as u64;
        Ok((
            data,
            timeline.schedule(Engine::Dma, not_before, self.transfer_cycles(len)),
        ))
    }
}

impl Default for Dma {
    fn default() -> Self {
        Self::new(DmaConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_data_and_counts_activity() {
        let dma = Dma::default();
        let mut spm = Spm::new(1024, 128);
        let mut counters = ActivityCounters::new();
        let mut timeline = Timeline::new();
        let data: Vec<i32> = (0..128).map(|i| i * 3 - 64).collect();
        let s1 = dma
            .copy_to_spm(&data, &mut spm, 128, &mut counters, &mut timeline, 0)
            .unwrap();
        let (back, s2) = dma
            .copy_from_spm(&spm, 128, 128, &mut counters, &mut timeline, 0)
            .unwrap();
        assert_eq!(back, data);
        assert_eq!(s1.duration(), s2.duration());
        // One shared engine: the transfers serialize on the timeline.
        assert_eq!(s2.start, s1.end);
        assert_eq!(timeline.busy_cycles(Engine::Dma), s1.duration() * 2);
        assert_eq!(counters.dma_transfers, 2);
        assert_eq!(counters.dma_words, 256);
        assert_eq!(counters.spm_word_writes, 128);
        assert_eq!(counters.spm_word_reads, 128);
    }

    #[test]
    fn cycle_cost_scales_with_length() {
        let dma = Dma::new(DmaConfig {
            setup_cycles: 10,
            cycles_per_word: 2,
        });
        let mut spm = Spm::new(1024, 128);
        let mut counters = ActivityCounters::new();
        let mut timeline = Timeline::new();
        let span = dma
            .copy_to_spm(&[0; 100], &mut spm, 0, &mut counters, &mut timeline, 0)
            .unwrap();
        assert_eq!(span.duration(), 10 + 200);
        assert_eq!(dma.transfer_cycles(100), 210);
    }

    #[test]
    fn transfers_respect_dependencies() {
        let dma = Dma::default();
        let mut spm = Spm::new(1024, 128);
        let mut counters = ActivityCounters::new();
        let mut timeline = Timeline::new();
        // A transfer that may not start before cycle 1000 (e.g. waiting for
        // the compute engine) leaves the DMA idle until then.
        let span = dma
            .copy_to_spm(&[1; 64], &mut spm, 0, &mut counters, &mut timeline, 1000)
            .unwrap();
        assert_eq!(span.start, 1000);
        assert_eq!(timeline.free_at(Engine::Dma), span.end);
    }

    #[test]
    fn invalid_transfers_rejected() {
        let dma = Dma::default();
        let mut spm = Spm::new(256, 128);
        let mut counters = ActivityCounters::new();
        let mut t = Timeline::new();
        assert!(dma
            .copy_to_spm(&[], &mut spm, 0, &mut counters, &mut t, 0)
            .is_err());
        assert!(dma
            .copy_to_spm(&[0; 300], &mut spm, 0, &mut counters, &mut t, 0)
            .is_err());
        assert!(dma
            .copy_from_spm(&spm, 0, 0, &mut counters, &mut t, 0)
            .is_err());
        assert!(dma
            .copy_from_spm(&spm, 200, 100, &mut counters, &mut t, 0)
            .is_err());
        // Failed transfers schedule nothing.
        assert_eq!(t.serial_cycles(), 0);
    }
}
