//! Architectural geometry of the VWR2A array.
//!
//! The paper's instance (Sec. 3) has two columns of four reconfigurable
//! cells, three 4096-bit very-wide registers per column, a 32 KiB shared
//! scratchpad, an 8-entry scalar register file and 64-word program memories.
//! All of these are captured in [`Geometry`] so the ablation experiments
//! (E7 in DESIGN.md) can sweep them; [`Geometry::paper`] returns the
//! published configuration.

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// Identifier of one of the per-column very-wide registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VwrId {
    /// VWR A — first shuffle-unit input.
    A,
    /// VWR B — second shuffle-unit input.
    B,
    /// VWR C — shuffle-unit output.
    C,
    /// Additional VWR (only present when `Geometry::num_vwrs > 3`, used by
    /// the ablation study).
    D,
}

impl VwrId {
    /// All identifiers in order.
    pub const ALL: [VwrId; 4] = [VwrId::A, VwrId::B, VwrId::C, VwrId::D];

    /// Index of this VWR within a column (A=0 … D=3).
    pub fn index(self) -> usize {
        match self {
            VwrId::A => 0,
            VwrId::B => 1,
            VwrId::C => 2,
            VwrId::D => 3,
        }
    }

    /// The identifier for a given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }
}

/// Geometry (sizes and counts) of a VWR2A instance.
///
/// # Example
///
/// ```
/// use vwr2a_core::geometry::Geometry;
///
/// let g = Geometry::paper();
/// assert_eq!(g.columns, 2);
/// assert_eq!(g.rcs_per_column, 4);
/// assert_eq!(g.vwr_words, 128);          // 4096 bits / 32-bit words
/// assert_eq!(g.spm_lines(), 64);         // 32 KiB / 4096-bit lines
/// assert_eq!(g.slice_words(), 32);       // each RC sees a quarter of a VWR
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of columns (the paper uses 2).
    pub columns: usize,
    /// Reconfigurable cells per column (the paper uses 4).
    pub rcs_per_column: usize,
    /// Number of very-wide registers per column (the paper uses 3).
    pub num_vwrs: usize,
    /// Words (32-bit) per very-wide register (the paper uses 128 = 4096 bits).
    pub vwr_words: usize,
    /// Scratchpad capacity in bytes (the paper uses 32 KiB).
    pub spm_bytes: usize,
    /// Scalar-register-file entries (the paper uses 8).
    pub srf_entries: usize,
    /// Program-memory words per slot (the paper uses 64).
    pub program_words: usize,
    /// Local register-file entries per RC (the paper uses 2).
    pub rc_registers: usize,
    /// Configuration-memory capacity in configuration words.
    pub config_words: usize,
}

impl Geometry {
    /// The configuration published in the paper.
    pub fn paper() -> Self {
        Self {
            columns: 2,
            rcs_per_column: 4,
            num_vwrs: 3,
            vwr_words: 128,
            spm_bytes: 32 * 1024,
            srf_entries: 8,
            program_words: 64,
            rc_registers: 2,
            config_words: 4096,
        }
    }

    /// Words visible to each RC (a `1/rcs_per_column` slice of a VWR).
    pub fn slice_words(&self) -> usize {
        self.vwr_words / self.rcs_per_column
    }

    /// SPM capacity in 32-bit words.
    pub fn spm_words(&self) -> usize {
        self.spm_bytes / 4
    }

    /// SPM capacity in VWR-wide lines.
    pub fn spm_lines(&self) -> usize {
        self.spm_words() / self.vwr_words
    }

    /// VWR width in bits.
    pub fn vwr_bits(&self) -> usize {
        self.vwr_words * 32
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidGeometry`] when a parameter is zero, the
    /// VWR width is not divisible by the RC count, the SPM is not a whole
    /// number of lines, or more than four VWRs are requested.
    pub fn validate(&self) -> Result<()> {
        let fail = |detail: String| Err(CoreError::InvalidGeometry { detail });
        if self.columns == 0 || self.rcs_per_column == 0 || self.vwr_words == 0 {
            return fail("columns, rcs_per_column and vwr_words must be non-zero".into());
        }
        if self.num_vwrs < 2 || self.num_vwrs > VwrId::ALL.len() {
            return fail(format!(
                "num_vwrs must be between 2 and {}, got {}",
                VwrId::ALL.len(),
                self.num_vwrs
            ));
        }
        if !self.vwr_words.is_multiple_of(self.rcs_per_column) {
            return fail(format!(
                "vwr_words ({}) must be divisible by rcs_per_column ({})",
                self.vwr_words, self.rcs_per_column
            ));
        }
        if !self.spm_bytes.is_multiple_of(self.vwr_words * 4) {
            return fail(format!(
                "spm_bytes ({}) must be a whole number of {}-byte lines",
                self.spm_bytes,
                self.vwr_words * 4
            ));
        }
        if self.srf_entries == 0 || self.program_words == 0 || self.rc_registers == 0 {
            return fail("srf_entries, program_words and rc_registers must be non-zero".into());
        }
        if !self.vwr_words.is_power_of_two() {
            return fail(format!(
                "vwr_words must be a power of two for the shuffle unit, got {}",
                self.vwr_words
            ));
        }
        Ok(())
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_is_valid_and_matches_section3() {
        let g = Geometry::paper();
        g.validate().unwrap();
        assert_eq!(g.vwr_bits(), 4096);
        assert_eq!(g.spm_words(), 8192);
        assert_eq!(g.spm_lines(), 64);
        assert_eq!(g.slice_words(), 32);
        assert_eq!(g.num_vwrs, 3);
        assert_eq!(g.srf_entries, 8);
        assert_eq!(g.program_words, 64);
        assert_eq!(g.rc_registers, 2);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(Geometry::default(), Geometry::paper());
    }

    #[test]
    fn invalid_geometries_are_rejected() {
        let mut g = Geometry::paper();
        g.vwr_words = 0;
        assert!(g.validate().is_err());

        let mut g = Geometry::paper();
        g.num_vwrs = 1;
        assert!(g.validate().is_err());

        let mut g = Geometry::paper();
        g.num_vwrs = 9;
        assert!(g.validate().is_err());

        let mut g = Geometry::paper();
        g.vwr_words = 100; // not a power of two, not divisible cleanly into the SPM
        assert!(g.validate().is_err());

        let mut g = Geometry::paper();
        g.spm_bytes = 1000;
        assert!(g.validate().is_err());

        let mut g = Geometry::paper();
        g.srf_entries = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn vwr_id_round_trip() {
        for (i, id) in VwrId::ALL.iter().enumerate() {
            assert_eq!(id.index(), i);
            assert_eq!(VwrId::from_index(i), *id);
        }
    }

    #[test]
    fn ablation_geometries_validate() {
        for vwrs in 2..=4usize {
            let mut g = Geometry::paper();
            g.num_vwrs = vwrs;
            g.validate().unwrap();
        }
        for words in [64usize, 128, 256] {
            let mut g = Geometry::paper();
            g.vwr_words = words;
            g.validate().unwrap();
        }
    }
}
