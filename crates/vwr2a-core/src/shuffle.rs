//! The shuffle unit.
//!
//! Because each RC only sees a quarter of a VWR, data reordering across the
//! full register would otherwise have to go through the RC connection
//! matrix, which is slow and energy-hungry.  The shuffle unit (Sec. 3.3.1)
//! instead applies one of a small set of hard-wired permutations to the
//! concatenation of VWR A and VWR B and writes the selected half of the
//! result to VWR C in a single cycle.

use crate::isa::lsu::ShuffleOp;

/// Applies `op` to the concatenation of `a` and `b`, returning the VWR-C
/// contents (same width as `a`).
///
/// `slice_words` is the per-RC slice width (32 in the paper's geometry); it
/// parameterises the circular-shift distance, which the paper specifies as
/// "32 words".
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths or `a` is empty — both are
/// structural impossibilities for VWRs created from a validated
/// [`crate::geometry::Geometry`].
///
/// # Example
///
/// ```
/// use vwr2a_core::shuffle::apply;
/// use vwr2a_core::isa::lsu::ShuffleOp;
///
/// let a: Vec<i32> = (0..8).collect();        // 0 1 2 3 4 5 6 7
/// let b: Vec<i32> = (8..16).collect();       // 8 9 10 11 12 13 14 15
/// // Interleaving takes words alternately from A and B.
/// let lower = apply(ShuffleOp::InterleaveLower, &a, &b, 2);
/// assert_eq!(lower, vec![0, 8, 1, 9, 2, 10, 3, 11]);
/// ```
pub fn apply(op: ShuffleOp, a: &[i32], b: &[i32], slice_words: usize) -> Vec<i32> {
    assert_eq!(a.len(), b.len(), "shuffle inputs must have equal width");
    assert!(!a.is_empty(), "shuffle inputs must be non-empty");
    let w = a.len();
    let concat = |i: usize| -> i32 {
        if i < w {
            a[i]
        } else {
            b[i - w]
        }
    };
    let full: Vec<i32> = match op {
        ShuffleOp::InterleaveLower | ShuffleOp::InterleaveUpper => (0..2 * w)
            .map(|i| if i % 2 == 0 { a[i / 2] } else { b[i / 2] })
            .collect(),
        ShuffleOp::EvenPrune => {
            let mut out: Vec<i32> = a.iter().step_by(2).copied().collect();
            out.extend(b.iter().step_by(2).copied());
            return out;
        }
        ShuffleOp::OddPrune => {
            let mut out: Vec<i32> = a.iter().skip(1).step_by(2).copied().collect();
            out.extend(b.iter().skip(1).step_by(2).copied());
            return out;
        }
        ShuffleOp::BitRevLower | ShuffleOp::BitRevUpper => {
            let bits = (2 * w).trailing_zeros();
            (0..2 * w)
                .map(|i| {
                    let mut r = 0usize;
                    for bit in 0..bits {
                        if i & (1 << bit) != 0 {
                            r |= 1 << (bits - 1 - bit);
                        }
                    }
                    concat(r)
                })
                .collect()
        }
        ShuffleOp::CircShiftLower | ShuffleOp::CircShiftUpper => {
            // The upper `slice_words` words move to the lowest positions and
            // everything else shifts up.
            (0..2 * w)
                .map(|i| concat((i + 2 * w - slice_words) % (2 * w)))
                .collect()
        }
    };
    match op {
        ShuffleOp::InterleaveLower | ShuffleOp::BitRevLower | ShuffleOp::CircShiftLower => {
            full[..w].to_vec()
        }
        ShuffleOp::InterleaveUpper | ShuffleOp::BitRevUpper | ShuffleOp::CircShiftUpper => {
            full[w..].to_vec()
        }
        ShuffleOp::EvenPrune | ShuffleOp::OddPrune => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a8() -> Vec<i32> {
        (0..8).collect()
    }
    fn b8() -> Vec<i32> {
        (8..16).collect()
    }

    #[test]
    fn interleave_upper_and_lower_partition_the_result() {
        let lower = apply(ShuffleOp::InterleaveLower, &a8(), &b8(), 2);
        let upper = apply(ShuffleOp::InterleaveUpper, &a8(), &b8(), 2);
        assert_eq!(lower, vec![0, 8, 1, 9, 2, 10, 3, 11]);
        assert_eq!(upper, vec![4, 12, 5, 13, 6, 14, 7, 15]);
    }

    #[test]
    fn prune_keeps_even_or_odd_indices() {
        assert_eq!(
            apply(ShuffleOp::EvenPrune, &a8(), &b8(), 2),
            vec![0, 2, 4, 6, 8, 10, 12, 14]
        );
        assert_eq!(
            apply(ShuffleOp::OddPrune, &a8(), &b8(), 2),
            vec![1, 3, 5, 7, 9, 11, 13, 15]
        );
    }

    #[test]
    fn interleave_then_prune_is_identity() {
        // Pruning the even indices of an interleaved pair recovers A.
        let lower = apply(ShuffleOp::InterleaveLower, &a8(), &b8(), 2);
        let upper = apply(ShuffleOp::InterleaveUpper, &a8(), &b8(), 2);
        let evens = apply(ShuffleOp::EvenPrune, &lower, &upper, 2);
        let odds = apply(ShuffleOp::OddPrune, &lower, &upper, 2);
        assert_eq!(evens, a8());
        assert_eq!(odds, b8());
    }

    #[test]
    fn bit_reversal_is_self_inverse() {
        let lower = apply(ShuffleOp::BitRevLower, &a8(), &b8(), 2);
        let upper = apply(ShuffleOp::BitRevUpper, &a8(), &b8(), 2);
        let again_lower = apply(ShuffleOp::BitRevLower, &lower, &upper, 2);
        let again_upper = apply(ShuffleOp::BitRevUpper, &lower, &upper, 2);
        assert_eq!(again_lower, a8());
        assert_eq!(again_upper, b8());
    }

    #[test]
    fn circular_shift_moves_upper_slice_to_front() {
        // slice_words = 2: the last 2 words of B become the first 2 outputs.
        let lower = apply(ShuffleOp::CircShiftLower, &a8(), &b8(), 2);
        assert_eq!(lower, vec![14, 15, 0, 1, 2, 3, 4, 5]);
        let upper = apply(ShuffleOp::CircShiftUpper, &a8(), &b8(), 2);
        assert_eq!(upper, vec![6, 7, 8, 9, 10, 11, 12, 13]);
    }

    #[test]
    fn paper_width_interleave_matches_fft_stage_reordering() {
        // With 128-word VWRs, interleaving A and B produces the data layout
        // for the next radix-2 stage (Sec. 3.4).
        let a: Vec<i32> = (0..128).collect();
        let b: Vec<i32> = (128..256).collect();
        let lower = apply(ShuffleOp::InterleaveLower, &a, &b, 32);
        assert_eq!(lower[0], 0);
        assert_eq!(lower[1], 128);
        assert_eq!(lower[2], 1);
        assert_eq!(lower[127], 128 + 63);
    }

    #[test]
    #[should_panic(expected = "equal width")]
    fn mismatched_inputs_panic() {
        let _ = apply(ShuffleOp::EvenPrune, &[1, 2], &[1, 2, 3], 1);
    }
}
