//! Label-aware builder for column programs.
//!
//! Kernel generators (the `vwr2a-kernels` crate) construct programs row by
//! row.  Loops need backward branch targets, which are awkward to compute by
//! hand while rows are still being emitted, so the builder provides
//! [`Label`]s: create one with [`ColumnProgramBuilder::new_label`], bind it
//! to "the next row" with [`ColumnProgramBuilder::bind_label`], and emit
//! branches through [`ColumnProgramBuilder::push_branch`] /
//! [`ColumnProgramBuilder::push_jump`]; targets are resolved at
//! [`ColumnProgramBuilder::build`] time.

use crate::error::{CoreError, Result};
use crate::isa::lcu::{LcuCond, LcuInstr, LcuSrc};
use crate::program::{ColumnProgram, Row};

/// A forward- or backward-referencable position in a column program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builder of a [`ColumnProgram`] with label resolution.
///
/// # Example
///
/// ```
/// use vwr2a_core::builder::ColumnProgramBuilder;
/// use vwr2a_core::program::Row;
/// use vwr2a_core::isa::{LcuInstr, LcuCond, LcuSrc, RcInstr, RcOpcode, RcSrc, RcDst};
///
/// # fn main() -> Result<(), vwr2a_core::error::CoreError> {
/// let mut b = ColumnProgramBuilder::new(4);
/// // i = 0
/// b.push(Row::new(4).lcu(LcuInstr::Li { r: 0, value: 0 }));
/// let top = b.new_label();
/// b.bind_label(top);
/// // body: i += 1
/// b.push(Row::new(4).lcu(LcuInstr::Add { r: 0, src: LcuSrc::Imm(1) }));
/// // if i < 8 goto top
/// b.push_branch(Row::new(4), LcuCond::Lt, 0, LcuSrc::Imm(8), top);
/// b.push(Row::new(4).lcu(LcuInstr::Exit));
/// let program = b.build()?;
/// assert_eq!(program.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ColumnProgramBuilder {
    rcs_per_column: usize,
    rows: Vec<Row>,
    labels: Vec<Option<usize>>,
    branch_fixups: Vec<(usize, Label)>,
}

impl ColumnProgramBuilder {
    /// Creates a builder for a column with `rcs_per_column` RCs.
    pub fn new(rcs_per_column: usize) -> Self {
        Self {
            rcs_per_column,
            rows: Vec::new(),
            labels: Vec::new(),
            branch_fixups: Vec::new(),
        }
    }

    /// Creates a new, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next row that will be pushed.
    pub fn bind_label(&mut self, label: Label) {
        self.labels[label.0] = Some(self.rows.len());
    }

    /// Appends a row, returning its index.
    pub fn push(&mut self, row: Row) -> usize {
        debug_assert_eq!(row.rcs.len(), self.rcs_per_column);
        self.rows.push(row);
        self.rows.len() - 1
    }

    /// Appends `row` with its LCU slot replaced by a conditional branch to
    /// `label` (resolved at build time).
    pub fn push_branch(
        &mut self,
        row: Row,
        cond: LcuCond,
        a: u8,
        b: LcuSrc,
        label: Label,
    ) -> usize {
        let idx = self.push(row.lcu(LcuInstr::Branch {
            cond,
            a,
            b,
            target: 0,
        }));
        self.branch_fixups.push((idx, label));
        idx
    }

    /// Appends `row` with its LCU slot replaced by an unconditional jump to
    /// `label` (resolved at build time).
    pub fn push_jump(&mut self, row: Row, label: Label) -> usize {
        let idx = self.push(row.lcu(LcuInstr::Jump(0)));
        self.branch_fixups.push((idx, label));
        idx
    }

    /// Convenience: appends an all-NOP row whose LCU exits the kernel.
    pub fn push_exit(&mut self) -> usize {
        self.push(Row::new(self.rcs_per_column).lcu(LcuInstr::Exit))
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// A fresh all-NOP row sized for this column (convenience mirror of
    /// [`Row::new`]).
    pub fn row(&self) -> Row {
        Row::new(self.rcs_per_column)
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UndefinedLabel`] if a referenced label was never
    /// bound, [`CoreError::BranchTargetOutOfRange`] if a label was bound past
    /// the last row, [`CoreError::MalformedProgram`] if a branch fixup no
    /// longer points at a branch or jump instruction, or the
    /// [`ColumnProgram::new`] errors for an empty program.
    pub fn build(mut self) -> Result<ColumnProgram> {
        for (row_idx, label) in &self.branch_fixups {
            let target =
                self.labels[label.0].ok_or(CoreError::UndefinedLabel { label: label.0 })?;
            if target >= self.rows.len() {
                return Err(CoreError::BranchTargetOutOfRange {
                    target,
                    len: self.rows.len(),
                });
            }
            match &mut self.rows[*row_idx].lcu {
                LcuInstr::Branch { target: t, .. } => *t = target as u16,
                LcuInstr::Jump(t) => *t = target as u16,
                other => {
                    return Err(CoreError::MalformedProgram {
                        detail: format!(
                        "branch fixup for row {row_idx} points at non-branch instruction {other:?}"
                    ),
                    })
                }
            }
        }
        ColumnProgram::new(self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::lcu::LcuCond;

    #[test]
    fn backward_branch_resolves() {
        let mut b = ColumnProgramBuilder::new(4);
        let top = b.new_label();
        b.bind_label(top);
        b.push(b.row());
        b.push_branch(b.row(), LcuCond::Lt, 0, LcuSrc::Imm(4), top);
        b.push_exit();
        let p = b.build().unwrap();
        match p.rows()[1].lcu {
            LcuInstr::Branch { target, .. } => assert_eq!(target, 0),
            ref other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn forward_jump_resolves() {
        let mut b = ColumnProgramBuilder::new(4);
        let end = b.new_label();
        b.push_jump(b.row(), end);
        b.push(b.row());
        b.bind_label(end);
        b.push_exit();
        let p = b.build().unwrap();
        match p.rows()[0].lcu {
            LcuInstr::Jump(target) => assert_eq!(target, 2),
            ref other => panic!("expected jump, got {other:?}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ColumnProgramBuilder::new(4);
        let dangling = b.new_label();
        b.push_jump(b.row(), dangling);
        b.push_exit();
        assert!(matches!(b.build(), Err(CoreError::UndefinedLabel { .. })));
    }

    #[test]
    fn label_bound_past_end_is_an_error() {
        let mut b = ColumnProgramBuilder::new(4);
        let end = b.new_label();
        b.push_jump(b.row(), end);
        b.bind_label(end); // bound to rows.len() == 1, but nothing pushed after
        assert!(matches!(
            b.build(),
            Err(CoreError::BranchTargetOutOfRange { .. })
        ));
    }

    #[test]
    fn len_and_empty() {
        let mut b = ColumnProgramBuilder::new(4);
        assert!(b.is_empty());
        b.push_exit();
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }
}
