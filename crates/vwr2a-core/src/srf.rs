//! Scalar register file (SRF).
//!
//! The SRF holds 8 × 32-bit kernel-dependent scalars — SPM addresses,
//! masking values for VWR index computation, loop parameters (Sec. 3.2).
//! It is single-ported: only one of the RCs, LSU, MXCU and LCU may access it
//! in a given cycle; the execution engine enforces this and reports a
//! structural hazard otherwise.

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// The per-column scalar register file.
///
/// # Example
///
/// ```
/// use vwr2a_core::srf::Srf;
///
/// # fn main() -> Result<(), vwr2a_core::error::CoreError> {
/// let mut srf = Srf::new(8);
/// srf.write(3, 1024)?;
/// assert_eq!(srf.read(3)?, 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Srf {
    regs: Vec<i32>,
}

impl Srf {
    /// Creates an SRF with `entries` registers, initialised to zero.
    pub fn new(entries: usize) -> Self {
        Self {
            regs: vec![0; entries],
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// `true` if the register file has zero entries.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Reads a register.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SrfIndexOutOfRange`] if `index` is out of range.
    pub fn read(&self, index: usize) -> Result<i32> {
        self.regs
            .get(index)
            .copied()
            .ok_or(CoreError::SrfIndexOutOfRange {
                index,
                capacity: self.regs.len(),
            })
    }

    /// Writes a register.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SrfIndexOutOfRange`] if `index` is out of range.
    pub fn write(&mut self, index: usize, value: i32) -> Result<()> {
        let capacity = self.regs.len();
        match self.regs.get_mut(index) {
            Some(r) => {
                *r = value;
                Ok(())
            }
            None => Err(CoreError::SrfIndexOutOfRange { index, capacity }),
        }
    }

    /// All register values.
    pub fn regs(&self) -> &[i32] {
        &self.regs
    }

    /// Clears every register to zero.
    pub fn clear(&mut self) {
        self.regs.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut srf = Srf::new(8);
        srf.write(0, -5).unwrap();
        srf.write(7, 99).unwrap();
        assert_eq!(srf.read(0).unwrap(), -5);
        assert_eq!(srf.read(7).unwrap(), 99);
        assert_eq!(srf.read(3).unwrap(), 0);
        assert_eq!(srf.len(), 8);
        assert!(!srf.is_empty());
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut srf = Srf::new(8);
        assert!(matches!(
            srf.read(8),
            Err(CoreError::SrfIndexOutOfRange {
                index: 8,
                capacity: 8
            })
        ));
        assert!(srf.write(100, 0).is_err());
    }

    #[test]
    fn clear_resets_all() {
        let mut srf = Srf::new(4);
        for i in 0..4 {
            srf.write(i, i as i32 + 1).unwrap();
        }
        srf.clear();
        assert_eq!(srf.regs(), &[0, 0, 0, 0]);
    }
}
