//! The top-level VWR2A accelerator.
//!
//! [`Vwr2a`] ties together the shared SPM, the two columns, the
//! configuration memory, the DMA and the synchronizer (Fig. 1 of the
//! paper).  The host interacts with it the way the Cortex-M4 interacts with
//! the real block over the AMBA-AHB slave port: seed the SPM through the
//! DMA, write kernel parameters into the SRFs, launch a kernel, and read
//! results back through the DMA when the completion interrupt fires (here:
//! when [`Vwr2a::run_kernel`] returns).

use crate::column::Column;
use crate::config_mem::{ConfigMemory, KernelId};
use crate::dma::{Dma, DmaConfig};
use crate::error::{CoreError, Result};
use crate::geometry::Geometry;
use crate::program::KernelProgram;
use crate::replay::{ReplayScratch, ReplayTrace, TraceRecorder};
use crate::spm::Spm;
use crate::stats::RunStats;
use crate::timeline::{Engine, LaunchSpans, Span, Timeline};
use crate::trace::ActivityCounters;
use std::sync::Arc;

/// Default cycle budget per kernel launch before the simulator declares the
/// kernel hung.
pub const DEFAULT_CYCLE_LIMIT: u64 = 50_000_000;

/// The VWR2A accelerator instance.
///
/// # Example
///
/// ```
/// use vwr2a_core::Vwr2a;
/// use vwr2a_core::program::{KernelProgram, ColumnProgram, Row};
/// use vwr2a_core::isa::LcuInstr;
///
/// # fn main() -> Result<(), vwr2a_core::error::CoreError> {
/// let mut accel = Vwr2a::new();
/// // Move data in over the DMA, run a (trivial) kernel, read data back.
/// accel.dma_to_spm(&[1, 2, 3, 4], 0)?;
/// let kernel = KernelProgram::new(
///     "noop",
///     vec![ColumnProgram::new(vec![Row::new(4).lcu(LcuInstr::Exit)])?],
/// )?;
/// let stats = accel.run_program(&kernel)?;
/// assert!(stats.cycles > 0);
/// let (data, _cycles) = accel.dma_from_spm(0, 4)?;
/// assert_eq!(data, vec![1, 2, 3, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Vwr2a {
    geometry: Geometry,
    spm: Spm,
    columns: Vec<Column>,
    config_mem: ConfigMemory,
    dma: Dma,
    counters: ActivityCounters,
    cycle_limit: u64,
    /// Replay cache on/off (see [`Vwr2a::set_replay_enabled`]).
    replay_enabled: bool,
    /// Lifetime count of launches served from the replay cache.
    replays: u64,
    /// Reused per-launch `running` flags (one per column used).
    running_scratch: Vec<bool>,
    /// Reused replay-executor pending-write buffers.
    replay_scratch: ReplayScratch,
}

impl Vwr2a {
    /// Creates an accelerator with the paper's geometry and default DMA
    /// timing.
    pub fn new() -> Self {
        Self::with_geometry(Geometry::paper()).expect("paper geometry is valid")
    }

    /// Creates an accelerator with a custom geometry (used by the ablation
    /// experiments).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidGeometry`] if the geometry is
    /// inconsistent.
    pub fn with_geometry(geometry: Geometry) -> Result<Self> {
        Self::with_geometry_and_dma(geometry, DmaConfig::default())
    }

    /// Creates an accelerator with custom geometry and DMA timing.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidGeometry`] if the geometry is
    /// inconsistent.
    pub fn with_geometry_and_dma(geometry: Geometry, dma: DmaConfig) -> Result<Self> {
        geometry.validate()?;
        Ok(Self {
            geometry,
            spm: Spm::new(geometry.spm_words(), geometry.vwr_words),
            columns: (0..geometry.columns)
                .map(|_| Column::new(geometry))
                .collect(),
            config_mem: ConfigMemory::new(geometry.config_words),
            dma: Dma::new(dma),
            counters: ActivityCounters::new(),
            cycle_limit: DEFAULT_CYCLE_LIMIT,
            replay_enabled: true,
            replays: 0,
            running_scratch: Vec::new(),
            replay_scratch: ReplayScratch::default(),
        })
    }

    /// The array geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The shared scratchpad memory.
    pub fn spm(&self) -> &Spm {
        &self.spm
    }

    /// Mutable access to the SPM (host/test convenience; real transfers go
    /// through [`Vwr2a::dma_to_spm`]).
    pub fn spm_mut(&mut self) -> &mut Spm {
        &mut self.spm
    }

    /// A column of the array.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidColumn`] if `index` is out of range.
    pub fn column(&self, index: usize) -> Result<&Column> {
        self.columns.get(index).ok_or(CoreError::InvalidColumn {
            column: index,
            count: self.columns.len(),
        })
    }

    /// Mutable access to a column (seeding VWR/SRF state in tests).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidColumn`] if `index` is out of range.
    pub fn column_mut(&mut self, index: usize) -> Result<&mut Column> {
        let count = self.columns.len();
        self.columns.get_mut(index).ok_or(CoreError::InvalidColumn {
            column: index,
            count,
        })
    }

    /// Accumulated activity since construction or the last
    /// [`Vwr2a::reset_counters`].
    pub fn counters(&self) -> ActivityCounters {
        self.counters
    }

    /// Resets the accumulated activity counters.
    pub fn reset_counters(&mut self) {
        self.counters = ActivityCounters::new();
    }

    /// Sets the per-launch cycle budget after which
    /// [`CoreError::CycleLimitExceeded`] is reported.
    pub fn set_cycle_limit(&mut self, limit: u64) {
        self.cycle_limit = limit;
    }

    /// Turns the warm-window replay cache on or off (on by default).
    ///
    /// With replay enabled, launches of a stored kernel record a
    /// [`crate::replay::ReplayTrace`] and later launches whose SRF guard
    /// snapshot still matches are served as a straight-line replay instead
    /// of cycle-by-cycle interpretation — bit-identical outputs, cycles
    /// and counters, at a fraction of the host cost.  Disabling it forces
    /// every launch through the interpreter; conformance tests flip this
    /// knob to compare the two paths.
    pub fn set_replay_enabled(&mut self, enabled: bool) {
        self.replay_enabled = enabled;
    }

    /// `true` while the warm-window replay cache is active.
    pub fn replay_enabled(&self) -> bool {
        self.replay_enabled
    }

    /// Number of launches served from the replay cache since construction.
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Writes one kernel parameter into a column's SRF, as the host CPU does
    /// over the slave port before launching a kernel.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidColumn`] or
    /// [`CoreError::SrfIndexOutOfRange`].
    pub fn write_srf(&mut self, column: usize, index: usize, value: i32) -> Result<()> {
        self.counters.srf_writes += 1;
        self.column_mut(column)?.srf_mut().write(index, value)
    }

    /// Reads back one SRF entry (e.g. a scalar result).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidColumn`] or
    /// [`CoreError::SrfIndexOutOfRange`].
    pub fn read_srf(&self, column: usize, index: usize) -> Result<i32> {
        self.column(column)?.srf().read(index)
    }

    /// Transfers data from system memory into the SPM through the DMA,
    /// returning the cycles the transfer took.
    ///
    /// Convenience wrapper over [`Vwr2a::dma_to_spm_at`] for callers that
    /// execute strictly serially and only want the duration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDmaTransfer`] or
    /// [`CoreError::SpmOutOfRange`].
    pub fn dma_to_spm(&mut self, data: &[i32], spm_word_addr: usize) -> Result<u64> {
        let mut scratch = Timeline::new();
        self.dma_to_spm_at(data, spm_word_addr, &mut scratch, 0)
            .map(|span| span.duration())
    }

    /// Transfers data from system memory into the SPM through the DMA,
    /// reporting the transfer's cost as a [`Span`] on `timeline`
    /// ([`Engine::Dma`], no earlier than `not_before`).
    ///
    /// This is the staging half of a pipelined schedule: a runtime staging
    /// window *i+1* passes the timeline on which window *i*'s compute span
    /// is already scheduled, and the two overlap.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDmaTransfer`] or
    /// [`CoreError::SpmOutOfRange`].
    pub fn dma_to_spm_at(
        &mut self,
        data: &[i32],
        spm_word_addr: usize,
        timeline: &mut Timeline,
        not_before: u64,
    ) -> Result<Span> {
        self.dma.copy_to_spm(
            data,
            &mut self.spm,
            spm_word_addr,
            &mut self.counters,
            timeline,
            not_before,
        )
    }

    /// Transfers data from the SPM back to system memory through the DMA.
    ///
    /// Convenience wrapper over [`Vwr2a::dma_from_spm_at`] for callers that
    /// execute strictly serially and only want the duration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDmaTransfer`] or
    /// [`CoreError::SpmOutOfRange`].
    pub fn dma_from_spm(&mut self, spm_word_addr: usize, len: usize) -> Result<(Vec<i32>, u64)> {
        let mut scratch = Timeline::new();
        self.dma_from_spm_at(spm_word_addr, len, &mut scratch, 0)
            .map(|(data, span)| (data, span.duration()))
    }

    /// Transfers data from the SPM back to system memory through the DMA,
    /// reporting the transfer's cost as a [`Span`] on `timeline` (the drain
    /// half of a pipelined schedule).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDmaTransfer`] or
    /// [`CoreError::SpmOutOfRange`].
    pub fn dma_from_spm_at(
        &mut self,
        spm_word_addr: usize,
        len: usize,
        timeline: &mut Timeline,
        not_before: u64,
    ) -> Result<(Vec<i32>, Span)> {
        self.dma.copy_from_spm(
            &self.spm,
            spm_word_addr,
            len,
            &mut self.counters,
            timeline,
            not_before,
        )
    }

    /// The configuration memory (read-only view, e.g. for a runtime that
    /// wants to report how many kernels are resident and how full it is).
    pub fn config_mem(&self) -> &ConfigMemory {
        &self.config_mem
    }

    /// Validates and stores a kernel in the configuration memory.
    ///
    /// # Errors
    ///
    /// Returns validation errors or [`CoreError::ConfigMemoryFull`].
    pub fn load_kernel(&mut self, kernel: &KernelProgram) -> Result<KernelId> {
        kernel.validate(&self.geometry)?;
        self.config_mem.store(kernel)
    }

    /// Removes a kernel previously stored with [`Vwr2a::load_kernel`],
    /// reclaiming its configuration words.  Returns the words freed.
    ///
    /// The id (and any copy of it) is permanently invalidated: even if the
    /// slot is later reused by another kernel, the stale handle fails with
    /// [`CoreError::UnknownKernel`].  Runtimes use this to evict cold
    /// kernels under configuration-memory pressure; the evicted kernel's
    /// next launch pays the configuration-word streaming again.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownKernel`] for a stale or invalid id.
    pub fn unload_kernel(&mut self, id: KernelId) -> Result<usize> {
        self.config_mem.remove(id)
    }

    /// Runs a kernel previously stored with [`Vwr2a::load_kernel`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownKernel`], structural-hazard errors from
    /// the columns, or [`CoreError::CycleLimitExceeded`].
    pub fn run_kernel(&mut self, id: KernelId) -> Result<RunStats> {
        let mut scratch = Timeline::new();
        self.run_kernel_at(id, &mut scratch, 0)
            .map(|(stats, _)| stats)
    }

    /// Runs a stored kernel, reporting the launch's cost as [`LaunchSpans`]
    /// on `timeline`: the configuration-word streaming on
    /// [`Engine::ConfigLoad`], the execution behind it on
    /// [`Engine::Compute`], neither earlier than `not_before`.
    ///
    /// # Errors
    ///
    /// As [`Vwr2a::run_kernel`].
    pub fn run_kernel_at(
        &mut self,
        id: KernelId,
        timeline: &mut Timeline,
        not_before: u64,
    ) -> Result<(RunStats, LaunchSpans)> {
        let config_words = self.config_mem.kernel_words(id)?;
        self.launch_at(id, config_words, timeline, not_before)
    }

    /// Streams a stored kernel's configuration words into the per-slot
    /// program memories *without* launching it, returning the streaming
    /// cycles — the cold half of a launch, paid ahead of time.
    ///
    /// Convenience wrapper over [`Vwr2a::prefetch_kernel_at`] for callers
    /// that execute strictly serially and only want the duration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownKernel`] for a stale or invalid id.
    pub fn prefetch_kernel(&mut self, id: KernelId) -> Result<u64> {
        let mut scratch = Timeline::new();
        self.prefetch_kernel_at(id, &mut scratch, 0)
            .map(|span| span.duration())
    }

    /// Streams a stored kernel's configuration words into the per-slot
    /// program memories without launching it, reporting the streaming as a
    /// [`Span`] on `timeline` ([`Engine::ConfigLoad`], no earlier than
    /// `not_before`).
    ///
    /// This is a *prefetch*: a runtime that knows which kernel launches
    /// next can hide the configuration load behind other engines' work —
    /// the span rides the configuration streamer, which is idle while the
    /// array computes and the DMA stages — and then relaunch the kernel
    /// with [`Vwr2a::run_kernel_warm_at`], paying execution cycles only.
    /// The activity counters charge the streamed words exactly as a cold
    /// launch would, so `prefetch + warm launch` costs the same total work
    /// as one cold launch; only the schedule differs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownKernel`] for a stale or invalid id.
    pub fn prefetch_kernel_at(
        &mut self,
        id: KernelId,
        timeline: &mut Timeline,
        not_before: u64,
    ) -> Result<Span> {
        let config_words = self.config_mem.kernel_words(id)? as u64;
        self.counters.config_words_loaded += config_words;
        self.counters.cycles += config_words;
        Ok(timeline.schedule(Engine::ConfigLoad, not_before, config_words))
    }

    /// Re-runs a kernel whose configuration is already resident in the
    /// per-slot program memories (a *warm* launch): only the execution
    /// cycles are charged, not the configuration-word streaming.
    ///
    /// Kernels that run the same program repeatedly with different SRF
    /// parameters — e.g. the per-stage FFT program — use this to avoid
    /// paying the configuration load on every launch, exactly as the real
    /// hardware would.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownKernel`], structural-hazard errors from
    /// the columns, or [`CoreError::CycleLimitExceeded`].
    pub fn run_kernel_warm(&mut self, id: KernelId) -> Result<RunStats> {
        let mut scratch = Timeline::new();
        self.run_kernel_warm_at(id, &mut scratch, 0)
            .map(|(stats, _)| stats)
    }

    /// Warm-relaunches a stored kernel, reporting the execution's cost on
    /// `timeline` (see [`Vwr2a::run_kernel_at`]; the config span is empty).
    ///
    /// # Errors
    ///
    /// As [`Vwr2a::run_kernel_warm`].
    pub fn run_kernel_warm_at(
        &mut self,
        id: KernelId,
        timeline: &mut Timeline,
        not_before: u64,
    ) -> Result<(RunStats, LaunchSpans)> {
        self.config_mem.kernel_words(id)?;
        self.launch_at(id, 0, timeline, not_before)
    }

    /// Common body of the stored-kernel launch paths: serve the launch
    /// from the replay cache when a recorded trace's guards match the live
    /// SRF state, otherwise interpret through the per-slot decode cache —
    /// recording a fresh trace as a side effect so the *next* matching
    /// launch replays.
    fn launch_at(
        &mut self,
        id: KernelId,
        config_words: usize,
        timeline: &mut Timeline,
        not_before: u64,
    ) -> Result<(RunStats, LaunchSpans)> {
        if self.replay_enabled {
            if let Some(trace) = self.find_trace(id, config_words) {
                return self.replay_at(&trace, config_words, timeline, not_before);
            }
        }
        let kernel = self.config_mem.fetch_decoded(id)?;
        let record = self.replay_enabled;
        let (stats, spans, trace) =
            self.execute_recorded(&kernel, config_words, timeline, not_before, record)?;
        if let Some(trace) = trace {
            self.config_mem.push_trace(id, Arc::new(trace));
        }
        Ok((stats, spans))
    }

    /// Finds a cached trace whose SRF guards all match the live SRF state
    /// and whose recorded length fits the cycle budget (newest first).  A
    /// launch that would exceed the cycle limit falls back to the
    /// interpreter so it reports [`CoreError::CycleLimitExceeded`] exactly
    /// as an uncached launch would.
    fn find_trace(&self, id: KernelId, config_words: usize) -> Option<Arc<ReplayTrace>> {
        'candidate: for trace in self.config_mem.traces(id).iter().rev() {
            if config_words as u64 + trace.exec_cycles > self.cycle_limit {
                continue;
            }
            for guard in &trace.guards {
                match self.columns[guard.column].srf().read(guard.index) {
                    Ok(value) if value == guard.value => {}
                    _ => continue 'candidate,
                }
            }
            return Some(Arc::clone(trace));
        }
        None
    }

    /// Replays a recorded trace: the schedule runs as a straight-line pass
    /// over the live SPM/VWR/SRF data path, and the recorded cycles and
    /// counters are credited verbatim (plus the configuration streaming of
    /// this launch, which is not part of the trace).
    fn replay_at(
        &mut self,
        trace: &ReplayTrace,
        config_words: usize,
        timeline: &mut Timeline,
        not_before: u64,
    ) -> Result<(RunStats, LaunchSpans)> {
        let before = self.counters;
        self.counters.config_words_loaded += config_words as u64;
        for column in self.columns.iter_mut().take(trace.columns_used) {
            column.reset_execution();
        }
        let mut start = 0usize;
        for segment in &trace.segments {
            let ops = &trace.ops[start..start + segment.len];
            start += segment.len;
            self.columns[segment.column].replay_segment(
                ops,
                &mut self.spm,
                &mut self.replay_scratch,
            )?;
        }
        for (column, finish) in self
            .columns
            .iter_mut()
            .zip(&trace.finish)
            .take(trace.columns_used)
        {
            column.apply_replay_finish(finish);
        }
        let cycles = config_words as u64 + trace.exec_cycles;
        self.counters += trace.counters;
        self.counters.cycles += config_words as u64;
        self.replays += 1;

        let config = timeline.schedule(Engine::ConfigLoad, not_before, config_words as u64);
        let compute = timeline.schedule(Engine::Compute, config.end, trace.exec_cycles);
        Ok((
            RunStats {
                kernel_name: trace.name.clone(),
                cycles,
                columns_used: trace.columns_used,
                counters: self.counters - before,
            },
            LaunchSpans { config, compute },
        ))
    }

    /// Validates and runs a kernel directly, without persisting it in the
    /// configuration memory (convenience for one-shot programs).
    ///
    /// # Errors
    ///
    /// Returns validation errors, structural-hazard errors, or
    /// [`CoreError::CycleLimitExceeded`].
    pub fn run_program(&mut self, kernel: &KernelProgram) -> Result<RunStats> {
        kernel.validate(&self.geometry)?;
        let mut scratch = Timeline::new();
        self.execute_at(kernel, kernel.config_words(), &mut scratch, 0)
            .map(|(stats, _)| stats)
    }

    /// Executes `kernel`, reporting the launch through `timeline`: the
    /// configuration-word streaming (one word per cycle) occupies
    /// [`Engine::ConfigLoad`], the array execution [`Engine::Compute`]
    /// starting no earlier than the configuration span's end.
    /// `RunStats::cycles` remains the serial total of both spans, so
    /// callers that do not overlap see the pre-timeline cycle counts
    /// unchanged.
    fn execute_at(
        &mut self,
        kernel: &KernelProgram,
        config_words: usize,
        timeline: &mut Timeline,
        not_before: u64,
    ) -> Result<(RunStats, LaunchSpans)> {
        self.execute_recorded(kernel, config_words, timeline, not_before, false)
            .map(|(stats, spans, _)| (stats, spans))
    }

    /// [`Vwr2a::execute_at`] with optional trace recording: when `record`
    /// is set, the interpreter drives a [`TraceRecorder`] and the resolved
    /// schedule is returned alongside the stats (or `None` if the
    /// execution proved non-replayable — see [`crate::replay`]).
    fn execute_recorded(
        &mut self,
        kernel: &KernelProgram,
        config_words: usize,
        timeline: &mut Timeline,
        not_before: u64,
        record: bool,
    ) -> Result<(RunStats, LaunchSpans, Option<ReplayTrace>)> {
        let before = self.counters;
        let columns_used = kernel.columns.len();

        // Kernel launch: the configuration words stream from the
        // configuration memory into the per-slot program memories, one word
        // per cycle.
        self.counters.config_words_loaded += config_words as u64;
        let mut cycles = config_words as u64;

        for column in self.columns.iter_mut().take(columns_used) {
            column.reset_execution();
        }

        let mut recorder = if record {
            Some(TraceRecorder::new(columns_used))
        } else {
            None
        };

        let mut running = std::mem::take(&mut self.running_scratch);
        running.clear();
        running.resize(columns_used, true);
        while running.iter().any(|&r| r) {
            cycles += 1;
            if cycles > self.cycle_limit {
                self.running_scratch = running;
                return Err(CoreError::CycleLimitExceeded {
                    limit: self.cycle_limit,
                });
            }
            for (idx, program) in kernel.columns.iter().enumerate() {
                if running[idx] {
                    if let Some(rec) = recorder.as_mut() {
                        rec.begin_segment(idx);
                    }
                    let stepped = self.columns[idx].step_traced(
                        program,
                        &mut self.spm,
                        &mut self.counters,
                        cycles,
                        recorder.as_mut(),
                    );
                    match stepped {
                        Ok(r) => running[idx] = r,
                        Err(e) => {
                            self.running_scratch = running;
                            return Err(e);
                        }
                    }
                }
            }
        }
        self.running_scratch = running;
        self.counters.cycles += cycles;

        let exec_cycles = cycles - config_words as u64;
        let trace = recorder.and_then(|recorder| {
            // The trace stores the execution-only counter delta so the same
            // recording serves both cold and warm launches; the replay path
            // re-adds whatever configuration streaming its launch charges.
            let mut exec_counters = self.counters - before;
            exec_counters.cycles -= config_words as u64;
            exec_counters.config_words_loaded -= config_words as u64;
            let finish = self
                .columns
                .iter()
                .take(columns_used)
                .map(Column::replay_finish)
                .collect();
            recorder.finish(kernel.name.clone(), exec_cycles, exec_counters, finish)
        });

        let config = timeline.schedule(Engine::ConfigLoad, not_before, config_words as u64);
        let compute = timeline.schedule(Engine::Compute, config.end, exec_cycles);
        Ok((
            RunStats {
                kernel_name: kernel.name.clone(),
                cycles,
                columns_used,
                counters: self.counters - before,
            },
            LaunchSpans { config, compute },
            trace,
        ))
    }
}

impl Default for Vwr2a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ColumnProgramBuilder;
    use crate::geometry::VwrId;
    use crate::isa::lcu::{LcuCond, LcuInstr, LcuSrc};
    use crate::isa::lsu::{LsuAddr, LsuInstr};
    use crate::isa::mxcu::MxcuInstr;
    use crate::isa::rc::{RcDst, RcInstr, RcOpcode, RcSrc};
    use crate::program::{ColumnProgram, Row};

    fn vector_scale_kernel(scale_srf: u8) -> KernelProgram {
        // Multiply every word of SPM line 0 by SRF[scale_srf] (fixed-point)
        // and store the result to line 1.
        let g = Geometry::paper();
        let mut b = ColumnProgramBuilder::new(g.rcs_per_column);
        b.push(b.row().lsu(LsuInstr::LoadVwr {
            vwr: VwrId::A,
            line: LsuAddr::Imm(0),
        }));
        b.push(
            b.row()
                .lcu(LcuInstr::Li { r: 0, value: 0 })
                .mxcu(MxcuInstr::SetIdx(0)),
        );
        // Read the scalar once into every RC's local register to avoid SRF
        // port conflicts inside the loop (one RC at a time).
        for rc in 0..4u8 {
            b.push(b.row().rc(
                rc as usize,
                RcInstr::mov(RcDst::Reg(0), RcSrc::Srf(scale_srf)),
            ));
        }
        let top = b.new_label();
        b.bind_label(top);
        b.push(
            b.row()
                .lcu(LcuInstr::Add {
                    r: 0,
                    src: LcuSrc::Imm(1),
                })
                .mxcu(MxcuInstr::AddIdx(1))
                .rc_all(RcInstr::new(
                    RcOpcode::MulFxp,
                    RcDst::Vwr(VwrId::C),
                    RcSrc::Vwr(VwrId::A),
                    RcSrc::Reg(0),
                )),
        );
        b.push_branch(b.row(), LcuCond::Lt, 0, LcuSrc::Imm(32), top);
        b.push(b.row().lsu(LsuInstr::StoreVwr {
            vwr: VwrId::C,
            line: LsuAddr::Imm(1),
        }));
        b.push_exit();
        KernelProgram::new("vector-scale", vec![b.build().unwrap()]).unwrap()
    }

    #[test]
    fn full_flow_dma_kernel_dma() {
        let mut accel = Vwr2a::new();
        let input: Vec<i32> = (0..128).map(|i| i << 16).collect(); // Q15.16 integers
        accel.dma_to_spm(&input, 0).unwrap();
        accel.write_srf(0, 0, 1 << 15).unwrap(); // scale by 0.5
        let kernel = vector_scale_kernel(0);
        let id = accel.load_kernel(&kernel).unwrap();
        let stats = accel.run_kernel(id).unwrap();
        assert!(stats.cycles > kernel.config_words() as u64);
        assert_eq!(stats.columns_used, 1);
        let (out, _) = accel.dma_from_spm(128, 128).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as i32) << 15, "word {i}");
        }
    }

    #[test]
    fn run_program_without_storing() {
        let mut accel = Vwr2a::new();
        let input: Vec<i32> = (0..128).map(|i| (i - 64) << 16).collect();
        accel.dma_to_spm(&input, 0).unwrap();
        accel.write_srf(0, 0, 2 << 16).unwrap(); // scale by 2.0
        let stats = accel.run_program(&vector_scale_kernel(0)).unwrap();
        assert_eq!(&*stats.kernel_name, "vector-scale");
        let (out, _) = accel.dma_from_spm(128, 128).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as i32 - 64) << 17);
        }
    }

    #[test]
    fn two_column_kernel_runs_both_columns() {
        // Column 0 writes 1 to SRF 7, column 1 writes 2; both exit.
        let col0 = ColumnProgram::new(vec![
            Row::new(4).rc(0, RcInstr::mov(RcDst::Srf(7), RcSrc::Imm(1))),
            Row::new(4).lcu(LcuInstr::Exit),
        ])
        .unwrap();
        let col1 = ColumnProgram::new(vec![
            Row::new(4).rc(0, RcInstr::mov(RcDst::Srf(7), RcSrc::Imm(2))),
            Row::new(4).rc(0, RcInstr::NOP),
            Row::new(4).lcu(LcuInstr::Exit),
        ])
        .unwrap();
        let kernel = KernelProgram::new("two-col", vec![col0, col1]).unwrap();
        let mut accel = Vwr2a::new();
        let stats = accel.run_program(&kernel).unwrap();
        assert_eq!(stats.columns_used, 2);
        assert_eq!(accel.read_srf(0, 7).unwrap(), 1);
        assert_eq!(accel.read_srf(1, 7).unwrap(), 2);
        // The longer column determines the execution portion of the cycle count.
        assert_eq!(
            stats.cycles,
            kernel.config_words() as u64 + 3,
            "config load + 3 execution cycles"
        );
    }

    #[test]
    fn cycle_limit_detects_runaway_kernels() {
        let mut accel = Vwr2a::new();
        accel.set_cycle_limit(100);
        let mut b = ColumnProgramBuilder::new(4);
        let top = b.new_label();
        b.bind_label(top);
        b.push(b.row());
        b.push_jump(b.row(), top);
        b.push_exit();
        let kernel = KernelProgram::new("forever", vec![b.build().unwrap()]).unwrap();
        assert!(matches!(
            accel.run_program(&kernel),
            Err(CoreError::CycleLimitExceeded { limit: 100 })
        ));
    }

    #[test]
    fn invalid_kernels_are_rejected_before_running() {
        let mut accel = Vwr2a::new();
        // Three columns on a two-column array.
        let col = ColumnProgram::new(vec![Row::new(4).lcu(LcuInstr::Exit)]).unwrap();
        let kernel = KernelProgram::new("too-wide", vec![col.clone(), col.clone(), col]).unwrap();
        assert!(accel.load_kernel(&kernel).is_err());
        assert!(accel.run_program(&kernel).is_err());
    }

    #[test]
    fn unloaded_kernels_cannot_be_run_even_after_slot_reuse() {
        let mut accel = Vwr2a::new();
        let kernel = vector_scale_kernel(0);
        let id = accel.load_kernel(&kernel).unwrap();
        let freed = accel.unload_kernel(id).unwrap();
        assert_eq!(freed, kernel.config_words());
        assert_eq!(accel.config_mem().used_words(), 0);
        // The slot is reused by a different kernel; the stale id must fail
        // instead of silently launching the wrong program.
        let other = vector_scale_kernel(1);
        let fresh = accel.load_kernel(&other).unwrap();
        assert_eq!(fresh.slot(), id.slot());
        assert!(matches!(
            accel.run_kernel(id),
            Err(CoreError::UnknownKernel { .. })
        ));
        assert!(matches!(
            accel.run_kernel_warm(id),
            Err(CoreError::UnknownKernel { .. })
        ));
        assert!(accel.unload_kernel(id).is_err());
        accel.run_kernel(fresh).unwrap();
    }

    #[test]
    fn prefetch_plus_warm_launch_costs_the_same_work_as_one_cold_launch() {
        let input: Vec<i32> = (0..128).map(|i| i << 16).collect();
        let kernel = vector_scale_kernel(0);

        let mut cold = Vwr2a::new();
        cold.dma_to_spm(&input, 0).unwrap();
        cold.write_srf(0, 0, 1 << 15).unwrap();
        let id = cold.load_kernel(&kernel).unwrap();
        let cold_stats = cold.run_kernel(id).unwrap();
        let (cold_out, _) = cold.dma_from_spm(128, 128).unwrap();

        let mut prefetched = Vwr2a::new();
        prefetched.dma_to_spm(&input, 0).unwrap();
        prefetched.write_srf(0, 0, 1 << 15).unwrap();
        let id = prefetched.load_kernel(&kernel).unwrap();
        let streamed = prefetched.prefetch_kernel(id).unwrap();
        assert_eq!(streamed, kernel.config_words() as u64);
        let warm_stats = prefetched.run_kernel_warm(id).unwrap();
        let (warm_out, _) = prefetched.dma_from_spm(128, 128).unwrap();

        // Identical outputs, identical total work: the prefetch only moves
        // the configuration streaming ahead of the launch.
        assert_eq!(warm_out, cold_out);
        assert_eq!(streamed + warm_stats.cycles, cold_stats.cycles);
        assert_eq!(
            prefetched.counters().config_words_loaded,
            cold.counters().config_words_loaded
        );
        assert_eq!(prefetched.counters().cycles, cold.counters().cycles);
    }

    #[test]
    fn prefetch_rejects_stale_kernel_ids() {
        let mut accel = Vwr2a::new();
        let id = accel.load_kernel(&vector_scale_kernel(0)).unwrap();
        accel.unload_kernel(id).unwrap();
        assert!(matches!(
            accel.prefetch_kernel(id),
            Err(CoreError::UnknownKernel { .. })
        ));
    }

    /// Like [`vector_scale_kernel`] but the input/output SPM lines come
    /// from SRF[1]/SRF[2], so the trace carries SRF guards.
    fn vector_scale_kernel_srf_lines() -> KernelProgram {
        let g = Geometry::paper();
        let mut b = ColumnProgramBuilder::new(g.rcs_per_column);
        b.push(b.row().lsu(LsuInstr::LoadVwr {
            vwr: VwrId::A,
            line: LsuAddr::Srf(1),
        }));
        b.push(
            b.row()
                .lcu(LcuInstr::Li { r: 0, value: 0 })
                .mxcu(MxcuInstr::SetIdx(0)),
        );
        for rc in 0..4u8 {
            b.push(
                b.row()
                    .rc(rc as usize, RcInstr::mov(RcDst::Reg(0), RcSrc::Srf(0))),
            );
        }
        let top = b.new_label();
        b.bind_label(top);
        b.push(
            b.row()
                .lcu(LcuInstr::Add {
                    r: 0,
                    src: LcuSrc::Imm(1),
                })
                .mxcu(MxcuInstr::AddIdx(1))
                .rc_all(RcInstr::new(
                    RcOpcode::MulFxp,
                    RcDst::Vwr(VwrId::C),
                    RcSrc::Vwr(VwrId::A),
                    RcSrc::Reg(0),
                )),
        );
        b.push_branch(b.row(), LcuCond::Lt, 0, LcuSrc::Imm(32), top);
        b.push(b.row().lsu(LsuInstr::StoreVwr {
            vwr: VwrId::C,
            line: LsuAddr::Srf(2),
        }));
        b.push_exit();
        KernelProgram::new("vector-scale-srf", vec![b.build().unwrap()]).unwrap()
    }

    #[test]
    fn warm_replay_is_bit_identical_to_interpretation() {
        let kernel = vector_scale_kernel(0);
        let mut replay = Vwr2a::new();
        let mut interp = Vwr2a::new();
        interp.set_replay_enabled(false);
        for accel in [&mut replay, &mut interp] {
            accel.write_srf(0, 0, 1 << 15).unwrap();
        }
        let id_r = replay.load_kernel(&kernel).unwrap();
        let id_i = interp.load_kernel(&kernel).unwrap();
        for window in 0..4 {
            let input: Vec<i32> = (0..128).map(|i| (i + window) << 16).collect();
            for accel in [&mut replay, &mut interp] {
                accel.dma_to_spm(&input, 0).unwrap();
            }
            let stats_r = if window == 0 {
                replay.run_kernel(id_r).unwrap()
            } else {
                replay.run_kernel_warm(id_r).unwrap()
            };
            let stats_i = if window == 0 {
                interp.run_kernel(id_i).unwrap()
            } else {
                interp.run_kernel_warm(id_i).unwrap()
            };
            assert_eq!(stats_r, stats_i, "window {window}");
            let (out_r, _) = replay.dma_from_spm(128, 128).unwrap();
            let (out_i, _) = interp.dma_from_spm(128, 128).unwrap();
            assert_eq!(out_r, out_i, "window {window}");
        }
        assert_eq!(replay.counters(), interp.counters());
        assert_eq!(replay.column(0).unwrap(), interp.column(0).unwrap());
        // The cold launch recorded; every warm window replayed.
        assert_eq!(replay.replays(), 3);
        assert_eq!(interp.replays(), 0);
    }

    #[test]
    fn changed_guard_parameter_re_records_and_stays_correct() {
        // The SPM line pointers live in the SRF, so they become trace
        // guards; the scale factor is a data read and replays live.
        let kernel = vector_scale_kernel_srf_lines();
        let mut accel = Vwr2a::new();
        let input: Vec<i32> = (0..128).map(|i| i << 16).collect();
        accel.dma_to_spm(&input, 0).unwrap();
        accel.write_srf(0, 0, 1 << 15).unwrap(); // scale 0.5
        accel.write_srf(0, 1, 0).unwrap(); // input line
        accel.write_srf(0, 2, 1).unwrap(); // output line
        let id = accel.load_kernel(&kernel).unwrap();
        accel.run_kernel(id).unwrap();
        accel.run_kernel_warm(id).unwrap();
        assert_eq!(accel.replays(), 1, "same parameters replay");

        // A data parameter change must NOT invalidate the trace — the
        // replayed pass reads the live SRF value.
        accel.write_srf(0, 0, 1 << 16).unwrap(); // scale 1.0
        accel.run_kernel_warm(id).unwrap();
        assert_eq!(accel.replays(), 2, "data parameter change still replays");
        let (out, _) = accel.dma_from_spm(128, 128).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as i32) << 16, "word {i} at scale 1.0");
        }

        // A guarded (addressing) parameter change must miss and re-record.
        accel.write_srf(0, 2, 2).unwrap(); // move the output line
        accel.run_kernel_warm(id).unwrap();
        assert_eq!(accel.replays(), 2, "changed guard misses the cache");
        let (out, _) = accel.dma_from_spm(256, 128).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as i32) << 16, "word {i} after line move");
        }
        // ...and the re-recorded snapshot replays again.
        accel.run_kernel_warm(id).unwrap();
        assert_eq!(accel.replays(), 3);
        // The original snapshot is still cached too.
        accel.write_srf(0, 2, 1).unwrap();
        accel.run_kernel_warm(id).unwrap();
        assert_eq!(accel.replays(), 4, "reverted guard hits the older trace");
    }

    #[test]
    fn unload_discards_replay_state_with_the_slot() {
        let kernel = vector_scale_kernel(0);
        let mut accel = Vwr2a::new();
        accel.write_srf(0, 0, 1 << 15).unwrap();
        let id = accel.load_kernel(&kernel).unwrap();
        accel.run_kernel(id).unwrap();
        assert!(!accel.config_mem().traces(id).is_empty());
        accel.unload_kernel(id).unwrap();
        assert!(accel.config_mem().traces(id).is_empty());
        // Reloading into the reused slot starts from a clean cache.
        let fresh = accel.load_kernel(&kernel).unwrap();
        assert_eq!(fresh.slot(), id.slot());
        assert!(accel.config_mem().traces(fresh).is_empty());
        accel.run_kernel(fresh).unwrap();
        accel.run_kernel_warm(fresh).unwrap();
        assert_eq!(accel.replays(), 1);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let mut accel = Vwr2a::new();
        accel.dma_to_spm(&[0; 64], 0).unwrap();
        assert_eq!(accel.counters().dma_words, 64);
        accel.reset_counters();
        assert_eq!(accel.counters().dma_words, 0);
    }

    #[test]
    fn invalid_column_access_rejected() {
        let accel = Vwr2a::new();
        assert!(accel.column(2).is_err());
        assert!(accel.read_srf(5, 0).is_err());
    }
}
