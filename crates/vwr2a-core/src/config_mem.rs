//! Configuration memory with per-kernel residency management.
//!
//! Kernels are stored as encoded configuration words in the configuration
//! memory and copied into the per-slot program memories when a kernel
//! execution starts (Sec. 3.1).  Keeping the encoded form here (rather than
//! the decoded instruction enums) keeps the model faithful: the same words
//! that the encoder produces are what the loader hands back to the columns,
//! and the activity counters charge one configuration-word transfer per word
//! at kernel launch.
//!
//! # Residency model
//!
//! The memory is a *generational slot map*: every stored kernel occupies a
//! slot, and its [`KernelId`] handle carries both the slot index and the
//! slot's generation at store time.  [`ConfigMemory::remove`] reclaims the
//! kernel's words and bumps the slot generation, so a handle to a removed
//! kernel can never alias a later kernel stored in the reused slot — it
//! fails with [`CoreError::UnknownKernel`] instead.  This is what lets a
//! long-lived runtime evict cold kernels under capacity pressure (see the
//! `vwr2a-runtime` session) without ever confusing stale handles with live
//! programs.

use crate::error::{CoreError, Result};
use crate::isa::encode::{
    decode_lcu, decode_lsu, decode_mxcu, decode_rc, encode_lcu, encode_lsu, encode_mxcu, encode_rc,
    ConfigWord,
};
use crate::program::{ColumnProgram, KernelProgram, Row};
use crate::replay::ReplayTrace;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Replay traces kept per slot.  A small FIFO window is enough to cover
/// kernels whose hosts cycle through a few parameter snapshots (e.g. the
/// per-block line pointers of a multi-block FIR pass or per-stage FFT
/// twiddle bases) without letting a parameter sweep hoard memory.
const TRACES_PER_SLOT: usize = 16;

/// Generational handle to a kernel stored in the configuration memory.
///
/// The handle pairs the slot index with the slot's generation at store
/// time.  After the kernel is removed (and even after its slot is reused by
/// a newer kernel) the stale handle no longer matches the slot's generation
/// and every lookup fails with [`CoreError::UnknownKernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelId {
    slot: u32,
    generation: u32,
}

impl KernelId {
    /// Builds a handle from raw parts (in-crate tests only — handles to
    /// live kernels come from [`ConfigMemory::store`], and keeping this
    /// private stops callers from forging a handle to a slot they never
    /// stored).
    #[cfg(test)]
    pub(crate) fn from_parts(slot: u32, generation: u32) -> Self {
        Self { slot, generation }
    }

    /// The slot index in the configuration memory.
    pub fn slot(&self) -> usize {
        self.slot as usize
    }

    /// The slot generation this handle was issued for.
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}v{}", self.slot, self.generation)
    }
}

/// Encoded words of one column, stored row-major: for each row, the LCU,
/// LSU and MXCU words followed by one word per RC.  The RC count is kept
/// per column so kernels whose columns differ in RC count decode correctly.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoredColumn {
    words: Vec<ConfigWord>,
    rcs_per_column: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoredKernel {
    name: Arc<str>,
    columns: Vec<StoredColumn>,
    /// Total configuration words, cached so [`ConfigMemory::remove`] can
    /// reclaim exactly what [`ConfigMemory::store`] charged.
    words: usize,
}

/// One slot of the generational map.
///
/// Besides the encoded kernel, a slot carries two host-side caches that do
/// not exist architecturally and are invalidated together with the handle
/// on every `store`/`remove`/`clear` generation transition: the decoded
/// [`KernelProgram`] (so warm launches stop re-decoding configuration
/// words) and the recorded [`ReplayTrace`]s of the replay cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Slot {
    generation: u32,
    kernel: Option<StoredKernel>,
    decoded: Option<Arc<KernelProgram>>,
    traces: Vec<Arc<ReplayTrace>>,
}

/// The configuration memory holding encoded kernels.
///
/// # Example
///
/// ```
/// use vwr2a_core::config_mem::ConfigMemory;
/// use vwr2a_core::program::{ColumnProgram, KernelProgram, Row};
/// use vwr2a_core::isa::LcuInstr;
///
/// # fn main() -> Result<(), vwr2a_core::error::CoreError> {
/// let mut cm = ConfigMemory::new(1024);
/// let col = ColumnProgram::new(vec![Row::new(4).lcu(LcuInstr::Exit)])?;
/// let kernel = KernelProgram::new("noop", vec![col])?;
/// let id = cm.store(&kernel)?;
/// let loaded = cm.fetch(id)?;
/// assert_eq!(&*loaded.name, "noop");
///
/// // Removing the kernel reclaims its words and invalidates the handle.
/// let freed = cm.remove(id)?;
/// assert_eq!(freed, kernel.config_words());
/// assert!(!cm.contains(id));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigMemory {
    capacity_words: usize,
    used_words: usize,
    slots: Vec<Slot>,
    free: Vec<usize>,
}

impl ConfigMemory {
    /// Creates a configuration memory with the given capacity in words.
    pub fn new(capacity_words: usize) -> Self {
        Self {
            capacity_words,
            used_words: 0,
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Capacity in configuration words.
    pub fn capacity_words(&self) -> usize {
        self.capacity_words
    }

    /// Words currently occupied.
    pub fn used_words(&self) -> usize {
        self.used_words
    }

    /// Words still available for new kernels.
    pub fn free_words(&self) -> usize {
        self.capacity_words - self.used_words
    }

    /// Number of kernels stored.
    pub fn kernel_count(&self) -> usize {
        self.slots.iter().filter(|s| s.kernel.is_some()).count()
    }

    /// Handles of every resident kernel, in slot order.
    pub fn kernel_ids(&self) -> impl Iterator<Item = KernelId> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.kernel.as_ref().map(|_| KernelId {
                slot: i as u32,
                generation: s.generation,
            })
        })
    }

    fn resident(&self, id: KernelId) -> Result<&StoredKernel> {
        self.slots
            .get(id.slot())
            .filter(|s| s.generation == id.generation)
            .and_then(|s| s.kernel.as_ref())
            .ok_or(CoreError::UnknownKernel {
                slot: id.slot(),
                generation: id.generation,
            })
    }

    /// Encodes and stores a kernel, returning its generational id.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ConfigMemoryFull`] if the kernel does not fit
    /// the remaining free words (remove or evict kernels first), or an
    /// encoding error if an instruction field overflows its encoding.
    pub fn store(&mut self, kernel: &KernelProgram) -> Result<KernelId> {
        let needed = kernel.config_words();
        if self.used_words + needed > self.capacity_words {
            return Err(CoreError::ConfigMemoryFull {
                capacity_words: self.capacity_words,
                requested_words: needed,
            });
        }
        let mut columns = Vec::with_capacity(kernel.columns.len());
        for col in &kernel.columns {
            let mut words = Vec::with_capacity(col.config_words());
            for row in col.rows() {
                words.push(encode_lcu(&row.lcu)?);
                words.push(encode_lsu(&row.lsu)?);
                words.push(encode_mxcu(&row.mxcu)?);
                for rc in &row.rcs {
                    words.push(encode_rc(rc)?);
                }
            }
            columns.push(StoredColumn {
                words,
                rcs_per_column: col.rcs_per_column(),
            });
        }
        let stored = StoredKernel {
            name: kernel.name.clone(),
            columns,
            words: needed,
        };
        self.used_words += needed;
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot];
                s.kernel = Some(stored);
                s.decoded = None;
                s.traces.clear();
                slot
            }
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    kernel: Some(stored),
                    decoded: None,
                    traces: Vec::new(),
                });
                self.slots.len() - 1
            }
        };
        Ok(KernelId {
            slot: slot as u32,
            generation: self.slots[slot].generation,
        })
    }

    /// Decodes a stored kernel back into a [`KernelProgram`] (what the
    /// kernel loader streams into the per-slot program memories).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownKernel`] for a stale or invalid id, or a
    /// decoding error if the stored words are corrupt.
    pub fn fetch(&self, id: KernelId) -> Result<KernelProgram> {
        let stored = self.resident(id)?;
        let mut columns = Vec::with_capacity(stored.columns.len());
        for col in &stored.columns {
            let words_per_row = 3 + col.rcs_per_column;
            let mut rows = Vec::with_capacity(col.words.len() / words_per_row);
            for chunk in col.words.chunks(words_per_row) {
                let mut row = Row::new(col.rcs_per_column);
                row.lcu = decode_lcu(chunk[0])?;
                row.lsu = decode_lsu(chunk[1])?;
                row.mxcu = decode_mxcu(chunk[2])?;
                for (i, &w) in chunk[3..].iter().enumerate() {
                    row.rcs[i] = decode_rc(w)?;
                }
                rows.push(row);
            }
            columns.push(ColumnProgram::new(rows)?);
        }
        KernelProgram::new(stored.name.clone(), columns)
    }

    /// [`ConfigMemory::fetch`] through the per-slot decode cache: the
    /// first call decodes the stored words and caches the program; later
    /// calls return the cached [`Arc`] without touching the words.  The
    /// cache is dropped whenever the slot's generation moves (`store` into
    /// a reused slot, `remove`, `clear`), so a stale handle can never see
    /// a newer slot's program.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownKernel`] for a stale or invalid id, or a
    /// decoding error if the stored words are corrupt.
    pub fn fetch_decoded(&mut self, id: KernelId) -> Result<Arc<KernelProgram>> {
        self.resident(id)?;
        if let Some(decoded) = &self.slots[id.slot()].decoded {
            return Ok(Arc::clone(decoded));
        }
        let decoded = Arc::new(self.fetch(id)?);
        self.slots[id.slot()].decoded = Some(Arc::clone(&decoded));
        Ok(decoded)
    }

    /// The recorded replay traces of a kernel, oldest first.  Empty for a
    /// stale handle or a kernel with no recordings yet.
    pub(crate) fn traces(&self, id: KernelId) -> &[Arc<ReplayTrace>] {
        self.slots
            .get(id.slot())
            .filter(|s| s.generation == id.generation && s.kernel.is_some())
            .map(|s| s.traces.as_slice())
            .unwrap_or(&[])
    }

    /// Caches a freshly recorded replay trace on the kernel's slot.  A
    /// trace with the same guard set replaces the stale recording; the
    /// per-slot window is FIFO-bounded.  Stale handles are ignored.
    pub(crate) fn push_trace(&mut self, id: KernelId, trace: Arc<ReplayTrace>) {
        let Some(slot) = self
            .slots
            .get_mut(id.slot())
            .filter(|s| s.generation == id.generation && s.kernel.is_some())
        else {
            return;
        };
        if let Some(existing) = slot.traces.iter_mut().find(|t| t.guards == trace.guards) {
            *existing = trace;
            return;
        }
        if slot.traces.len() == TRACES_PER_SLOT {
            slot.traces.remove(0);
        }
        slot.traces.push(trace);
    }

    /// Number of configuration words a stored kernel occupies (the kernel
    /// loader streams this many words at launch).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownKernel`] for a stale or invalid id.
    pub fn kernel_words(&self, id: KernelId) -> Result<usize> {
        Ok(self.resident(id)?.words)
    }

    /// `true` if `id` refers to a currently resident kernel.  Stale handles
    /// — removed kernels, even after their slot was reused — return `false`.
    pub fn contains(&self, id: KernelId) -> bool {
        self.resident(id).is_ok()
    }

    /// Removes one kernel, reclaiming its configuration words.  Returns the
    /// number of words freed.  The slot generation is bumped, so the removed
    /// id (and any copy of it) is invalidated permanently.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownKernel`] for a stale or invalid id.
    pub fn remove(&mut self, id: KernelId) -> Result<usize> {
        let slot = self
            .slots
            .get_mut(id.slot())
            .filter(|s| s.generation == id.generation && s.kernel.is_some())
            .ok_or(CoreError::UnknownKernel {
                slot: id.slot(),
                generation: id.generation,
            })?;
        let stored = slot.kernel.take().expect("filtered on occupancy");
        slot.generation = slot.generation.wrapping_add(1);
        slot.decoded = None;
        slot.traces.clear();
        self.used_words -= stored.words;
        self.free.push(id.slot());
        Ok(stored.words)
    }

    /// Removes every stored kernel.  All outstanding ids are invalidated
    /// (their slots' generations are bumped), so handles issued before the
    /// clear can never alias kernels stored after it.
    pub fn clear(&mut self) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.kernel.take().is_some() {
                slot.generation = slot.generation.wrapping_add(1);
                self.free.push(i);
            }
            slot.decoded = None;
            slot.traces.clear();
        }
        self.used_words = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::VwrId;
    use crate::isa::lcu::LcuInstr;
    use crate::isa::lsu::{LsuAddr, LsuInstr};
    use crate::isa::rc::{RcDst, RcInstr, RcOpcode, RcSrc};

    fn sample_kernel() -> KernelProgram {
        let rows = vec![
            Row::new(4)
                .lsu(LsuInstr::LoadVwr {
                    vwr: VwrId::A,
                    line: LsuAddr::Imm(3),
                })
                .rc_all(RcInstr::new(
                    RcOpcode::MulFxp,
                    RcDst::Vwr(VwrId::C),
                    RcSrc::Vwr(VwrId::A),
                    RcSrc::Srf(2),
                )),
            Row::new(4).lcu(LcuInstr::Exit),
        ];
        let col = ColumnProgram::new(rows).unwrap();
        KernelProgram::new("sample", vec![col.clone(), col]).unwrap()
    }

    fn tiny_kernel(name: &str) -> KernelProgram {
        let col = ColumnProgram::new(vec![Row::new(4).lcu(LcuInstr::Exit)]).unwrap();
        KernelProgram::new(name, vec![col]).unwrap()
    }

    #[test]
    fn store_fetch_round_trip() {
        let mut cm = ConfigMemory::new(4096);
        let kernel = sample_kernel();
        let id = cm.store(&kernel).unwrap();
        let loaded = cm.fetch(id).unwrap();
        assert_eq!(loaded, kernel);
        assert_eq!(cm.kernel_words(id).unwrap(), kernel.config_words());
        assert_eq!(cm.kernel_count(), 1);
        assert_eq!(cm.used_words(), kernel.config_words());
        assert_eq!(cm.free_words(), 4096 - kernel.config_words());
    }

    #[test]
    fn asymmetric_columns_round_trip() {
        // A kernel whose columns have different RC counts must decode every
        // column with its own row stride.
        let wide = ColumnProgram::new(vec![
            Row::new(4).rc(3, RcInstr::mov(RcDst::Reg(0), RcSrc::Imm(7))),
            Row::new(4).lcu(LcuInstr::Exit),
        ])
        .unwrap();
        let narrow = ColumnProgram::new(vec![
            Row::new(2).rc(1, RcInstr::mov(RcDst::Reg(1), RcSrc::Imm(-3))),
            Row::new(2).lcu(LcuInstr::Exit),
        ])
        .unwrap();
        let kernel = KernelProgram::new("asym", vec![wide, narrow]).unwrap();
        let mut cm = ConfigMemory::new(4096);
        let id = cm.store(&kernel).unwrap();
        assert_eq!(cm.fetch(id).unwrap(), kernel);
        assert_eq!(cm.kernel_words(id).unwrap(), kernel.config_words());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut cm = ConfigMemory::new(10);
        assert!(matches!(
            cm.store(&sample_kernel()),
            Err(CoreError::ConfigMemoryFull { .. })
        ));
    }

    #[test]
    fn unknown_kernel_rejected() {
        let cm = ConfigMemory::new(100);
        assert!(matches!(
            cm.fetch(KernelId::from_parts(0, 0)),
            Err(CoreError::UnknownKernel { slot: 0, .. })
        ));
        assert!(cm.kernel_words(KernelId::from_parts(3, 0)).is_err());
    }

    #[test]
    fn remove_reclaims_words_and_invalidates_the_id() {
        let mut cm = ConfigMemory::new(100);
        let kernel = tiny_kernel("a");
        let id = cm.store(&kernel).unwrap();
        let used = cm.used_words();
        assert_eq!(cm.remove(id).unwrap(), used);
        assert_eq!(cm.used_words(), 0);
        assert_eq!(cm.kernel_count(), 0);
        assert!(!cm.contains(id));
        assert!(cm.fetch(id).is_err());
        assert!(matches!(
            cm.remove(id),
            Err(CoreError::UnknownKernel { .. })
        ));
    }

    #[test]
    fn stale_id_never_aliases_a_reused_slot() {
        let mut cm = ConfigMemory::new(1000);
        let a = cm.store(&tiny_kernel("a")).unwrap();
        let b = cm.store(&tiny_kernel("b")).unwrap();
        cm.remove(a).unwrap();
        // The freed slot is reused for the next kernel...
        let c = cm.store(&tiny_kernel("c")).unwrap();
        assert_eq!(c.slot(), a.slot());
        assert_ne!(c.generation(), a.generation());
        // ...but the stale handle must not see it.
        assert!(!cm.contains(a));
        assert!(matches!(cm.fetch(a), Err(CoreError::UnknownKernel { .. })));
        assert!(cm.kernel_words(a).is_err());
        // Live handles are unaffected.
        assert_eq!(&*cm.fetch(b).unwrap().name, "b");
        assert_eq!(&*cm.fetch(c).unwrap().name, "c");
        assert_eq!(cm.kernel_count(), 2);
    }

    #[test]
    fn kernel_ids_enumerates_residents() {
        let mut cm = ConfigMemory::new(1000);
        let a = cm.store(&tiny_kernel("a")).unwrap();
        let b = cm.store(&tiny_kernel("b")).unwrap();
        cm.remove(a).unwrap();
        let ids: Vec<KernelId> = cm.kernel_ids().collect();
        assert_eq!(ids, vec![b]);
        assert_eq!(format!("{b}"), "1v0");
    }

    #[test]
    fn fetch_decoded_caches_and_respects_generations() {
        let mut cm = ConfigMemory::new(1000);
        let id = cm.store(&sample_kernel()).unwrap();
        let first = cm.fetch_decoded(id).unwrap();
        let second = cm.fetch_decoded(id).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "second fetch hits the cache");
        assert_eq!(*first, cm.fetch(id).unwrap());
        // Removing the kernel drops the cache with the slot; a new kernel
        // in the reused slot decodes fresh.
        cm.remove(id).unwrap();
        assert!(cm.fetch_decoded(id).is_err());
        let other = cm.store(&tiny_kernel("other")).unwrap();
        assert_eq!(other.slot(), id.slot());
        assert_eq!(&*cm.fetch_decoded(other).unwrap().name, "other");
    }

    #[test]
    fn clear_releases_space_and_invalidates_ids() {
        let mut cm = ConfigMemory::new(100);
        let id = cm.store(&sample_kernel()).unwrap();
        cm.clear();
        assert_eq!(cm.used_words(), 0);
        assert_eq!(cm.kernel_count(), 0);
        assert_eq!(cm.capacity_words(), 100);
        assert!(!cm.contains(id));
        // A kernel stored after the clear reuses the slot with a newer
        // generation; the pre-clear handle still fails.
        let fresh = cm.store(&sample_kernel()).unwrap();
        assert_eq!(fresh.slot(), id.slot());
        assert!(cm.contains(fresh));
        assert!(!cm.contains(id));
    }

    #[test]
    fn freed_words_are_reusable() {
        let kernel = sample_kernel();
        let words = kernel.config_words();
        // Room for exactly two kernels.
        let mut cm = ConfigMemory::new(2 * words);
        let a = cm.store(&kernel).unwrap();
        let _b = cm.store(&kernel).unwrap();
        assert!(matches!(
            cm.store(&kernel),
            Err(CoreError::ConfigMemoryFull { .. })
        ));
        cm.remove(a).unwrap();
        let c = cm.store(&kernel).unwrap();
        assert!(cm.contains(c));
        assert_eq!(cm.used_words(), 2 * words);
    }
}
