//! Configuration memory.
//!
//! Kernels are stored as encoded configuration words in the configuration
//! memory and copied into the per-slot program memories when a kernel
//! execution starts (Sec. 3.1).  Keeping the encoded form here (rather than
//! the decoded instruction enums) keeps the model faithful: the same words
//! that the encoder produces are what the loader hands back to the columns,
//! and the activity counters charge one configuration-word transfer per word
//! at kernel launch.

use crate::error::{CoreError, Result};
use crate::isa::encode::{
    decode_lcu, decode_lsu, decode_mxcu, decode_rc, encode_lcu, encode_lsu, encode_mxcu, encode_rc,
    ConfigWord,
};
use crate::program::{ColumnProgram, KernelProgram, Row};
use serde::{Deserialize, Serialize};

/// Handle to a kernel stored in the configuration memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelId(pub usize);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoredKernel {
    name: String,
    /// Encoded words per column, stored row-major: for each row, the LCU,
    /// LSU and MXCU words followed by one word per RC.
    columns: Vec<Vec<ConfigWord>>,
    rcs_per_column: usize,
}

/// The configuration memory holding encoded kernels.
///
/// # Example
///
/// ```
/// use vwr2a_core::config_mem::ConfigMemory;
/// use vwr2a_core::program::{ColumnProgram, KernelProgram, Row};
/// use vwr2a_core::isa::LcuInstr;
///
/// # fn main() -> Result<(), vwr2a_core::error::CoreError> {
/// let mut cm = ConfigMemory::new(1024);
/// let col = ColumnProgram::new(vec![Row::new(4).lcu(LcuInstr::Exit)])?;
/// let kernel = KernelProgram::new("noop", vec![col])?;
/// let id = cm.store(&kernel)?;
/// let loaded = cm.fetch(id)?;
/// assert_eq!(loaded.name, "noop");
/// assert_eq!(loaded.columns.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigMemory {
    capacity_words: usize,
    used_words: usize,
    kernels: Vec<StoredKernel>,
}

impl ConfigMemory {
    /// Creates a configuration memory with the given capacity in words.
    pub fn new(capacity_words: usize) -> Self {
        Self {
            capacity_words,
            used_words: 0,
            kernels: Vec::new(),
        }
    }

    /// Capacity in configuration words.
    pub fn capacity_words(&self) -> usize {
        self.capacity_words
    }

    /// Words currently occupied.
    pub fn used_words(&self) -> usize {
        self.used_words
    }

    /// Number of kernels stored.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Encodes and stores a kernel, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ConfigMemoryFull`] if the kernel does not fit, or
    /// an encoding error if an instruction field overflows its encoding.
    pub fn store(&mut self, kernel: &KernelProgram) -> Result<KernelId> {
        let needed = kernel.config_words();
        if self.used_words + needed > self.capacity_words {
            return Err(CoreError::ConfigMemoryFull {
                capacity_words: self.capacity_words,
                requested_words: needed,
            });
        }
        let mut columns = Vec::with_capacity(kernel.columns.len());
        let mut rcs_per_column = 0;
        for col in &kernel.columns {
            rcs_per_column = col.rcs_per_column();
            let mut words = Vec::with_capacity(col.config_words());
            for row in col.rows() {
                words.push(encode_lcu(&row.lcu)?);
                words.push(encode_lsu(&row.lsu)?);
                words.push(encode_mxcu(&row.mxcu)?);
                for rc in &row.rcs {
                    words.push(encode_rc(rc)?);
                }
            }
            columns.push(words);
        }
        self.used_words += needed;
        self.kernels.push(StoredKernel {
            name: kernel.name.clone(),
            columns,
            rcs_per_column,
        });
        Ok(KernelId(self.kernels.len() - 1))
    }

    /// Decodes a stored kernel back into a [`KernelProgram`] (what the
    /// kernel loader streams into the per-slot program memories).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownKernel`] for an invalid id or a decoding
    /// error if the stored words are corrupt.
    pub fn fetch(&self, id: KernelId) -> Result<KernelProgram> {
        let stored = self
            .kernels
            .get(id.0)
            .ok_or(CoreError::UnknownKernel { id: id.0 })?;
        let words_per_row = 3 + stored.rcs_per_column;
        let mut columns = Vec::with_capacity(stored.columns.len());
        for words in &stored.columns {
            let mut rows = Vec::with_capacity(words.len() / words_per_row);
            for chunk in words.chunks(words_per_row) {
                let mut row = Row::new(stored.rcs_per_column);
                row.lcu = decode_lcu(chunk[0])?;
                row.lsu = decode_lsu(chunk[1])?;
                row.mxcu = decode_mxcu(chunk[2])?;
                for (i, &w) in chunk[3..].iter().enumerate() {
                    row.rcs[i] = decode_rc(w)?;
                }
                rows.push(row);
            }
            columns.push(ColumnProgram::new(rows)?);
        }
        KernelProgram::new(stored.name.clone(), columns)
    }

    /// Number of configuration words a stored kernel occupies (the kernel
    /// loader streams this many words at launch).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownKernel`] for an invalid id.
    pub fn kernel_words(&self, id: KernelId) -> Result<usize> {
        let stored = self
            .kernels
            .get(id.0)
            .ok_or(CoreError::UnknownKernel { id: id.0 })?;
        Ok(stored.columns.iter().map(Vec::len).sum())
    }

    /// `true` if `id` refers to a stored kernel.
    pub fn contains(&self, id: KernelId) -> bool {
        id.0 < self.kernels.len()
    }

    /// Removes every stored kernel.
    pub fn clear(&mut self) {
        self.kernels.clear();
        self.used_words = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::VwrId;
    use crate::isa::lcu::LcuInstr;
    use crate::isa::lsu::{LsuAddr, LsuInstr};
    use crate::isa::rc::{RcDst, RcInstr, RcOpcode, RcSrc};

    fn sample_kernel() -> KernelProgram {
        let rows = vec![
            Row::new(4)
                .lsu(LsuInstr::LoadVwr {
                    vwr: VwrId::A,
                    line: LsuAddr::Imm(3),
                })
                .rc_all(RcInstr::new(
                    RcOpcode::MulFxp,
                    RcDst::Vwr(VwrId::C),
                    RcSrc::Vwr(VwrId::A),
                    RcSrc::Srf(2),
                )),
            Row::new(4).lcu(LcuInstr::Exit),
        ];
        let col = ColumnProgram::new(rows).unwrap();
        KernelProgram::new("sample", vec![col.clone(), col]).unwrap()
    }

    #[test]
    fn store_fetch_round_trip() {
        let mut cm = ConfigMemory::new(4096);
        let kernel = sample_kernel();
        let id = cm.store(&kernel).unwrap();
        let loaded = cm.fetch(id).unwrap();
        assert_eq!(loaded, kernel);
        assert_eq!(cm.kernel_words(id).unwrap(), kernel.config_words());
        assert_eq!(cm.kernel_count(), 1);
        assert_eq!(cm.used_words(), kernel.config_words());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut cm = ConfigMemory::new(10);
        assert!(matches!(
            cm.store(&sample_kernel()),
            Err(CoreError::ConfigMemoryFull { .. })
        ));
    }

    #[test]
    fn unknown_kernel_rejected() {
        let cm = ConfigMemory::new(100);
        assert!(matches!(
            cm.fetch(KernelId(0)),
            Err(CoreError::UnknownKernel { id: 0 })
        ));
        assert!(cm.kernel_words(KernelId(3)).is_err());
    }

    #[test]
    fn clear_releases_space() {
        let mut cm = ConfigMemory::new(100);
        let _ = cm.store(&sample_kernel()).unwrap();
        cm.clear();
        assert_eq!(cm.used_words(), 0);
        assert_eq!(cm.kernel_count(), 0);
        assert_eq!(cm.capacity_words(), 100);
    }
}
