//! Kernel programs: rows of per-slot instructions under a shared PC.
//!
//! A column executes one [`Row`] per cycle: the LCU, LSU and MXCU
//! instructions plus one instruction per RC.  Because all slots of a column
//! share the program counter (Sec. 3.1), the per-slot instruction streams
//! always have the same length — a [`ColumnProgram`] stores them row-wise to
//! make that invariant structural.  A [`KernelProgram`] carries the programs
//! of the one or two columns a kernel uses.

use crate::error::{CoreError, Result};
use crate::geometry::Geometry;
use crate::isa::lcu::{LcuInstr, LCU_REGISTERS};
use crate::isa::lsu::LsuInstr;
use crate::isa::mxcu::MxcuInstr;
use crate::isa::rc::RcInstr;
use crate::isa::SlotKind;
use serde::{Deserialize, Serialize};

/// One wide instruction word: what every slot of a column does in one cycle.
///
/// # Example
///
/// ```
/// use vwr2a_core::program::Row;
/// use vwr2a_core::isa::{LsuInstr, LsuAddr, RcInstr, RcOpcode, RcSrc, RcDst};
/// use vwr2a_core::geometry::VwrId;
///
/// // "LOAD A" for the LSU while every RC adds its VWR A and B words into C.
/// let row = Row::new(4)
///     .lsu(LsuInstr::LoadVwr { vwr: VwrId::A, line: LsuAddr::Imm(0) })
///     .rc_all(RcInstr::new(
///         RcOpcode::Add,
///         RcDst::Vwr(VwrId::C),
///         RcSrc::Vwr(VwrId::A),
///         RcSrc::Vwr(VwrId::B),
///     ));
/// assert_eq!(row.rcs.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Row {
    /// Loop-control-unit instruction.
    pub lcu: LcuInstr,
    /// Load-store-unit instruction.
    pub lsu: LsuInstr,
    /// Multiplexer-control-unit instruction.
    pub mxcu: MxcuInstr,
    /// One instruction per reconfigurable cell.
    pub rcs: Vec<RcInstr>,
}

impl Row {
    /// Creates an all-NOP row for a column with `rcs` reconfigurable cells.
    pub fn new(rcs: usize) -> Self {
        Self {
            lcu: LcuInstr::Nop,
            lsu: LsuInstr::Nop,
            mxcu: MxcuInstr::Nop,
            rcs: vec![RcInstr::NOP; rcs],
        }
    }

    /// Sets the LCU instruction.
    pub fn lcu(mut self, instr: LcuInstr) -> Self {
        self.lcu = instr;
        self
    }

    /// Sets the LSU instruction.
    pub fn lsu(mut self, instr: LsuInstr) -> Self {
        self.lsu = instr;
        self
    }

    /// Sets the MXCU instruction.
    pub fn mxcu(mut self, instr: MxcuInstr) -> Self {
        self.mxcu = instr;
        self
    }

    /// Sets the instruction of RC `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not a valid RC position for this row.
    pub fn rc(mut self, index: usize, instr: RcInstr) -> Self {
        self.rcs[index] = instr;
        self
    }

    /// Sets the same instruction on every RC (the common SIMD-like case of
    /// Table 1, where "RC0-3" execute the same operation).
    pub fn rc_all(mut self, instr: RcInstr) -> Self {
        for rc in &mut self.rcs {
            *rc = instr;
        }
        self
    }

    /// Number of SRF accesses across all slots of this row.
    pub fn srf_accesses(&self) -> usize {
        self.lcu.srf_accesses()
            + self.lsu.srf_accesses()
            + self.mxcu.srf_accesses()
            + self.rcs.iter().map(RcInstr::srf_accesses).sum::<usize>()
    }

    /// Number of non-NOP instructions in this row.
    pub fn active_slots(&self) -> usize {
        usize::from(!self.lcu.is_nop())
            + usize::from(!self.lsu.is_nop())
            + usize::from(!self.mxcu.is_nop())
            + self.rcs.iter().filter(|r| !r.is_nop()).count()
    }
}

/// The program of one column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnProgram {
    rows: Vec<Row>,
    rcs_per_column: usize,
}

impl ColumnProgram {
    /// Creates a program from rows.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InconsistentProgramLength`] if any row has a
    /// different RC count than the first, or [`CoreError::ProgramTooLong`]
    /// for an empty program (a kernel must at least `EXIT`).
    pub fn new(rows: Vec<Row>) -> Result<Self> {
        let first = rows.first().ok_or(CoreError::ProgramTooLong {
            slot: SlotKind::Lcu.to_string(),
            len: 0,
            max: 0,
        })?;
        let rcs_per_column = first.rcs.len();
        if let Some(bad) = rows.iter().position(|r| r.rcs.len() != rcs_per_column) {
            return Err(CoreError::InconsistentProgramLength {
                detail: format!(
                    "row {bad} has {} RC slots, expected {rcs_per_column}",
                    rows[bad].rcs.len()
                ),
            });
        }
        Ok(Self {
            rows,
            rcs_per_column,
        })
    }

    /// The rows of the program.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows (instructions per slot).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the program has no rows (never constructible through
    /// [`ColumnProgram::new`]).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// RC slots per row.
    pub fn rcs_per_column(&self) -> usize {
        self.rcs_per_column
    }

    /// Number of configuration words needed to store this program
    /// (one word per slot per row).
    pub fn config_words(&self) -> usize {
        self.rows.len() * (3 + self.rcs_per_column)
    }

    /// Validates the program against a geometry: program-memory capacity,
    /// RC count, register/SRF/VWR indices and branch targets.
    ///
    /// # Errors
    ///
    /// Returns the specific [`CoreError`] describing the first violation.
    pub fn validate(&self, geometry: &Geometry) -> Result<()> {
        if self.rows.len() > geometry.program_words {
            return Err(CoreError::ProgramTooLong {
                slot: "column".into(),
                len: self.rows.len(),
                max: geometry.program_words,
            });
        }
        if self.rcs_per_column != geometry.rcs_per_column {
            return Err(CoreError::InconsistentProgramLength {
                detail: format!(
                    "program has {} RC slots per row, geometry has {}",
                    self.rcs_per_column, geometry.rcs_per_column
                ),
            });
        }
        for (i, row) in self.rows.iter().enumerate() {
            self.validate_row(i, row, geometry)?;
        }
        Ok(())
    }

    fn validate_row(&self, index: usize, row: &Row, geometry: &Geometry) -> Result<()> {
        use crate::isa::lcu::LcuSrc;
        use crate::isa::lsu::LsuAddr;
        use crate::isa::rc::{RcDst, RcSrc};

        let check_srf = |srf: u8| -> Result<()> {
            if (srf as usize) < geometry.srf_entries {
                Ok(())
            } else {
                Err(CoreError::SrfIndexOutOfRange {
                    index: srf as usize,
                    capacity: geometry.srf_entries,
                })
            }
        };
        let check_vwr = |v: crate::geometry::VwrId| -> Result<()> {
            if v.index() < geometry.num_vwrs {
                Ok(())
            } else {
                Err(CoreError::InvalidGeometry {
                    detail: format!(
                        "row {index} uses VWR {v:?} but only {} VWRs exist",
                        geometry.num_vwrs
                    ),
                })
            }
        };
        let check_target = |t: u16| -> Result<()> {
            if (t as usize) < self.rows.len() {
                Ok(())
            } else {
                Err(CoreError::BranchTargetOutOfRange {
                    target: t as usize,
                    len: self.rows.len(),
                })
            }
        };

        // LCU fields.
        match row.lcu {
            LcuInstr::Li { r, .. } | LcuInstr::LoadSrf { r, .. } | LcuInstr::Add { r, .. }
                if r as usize >= LCU_REGISTERS =>
            {
                return Err(CoreError::InvalidGeometry {
                    detail: format!("row {index}: LCU register {r} out of range"),
                })
            }
            LcuInstr::LoadSrf { srf, .. } => check_srf(srf)?,
            LcuInstr::Branch {
                b: LcuSrc::Srf(s),
                target,
                ..
            } => {
                check_srf(s)?;
                check_target(target)?;
            }
            LcuInstr::Branch { target, .. } => check_target(target)?,
            LcuInstr::Jump(target) => check_target(target)?,
            LcuInstr::Add {
                src: LcuSrc::Srf(s),
                ..
            } => check_srf(s)?,
            _ => {}
        }
        // LSU fields.
        match row.lsu {
            LsuInstr::LoadVwr { vwr, line } | LsuInstr::StoreVwr { vwr, line } => {
                check_vwr(vwr)?;
                if let LsuAddr::Srf(s) = line {
                    check_srf(s)?;
                }
                if let LsuAddr::Imm(a) = line {
                    if a as usize >= geometry.spm_lines() {
                        return Err(CoreError::SpmOutOfRange {
                            addr: a as usize,
                            capacity: geometry.spm_lines(),
                            unit: "line",
                        });
                    }
                }
            }
            LsuInstr::LoadSrf { srf, word } | LsuInstr::StoreSrf { srf, word } => {
                check_srf(srf)?;
                if let LsuAddr::Srf(s) = word {
                    check_srf(s)?;
                }
                if let LsuAddr::Imm(a) = word {
                    if a as usize >= geometry.spm_words() {
                        return Err(CoreError::SpmOutOfRange {
                            addr: a as usize,
                            capacity: geometry.spm_words(),
                            unit: "word",
                        });
                    }
                }
            }
            LsuInstr::AddSrf { srf, .. } => check_srf(srf)?,
            _ => {}
        }
        // MXCU fields.
        match row.mxcu {
            MxcuInstr::LoadIdxSrf(s) | MxcuInstr::AndIdxSrf(s) | MxcuInstr::StoreIdxSrf(s) => {
                check_srf(s)?
            }
            _ => {}
        }
        // RC fields.
        for rc in &row.rcs {
            for src in [rc.src_a, rc.src_b] {
                match src {
                    RcSrc::Srf(s) => check_srf(s)?,
                    RcSrc::Vwr(v) => check_vwr(v)?,
                    RcSrc::Reg(r) if r as usize >= geometry.rc_registers => {
                        return Err(CoreError::InvalidGeometry {
                            detail: format!("row {index}: RC register {r} out of range"),
                        })
                    }
                    _ => {}
                }
            }
            match rc.dst {
                RcDst::Srf(s) => check_srf(s)?,
                RcDst::Vwr(v) => check_vwr(v)?,
                RcDst::Reg(r) if r as usize >= geometry.rc_registers => {
                    return Err(CoreError::InvalidGeometry {
                        detail: format!("row {index}: RC register {r} out of range"),
                    })
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// A kernel: one program per column it uses, plus a name used in
/// diagnostics and experiment reports.
///
/// The name is an [`Arc<str>`](std::sync::Arc) so per-window artefacts (every
/// [`crate::stats::RunStats`]) share it by reference count instead of
/// deep-copying a `String` on the hot path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelProgram {
    /// Kernel name (e.g. `"fft-radix2-512"`).
    pub name: std::sync::Arc<str>,
    /// Per-column programs; index 0 runs on column 0, index 1 on column 1.
    pub columns: Vec<ColumnProgram>,
}

impl KernelProgram {
    /// Creates a kernel from per-column programs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidColumn`] if `columns` is empty.
    pub fn new(name: impl Into<std::sync::Arc<str>>, columns: Vec<ColumnProgram>) -> Result<Self> {
        if columns.is_empty() {
            return Err(CoreError::InvalidColumn {
                column: 0,
                count: 0,
            });
        }
        Ok(Self {
            name: name.into(),
            columns,
        })
    }

    /// Total configuration words across all columns.
    pub fn config_words(&self) -> usize {
        self.columns.iter().map(ColumnProgram::config_words).sum()
    }

    /// Validates every column program against the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidColumn`] if the kernel uses more columns
    /// than the geometry has, or the first per-column validation error.
    pub fn validate(&self, geometry: &Geometry) -> Result<()> {
        if self.columns.len() > geometry.columns {
            return Err(CoreError::InvalidColumn {
                column: self.columns.len(),
                count: geometry.columns,
            });
        }
        for col in &self.columns {
            col.validate(geometry)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::VwrId;
    use crate::isa::lcu::LcuCond;
    use crate::isa::lsu::LsuAddr;
    use crate::isa::rc::{RcDst, RcOpcode, RcSrc};

    fn exit_row() -> Row {
        Row::new(4).lcu(LcuInstr::Exit)
    }

    #[test]
    fn row_builders_set_slots() {
        let row = Row::new(4)
            .lcu(LcuInstr::Li { r: 0, value: 3 })
            .lsu(LsuInstr::Shuffle(crate::isa::lsu::ShuffleOp::EvenPrune))
            .mxcu(MxcuInstr::SetIdx(1))
            .rc(2, RcInstr::mov(RcDst::Reg(0), RcSrc::Imm(5)));
        assert_eq!(row.active_slots(), 4);
        assert_eq!(row.srf_accesses(), 0);
        let all = Row::new(4).rc_all(RcInstr::mov(RcDst::Reg(0), RcSrc::Srf(1)));
        assert_eq!(all.active_slots(), 4);
        assert_eq!(all.srf_accesses(), 4);
    }

    #[test]
    fn program_rejects_empty_and_mismatched_rows() {
        assert!(ColumnProgram::new(vec![]).is_err());
        let rows = vec![Row::new(4), Row::new(3)];
        assert!(ColumnProgram::new(rows).is_err());
    }

    #[test]
    fn config_word_count() {
        let prog = ColumnProgram::new(vec![Row::new(4), exit_row()]).unwrap();
        assert_eq!(prog.config_words(), 2 * 7);
        assert_eq!(prog.len(), 2);
        assert!(!prog.is_empty());
        assert_eq!(prog.rcs_per_column(), 4);
    }

    #[test]
    fn validation_catches_capacity_and_index_errors() {
        let g = Geometry::paper();

        // Too many rows.
        let rows = vec![Row::new(4); 65];
        let prog = ColumnProgram::new(rows).unwrap();
        assert!(matches!(
            prog.validate(&g),
            Err(CoreError::ProgramTooLong { .. })
        ));

        // Branch out of range.
        let prog = ColumnProgram::new(vec![
            Row::new(4).lcu(LcuInstr::Branch {
                cond: LcuCond::Lt,
                a: 0,
                b: crate::isa::lcu::LcuSrc::Imm(1),
                target: 10,
            }),
            exit_row(),
        ])
        .unwrap();
        assert!(matches!(
            prog.validate(&g),
            Err(CoreError::BranchTargetOutOfRange { .. })
        ));

        // SRF index out of range.
        let prog = ColumnProgram::new(vec![
            Row::new(4).rc(0, RcInstr::mov(RcDst::Srf(9), RcSrc::Zero)),
            exit_row(),
        ])
        .unwrap();
        assert!(matches!(
            prog.validate(&g),
            Err(CoreError::SrfIndexOutOfRange { .. })
        ));

        // VWR D does not exist with 3 VWRs.
        let prog = ColumnProgram::new(vec![
            Row::new(4).lsu(LsuInstr::LoadVwr {
                vwr: VwrId::D,
                line: LsuAddr::Imm(0),
            }),
            exit_row(),
        ])
        .unwrap();
        assert!(prog.validate(&g).is_err());

        // SPM line immediate out of range.
        let prog = ColumnProgram::new(vec![
            Row::new(4).lsu(LsuInstr::LoadVwr {
                vwr: VwrId::A,
                line: LsuAddr::Imm(64),
            }),
            exit_row(),
        ])
        .unwrap();
        assert!(matches!(
            prog.validate(&g),
            Err(CoreError::SpmOutOfRange { .. })
        ));

        // A correct small program passes.
        let prog = ColumnProgram::new(vec![
            Row::new(4)
                .lsu(LsuInstr::LoadVwr {
                    vwr: VwrId::A,
                    line: LsuAddr::Imm(0),
                })
                .rc_all(RcInstr::new(
                    RcOpcode::Add,
                    RcDst::Vwr(VwrId::C),
                    RcSrc::Vwr(VwrId::A),
                    RcSrc::Vwr(VwrId::B),
                )),
            exit_row(),
        ])
        .unwrap();
        prog.validate(&g).unwrap();
    }

    #[test]
    fn kernel_program_validation() {
        let g = Geometry::paper();
        let col = ColumnProgram::new(vec![exit_row()]).unwrap();
        let k = KernelProgram::new("k", vec![col.clone(), col.clone()]).unwrap();
        k.validate(&g).unwrap();
        assert_eq!(k.config_words(), 2 * 7);

        let too_many = KernelProgram::new("k", vec![col.clone(), col.clone(), col]).unwrap();
        assert!(matches!(
            too_many.validate(&g),
            Err(CoreError::InvalidColumn { .. })
        ));
        assert!(KernelProgram::new("k", vec![]).is_err());
    }
}
