//! Error type of the VWR2A simulator.

use std::error::Error;
use std::fmt;

/// Errors raised when building programs for, or simulating, the VWR2A array.
///
/// # Example
///
/// ```
/// use vwr2a_core::error::CoreError;
///
/// let err = CoreError::ProgramTooLong { slot: "RC0".into(), len: 90, max: 64 };
/// assert!(err.to_string().contains("RC0"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A slot program exceeds the per-slot program memory (64 words).
    ProgramTooLong {
        /// Which slot (LCU, LSU, MXCU, RC0..RC3).
        slot: String,
        /// Actual instruction count.
        len: usize,
        /// Program memory capacity.
        max: usize,
    },
    /// Slot programs of one column have inconsistent lengths (they share a PC).
    InconsistentProgramLength {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// An SPM access is out of range.
    SpmOutOfRange {
        /// The requested word or line address.
        addr: usize,
        /// The SPM capacity in the same unit.
        capacity: usize,
        /// Whether the address is a line ("line") or word ("word") address.
        unit: &'static str,
    },
    /// A VWR word index is out of range.
    VwrIndexOutOfRange {
        /// The requested word index.
        index: usize,
        /// Number of words per VWR.
        capacity: usize,
    },
    /// An SRF register index is out of range.
    SrfIndexOutOfRange {
        /// The requested register.
        index: usize,
        /// Number of SRF entries.
        capacity: usize,
    },
    /// More than one unit accessed the single-ported SRF in the same cycle.
    SrfPortConflict {
        /// Cycle at which the conflict occurred.
        cycle: u64,
        /// Number of simultaneous accesses.
        accesses: usize,
    },
    /// Two units wrote the same resource in the same cycle.
    WriteConflict {
        /// Cycle at which the conflict occurred.
        cycle: u64,
        /// Description of the contended resource.
        resource: String,
    },
    /// A branch target is outside the program.
    BranchTargetOutOfRange {
        /// The requested target row.
        target: usize,
        /// Program length.
        len: usize,
    },
    /// An undefined label was referenced by the program builder.
    UndefinedLabel {
        /// The label id.
        label: usize,
    },
    /// The kernel did not reach an `EXIT` within the cycle budget.
    CycleLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// A column index outside the array was requested.
    InvalidColumn {
        /// The requested column.
        column: usize,
        /// Number of columns in the array.
        count: usize,
    },
    /// A kernel id not resident in the configuration memory was requested —
    /// either never stored, or stale (its kernel was removed or evicted,
    /// possibly with the slot since reused by a newer kernel).
    UnknownKernel {
        /// The requested slot index.
        slot: usize,
        /// The generation the stale handle was issued for.
        generation: u32,
    },
    /// A program's internal structure is inconsistent (e.g. a builder
    /// branch fixup pointing at a non-branch instruction).
    MalformedProgram {
        /// Human-readable description.
        detail: String,
    },
    /// The configuration memory is full.
    ConfigMemoryFull {
        /// Capacity in configuration words.
        capacity_words: usize,
        /// Words needed by the rejected kernel.
        requested_words: usize,
    },
    /// A DMA transfer is malformed (zero length or out of range).
    InvalidDmaTransfer {
        /// Human-readable description.
        detail: String,
    },
    /// A geometry parameter is unsupported.
    InvalidGeometry {
        /// Human-readable description.
        detail: String,
    },
    /// An instruction field cannot be encoded in the configuration word.
    EncodingOverflow {
        /// Which field overflowed.
        field: &'static str,
        /// The offending value.
        value: i64,
    },
    /// A configuration word does not decode to a valid instruction.
    DecodingError {
        /// The offending configuration word.
        word: u64,
        /// Which slot kind was being decoded.
        slot: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ProgramTooLong { slot, len, max } => {
                write!(f, "program for slot {slot} has {len} words, exceeding the {max}-word program memory")
            }
            CoreError::InconsistentProgramLength { detail } => {
                write!(f, "slot programs have inconsistent lengths: {detail}")
            }
            CoreError::SpmOutOfRange { addr, capacity, unit } => {
                write!(f, "spm {unit} address {addr} out of range (capacity {capacity})")
            }
            CoreError::VwrIndexOutOfRange { index, capacity } => {
                write!(f, "vwr word index {index} out of range (capacity {capacity})")
            }
            CoreError::SrfIndexOutOfRange { index, capacity } => {
                write!(f, "srf register {index} out of range (capacity {capacity})")
            }
            CoreError::SrfPortConflict { cycle, accesses } => {
                write!(f, "srf port conflict at cycle {cycle}: {accesses} simultaneous accesses to a single-ported register file")
            }
            CoreError::WriteConflict { cycle, resource } => {
                write!(f, "write conflict at cycle {cycle} on {resource}")
            }
            CoreError::BranchTargetOutOfRange { target, len } => {
                write!(f, "branch target {target} outside program of length {len}")
            }
            CoreError::UndefinedLabel { label } => write!(f, "undefined label {label}"),
            CoreError::CycleLimitExceeded { limit } => {
                write!(f, "kernel did not exit within {limit} cycles")
            }
            CoreError::InvalidColumn { column, count } => {
                write!(f, "column {column} does not exist (array has {count} columns)")
            }
            CoreError::UnknownKernel { slot, generation } => {
                write!(f, "unknown kernel id {slot}v{generation} (stale or never stored)")
            }
            CoreError::MalformedProgram { detail } => {
                write!(f, "malformed program: {detail}")
            }
            CoreError::ConfigMemoryFull {
                capacity_words,
                requested_words,
            } => write!(
                f,
                "configuration memory full: {requested_words} words requested, capacity {capacity_words}"
            ),
            CoreError::InvalidDmaTransfer { detail } => write!(f, "invalid dma transfer: {detail}"),
            CoreError::InvalidGeometry { detail } => write!(f, "invalid geometry: {detail}"),
            CoreError::EncodingOverflow { field, value } => {
                write!(f, "field {field} value {value} does not fit its encoding")
            }
            CoreError::DecodingError { word, slot } => {
                write!(f, "configuration word {word:#x} does not decode to a valid {slot} instruction")
            }
        }
    }
}

impl Error for CoreError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_fields() {
        let cases: Vec<(CoreError, &str)> = vec![
            (
                CoreError::SpmOutOfRange {
                    addr: 99,
                    capacity: 64,
                    unit: "line",
                },
                "99",
            ),
            (
                CoreError::SrfPortConflict {
                    cycle: 7,
                    accesses: 3,
                },
                "cycle 7",
            ),
            (
                CoreError::UnknownKernel {
                    slot: 5,
                    generation: 2,
                },
                "5v2",
            ),
            (
                CoreError::MalformedProgram {
                    detail: "fixup points at a NOP".into(),
                },
                "fixup",
            ),
            (CoreError::CycleLimitExceeded { limit: 1000 }, "1000"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should contain {needle}"
            );
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<CoreError>();
    }
}
