//! Criterion bench behind Table 2: simulator throughput of the FFT
//! comparison (CPU ISS vs fixed-function engine vs VWR2A).

use criterion::{criterion_group, criterion_main, Criterion};
use vwr2a_bench::run_fft_comparison;

fn bench_fft_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_fft_cycles");
    group.sample_size(10);
    group.bench_function("real_512_all_platforms", |b| {
        b.iter(|| std::hint::black_box(run_fft_comparison(512, true)))
    });
    group.bench_function("complex_512_all_platforms", |b| {
        b.iter(|| std::hint::black_box(run_fft_comparison(512, false)))
    });
    group.finish();
}

criterion_group!(benches, bench_fft_cycles);
criterion_main!(benches);
