//! Criterion bench behind Fig. 2: energy evaluation of the FFT sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use vwr2a_bench::run_fft_comparison;

fn bench_fft_energy(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_fft_energy");
    group.sample_size(10);
    group.bench_function("real_1024_energy", |b| {
        b.iter(|| {
            let row = run_fft_comparison(1024, true);
            let v = row.vwr2a.expect("supported");
            std::hint::black_box(v.energy.total_uj() / row.accel.energy.total_uj())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fft_energy);
criterion_main!(benches);
