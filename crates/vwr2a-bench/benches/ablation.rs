//! Criterion bench behind the ablation experiments (E7 in DESIGN.md).

use criterion::{criterion_group, criterion_main, Criterion};
use vwr2a_core::Vwr2a;
use vwr2a_dsp::fixed::Q15;
use vwr2a_kernels::fir::FirKernel;

fn bench_ablation(c: &mut Criterion) {
    let taps: Vec<i32> = vwr2a_dsp::fir::design_lowpass(11, 0.1)
        .unwrap()
        .iter()
        .map(|&t| Q15::from_f64(t).0 as i32)
        .collect();
    let input: Vec<i32> = (0..512).map(|i| ((i * 97) % 16384) as i32 - 8192).collect();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("fir_512_on_vwr2a", |b| {
        b.iter(|| {
            let kernel = FirKernel::new(&taps, 512).unwrap();
            let mut accel = Vwr2a::new();
            std::hint::black_box(kernel.run(&mut accel, &input).unwrap().cycles)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
