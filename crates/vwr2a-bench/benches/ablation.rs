//! Criterion bench behind the ablation experiments (E7 in DESIGN.md):
//! isolated cold runs vs a warm window stream through one `Session`.

use criterion::{criterion_group, criterion_main, Criterion};
use vwr2a_bench::run_fir_stream;
use vwr2a_dsp::fixed::Q15;
use vwr2a_kernels::fir::FirKernel;
use vwr2a_runtime::Session;

fn bench_ablation(c: &mut Criterion) {
    let taps: Vec<i32> = vwr2a_dsp::fir::design_lowpass(11, 0.1)
        .unwrap()
        .iter()
        .map(|&t| Q15::from_f64(t).0 as i32)
        .collect();
    let input: Vec<i32> = (0..512).map(|i| ((i * 97) % 16384) - 8192).collect();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("fir_512_cold_session", |b| {
        b.iter(|| {
            let kernel = FirKernel::new(&taps, 512).unwrap();
            let mut session = Session::new();
            let (_, report) = session.run(&kernel, input.as_slice()).unwrap();
            std::hint::black_box(report.cycles)
        })
    });
    group.bench_function("fir_256_warm_stream_8_windows", |b| {
        b.iter(|| std::hint::black_box(run_fir_stream(256, 8).cycles))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
