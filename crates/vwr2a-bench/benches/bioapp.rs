//! Criterion bench behind Table 5: the MBioTracker pipeline in its three
//! platform configurations, plus the warm multi-window stream.

use criterion::{criterion_group, criterion_main, Criterion};
use vwr2a_bioapp::pipeline::{
    run_cpu_only, run_cpu_with_fft_accel, run_cpu_with_vwr2a, run_cpu_with_vwr2a_stream, WINDOW,
};
use vwr2a_bioapp::signal::RespirationGenerator;

fn bench_bioapp(c: &mut Criterion) {
    let window = RespirationGenerator::new(7).window(WINDOW);
    let mut group = c.benchmark_group("table5_bioapp");
    group.sample_size(10);
    group.bench_function("cpu_only", |b| {
        b.iter(|| std::hint::black_box(run_cpu_only(&window).unwrap()))
    });
    group.bench_function("cpu_fft_accel", |b| {
        b.iter(|| std::hint::black_box(run_cpu_with_fft_accel(&window).unwrap()))
    });
    group.bench_function("cpu_vwr2a", |b| {
        b.iter(|| std::hint::black_box(run_cpu_with_vwr2a(&window).unwrap()))
    });
    let mut generator = RespirationGenerator::new(13);
    let windows: Vec<Vec<i32>> = (0..4).map(|_| generator.window(WINDOW)).collect();
    group.bench_function("cpu_vwr2a_stream_4_windows", |b| {
        b.iter(|| {
            std::hint::black_box(
                run_cpu_with_vwr2a_stream(windows.iter().map(Vec::as_slice)).unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bioapp);
criterion_main!(benches);
