//! Criterion bench behind Table 4: the FIR kernel comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use vwr2a_bench::run_fir_comparison;

fn bench_fir(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_fir");
    group.sample_size(10);
    for n in [256usize, 512, 1024] {
        group.bench_function(format!("fir_{n}_points"), |b| {
            b.iter(|| std::hint::black_box(run_fir_comparison(n)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fir);
criterion_main!(benches);
