//! Experiment harness regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` reproduces one artefact (see DESIGN.md §5):
//! `table2`, `fig2`, `table3`, `table4`, `table5`, `ulpsrp` and `ablation`;
//! `residency` (configuration-memory pressure and eviction policies) and
//! `streaming` (pipelined-overlap sweep) probe the runtime beyond the
//! paper's tables and run in CI with `--smoke`.
//! The shared measurement functions live here so that the Criterion benches
//! exercise exactly the same code paths as the binaries.  Every VWR2A
//! measurement goes through a fresh [`Session`], matching the paper's
//! isolated-kernel methodology (the configuration load is part of the
//! measured cost exactly once).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vwr2a_dsp::complex::Complex;
use vwr2a_dsp::fixed::{to_q16, Q15};
use vwr2a_energy::{cpu_energy, fft_accel_energy, EnergyBreakdown};
use vwr2a_fftaccel::FftAccelerator;
use vwr2a_kernels::fft::{FftKernel, RealFftKernel};
use vwr2a_kernels::fir::FirKernel;
use vwr2a_kernels::Spectrum;
use vwr2a_runtime::{RunReport, Session};
use vwr2a_soc::cpu::kernels as cpu_kernels;
use vwr2a_soc::soc::BiosignalSoc;

/// The platform clock frequency (80 MHz).
pub const FREQUENCY_HZ: f64 = 80.0e6;

/// Result of one FFT measurement on one platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FftMeasurement {
    /// Cycles for the transform.
    pub cycles: u64,
    /// Energy of the transform.
    pub energy: EnergyBreakdown,
}

impl FftMeasurement {
    fn from_report(report: &RunReport) -> Self {
        Self {
            cycles: report.cycles,
            energy: report.energy(),
        }
    }
}

/// One row of Table 2 / Fig. 2: an FFT size measured on the three platforms.
#[derive(Debug, Clone, PartialEq)]
pub struct FftComparison {
    /// Transform length in points.
    pub n: usize,
    /// `true` for the real-valued flow.
    pub real: bool,
    /// The CPU (CMSIS-like q15) measurement.
    pub cpu: FftMeasurement,
    /// The fixed-function accelerator measurement.
    pub accel: FftMeasurement,
    /// The VWR2A measurement, absent when the mapping does not support the
    /// size (complex 2048 points exceed the 32 KiB SPM without streaming).
    pub vwr2a: Option<FftMeasurement>,
}

fn test_signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            0.35 * (std::f64::consts::TAU * 13.0 * i as f64 / n as f64).sin()
                + 0.2 * (std::f64::consts::TAU * 3.0 * i as f64 / n as f64).cos()
        })
        .collect()
}

/// Measures an FFT of `n` points (complex or real-valued) on the CPU, the
/// fixed-function accelerator and VWR2A.
///
/// # Panics
///
/// Panics if a simulator reports an error for a supported size — that would
/// be a bug in the harness, not an expected runtime condition.
pub fn run_fft_comparison(n: usize, real: bool) -> FftComparison {
    let signal = test_signal(n);

    // --- CPU baseline ---------------------------------------------------
    let mut soc = BiosignalSoc::new();
    let cpu_stats = if real {
        let data: Vec<i32> = signal.iter().map(|&v| Q15::from_f64(v).0 as i32).collect();
        let tw = cpu_kernels::fft::cfft_twiddles_q15(n / 2);
        let split = cpu_kernels::fft::rfft_split_twiddles_q15(n);
        let data_addr = 0;
        let tw_addr = n;
        let split_addr = tw_addr + n / 2;
        let out_addr = split_addr + n + 2;
        soc.sram_mut().load(data_addr, &data).unwrap();
        soc.sram_mut().load(tw_addr, &tw).unwrap();
        soc.sram_mut().load(split_addr, &split).unwrap();
        let program =
            cpu_kernels::rfft_q15_program(n, data_addr, tw_addr, split_addr, out_addr).unwrap();
        soc.run_cpu_program(&program).unwrap()
    } else {
        let data: Vec<i32> = signal
            .iter()
            .flat_map(|&v| [Q15::from_f64(v).0 as i32, 0])
            .collect();
        let tw = cpu_kernels::fft::cfft_twiddles_q15(n);
        soc.sram_mut().load(0, &data).unwrap();
        soc.sram_mut().load(2 * n, &tw).unwrap();
        let program = cpu_kernels::cfft_q15_program(n, 0, 2 * n).unwrap();
        soc.run_cpu_program(&program).unwrap()
    };
    let cpu = FftMeasurement {
        cycles: cpu_stats.cycles,
        energy: cpu_energy(&cpu_stats),
    };

    // --- Fixed-function accelerator --------------------------------------
    let engine = FftAccelerator::new();
    let accel_stats = if real {
        engine.run_real(&signal).unwrap().1
    } else {
        let input: Vec<Complex> = signal.iter().map(|&v| Complex::new(v, 0.0)).collect();
        engine.run_complex(&input).unwrap().1
    };
    let accel = FftMeasurement {
        cycles: accel_stats.cycles,
        energy: fft_accel_energy(&accel_stats),
    };

    // --- VWR2A ------------------------------------------------------------
    let vwr2a = if real {
        RealFftKernel::new(n).ok().map(|kernel| {
            let mut session = Session::new();
            let data: Vec<i32> = signal.iter().map(|&v| to_q16(v)).collect();
            let (_, report) = session.run(&kernel, data.as_slice()).unwrap();
            FftMeasurement::from_report(&report)
        })
    } else {
        FftKernel::new(n).ok().map(|kernel| {
            let mut session = Session::new();
            let re: Vec<i32> = signal.iter().map(|&v| to_q16(v)).collect();
            let im = vec![0i32; n];
            let (_, report) = session.run(&kernel, &Spectrum::new(re, im)).unwrap();
            FftMeasurement::from_report(&report)
        })
    };

    FftComparison {
        n,
        real,
        cpu,
        accel,
        vwr2a,
    }
}

/// One row of Table 4: the FIR kernel on the CPU and on VWR2A.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FirComparison {
    /// Input length in samples.
    pub n: usize,
    /// The CPU measurement.
    pub cpu: FftMeasurement,
    /// The VWR2A measurement.
    pub vwr2a: FftMeasurement,
}

/// Measures the 11-tap FIR filter over `n` points on the CPU and on VWR2A.
///
/// # Panics
///
/// Panics on simulator errors (harness bug).
pub fn run_fir_comparison(n: usize) -> FirComparison {
    let taps_f = vwr2a_dsp::fir::design_lowpass(11, 0.1).unwrap();
    let taps: Vec<i32> = taps_f.iter().map(|&v| Q15::from_f64(v).0 as i32).collect();
    let input: Vec<i32> = test_signal(n)
        .iter()
        .map(|&v| Q15::from_f64(v).0 as i32)
        .collect();

    let mut soc = BiosignalSoc::new();
    soc.sram_mut().load(0, &input).unwrap();
    soc.sram_mut().load(n, &taps).unwrap();
    let program = cpu_kernels::fir_q15_program(n, taps.len(), 0, n, n + 16).unwrap();
    let stats = soc.run_cpu_program(&program).unwrap();
    let cpu = FftMeasurement {
        cycles: stats.cycles,
        energy: cpu_energy(&stats),
    };

    let kernel = FirKernel::new(&taps, n).unwrap();
    let mut session = Session::new();
    let (_, report) = session.run(&kernel, input.as_slice()).unwrap();
    let vwr2a = FftMeasurement::from_report(&report);
    FirComparison { n, cpu, vwr2a }
}

/// Measures the 11-tap FIR filter over a stream of `windows` windows of `n`
/// points each through one [`Session`] (warm steady state), returning the
/// aggregated report.  This is the config-memory-reuse experiment behind
/// the ablation binary.
///
/// # Panics
///
/// Panics on simulator errors (harness bug).
pub fn run_fir_stream(n: usize, windows: usize) -> RunReport {
    let taps_f = vwr2a_dsp::fir::design_lowpass(11, 0.1).unwrap();
    let taps: Vec<i32> = taps_f.iter().map(|&v| Q15::from_f64(v).0 as i32).collect();
    let kernel = FirKernel::new(&taps, n).unwrap();
    let inputs: Vec<Vec<i32>> = (0..windows)
        .map(|w| {
            test_signal(n)
                .iter()
                .map(|&v| Q15::from_f64(v * (1.0 - 0.1 * (w % 3) as f64)).0 as i32)
                .collect()
        })
        .collect();
    let mut session = Session::new();
    let (_, report) = session
        .run_batch(&kernel, inputs.iter().map(Vec::as_slice))
        .unwrap();
    report
}

/// Converts cycles to microseconds at the platform frequency.
pub fn cycles_to_us(cycles: u64) -> f64 {
    vwr2a_core::stats::time_us(cycles, FREQUENCY_HZ)
}

/// Runs `f` and returns its result next to the host wall-clock microseconds
/// it took.  Every bench binary reports this number beside the modelled
/// cycle counts, so simulator-speed regressions are as visible as
/// modelled-cost regressions.
pub fn time_host<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64() * 1e6)
}

/// One measured warm FIR stream for the replay benchmark: the aggregated
/// report and outputs of the measured phase, plus the host microseconds the
/// phase took.
#[derive(Debug, Clone)]
pub struct ReplayMeasurement {
    /// Aggregated report of the measured (all-warm) phase.
    pub report: RunReport,
    /// Outputs of every measured window, for bit-identity checks.
    pub outputs: Vec<Vec<i32>>,
    /// Host wall-clock microseconds of the measured phase.
    pub host_us: f64,
}

/// Streams `windows` warm windows of the 11-tap FIR over `n` points through
/// one [`Session`] with the warm-window replay cache on or off, and measures
/// the host wall-clock of the warm phase.
///
/// One unmeasured warm-up window first pays the cold configuration load
/// (and, with `replay` on, records the trace), so the measured phase is the
/// steady state the replay cache targets: every launch warm, every window's
/// data different.
///
/// # Panics
///
/// Panics on simulator errors (harness bug).
pub fn run_fir_replay_stream(n: usize, windows: usize, replay: bool) -> ReplayMeasurement {
    let taps_f = vwr2a_dsp::fir::design_lowpass(11, 0.1).unwrap();
    let taps: Vec<i32> = taps_f.iter().map(|&v| Q15::from_f64(v).0 as i32).collect();
    let kernel = FirKernel::new(&taps, n).unwrap();
    let signal = test_signal(n);
    let inputs: Vec<Vec<i32>> = (0..windows)
        .map(|w| {
            signal
                .iter()
                .map(|&v| Q15::from_f64(v * (1.0 - 0.1 * (w % 7) as f64)).0 as i32)
                .collect()
        })
        .collect();
    let mut session = Session::new();
    session.set_replay(replay);
    let warmup: Vec<i32> = signal.iter().map(|&v| Q15::from_f64(v).0 as i32).collect();
    session.run(&kernel, warmup.as_slice()).unwrap();
    let ((outputs, report), host_us) = time_host(|| {
        session
            .run_batch(&kernel, inputs.iter().map(Vec::as_slice))
            .unwrap()
    });
    ReplayMeasurement {
        report,
        outputs,
        host_us,
    }
}

/// A seeded SplitMix64 pseudo-random generator.
///
/// The workspace vendors no random-number crate, and the serving benchmark
/// needs reproducible workloads: the same `--seed` must generate the same
/// arrival process on every machine so that CI gates compare like with
/// like.  SplitMix64 (Steele, Lea & Flood 2014) is the standard seeding
/// generator — a 64-bit Weyl sequence pushed through two xor-shift-multiply
/// mixing rounds — small enough to vendor in twenty lines and statistically
/// solid for workload synthesis.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.  Equal seeds yield equal
    /// streams; any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform double in `[0, 1)` built from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero — an empty range has no sample.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below needs a non-empty range");
        // The modulo bias over a 64-bit stream is negligible for the
        // small bounds workload synthesis uses (tenants, kernel picks).
        self.next_u64() % bound
    }

    /// Returns an exponentially distributed sample with the given mean —
    /// the inter-arrival gap of a Poisson process.
    pub fn next_exponential(&mut self, mean: f64) -> f64 {
        // Inverse-CDF sampling; 1 - u keeps the logarithm's argument in
        // (0, 1] so the result is always finite.
        -mean * (1.0 - self.next_f64()).ln()
    }
}

/// Generates `jobs` arrival cycles of a Poisson process with the given mean
/// inter-arrival gap (in cycles), starting at cycle 0.  The returned stamps
/// are non-decreasing, ready to feed the serving layer's admission queue.
pub fn poisson_arrivals(rng: &mut SplitMix64, jobs: usize, mean_gap: f64) -> Vec<u64> {
    let mut at = 0.0f64;
    (0..jobs)
        .map(|_| {
            at += rng.next_exponential(mean_gap);
            at as u64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_comparison_produces_consistent_ordering() {
        let row = run_fft_comparison(512, true);
        assert!(
            row.cpu.cycles > row.accel.cycles,
            "the accelerator must beat the CPU"
        );
        let v = row.vwr2a.expect("real 512 is supported");
        assert!(v.cycles < row.cpu.cycles, "VWR2A must beat the CPU");
        assert!(v.energy.total_uj() < row.cpu.energy.total_uj());
        assert!(v.energy.total_uj() > row.accel.energy.total_uj());
    }

    #[test]
    fn fir_comparison_matches_table4_shape() {
        let row = run_fir_comparison(256);
        let speedup = row.cpu.cycles as f64 / row.vwr2a.cycles as f64;
        assert!(speedup > 5.0, "speed-up {speedup}");
        let savings = 1.0 - row.vwr2a.energy.total_uj() / row.cpu.energy.total_uj();
        assert!(savings > 0.3, "savings {savings}");
    }

    #[test]
    fn unsupported_complex_2048_is_reported_as_none() {
        let row = run_fft_comparison(2048, false);
        assert!(row.vwr2a.is_none());
        assert!(row.cpu.cycles > 100_000);
    }

    #[test]
    fn fir_stream_pipelines_staging_behind_compute() {
        let stream = run_fir_stream(256, 8);
        // The pipelined wall clock must beat both the serial phase sum
        // with interrupts and the classic DMA+compute+DMA cycle total.
        assert!(stream.wall_cycles < stream.serial_cycles());
        assert!(stream.wall_cycles < stream.cycles);
        assert!(
            stream.overlap_ratio() > 0.1,
            "overlap {}",
            stream.overlap_ratio()
        );
        // The work itself is conserved across the overlapped schedule.
        assert_eq!(
            stream.busy.config_load + stream.busy.dma + stream.busy.compute,
            stream.cycles
        );
    }

    #[test]
    fn splitmix_streams_are_deterministic_and_seed_sensitive() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut c = SplitMix64::new(43);
        let (sa, sb, sc): (Vec<u64>, Vec<u64>, Vec<u64>) = (
            (0..8).map(|_| a.next_u64()).collect(),
            (0..8).map(|_| b.next_u64()).collect(),
            (0..8).map(|_| c.next_u64()).collect(),
        );
        assert_eq!(sa, sb, "equal seeds replay the same stream");
        assert_ne!(sa, sc, "different seeds diverge");
        // Reference value of the splitmix64 algorithm for seed 0.
        assert_eq!(SplitMix64::new(0).next_u64(), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn splitmix_floats_and_gaps_stay_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u), "uniform out of range: {u}");
            let gap = rng.next_exponential(500.0);
            assert!(gap.is_finite() && gap >= 0.0, "bad gap: {gap}");
            assert!(rng.next_below(6) < 6);
        }
    }

    #[test]
    fn poisson_arrivals_are_monotone_and_reproducible() {
        let stamps = poisson_arrivals(&mut SplitMix64::new(11), 64, 800.0);
        assert_eq!(stamps.len(), 64);
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
        let replay = poisson_arrivals(&mut SplitMix64::new(11), 64, 800.0);
        assert_eq!(stamps, replay, "seeded process replays exactly");
        // The empirical mean gap lands near the requested one.
        let mean = *stamps.last().unwrap() as f64 / 64.0;
        assert!((400.0..1600.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn fir_stream_amortises_the_configuration_load() {
        let stream = run_fir_stream(256, 8);
        assert_eq!(stream.invocations, 8);
        assert_eq!(stream.cold_launches, 1);
        let single = run_fir_comparison(256).vwr2a;
        // Eight warm windows must cost less than eight isolated cold runs.
        assert!(
            stream.cycles < 8 * single.cycles,
            "stream {} vs 8x cold {}",
            stream.cycles,
            8 * single.cycles
        );
    }
}
