//! Heterogeneous fleet sweep: an FFT-heavy Poisson stream with tiny FIR
//! crumbs served by 2 CGRA arrays + the fixed-function FFT engine + the
//! Cortex-M4 host, against a 3-array CGRA-only baseline.
//!
//! The workload is the routing problem of Sec. 2's SoC in miniature: about
//! half the arrivals are 256-point complex FFT jobs — the engine's home
//! turf (roughly 3 k engine cycles vs 5–7 k on an array, with zero
//! configuration streaming) — and the rest are one-window FIR crumbs whose
//! taps differ job to job, so on a CGRA they keep paying configuration
//! reloads out of a constrained config memory, while the host CPU runs
//! them from plain SRAM with no reload at all.  Both fleets serve the
//! identical arrival-stamped stream through the admission queue (FIFO +
//! stealing) with the cost-aware placement doing the per-job routing.
//!
//! The point the sweep makes: a *device count* is not a *capability mix*.
//! The baseline has more arrays, but every job — FFT or crumb — competes
//! for the same kind of silicon; the heterogeneous fleet is smaller yet
//! finishes the wave earlier because each job lands on the backend whose
//! cost model actually favours it.  Outputs stay bit-identical to each
//! landed backend's own serial model, checked per recorded route.
//!
//! Every fleet row also reports its measured energy (µJ, priced from the
//! per-backend activity counters) and energy-delay product, and the same
//! heterogeneous fleet is served twice more — once under
//! [`Objective::Cycles`] and once under [`Objective::EnergyDelayProduct`],
//! with run queues deep enough that the objective (not the depth-full
//! spill fallback) routes every job, and stealing off — to isolate what
//! the energy knob buys on the identical stream: the EDP objective keeps
//! queueing FFT jobs behind the ~10×-cheaper engine where the cycles
//! objective spills them onto the arrays the moment the engine backlog
//! grows.
//!
//! Run with `--smoke` for the fast CI configuration and `--seed N` to
//! re-seed the arrival process.  In every mode the binary *fails fast*
//! (non-zero exit) if the heterogeneous fleet does not finish the headline
//! stream in strictly fewer wall cycles *and* a strictly lower energy-delay
//! product than the arrays-only baseline, if the EDP objective does not
//! strictly cut the measured joules versus cycles-only placement, if any
//! output diverges from the landed backend's model, or if the engine and
//! the CPU both sat idle (no job routed off the arrays).
//!
//! `--windows K` multiplies every job's window count by `K` — a host-side
//! soak knob.  The arrival gap scales with `K`, so a soak serves the same
//! relative workload and every fleet-comparison gate runs at every `K`
//! (they used to be skipped for `K != 1`).  Host wall-clock per served
//! window is reported next to the modelled numbers.

use vwr2a_bench::{poisson_arrivals, time_host, SplitMix64};
use vwr2a_core::geometry::Geometry;
use vwr2a_dsp::fir::design_lowpass;
use vwr2a_dsp::fixed::Q15;
use vwr2a_fftaccel::{FftAccelStats, FftAccelerator};
use vwr2a_kernels::fft::FftKernel;
use vwr2a_kernels::fir::FirKernel;
use vwr2a_kernels::Spectrum;
use vwr2a_runtime::pool::Pool;
use vwr2a_runtime::testing::constrained_sessions;
use vwr2a_runtime::{
    BackendKind, CostAware, CpuBackend, FftBackend, Fifo, FleetReport, Kernel, LaunchCtx,
    Objective, Offload, Resources, RuntimeError, ServeJob, ServeReport, Server,
};
use vwr2a_soc::cpu::Cpu;
use vwr2a_soc::sram::Sram;

/// Complex FFT length of the heavy jobs.
const FFT_POINTS: usize = 256;
/// Sample count of the tiny FIR crumbs.
const CRUMB_SAMPLES: usize = 48;
/// Distinct crumb tap sets: each is its own resident program on a CGRA.
const CRUMB_VARIANTS: usize = 6;

/// One palette entry: either an FFT stage or a FIR crumb, wrapped so a
/// single serve wave can mix both shapes (the runtime is generic over one
/// kernel type per wave).
enum MixKernel {
    Fft(FftKernel),
    Fir(FirKernel),
}

/// One window of the mixed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
enum MixWindow {
    Spectrum(Spectrum),
    Samples(Vec<i32>),
}

/// One output of the mixed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
enum MixOutput {
    Spectrum(Spectrum),
    Samples(Vec<i32>),
}

fn shape_mismatch(kernel: &MixKernel) -> RuntimeError {
    RuntimeError::invalid_input(format!(
        "window shape does not match the {} kernel",
        kernel.name()
    ))
}

impl Kernel for MixKernel {
    type Input = MixWindow;
    type Output = MixOutput;

    fn name(&self) -> &str {
        match self {
            MixKernel::Fft(k) => k.name(),
            MixKernel::Fir(k) => k.name(),
        }
    }

    fn cache_key(&self) -> String {
        match self {
            MixKernel::Fft(k) => k.cache_key(),
            MixKernel::Fir(k) => k.cache_key(),
        }
    }

    fn resources(&self) -> Resources {
        match self {
            MixKernel::Fft(k) => k.resources(),
            MixKernel::Fir(k) => k.resources(),
        }
    }

    fn program(&self, geometry: &Geometry) -> vwr2a_runtime::Result<vwr2a_core::KernelProgram> {
        match self {
            MixKernel::Fft(k) => k.program(geometry),
            MixKernel::Fir(k) => k.program(geometry),
        }
    }

    fn execute(
        &self,
        ctx: &mut LaunchCtx<'_>,
        input: &MixWindow,
    ) -> vwr2a_runtime::Result<MixOutput> {
        match (self, input) {
            (MixKernel::Fft(k), MixWindow::Spectrum(s)) => {
                k.execute(ctx, s).map(MixOutput::Spectrum)
            }
            (MixKernel::Fir(k), MixWindow::Samples(v)) => k.execute(ctx, v).map(MixOutput::Samples),
            _ => Err(shape_mismatch(self)),
        }
    }

    fn offload(&self) -> Offload {
        match self {
            MixKernel::Fft(k) => k.offload(),
            MixKernel::Fir(k) => k.offload(),
        }
    }

    fn execute_fft(
        &self,
        accel: &FftAccelerator,
        input: &MixWindow,
    ) -> vwr2a_runtime::Result<(MixOutput, FftAccelStats)> {
        match (self, input) {
            (MixKernel::Fft(k), MixWindow::Spectrum(s)) => k
                .execute_fft(accel, s)
                .map(|(out, stats)| (MixOutput::Spectrum(out), stats)),
            _ => Err(shape_mismatch(self)),
        }
    }

    fn execute_cpu(
        &self,
        cpu: &mut Cpu,
        sram: &mut Sram,
        input: &MixWindow,
    ) -> vwr2a_runtime::Result<(MixOutput, vwr2a_soc::cpu::CpuRunStats)> {
        match (self, input) {
            (MixKernel::Fir(k), MixWindow::Samples(v)) => k
                .execute_cpu(cpu, sram, v)
                .map(|(out, stats)| (MixOutput::Samples(out), stats)),
            _ => Err(shape_mismatch(self)),
        }
    }
}

/// The kernel palette: one shared FFT stage plus `CRUMB_VARIANTS` FIR
/// crumbs with distinct baked-in taps (= distinct resident programs).
fn palette() -> Vec<MixKernel> {
    let mut kernels = vec![MixKernel::Fft(
        FftKernel::new(FFT_POINTS).expect("supported FFT length"),
    )];
    for k in 0..CRUMB_VARIANTS {
        let taps: Vec<i32> = design_lowpass(11, 0.06 + 0.05 * k as f64)
            .expect("valid filter design")
            .iter()
            .map(|&v| Q15::from_f64(v).0 as i32)
            .collect();
        kernels.push(MixKernel::Fir(
            FirKernel::new(&taps, CRUMB_SAMPLES).expect("valid kernel"),
        ));
    }
    kernels
}

fn spectrum_window(i: usize) -> Spectrum {
    let re = (0..FFT_POINTS)
        .map(|s| (9000.0 * ((s + 17 * i) as f64 * 0.131).cos()) as i32)
        .collect();
    let im = (0..FFT_POINTS)
        .map(|s| (7000.0 * ((s + 29 * i) as f64 * 0.093).sin()) as i32)
        .collect();
    Spectrum::new(re, im)
}

fn crumb_window(i: usize) -> Vec<i32> {
    (0..CRUMB_SAMPLES)
        .map(|s| (5500.0 * ((s + 41 * i) as f64 * 0.117).sin()) as i32)
        .collect()
}

/// One synthesised job of the arrival stream.
struct JobSpec {
    pick: usize,
    windows: Vec<MixWindow>,
    arrival: u64,
}

/// Synthesises the seeded Poisson stream: ~half heavy FFT jobs (1–2
/// windows), half one-window FIR crumbs cycling through the tap variants.
/// `wscale` multiplies every job's window count (the `--windows` knob).
fn workload(seed: u64, jobs: usize, mean_gap: f64, wscale: usize) -> Vec<JobSpec> {
    let mut rng = SplitMix64::new(seed);
    let arrivals = poisson_arrivals(&mut rng, jobs, mean_gap);
    arrivals
        .into_iter()
        .enumerate()
        .map(|(j, arrival)| {
            if rng.next_below(2) == 0 {
                let count = (1 + rng.next_below(2) as usize) * wscale;
                JobSpec {
                    pick: 0,
                    windows: (0..count)
                        .map(|w| MixWindow::Spectrum(spectrum_window(j + 7 * w)))
                        .collect(),
                    arrival,
                }
            } else {
                JobSpec {
                    pick: 1 + rng.next_below(CRUMB_VARIANTS as u64) as usize,
                    windows: (0..wscale)
                        .map(|w| MixWindow::Samples(crumb_window(j + 11 * w)))
                        .collect(),
                    arrival,
                }
            }
        })
        .collect()
}

/// Configuration-memory capacity: the FFT stage plus two crumb programs.
/// The crumb working set ( `CRUMB_VARIANTS` programs) deliberately does not
/// fit next to the resident FFT stage, so arrays keep paying reloads for
/// the crumbs — the cost the CPU backend never has.
fn config_capacity(kernels: &[MixKernel]) -> usize {
    let words = |k: &MixKernel| {
        k.program(&Geometry::paper())
            .expect("program builds")
            .config_words()
    };
    words(&kernels[0]) + 2 * words(&kernels[1])
}

/// Serves the stream on one fleet and checks every output against the
/// landed backend's own serial model.
fn serve_on(
    pool: Pool,
    stealing: bool,
    depth: usize,
    specs: &[JobSpec],
    kernels: &[MixKernel],
) -> ServeReport {
    let mut server = Server::new(pool)
        .with_policy(Fifo)
        .with_stealing(stealing)
        .with_depth(depth);
    let (outputs, report) = server
        .run_batch(specs.iter().map(|s| ServeJob {
            kernel: &kernels[s.pick],
            windows: s.windows.iter(),
            tenant: 0,
            arrival_cycle: s.arrival,
            priority: 0,
            deadline_cycle: None,
        }))
        .expect("serving runs");
    check_routes(&outputs, &report.fleet, specs, kernels);
    report
}

/// Per-route bit-identity: array-landed jobs against the serial
/// single-session reference, engine- and CPU-landed jobs against a fresh
/// run of the kernel's own backend model.
fn check_routes(
    outputs: &[Vec<MixOutput>],
    fleet: &FleetReport,
    specs: &[JobSpec],
    kernels: &[MixKernel],
) {
    let (serial, _) =
        Pool::run_serial_reference(specs.iter().map(|s| (&kernels[s.pick], s.windows.iter())))
            .expect("serial reference runs");
    assert_eq!(fleet.routes.len(), specs.len(), "one route per job");
    for route in &fleet.routes {
        let spec = &specs[route.job];
        let kernel = &kernels[spec.pick];
        let expected: Vec<MixOutput> = match route.kind {
            BackendKind::Array => serial[route.job].clone(),
            BackendKind::FftAccel => spec
                .windows
                .iter()
                .map(|w| {
                    kernel
                        .execute_fft(&FftAccelerator::new(), w)
                        .expect("the engine accepts every routed window")
                        .0
                })
                .collect(),
            BackendKind::Cpu => spec
                .windows
                .iter()
                .map(|w| {
                    kernel
                        .execute_cpu(&mut Cpu::new(), &mut Sram::paper(), w)
                        .expect("the CPU accepts every routed window")
                        .0
                })
                .collect(),
        };
        assert_eq!(
            outputs[route.job], expected,
            "job {} diverged from its landed backend's model",
            route.job
        );
    }
}

/// Run-queue depth of the placement-objective comparison pair.  Deep
/// enough that no backend's queue fills on the 24-job stream: every job
/// is routed by the [`Objective`] under test, never by the depth-full
/// least-projected fallback (which is objective-blind and would launder
/// the comparison through identical spill decisions).
const OBJECTIVE_DEPTH: usize = 12;

/// One sweep cell: the same stream on both fleets, plus the heterogeneous
/// fleet served twice more — once per placement objective, with deep run
/// queues and no stealing — to isolate what the energy knob changes.
struct Cell {
    seed: u64,
    /// Windows pushed through the admission queue across the four fleet
    /// configurations (the host-speed denominator).
    windows_served: u64,
    hetero: ServeReport,
    baseline: ServeReport,
    /// The heterogeneous fleet under [`Objective::Cycles`], deep queues,
    /// no stealing — the comparison baseline for the energy gate.
    obj_cycles: ServeReport,
    /// The same fleet and serving configuration under
    /// [`Objective::EnergyDelayProduct`].
    obj_edp: ServeReport,
}

fn hetero_pool(capacity: usize) -> Pool {
    Pool::with_sessions(constrained_sessions(2, capacity))
        .expect("constrained sessions share one geometry")
        .with_backend(FftBackend::new())
        .with_backend(CpuBackend::new())
}

fn run_cell(seed: u64, jobs: usize, mean_gap: f64, wscale: usize) -> Cell {
    let kernels = palette();
    let specs = workload(seed, jobs, mean_gap, wscale);
    let windows_served = 4 * specs.iter().map(|s| s.windows.len() as u64).sum::<u64>();
    let capacity = config_capacity(&kernels);
    let baseline_pool = Pool::with_sessions(constrained_sessions(3, capacity))
        .expect("constrained sessions share one geometry");
    let objective_run = |objective: Objective| {
        serve_on(
            hetero_pool(capacity).with_placement(CostAware::with_objective(objective)),
            false,
            OBJECTIVE_DEPTH,
            &specs,
            &kernels,
        )
    };
    Cell {
        seed,
        windows_served,
        hetero: serve_on(hetero_pool(capacity), true, 2, &specs, &kernels),
        baseline: serve_on(baseline_pool, true, 2, &specs, &kernels),
        obj_cycles: objective_run(Objective::Cycles),
        obj_edp: objective_run(Objective::EnergyDelayProduct),
    }
}

/// Energy-delay product of a served fleet, in exact nJ x cycles.
fn edp(report: &ServeReport) -> u128 {
    u128::from(report.fleet.energy_nj()) * u128::from(report.fleet.wall_cycles())
}

fn print_fleet(label: &str, report: &ServeReport) {
    print!("  {label:<26}");
    for row in report.fleet.per_kind() {
        print!(
            "  {}:{} jobs={:<2} inv={:<2}",
            row.kind.label(),
            row.backends,
            row.jobs,
            row.invocations
        );
    }
    println!(
        "  cold={:<2} wall={}  energy={:.2} uJ  edp={:.1} uJ*Mcyc",
        report.fleet.cold_reloads(),
        report.fleet.wall_cycles(),
        report.fleet.energy_uj(),
        edp(report) as f64 / 1e9,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(22);
    let wscale: usize = args
        .iter()
        .position(|a| a == "--windows")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .expect("--windows takes a window-count multiplier")
        })
        .unwrap_or(1);

    // The headline cell CI gates on; the full sweep adds two more seeds to
    // show the win is not one lucky arrival pattern.  The arrival gap
    // scales with the window multiplier so a soak run serves the same
    // relative workload and every comparison gate still applies.
    let (jobs, mean_gap) = (24, 400.0 * wscale as f64);
    let (cells, host_us): (Vec<Cell>, f64) = time_host(|| {
        if smoke {
            vec![run_cell(seed, jobs, mean_gap, wscale)]
        } else {
            vec![
                run_cell(seed, jobs, mean_gap, wscale),
                run_cell(seed + 1, jobs, mean_gap, wscale),
                run_cell(seed + 2, jobs, mean_gap, wscale),
            ]
        }
    });

    println!(
        "Heterogeneous fleet sweep: {jobs} Poisson-arrival jobs per cell (mean gap {mean_gap} \
         cycles),"
    );
    println!(
        "~50% {FFT_POINTS}-pt complex FFT jobs + ~50% {CRUMB_SAMPLES}-sample FIR crumbs across \
         {CRUMB_VARIANTS} tap variants,"
    );
    println!("FIFO + stealing, cost-aware placement, constrained per-array config memories.");
    println!();
    for cell in &cells {
        println!("seed {}:", cell.seed);
        print_fleet("2 arrays + fft + cpu", &cell.hetero);
        print_fleet("3 arrays (baseline)", &cell.baseline);
        print_fleet("objective=cycles (deep q)", &cell.obj_cycles);
        print_fleet("objective=edp    (deep q)", &cell.obj_edp);
        let speedup = 100.0
            * (1.0
                - cell.hetero.fleet.wall_cycles() as f64
                    / cell.baseline.fleet.wall_cycles().max(1) as f64);
        println!("  wall-cycle win: {speedup:+.1}% vs the arrays-only baseline");
        let joule_win = 100.0
            * (1.0 - cell.obj_edp.fleet.energy_uj() / cell.obj_cycles.fleet.energy_uj().max(1e-9));
        println!("  energy win of the edp objective: {joule_win:+.1}% vs cycles-only placement");
        println!();
    }
    println!("Outputs are bit-identical to each landed backend's own serial model in every");
    println!("cell; routing moves where a job runs — never what it computes.");

    let windows_served: u64 = cells.iter().map(|c| c.windows_served).sum();
    println!();
    println!(
        "Host time: {:.0} us for {windows_served} served windows ({:.1} us/window, \
         window scale x{wscale}).",
        host_us,
        host_us / windows_served as f64,
    );
    if wscale == 1 {
        println!(
            "For a million-window soak (not run in CI), try: hetero --windows 20000 \
             (~{:.1}M served windows)",
            20_000.0 * windows_served as f64 / 1e6,
        );
    }

    // Fail-fast gates: the heterogeneous fleet must strictly beat the
    // bigger arrays-only baseline on the headline stream, and the win must
    // actually come from heterogeneity (some job left the arrays).  The
    // workload scales with `--windows` (window counts and the arrival gap
    // together), so the same comparisons hold at every soak scale and run
    // unconditionally — they used to be skipped for scaled runs.
    let mut failures = Vec::new();
    for cell in &cells {
        if cell.hetero.fleet.wall_cycles() >= cell.baseline.fleet.wall_cycles() {
            failures.push(format!(
                "seed {}: heterogeneous wall {} not strictly below arrays-only {}",
                cell.seed,
                cell.hetero.fleet.wall_cycles(),
                cell.baseline.fleet.wall_cycles()
            ));
        }
        let offloaded: u64 = cell
            .hetero
            .fleet
            .per_kind()
            .iter()
            .filter(|row| row.kind != BackendKind::Array)
            .map(|row| row.jobs)
            .sum();
        if offloaded == 0 {
            failures.push(format!(
                "seed {}: no job routed to the engine or the CPU",
                cell.seed
            ));
        }
        // Energy gates: measured joules come from the per-backend activity
        // counters, so the capability mix must also win on energy-delay
        // product, and switching the placement objective to EDP must
        // strictly cut the measured total joules of the same stream.
        if edp(&cell.hetero) >= edp(&cell.baseline) {
            failures.push(format!(
                "seed {}: heterogeneous EDP {} not strictly below arrays-only {}",
                cell.seed,
                edp(&cell.hetero),
                edp(&cell.baseline)
            ));
        }
        if cell.obj_edp.fleet.energy_nj() >= cell.obj_cycles.fleet.energy_nj() {
            failures.push(format!(
                "seed {}: edp-objective energy {} nJ not strictly below cycles-objective {} nJ",
                cell.seed,
                cell.obj_edp.fleet.energy_nj(),
                cell.obj_cycles.fleet.energy_nj()
            ));
        }
    }
    if !failures.is_empty() {
        eprintln!();
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }
}
