//! Regenerates Table 5: biosignal application performance and energy
//! comparison (MBioTracker).

use vwr2a_bioapp::pipeline::{run_cpu_only, run_cpu_with_fft_accel, run_cpu_with_vwr2a, WINDOW};
use vwr2a_bioapp::signal::RespirationGenerator;

fn main() {
    let host = std::time::Instant::now();
    let window = RespirationGenerator::new(2024).window(WINDOW);
    let cpu = run_cpu_only(&window).expect("CPU pipeline");
    let accel = run_cpu_with_fft_accel(&window).expect("CPU+FFT pipeline");
    let vwr2a = run_cpu_with_vwr2a(&window).expect("CPU+VWR2A pipeline");

    println!("Table 5: biosignal application performance and energy comparison");
    println!();
    println!(
        "{:<22} {:>12} {:>14} {:>9} {:>14} {:>9}",
        "Cycles", "CPU", "CPU+FFT", "savings", "CPU+VWR2A", "savings"
    );
    for step in ["preprocessing", "delineation", "feature extraction"] {
        let c = cpu.step_cycles(step);
        let a = accel.step_cycles(step);
        let v = vwr2a.step_cycles(step);
        println!(
            "{:<22} {:>12} {:>14} {:>8.1}% {:>14} {:>8.1}%",
            step,
            c,
            a,
            (1.0 - a as f64 / c as f64) * 100.0,
            v,
            (1.0 - v as f64 / c as f64) * 100.0
        );
    }
    println!(
        "{:<22} {:>12} {:>14} {:>8.1}% {:>14} {:>8.1}%",
        "Total",
        cpu.total_cycles(),
        accel.total_cycles(),
        (1.0 - accel.total_cycles() as f64 / cpu.total_cycles() as f64) * 100.0,
        vwr2a.total_cycles(),
        (1.0 - vwr2a.total_cycles() as f64 / cpu.total_cycles() as f64) * 100.0
    );
    println!();
    println!(
        "{:<22} {:>12} {:>14} {:>9} {:>14} {:>9}",
        "Energy (µJ)", "CPU", "CPU+FFT", "savings", "CPU+VWR2A", "savings"
    );
    for (i, step) in ["preprocessing", "delineation", "feature extraction"]
        .iter()
        .enumerate()
    {
        let c = cpu.steps[i].energy.total_uj();
        let a = accel.steps[i].energy.total_uj();
        let v = vwr2a.steps[i].energy.total_uj();
        println!(
            "{:<22} {:>12.2} {:>14.2} {:>8.1}% {:>14.2} {:>8.1}%",
            step,
            c,
            a,
            (1.0 - a / c) * 100.0,
            v,
            (1.0 - v / c) * 100.0
        );
    }
    println!(
        "{:<22} {:>12.2} {:>14.2} {:>8.1}% {:>14.2} {:>8.1}%",
        "Total",
        cpu.total_energy_uj(),
        accel.total_energy_uj(),
        (1.0 - accel.total_energy_uj() / cpu.total_energy_uj()) * 100.0,
        vwr2a.total_energy_uj(),
        (1.0 - vwr2a.total_energy_uj() / cpu.total_energy_uj()) * 100.0
    );
    println!();
    println!("Note: delineation runs on the CPU in every configuration of this reproduction");
    println!("(the paper also maps it onto VWR2A; see EXPERIMENTS.md).");
    println!(
        "Predictions: CPU {}, CPU+FFT {}, CPU+VWR2A {}",
        cpu.prediction, accel.prediction, vwr2a.prediction
    );
    println!();
    println!(
        "Host time: {:.0} us (modelled cycles above are simulator output)",
        host.elapsed().as_secs_f64() * 1e6
    );
}
