//! Regenerates Table 3: power breakdown while executing a 512-point
//! real-valued FFT.

use vwr2a_bench::{run_fft_comparison, FREQUENCY_HZ};
use vwr2a_energy::EnergyBreakdown;

fn print_column(name: &str, energy: &EnergyBreakdown, cycles: u64) {
    let shares = energy.shares();
    let total_mw = energy.power_mw(cycles, FREQUENCY_HZ);
    println!("{name}");
    println!(
        "  {:<10} {:>10.4} mW {:>5.0} %",
        "DMA",
        total_mw * shares.dma,
        shares.dma * 100.0
    );
    println!(
        "  {:<10} {:>10.4} mW {:>5.0} %",
        "Memories",
        total_mw * shares.memories,
        shares.memories * 100.0
    );
    println!(
        "  {:<10} {:>10.4} mW {:>5.0} %",
        "Control",
        total_mw * shares.control,
        shares.control * 100.0
    );
    println!(
        "  {:<10} {:>10.4} mW {:>5.0} %",
        "Datapath",
        total_mw * shares.datapath,
        shares.datapath * 100.0
    );
    println!("  {:<10} {:>10.4} mW   100 %", "Total", total_mw);
}

fn main() {
    let host = std::time::Instant::now();
    println!("Table 3: FFT accelerator and VWR2A power breakdown (512-point real-valued FFT)");
    println!();
    let row = run_fft_comparison(512, true);
    print_column("FFT ACCEL", &row.accel.energy, row.accel.cycles);
    println!();
    let v = row.vwr2a.expect("real 512-point FFT is supported on VWR2A");
    print_column("VWR2A", &v.energy, v.cycles);
    println!();
    let ratio = v.energy.power_mw(v.cycles, FREQUENCY_HZ)
        / row.accel.energy.power_mw(row.accel.cycles, FREQUENCY_HZ);
    println!("Total power ratio VWR2A / FFT ACCEL: {ratio:.1} (paper: 5.5)");
    println!();
    println!(
        "Host time: {:.0} us (modelled cycles above are simulator output)",
        host.elapsed().as_secs_f64() * 1e6
    );
}
