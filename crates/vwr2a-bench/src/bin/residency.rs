//! Configuration-memory residency sweep: how the cold-reload rate and the
//! cycle overhead grow as the configuration memory shrinks below the
//! working set of distinct kernel programs.
//!
//! The workload interleaves four 11-tap FIR kernels with different baked-in
//! taps — four distinct configuration-memory programs of equal size — over
//! a fixed window stream.  A `Session` with the default LRU policy evicts
//! cold programs instead of failing, so every capacity completes the same
//! workload with bit-identical outputs; what changes is how often a launch
//! has to re-stream configuration words (`cold / launches`) and the cycles
//! that costs.

use vwr2a_core::geometry::Geometry;
use vwr2a_core::Vwr2a;
use vwr2a_dsp::fir::design_lowpass;
use vwr2a_dsp::fixed::Q15;
use vwr2a_kernels::fir::FirKernel;
use vwr2a_runtime::{Kernel, RunReport, Session};

const N: usize = 256;
const INVOCATIONS: usize = 64;

fn kernels() -> Vec<FirKernel> {
    [0.08, 0.12, 0.2, 0.3]
        .iter()
        .map(|&fc| {
            let taps: Vec<i32> = design_lowpass(11, fc)
                .expect("valid filter design")
                .iter()
                .map(|&v| Q15::from_f64(v).0 as i32)
                .collect();
            FirKernel::new(&taps, N).expect("valid kernel")
        })
        .collect()
}

fn window(i: usize) -> Vec<i32> {
    (0..N)
        .map(|s| (5000.0 * ((s + 17 * i) as f64 * 0.19).sin()) as i32)
        .collect()
}

/// Runs the mixed workload on a session whose configuration memory holds
/// `capacity_words` words, returning the aggregated report.
fn run_workload(kernels: &[FirKernel], capacity_words: usize) -> RunReport {
    let mut geometry = Geometry::paper();
    geometry.config_words = capacity_words;
    let accel = Vwr2a::with_geometry(geometry).expect("valid geometry");
    let mut session = Session::with_accelerator(accel);
    let mut total = RunReport::new("fir-mixed");
    for i in 0..INVOCATIONS {
        let kernel = &kernels[i % kernels.len()];
        let (_, report) = session
            .run(kernel, window(i).as_slice())
            .expect("eviction must absorb capacity pressure");
        total.absorb(&report);
    }
    total
}

fn main() {
    let kernels = kernels();
    let program_words = kernels[0]
        .program(&Geometry::paper())
        .expect("program builds")
        .config_words();
    let working_set = kernels.len() * program_words;

    println!(
        "Residency sweep: {INVOCATIONS} invocations over {} distinct FIR programs",
        kernels.len()
    );
    println!("({program_words} configuration words per program, {working_set}-word working set)");
    println!();
    println!("  capacity   resident  evictions  cold  warm  cold-rate  cycles     vs. roomy");
    println!("  ---------  --------  ---------  ----  ----  ---------  ---------  ---------");

    let roomy_capacity = Geometry::paper().config_words;
    let capacities: Vec<usize> = (1..=kernels.len())
        .map(|k| k * program_words)
        .chain([roomy_capacity])
        .collect();
    let roomy = run_workload(&kernels, roomy_capacity);
    for &capacity in &capacities {
        let report = if capacity == roomy_capacity {
            roomy.clone()
        } else {
            run_workload(&kernels, capacity)
        };
        let cold_rate = report.cold_launches as f64 / report.launches() as f64;
        let overhead = report.cycles as f64 / roomy.cycles as f64 - 1.0;
        println!(
            "  {:>9}  {:>8}  {:>9}  {:>4}  {:>4}  {:>8.1}%  {:>9}  {:>+8.2}%",
            capacity,
            capacity / program_words,
            report.evictions,
            report.cold_launches,
            report.warm_launches,
            100.0 * cold_rate,
            report.cycles,
            100.0 * overhead,
        );
    }
    println!();
    println!("Every row computes bit-identical outputs; smaller configuration memories");
    println!("only pay more cold configuration-word streaming after LRU evictions.");
}
