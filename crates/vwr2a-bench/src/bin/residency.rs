//! Configuration-memory residency sweep: how the cold-reload rate and the
//! cycle overhead grow as the configuration memory shrinks below the
//! working set of distinct kernel programs — and how the eviction policy
//! changes the bill on a mixed-size working set.
//!
//! Part 1 interleaves four 11-tap FIR kernels with different baked-in
//! taps — four distinct configuration-memory programs of equal size — over
//! a fixed window stream.  A `Session` with the default LRU policy evicts
//! cold programs instead of failing, so every capacity completes the same
//! workload with bit-identical outputs; what changes is how often a launch
//! has to re-stream configuration words (`cold / launches`) and the cycles
//! that costs.
//!
//! Part 2 compares `LruPolicy`, `LfuPolicy`, `SizeAwareLru` and the
//! adaptive `ArcPolicy` on a working set that mixes three small (3-tap)
//! programs with two large (11-tap) ones under pressure: the size-aware
//! policy prefers evicting one large coldish program over cascading
//! through the small warm ones, and the frequency-aware policy protects
//! the hot small working set from rarely-launched interlopers that
//! recency alone would keep.
//!
//! Part 3 is the adaptive policy's home turf: one continuous workload
//! that *changes character* halfway — a recency-heavy drift phase (the
//! working set keeps moving, so recency wins and launch counts mislead)
//! followed by a frequency-heavy serving phase (a hot pair launched
//! between streams of one-shot interlopers, so launch counts win and
//! recency misleads).  Every static policy is wrong in one of the two
//! phases; `ArcPolicy` watches its ghost lists and moves its
//! recency/frequency balance across the change.  The binary *fails fast*
//! (non-zero exit) if ArcPolicy pays more cold launches than the best
//! static policy on the mixed working set, or is not strictly better
//! than every static policy on the phase-change workload.
//!
//! Run with `--smoke` for the fast CI configuration.

use vwr2a_core::geometry::Geometry;
use vwr2a_core::Vwr2a;
use vwr2a_dsp::fir::design_lowpass;
use vwr2a_dsp::fixed::Q15;
use vwr2a_kernels::fir::FirKernel;
use vwr2a_runtime::{
    ArcPolicy, EvictionPolicy, Kernel, LfuPolicy, LruPolicy, RunReport, Session, SizeAwareLru,
};

const N: usize = 256;

fn fir(taps: usize, fc: f64) -> FirKernel {
    let taps: Vec<i32> = design_lowpass(taps, fc)
        .expect("valid filter design")
        .iter()
        .map(|&v| Q15::from_f64(v).0 as i32)
        .collect();
    FirKernel::new(&taps, N).expect("valid kernel")
}

fn kernels() -> Vec<FirKernel> {
    [0.08, 0.12, 0.2, 0.3]
        .iter()
        .map(|&fc| fir(11, fc))
        .collect()
}

fn window(i: usize) -> Vec<i32> {
    (0..N)
        .map(|s| (5000.0 * ((s + 17 * i) as f64 * 0.19).sin()) as i32)
        .collect()
}

fn program_words(kernel: &FirKernel) -> usize {
    kernel
        .program(&Geometry::paper())
        .expect("program builds")
        .config_words()
}

/// Runs `invocations` windows over `pick`-selected kernels on a session
/// whose configuration memory holds `capacity_words` words, returning the
/// aggregated report.
fn run_workload(
    kernels: &[FirKernel],
    capacity_words: usize,
    policy: impl EvictionPolicy + 'static,
    invocations: usize,
    pick: impl Fn(usize) -> usize,
) -> RunReport {
    let mut geometry = Geometry::paper();
    geometry.config_words = capacity_words;
    let accel = Vwr2a::with_geometry(geometry).expect("valid geometry");
    let mut session = Session::with_policy(accel, policy);
    let mut total = RunReport::new("fir-mixed");
    for i in 0..invocations {
        let kernel = &kernels[pick(i)];
        let (_, report) = session
            .run(kernel, window(i).as_slice())
            .expect("eviction must absorb capacity pressure");
        total.absorb(&report);
    }
    total
}

fn capacity_sweep(invocations: usize) {
    let kernels = kernels();
    let program_words = program_words(&kernels[0]);
    let working_set = kernels.len() * program_words;

    println!(
        "Residency sweep: {invocations} invocations over {} distinct FIR programs",
        kernels.len()
    );
    println!("({program_words} configuration words per program, {working_set}-word working set)");
    println!();
    println!("  capacity   resident  evictions  cold  warm  cold-rate  cycles     vs. roomy");
    println!("  ---------  --------  ---------  ----  ----  ---------  ---------  ---------");

    let roomy_capacity = Geometry::paper().config_words;
    let capacities: Vec<usize> = (1..=kernels.len())
        .map(|k| k * program_words)
        .chain([roomy_capacity])
        .collect();
    let pick = |i: usize| i % kernels.len();
    let roomy = run_workload(&kernels, roomy_capacity, LruPolicy, invocations, pick);
    for &capacity in &capacities {
        let report = if capacity == roomy_capacity {
            roomy.clone()
        } else {
            run_workload(&kernels, capacity, LruPolicy, invocations, pick)
        };
        let cold_rate = report.cold_launches as f64 / report.launches() as f64;
        let overhead = report.cycles as f64 / roomy.cycles as f64 - 1.0;
        println!(
            "  {:>9}  {:>8}  {:>9}  {:>4}  {:>4}  {:>8.1}%  {:>9}  {:>+8.2}%",
            capacity,
            capacity / program_words,
            report.evictions,
            report.cold_launches,
            report.warm_launches,
            100.0 * cold_rate,
            report.cycles,
            100.0 * overhead,
        );
    }
    println!();
    println!("Every row computes bit-identical outputs; smaller configuration memories");
    println!("only pay more cold configuration-word streaming after LRU evictions.");
}

/// Cold-launch counts of part 2, returned so `main` can gate on them.
struct PolicyColds {
    lru: u64,
    lfu: u64,
    size_aware: u64,
    arc: u64,
}

fn policy_comparison(invocations: usize) -> PolicyColds {
    // Three small programs — one touched rarely (once per 16), two hot —
    // plus two large programs that alternate.  When a large program
    // returns, the recency order ranks a hot small program oldest (its
    // next launch is imminent), so pure LRU evicts it and pays a cold
    // reload every cycle.  The frequency-aware policy sees the launch
    // counts and sacrifices the rare small program and the cold large one
    // instead, keeping the hot working set resident; the size-aware
    // policy attacks the same cascade from the size axis, preferring one
    // large eviction over several small ones.
    let mixed: Vec<FirKernel> = vec![
        fir(3, 0.08),  // s0: hot (head of the cycle, oldest at evictions)
        fir(3, 0.15),  // s1: hot
        fir(3, 0.25),  // s2: rare interloper, recent when evictions hit
        fir(11, 0.1),  // L1
        fir(11, 0.22), // L2
    ];
    let small = program_words(&mixed[0]);
    let large = program_words(&mixed[3]);
    // All three small programs plus one large program fit; the second
    // large program forces evictions.
    let capacity = 3 * small + large;
    let pick = |i: usize| match i % 16 {
        0 | 7 | 8 | 13 | 15 => 0,
        3 | 11 => 3,
        5 => 2,
        6 | 14 => 4,
        _ => 1,
    };

    println!();
    println!(
        "Eviction-policy comparison: 3 small ({small}-word) + 2 large ({large}-word) programs"
    );
    println!("in a {capacity}-word configuration memory, {invocations} invocations");
    println!();
    println!("  policy        evictions  cold  warm  cold-rate  cycles");
    println!("  ------------  ---------  ----  ----  ---------  ---------");
    let lru = run_workload(&mixed, capacity, LruPolicy, invocations, pick);
    let lfu = run_workload(&mixed, capacity, LfuPolicy, invocations, pick);
    let size_aware = run_workload(&mixed, capacity, SizeAwareLru, invocations, pick);
    let arc = run_workload(&mixed, capacity, ArcPolicy::new(), invocations, pick);
    for (name, report) in [
        ("LruPolicy", &lru),
        ("LfuPolicy", &lfu),
        ("SizeAwareLru", &size_aware),
        ("ArcPolicy", &arc),
    ] {
        println!(
            "  {:<12}  {:>9}  {:>4}  {:>4}  {:>8.1}%  {:>9}",
            name,
            report.evictions,
            report.cold_launches,
            report.warm_launches,
            100.0 * report.cold_launches as f64 / report.launches() as f64,
            report.cycles,
        );
    }
    println!();
    println!("SizeAwareLru spends one eviction on the large coldish program instead of");
    println!("cascading through the small warm working set; LfuPolicy protects the");
    println!("frequently-launched programs from recent-but-rare interlopers; ArcPolicy");
    println!("learns the same protection online from its ghost lists.");
    PolicyColds {
        lru: lru.cold_launches,
        lfu: lfu.cold_launches,
        size_aware: size_aware.cold_launches,
        arc: arc.cold_launches,
    }
}

/// The phase-change workload: a recency-heavy drift phase, then a
/// frequency-heavy serving phase, as one continuous launch schedule over
/// equal-size programs in a three-program configuration memory.
///
/// * Drift phase: a stale-but-frequent anchor program (many early
///   launches, never used again) followed by a working set of three
///   programs that is replayed once and then *moves on*.  Recency is the
///   truth here: LRU drops the anchor and serves the drift warm; a
///   frequency-first policy keeps the anchor resident and cascades cold
///   through every drift program.
/// * Serving phase: a hot pair launched between pairs of one-shot
///   interlopers.  Launch counts are the truth here: LFU drops the spent
///   interlopers and keeps the pair warm; a recency-first policy sees the
///   pair as oldest at every interloper load and cascades cold through
///   the hot set.
///
/// Each static policy is right in one phase and wrong in the other;
/// ArcPolicy pays a couple of adaptation reloads at each transition (the
/// ghost-list hits that move its balance) and beats every static policy
/// on the total.
fn phase_change() -> Vec<(&'static str, RunReport)> {
    // 21 equal-size 11-tap programs: 0 = anchor, 1..=6 = drift sets,
    // 7..=8 = the hot pair, 9.. = one-shot interlopers.
    let kernels: Vec<FirKernel> = (0..21).map(|k| fir(11, 0.04 + 0.02 * k as f64)).collect();
    let words = program_words(&kernels[0]);
    let capacity = 3 * words;

    let mut schedule: Vec<usize> = Vec::new();
    schedule.extend([0; 6]); // the anchor earns its launch count
    schedule.extend([1, 2, 3, 1, 2, 3]); // drift: replayed once, then gone
    schedule.extend([4, 5, 6, 4, 5, 6]);
    schedule.extend([7, 8, 7, 8]); // the hot pair earns its launch count
    for j in 0..6 {
        // Two fresh interlopers, then the pair again.
        schedule.extend([9 + 2 * j, 10 + 2 * j, 7, 8]);
    }

    let invocations = schedule.len();
    let pick = move |i: usize| schedule[i];
    println!();
    println!(
        "Phase change: {invocations} invocations over {} equal-size ({words}-word) programs",
        kernels.len()
    );
    println!("in a {capacity}-word (3-program) memory: drift phase (recency wins), then hot pair");
    println!("+ one-shot interlopers (frequency wins)");
    println!();
    println!("  policy        evictions  cold  warm  cold-rate  cycles");
    println!("  ------------  ---------  ----  ----  ---------  ---------");
    let rows = vec![
        (
            "LruPolicy",
            run_workload(&kernels, capacity, LruPolicy, invocations, &pick),
        ),
        (
            "LfuPolicy",
            run_workload(&kernels, capacity, LfuPolicy, invocations, &pick),
        ),
        (
            "SizeAwareLru",
            run_workload(&kernels, capacity, SizeAwareLru, invocations, &pick),
        ),
        (
            "ArcPolicy",
            run_workload(&kernels, capacity, ArcPolicy::new(), invocations, &pick),
        ),
    ];
    for (name, report) in &rows {
        println!(
            "  {:<12}  {:>9}  {:>4}  {:>4}  {:>8.1}%  {:>9}",
            name,
            report.evictions,
            report.cold_launches,
            report.warm_launches,
            100.0 * report.cold_launches as f64 / report.launches() as f64,
            report.cycles,
        );
    }
    println!();
    println!("LRU wins the drift and loses the serving phase; LFU the reverse.  ArcPolicy");
    println!("re-balances at the transition and pays the fewest cold launches overall.");
    rows
}

fn main() {
    let host = std::time::Instant::now();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let invocations = if smoke { 16 } else { 64 };
    capacity_sweep(invocations);
    let mixed = policy_comparison(invocations);
    let phased = phase_change();
    println!();
    println!(
        "Host time: {:.0} us (modelled cycles above are simulator output)",
        host.elapsed().as_secs_f64() * 1e6
    );

    // Fail-fast gates for the adaptive policy: never worse than the best
    // static policy on the mixed working set, strictly better than every
    // static policy across the phase change.
    let mut failures = Vec::new();
    let best_static = mixed.lru.min(mixed.lfu).min(mixed.size_aware);
    if mixed.arc > best_static {
        failures.push(format!(
            "mixed working set: ArcPolicy cold launches {} worse than best static {}",
            mixed.arc, best_static
        ));
    }
    let arc_phased = phased
        .iter()
        .find(|(name, _)| *name == "ArcPolicy")
        .expect("ArcPolicy row present")
        .1
        .cold_launches;
    for (name, report) in &phased {
        if *name != "ArcPolicy" && arc_phased >= report.cold_launches {
            failures.push(format!(
                "phase change: ArcPolicy cold launches {arc_phased} not strictly below \
                 {name}'s {}",
                report.cold_launches
            ));
        }
    }
    if !failures.is_empty() {
        eprintln!();
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }
}
