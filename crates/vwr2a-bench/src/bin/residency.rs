//! Configuration-memory residency sweep: how the cold-reload rate and the
//! cycle overhead grow as the configuration memory shrinks below the
//! working set of distinct kernel programs — and how the eviction policy
//! changes the bill on a mixed-size working set.
//!
//! Part 1 interleaves four 11-tap FIR kernels with different baked-in
//! taps — four distinct configuration-memory programs of equal size — over
//! a fixed window stream.  A `Session` with the default LRU policy evicts
//! cold programs instead of failing, so every capacity completes the same
//! workload with bit-identical outputs; what changes is how often a launch
//! has to re-stream configuration words (`cold / launches`) and the cycles
//! that costs.
//!
//! Part 2 compares `LruPolicy` against `SizeAwareLru` on a working set
//! that mixes three small (3-tap) programs with one large (11-tap) one
//! under pressure: the size-aware policy prefers evicting the one large
//! coldish program over cascading through the small warm ones.
//!
//! Run with `--smoke` for the fast CI configuration.

use vwr2a_core::geometry::Geometry;
use vwr2a_core::Vwr2a;
use vwr2a_dsp::fir::design_lowpass;
use vwr2a_dsp::fixed::Q15;
use vwr2a_kernels::fir::FirKernel;
use vwr2a_runtime::{EvictionPolicy, Kernel, LruPolicy, RunReport, Session, SizeAwareLru};

const N: usize = 256;

fn fir(taps: usize, fc: f64) -> FirKernel {
    let taps: Vec<i32> = design_lowpass(taps, fc)
        .expect("valid filter design")
        .iter()
        .map(|&v| Q15::from_f64(v).0 as i32)
        .collect();
    FirKernel::new(&taps, N).expect("valid kernel")
}

fn kernels() -> Vec<FirKernel> {
    [0.08, 0.12, 0.2, 0.3]
        .iter()
        .map(|&fc| fir(11, fc))
        .collect()
}

fn window(i: usize) -> Vec<i32> {
    (0..N)
        .map(|s| (5000.0 * ((s + 17 * i) as f64 * 0.19).sin()) as i32)
        .collect()
}

fn program_words(kernel: &FirKernel) -> usize {
    kernel
        .program(&Geometry::paper())
        .expect("program builds")
        .config_words()
}

/// Runs `invocations` windows over `pick`-selected kernels on a session
/// whose configuration memory holds `capacity_words` words, returning the
/// aggregated report.
fn run_workload(
    kernels: &[FirKernel],
    capacity_words: usize,
    policy: impl EvictionPolicy + 'static,
    invocations: usize,
    pick: impl Fn(usize) -> usize,
) -> RunReport {
    let mut geometry = Geometry::paper();
    geometry.config_words = capacity_words;
    let accel = Vwr2a::with_geometry(geometry).expect("valid geometry");
    let mut session = Session::with_policy(accel, policy);
    let mut total = RunReport::new("fir-mixed");
    for i in 0..invocations {
        let kernel = &kernels[pick(i)];
        let (_, report) = session
            .run(kernel, window(i).as_slice())
            .expect("eviction must absorb capacity pressure");
        total.absorb(&report);
    }
    total
}

fn capacity_sweep(invocations: usize) {
    let kernels = kernels();
    let program_words = program_words(&kernels[0]);
    let working_set = kernels.len() * program_words;

    println!(
        "Residency sweep: {invocations} invocations over {} distinct FIR programs",
        kernels.len()
    );
    println!("({program_words} configuration words per program, {working_set}-word working set)");
    println!();
    println!("  capacity   resident  evictions  cold  warm  cold-rate  cycles     vs. roomy");
    println!("  ---------  --------  ---------  ----  ----  ---------  ---------  ---------");

    let roomy_capacity = Geometry::paper().config_words;
    let capacities: Vec<usize> = (1..=kernels.len())
        .map(|k| k * program_words)
        .chain([roomy_capacity])
        .collect();
    let pick = |i: usize| i % kernels.len();
    let roomy = run_workload(&kernels, roomy_capacity, LruPolicy, invocations, pick);
    for &capacity in &capacities {
        let report = if capacity == roomy_capacity {
            roomy.clone()
        } else {
            run_workload(&kernels, capacity, LruPolicy, invocations, pick)
        };
        let cold_rate = report.cold_launches as f64 / report.launches() as f64;
        let overhead = report.cycles as f64 / roomy.cycles as f64 - 1.0;
        println!(
            "  {:>9}  {:>8}  {:>9}  {:>4}  {:>4}  {:>8.1}%  {:>9}  {:>+8.2}%",
            capacity,
            capacity / program_words,
            report.evictions,
            report.cold_launches,
            report.warm_launches,
            100.0 * cold_rate,
            report.cycles,
            100.0 * overhead,
        );
    }
    println!();
    println!("Every row computes bit-identical outputs; smaller configuration memories");
    println!("only pay more cold configuration-word streaming after LRU evictions.");
}

fn policy_comparison(invocations: usize) {
    // Three small programs — one touched rarely, two hot — plus two large
    // programs that alternate.  When a large program returns, the LRU
    // victim is the rarely-used small program, which frees too few words:
    // pure LRU flushes it *and* the old large program, while the
    // size-aware policy spends its single eviction on the large one and
    // keeps the small working set resident.
    let mixed: Vec<FirKernel> = vec![
        fir(3, 0.08),  // s0: touched once per cycle
        fir(3, 0.15),  // s1: hot
        fir(3, 0.25),  // s2: hot
        fir(11, 0.1),  // L1
        fir(11, 0.22), // L2
    ];
    let small = program_words(&mixed[0]);
    let large = program_words(&mixed[3]);
    // All three small programs plus one large program fit; the second
    // large program forces evictions.
    let capacity = 3 * small + large;
    let pick = |i: usize| match i % 8 {
        0 => 0,
        3 => 3,
        6 => 4,
        2 | 5 => 2,
        _ => 1,
    };

    println!();
    println!(
        "Eviction-policy comparison: 3 small ({small}-word) + 2 large ({large}-word) programs"
    );
    println!("in a {capacity}-word configuration memory, {invocations} invocations");
    println!();
    println!("  policy        evictions  cold  warm  cold-rate  cycles");
    println!("  ------------  ---------  ----  ----  ---------  ---------");
    let lru = run_workload(&mixed, capacity, LruPolicy, invocations, pick);
    let size_aware = run_workload(&mixed, capacity, SizeAwareLru, invocations, pick);
    for (name, report) in [("LruPolicy", &lru), ("SizeAwareLru", &size_aware)] {
        println!(
            "  {:<12}  {:>9}  {:>4}  {:>4}  {:>8.1}%  {:>9}",
            name,
            report.evictions,
            report.cold_launches,
            report.warm_launches,
            100.0 * report.cold_launches as f64 / report.launches() as f64,
            report.cycles,
        );
    }
    println!();
    println!("SizeAwareLru spends one eviction on the large coldish program instead of");
    println!("cascading through the small warm working set.");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let invocations = if smoke { 16 } else { 64 };
    capacity_sweep(invocations);
    policy_comparison(invocations);
}
