//! Regenerates Table 4: FIR filter kernel performance and energy comparison.

use vwr2a_bench::run_fir_comparison;

fn main() {
    let host = std::time::Instant::now();
    println!("Table 4: FIR filter (11 taps) performance and energy comparison");
    println!();
    println!(
        "{:<10} {:>12} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "", "CPU cyc", "CPU µJ", "VWR2A cyc", "VWR2A µJ", "speed-up", "savings"
    );
    for n in [256usize, 512, 1024] {
        let row = run_fir_comparison(n);
        let speedup = row.cpu.cycles as f64 / row.vwr2a.cycles as f64;
        let savings = (1.0 - row.vwr2a.energy.total_uj() / row.cpu.energy.total_uj()) * 100.0;
        println!(
            "{:<10} {:>12} {:>10.2} {:>12} {:>10.2} {:>9.1}x {:>9.1}%",
            format!("{n} pts"),
            row.cpu.cycles,
            row.cpu.energy.total_uj(),
            row.vwr2a.cycles,
            row.vwr2a.energy.total_uj(),
            speedup,
            savings
        );
    }
    println!();
    println!("(paper: 13.4–16.1x speed-up, 69.9–72.4 % energy savings)");
    println!();
    println!(
        "Host time: {:.0} us (modelled cycles above are simulator output)",
        host.elapsed().as_secs_f64() * 1e6
    );
}
