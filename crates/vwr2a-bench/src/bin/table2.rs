//! Regenerates Table 2: FFT kernel performance comparison for various sizes.

use vwr2a_bench::run_fft_comparison;

fn main() {
    let host = std::time::Instant::now();
    println!("Table 2: FFT kernel performance comparison for various sizes");
    println!("(cycles; speed-ups relative to the CPU)");
    println!();
    println!(
        "{:<18} {:>12} {:>12} {:>9} {:>12} {:>9}",
        "", "CPU", "FFT ACCEL", "speed-up", "VWR2A", "speed-up"
    );
    for (label, real) in [("Complex-valued", false), ("Real-valued", true)] {
        println!("{label}");
        for n in [512usize, 1024, 2048] {
            let row = run_fft_comparison(n, real);
            let accel_speedup = row.cpu.cycles as f64 / row.accel.cycles as f64;
            match row.vwr2a {
                Some(v) => println!(
                    "{:<18} {:>12} {:>12} {:>8.1}x {:>12} {:>8.1}x",
                    n,
                    row.cpu.cycles,
                    row.accel.cycles,
                    accel_speedup,
                    v.cycles,
                    row.cpu.cycles as f64 / v.cycles as f64
                ),
                None => println!(
                    "{:<18} {:>12} {:>12} {:>8.1}x {:>12} {:>9}",
                    n, row.cpu.cycles, row.accel.cycles, accel_speedup, "n/a*", ""
                ),
            }
        }
    }
    println!();
    println!(
        "* the 2048-point complex working set (data + ping-pong buffer) exceeds the 32 KiB SPM;"
    );
    println!("  see EXPERIMENTS.md for the discussion of this mapping limit.");
    println!();
    println!(
        "Host time: {:.0} us (modelled cycles above are simulator output)",
        host.elapsed().as_secs_f64() * 1e6
    );
}
