//! Online serving sweep: a multi-tenant Poisson arrival stream served by
//! the admission queue under every scheduling policy, with and without
//! work stealing.
//!
//! The workload is a seeded Poisson process: a *chatty* batch tenant
//! submits long multi-window FIR jobs with no deadlines while three
//! *interactive* tenants submit short jobs that must finish within a
//! fixed slack of their arrival.  Every job is arrival-stamped, admitted
//! by the [`Server`], dispatched by the scheduling policy under test and
//! placed by the pool's cost-aware strategy; the table reports p50/p95/p99
//! end-to-end latency, deadline misses, steals, measured fleet energy and
//! the fleet occupancy for seven configurations: FIFO with and without
//! stealing, earliest-deadline-first, weighted-fair with and without
//! stealing, weighted-fair + stealing placed by
//! [`Objective::EnergyUnderDeadline`] (minimise joules among the backends
//! whose projected completion still meets the deadline), and weighted-fair
//! with stealing and the whole-queue lookahead planner (affinity batching,
//! pipelined prefetch, needed-soon eviction shielding) over ARC adaptive
//! eviction.
//!
//! The point the sweep makes: *who* is dispatched next decides whether a
//! deadline holds, and *where* decides whether the tail waits.  FIFO lets
//! the chatty tenant's backlog starve the interactive jobs queued behind
//! it; weighted fair queueing caps the chatty tenant at its fair share so
//! interactive jobs keep their deadlines, and the stealing pass re-routes
//! queued jobs away from drifted-ahead arrays, which is what pulls the
//! p99 tail in.  Outputs are bit-identical to serial single-session
//! execution in every configuration — scheduling moves *when and where*,
//! never *what*.
//!
//! Run with `--smoke` for the fast CI configuration and `--seed N` to
//! re-seed the arrival process.  In every mode the binary *fails fast*
//! (non-zero exit) if any configuration's outputs diverge from the serial
//! reference, if the headline 4-array × 6-kernel cell does not show
//! weighted-fair + stealing meeting strictly more deadlines *and* a
//! strictly lower p99 than FIFO without stealing, if lookahead planning +
//! ARC does not show a strictly lower p99 *and* strictly fewer cold
//! reloads (with at least as many hidden) than plain weighted-fair +
//! stealing, or if the energy-under-deadline objective misses more
//! deadlines than the same policy placed on cycles in any cell.
//!
//! `--windows K` multiplies every job's window count by `K` — a host-side
//! soak knob.  The arrival gap and deadline slack scale with `K`, so the
//! soak serves the same relative workload and every comparison gate runs
//! at every `K` (they used to be skipped for `K != 1`).  Host wall-clock
//! per served window is reported next to the modelled numbers.

use vwr2a_bench::{poisson_arrivals, time_host, SplitMix64};
use vwr2a_core::geometry::Geometry;
use vwr2a_dsp::fir::design_lowpass;
use vwr2a_dsp::fixed::Q15;
use vwr2a_kernels::fir::FirKernel;
use vwr2a_runtime::pool::Pool;
use vwr2a_runtime::testing::constrained_sessions;
use vwr2a_runtime::{
    ArcPolicy, CostAware, EarliestDeadlineFirst, Fifo, Kernel, Objective, SchedPolicy, ServeJob,
    ServeReport, Server, WeightedFair,
};

const N: usize = 256;
/// The chatty batch tenant; tenants 1..=3 are interactive.
const CHATTY: u32 = 0;

fn fir(cutoff: f64) -> FirKernel {
    let taps: Vec<i32> = design_lowpass(11, cutoff)
        .expect("valid filter design")
        .iter()
        .map(|&v| Q15::from_f64(v).0 as i32)
        .collect();
    FirKernel::new(&taps, N).expect("valid kernel")
}

fn kernels(mix: usize) -> Vec<FirKernel> {
    (0..mix).map(|k| fir(0.05 + 0.04 * k as f64)).collect()
}

fn window(i: usize) -> Vec<i32> {
    (0..N)
        .map(|s| (5500.0 * ((s + 31 * i) as f64 * 0.117).sin()) as i32)
        .collect()
}

/// One synthesised job of the arrival stream (policy-independent, so all
/// five configurations serve the identical workload).
struct JobSpec {
    pick: usize,
    windows: Vec<Vec<i32>>,
    tenant: u32,
    arrival: u64,
    priority: u8,
    deadline: Option<u64>,
}

/// Synthesises the seeded Poisson workload: ~40 % of arrivals belong to
/// the chatty tenant (long, deadline-free), the rest to the interactive
/// tenants (short, deadlined at `arrival + slack`).  `wscale` multiplies
/// every job's window count (the `--windows` soak knob).
fn workload(
    seed: u64,
    jobs: usize,
    mix: usize,
    mean_gap: f64,
    slack: u64,
    wscale: usize,
) -> Vec<JobSpec> {
    let mut rng = SplitMix64::new(seed);
    let arrivals = poisson_arrivals(&mut rng, jobs, mean_gap);
    arrivals
        .into_iter()
        .enumerate()
        .map(|(j, arrival)| {
            let chatty = rng.next_below(5) < 2;
            let (tenant, windows, priority, deadline) = if chatty {
                let count = 4 + rng.next_below(4) as usize;
                (CHATTY, count, 0, None)
            } else {
                (1 + rng.next_below(3) as u32, 1, 1, Some(arrival + slack))
            };
            JobSpec {
                pick: rng.next_below(mix as u64) as usize,
                windows: (0..windows * wscale).map(|w| window(j + 13 * w)).collect(),
                tenant,
                arrival,
                priority,
                deadline,
            }
        })
        .collect()
}

/// Serves the workload under one policy/stealing configuration and checks
/// the outputs against the serial reference.  With `plan` the server runs
/// the whole-queue lookahead planner (affinity batching, pipelined
/// prefetch, needed-soon eviction shielding) and every array session
/// evicts by the adaptive [`ArcPolicy`] instead of plain LRU.
#[allow(clippy::too_many_arguments)]
fn serve_run(
    arrays: usize,
    policy: impl SchedPolicy + 'static,
    stealing: bool,
    objective: Objective,
    plan: bool,
    specs: &[JobSpec],
    kernels: &[FirKernel],
    serial: &[Vec<Vec<i32>>],
) -> ServeReport {
    let program_words = kernels[0]
        .program(&Geometry::paper())
        .expect("program builds")
        .config_words();
    // Two resident programs per array: the six-program working set fits
    // the fleet, not a single array, so placement and prefetch matter.
    let mut sessions = constrained_sessions(arrays, 2 * program_words);
    if plan {
        for session in &mut sessions {
            session.set_eviction_policy(ArcPolicy::new());
        }
    }
    let pool = Pool::with_sessions(sessions)
        .expect("constrained sessions share one geometry")
        .with_placement(CostAware::with_objective(objective));
    let mut server = Server::new(pool)
        .with_policy(policy)
        .with_stealing(stealing)
        .with_lookahead(plan);
    let (outputs, report) = server
        .run_batch(specs.iter().map(|s| ServeJob {
            kernel: &kernels[s.pick],
            windows: s.windows.iter().map(Vec::as_slice),
            tenant: s.tenant,
            arrival_cycle: s.arrival,
            priority: s.priority,
            deadline_cycle: s.deadline,
        }))
        .expect("serving runs");
    assert_eq!(
        &outputs, serial,
        "served outputs must be bit-identical to the serial reference"
    );
    report
}

/// One sweep cell: the six configurations on the same arrival stream.
struct Cell {
    arrays: usize,
    mix: usize,
    /// Windows pushed through the admission queue across the six
    /// configurations (the host-speed denominator).
    windows_served: u64,
    fifo: ServeReport,
    fifo_steal: ServeReport,
    edf_steal: ServeReport,
    wf: ServeReport,
    wf_steal: ServeReport,
    /// Weighted-fair + stealing again, but placed by
    /// [`Objective::EnergyUnderDeadline`]: minimise joules among the
    /// backends that still meet the job's deadline.
    wf_steal_eud: ServeReport,
    /// Weighted-fair + stealing with the whole-queue lookahead planner
    /// and ARC adaptive eviction — the PR 10 configuration the headline
    /// gate compares against plain weighted-fair + stealing.
    wf_steal_plan: ServeReport,
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    arrays: usize,
    mix: usize,
    jobs: usize,
    seed: u64,
    mean_gap: f64,
    slack: u64,
    wscale: usize,
) -> Cell {
    let kernels = kernels(mix);
    let specs = workload(seed, jobs, mix, mean_gap, slack, wscale);
    let windows_served = 7 * specs.iter().map(|s| s.windows.len() as u64).sum::<u64>();
    let (serial, _) = Pool::run_serial_reference(
        specs
            .iter()
            .map(|s| (&kernels[s.pick], s.windows.iter().map(Vec::as_slice))),
    )
    .expect("serial reference runs");
    let run = |policy: &str, stealing: bool, objective: Objective, plan: bool| match policy {
        "fifo" => serve_run(
            arrays, Fifo, stealing, objective, plan, &specs, &kernels, &serial,
        ),
        "edf" => serve_run(
            arrays,
            EarliestDeadlineFirst,
            stealing,
            objective,
            plan,
            &specs,
            &kernels,
            &serial,
        ),
        _ => serve_run(
            arrays,
            WeightedFair::new(),
            stealing,
            objective,
            plan,
            &specs,
            &kernels,
            &serial,
        ),
    };
    Cell {
        arrays,
        mix,
        windows_served,
        fifo: run("fifo", false, Objective::Cycles, false),
        fifo_steal: run("fifo", true, Objective::Cycles, false),
        edf_steal: run("edf", true, Objective::Cycles, false),
        wf: run("wf", false, Objective::Cycles, false),
        wf_steal: run("wf", true, Objective::Cycles, false),
        wf_steal_eud: run("wf", true, Objective::EnergyUnderDeadline, false),
        wf_steal_plan: run("wf", true, Objective::Cycles, true),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(22);
    let wscale: usize = args
        .iter()
        .position(|a| a == "--windows")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .expect("--windows takes a window-count multiplier")
        })
        .unwrap_or(1);

    // The headline cell: 4 arrays x 6 kernels under the seeded Poisson
    // stream.  Smoke mode runs only this cell (it is what CI gates on);
    // the full sweep adds smaller fleets for the table.  The arrival gap
    // and the deadline slack scale with the window multiplier, so a
    // `--windows K` soak serves the same *relative* workload — K-times
    // longer jobs arriving K-times slower with K-times the slack — and
    // the policy-comparison gates below stay valid at every K instead of
    // being skipped.
    let (jobs, mean_gap, slack) = (32, 200.0 * wscale as f64, 9_000 * wscale as u64);
    let (cells, host_us): (Vec<Cell>, f64) = time_host(|| {
        if smoke {
            vec![run_cell(4, 6, jobs, seed, mean_gap, slack, wscale)]
        } else {
            vec![
                run_cell(2, 4, jobs, seed, mean_gap, slack, wscale),
                run_cell(2, 6, jobs, seed, mean_gap, slack, wscale),
                run_cell(4, 6, jobs, seed, mean_gap, slack, wscale),
            ]
        }
    });

    println!(
        "Serving sweep: {jobs} Poisson-arrival jobs (seed {seed}, mean gap {mean_gap} cycles), \
         1 chatty + 3 interactive tenants,"
    );
    println!(
        "interactive deadline = arrival + {slack} cycles, 2-program configuration memories per \
         array"
    );
    println!();
    println!(
        "  arrays  mix  policy          steal      p50      p95      p99  met/ddl  steals  \
         energy"
    );
    println!(
        "  ------  ---  --------------  -----  -------  -------  -------  -------  ------  \
         ------"
    );
    for cell in &cells {
        for (name, stealing, report) in [
            ("fifo", false, &cell.fifo),
            ("fifo", true, &cell.fifo_steal),
            ("edf", true, &cell.edf_steal),
            ("weighted-fair", false, &cell.wf),
            ("weighted-fair", true, &cell.wf_steal),
            ("wf energy-ddl", true, &cell.wf_steal_eud),
            ("wf lookahead", true, &cell.wf_steal_plan),
        ] {
            let deadlined = report
                .latencies
                .iter()
                .filter(|l| l.tenant != CHATTY)
                .count() as u64;
            println!(
                "  {:>6}  {:>3}  {:<14}  {:<5}  {:>7}  {:>7}  {:>7}  {:>4}/{:<2}  {:>6}  {:>4.2} uJ",
                cell.arrays,
                cell.mix,
                name,
                if stealing { "yes" } else { "no" },
                report.p50(),
                report.p95(),
                report.p99(),
                deadlined - report.deadline_misses(),
                deadlined,
                report.steals,
                report.fleet.energy_uj(),
            );
        }
    }

    println!();
    println!("Weighted-fair + stealing vs FIFO without stealing:");
    for cell in &cells {
        let (fifo, wf) = (&cell.fifo, &cell.wf_steal);
        let p99_delta = 100.0 * (1.0 - wf.p99() as f64 / fifo.p99().max(1) as f64);
        println!(
            "  {} array(s), {}-kernel mix: misses {} -> {}, p99 {} -> {} ({p99_delta:+.1}%), \
             {} steal(s)",
            cell.arrays,
            cell.mix,
            fifo.deadline_misses(),
            wf.deadline_misses(),
            fifo.p99(),
            wf.p99(),
            wf.steals,
        );
    }
    println!();
    println!("Lookahead planner + ARC eviction vs weighted-fair + stealing:");
    for cell in &cells {
        let (wf, plan) = (&cell.wf_steal, &cell.wf_steal_plan);
        let p99_delta = 100.0 * (1.0 - plan.p99() as f64 / wf.p99().max(1) as f64);
        println!(
            "  {} array(s), {}-kernel mix: p99 {} -> {} ({p99_delta:+.1}%), cold reloads \
             {} -> {}, hidden {} -> {}",
            cell.arrays,
            cell.mix,
            wf.p99(),
            plan.p99(),
            wf.fleet.cold_reloads(),
            plan.fleet.cold_reloads(),
            wf.fleet.hidden_reloads(),
            plan.fleet.hidden_reloads(),
        );
        println!("    plan: {}", plan.plan);
    }
    println!();
    println!("Outputs are bit-identical to serial single-session execution in every cell;");
    println!("the policy decides who runs next, stealing where — never what.");

    let windows_served: u64 = cells.iter().map(|c| c.windows_served).sum();
    println!();
    println!(
        "Host time: {:.0} us for {windows_served} served windows ({:.1} us/window, \
         window scale x{wscale}).",
        host_us,
        host_us / windows_served as f64,
    );
    if wscale == 1 {
        println!(
            "For a million-window soak (not run in CI), try: serve --windows 2500 \
             (~{:.1}M served windows)",
            2_500.0 * windows_served as f64 / 1e6,
        );
    }

    // Fail-fast gates: the headline 4x6 cell must show weighted-fair +
    // stealing strictly ahead of FIFO-without-stealing on both deadline
    // hits and the p99 tail, and the lookahead planner + ARC eviction
    // strictly ahead of plain weighted-fair + stealing on the p99 tail
    // and the reload picture.  (Output equality is asserted inline
    // above.)  The workload's time constants scale with `--windows K`,
    // so these comparisons hold on soak runs too — no skipping.
    let mut failures = Vec::new();
    for cell in &cells {
        if cell.arrays == 4 && cell.mix == 6 {
            if cell.wf_steal.deadline_misses() >= cell.fifo.deadline_misses() {
                failures.push(format!(
                    "4x6 cell: weighted-fair+steal misses {} not strictly below fifo {}",
                    cell.wf_steal.deadline_misses(),
                    cell.fifo.deadline_misses()
                ));
            }
            if cell.wf_steal.p99() >= cell.fifo.p99() {
                failures.push(format!(
                    "4x6 cell: weighted-fair+steal p99 {} not strictly below fifo {}",
                    cell.wf_steal.p99(),
                    cell.fifo.p99()
                ));
            }
            // PR 10 headline: the lookahead planner + ARC eviction must
            // beat the same policy/stealing configuration without it on
            // the tail AND on the reload picture (fewer cold reloads on
            // the critical path, at least as many reloads hidden inside
            // compute backlogs).  The tail gate is strict at x1; on a
            // scaled soak the saved reloads are fixed cycles against a
            // K-times-longer compute tail, so strictly-better degenerates
            // to a tie and the gate asks for no-worse instead — the
            // reload gates stay strict at every scale.
            let (wf, plan) = (&cell.wf_steal, &cell.wf_steal_plan);
            if (wscale == 1 && plan.p99() >= wf.p99()) || plan.p99() > wf.p99() {
                failures.push(format!(
                    "4x6 cell: lookahead p99 {} not below weighted-fair+steal {} (scale x{wscale})",
                    plan.p99(),
                    wf.p99()
                ));
            }
            if plan.fleet.cold_reloads() >= wf.fleet.cold_reloads() {
                failures.push(format!(
                    "4x6 cell: lookahead cold reloads {} not strictly below weighted-fair+steal {}",
                    plan.fleet.cold_reloads(),
                    wf.fleet.cold_reloads()
                ));
            }
            if plan.fleet.hidden_reloads() < wf.fleet.hidden_reloads() {
                failures.push(format!(
                    "4x6 cell: lookahead hid {} reload(s), weighted-fair+steal hid {}",
                    plan.fleet.hidden_reloads(),
                    wf.fleet.hidden_reloads()
                ));
            }
        }
        // Everywhere: stealing must not meaningfully hurt the FIFO tail.
        // Steal decisions use the online cost estimator, so a re-route can
        // land a hair off the oracle choice — allow 2 % of noise, no more.
        if cell.fifo_steal.p99() as f64 > 1.02 * cell.fifo.p99() as f64 {
            failures.push(format!(
                "{}x{} cell: stealing worsened fifo p99 {} -> {}",
                cell.arrays,
                cell.mix,
                cell.fifo.p99(),
                cell.fifo_steal.p99()
            ));
        }
        // Everywhere: switching the placement objective to
        // energy-under-deadline must not cost deadline hits — the
        // objective minimises joules only among backends whose projected
        // completion still makes the deadline, so misses may not regress
        // versus the same policy placed on cycles.
        if cell.wf_steal_eud.deadline_misses() > cell.wf_steal.deadline_misses() {
            failures.push(format!(
                "{}x{} cell: energy-under-deadline misses {} regressed vs weighted-fair+steal {}",
                cell.arrays,
                cell.mix,
                cell.wf_steal_eud.deadline_misses(),
                cell.wf_steal.deadline_misses()
            ));
        }
    }
    if !failures.is_empty() {
        eprintln!();
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }
}
