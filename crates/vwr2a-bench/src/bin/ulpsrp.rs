//! Regenerates the Sec. 5.1.1 comparison against ULP-SRP (an ADRES
//! instantiation in the same 40 nm technology): a 256-point complex FFT.

use vwr2a_bench::{cycles_to_us, FREQUENCY_HZ};
use vwr2a_dsp::fixed::to_q16;
use vwr2a_kernels::fft::FftKernel;
use vwr2a_kernels::Spectrum;
use vwr2a_runtime::Session;

/// Execution time reported for ULP-SRP in the paper (µs).
const ULP_SRP_TIME_US: f64 = 839.1;
/// Energy reported for ULP-SRP in the paper (µJ).
const ULP_SRP_ENERGY_UJ: f64 = 19.9;

fn main() {
    let host = std::time::Instant::now();
    let n = 256;
    let kernel = FftKernel::new(n).expect("256-point complex FFT is supported");
    let signal = Spectrum::new(
        (0..n)
            .map(|i| to_q16(0.4 * (std::f64::consts::TAU * 9.0 * i as f64 / n as f64).cos()))
            .collect(),
        vec![0i32; n],
    );
    let mut session = Session::new();
    let (_, report) = session.run(&kernel, &signal).expect("kernel runs");
    let time_us = cycles_to_us(report.cycles);
    let energy_uj = report.energy().total_uj();

    println!("256-point complex FFT: VWR2A vs ULP-SRP (published numbers)");
    println!();
    println!(
        "  VWR2A   : {:>8.1} µs, {:>6.2} µJ ({} cycles at {:.0} MHz)",
        time_us,
        energy_uj,
        report.cycles,
        FREQUENCY_HZ / 1e6
    );
    println!("  ULP-SRP : {ULP_SRP_TIME_US:>8.1} µs, {ULP_SRP_ENERGY_UJ:>6.2} µJ (as reported by its authors)");
    println!();
    println!(
        "  Improvement: {:.0}x in performance, {:.0}x in energy (paper: 23x and 66x)",
        ULP_SRP_TIME_US / time_us,
        ULP_SRP_ENERGY_UJ / energy_uj
    );
    println!();
    println!(
        "Host time: {:.0} us (modelled cycles above are simulator output)",
        host.elapsed().as_secs_f64() * 1e6
    );
}
