//! Ablation experiments for the design choices discussed in Sec. 3.2 and
//! DESIGN.md (E7): the cost of the kernel-launch configuration reload that
//! session-resident programs avoid, and the sensitivity of the energy
//! results to the wide-memory coefficients.

use vwr2a_bench::{run_fft_comparison, run_fir_stream};
use vwr2a_dsp::fixed::to_q16;
use vwr2a_energy::coefficients::Vwr2aCoefficients;
use vwr2a_energy::vwr2a_energy_with;
use vwr2a_kernels::fir::FirKernel;
use vwr2a_runtime::Session;

fn main() {
    let host = std::time::Instant::now();
    println!("Ablation 1: VWR/SPM access energy sensitivity (512-point real FFT)");
    println!();
    let row = run_fft_comparison(512, true);
    let v = row.vwr2a.expect("supported size");
    println!(
        "  calibrated wide-memory coefficients : {:>7.3} µJ",
        v.energy.total_uj()
    );
    // Re-evaluate the same activity with narrower-memory-style coefficients:
    // the VWR word access priced like a narrow SPM word access (what a
    // register-file/cache organisation would pay).
    let taps: Vec<i32> = vwr2a_dsp::fir::design_lowpass(11, 0.1)
        .unwrap()
        .iter()
        .map(|&t| (t * 32768.0) as i32)
        .collect();
    let kernel = FirKernel::new(&taps, 512).expect("valid kernel");
    let input: Vec<i32> = (0..512)
        .map(|i| to_q16(((i % 64) as f64 - 32.0) / 64.0) >> 16)
        .collect();
    let mut session = Session::new();
    let (_, report) = session.run(&kernel, input.as_slice()).expect("kernel runs");
    let calibrated = Vwr2aCoefficients::calibrated();
    let mut narrow = calibrated;
    narrow.vwr_word_pj = calibrated.spm_word_pj;
    let base = vwr2a_energy_with(&report.counters, &calibrated).total_uj();
    let worse = vwr2a_energy_with(&report.counters, &narrow).total_uj();
    println!();
    println!("Ablation 2: replacing the VWR word-access energy by a narrow SPM access");
    println!("            (what a conventional register-file path would cost), FIR 512:");
    println!("  very-wide registers : {base:>7.3} µJ");
    println!(
        "  narrow accesses     : {worse:>7.3} µJ  ({:+.0} %)",
        (worse / base - 1.0) * 100.0
    );
    println!();
    println!("Ablation 3: per-launch configuration reload vs session-resident program");
    println!("            (8 x 256-point FIR windows through one Session):");
    let stream = run_fir_stream(256, 8);
    let per_window_warm = stream.cycles / stream.invocations;
    println!(
        "  {} windows, {} cold / {} warm launches, {} cycles total",
        stream.invocations, stream.cold_launches, stream.warm_launches, stream.cycles
    );
    println!(
        "  configuration words streamed once: {} (would be {} if reloaded per window)",
        stream.counters.config_words_loaded,
        stream.counters.config_words_loaded * stream.invocations
    );
    println!("  ≈{per_window_warm} cycles per warm window");
    println!();
    println!(
        "Host time: {:.0} us (modelled cycles above are simulator output)",
        host.elapsed().as_secs_f64() * 1e6
    );
}
