//! Regenerates Fig. 2: FFT kernel energy comparison for various sizes.

use vwr2a_bench::run_fft_comparison;

fn main() {
    let host = std::time::Instant::now();
    println!("Fig. 2: FFT kernel energy comparison (accelerator-only energy, µJ)");
    println!();
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>16}",
        "", "CPU (µJ)", "FFT ACCEL", "VWR2A", "VWR2A/ACCEL"
    );
    for (label, real) in [("Complex-valued", false), ("Real-valued", true)] {
        println!("{label}");
        for n in [512usize, 1024, 2048] {
            let row = run_fft_comparison(n, real);
            match row.vwr2a {
                Some(v) => println!(
                    "{:<18} {:>12.3} {:>12.3} {:>12.3} {:>15.1}x",
                    n,
                    row.cpu.energy.total_uj(),
                    row.accel.energy.total_uj(),
                    v.energy.total_uj(),
                    v.energy.total_uj() / row.accel.energy.total_uj()
                ),
                None => println!(
                    "{:<18} {:>12.3} {:>12.3} {:>12} {:>16}",
                    n,
                    row.cpu.energy.total_uj(),
                    row.accel.energy.total_uj(),
                    "n/a",
                    ""
                ),
            }
        }
    }
    println!();
    let row = run_fft_comparison(512, true);
    if let Some(v) = row.vwr2a {
        let accel_saving = 1.0 - row.accel.energy.total_uj() / row.cpu.energy.total_uj();
        let vwr2a_saving = 1.0 - v.energy.total_uj() / row.cpu.energy.total_uj();
        println!(
            "Savings vs the CMSIS CPU FFT (512-point real): FFT ACCEL {:.1} %, VWR2A {:.1} %",
            accel_saving * 100.0,
            vwr2a_saving * 100.0
        );
        println!("(paper: 86.0 % and 40.8 %)");
    }
    println!();
    println!(
        "Host time: {:.0} us (modelled cycles above are simulator output)",
        host.elapsed().as_secs_f64() * 1e6
    );
}
