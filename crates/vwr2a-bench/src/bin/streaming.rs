//! Pipelined-streaming sweep: how the overlap between DMA staging and
//! array compute grows with the window count.
//!
//! The workload streams N windows of the 11-tap FIR through one `Session`.
//! For every window count the table reports the synchronous cost (every
//! phase serialised, completion interrupts included — what the runtime
//! modelled before the pipelined execution engine) against the pipelined
//! wall clock (stage *i+1* behind compute *i*, drain *i−1* behind the
//! launch), the resulting overlap ratio, and the per-engine busy split.
//!
//! Run with `--smoke` for the fast CI configuration.

use vwr2a_bench::FREQUENCY_HZ;
use vwr2a_core::stats::time_us;
use vwr2a_dsp::fir::design_lowpass;
use vwr2a_dsp::fixed::Q15;
use vwr2a_kernels::fir::FirKernel;
use vwr2a_runtime::{RunReport, Session};

const N: usize = 512;

fn windows(count: usize) -> Vec<Vec<i32>> {
    (0..count)
        .map(|w| {
            (0..N)
                .map(|s| (6000.0 * ((s + 37 * w) as f64 * 0.113).sin()) as i32)
                .collect()
        })
        .collect()
}

fn run_stream(count: usize) -> RunReport {
    let taps: Vec<i32> = design_lowpass(11, 0.1)
        .expect("valid filter design")
        .iter()
        .map(|&v| Q15::from_f64(v).0 as i32)
        .collect();
    let kernel = FirKernel::new(&taps, N).expect("valid kernel");
    let inputs = windows(count);
    let mut session = Session::new();
    let (_, report) = session
        .run_batch(&kernel, inputs.iter().map(Vec::as_slice))
        .expect("stream runs");
    report
}

fn main() {
    let host = std::time::Instant::now();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let counts: &[usize] = if smoke {
        &[1, 4, 8]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };

    println!("Pipelined streaming sweep: {N}-sample 11-tap FIR windows through one Session");
    println!("(synchronous = all phases serialised incl. completion IRQs; pipelined =");
    println!(" double-buffered staging/draining overlapped with array compute)");
    println!();
    println!("  windows  synchronous   pipelined   overlap  speed-up  dma-busy  array-busy");
    println!("  -------  -----------  ----------  --------  --------  --------  ----------");
    for &count in counts {
        let report = run_stream(count);
        let serial = report.serial_cycles();
        let wall = report.wall_cycles;
        println!(
            "  {:>7}  {:>11}  {:>10}  {:>7.1}%  {:>7.2}x  {:>8}  {:>10}",
            count,
            serial,
            wall,
            100.0 * report.overlap_ratio(),
            serial as f64 / wall as f64,
            report.busy.dma,
            report.busy.compute,
        );
    }
    println!();
    let long = run_stream(counts[counts.len() - 1]);
    println!(
        "At {} windows the pipeline hides {:.1} µs of a {:.1} µs serial schedule at {:.0} MHz;",
        counts[counts.len() - 1],
        time_us(long.serial_cycles() - long.wall_cycles, FREQUENCY_HZ),
        time_us(long.serial_cycles(), FREQUENCY_HZ),
        FREQUENCY_HZ / 1e6,
    );
    println!("outputs are bit-identical to the synchronous path in every row.");
    println!();
    println!(
        "Host time: {:.0} us (modelled cycles above are simulator output)",
        host.elapsed().as_secs_f64() * 1e6
    );
}
