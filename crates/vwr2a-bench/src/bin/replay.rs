//! Warm-window replay benchmark: host simulation speed of the replay cache
//! (`vwr2a_core::replay`) on a warm FIR stream.
//!
//! The workload is the steady state the cache targets: one session, one
//! 11-tap FIR kernel, a long stream of warm windows whose *data* differs
//! per window but whose control flow and SRF addressing parameters repeat.
//! The first (unmeasured) window pays the cold load and records the trace;
//! the measured phase then runs twice — once with the cache disabled
//! (cycle-by-cycle interpretation) and once enabled — and the binary checks
//! that the cache changed host wall-clock only: outputs, modelled cycles
//! and activity counters must be bit-identical, and every measured launch
//! must hit the cache (a 100 % warm hit rate).
//!
//! Full runs write `BENCH_replay.json`.  Run with `--smoke` for the fast
//! CI gate (fails on any hit-rate miss or if replay-on host time does not
//! beat replay-off; leaves the checked-in artifact alone); the full run
//! additionally enforces the >= 10x host speed-up target.  `--windows N`
//! overrides the stream length.
//!
//! `--baseline PATH` regresses the measured replay-on host time per
//! window against the `host_us_per_window_on` recorded in a checked-in
//! `BENCH_replay.json`: the run fails if it exceeds the baseline by more
//! than the tolerance factor.  The tolerance is deliberately loose — CI
//! runners are slower and noisier than the machine that wrote the
//! artifact — so the gate catches gross host-speed regressions (a broken
//! replay path re-interpreting warm windows), not single-digit drift.
//! The scheduled soak CI job uses this.

use vwr2a_bench::{cycles_to_us, run_fir_replay_stream, ReplayMeasurement};

const N: usize = 256;

/// How many times slower than the recorded baseline the measured
/// per-window host time may be before `--baseline` fails the run.
const HOST_REGRESSION_TOLERANCE: f64 = 3.0;

/// Pulls `"key": <number>` out of the flat single-object artifact without
/// a JSON dependency (the artifact is written with `format!` for the same
/// reason).
fn extract_f64(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = &json[json.find(&pat)? + pat.len()..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Host-clock noise (scheduler preemption, frequency scaling) only ever
/// *inflates* a wall-clock sample, so the minimum over a few repeats is
/// the standard low-noise estimator.  Outputs and reports are identical
/// across repeats — the simulator is deterministic — so only the timing
/// of the kept measurement differs.
fn best_of(repeats: usize, n: usize, windows: usize, replay: bool) -> ReplayMeasurement {
    let mut best = run_fir_replay_stream(n, windows, replay);
    for _ in 1..repeats {
        let next = run_fir_replay_stream(n, windows, replay);
        assert_eq!(next.outputs, best.outputs, "non-deterministic outputs");
        assert_eq!(next.report, best.report, "non-deterministic report");
        if next.host_us < best.host_us {
            best = next;
        }
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let windows: usize = args
        .iter()
        .position(|a| a == "--windows")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 200 } else { 1000 });

    println!("Warm-window replay: {windows} warm {N}-sample FIR windows through one Session");
    println!("(cache off = cycle-by-cycle interpretation; cache on = trace replay;");
    println!(" both phases follow one unmeasured cold window that records the trace;");
    println!(" host times are the best of 3 repeats)");
    println!();

    // Interpretation first, so the replay run cannot have warmed anything
    // for it (each measurement uses its own fresh session anyway).
    let off = best_of(3, N, windows, false);
    let on = best_of(3, N, windows, true);

    // Correctness is non-negotiable: the cache may only change host time.
    assert_eq!(on.outputs, off.outputs, "replay changed an output bit");
    let mut on_report = on.report.clone();
    let mut off_report = off.report.clone();
    on_report.replayed = 0;
    off_report.replayed = 0;
    assert_eq!(
        on_report, off_report,
        "replay changed a modelled number (cycles, counters or launch mix)"
    );
    assert_eq!(off.report.replayed, 0, "disabled cache served a launch");

    // The FIR kernel may launch more than once per window (per-column
    // passes), so the hit rate is over array launches, not windows.
    let launches = on.report.launches();
    let hit_rate = on.report.replayed as f64 / launches as f64;
    let speedup = off.host_us / on.host_us;
    let modelled_us = cycles_to_us(on.report.cycles);

    println!("  cache  modelled-us     host-us  us/window  hit-rate");
    println!("  -----  -----------  ----------  ---------  --------");
    for (tag, m, rate) in [("off", &off, 0.0), ("on", &on, hit_rate)] {
        println!(
            "  {:>5}  {:>11.1}  {:>10.1}  {:>9.3}  {:>7.1}%",
            tag,
            cycles_to_us(m.report.cycles),
            m.host_us,
            m.host_us / windows as f64,
            100.0 * rate,
        );
    }
    println!();
    println!(
        "Replay served {}/{} warm launches and cut host time {speedup:.1}x \
         ({:.1} -> {:.1} us); outputs and modelled costs are bit-identical.",
        on.report.replayed, launches, off.host_us, on.host_us,
    );

    // Smoke runs gate but do not overwrite the checked-in full-run artifact.
    if !smoke {
        let json = format!(
            "{{\n  \"benchmark\": \"replay\",\n  \"n\": {N},\n  \"windows\": {windows},\n  \
             \"modelled_cycles\": {},\n  \"modelled_us\": {modelled_us:.1},\n  \
             \"host_us_replay_off\": {:.1},\n  \"host_us_replay_on\": {:.1},\n  \
             \"host_us_per_window_on\": {:.3},\n  \"speedup\": {speedup:.2},\n  \
             \"hit_rate\": {hit_rate:.4}\n}}\n",
            on.report.cycles,
            off.host_us,
            on.host_us,
            on.host_us / windows as f64,
        );
        std::fs::write("BENCH_replay.json", json).expect("write BENCH_replay.json");
        println!("Wrote BENCH_replay.json");
    }

    if hit_rate < 1.0 {
        eprintln!(
            "FAIL: warm-stream hit rate {:.1}% < 100% ({}/{} launches replayed)",
            100.0 * hit_rate,
            on.report.replayed,
            launches,
        );
        std::process::exit(1);
    }
    if on.host_us >= off.host_us {
        eprintln!(
            "FAIL: replay-on host time {:.1} us does not beat replay-off {:.1} us",
            on.host_us, off.host_us,
        );
        std::process::exit(1);
    }
    if !smoke && speedup < 10.0 {
        eprintln!("FAIL: host speed-up {speedup:.1}x below the 10x target");
        std::process::exit(1);
    }

    if let Some(path) = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
    {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("--baseline {path} is not readable: {e}"));
        let per_window = extract_f64(&text, "host_us_per_window_on")
            .expect("baseline artifact records host_us_per_window_on");
        let measured = on.host_us / windows as f64;
        let ceiling = per_window * HOST_REGRESSION_TOLERANCE;
        println!();
        println!(
            "Baseline {path}: {per_window:.3} us/window; measured {measured:.3} us/window \
             (ceiling {ceiling:.3}, tolerance x{HOST_REGRESSION_TOLERANCE})",
        );
        if measured > ceiling {
            eprintln!(
                "FAIL: replay-on host time {measured:.3} us/window regressed past \
                 {ceiling:.3} (baseline {per_window:.3} x{HOST_REGRESSION_TOLERANCE})",
            );
            std::process::exit(1);
        }
    }
}
