//! Multi-accelerator pool sweep: array count × kernel mix × placement
//! strategy.
//!
//! The workload fans a fixed job list — `(kernel, windows)` pairs drawn
//! from a mix of distinct FIR programs in an irregular order — across a
//! `Pool` of `Session`s whose configuration memories hold only two
//! programs each.  For every combination the table reports the fleet wall
//! clock, compute occupancy, cold reloads and evictions, for all three
//! placement strategies.
//!
//! The point the sweep makes: with more distinct programs than one array's
//! configuration memory can hold, *where* a job runs decides whether its
//! launch is warm.  `ResidencyAware` spreads the programs across the fleet
//! once and then keeps every job warm on "its" array; `RoundRobin` and
//! `LeastLoaded` keep re-streaming configuration words, which sits on each
//! array's critical path and drags the fleet occupancy down.
//!
//! Run with `--smoke` for the fast CI configuration.

use vwr2a_core::geometry::Geometry;
use vwr2a_dsp::fir::design_lowpass;
use vwr2a_dsp::fixed::Q15;
use vwr2a_kernels::fir::FirKernel;
use vwr2a_runtime::pool::{LeastLoaded, Placement, Pool, ResidencyAware, RoundRobin};
use vwr2a_runtime::testing::constrained_sessions;
use vwr2a_runtime::{FleetReport, Kernel};

const N: usize = 256;

fn fir(cutoff: f64) -> FirKernel {
    let taps: Vec<i32> = design_lowpass(11, cutoff)
        .expect("valid filter design")
        .iter()
        .map(|&v| Q15::from_f64(v).0 as i32)
        .collect();
    FirKernel::new(&taps, N).expect("valid kernel")
}

/// `mix` distinct FIR programs (different cutoffs ⇒ different baked taps).
fn kernels(mix: usize) -> Vec<FirKernel> {
    (0..mix).map(|k| fir(0.05 + 0.04 * k as f64)).collect()
}

fn window(i: usize) -> Vec<i32> {
    (0..N)
        .map(|s| (5500.0 * ((s + 29 * i) as f64 * 0.123).sin()) as i32)
        .collect()
}

/// Irregular kernel sequence, so round-robin cannot accidentally split the
/// working set cleanly across the arrays.
fn picks(jobs: usize, mix: usize) -> Vec<usize> {
    (0..jobs).map(|j| (j * 5 + j / mix) % mix).collect()
}

fn run_sweep(
    arrays: usize,
    mix: usize,
    jobs: usize,
    windows_per_job: usize,
    placement: impl Placement + 'static,
) -> FleetReport {
    let kernels = kernels(mix);
    // Each array holds two FIR programs — a fleet-wide working set can be
    // resident, a single array's cannot (for mix > 2).
    let program_words = kernels[0]
        .program(&Geometry::paper())
        .expect("program builds")
        .config_words();
    let mut pool = Pool::with_sessions(constrained_sessions(arrays, 2 * program_words))
        .with_placement(placement);
    let job_list: Vec<(usize, Vec<Vec<i32>>)> = picks(jobs, mix)
        .into_iter()
        .enumerate()
        .map(|(j, pick)| {
            (
                pick,
                (0..windows_per_job).map(|w| window(j + 7 * w)).collect(),
            )
        })
        .collect();
    let (_, fleet) = pool
        .run_batch(
            job_list
                .iter()
                .map(|(pick, ws)| (&kernels[*pick], ws.iter().map(Vec::as_slice))),
        )
        .expect("pool fan-out runs");
    fleet
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (array_counts, mixes, jobs, windows_per_job): (&[usize], &[usize], usize, usize) = if smoke
    {
        (&[2], &[4], 8, 2)
    } else {
        (&[1, 2, 4], &[2, 4, 6], 24, 4)
    };

    println!(
        "Fleet sweep: {jobs} jobs x {windows_per_job} {N}-sample FIR windows, 2-program \
         configuration memories per array"
    );
    println!();
    println!("  arrays  mix  placement        cold  evict  wall-cycles  occupancy");
    println!("  ------  ---  ---------------  ----  -----  -----------  ---------");

    let mut residency_vs_round_robin: Vec<(usize, usize, f64, f64)> = Vec::new();
    for &arrays in array_counts {
        for &mix in mixes {
            let residency = run_sweep(arrays, mix, jobs, windows_per_job, ResidencyAware);
            let least_loaded = run_sweep(arrays, mix, jobs, windows_per_job, LeastLoaded);
            let round_robin = run_sweep(arrays, mix, jobs, windows_per_job, RoundRobin);
            for (name, fleet) in [
                (ResidencyAware.name(), &residency),
                (LeastLoaded.name(), &least_loaded),
                (RoundRobin.name(), &round_robin),
            ] {
                println!(
                    "  {:>6}  {:>3}  {:<15}  {:>4}  {:>5}  {:>11}  {:>8.1}%",
                    arrays,
                    mix,
                    name,
                    fleet.cold_reloads(),
                    fleet.evictions(),
                    fleet.wall_cycles(),
                    100.0 * fleet.occupancy(),
                );
            }
            residency_vs_round_robin.push((
                arrays,
                mix,
                residency.occupancy(),
                round_robin.occupancy(),
            ));
        }
    }

    println!();
    println!("Residency-aware vs round-robin fleet occupancy on the mixed-kernel sweep:");
    for (arrays, mix, ra, rr) in residency_vs_round_robin {
        let verdict = if arrays == 1 {
            "(single array: placement is moot)"
        } else if mix <= 2 {
            "(working set fits one array)"
        } else if ra > rr {
            "higher, as required"
        } else if mix % arrays != 0 {
            "(uneven program spread: affinity trades balance for warmth)"
        } else {
            "NOT higher (unexpected)"
        };
        println!(
            "  {arrays} array(s), {mix}-kernel mix: {:.1}% vs {:.1}% {verdict}",
            100.0 * ra,
            100.0 * rr
        );
    }
    println!();
    println!("Outputs are bit-identical to serial single-session execution in every cell;");
    println!("placement only decides where (and the pipeline when) the work runs.");
}
