//! Multi-accelerator pool sweep: array count × kernel mix × placement
//! strategy, with and without speculative configuration prefetch.
//!
//! The workload fans a fixed job list — `(kernel, windows)` pairs drawn
//! from a mix of distinct FIR programs in an irregular order — across a
//! `Pool` of `Session`s whose configuration memories hold only two
//! programs each.  For every combination the table reports the fleet wall
//! clock, compute occupancy, cold reloads, prefetched reloads (and how
//! many of those were fully hidden inside compute backlogs) and
//! evictions, for all four placement strategies.
//!
//! The point the sweep makes: with more distinct programs than one array's
//! configuration memory can hold, *where* a job runs decides whether its
//! launch is warm — and *when* its reload streams decides whether anyone
//! waits for it.  `CostAware` weighs each reload against the candidate
//! arrays' backlogs and prefetches it off the launch's critical path, so
//! no launch ever goes cold; `ResidencyAware` (PR 4's scheduler) places
//! warm but reloads on the critical path; `RoundRobin` and `LeastLoaded`
//! keep re-streaming configuration words, which sits on each array's
//! critical path and drags the fleet occupancy down.
//!
//! A second table scales the *serving* layer to large fleets: a
//! near-simultaneous burst of single-window jobs served by weighted-fair +
//! stealing across 100–1000 arrays (100 in smoke mode), with and without
//! the whole-queue lookahead planner + ARC adaptive eviction.  The
//! warm-window replay cache is what makes a thousand simulated arrays
//! affordable on the host — repeated `(program, window)` launches replay
//! instead of re-interpreting (see `BENCH_replay.json`).
//!
//! Run with `--smoke` for the fast CI configuration.  In every mode the
//! binary *fails fast* (non-zero exit) if `CostAware` ever pays more cold
//! reloads than `RoundRobin`, if the headline 4-array × 6-kernel cell
//! (non-smoke) does not show `CostAware` strictly beating `ResidencyAware`
//! on both cold reloads and fleet wall cycles, or if the lookahead planner
//! ever pays more cold reloads (or hides fewer) than the plain serving
//! configuration at any fleet scale.

use vwr2a_core::geometry::Geometry;
use vwr2a_dsp::fir::design_lowpass;
use vwr2a_dsp::fixed::Q15;
use vwr2a_kernels::fir::FirKernel;
use vwr2a_runtime::pool::{CostAware, LeastLoaded, Placement, Pool, ResidencyAware, RoundRobin};
use vwr2a_runtime::testing::constrained_sessions;
use vwr2a_runtime::{ArcPolicy, FleetReport, Kernel, ServeJob, ServeReport, Server, WeightedFair};

const N: usize = 256;

fn fir(cutoff: f64) -> FirKernel {
    let taps: Vec<i32> = design_lowpass(11, cutoff)
        .expect("valid filter design")
        .iter()
        .map(|&v| Q15::from_f64(v).0 as i32)
        .collect();
    FirKernel::new(&taps, N).expect("valid kernel")
}

/// `mix` distinct FIR programs (different cutoffs ⇒ different baked taps).
fn kernels(mix: usize) -> Vec<FirKernel> {
    (0..mix).map(|k| fir(0.05 + 0.04 * k as f64)).collect()
}

fn window(i: usize) -> Vec<i32> {
    (0..N)
        .map(|s| (5500.0 * ((s + 29 * i) as f64 * 0.123).sin()) as i32)
        .collect()
}

/// Irregular kernel sequence, so round-robin cannot accidentally split the
/// working set cleanly across the arrays.
fn picks(jobs: usize, mix: usize) -> Vec<usize> {
    (0..jobs).map(|j| (j * 5 + j / mix) % mix).collect()
}

fn run_sweep(
    arrays: usize,
    mix: usize,
    jobs: usize,
    windows_per_job: usize,
    placement: impl Placement + 'static,
) -> FleetReport {
    let kernels = kernels(mix);
    // Each array holds two FIR programs — a fleet-wide working set can be
    // resident, a single array's cannot (for mix > 2).
    let program_words = kernels[0]
        .program(&Geometry::paper())
        .expect("program builds")
        .config_words();
    let mut pool = Pool::with_sessions(constrained_sessions(arrays, 2 * program_words))
        .expect("constrained sessions share one geometry")
        .with_placement(placement);
    let job_list: Vec<(usize, Vec<Vec<i32>>)> = picks(jobs, mix)
        .into_iter()
        .enumerate()
        .map(|(j, pick)| {
            (
                pick,
                (0..windows_per_job).map(|w| window(j + 7 * w)).collect(),
            )
        })
        .collect();
    let (_, fleet) = pool
        .run_batch(
            job_list
                .iter()
                .map(|(pick, ws)| (&kernels[*pick], ws.iter().map(Vec::as_slice))),
        )
        .expect("pool fan-out runs");
    fleet
}

/// One sweep cell: the four strategies on the same job list.
struct Cell {
    arrays: usize,
    mix: usize,
    cost_aware: FleetReport,
    residency: FleetReport,
    least_loaded: FleetReport,
    round_robin: FleetReport,
}

/// One large-fleet cell: weighted-fair + stealing, with and without the
/// whole-queue lookahead planner + ARC eviction, on the same burst.
struct FleetCell {
    arrays: usize,
    jobs: usize,
    baseline: ServeReport,
    planned: ServeReport,
}

/// Serves one `jobs`-deep burst (single-window FIR jobs over a 6-program
/// mix, near-simultaneous arrivals) across `arrays` two-program arrays,
/// with and without lookahead planning.  The warm-window replay cache is
/// what keeps a thousand simulated arrays affordable on the host — every
/// repeated `(program, window)` launch replays instead of re-interpreting.
fn large_fleet(arrays: usize, jobs: usize) -> FleetCell {
    let mix = 6;
    let kernels = kernels(mix);
    let program_words = kernels[0]
        .program(&Geometry::paper())
        .expect("program builds")
        .config_words();
    let job_list: Vec<(usize, Vec<i32>, u32, u64)> = picks(jobs, mix)
        .into_iter()
        .enumerate()
        .map(|(j, pick)| (pick, window(j), (j % 4) as u32, (j as u64 % 97) * 53))
        .collect();
    let (serial, _) = Pool::run_serial_reference(
        job_list
            .iter()
            .map(|(pick, w, _, _)| (&kernels[*pick], std::iter::once(w.as_slice()))),
    )
    .expect("serial reference runs");
    let run = |plan: bool| -> ServeReport {
        let mut sessions = constrained_sessions(arrays, 2 * program_words);
        if plan {
            for session in &mut sessions {
                session.set_eviction_policy(ArcPolicy::new());
            }
        }
        let pool = Pool::with_sessions(sessions)
            .expect("constrained sessions share one geometry")
            .with_placement(CostAware::default());
        let mut server = Server::new(pool)
            .with_policy(WeightedFair::new())
            .with_stealing(true)
            .with_lookahead(plan);
        let (outputs, report) = server
            .run_batch(job_list.iter().map(|(pick, w, tenant, arrival)| {
                ServeJob::new(
                    &kernels[*pick],
                    std::iter::once(w.as_slice()),
                    *tenant,
                    *arrival,
                )
            }))
            .expect("large-fleet burst serves");
        assert_eq!(
            outputs, serial,
            "served outputs must be bit-identical to the serial reference"
        );
        report
    };
    FleetCell {
        arrays,
        jobs,
        baseline: run(false),
        planned: run(true),
    }
}

fn main() {
    let host = std::time::Instant::now();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (array_counts, mixes, jobs, windows_per_job): (&[usize], &[usize], usize, usize) = if smoke
    {
        (&[2], &[4], 8, 2)
    } else {
        (&[1, 2, 4], &[2, 4, 6], 24, 4)
    };

    println!(
        "Fleet sweep: {jobs} jobs x {windows_per_job} {N}-sample FIR windows, 2-program \
         configuration memories per array"
    );
    println!();
    println!(
        "  arrays  mix  placement        cold  prefetch  hidden  evict  wall-cycles  occupancy"
    );
    println!(
        "  ------  ---  ---------------  ----  --------  ------  -----  -----------  ---------"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &arrays in array_counts {
        for &mix in mixes {
            let cell = Cell {
                arrays,
                mix,
                cost_aware: run_sweep(arrays, mix, jobs, windows_per_job, CostAware::default()),
                residency: run_sweep(arrays, mix, jobs, windows_per_job, ResidencyAware),
                least_loaded: run_sweep(arrays, mix, jobs, windows_per_job, LeastLoaded),
                round_robin: run_sweep(arrays, mix, jobs, windows_per_job, RoundRobin),
            };
            for (name, fleet) in [
                (CostAware::default().name(), &cell.cost_aware),
                (ResidencyAware.name(), &cell.residency),
                (LeastLoaded.name(), &cell.least_loaded),
                (RoundRobin.name(), &cell.round_robin),
            ] {
                println!(
                    "  {:>6}  {:>3}  {:<15}  {:>4}  {:>8}  {:>6}  {:>5}  {:>11}  {:>8.1}%",
                    arrays,
                    mix,
                    name,
                    fleet.cold_reloads(),
                    fleet.prefetched(),
                    fleet.hidden_reloads(),
                    fleet.evictions(),
                    fleet.wall_cycles(),
                    100.0 * fleet.occupancy(),
                );
            }
            cells.push(cell);
        }
    }

    println!();
    println!("Cost-aware + prefetch vs PR 4's residency-aware, cold reloads and wall cycles:");
    for cell in &cells {
        let (ca, ra) = (&cell.cost_aware, &cell.residency);
        let wall_delta = 100.0 * (1.0 - ca.wall_cycles() as f64 / ra.wall_cycles().max(1) as f64);
        let verdict = if cell.arrays == 1 && cell.mix <= 2 {
            "(single warm array: nothing left to hide)"
        } else if ca.cold_reloads() < ra.cold_reloads() && ca.wall_cycles() < ra.wall_cycles() {
            "both better, as required"
        } else if ca.cold_reloads() < ra.cold_reloads() {
            "fewer cold reloads"
        } else {
            "NO IMPROVEMENT (unexpected)"
        };
        println!(
            "  {} array(s), {}-kernel mix: cold {} -> {}, wall {} -> {} ({wall_delta:+.1}%) {verdict}",
            cell.arrays,
            cell.mix,
            ra.cold_reloads(),
            ca.cold_reloads(),
            ra.wall_cycles(),
            ca.wall_cycles(),
        );
    }
    // Large-fleet planner scaling: the serving layer's whole-queue
    // lookahead planner at 100-1000 arrays.
    let fleet_scales: &[(usize, usize)] = if smoke {
        &[(100, 200)]
    } else {
        &[(100, 200), (400, 800), (1000, 2000)]
    };
    println!();
    println!("Large-fleet planner scaling: weighted-fair + stealing burst, 6-kernel mix,");
    println!("one window per job, with and without whole-queue lookahead + ARC eviction");
    println!();
    println!(
        "  arrays  jobs   config     p99  cold  prefetch  hidden  plan-pf  runs/batched  averted  wall-cycles"
    );
    println!(
        "  ------  ----  ---------  ----  ----  --------  ------  -------  ------------  -------  -----------"
    );
    let fleet_cells: Vec<FleetCell> = fleet_scales
        .iter()
        .map(|&(arrays, jobs)| large_fleet(arrays, jobs))
        .collect();
    for cell in &fleet_cells {
        for (name, report) in [("baseline", &cell.baseline), ("lookahead", &cell.planned)] {
            println!(
                "  {:>6}  {:>4}  {:<9}  {:>4}  {:>4}  {:>8}  {:>6}  {:>7}  {:>6}/{:<5}  {:>7}  {:>11}",
                cell.arrays,
                cell.jobs,
                name,
                report.p99(),
                report.fleet.cold_reloads(),
                report.fleet.prefetched(),
                report.fleet.hidden_reloads(),
                report.plan.planned_prefetches,
                report.plan.affinity_runs,
                report.plan.batched_jobs,
                report.plan.evictions_averted,
                report.fleet.wall_cycles(),
            );
        }
    }

    println!();
    println!("Outputs are bit-identical to serial single-session execution in every cell;");
    println!("placement decides where, prefetch and the pipeline when, the work runs.");
    println!();
    println!(
        "Host time: {:.0} us (modelled cycles above are simulator output)",
        host.elapsed().as_secs_f64() * 1e6
    );

    // Fail-fast gates (CI runs the smoke configuration; the full sweep
    // additionally checks the headline 4-array x 6-kernel cell).
    let mut failures = Vec::new();
    for cell in &cells {
        if cell.cost_aware.cold_reloads() > cell.round_robin.cold_reloads() {
            failures.push(format!(
                "{} array(s), {}-kernel mix: cost-aware paid {} cold reloads vs round-robin {}",
                cell.arrays,
                cell.mix,
                cell.cost_aware.cold_reloads(),
                cell.round_robin.cold_reloads()
            ));
        }
        if cell.arrays == 4 && cell.mix == 6 {
            if cell.cost_aware.cold_reloads() >= cell.residency.cold_reloads() {
                failures.push(format!(
                    "4x6 cell: cost-aware cold reloads {} not strictly below residency-aware {}",
                    cell.cost_aware.cold_reloads(),
                    cell.residency.cold_reloads()
                ));
            }
            if cell.cost_aware.wall_cycles() >= cell.residency.wall_cycles() {
                failures.push(format!(
                    "4x6 cell: cost-aware wall cycles {} not strictly below residency-aware {}",
                    cell.cost_aware.wall_cycles(),
                    cell.residency.wall_cycles()
                ));
            }
        }
    }
    for cell in &fleet_cells {
        if cell.planned.fleet.cold_reloads() > cell.baseline.fleet.cold_reloads() {
            failures.push(format!(
                "{} arrays, {} jobs: lookahead cold reloads {} worse than baseline {}",
                cell.arrays,
                cell.jobs,
                cell.planned.fleet.cold_reloads(),
                cell.baseline.fleet.cold_reloads()
            ));
        }
        if cell.planned.fleet.hidden_reloads() < cell.baseline.fleet.hidden_reloads() {
            failures.push(format!(
                "{} arrays, {} jobs: lookahead hid {} reloads vs baseline {}",
                cell.arrays,
                cell.jobs,
                cell.planned.fleet.hidden_reloads(),
                cell.baseline.fleet.hidden_reloads()
            ));
        }
    }
    if !failures.is_empty() {
        eprintln!();
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }
}
