//! The MBioTracker pipeline in the three platform configurations.

use std::error::Error;
use std::fmt;
use vwr2a_dsp::fir::design_lowpass;
use vwr2a_dsp::fixed::Q15;
use vwr2a_energy::{cpu_energy, fft_accel_energy, EnergyBreakdown};
use vwr2a_fftaccel::FftAccelerator;
use vwr2a_kernels::features::{BandEnergies, DotProduct, SumAndSquares};
use vwr2a_kernels::fft::RealFftKernel;
use vwr2a_kernels::fir::FirKernel;
use vwr2a_runtime::{FleetReport, Pool, Session};
use vwr2a_soc::cpu::kernels as cpu_kernels;
use vwr2a_soc::soc::BiosignalSoc;

/// Number of samples in one application window (as in the paper's
/// 512-point real-valued FFT of the filtered signal).
pub const WINDOW: usize = 512;
/// Number of FIR taps of the preprocessing filter.
pub const FIR_TAPS: usize = 11;
/// Number of spectral bands used as frequency features.
pub const BANDS: usize = 4;
/// Prominence threshold (q15) used by the delineation step.
pub const PROMINENCE: i32 = 8_192;

/// Errors raised while running the application pipeline.
#[derive(Debug)]
pub struct PipelineError(String);

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipeline error: {}", self.0)
    }
}

impl Error for PipelineError {}

macro_rules! impl_from_error {
    ($($ty:ty),* $(,)?) => {
        $(impl From<$ty> for PipelineError {
            fn from(e: $ty) -> Self {
                PipelineError(e.to_string())
            }
        })*
    };
}

impl_from_error!(
    vwr2a_core::CoreError,
    vwr2a_soc::SocError,
    vwr2a_kernels::KernelError,
    vwr2a_runtime::RuntimeError,
    vwr2a_fftaccel::FftAccelError,
    vwr2a_dsp::DspError,
);

/// Result alias of the pipeline functions.
pub type Result<T> = std::result::Result<T, PipelineError>;

/// Cycles and energy of one application step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResult {
    /// Step name ("preprocessing", "delineation", "feature extraction").
    pub name: String,
    /// Cycles spent in the step.
    pub cycles: u64,
    /// Energy spent in the step.
    pub energy: EnergyBreakdown,
}

/// Full report of one pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct AppReport {
    /// Platform configuration name.
    pub platform: String,
    /// Per-step results, in execution order.
    pub steps: Vec<StepResult>,
    /// The SVM class prediction (+1 / −1).
    pub prediction: i32,
}

impl AppReport {
    /// Total cycles across all steps.
    pub fn total_cycles(&self) -> u64 {
        self.steps.iter().map(|s| s.cycles).sum()
    }

    /// Total energy in microjoules across all steps.
    pub fn total_energy_uj(&self) -> f64 {
        self.steps.iter().map(|s| s.energy.total_uj()).sum()
    }

    /// Cycles of a named step (zero if absent).
    pub fn step_cycles(&self, name: &str) -> u64 {
        self.steps
            .iter()
            .find(|s| s.name == name)
            .map_or(0, |s| s.cycles)
    }
}

fn fir_taps_q15_at(cutoff: f64) -> Vec<i32> {
    design_lowpass(FIR_TAPS, cutoff)
        .expect("valid filter specification")
        .iter()
        .map(|&v| Q15::from_f64(v).0 as i32)
        .collect()
}

fn fir_taps_q15() -> Vec<i32> {
    fir_taps_q15_at(0.08)
}

/// Per-channel FIR cutoffs used by [`preprocess_multi_stream`]: different
/// physiological channels want different pass bands, and every cutoff
/// bakes a *distinct* configuration-memory program, so concurrent streams
/// genuinely compete for program residency across the fleet.
pub const CHANNEL_CUTOFFS: [f64; 4] = [0.08, 0.12, 0.2, 0.3];

fn svm_weights() -> (Vec<i32>, i32) {
    // A plausible linear model over the 8 features
    // [mean_insp, mean_exp, rms_insp, rms_exp, band0..band3]: slower, deeper
    // breathing (long intervals, low high-frequency energy) maps to low
    // workload.
    (vec![-3, -3, 2, 2, -1, 2, 4, 6], 120)
}

/// Intervals (in samples) between alternating extrema, split into
/// inspirations (min→max) and expirations (max→min).
fn intervals_from_triplets(triplets: &[i32]) -> (Vec<i32>, Vec<i32>) {
    let mut insp = Vec::new();
    let mut exp = Vec::new();
    for pair in triplets.chunks(3).collect::<Vec<_>>().windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let dt = b[0] - a[0];
        if a[2] == 0 && b[2] != 0 {
            insp.push(dt);
        } else if a[2] != 0 && b[2] == 0 {
            exp.push(dt);
        }
    }
    if insp.is_empty() {
        insp.push(1);
    }
    if exp.is_empty() {
        exp.push(1);
    }
    (insp, exp)
}

fn mean_and_rms(sum: i64, sumsq: i64, n: usize) -> (i32, i32) {
    let n = n.max(1) as i64;
    let mean = (sum / n) as i32;
    let rms = ((sumsq / n) as f64).sqrt() as i32;
    (mean, rms)
}

/// CPU memory map (word addresses in SRAM) shared by the CPU-side steps.
mod layout {
    pub const RAW: usize = 0;
    pub const TAPS: usize = 600;
    pub const FILTERED: usize = 700;
    pub const EXTREMA: usize = 1300;
    pub const EXTREMA_COUNT: usize = 1500;
    pub const INTERVALS: usize = 1510;
    pub const INTERVAL_COUNT: usize = 1580;
    pub const SCRATCH: usize = 1600;
    pub const STATS_OUT: usize = 1700;
    pub const FFT_DATA: usize = 1800;
    pub const FFT_TW: usize = 2400;
    pub const FFT_SPLIT_TW: usize = 2700;
    pub const FFT_OUT: usize = 3300;
    pub const BANDS_OUT: usize = 3900;
    pub const FEATURES: usize = 3950;
    pub const WEIGHTS: usize = 3970;
    pub const SVM_OUT: usize = 3990;
}

/// Runs the delineation step on the CPU and returns (cycles, energy,
/// inspiration intervals, expiration intervals).  Shared by every platform
/// configuration in this reproduction.
fn delineation_on_cpu(
    soc: &mut BiosignalSoc,
    filtered: &[i32],
) -> Result<(u64, EnergyBreakdown, Vec<i32>, Vec<i32>)> {
    soc.sram_mut().load(layout::FILTERED, filtered)?;
    let program = cpu_kernels::delineation_program(
        WINDOW,
        PROMINENCE,
        layout::FILTERED,
        layout::EXTREMA,
        layout::EXTREMA_COUNT,
    )?;
    let stats = soc.run_cpu_program(&program)?;
    let count = soc.sram().dump(layout::EXTREMA_COUNT, 1)?[0] as usize;
    let triplets = soc.sram().dump(layout::EXTREMA, 3 * count.max(1))?;
    let (insp, exp) = intervals_from_triplets(&triplets[..3 * count]);
    Ok((stats.cycles, cpu_energy(&stats), insp, exp))
}

/// Runs the feature-extraction CPU pieces shared by the CPU-only and
/// CPU+FFT-accelerator configurations: interval statistics, band energies
/// over an already-computed spectrum, and the SVM.
fn cpu_stats_bands_svm(
    soc: &mut BiosignalSoc,
    insp: &[i32],
    exp: &[i32],
    spectrum: &[i32],
) -> Result<(u64, EnergyBreakdown, i32)> {
    let mut cycles = 0u64;
    let mut energy = EnergyBreakdown::default();
    let mut features = Vec::new();
    for data in [insp, exp] {
        soc.sram_mut().load(layout::INTERVALS, data)?;
        soc.sram_mut()
            .load(layout::INTERVAL_COUNT, &[data.len() as i32])?;
        let program = cpu_kernels::stats_program(
            layout::INTERVALS,
            layout::INTERVAL_COUNT,
            layout::SCRATCH,
            layout::STATS_OUT,
        )?;
        let stats = soc.run_cpu_program(&program)?;
        cycles += stats.cycles;
        energy = energy.combined(&cpu_energy(&stats));
        let out = soc.sram().dump(layout::STATS_OUT, 3)?;
        features.push(out[0]); // mean
        features.push(out[2]); // rms
    }
    // Reorder to [mean_insp, mean_exp, rms_insp, rms_exp].
    let features = vec![features[0], features[2], features[1], features[3]];

    soc.sram_mut().load(layout::FFT_OUT, spectrum)?;
    let program =
        cpu_kernels::band_energy_program(WINDOW / 2, BANDS, layout::FFT_OUT, layout::BANDS_OUT)?;
    let stats = soc.run_cpu_program(&program)?;
    cycles += stats.cycles;
    energy = energy.combined(&cpu_energy(&stats));
    let bands = soc.sram().dump(layout::BANDS_OUT, BANDS)?;

    let mut all_features = features;
    all_features.extend(bands);
    let (weights, bias) = svm_weights();
    soc.sram_mut().load(layout::FEATURES, &all_features)?;
    soc.sram_mut().load(layout::WEIGHTS, &weights)?;
    let program = cpu_kernels::svm_program(
        all_features.len(),
        bias,
        layout::FEATURES,
        layout::WEIGHTS,
        layout::SVM_OUT,
    )?;
    let stats = soc.run_cpu_program(&program)?;
    cycles += stats.cycles;
    energy = energy.combined(&cpu_energy(&stats));
    let prediction = soc.sram().dump(layout::SVM_OUT, 2)?[1];
    Ok((cycles, energy, prediction))
}

/// Runs the preprocessing (FIR) step on the CPU.
fn preprocessing_on_cpu(
    soc: &mut BiosignalSoc,
    window: &[i32],
) -> Result<(u64, EnergyBreakdown, Vec<i32>)> {
    soc.sram_mut().load(layout::RAW, window)?;
    soc.sram_mut().load(layout::TAPS, &fir_taps_q15())?;
    let program = cpu_kernels::fir_q15_program(
        WINDOW,
        FIR_TAPS,
        layout::RAW,
        layout::TAPS,
        layout::FILTERED,
    )?;
    let stats = soc.run_cpu_program(&program)?;
    let filtered = soc.sram().dump(layout::FILTERED, WINDOW)?;
    Ok((stats.cycles, cpu_energy(&stats), filtered))
}

/// Runs the real-valued FFT of the filtered signal on the CPU, returning
/// (cycles, energy, interleaved spectrum).
fn fft_on_cpu(
    soc: &mut BiosignalSoc,
    filtered: &[i32],
) -> Result<(u64, EnergyBreakdown, Vec<i32>)> {
    soc.sram_mut().load(layout::FFT_DATA, filtered)?;
    soc.sram_mut().load(
        layout::FFT_TW,
        &cpu_kernels::fft::cfft_twiddles_q15(WINDOW / 2),
    )?;
    soc.sram_mut().load(
        layout::FFT_SPLIT_TW,
        &cpu_kernels::fft::rfft_split_twiddles_q15(WINDOW),
    )?;
    let program = cpu_kernels::rfft_q15_program(
        WINDOW,
        layout::FFT_DATA,
        layout::FFT_TW,
        layout::FFT_SPLIT_TW,
        layout::FFT_OUT,
    )?;
    let stats = soc.run_cpu_program(&program)?;
    let spectrum = soc.sram().dump(layout::FFT_OUT, WINDOW)?;
    Ok((stats.cycles, cpu_energy(&stats), spectrum))
}

/// Runs the whole application on the CPU alone.
///
/// # Errors
///
/// Propagates simulator errors as [`PipelineError`].
pub fn run_cpu_only(window: &[i32]) -> Result<AppReport> {
    let mut soc = BiosignalSoc::new();
    let (pre_cycles, pre_energy, filtered) = preprocessing_on_cpu(&mut soc, window)?;
    let (del_cycles, del_energy, insp, exp) = delineation_on_cpu(&mut soc, &filtered)?;
    let (fft_cycles, fft_energy, spectrum) = fft_on_cpu(&mut soc, &filtered)?;
    let (rest_cycles, rest_energy, prediction) =
        cpu_stats_bands_svm(&mut soc, &insp, &exp, &spectrum)?;
    Ok(AppReport {
        platform: "CPU".into(),
        steps: vec![
            StepResult {
                name: "preprocessing".into(),
                cycles: pre_cycles,
                energy: pre_energy,
            },
            StepResult {
                name: "delineation".into(),
                cycles: del_cycles,
                energy: del_energy,
            },
            StepResult {
                name: "feature extraction".into(),
                cycles: fft_cycles + rest_cycles,
                energy: fft_energy.combined(&rest_energy),
            },
        ],
        prediction,
    })
}

/// Runs the application with the fixed-function FFT accelerator available:
/// identical to [`run_cpu_only`] except the FFT inside feature extraction.
///
/// # Errors
///
/// Propagates simulator errors as [`PipelineError`].
pub fn run_cpu_with_fft_accel(window: &[i32]) -> Result<AppReport> {
    let mut soc = BiosignalSoc::new();
    let (pre_cycles, pre_energy, filtered) = preprocessing_on_cpu(&mut soc, window)?;
    let (del_cycles, del_energy, insp, exp) = delineation_on_cpu(&mut soc, &filtered)?;

    // FFT on the fixed-function engine (it reads the filtered signal over
    // the bus and returns the 257-bin spectrum).
    let accel = FftAccelerator::new();
    let filtered_f: Vec<f64> = filtered.iter().map(|&v| v as f64 / 32768.0).collect();
    let (spectrum_c, accel_stats) = accel.run_real(&filtered_f)?;
    let spectrum: Vec<i32> = spectrum_c
        .iter()
        .take(WINDOW / 2)
        .flat_map(|c| [(c.re * 32768.0) as i32, (c.im * 32768.0) as i32])
        .collect();
    let fft_cycles = accel_stats.cycles;
    let fft_energy = fft_accel_energy(&accel_stats);

    let (rest_cycles, rest_energy, prediction) =
        cpu_stats_bands_svm(&mut soc, &insp, &exp, &spectrum)?;
    Ok(AppReport {
        platform: "CPU + FFT ACCEL".into(),
        steps: vec![
            StepResult {
                name: "preprocessing".into(),
                cycles: pre_cycles,
                energy: pre_energy,
            },
            StepResult {
                name: "delineation".into(),
                cycles: del_cycles,
                energy: del_energy,
            },
            StepResult {
                name: "feature extraction".into(),
                cycles: fft_cycles + rest_cycles,
                energy: fft_energy.combined(&rest_energy),
            },
        ],
        prediction,
    })
}

/// The VWR2A platform configuration as a long-lived pipeline: one
/// [`Session`] owns the accelerator and keeps every kernel program —
/// FIR, the FFT stage program, the real-FFT recombination passes and the
/// map-reduce programs — resident in the configuration memory across
/// windows.
///
/// The first [`Vwr2aPipeline::run_window`] pays each program's
/// configuration load once; every later window runs fully warm, which is
/// exactly the paper's intended steady-state operation of the array (the
/// application processes a continuous respiration stream window by
/// window).
#[derive(Debug)]
pub struct Vwr2aPipeline {
    session: Session,
    soc: BiosignalSoc,
    fir: FirKernel,
    rfft: RealFftKernel,
    bands: BandEnergies,
    moments: SumAndSquares,
    svm: DotProduct,
    bias: i32,
}

impl Vwr2aPipeline {
    /// Builds the pipeline's kernels and an empty session.
    ///
    /// # Errors
    ///
    /// Propagates kernel-construction errors as [`PipelineError`].
    pub fn new() -> Result<Self> {
        let (weights, bias) = svm_weights();
        Ok(Self {
            session: Session::new(),
            soc: BiosignalSoc::new(),
            fir: FirKernel::new(&fir_taps_q15(), WINDOW)?,
            rfft: RealFftKernel::new(WINDOW)?,
            bands: BandEnergies::new(BANDS)?,
            moments: SumAndSquares::new(),
            svm: DotProduct::new(weights)?,
            bias,
        })
    }

    /// The underlying session (e.g. to inspect program residency).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Runs the preprocessing FIR over a whole stream of windows on the
    /// pipelined execution engine: window *i+1* stages into the SPM while
    /// the array filters window *i*, and window *i−1* drains behind the
    /// launch.  Returns the filtered windows (bit-identical to per-window
    /// [`Vwr2aPipeline::run_window`] preprocessing) and the aggregated
    /// report, whose `wall_cycles` / `overlap_ratio()` quantify how much
    /// of the DMA time the pipeline hides.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors as [`PipelineError`]; the first error
    /// aborts the stream.
    pub fn preprocess_stream<'a>(
        &mut self,
        windows: impl IntoIterator<Item = &'a [i32]>,
    ) -> Result<(Vec<Vec<i32>>, vwr2a_runtime::RunReport)> {
        Ok(self.session.run_batch(&self.fir, windows)?)
    }

    /// Runs one application window: preprocessing, the FFT, the band
    /// energies, the interval statistics and the SVM on the array;
    /// delineation on the CPU (see the crate documentation).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors as [`PipelineError`].
    pub fn run_window(&mut self, window: &[i32]) -> Result<AppReport> {
        // Preprocessing on VWR2A.
        let (filtered, fir_report) = self.session.run(&self.fir, window)?;
        let pre_cycles = fir_report.cycles;
        let pre_energy = fir_report.energy();

        // Delineation stays on the CPU in this reproduction.
        let (del_cycles, del_energy, insp, exp) = delineation_on_cpu(&mut self.soc, &filtered)?;

        // Feature extraction on VWR2A: real FFT, band energies, interval
        // statistics and the SVM dot product.
        let mut fe_cycles = 0u64;
        let mut fe_energy = EnergyBreakdown::default();

        let (spectrum, fft_report) = self.session.run(&self.rfft, filtered.as_slice())?;
        fe_cycles += fft_report.cycles;
        fe_energy = fe_energy.combined(&fft_report.energy());

        let (band_energies, bands_report) = self.session.run(&self.bands, &spectrum)?;
        fe_cycles += bands_report.cycles;
        fe_energy = fe_energy.combined(&bands_report.energy());

        let mut features = Vec::new();
        let mut means = Vec::new();
        let mut rmss = Vec::new();
        for data in [&insp, &exp] {
            let (stats, report) = self.session.run(&self.moments, data.as_slice())?;
            fe_cycles += report.cycles;
            fe_energy = fe_energy.combined(&report.energy());
            let (mean, rms) =
                mean_and_rms(stats.sum as i64, stats.sum_of_squares as i64, data.len());
            means.push(mean);
            rmss.push(rms);
        }
        features.extend(means);
        features.extend(rmss);
        // Re-scale band energies to the q15-squared range used by the CPU
        // path (the VWR2A spectrum is in Q15.16).
        features.extend(band_energies.iter().map(|&b| b >> 2));

        let (dot, dot_report) = self.session.run(&self.svm, features.as_slice())?;
        fe_cycles += dot_report.cycles;
        fe_energy = fe_energy.combined(&dot_report.energy());
        let decision = dot.saturating_add(self.bias);
        let prediction = if decision >= 0 { 1 } else { -1 };

        Ok(AppReport {
            platform: "CPU + VWR2A".into(),
            steps: vec![
                StepResult {
                    name: "preprocessing".into(),
                    cycles: pre_cycles,
                    energy: pre_energy,
                },
                StepResult {
                    name: "delineation".into(),
                    cycles: del_cycles,
                    energy: del_energy,
                },
                StepResult {
                    name: "feature extraction".into(),
                    cycles: fe_cycles,
                    energy: fe_energy,
                },
            ],
            prediction,
        })
    }
}

/// Runs the application with VWR2A for a single window (a fresh
/// [`Vwr2aPipeline`], so every kernel launches cold — the paper's isolated
/// measurement).  Streaming workloads should use [`run_cpu_with_vwr2a_stream`]
/// or hold a [`Vwr2aPipeline`] to amortise the configuration loads.
///
/// # Errors
///
/// Propagates simulator errors as [`PipelineError`].
pub fn run_cpu_with_vwr2a(window: &[i32]) -> Result<AppReport> {
    Vwr2aPipeline::new()?.run_window(window)
}

/// Preprocesses several concurrent signal streams on a fleet of VWR2A
/// arrays behind the pool's cost-aware, prefetching scheduler.
///
/// Stream `i` is one pool job: its windows (each [`WINDOW`] samples, e.g.
/// one per patient channel) are filtered by the channel's FIR — cutoffs
/// cycle through [`CHANNEL_CUTOFFS`], so every fourth stream shares a
/// program and the rest compete for configuration-memory residency.  The
/// pool weighs each channel's FIR reload against the arrays' backlogs and
/// *prefetches* the program onto the chosen array before the channel's
/// first window (see `vwr2a_runtime::pool`): a channel's filter streams
/// its configuration while earlier channels still compute, so no window
/// ever waits on a cold reload.  The filtered windows are returned
/// grouped by stream, **bit-identical** to filtering every stream
/// serially on one session.  The [`FleetReport`] carries the fleet wall
/// clock, occupancy and prefetch accounting of the fan-out.
///
/// # Errors
///
/// Propagates simulator errors as [`PipelineError`]; the first error
/// aborts the fan-out.  A zero-array fleet is rejected up front, and
/// windows that are not exactly [`WINDOW`] samples are rejected by the
/// FIR kernel.
pub fn preprocess_multi_stream(
    streams: &[Vec<Vec<i32>>],
    arrays: usize,
) -> Result<(Vec<Vec<Vec<i32>>>, FleetReport)> {
    if arrays == 0 {
        return Err(PipelineError(
            "a fleet needs at least one array".to_string(),
        ));
    }
    // One kernel per distinct cutoff — streams sharing a cutoff share the
    // kernel instance (and therefore its program residency).
    let kernels: Vec<FirKernel> = CHANNEL_CUTOFFS
        .iter()
        .map(|&cutoff| FirKernel::new(&fir_taps_q15_at(cutoff), WINDOW))
        .collect::<std::result::Result<_, _>>()?;
    let mut pool = Pool::new(arrays);
    let (filtered, fleet) = pool.run_batch(streams.iter().enumerate().map(|(i, stream)| {
        (
            &kernels[i % CHANNEL_CUTOFFS.len()],
            stream.iter().map(Vec::as_slice),
        )
    }))?;
    Ok((filtered, fleet))
}

/// Runs the application with VWR2A over a stream of windows through one
/// [`Vwr2aPipeline`]: each kernel's program is loaded once, and from the
/// second window on every launch is warm.
///
/// # Errors
///
/// Propagates simulator errors as [`PipelineError`]; the first error aborts
/// the stream.
pub fn run_cpu_with_vwr2a_stream<'a>(
    windows: impl IntoIterator<Item = &'a [i32]>,
) -> Result<Vec<AppReport>> {
    let mut pipeline = Vwr2aPipeline::new()?;
    windows
        .into_iter()
        .map(|w| pipeline.run_window(w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::RespirationGenerator;

    fn window() -> Vec<i32> {
        RespirationGenerator::new(3).window(WINDOW)
    }

    #[test]
    fn cpu_only_pipeline_runs() {
        let report = run_cpu_only(&window()).unwrap();
        assert_eq!(report.steps.len(), 3);
        assert!(report.total_cycles() > 50_000);
        assert!(report.total_energy_uj() > 0.1);
        assert!(report.prediction == 1 || report.prediction == -1);
    }

    #[test]
    fn fft_accel_helps_only_feature_extraction() {
        let w = window();
        let cpu = run_cpu_only(&w).unwrap();
        let accel = run_cpu_with_fft_accel(&w).unwrap();
        assert_eq!(
            cpu.step_cycles("preprocessing"),
            accel.step_cycles("preprocessing")
        );
        assert_eq!(
            cpu.step_cycles("delineation"),
            accel.step_cycles("delineation")
        );
        assert!(
            accel.step_cycles("feature extraction") < cpu.step_cycles("feature extraction"),
            "the FFT accelerator must speed up feature extraction"
        );
    }

    #[test]
    fn vwr2a_gives_large_application_level_savings() {
        let w = window();
        let cpu = run_cpu_only(&w).unwrap();
        let vwr2a = run_cpu_with_vwr2a(&w).unwrap();
        assert!(
            vwr2a.step_cycles("preprocessing") < cpu.step_cycles("preprocessing") / 4,
            "preprocessing speed-up too small: {} vs {}",
            vwr2a.step_cycles("preprocessing"),
            cpu.step_cycles("preprocessing")
        );
        assert!(
            vwr2a.step_cycles("feature extraction") < cpu.step_cycles("feature extraction"),
            "feature extraction must be faster on VWR2A"
        );
        assert!(
            vwr2a.total_energy_uj() < cpu.total_energy_uj(),
            "total energy must drop: {} vs {}",
            vwr2a.total_energy_uj(),
            cpu.total_energy_uj()
        );
    }

    #[test]
    fn streamed_windows_run_warm_after_the_first() {
        let mut generator = RespirationGenerator::new(11);
        let windows: Vec<Vec<i32>> = (0..3).map(|_| generator.window(WINDOW)).collect();
        let reports = run_cpu_with_vwr2a_stream(windows.iter().map(Vec::as_slice)).unwrap();
        assert_eq!(reports.len(), 3);
        // Window 1 pays every configuration load; later windows must not.
        assert!(
            reports[1].step_cycles("preprocessing") < reports[0].step_cycles("preprocessing"),
            "warm preprocessing {} must beat cold {}",
            reports[1].step_cycles("preprocessing"),
            reports[0].step_cycles("preprocessing")
        );
        assert!(
            reports[1].step_cycles("feature extraction")
                < reports[0].step_cycles("feature extraction"),
            "warm feature extraction must beat cold"
        );
        // Steady state: windows 2 and 3 cost the same per step modulo
        // data-dependent delineation intervals.
        assert_eq!(
            reports[1].step_cycles("preprocessing"),
            reports[2].step_cycles("preprocessing")
        );
    }

    #[test]
    fn preprocessing_stream_overlaps_dma_with_compute() {
        let mut generator = RespirationGenerator::new(21);
        let windows: Vec<Vec<i32>> = (0..6).map(|_| generator.window(WINDOW)).collect();

        let mut pipeline = Vwr2aPipeline::new().unwrap();
        let (filtered, report) = pipeline
            .preprocess_stream(windows.iter().map(Vec::as_slice))
            .unwrap();
        assert_eq!(filtered.len(), windows.len());
        // Pipelined staging must beat the serial DMA-in + compute +
        // DMA-out sum while the filter output stays bit-identical to the
        // synchronous per-window path.
        assert!(
            report.wall_cycles < report.cycles,
            "wall {} vs serial phase sum {}",
            report.wall_cycles,
            report.cycles
        );
        assert!(report.overlap_ratio() > 0.0);

        let mut reference = Vwr2aPipeline::new().unwrap();
        for (window, streamed) in windows.iter().zip(&filtered) {
            let (isolated, _) = reference
                .session
                .run(&reference.fir, window.as_slice())
                .unwrap();
            assert_eq!(&isolated, streamed);
        }
    }

    #[test]
    fn multi_stream_preprocessing_over_the_pool_is_bit_identical_to_serial() {
        // Three concurrent channels with different FIR cutoffs over a
        // two-array fleet: the pool must return every channel's filtered
        // windows bit-identical to filtering the channels one after the
        // other on a single session.
        let streams: Vec<Vec<Vec<i32>>> = (0..3)
            .map(|channel| {
                let mut generator = RespirationGenerator::new(31 + channel);
                (0..4).map(|_| generator.window(WINDOW)).collect()
            })
            .collect();

        let (filtered, fleet) = preprocess_multi_stream(&streams, 2).unwrap();
        assert_eq!(filtered.len(), streams.len());
        assert_eq!(fleet.jobs, 3);
        assert_eq!(fleet.invocations(), 12);
        assert_eq!(fleet.arrays.len(), 2);
        assert!(fleet.occupancy() > 0.0);
        // The cost-aware scheduler stages every channel's FIR program
        // ahead of its first window: three distinct programs, three
        // prefetches, zero launches waiting on configuration streaming.
        assert_eq!(fleet.cold_reloads(), 0);
        assert_eq!(fleet.prefetched(), 3);
        // Every launch (the FIR launches once per block, several per
        // window) found its program staged.
        assert!(fleet.warm_launches() >= fleet.invocations());
        assert!(
            fleet.wall_cycles() > 0
                && fleet
                    .arrays
                    .iter()
                    .all(|a| a.report.wall_cycles <= fleet.wall_cycles())
        );

        // Serial reference: one session, channel by channel.
        let mut session = Session::new();
        for (channel, (stream, pool_out)) in streams.iter().zip(&filtered).enumerate() {
            let kernel = FirKernel::new(
                &fir_taps_q15_at(CHANNEL_CUTOFFS[channel % CHANNEL_CUTOFFS.len()]),
                WINDOW,
            )
            .unwrap();
            for (window, streamed) in stream.iter().zip(pool_out) {
                let (serial, _) = session.run(&kernel, window.as_slice()).unwrap();
                assert_eq!(&serial, streamed, "channel {channel} diverged on the pool");
            }
        }
    }

    #[test]
    fn pipeline_reuses_resident_programs_across_windows() {
        let mut pipeline = Vwr2aPipeline::new().unwrap();
        let mut generator = RespirationGenerator::new(5);
        pipeline.run_window(&generator.window(WINDOW)).unwrap();
        let programs_after_first = pipeline.session().loaded_programs();
        assert!(
            programs_after_first >= 5,
            "fir + fft stage + splits + map-reduce ops"
        );
        // The session registry mirrors the accelerator's configuration
        // memory one-to-one.
        let config_mem = pipeline.session().accelerator().config_mem();
        assert_eq!(config_mem.kernel_count(), programs_after_first);
        assert!(config_mem.used_words() > 0);
        pipeline.run_window(&generator.window(WINDOW)).unwrap();
        assert_eq!(
            pipeline.session().loaded_programs(),
            programs_after_first,
            "no new programs may be loaded for later windows"
        );
    }
}
