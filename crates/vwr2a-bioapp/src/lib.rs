//! The MBioTracker biosignal application on the simulated platform.
//!
//! MBioTracker (Sec. 4.4.2 of the paper) estimates cognitive workload from a
//! respiration signal in four steps: preprocessing (FIR filtering),
//! delineation (min/max detection), feature extraction (time features of the
//! breath intervals plus frequency features from an FFT of the filtered
//! signal) and SVM prediction.  This crate runs that pipeline end-to-end on
//! the simulated SoC in the paper's three configurations:
//!
//! * **CPU only** — every step on the Cortex-M4-like ISS ([`pipeline::run_cpu_only`]);
//! * **CPU + FFT accelerator** — identical, except the FFT inside feature
//!   extraction runs on the fixed-function engine
//!   ([`pipeline::run_cpu_with_fft_accel`]);
//! * **CPU + VWR2A** — preprocessing, the FFT, the band energies, the
//!   interval statistics and the SVM run on VWR2A through one
//!   [`vwr2a_runtime::Session`] ([`pipeline::run_cpu_with_vwr2a`] for one
//!   isolated window, [`pipeline::Vwr2aPipeline`] /
//!   [`pipeline::run_cpu_with_vwr2a_stream`] for window streams where every
//!   kernel program is loaded once and relaunched warm).  Delineation stays
//!   on the CPU in this reproduction (the paper maps it onto VWR2A too; see
//!   EXPERIMENTS.md for the impact of that difference on Table 5).
//!
//! The per-step cycle counts and energies of the three reports regenerate
//! Table 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pipeline;
pub mod signal;

pub use pipeline::{AppReport, PipelineError, StepResult, Vwr2aPipeline};
pub use signal::RespirationGenerator;
