//! Synthetic respiration-signal generator.
//!
//! The paper's input comes from the MUSEIC analog front-end; we substitute a
//! controllable synthetic waveform (DESIGN.md, substitution table): a slow
//! breathing oscillation whose rate and depth are modulated, with additive
//! noise, quantised to `q15`.  The application's compute cost depends only
//! on the sample count and kernel sizes, so the synthetic signal exercises
//! the same code paths as recorded data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator of respiration-like `q15` sample windows.
///
/// # Example
///
/// ```
/// use vwr2a_bioapp::signal::RespirationGenerator;
///
/// let mut generator = RespirationGenerator::new(42);
/// let window = generator.window(512);
/// assert_eq!(window.len(), 512);
/// assert!(window.iter().any(|&v| v != 0));
/// ```
#[derive(Debug, Clone)]
pub struct RespirationGenerator {
    rng: StdRng,
    /// Breathing rate in cycles per window of 512 samples.
    rate: f64,
    /// Peak amplitude as a fraction of full scale.
    depth: f64,
    /// Noise amplitude as a fraction of full scale.
    noise: f64,
}

impl RespirationGenerator {
    /// Creates a generator with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            rate: 6.0,
            depth: 0.55,
            noise: 0.03,
        }
    }

    /// Sets the breathing rate (cycles per 512-sample window).
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }

    /// Sets the breathing depth (fraction of full scale).
    pub fn with_depth(mut self, depth: f64) -> Self {
        self.depth = depth;
        self
    }

    /// Generates one window of `n` `q15` samples.
    pub fn window(&mut self, n: usize) -> Vec<i32> {
        let jitter: f64 = self.rng.gen_range(-0.2..0.2);
        let rate = self.rate + jitter;
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                let breath = (std::f64::consts::TAU * rate * t).sin();
                let drift = 0.05 * (std::f64::consts::TAU * 0.7 * t).sin();
                let noise = self.rng.gen_range(-self.noise..self.noise);
                let v = self.depth * breath + drift + noise;
                (v.clamp(-0.999, 0.999) * 32768.0) as i32
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_reproducible_per_seed() {
        let a = RespirationGenerator::new(7).window(256);
        let b = RespirationGenerator::new(7).window(256);
        let c = RespirationGenerator::new(8).window(256);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn samples_stay_in_q15_range_and_oscillate() {
        let mut generator = RespirationGenerator::new(1).with_rate(8.0).with_depth(0.7);
        let w = generator.window(512);
        assert!(w.iter().all(|&v| v > -32768 && v < 32768));
        let positive = w.iter().filter(|&&v| v > 8000).count();
        let negative = w.iter().filter(|&&v| v < -8000).count();
        assert!(positive > 50 && negative > 50, "signal should oscillate");
    }
}
