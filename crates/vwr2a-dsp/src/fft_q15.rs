//! `q15` fixed-point radix-2 FFT modelling the CMSIS-DSP CPU baseline.
//!
//! The paper's CPU numbers use the CMSIS-DSP library with 16-bit data in
//! `q15` format (Sec. 5.1.1).  CMSIS avoids overflow by scaling each
//! butterfly stage by 1/2, so an `N`-point transform is scaled by `1/N`
//! overall.  This module reproduces that behaviour bit-approximately: it is
//! used both to validate the CPU-ISS kernel programs and to provide operation
//! counts for the analytical checks in the experiment harness.

use crate::error::DspError;
use crate::fft::{bit_reverse_permute, is_power_of_two};
use crate::fixed::Q15;

/// A complex `q15` sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ComplexQ15 {
    /// Real part.
    pub re: Q15,
    /// Imaginary part.
    pub im: Q15,
}

impl ComplexQ15 {
    /// Creates a complex `q15` value.
    pub fn new(re: Q15, im: Q15) -> Self {
        Self { re, im }
    }

    /// Builds from floats, saturating each part.
    pub fn from_f64(re: f64, im: f64) -> Self {
        Self::new(Q15::from_f64(re), Q15::from_f64(im))
    }

    /// Converts to a float pair.
    pub fn to_f64(self) -> (f64, f64) {
        (self.re.to_f64(), self.im.to_f64())
    }
}

/// Generates the `q15` twiddle table for an `N`-point forward FFT
/// (`e^{-2πik/N}` for `k` in `0..N/2`).
///
/// # Errors
///
/// Returns [`DspError::LengthNotPowerOfTwo`] if `n` is not a power of two.
pub fn twiddle_table(n: usize) -> Result<Vec<ComplexQ15>, DspError> {
    if !is_power_of_two(n) {
        return Err(DspError::LengthNotPowerOfTwo { len: n });
    }
    Ok((0..n / 2)
        .map(|k| {
            let theta = -std::f64::consts::TAU * k as f64 / n as f64;
            ComplexQ15::from_f64(theta.cos(), theta.sin())
        })
        .collect())
}

/// In-place forward `q15` FFT with per-stage 1/2 scaling (CMSIS-style).
///
/// After the transform the data is scaled by `1/N` relative to the
/// mathematical DFT, exactly like `arm_cfft_q15`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] or [`DspError::LengthNotPowerOfTwo`].
pub fn cfft_q15(data: &mut [ComplexQ15]) -> Result<(), DspError> {
    let n = data.len();
    if n == 0 {
        return Err(DspError::EmptyInput);
    }
    if !is_power_of_two(n) {
        return Err(DspError::LengthNotPowerOfTwo { len: n });
    }
    let tw = twiddle_table(n)?;
    bit_reverse_permute(data);
    let mut len = 2;
    while len <= n {
        let step = n / len;
        let mut i = 0;
        while i < n {
            for j in 0..len / 2 {
                let w = tw[j * step];
                let u = data[i + j];
                let v = data[i + j + len / 2];
                // v * w in q15 with 1/2 scaling of both halves of the butterfly.
                let vr = ((v.re.0 as i32 * w.re.0 as i32 - v.im.0 as i32 * w.im.0 as i32) >> 15)
                    .clamp(i16::MIN as i32, i16::MAX as i32) as i16;
                let vi = ((v.re.0 as i32 * w.im.0 as i32 + v.im.0 as i32 * w.re.0 as i32) >> 15)
                    .clamp(i16::MIN as i32, i16::MAX as i32) as i16;
                let sum_re = ((u.re.0 as i32 + vr as i32) >> 1) as i16;
                let sum_im = ((u.im.0 as i32 + vi as i32) >> 1) as i16;
                let diff_re = ((u.re.0 as i32 - vr as i32) >> 1) as i16;
                let diff_im = ((u.im.0 as i32 - vi as i32) >> 1) as i16;
                data[i + j] = ComplexQ15::new(Q15(sum_re), Q15(sum_im));
                data[i + j + len / 2] = ComplexQ15::new(Q15(diff_re), Q15(diff_im));
            }
            i += len;
        }
        len <<= 1;
    }
    Ok(())
}

/// Forward `q15` FFT of a real signal using the packing trick, mirroring the
/// optimised real-valued flow of Sec. 3.4.
///
/// Returns `N/2 + 1` spectrum bins scaled by `1/N`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`], [`DspError::LengthNotPowerOfTwo`] or
/// [`DspError::InvalidParameter`] for lengths below 4.
pub fn rfft_q15(input: &[Q15]) -> Result<Vec<ComplexQ15>, DspError> {
    let n = input.len();
    if n == 0 {
        return Err(DspError::EmptyInput);
    }
    if !is_power_of_two(n) {
        return Err(DspError::LengthNotPowerOfTwo { len: n });
    }
    if n < 4 {
        return Err(DspError::InvalidParameter {
            what: "real q15 FFT length must be at least 4".into(),
        });
    }
    let half = n / 2;
    let mut packed: Vec<ComplexQ15> = (0..half)
        .map(|i| ComplexQ15::new(input[2 * i], input[2 * i + 1]))
        .collect();
    cfft_q15(&mut packed)?;
    // Split even/odd spectra and recombine.  Done in f64 for clarity: the
    // split step contributes a negligible share of the arithmetic and the
    // CPU cycle model accounts for it separately.
    let mut out = Vec::with_capacity(half + 1);
    for k in 0..=half {
        let zk = if k == half { packed[0] } else { packed[k] };
        let znk = packed[(half - k) % half];
        let (zkr, zki) = zk.to_f64();
        let (znkr, znki) = znk.to_f64();
        let er = (zkr + znkr) * 0.5;
        let ei = (zki - znki) * 0.5;
        let or_ = (zki + znki) * 0.5;
        let oi = (znkr - zkr) * 0.5;
        let theta = -std::f64::consts::TAU * k as f64 / n as f64;
        let (c, s) = (theta.cos(), theta.sin());
        let re = er + c * or_ - s * oi;
        let im = ei + c * oi + s * or_;
        // The packed FFT already scaled by 1/(N/2); one more halving makes
        // the overall scale 1/N like the complex path.
        out.push(ComplexQ15::from_f64(re * 0.5, im * 0.5));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::fft::fft;

    #[test]
    fn impulse_is_flat() {
        let n = 64;
        let mut x = vec![ComplexQ15::default(); n];
        x[0] = ComplexQ15::from_f64(0.5, 0.0);
        cfft_q15(&mut x).unwrap();
        // Expected value in every bin: 0.5 / 64.
        for bin in &x {
            assert!((bin.re.to_f64() - 0.5 / n as f64).abs() < 2e-3);
            assert!(bin.im.to_f64().abs() < 2e-3);
        }
    }

    #[test]
    fn matches_float_reference_within_quantisation() {
        let n = 256;
        let xs: Vec<f64> = (0..n).map(|i| 0.4 * (i as f64 * 0.17).sin()).collect();
        let mut q: Vec<ComplexQ15> = xs.iter().map(|&v| ComplexQ15::from_f64(v, 0.0)).collect();
        cfft_q15(&mut q).unwrap();
        let reference = fft(&xs.iter().map(|&v| Complex::new(v, 0.0)).collect::<Vec<_>>()).unwrap();
        for (qq, rr) in q.iter().zip(reference.iter()) {
            let (qr, qi) = qq.to_f64();
            // CMSIS scaling: reference / N.
            assert!((qr - rr.re / n as f64).abs() < 5e-3);
            assert!((qi - rr.im / n as f64).abs() < 5e-3);
        }
    }

    #[test]
    fn rfft_matches_float_reference() {
        let n = 512;
        let xs: Vec<f64> = (0..n)
            .map(|i| 0.3 * (std::f64::consts::TAU * 5.0 * i as f64 / n as f64).cos())
            .collect();
        let q: Vec<Q15> = xs.iter().map(|&v| Q15::from_f64(v)).collect();
        let spec = rfft_q15(&q).unwrap();
        let reference = crate::fft::rfft(&xs).unwrap();
        assert_eq!(spec.len(), reference.len());
        for (s, r) in spec.iter().zip(reference.iter()) {
            let (sr, si) = s.to_f64();
            assert!((sr - r.re / n as f64).abs() < 5e-3);
            assert!((si - r.im / n as f64).abs() < 5e-3);
        }
        // The 5-cycles-per-frame cosine should dominate bin 5.
        let mags: Vec<f64> = spec
            .iter()
            .map(|c| {
                let (re, im) = c.to_f64();
                (re * re + im * im).sqrt()
            })
            .collect();
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(peak, 5);
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(cfft_q15(&mut []).is_err());
        assert!(cfft_q15(&mut [ComplexQ15::default(); 12]).is_err());
        assert!(rfft_q15(&[Q15::ZERO; 2]).is_err());
    }

    #[test]
    fn twiddle_table_has_unit_magnitude_entries() {
        let tw = twiddle_table(64).unwrap();
        assert_eq!(tw.len(), 32);
        for w in tw {
            let (re, im) = w.to_f64();
            let mag = (re * re + im * im).sqrt();
            assert!((mag - 1.0).abs() < 1e-3);
        }
    }
}
