//! Reference FIR filters.
//!
//! The paper's second standalone kernel is an 11-tap FIR filter (Sec. 4.4.1,
//! Table 4), also used as the preprocessing step of the MBioTracker
//! application (Sec. 4.4.2).  This module provides the floating-point golden
//! model, a `q15` version matching the CMSIS-DSP CPU baseline and a
//! `Q15.16` version matching the VWR2A datapath, plus a band-pass designer
//! used by the application pipeline.

use crate::error::DspError;
use crate::fixed::{mul_fxp, Q15};

/// Number of taps of the paper's FIR kernel.
pub const PAPER_FIR_TAPS: usize = 11;

/// Direct-form FIR filter, `f64` golden model.
///
/// Sample `y[n] = Σ_k h[k]·x[n-k]`, with `x[m] = 0` for `m < 0` (zero
/// initial state), which matches how both the CMSIS baseline and the VWR2A
/// kernel are run in the paper (one-shot over a buffer).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if either `taps` or `input` is empty.
///
/// # Example
///
/// ```
/// use vwr2a_dsp::fir::fir_f64;
///
/// # fn main() -> Result<(), vwr2a_dsp::DspError> {
/// // A moving-average filter smooths an impulse into a plateau.
/// let taps = [0.25; 4];
/// let mut x = vec![0.0; 8];
/// x[0] = 1.0;
/// let y = fir_f64(&taps, &x)?;
/// assert_eq!(&y[..4], &[0.25, 0.25, 0.25, 0.25]);
/// assert_eq!(y[5], 0.0);
/// # Ok(())
/// # }
/// ```
pub fn fir_f64(taps: &[f64], input: &[f64]) -> Result<Vec<f64>, DspError> {
    if taps.is_empty() || input.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let mut out = vec![0.0; input.len()];
    for (n, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (k, &h) in taps.iter().enumerate() {
            if n >= k {
                acc += h * input[n - k];
            }
        }
        *o = acc;
    }
    Ok(out)
}

/// Direct-form FIR in `q15`, accumulating in 32 bits with a final `>> 15`
/// like `arm_fir_q15`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if either slice is empty.
pub fn fir_q15(taps: &[Q15], input: &[Q15]) -> Result<Vec<Q15>, DspError> {
    if taps.is_empty() || input.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let mut out = vec![Q15::ZERO; input.len()];
    for (n, o) in out.iter_mut().enumerate() {
        let mut acc: i64 = 0;
        for (k, &h) in taps.iter().enumerate() {
            if n >= k {
                acc += h.0 as i64 * input[n - k].0 as i64;
            }
        }
        let v = (acc >> 15).clamp(i16::MIN as i64, i16::MAX as i64) as i16;
        *o = Q15(v);
    }
    Ok(out)
}

/// Direct-form FIR on raw `Q15.16` words using the VWR2A fixed-point multiply
/// semantics ([`mul_fxp`]).
///
/// This is the host-side mirror of the arithmetic the VWR2A FIR kernel
/// mapping performs, used to validate the simulated program output exactly.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if either slice is empty.
pub fn fir_q16(taps: &[i32], input: &[i32]) -> Result<Vec<i32>, DspError> {
    if taps.is_empty() || input.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let mut out = vec![0i32; input.len()];
    for (n, o) in out.iter_mut().enumerate() {
        let mut acc: i32 = 0;
        for (k, &h) in taps.iter().enumerate() {
            if n >= k {
                acc = acc.wrapping_add(mul_fxp(h, input[n - k]));
            }
        }
        *o = acc;
    }
    Ok(out)
}

/// Designs a symmetric low-pass FIR filter by the windowed-sinc method
/// (Hamming window).
///
/// `cutoff` is the normalised cut-off frequency in `(0, 0.5)` (fraction of
/// the sample rate).  The paper's preprocessing step low-pass filters the
/// raw respiration signal before delineation.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `taps` is zero or even, or if
/// `cutoff` is outside `(0, 0.5)`.
///
/// # Example
///
/// ```
/// use vwr2a_dsp::fir::design_lowpass;
///
/// # fn main() -> Result<(), vwr2a_dsp::DspError> {
/// let h = design_lowpass(11, 0.1)?;
/// assert_eq!(h.len(), 11);
/// // Unity DC gain.
/// let dc: f64 = h.iter().sum();
/// assert!((dc - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn design_lowpass(taps: usize, cutoff: f64) -> Result<Vec<f64>, DspError> {
    if taps == 0 || taps.is_multiple_of(2) {
        return Err(DspError::InvalidParameter {
            what: format!("tap count must be odd and non-zero, got {taps}"),
        });
    }
    if !(cutoff > 0.0 && cutoff < 0.5) {
        return Err(DspError::InvalidParameter {
            what: format!("cutoff must be in (0, 0.5), got {cutoff}"),
        });
    }
    let m = (taps - 1) as f64;
    let mut h: Vec<f64> = (0..taps)
        .map(|i| {
            let x = i as f64 - m / 2.0;
            let sinc = if x.abs() < 1e-12 {
                2.0 * cutoff
            } else {
                (std::f64::consts::TAU * cutoff * x).sin() / (std::f64::consts::PI * x)
            };
            let window = 0.54 - 0.46 * (std::f64::consts::TAU * i as f64 / m).cos();
            sinc * window
        })
        .collect();
    let sum: f64 = h.iter().sum();
    for v in &mut h {
        *v /= sum;
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::{from_q16, to_q16};

    #[test]
    fn impulse_response_reproduces_taps() {
        let taps = [0.5, -0.25, 0.125];
        let mut x = vec![0.0; 6];
        x[0] = 1.0;
        let y = fir_f64(&taps, &x).unwrap();
        assert_eq!(&y[..3], &taps);
        assert_eq!(&y[3..], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn linearity() {
        let taps = [0.3, 0.4, 0.3];
        let a: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..32).map(|i| (i as f64 * 0.7).cos()).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let ya = fir_f64(&taps, &a).unwrap();
        let yb = fir_f64(&taps, &b).unwrap();
        let ysum = fir_f64(&taps, &sum).unwrap();
        for i in 0..32 {
            assert!((ysum[i] - (ya[i] + yb[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn q15_matches_float_within_quantisation() {
        let taps_f = design_lowpass(PAPER_FIR_TAPS, 0.12).unwrap();
        let x_f: Vec<f64> = (0..256).map(|i| 0.5 * (i as f64 * 0.05).sin()).collect();
        let taps_q: Vec<Q15> = taps_f.iter().map(|&v| Q15::from_f64(v)).collect();
        let x_q: Vec<Q15> = x_f.iter().map(|&v| Q15::from_f64(v)).collect();
        let y_f = fir_f64(&taps_f, &x_f).unwrap();
        let y_q = fir_q15(&taps_q, &x_q).unwrap();
        for (f, q) in y_f.iter().zip(y_q.iter()) {
            assert!((f - q.to_f64()).abs() < 2e-3);
        }
    }

    #[test]
    fn q16_matches_float_within_quantisation() {
        let taps_f = design_lowpass(PAPER_FIR_TAPS, 0.12).unwrap();
        let x_f: Vec<f64> = (0..256).map(|i| 0.5 * (i as f64 * 0.05).sin()).collect();
        let taps_q: Vec<i32> = taps_f.iter().map(|&v| to_q16(v)).collect();
        let x_q: Vec<i32> = x_f.iter().map(|&v| to_q16(v)).collect();
        let y_f = fir_f64(&taps_f, &x_f).unwrap();
        let y_q = fir_q16(&taps_q, &x_q).unwrap();
        for (f, q) in y_f.iter().zip(y_q.iter()) {
            assert!((f - from_q16(*q)).abs() < 1e-3);
        }
    }

    #[test]
    fn lowpass_attenuates_high_frequency() {
        let h = design_lowpass(31, 0.05).unwrap();
        let n = 512;
        let low: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * 0.01 * i as f64).sin())
            .collect();
        let high: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * 0.4 * i as f64).sin())
            .collect();
        let ylow = fir_f64(&h, &low).unwrap();
        let yhigh = fir_f64(&h, &high).unwrap();
        let rms = |v: &[f64]| (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt();
        assert!(rms(&ylow[64..]) > 0.5);
        assert!(rms(&yhigh[64..]) < 0.05);
    }

    #[test]
    fn design_rejects_bad_parameters() {
        assert!(design_lowpass(0, 0.1).is_err());
        assert!(design_lowpass(10, 0.1).is_err());
        assert!(design_lowpass(11, 0.0).is_err());
        assert!(design_lowpass(11, 0.7).is_err());
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(fir_f64(&[], &[1.0]).is_err());
        assert!(fir_f64(&[1.0], &[]).is_err());
        assert!(fir_q15(&[], &[Q15::ZERO]).is_err());
        assert!(fir_q16(&[1], &[]).is_err());
    }
}
