//! Fixed-point arithmetic formats used across the reproduction.
//!
//! Three formats appear in the paper:
//!
//! * **q15** — the CMSIS-DSP 16-bit format (`Q1.15`) used by the Cortex-M4
//!   baseline.  Values are in `[-1, 1)` with 15 fractional bits.
//! * **Q15.16** — the format produced by the VWR2A ALU's fixed-point
//!   multiplier: the 64-bit product of two 32-bit operands has its lower 16
//!   bits discarded (Sec. 3.1), so data with 16 fractional bits stays in the
//!   same format across multiplications.
//! * **18-bit saturating** — the fixed-function FFT accelerator's internal
//!   representation with block dynamic scaling (Sec. 4.1).
//!
//! The free functions here are deliberately small and branch-free so they can
//! double as the semantic reference for the corresponding simulator ALU ops.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of fractional bits of the `q15` format.
pub const Q15_FRAC_BITS: u32 = 15;
/// Number of fractional bits of the `Q15.16` format used by the VWR2A ALU.
pub const Q16_FRAC_BITS: u32 = 16;
/// Data width of the fixed-function FFT accelerator datapath.
pub const FFT_ACCEL_WIDTH: u32 = 18;

/// A `q15` sample (1 sign bit, 15 fractional bits) stored in an `i16`.
///
/// # Example
///
/// ```
/// use vwr2a_dsp::fixed::Q15;
///
/// let half = Q15::from_f64(0.5);
/// let quarter = half.saturating_mul(half);
/// assert!((quarter.to_f64() - 0.25).abs() < 1e-4);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Q15(pub i16);

impl Q15 {
    /// The largest representable value (just below `1.0`).
    pub const MAX: Q15 = Q15(i16::MAX);
    /// The most negative representable value (`-1.0`).
    pub const MIN: Q15 = Q15(i16::MIN);
    /// Zero.
    pub const ZERO: Q15 = Q15(0);

    /// Converts from a float, saturating to the representable range.
    pub fn from_f64(v: f64) -> Self {
        let scaled = (v * (1 << Q15_FRAC_BITS) as f64).round();
        if scaled > i16::MAX as f64 {
            Q15::MAX
        } else if scaled < i16::MIN as f64 {
            Q15::MIN
        } else {
            Q15(scaled as i16)
        }
    }

    /// Converts to a float.
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (1 << Q15_FRAC_BITS) as f64
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Q15) -> Q15 {
        Q15(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Q15) -> Q15 {
        Q15(self.0.saturating_sub(rhs.0))
    }

    /// Saturating `q15 × q15 → q15` multiplication (CMSIS `__SSAT(((a*b)>>15), 16)`).
    pub fn saturating_mul(self, rhs: Q15) -> Q15 {
        let p = (self.0 as i32 * rhs.0 as i32) >> Q15_FRAC_BITS;
        Q15(p.clamp(i16::MIN as i32, i16::MAX as i32) as i16)
    }
}

impl fmt::Display for Q15 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}q15", self.to_f64())
    }
}

impl From<i16> for Q15 {
    fn from(v: i16) -> Self {
        Q15(v)
    }
}

/// Converts a float to raw `Q15.16` bits, saturating to the `i32` range.
///
/// ```
/// use vwr2a_dsp::fixed::to_q16;
/// assert_eq!(to_q16(1.0), 1 << 16);
/// assert_eq!(to_q16(-0.5), -(1 << 15));
/// ```
pub fn to_q16(v: f64) -> i32 {
    let scaled = (v * (1u64 << Q16_FRAC_BITS) as f64).round();
    if scaled > i32::MAX as f64 {
        i32::MAX
    } else if scaled < i32::MIN as f64 {
        i32::MIN
    } else {
        scaled as i32
    }
}

/// Converts raw `Q15.16` bits back to a float.
///
/// ```
/// use vwr2a_dsp::fixed::{to_q16, from_q16};
/// assert!((from_q16(to_q16(0.3)) - 0.3).abs() < 1e-4);
/// ```
pub fn from_q16(v: i32) -> f64 {
    v as f64 / (1u64 << Q16_FRAC_BITS) as f64
}

/// The VWR2A ALU fixed-point multiply: 64-bit product, lower 16 bits
/// discarded, next 32 bits kept (Sec. 3.1 of the paper).
///
/// Two `Q15.16` operands therefore produce a `Q15.16` result.
///
/// ```
/// use vwr2a_dsp::fixed::{to_q16, from_q16, mul_fxp};
/// let a = to_q16(0.5);
/// let b = to_q16(-0.25);
/// assert!((from_q16(mul_fxp(a, b)) + 0.125).abs() < 1e-4);
/// ```
pub fn mul_fxp(a: i32, b: i32) -> i32 {
    (((a as i64) * (b as i64)) >> Q16_FRAC_BITS) as i32
}

/// The VWR2A ALU standard multiply mode: low 32 bits of the product.
pub fn mul_low(a: i32, b: i32) -> i32 {
    a.wrapping_mul(b)
}

/// Saturates `v` to a signed `bits`-wide integer range.
///
/// Used by the fixed-function FFT accelerator model (18-bit datapath).
///
/// ```
/// use vwr2a_dsp::fixed::saturate;
/// assert_eq!(saturate(200_000, 18), 131_071);
/// assert_eq!(saturate(-200_000, 18), -131_072);
/// assert_eq!(saturate(1234, 18), 1234);
/// ```
///
/// # Panics
///
/// Panics if `bits` is zero or greater than 32.
pub fn saturate(v: i64, bits: u32) -> i32 {
    assert!((1..=32).contains(&bits), "bit width must be in 1..=32");
    let max = (1i64 << (bits - 1)) - 1;
    let min = -(1i64 << (bits - 1));
    v.clamp(min, max) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q15_round_trip() {
        for v in [-1.0, -0.5, -0.001, 0.0, 0.25, 0.9999] {
            let q = Q15::from_f64(v);
            assert!((q.to_f64() - v).abs() < 1.0 / 32768.0 + 1e-9, "{v}");
        }
    }

    #[test]
    fn q15_saturates() {
        assert_eq!(Q15::from_f64(2.0), Q15::MAX);
        assert_eq!(Q15::from_f64(-2.0), Q15::MIN);
        assert_eq!(Q15::MAX.saturating_add(Q15::MAX), Q15::MAX);
        assert_eq!(Q15::MIN.saturating_sub(Q15::MAX), Q15::MIN);
    }

    #[test]
    fn q15_mul_matches_float() {
        let a = Q15::from_f64(0.7);
        let b = Q15::from_f64(-0.3);
        assert!((a.saturating_mul(b).to_f64() + 0.21).abs() < 1e-3);
    }

    #[test]
    fn q15_mul_extreme_negative_saturates() {
        // -1.0 * -1.0 = +1.0 which is not representable in q15.
        let m = Q15::MIN.saturating_mul(Q15::MIN);
        assert_eq!(m, Q15::MAX);
    }

    #[test]
    fn q16_round_trip_and_mul() {
        let a = to_q16(1.5);
        let b = to_q16(-2.25);
        assert!((from_q16(mul_fxp(a, b)) + 3.375).abs() < 1e-3);
    }

    #[test]
    fn mul_fxp_matches_paper_shift_semantics() {
        // (a * b) >> 16 with sign preserved.
        assert_eq!(mul_fxp(1 << 16, 1 << 16), 1 << 16);
        assert_eq!(mul_fxp(-(1 << 16), 1 << 16), -(1 << 16));
        assert_eq!(mul_fxp(3 << 16, 1 << 15), 3 << 15);
    }

    #[test]
    fn mul_low_wraps() {
        assert_eq!(mul_low(i32::MAX, 2), -2);
    }

    #[test]
    fn saturate_bounds() {
        assert_eq!(saturate(i64::MAX, 32), i32::MAX);
        assert_eq!(saturate(i64::MIN, 32), i32::MIN);
        assert_eq!(saturate(0, 1), 0);
        assert_eq!(saturate(5, 4), 5);
        assert_eq!(saturate(9, 4), 7);
        assert_eq!(saturate(-9, 4), -8);
    }

    #[test]
    #[should_panic(expected = "bit width")]
    fn saturate_rejects_zero_width() {
        let _ = saturate(1, 0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Q15::from_f64(0.5)).is_empty());
    }
}
