//! Statistical feature extraction used by the MBioTracker application.
//!
//! The paper's feature-extraction step computes time features (mean, median
//! and RMS of inspiration/expiration intervals) and frequency features from
//! the FFT of the filtered signal (Sec. 4.4.2).  These reference functions
//! back both the CPU baseline programs and the validation of the VWR2A
//! feature-extraction kernel.

use crate::error::DspError;

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] on an empty slice.
///
/// ```
/// use vwr2a_dsp::stats::mean;
/// assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5);
/// ```
pub fn mean(data: &[f64]) -> Result<f64, DspError> {
    if data.is_empty() {
        return Err(DspError::EmptyInput);
    }
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Median (interpolated for even lengths).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] on an empty slice.
///
/// ```
/// use vwr2a_dsp::stats::median;
/// assert_eq!(median(&[5.0, 1.0, 3.0]).unwrap(), 3.0);
/// assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]).unwrap(), 2.5);
/// ```
pub fn median(data: &[f64]) -> Result<f64, DspError> {
    if data.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    if n % 2 == 1 {
        Ok(sorted[n / 2])
    } else {
        Ok((sorted[n / 2 - 1] + sorted[n / 2]) / 2.0)
    }
}

/// Root-mean-square value.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] on an empty slice.
///
/// ```
/// use vwr2a_dsp::stats::rms;
/// assert!((rms(&[3.0, -4.0]).unwrap() - (12.5f64).sqrt()).abs() < 1e-12);
/// ```
pub fn rms(data: &[f64]) -> Result<f64, DspError> {
    if data.is_empty() {
        return Err(DspError::EmptyInput);
    }
    Ok((data.iter().map(|v| v * v).sum::<f64>() / data.len() as f64).sqrt())
}

/// Variance (population).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] on an empty slice.
pub fn variance(data: &[f64]) -> Result<f64, DspError> {
    let m = mean(data)?;
    Ok(data.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / data.len() as f64)
}

/// An extremum found by [`delineate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extremum {
    /// Sample index of the extremum.
    pub index: usize,
    /// Signal value at the extremum.
    pub value: f64,
    /// `true` for a local maximum, `false` for a local minimum.
    pub is_max: bool,
}

/// Delineation: detects alternating local maxima/minima of a filtered
/// respiration signal, rejecting extrema whose prominence is below
/// `min_prominence`.
///
/// This mirrors the control-intensive delineation step of MBioTracker
/// (Sec. 5.2.2): a linear scan with many data-dependent branches.  The
/// returned extrema alternate max/min; consecutive candidates of the same
/// kind keep only the more extreme one.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `signal` is empty or
/// [`DspError::InvalidParameter`] if `min_prominence` is negative.
///
/// # Example
///
/// ```
/// use vwr2a_dsp::stats::delineate;
///
/// # fn main() -> Result<(), vwr2a_dsp::DspError> {
/// let signal: Vec<f64> = (0..200)
///     .map(|i| (std::f64::consts::TAU * i as f64 / 50.0).sin())
///     .collect();
/// let ext = delineate(&signal, 0.5)?;
/// // Four full periods → four maxima and four minima detected.
/// assert!(ext.len() >= 7);
/// # Ok(())
/// # }
/// ```
pub fn delineate(signal: &[f64], min_prominence: f64) -> Result<Vec<Extremum>, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if min_prominence < 0.0 {
        return Err(DspError::InvalidParameter {
            what: format!("min_prominence must be non-negative, got {min_prominence}"),
        });
    }
    let mut out: Vec<Extremum> = Vec::new();
    for i in 1..signal.len().saturating_sub(1) {
        let prev = signal[i - 1];
        let cur = signal[i];
        let next = signal[i + 1];
        let is_max = cur >= prev && cur > next;
        let is_min = cur <= prev && cur < next;
        if !is_max && !is_min {
            continue;
        }
        let candidate = Extremum {
            index: i,
            value: cur,
            is_max,
        };
        match out.last() {
            None => {
                if cur.abs() >= min_prominence {
                    out.push(candidate);
                }
            }
            Some(last) if last.is_max == is_max => {
                // Same kind in a row: keep the more extreme.
                let better = if is_max {
                    cur > last.value
                } else {
                    cur < last.value
                };
                if better {
                    *out.last_mut().expect("non-empty") = candidate;
                }
            }
            Some(last) => {
                if (cur - last.value).abs() >= min_prominence {
                    out.push(candidate);
                }
            }
        }
    }
    Ok(out)
}

/// An extremum found by [`delineate_alternating`] on integer samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtremumI32 {
    /// Sample index of the extremum.
    pub index: usize,
    /// Signal value at the extremum.
    pub value: i32,
    /// `true` for a local maximum, `false` for a local minimum.
    pub is_max: bool,
}

/// Integer-domain delineation with strict max/min alternation.
///
/// This is the exact policy implemented by the CPU-baseline and VWR2A
/// delineation kernels: a candidate extremum is accepted only if it is of
/// the opposite kind to the previously accepted one and differs from it by
/// at least `min_prominence` (the first extremum uses `|value| >=
/// min_prominence`).  Unlike [`delineate`] it never replaces an already
/// accepted extremum, which keeps the hardware kernels single-pass.
///
/// # Example
///
/// ```
/// use vwr2a_dsp::stats::delineate_alternating;
///
/// let signal: Vec<i32> = (0..300)
///     .map(|i| (32768.0 * (std::f64::consts::TAU * i as f64 / 100.0).sin()) as i32)
///     .collect();
/// let extrema = delineate_alternating(&signal, 16_384);
/// assert!(extrema.len() >= 5);
/// for pair in extrema.windows(2) {
///     assert_ne!(pair[0].is_max, pair[1].is_max);
/// }
/// ```
pub fn delineate_alternating(signal: &[i32], min_prominence: i32) -> Vec<ExtremumI32> {
    let mut out: Vec<ExtremumI32> = Vec::new();
    if signal.len() < 3 {
        return out;
    }
    for i in 1..signal.len() - 1 {
        let (prev, cur, next) = (signal[i - 1], signal[i], signal[i + 1]);
        let is_max = cur >= prev && cur > next;
        let is_min = cur <= prev && cur < next;
        if !is_max && !is_min {
            continue;
        }
        match out.last() {
            None => {
                if cur.saturating_abs() >= min_prominence {
                    out.push(ExtremumI32 {
                        index: i,
                        value: cur,
                        is_max,
                    });
                }
            }
            Some(last) => {
                if last.is_max == is_max {
                    continue;
                }
                if (cur - last.value).saturating_abs() >= min_prominence {
                    out.push(ExtremumI32 {
                        index: i,
                        value: cur,
                        is_max,
                    });
                }
            }
        }
    }
    out
}

/// Inspiration/expiration interval durations (in samples) extracted from a
/// delineated extremum sequence.
///
/// Inspiration intervals run min→max, expiration intervals max→min, matching
/// how MBioTracker derives its time features.
pub fn breath_intervals(extrema: &[Extremum]) -> (Vec<f64>, Vec<f64>) {
    let mut inspirations = Vec::new();
    let mut expirations = Vec::new();
    for pair in extrema.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let dt = (b.index - a.index) as f64;
        if !a.is_max && b.is_max {
            inspirations.push(dt);
        } else if a.is_max && !b.is_max {
            expirations.push(dt);
        }
    }
    (inspirations, expirations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&data).unwrap(), 5.0);
        assert_eq!(median(&data).unwrap(), 4.5);
        assert_eq!(variance(&data).unwrap(), 4.0);
        assert!((rms(&[1.0, 1.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_rejected() {
        assert!(mean(&[]).is_err());
        assert!(median(&[]).is_err());
        assert!(rms(&[]).is_err());
        assert!(variance(&[]).is_err());
        assert!(delineate(&[], 0.1).is_err());
    }

    #[test]
    fn median_single_element() {
        assert_eq!(median(&[42.0]).unwrap(), 42.0);
    }

    #[test]
    fn delineation_of_sine_alternates() {
        let signal: Vec<f64> = (0..500)
            .map(|i| (std::f64::consts::TAU * i as f64 / 100.0).sin())
            .collect();
        let ext = delineate(&signal, 0.5).unwrap();
        assert!(
            ext.len() >= 9,
            "expected ~5 maxima + 5 minima, got {}",
            ext.len()
        );
        for pair in ext.windows(2) {
            assert_ne!(pair[0].is_max, pair[1].is_max, "extrema must alternate");
        }
    }

    #[test]
    fn delineation_rejects_small_ripples() {
        // A large oscillation with a tiny ripple on top: the ripple's extra
        // extrema must be filtered out by the prominence threshold.
        let signal: Vec<f64> = (0..400)
            .map(|i| {
                let t = i as f64;
                (std::f64::consts::TAU * t / 200.0).sin()
                    + 0.01 * (std::f64::consts::TAU * t / 7.0).sin()
            })
            .collect();
        let ext = delineate(&signal, 0.3).unwrap();
        for pair in ext.windows(2) {
            assert!((pair[1].value - pair[0].value).abs() >= 0.3);
        }
    }

    #[test]
    fn delineation_rejects_negative_prominence() {
        assert!(delineate(&[1.0, 2.0, 1.0], -1.0).is_err());
    }

    #[test]
    fn breath_intervals_from_sine() {
        let signal: Vec<f64> = (0..600)
            .map(|i| (std::f64::consts::TAU * i as f64 / 120.0).sin())
            .collect();
        let ext = delineate(&signal, 0.5).unwrap();
        let (ins, exs) = breath_intervals(&ext);
        assert!(!ins.is_empty());
        assert!(!exs.is_empty());
        // Half a period is 60 samples.
        for v in ins.iter().chain(exs.iter()) {
            assert!((v - 60.0).abs() < 5.0, "interval {v}");
        }
    }
}
