//! Double-precision reference FFTs.
//!
//! These are the golden models against which the CPU-baseline `q15` FFT, the
//! fixed-function accelerator model and the VWR2A FFT kernel mapping are all
//! validated.  The complex transform is the classic in-place iterative
//! radix-2 decimation-in-time algorithm of Cooley & Tukey (the same algorithm
//! the paper maps onto VWR2A, Sec. 3.4); the real-valued transform uses the
//! standard "pack N reals into N/2 complex points" trick described in the
//! same section.

use crate::complex::Complex;
use crate::error::DspError;

/// Returns `true` if `n` is a power of two (and non-zero).
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// Reverses the lowest `bits` bits of `x`.
///
/// ```
/// use vwr2a_dsp::fft::bit_reverse;
/// assert_eq!(bit_reverse(0b0011, 4), 0b1100);
/// assert_eq!(bit_reverse(1, 3), 4);
/// ```
pub fn bit_reverse(x: usize, bits: u32) -> usize {
    let mut v = 0usize;
    for i in 0..bits {
        if x & (1 << i) != 0 {
            v |= 1 << (bits - 1 - i);
        }
    }
    v
}

/// Permutes `data` into bit-reversed index order in place.
pub fn bit_reverse_permute<T>(data: &mut [T]) {
    let n = data.len();
    if n < 2 {
        return;
    }
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if j > i {
            data.swap(i, j);
        }
    }
}

/// Forward complex FFT (radix-2 DIT), returning a newly allocated spectrum.
///
/// # Errors
///
/// Returns [`DspError::LengthNotPowerOfTwo`] if `input.len()` is not a power
/// of two, or [`DspError::EmptyInput`] if it is empty.
///
/// # Example
///
/// ```
/// use vwr2a_dsp::complex::Complex;
/// use vwr2a_dsp::fft::fft;
///
/// # fn main() -> Result<(), vwr2a_dsp::DspError> {
/// // The FFT of an impulse is flat.
/// let mut x = vec![Complex::default(); 8];
/// x[0] = Complex::new(1.0, 0.0);
/// let spectrum = fft(&x)?;
/// for bin in spectrum {
///     assert!((bin.re - 1.0).abs() < 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
pub fn fft(input: &[Complex]) -> Result<Vec<Complex>, DspError> {
    let mut data = input.to_vec();
    fft_in_place(&mut data, false)?;
    Ok(data)
}

/// Inverse complex FFT, including the `1/N` normalisation.
///
/// # Errors
///
/// Same conditions as [`fft`].
pub fn ifft(input: &[Complex]) -> Result<Vec<Complex>, DspError> {
    let mut data = input.to_vec();
    fft_in_place(&mut data, true)?;
    let n = data.len() as f64;
    for v in &mut data {
        *v = v.scale(1.0 / n);
    }
    Ok(data)
}

/// In-place radix-2 decimation-in-time FFT.
///
/// When `inverse` is true the conjugate twiddles are used and **no**
/// normalisation is applied (callers that want a true inverse should divide
/// by `N`, as [`ifft`] does).
///
/// # Errors
///
/// Returns [`DspError::LengthNotPowerOfTwo`] or [`DspError::EmptyInput`] as
/// appropriate.
pub fn fft_in_place(data: &mut [Complex], inverse: bool) -> Result<(), DspError> {
    let n = data.len();
    if n == 0 {
        return Err(DspError::EmptyInput);
    }
    if !is_power_of_two(n) {
        return Err(DspError::LengthNotPowerOfTwo { len: n });
    }
    bit_reverse_permute(data);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex::from_angle(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = data[i + j + len / 2] * w;
                data[i + j] = u + v;
                data[i + j + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
    Ok(())
}

/// Forward FFT of a real-valued signal using the `N/2`-point complex FFT
/// trick (Sec. 3.4 of the paper).
///
/// The returned spectrum has `N/2 + 1` bins (DC through Nyquist); the
/// remaining bins are the conjugate mirror and are not materialised.
///
/// # Errors
///
/// Returns [`DspError::LengthNotPowerOfTwo`] if `input.len()` is not a power
/// of two, [`DspError::EmptyInput`] if empty, or
/// [`DspError::InvalidParameter`] if the length is smaller than 2.
///
/// # Example
///
/// ```
/// use vwr2a_dsp::fft::rfft;
///
/// # fn main() -> Result<(), vwr2a_dsp::DspError> {
/// // A pure cosine shows up in exactly one bin.
/// let n = 256;
/// let x: Vec<f64> = (0..n).map(|i| (std::f64::consts::TAU * 8.0 * i as f64 / n as f64).cos()).collect();
/// let spec = rfft(&x)?;
/// let peak = spec.iter().enumerate().max_by(|a, b| a.1.abs().total_cmp(&b.1.abs())).map(|(i, _)| i);
/// assert_eq!(peak, Some(8));
/// # Ok(())
/// # }
/// ```
pub fn rfft(input: &[f64]) -> Result<Vec<Complex>, DspError> {
    let n = input.len();
    if n == 0 {
        return Err(DspError::EmptyInput);
    }
    if !is_power_of_two(n) {
        return Err(DspError::LengthNotPowerOfTwo { len: n });
    }
    if n < 2 {
        return Err(DspError::InvalidParameter {
            what: "real FFT length must be at least 2".into(),
        });
    }
    let half = n / 2;
    // Pack even samples into the real part and odd samples into the
    // imaginary part of an N/2-point complex sequence.
    let packed: Vec<Complex> = (0..half)
        .map(|i| Complex::new(input[2 * i], input[2 * i + 1]))
        .collect();
    let z = fft(&packed)?;
    // Unpack: X[k] = E[k] + e^{-2πik/N} O[k].
    let mut out = Vec::with_capacity(half + 1);
    for k in 0..=half {
        let zk = if k == half { z[0] } else { z[k] };
        let znk = z[(half - k) % half].conj();
        let e = (zk + znk).scale(0.5);
        let o = (zk - znk).scale(0.5);
        // o is i * Odd[k]; multiply by -i to recover Odd[k].
        let odd = Complex::new(o.im, -o.re);
        let w = Complex::from_angle(-std::f64::consts::TAU * k as f64 / n as f64);
        out.push(e + w * odd);
    }
    Ok(out)
}

/// Magnitude spectrum of a real signal (convenience wrapper over [`rfft`]).
///
/// # Errors
///
/// Propagates the errors of [`rfft`].
pub fn rfft_magnitude(input: &[f64]) -> Result<Vec<f64>, DspError> {
    Ok(rfft(input)?.into_iter().map(|c| c.abs()).collect())
}

/// Naive `O(N²)` DFT used only for cross-checking the fast algorithms in
/// tests.
pub fn dft_reference(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::default();
            for (j, x) in input.iter().enumerate() {
                let w = Complex::from_angle(-std::f64::consts::TAU * (k * j) as f64 / n as f64);
                acc = acc + *x * w;
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol
    }

    #[test]
    fn rejects_non_power_of_two() {
        let x = vec![Complex::default(); 6];
        assert!(matches!(
            fft(&x),
            Err(DspError::LengthNotPowerOfTwo { len: 6 })
        ));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(fft(&[]), Err(DspError::EmptyInput)));
    }

    #[test]
    fn single_point_is_identity() {
        let x = vec![Complex::new(3.5, -1.0)];
        assert_eq!(fft(&x).unwrap(), x);
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let fast = fft(&x).unwrap();
        let slow = dft_reference(&x);
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert!(close(*a, *b, 1e-9), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn forward_inverse_round_trip() {
        let x: Vec<Complex> = (0..128)
            .map(|i| Complex::new((i as f64 * 0.2).sin(), (i as f64 * 0.05).cos()))
            .collect();
        let back = ifft(&fft(&x).unwrap()).unwrap();
        for (a, b) in x.iter().zip(back.iter()) {
            assert!(close(*a, *b, 1e-9));
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let time_energy: f64 = x.iter().map(|c| c.norm_sq()).sum();
        let spec = fft(&x).unwrap();
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sq()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6);
    }

    #[test]
    fn rfft_matches_complex_fft() {
        let n = 128;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin() + 0.2).collect();
        let complex_in: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let full = fft(&complex_in).unwrap();
        let half = rfft(&x).unwrap();
        assert_eq!(half.len(), n / 2 + 1);
        for k in 0..=n / 2 {
            assert!(close(half[k], full[k], 1e-9), "bin {k}");
        }
    }

    #[test]
    fn bit_reverse_is_involution() {
        for bits in 1..=10u32 {
            for x in 0..(1usize << bits) {
                assert_eq!(bit_reverse(bit_reverse(x, bits), bits), x);
            }
        }
    }

    #[test]
    fn bit_reverse_permute_small() {
        let mut v = vec![0, 1, 2, 3, 4, 5, 6, 7];
        bit_reverse_permute(&mut v);
        assert_eq!(v, vec![0, 4, 2, 6, 1, 5, 3, 7]);
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let x = vec![Complex::new(1.0, 0.0); 16];
        let spec = fft(&x).unwrap();
        assert!((spec[0].re - 16.0).abs() < 1e-12);
        for bin in &spec[1..] {
            assert!(bin.abs() < 1e-9);
        }
    }
}
