//! Minimal complex-number types used by the reference FFTs.
//!
//! Two flavours are provided: [`Complex`] (double precision, the golden
//! model) and [`ComplexI32`] (a pair of 32-bit integers interpreted in a
//! caller-chosen Q format, used when checking the fixed-point kernels).

use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Neg, Sub};

/// A double-precision complex number.
///
/// # Example
///
/// ```
/// use vwr2a_dsp::complex::Complex;
///
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// let p = a * b;
/// assert_eq!(p, Complex::new(5.0, 5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from its real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The complex conjugate.
    ///
    /// ```
    /// use vwr2a_dsp::complex::Complex;
    /// assert_eq!(Complex::new(1.0, 2.0).conj(), Complex::new(1.0, -2.0));
    /// ```
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// The squared magnitude `re² + im²`.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude `sqrt(re² + im²)`.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// `e^{iθ}` — a unit complex number at angle `theta` radians.
    ///
    /// ```
    /// use vwr2a_dsp::complex::Complex;
    /// let w = Complex::from_angle(std::f64::consts::PI);
    /// assert!((w.re + 1.0).abs() < 1e-12);
    /// assert!(w.im.abs() < 1e-12);
    /// ```
    pub fn from_angle(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// A complex number whose parts are 32-bit integers in a caller-chosen
/// fixed-point format.
///
/// The VWR2A FFT kernels keep real and imaginary parts in separate VWR
/// words; this type is the host-side mirror used to seed scratchpad memory
/// and to check results.
///
/// # Example
///
/// ```
/// use vwr2a_dsp::complex::ComplexI32;
///
/// let x = ComplexI32::new(100, -5);
/// assert_eq!(x.re, 100);
/// assert_eq!(x.im, -5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ComplexI32 {
    /// Real part (raw fixed-point bits).
    pub re: i32,
    /// Imaginary part (raw fixed-point bits).
    pub im: i32,
}

impl ComplexI32 {
    /// Creates a fixed-point complex number from raw parts.
    pub fn new(re: i32, im: i32) -> Self {
        Self { re, im }
    }

    /// Converts to a floating-point [`Complex`] given the number of
    /// fractional bits.
    ///
    /// ```
    /// use vwr2a_dsp::complex::ComplexI32;
    /// let x = ComplexI32::new(1 << 16, -(1 << 15));
    /// let f = x.to_f64(16);
    /// assert_eq!(f.re, 1.0);
    /// assert_eq!(f.im, -0.5);
    /// ```
    pub fn to_f64(self, frac_bits: u32) -> Complex {
        let k = (1u64 << frac_bits) as f64;
        Complex::new(self.re as f64 / k, self.im as f64 / k)
    }

    /// Builds from a floating-point complex by rounding to `frac_bits`
    /// fractional bits (saturating at the i32 range).
    pub fn from_f64(c: Complex, frac_bits: u32) -> Self {
        let k = (1u64 << frac_bits) as f64;
        let clamp = |v: f64| -> i32 {
            let v = (v * k).round();
            if v > i32::MAX as f64 {
                i32::MAX
            } else if v < i32::MIN as f64 {
                i32::MIN
            } else {
                v as i32
            }
        };
        Self::new(clamp(c.re), clamp(c.im))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(2.0, -3.0);
        let zero = Complex::default();
        let one = Complex::new(1.0, 0.0);
        assert_eq!(a + zero, a);
        assert_eq!(a * one, a);
        assert_eq!(a - a, zero);
        assert_eq!(-a + a, zero);
    }

    #[test]
    fn conjugate_multiplication_gives_norm() {
        let a = Complex::new(3.0, 4.0);
        let p = a * a.conj();
        assert!((p.re - 25.0).abs() < 1e-12);
        assert!(p.im.abs() < 1e-12);
        assert!((a.abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn from_angle_is_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::TAU / 16.0;
            let w = Complex::from_angle(theta);
            assert!((w.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fixed_round_trip() {
        let c = Complex::new(0.125, -0.75);
        let fx = ComplexI32::from_f64(c, 16);
        let back = fx.to_f64(16);
        assert!((back.re - c.re).abs() < 1e-4);
        assert!((back.im - c.im).abs() < 1e-4);
    }

    #[test]
    fn fixed_saturates_out_of_range() {
        let c = Complex::new(1e9, -1e9);
        let fx = ComplexI32::from_f64(c, 16);
        assert_eq!(fx.re, i32::MAX);
        assert_eq!(fx.im, i32::MIN);
    }
}
