//! Error type shared by the reference DSP kernels.

use std::error::Error;
use std::fmt;

/// Errors produced by the reference DSP kernels.
///
/// # Example
///
/// ```
/// use vwr2a_dsp::{fft, DspError};
/// use vwr2a_dsp::complex::Complex;
///
/// // FFT lengths must be powers of two.
/// let err = fft::fft(&vec![Complex::default(); 3]).unwrap_err();
/// assert!(matches!(err, DspError::LengthNotPowerOfTwo { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DspError {
    /// The transform length is not a power of two.
    LengthNotPowerOfTwo {
        /// The offending length.
        len: usize,
    },
    /// The input was empty where a non-empty slice is required.
    EmptyInput,
    /// Two inputs that must have matching lengths do not.
    LengthMismatch {
        /// Length of the first operand.
        expected: usize,
        /// Length of the second operand.
        actual: usize,
    },
    /// A parameter is outside its supported range.
    InvalidParameter {
        /// Human-readable description of the parameter and its constraint.
        what: String,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::LengthNotPowerOfTwo { len } => {
                write!(f, "length {len} is not a power of two")
            }
            DspError::EmptyInput => write!(f, "input slice is empty"),
            DspError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            DspError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = DspError::LengthNotPowerOfTwo { len: 12 };
        assert_eq!(e.to_string(), "length 12 is not a power of two");
        let e = DspError::LengthMismatch {
            expected: 4,
            actual: 7,
        };
        assert_eq!(e.to_string(), "length mismatch: expected 4, got 7");
        let e = DspError::EmptyInput;
        assert_eq!(e.to_string(), "input slice is empty");
        let e = DspError::InvalidParameter {
            what: "taps must be odd".into(),
        };
        assert!(e.to_string().contains("taps must be odd"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
