//! Linear support-vector-machine inference for the MBioTracker prediction
//! step.
//!
//! MBioTracker estimates cognitive workload with an SVM over the extracted
//! features (Sec. 4.4.2).  The paper only runs *inference* on the embedded
//! platform, so this module implements a linear (and optional RBF) decision
//! function plus a tiny training-free constructor from precomputed weights —
//! exactly what would be deployed after offline training.

use crate::error::DspError;
use serde::{Deserialize, Serialize};

/// A binary linear SVM classifier `sign(w·x + b)`.
///
/// # Example
///
/// ```
/// use vwr2a_dsp::svm::LinearSvm;
///
/// # fn main() -> Result<(), vwr2a_dsp::DspError> {
/// // A classifier that fires when the first feature exceeds the second.
/// let svm = LinearSvm::new(vec![1.0, -1.0], 0.0)?;
/// assert_eq!(svm.predict(&[2.0, 1.0])?, 1);
/// assert_eq!(svm.predict(&[0.5, 1.0])?, -1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvm {
    /// Creates a classifier from trained weights and bias.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if `weights` is empty.
    pub fn new(weights: Vec<f64>, bias: f64) -> Result<Self, DspError> {
        if weights.is_empty() {
            return Err(DspError::EmptyInput);
        }
        Ok(Self { weights, bias })
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Number of features the classifier expects.
    pub fn dimension(&self) -> usize {
        self.weights.len()
    }

    /// The raw decision value `w·x + b`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `features.len()` differs from
    /// [`Self::dimension`].
    pub fn decision(&self, features: &[f64]) -> Result<f64, DspError> {
        if features.len() != self.weights.len() {
            return Err(DspError::LengthMismatch {
                expected: self.weights.len(),
                actual: features.len(),
            });
        }
        Ok(self
            .weights
            .iter()
            .zip(features)
            .map(|(w, x)| w * x)
            .sum::<f64>()
            + self.bias)
    }

    /// Predicts the class label: `+1` if the decision value is non-negative,
    /// `-1` otherwise.
    ///
    /// # Errors
    ///
    /// Same as [`Self::decision`].
    pub fn predict(&self, features: &[f64]) -> Result<i32, DspError> {
        Ok(if self.decision(features)? >= 0.0 {
            1
        } else {
            -1
        })
    }
}

/// A support-vector machine with a radial-basis-function kernel, kept as the
/// "future work" variant of the prediction step.
///
/// Decision function: `Σ_i α_i·y_i·exp(-γ‖x - sv_i‖²) + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RbfSvm {
    support_vectors: Vec<Vec<f64>>,
    coefficients: Vec<f64>,
    gamma: f64,
    bias: f64,
}

impl RbfSvm {
    /// Creates an RBF SVM from its support vectors, dual coefficients
    /// (`α_i·y_i`), kernel width `gamma` and bias.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if there are no support vectors,
    /// [`DspError::LengthMismatch`] if `coefficients` does not match the
    /// support-vector count, or [`DspError::InvalidParameter`] if `gamma` is
    /// not positive or the support vectors have inconsistent dimensions.
    pub fn new(
        support_vectors: Vec<Vec<f64>>,
        coefficients: Vec<f64>,
        gamma: f64,
        bias: f64,
    ) -> Result<Self, DspError> {
        if support_vectors.is_empty() {
            return Err(DspError::EmptyInput);
        }
        if support_vectors.len() != coefficients.len() {
            return Err(DspError::LengthMismatch {
                expected: support_vectors.len(),
                actual: coefficients.len(),
            });
        }
        if gamma <= 0.0 {
            return Err(DspError::InvalidParameter {
                what: format!("gamma must be positive, got {gamma}"),
            });
        }
        let dim = support_vectors[0].len();
        if support_vectors.iter().any(|sv| sv.len() != dim) {
            return Err(DspError::InvalidParameter {
                what: "support vectors must all have the same dimension".into(),
            });
        }
        Ok(Self {
            support_vectors,
            coefficients,
            gamma,
            bias,
        })
    }

    /// Number of features the classifier expects.
    pub fn dimension(&self) -> usize {
        self.support_vectors[0].len()
    }

    /// The raw decision value.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] on a feature-dimension mismatch.
    pub fn decision(&self, features: &[f64]) -> Result<f64, DspError> {
        if features.len() != self.dimension() {
            return Err(DspError::LengthMismatch {
                expected: self.dimension(),
                actual: features.len(),
            });
        }
        let mut acc = self.bias;
        for (sv, &c) in self.support_vectors.iter().zip(&self.coefficients) {
            let dist_sq: f64 = sv
                .iter()
                .zip(features)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            acc += c * (-self.gamma * dist_sq).exp();
        }
        Ok(acc)
    }

    /// Predicts the class label (`+1` / `-1`).
    ///
    /// # Errors
    ///
    /// Same as [`Self::decision`].
    pub fn predict(&self, features: &[f64]) -> Result<i32, DspError> {
        Ok(if self.decision(features)? >= 0.0 {
            1
        } else {
            -1
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_svm_separates_halfplanes() {
        let svm = LinearSvm::new(vec![2.0, -1.0], -0.5).unwrap();
        assert_eq!(svm.predict(&[1.0, 0.0]).unwrap(), 1);
        assert_eq!(svm.predict(&[0.0, 1.0]).unwrap(), -1);
        assert_eq!(svm.dimension(), 2);
        assert_eq!(svm.bias(), -0.5);
        assert_eq!(svm.weights(), &[2.0, -1.0]);
    }

    #[test]
    fn linear_svm_rejects_dimension_mismatch() {
        let svm = LinearSvm::new(vec![1.0, 2.0, 3.0], 0.0).unwrap();
        assert!(matches!(
            svm.predict(&[1.0]),
            Err(DspError::LengthMismatch {
                expected: 3,
                actual: 1
            })
        ));
    }

    #[test]
    fn linear_svm_rejects_empty_weights() {
        assert!(LinearSvm::new(vec![], 0.0).is_err());
    }

    #[test]
    fn rbf_svm_classifies_clusters() {
        // Two clusters around (0,0) [class -1] and (4,4) [class +1].
        let svm = RbfSvm::new(
            vec![vec![0.0, 0.0], vec![4.0, 4.0]],
            vec![-1.0, 1.0],
            0.5,
            0.0,
        )
        .unwrap();
        assert_eq!(svm.predict(&[0.2, -0.1]).unwrap(), -1);
        assert_eq!(svm.predict(&[3.8, 4.2]).unwrap(), 1);
    }

    #[test]
    fn rbf_svm_validates_construction() {
        assert!(RbfSvm::new(vec![], vec![], 1.0, 0.0).is_err());
        assert!(RbfSvm::new(vec![vec![1.0]], vec![1.0, 2.0], 1.0, 0.0).is_err());
        assert!(RbfSvm::new(vec![vec![1.0]], vec![1.0], -1.0, 0.0).is_err());
        assert!(RbfSvm::new(vec![vec![1.0], vec![1.0, 2.0]], vec![1.0, 1.0], 1.0, 0.0).is_err());
    }
}
