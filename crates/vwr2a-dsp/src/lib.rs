//! Golden reference DSP kernels and fixed-point arithmetic for the VWR2A
//! reproduction.
//!
//! The VWR2A paper evaluates the accelerator on biosignal kernels: radix-2
//! FFTs (complex and real-valued), an 11-tap FIR filter, statistical feature
//! extraction (mean, median, RMS) and an SVM classifier.  This crate provides
//! *reference* implementations of all of them, in three arithmetic flavours:
//!
//! * `f64` floating point — the golden model used to validate everything
//!   else;
//! * [`fixed::Q15`] — the 16-bit `q15` format used by the CMSIS-DSP CPU
//!   baseline in the paper;
//! * the raw-`i32` `Q15.16` helpers in [`fixed`] — the format produced by the
//!   VWR2A ALU's fixed-point multiplier (Sec. 3.1 of the paper: the lower 16
//!   bits of the 64-bit product are discarded).
//!
//! The simulated accelerators (`vwr2a-core`, `vwr2a-fftaccel`) and the CPU
//! baseline programs are all verified against this crate in the workspace
//! integration tests.
//!
//! # Example
//!
//! ```
//! use vwr2a_dsp::fft;
//! use vwr2a_dsp::complex::Complex;
//!
//! # fn main() -> Result<(), vwr2a_dsp::DspError> {
//! // Forward + inverse FFT round-trips to the original signal.
//! let signal: Vec<Complex> = (0..64)
//!     .map(|i| Complex::new((i as f64 * 0.1).sin(), 0.0))
//!     .collect();
//! let spectrum = fft::fft(&signal)?;
//! let back = fft::ifft(&spectrum)?;
//! for (a, b) in signal.iter().zip(back.iter()) {
//!     assert!((a.re - b.re).abs() < 1e-9);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod error;
pub mod fft;
pub mod fft_q15;
pub mod fir;
pub mod fixed;
pub mod stats;
pub mod svm;

pub use error::DspError;
