//! Behavioural and cycle/energy model of the fixed-function FFT accelerator.
//!
//! The comparison point of the paper is the FFT accelerator of the MUSEIC
//! platform (Sec. 4.1): a mixed radix-2/radix-4 engine for FFTs and inverse
//! FFTs up to 4096 points, with an optimised real-valued flow, twiddle ROMs,
//! a dual-port data memory and an 18-bit internal representation with
//! dynamic scaling.  We do not have its RTL, so this crate models it at the
//! architectural level:
//!
//! * **Functionally** — [`FftAccelerator::run_complex`] /
//!   [`FftAccelerator::run_real`] compute the transform with 18-bit
//!   saturating arithmetic and per-stage block dynamic scaling, so outputs
//!   (and their quantisation behaviour) are realistic and are validated
//!   against the `vwr2a-dsp` golden FFT.
//! * **In time** — a cycle model charges each radix-4/radix-2 pass, the
//!   input/output transfers over the dual-port memory and a fixed
//!   programming overhead; constants are chosen so the cycle counts land in
//!   the ranges of Table 2.
//! * **In activity** — [`FftAccelStats`] reports per-component event counts
//!   (memory accesses, butterfly operations, DMA words) consumed by the
//!   `vwr2a-energy` crate to produce the accelerator column of Table 3 and
//!   Fig. 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;

pub use model::{FftAccelConfig, FftAccelError, FftAccelStats, FftAccelerator};
