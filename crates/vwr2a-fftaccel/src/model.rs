//! The fixed-function FFT accelerator model.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use vwr2a_dsp::complex::Complex;
use vwr2a_dsp::fixed::saturate;

/// Errors produced by the accelerator model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FftAccelError {
    /// The requested size is not supported by the engine.
    UnsupportedSize {
        /// The requested transform length.
        n: usize,
        /// The maximum supported length.
        max: usize,
    },
    /// The accelerator configuration is degenerate (non-finite or
    /// non-positive rates, a `max_points` the address generators cannot
    /// express) — running it would silently saturate the cycle model.
    InvalidConfig {
        /// What is wrong with the configuration.
        what: String,
    },
    /// The cycle model overflowed the `u64` cycle counter for this
    /// configuration × size; earlier revisions saturated silently here.
    CostOverflow {
        /// The quantity that overflowed.
        what: String,
    },
}

impl fmt::Display for FftAccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftAccelError::UnsupportedSize { n, max } => write!(
                f,
                "fft size {n} not supported (power of two of 8..={max} required)"
            ),
            FftAccelError::InvalidConfig { what } => {
                write!(f, "invalid accelerator configuration: {what}")
            }
            FftAccelError::CostOverflow { what } => {
                write!(f, "cycle model overflow: {what}")
            }
        }
    }
}

impl Error for FftAccelError {}

/// Timing and datapath parameters of the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FftAccelConfig {
    /// Internal datapath width in bits (the MUSEIC engine uses 18).
    pub datapath_bits: u32,
    /// Maximum supported transform size.
    pub max_points: usize,
    /// Cycles to program the engine and start it (register writes from the
    /// CPU over the slave port).
    pub setup_cycles: u64,
    /// Butterflies processed per cycle (the engine datapath processes one
    /// radix-4 butterfly, i.e. two radix-2 equivalents, per cycle).
    pub radix2_butterflies_per_cycle: f64,
    /// Cycles per input/output word moved through the dual-port memory.
    pub io_cycles_per_word: f64,
}

impl Default for FftAccelConfig {
    fn default() -> Self {
        Self {
            datapath_bits: 18,
            max_points: 4096,
            setup_cycles: 60,
            radix2_butterflies_per_cycle: 0.55,
            io_cycles_per_word: 1.0,
        }
    }
}

/// Activity statistics of one accelerator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FftAccelStats {
    /// Total cycles from start command to completion interrupt.
    pub cycles: u64,
    /// Radix-2-equivalent butterflies executed.
    pub butterflies: u64,
    /// Data-memory word accesses (reads + writes).
    pub memory_accesses: u64,
    /// Twiddle-ROM reads.
    pub twiddle_reads: u64,
    /// Words transferred in and out over the system bus.
    pub io_words: u64,
    /// Dynamic-scaling events (stages whose block exponent was bumped).
    pub scaling_events: u64,
}

/// The fixed-function FFT accelerator.
///
/// # Example
///
/// ```
/// use vwr2a_fftaccel::FftAccelerator;
///
/// # fn main() -> Result<(), vwr2a_fftaccel::FftAccelError> {
/// let accel = FftAccelerator::new();
/// let signal: Vec<f64> = (0..512)
///     .map(|i| (std::f64::consts::TAU * 10.0 * i as f64 / 512.0).cos())
///     .collect();
/// let (spectrum, stats) = accel.run_real(&signal)?;
/// // The 10-cycles-per-frame cosine dominates bin 10.
/// let peak = (1..spectrum.len()).max_by(|&a, &b| {
///     spectrum[a].abs().total_cmp(&spectrum[b].abs())
/// }).unwrap();
/// assert_eq!(peak, 10);
/// assert!(stats.cycles > 1000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FftAccelerator {
    config: FftAccelConfig,
}

impl FftAccelerator {
    /// Creates an accelerator with the default (paper-like) configuration.
    pub fn new() -> Self {
        Self::with_config(FftAccelConfig::default())
    }

    /// Creates an accelerator with a custom configuration.
    pub fn with_config(config: FftAccelConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> FftAccelConfig {
        self.config
    }

    fn check_config(&self) -> Result<(), FftAccelError> {
        let c = &self.config;
        let invalid = |what: &str| {
            Err(FftAccelError::InvalidConfig {
                what: what.to_string(),
            })
        };
        if !(2..=32).contains(&c.datapath_bits) {
            return invalid("datapath_bits must be in 2..=32");
        }
        if c.max_points < 8 || !c.max_points.is_power_of_two() {
            return invalid("max_points must be a power of two >= 8");
        }
        if c.max_points > 1 << 32 {
            return invalid("max_points exceeds the engine's 32-bit address generators");
        }
        if !c.radix2_butterflies_per_cycle.is_finite() || c.radix2_butterflies_per_cycle <= 0.0 {
            return invalid("radix2_butterflies_per_cycle must be finite and positive");
        }
        if !c.io_cycles_per_word.is_finite() || c.io_cycles_per_word < 0.0 {
            return invalid("io_cycles_per_word must be finite and non-negative");
        }
        Ok(())
    }

    fn check_size(&self, n: usize) -> Result<(), FftAccelError> {
        self.check_config()?;
        if n < 8 || !n.is_power_of_two() || n > self.config.max_points {
            return Err(FftAccelError::UnsupportedSize {
                n,
                max: self.config.max_points,
            });
        }
        Ok(())
    }

    /// Converts a modelled cycle quantity to `u64`, refusing the silent
    /// saturation `as u64` would perform on non-finite or oversized values.
    fn cycles_u64(value: f64, what: &str) -> Result<u64, FftAccelError> {
        if !value.is_finite() || value < 0.0 || value >= u64::MAX as f64 {
            return Err(FftAccelError::CostOverflow {
                what: what.to_string(),
            });
        }
        Ok(value as u64)
    }

    /// The cycle model of one `n`-point complex pass: `(compute, io)`
    /// cycles, exclusive of the programming overhead.
    fn complex_cycle_model(&self, n: usize) -> Result<(u64, u64), FftAccelError> {
        // The mixed radix-2/4 engine retires roughly two radix-2-equivalent
        // butterflies per cycle; odd log2 sizes need one extra radix-2 pass
        // which is slightly less efficient (visible in Table 2 as the
        // non-monotonic speed-up across sizes).
        let stages = n.trailing_zeros();
        let butterflies = (n as u64 / 2) * u64::from(stages);
        let radix2_pass_penalty = if stages % 2 == 1 { 1.15 } else { 1.0 };
        let compute_cycles = Self::cycles_u64(
            butterflies as f64 / self.config.radix2_butterflies_per_cycle * radix2_pass_penalty,
            "butterfly cycles",
        )?;
        let io_words = 4 * n as u64; // complex in + complex out
        let io_cycles = Self::cycles_u64(
            io_words as f64 * self.config.io_cycles_per_word,
            "io cycles",
        )?;
        Ok((compute_cycles, io_cycles))
    }

    /// Projects the total cycles of one `n`-point run — setup, butterfly
    /// passes and IO, plus the recombination pass for the real-valued flow —
    /// without touching any data.  This is the accelerator's admission cost
    /// model: schedulers use it to price an FFT job against other backends.
    ///
    /// # Errors
    ///
    /// [`FftAccelError::UnsupportedSize`] for unsupported lengths,
    /// [`FftAccelError::InvalidConfig`] / [`FftAccelError::CostOverflow`]
    /// for degenerate configurations instead of a silently saturated count.
    pub fn projected_cycles(&self, n: usize, real: bool) -> Result<u64, FftAccelError> {
        self.check_size(n)?;
        let overflow = || FftAccelError::CostOverflow {
            what: "total cycles".to_string(),
        };
        if real {
            // The real flow runs an n/2-point complex FFT plus one
            // recombination cycle per output bin (see `run_real`).
            let half = n / 2;
            self.check_size(half)?;
            let (compute, io) = self.complex_cycle_model(half)?;
            self.config
                .setup_cycles
                .checked_add(compute)
                .and_then(|c| c.checked_add(io))
                .and_then(|c| c.checked_add(half as u64 + 1))
                .ok_or_else(overflow)
        } else {
            let (compute, io) = self.complex_cycle_model(n)?;
            self.config
                .setup_cycles
                .checked_add(compute)
                .and_then(|c| c.checked_add(io))
                .ok_or_else(overflow)
        }
    }

    /// Runs a complex FFT on interleaved floating-point data (the host view
    /// of the q15 samples), returning the spectrum scaled by `1/N` (the
    /// engine's block-scaled output renormalised) and the run statistics.
    ///
    /// # Errors
    ///
    /// Returns [`FftAccelError::UnsupportedSize`] for unsupported lengths.
    pub fn run_complex(
        &self,
        input: &[Complex],
    ) -> Result<(Vec<Complex>, FftAccelStats), FftAccelError> {
        let n = input.len();
        self.check_size(n)?;
        let mut stats = FftAccelStats::default();

        // Fixed-point mirror of the datapath: 18-bit samples with block
        // dynamic scaling per stage.
        let scale_in = (1 << (self.config.datapath_bits - 2)) as f64;
        let mut re: Vec<i64> = input.iter().map(|c| (c.re * scale_in) as i64).collect();
        let mut im: Vec<i64> = input.iter().map(|c| (c.im * scale_in) as i64).collect();
        let mut block_exponent = 0i32;

        vwr2a_dsp::fft::bit_reverse_permute(&mut re);
        vwr2a_dsp::fft::bit_reverse_permute(&mut im);
        let mut len = 2usize;
        while len <= n {
            // Dynamic scaling: if any value risks overflowing the 18-bit
            // range after a butterfly, scale the whole block down by 2.
            let limit = 1i64 << (self.config.datapath_bits - 2);
            let needs_scale = re.iter().chain(im.iter()).any(|&v| v.abs() >= limit);
            if needs_scale {
                for v in re.iter_mut().chain(im.iter_mut()) {
                    *v >>= 1;
                }
                block_exponent += 1;
                stats.scaling_events += 1;
            }
            let ang = -std::f64::consts::TAU / len as f64;
            let mut i = 0;
            while i < n {
                for j in 0..len / 2 {
                    let w = Complex::from_angle(ang * j as f64);
                    let wr = (w.re * 32768.0) as i64;
                    let wi = (w.im * 32768.0) as i64;
                    let br = re[i + j + len / 2];
                    let bi = im[i + j + len / 2];
                    let vr = (br * wr - bi * wi) >> 15;
                    let vi = (br * wi + bi * wr) >> 15;
                    let ar = re[i + j];
                    let ai = im[i + j];
                    re[i + j] = saturate(ar + vr, self.config.datapath_bits) as i64;
                    im[i + j] = saturate(ai + vi, self.config.datapath_bits) as i64;
                    re[i + j + len / 2] = saturate(ar - vr, self.config.datapath_bits) as i64;
                    im[i + j + len / 2] = saturate(ai - vi, self.config.datapath_bits) as i64;
                    stats.butterflies += 1;
                    stats.memory_accesses += 8;
                    stats.twiddle_reads += 1;
                }
                i += len;
            }
            len <<= 1;
        }

        // Renormalise to the mathematical DFT scaled by 1/N so callers can
        // compare against the golden model directly.
        let out_scale = (1 << block_exponent) as f64 / scale_in / n as f64;
        let spectrum: Vec<Complex> = re
            .iter()
            .zip(&im)
            .map(|(&r, &i)| Complex::new(r as f64 * out_scale, i as f64 * out_scale))
            .collect();

        // Cycle model: programming + IO + butterfly passes (shared with
        // `projected_cycles`, so scheduler projections match executions).
        let (compute_cycles, io_cycles) = self.complex_cycle_model(n)?;
        stats.io_words = 4 * n as u64;
        stats.cycles = self
            .config
            .setup_cycles
            .checked_add(compute_cycles)
            .and_then(|c| c.checked_add(io_cycles))
            .ok_or_else(|| FftAccelError::CostOverflow {
                what: "total cycles".to_string(),
            })?;
        Ok((spectrum, stats))
    }

    /// Runs the optimised real-valued flow: an `N/2`-point complex FFT plus
    /// the recombination pass, roughly halving both time and energy
    /// (Sec. 3.4 / 4.1).
    ///
    /// # Errors
    ///
    /// Returns [`FftAccelError::UnsupportedSize`] for unsupported lengths.
    pub fn run_real(&self, input: &[f64]) -> Result<(Vec<Complex>, FftAccelStats), FftAccelError> {
        let n = input.len();
        self.check_size(n)?;
        let packed: Vec<Complex> = (0..n / 2)
            .map(|i| Complex::new(input[2 * i], input[2 * i + 1]))
            .collect();
        let (z, mut stats) = self.run_complex(&packed)?;
        // Recombination (split) pass: done at one bin per cycle with two
        // memory reads and one write per bin.
        let half = n / 2;
        let mut out = Vec::with_capacity(half + 1);
        for k in 0..=half {
            let zk = if k == half { z[0] } else { z[k] };
            let znk = z[(half - k) % half].conj();
            let e = (zk + znk).scale(0.5);
            let o = (zk - znk).scale(0.5);
            let odd = Complex::new(o.im, -o.re);
            let w = Complex::from_angle(-std::f64::consts::TAU * k as f64 / n as f64);
            out.push((e + w * odd).scale(0.5));
        }
        stats.cycles = stats.cycles.checked_add(half as u64 + 1).ok_or_else(|| {
            FftAccelError::CostOverflow {
                what: "total cycles".to_string(),
            }
        })?;
        stats.memory_accesses += 3 * (half as u64 + 1);
        stats.twiddle_reads += half as u64 + 1;
        stats.io_words += half as u64 + 1;
        Ok((out, stats))
    }
}

impl Default for FftAccelerator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vwr2a_dsp::fft::{fft, rfft};

    #[test]
    fn complex_output_matches_golden_model_within_quantisation() {
        let n = 256;
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new(0.4 * (i as f64 * 0.21).sin(), 0.2 * (i as f64 * 0.13).cos()))
            .collect();
        let accel = FftAccelerator::new();
        let (spectrum, stats) = accel.run_complex(&input).unwrap();
        let reference = fft(&input).unwrap();
        for (a, r) in spectrum.iter().zip(reference.iter()) {
            assert!((a.re - r.re / n as f64).abs() < 5e-3, "{a:?} vs {r:?}");
            assert!((a.im - r.im / n as f64).abs() < 5e-3);
        }
        assert_eq!(stats.butterflies, (n as u64 / 2) * 8);
        assert!(stats.cycles > 1000);
    }

    #[test]
    fn real_flow_matches_golden_model() {
        let n = 512;
        let input: Vec<f64> = (0..n)
            .map(|i| 0.4 * (std::f64::consts::TAU * 7.0 * i as f64 / n as f64).sin())
            .collect();
        let accel = FftAccelerator::new();
        let (spectrum, _) = accel.run_real(&input).unwrap();
        let reference = rfft(&input).unwrap();
        assert_eq!(spectrum.len(), reference.len());
        for (a, r) in spectrum.iter().zip(reference.iter()) {
            assert!((a.re - r.re / n as f64).abs() < 5e-3);
            assert!((a.im - r.im / n as f64).abs() < 5e-3);
        }
    }

    #[test]
    fn real_flow_is_roughly_twice_as_fast_as_complex() {
        let accel = FftAccelerator::new();
        let sig_c: Vec<Complex> = (0..512)
            .map(|i| Complex::new((i as f64).sin(), 0.0))
            .collect();
        let sig_r: Vec<f64> = (0..512).map(|i| (i as f64).sin()).collect();
        let (_, c) = accel.run_complex(&sig_c).unwrap();
        let (_, r) = accel.run_real(&sig_r).unwrap();
        let ratio = c.cycles as f64 / r.cycles as f64;
        assert!(ratio > 1.5 && ratio < 2.5, "ratio {ratio}");
    }

    #[test]
    fn cycle_counts_land_in_the_paper_range() {
        // Table 2: 512-point complex ≈ 7099 cycles, 2048-point ≈ 31299;
        // the model should land within ~25 % of those.
        let accel = FftAccelerator::new();
        for (n, paper) in [(512usize, 7099u64), (1024, 13629), (2048, 31299)] {
            let sig: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).cos() * 0.3, 0.0))
                .collect();
            let (_, stats) = accel.run_complex(&sig).unwrap();
            let ratio = stats.cycles as f64 / paper as f64;
            assert!(
                ratio > 0.7 && ratio < 1.35,
                "n={n}: {} vs paper {paper}",
                stats.cycles
            );
        }
    }

    #[test]
    fn unsupported_sizes_rejected() {
        let accel = FftAccelerator::new();
        assert!(accel.run_complex(&[Complex::default(); 7]).is_err());
        assert!(accel.run_complex(&vec![Complex::default(); 8192]).is_err());
        assert!(accel.run_real(&[0.0; 4]).is_err());
    }

    #[test]
    fn dynamic_scaling_triggers_on_large_inputs() {
        let accel = FftAccelerator::new();
        let input: Vec<Complex> = (0..64).map(|_| Complex::new(0.99, -0.99)).collect();
        let (_, stats) = accel.run_complex(&input).unwrap();
        assert!(stats.scaling_events > 0);
    }

    #[test]
    fn projected_cycles_match_executed_cycles() {
        let accel = FftAccelerator::new();
        for n in [64usize, 256, 512, 1024] {
            let sig_c: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin() * 0.4, 0.0))
                .collect();
            let (_, stats) = accel.run_complex(&sig_c).unwrap();
            assert_eq!(accel.projected_cycles(n, false).unwrap(), stats.cycles);
            let sig_r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 0.4).collect();
            let (_, stats) = accel.run_real(&sig_r).unwrap();
            assert_eq!(accel.projected_cycles(n, true).unwrap(), stats.cycles);
        }
    }

    #[test]
    fn projected_cycles_reject_unsupported_sizes() {
        let accel = FftAccelerator::new();
        for n in [0usize, 4, 7, 100, 8192] {
            assert!(matches!(
                accel.projected_cycles(n, false),
                Err(FftAccelError::UnsupportedSize { .. })
            ));
        }
        // The real flow needs its half-size complex pass to be supported
        // too: n = 8 packs into a 4-point complex FFT, below the floor.
        assert!(matches!(
            accel.projected_cycles(8, true),
            Err(FftAccelError::UnsupportedSize { n: 4, .. })
        ));
    }

    #[test]
    fn degenerate_configs_are_typed_errors_not_saturation() {
        // A zero butterfly rate used to divide to infinity and saturate the
        // `as u64` cast to u64::MAX; it must surface as a typed error now.
        let zero_rate = FftAccelerator::with_config(FftAccelConfig {
            radix2_butterflies_per_cycle: 0.0,
            ..FftAccelConfig::default()
        });
        let sig: Vec<Complex> = (0..64).map(|_| Complex::new(0.1, 0.0)).collect();
        assert!(matches!(
            zero_rate.run_complex(&sig),
            Err(FftAccelError::InvalidConfig { .. })
        ));
        assert!(matches!(
            zero_rate.projected_cycles(64, false),
            Err(FftAccelError::InvalidConfig { .. })
        ));

        // A NaN IO rate is equally degenerate.
        let nan_io = FftAccelerator::with_config(FftAccelConfig {
            io_cycles_per_word: f64::NAN,
            ..FftAccelConfig::default()
        });
        assert!(matches!(
            nan_io.projected_cycles(64, false),
            Err(FftAccelError::InvalidConfig { .. })
        ));

        // `max_points` beyond the address generators, or not a power of
        // two, is rejected before any size check can "pass" against it.
        for max_points in [0usize, 6, 1 << 40] {
            let bad_max = FftAccelerator::with_config(FftAccelConfig {
                max_points,
                ..FftAccelConfig::default()
            });
            assert!(matches!(
                bad_max.projected_cycles(64, false),
                Err(FftAccelError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn tiny_rates_overflow_loudly_not_silently() {
        // A denormal-small (but still positive and finite) rate pushes the
        // butterfly cycle count past u64::MAX: the model must say so.
        let slow = FftAccelerator::with_config(FftAccelConfig {
            radix2_butterflies_per_cycle: 1e-18,
            ..FftAccelConfig::default()
        });
        assert!(matches!(
            slow.projected_cycles(4096, false),
            Err(FftAccelError::CostOverflow { .. })
        ));
        let sig: Vec<Complex> = (0..4096).map(|_| Complex::new(0.1, 0.0)).collect();
        assert!(matches!(
            slow.run_complex(&sig),
            Err(FftAccelError::CostOverflow { .. })
        ));
    }

    #[test]
    fn error_displays_name_the_failure() {
        let err = FftAccelError::InvalidConfig {
            what: "x".to_string(),
        };
        assert!(err
            .to_string()
            .contains("invalid accelerator configuration"));
        let err = FftAccelError::CostOverflow {
            what: "total cycles".to_string(),
        };
        assert!(err.to_string().contains("overflow"));
    }
}
