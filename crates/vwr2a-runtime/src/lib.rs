//! Unified kernel execution runtime for the VWR2A reproduction.
//!
//! VWR2A's defining host-side property (Denkinger et al., DAC 2022, Sec.
//! 3.1) is that a kernel is loaded into the per-column configuration memory
//! **once** and then re-invoked cheaply: only the first launch streams
//! configuration words into the per-slot program memories.  This crate
//! turns that property into the default programming model instead of an
//! optimisation individual kernels may or may not implement:
//!
//! * [`Kernel`] — the one trait every VWR2A workload implements: associated
//!   `Input`/`Output` types, a declared [`Resources`] budget, the
//!   configuration-memory program, and an `execute` body that stages data
//!   and launches through a [`LaunchCtx`].
//! * [`Session`] — owns the [`vwr2a_core::Vwr2a`] and a registry of loaded
//!   programs keyed by [`Kernel::cache_key`].  The first run of a kernel is
//!   cold; every repeat — including every window of
//!   [`Session::run_batch`] / [`Session::run_stream`] — launches warm.
//! * **Pipelined streaming** — [`Session::run_stream`] models the
//!   double-buffered SPM of the real platform: window *i+1*'s DMA staging
//!   overlaps window *i*'s array execution, window *i−1* drains behind the
//!   launch, and completions reach the host through the VWR2A completion
//!   interrupt (see [`pipeline`]).  Outputs stay bit-identical to the
//!   synchronous path; [`RunReport::wall_cycles`] reports the overlapped
//!   latency next to the serial phase sum.
//! * **Residency management** — the configuration memory is finite, so a
//!   session serving unbounded kernel diversity evicts cold programs (via a
//!   pluggable [`EvictionPolicy`]: default [`LruPolicy`], also
//!   [`LfuPolicy`], [`SizeAwareLru`] and [`NeverEvict`], see [`policy`])
//!   instead of failing with `ConfigMemoryFull`.  Programs the active
//!   invocation depends on are pinned; an evicted program is rebuilt on
//!   next use and launches cold again.
//! * **Speculative prefetch** — [`Session::prefetch`] streams a program's
//!   configuration words *ahead* of its launch (which then counts warm)
//!   and soft-pins the program against eviction until that launch (a
//!   stale prefetch is evicted only as a last resort); schedules
//!   replay the streaming on the otherwise-idle configuration-load lane
//!   ([`StreamSchedule::prefetch`]), where it overlaps the compute
//!   backlog instead of delaying the launch.
//! * **Heterogeneous fleet scheduling** — a [`Pool`] owns N [`Backend`]s:
//!   CGRA arrays ([`ArrayBackend`], each a full session), and optionally
//!   the fixed-function FFT engine ([`FftBackend`]) and the Cortex-M4
//!   host ([`CpuBackend`]).  A kernel advertises non-CGRA
//!   implementations via [`Kernel::offload`]; a pluggable [`Placement`]
//!   strategy returns a [`PlacementPlan`] (target backend + optional
//!   [`PrefetchDirective`]) over capability-filtered [`BackendView`]s.
//!   The default [`CostAware`] weighs each candidate's reload cost
//!   against its compute backlog and modelled per-window cycles (or, by
//!   [`Objective`], its estimated joules and energy-delay product) —
//!   prefetching would-be cold array reloads off the critical path,
//!   sending FFT-shaped jobs to the engine and reload-dominated crumbs
//!   to the CPU — next to the prefetch-less [`ResidencyAware`],
//!   [`RoundRobin`] and [`LeastLoaded`] baselines.  [`Pool::run_batch`] /
//!   [`Pool::run_stream`] fan jobs across the fleet bit-identically to
//!   serial execution and merge the per-backend schedules into one
//!   [`FleetReport`] (with cold-reload, prefetch and hidden-reload
//!   counters, per-job [`JobRoute`]s and per-kind [`BackendKindStats`]
//!   attribution; see [`pool`] and [`backend`]).
//! * **Online serving** — a [`Server`] wraps a [`Pool`] behind a
//!   multi-tenant admission queue consuming an *arrival-stamped* job
//!   stream: each [`ServeJob`] carries a [`TenantId`], arrival cycle,
//!   priority and optional deadline; dispatch order is a pluggable
//!   [`SchedPolicy`] ([`Fifo`], [`EarliestDeadlineFirst`], or
//!   [`WeightedFair`] deficit-round-robin across tenants), a
//!   work-stealing pass re-routes queued jobs away from drifted-ahead
//!   arrays, and the [`ServeReport`] adds per-job [`JobLatency`],
//!   p50/p95/p99 percentiles, per-tenant totals ([`TenantStats`]) and
//!   deadline/steal counts on top of the fleet accounting (see
//!   [`serve`]).
//! * [`RunReport`] — the single accounting type for all kernels: wall and
//!   serial cycles, per-engine occupancy, cold/warm launch counts,
//!   evictions, [`vwr2a_core::ActivityCounters`] and derived time/energy —
//!   with [`ArrayReport`] / [`FleetReport`] layering the fleet view on
//!   top.
//!
//! For DMA-timing and schedule tuning the relevant core types are
//! re-exported here ([`DmaConfig`], [`Engine`], [`Occupancy`], [`Span`],
//! [`Timeline`], and the fleet merge helpers [`fleet_wall_cycles`] /
//! [`fleet_occupancy`]), so runtime users do not need a direct
//! `vwr2a-core` dependency.
//!
//! See [`Session`] for a runnable example, and [`pool`] for the fleet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod error;
pub mod pipeline;
pub mod policy;
pub mod pool;
pub mod report;
pub mod serve;
pub mod session;
pub mod testing;

pub use backend::{
    ArrayBackend, Backend, BackendKind, CpuBackend, FftBackend, FftShape, Offload, CAP_CGRA,
    CAP_CPU, CAP_FFT,
};
pub use error::{Result, RuntimeError};
pub use pipeline::{StreamSchedule, WindowPhases};
pub use policy::{
    ArcPolicy, EvictionPolicy, LfuPolicy, LruPolicy, NeverEvict, ResidentProgram, SizeAwareLru,
};
pub use pool::{
    BackendView, CostAware, JobView, LeastLoaded, Objective, Placement, PlacementPlan, Pool,
    PrefetchDirective, ResidencyAware, RoundRobin,
};
pub use report::{
    ArrayReport, BackendKindStats, FleetReport, JobLatency, JobRoute, PlannerStats, RunReport,
    ServeReport, TenantStats,
};
pub use serve::{
    EarliestDeadlineFirst, Fifo, QueuedJob, SchedPolicy, ServeJob, Server, TenantId, WeightedFair,
};
pub use session::{
    Kernel, LaunchCtx, Prefetch, Resources, Session, SRF_READ_CYCLES, SRF_WRITE_CYCLES,
};
pub use vwr2a_core::dma::DmaConfig;
pub use vwr2a_core::timeline::{
    fleet_occupancy, fleet_wall_cycles, Engine, LaunchSpans, Occupancy, Span, Timeline,
};
