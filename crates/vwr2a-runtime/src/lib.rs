//! Unified kernel execution runtime for the VWR2A reproduction.
//!
//! VWR2A's defining host-side property (Denkinger et al., DAC 2022, Sec.
//! 3.1) is that a kernel is loaded into the per-column configuration memory
//! **once** and then re-invoked cheaply: only the first launch streams
//! configuration words into the per-slot program memories.  This crate
//! turns that property into the default programming model instead of an
//! optimisation individual kernels may or may not implement:
//!
//! * [`Kernel`] — the one trait every VWR2A workload implements: associated
//!   `Input`/`Output` types, a declared [`Resources`] budget, the
//!   configuration-memory program, and an `execute` body that stages data
//!   and launches through a [`LaunchCtx`].
//! * [`Session`] — owns the [`vwr2a_core::Vwr2a`] and a registry of loaded
//!   programs keyed by [`Kernel::cache_key`].  The first run of a kernel is
//!   cold; every repeat — including every window of
//!   [`Session::run_batch`] / [`Session::run_stream`] — launches warm.
//! * **Residency management** — the configuration memory is finite, so a
//!   session serving unbounded kernel diversity evicts cold programs (via a
//!   pluggable [`EvictionPolicy`], default [`LruPolicy`]) instead of
//!   failing with `ConfigMemoryFull`.  Programs the active invocation
//!   depends on are pinned; an evicted program is rebuilt on next use and
//!   launches cold again.
//! * [`RunReport`] — the single accounting type for all kernels: cycles,
//!   cold/warm launch counts, evictions, [`vwr2a_core::ActivityCounters`]
//!   and derived time/energy.
//!
//! See [`Session`] for a runnable example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod report;
pub mod session;
pub mod testing;

pub use error::{Result, RuntimeError};
pub use report::RunReport;
pub use session::{
    EvictionPolicy, Kernel, LaunchCtx, LruPolicy, NeverEvict, ResidentProgram, Resources, Session,
    SRF_READ_CYCLES, SRF_WRITE_CYCLES,
};
